// Fig. 7 — effect of varying the number of attacked APs (ø) on
// localization error under FGSM, for CALLOC and the state-of-the-art
// frameworks (ø from 1 to 100).
//
// Shapes to reproduce: CALLOC stays relatively flat as ø grows; AdvLoc
// (static adversarial training) tracks CALLOC at low ø but deteriorates
// from ø ≈ 60; ANVIL/SANGRIA/WiDeep sit higher across the range.
#include <cstdio>

#include "baselines/surrogate.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "eval/frameworks.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace cal;
  bench::banner("Fig. 7 — error vs number of attacked APs (phi), FGSM",
                "CALLOC flat in phi; AdvLoc rises late; others higher");

  const std::vector<std::string> frameworks = {"CALLOC", "AdvLoc", "SANGRIA",
                                               "ANVIL", "WiDeep"};
  std::vector<double> phis = bench::full_mode()
                                 ? std::vector<double>{1,  10, 20, 30, 40,
                                                       50, 60, 70, 80, 90,
                                                       100}
                                 : std::vector<double>{1, 20, 60, 100};
  const auto buildings = bench::bench_building_indices();
  const double eps = 0.3;

  // series[framework][phi-index]
  std::vector<std::vector<double>> series(
      frameworks.size(), std::vector<double>(phis.size(), 0.0));
  std::size_t runs = 0;

  for (std::size_t b : buildings) {
    const sim::Scenario sc = bench::bench_scenario(b);
    baselines::SurrogateGradients surrogate(sc.train, 400 + b);
    for (std::size_t f = 0; f < frameworks.size(); ++f) {
      auto model =
          eval::make_framework(frameworks[f], 80 + b, !bench::full_mode());
      model->fit(sc.train);
      auto& grads = baselines::gradients_for(*model, surrogate);
      for (std::size_t p = 0; p < phis.size(); ++p) {
        attacks::AttackConfig atk;
        atk.epsilon = eps;
        atk.phi_percent = phis[p];
        double acc = 0.0;
        for (const auto& test : sc.device_tests) {
          acc += eval::evaluate_under_attack(*model, test,
                                             attacks::AttackKind::Fgsm, atk,
                                             grads)
                     .error_m.mean;
        }
        series[f][p] += acc / static_cast<double>(sc.device_tests.size());
      }
      // Full mode: also record the PGD/MIM sweeps the paper says share
      // the same trends ("result plots omitted for brevity").
      if (bench::full_mode()) {
        for (const auto kind :
             {attacks::AttackKind::Pgd, attacks::AttackKind::Mim}) {
          std::printf("  %s %s sweep:", frameworks[f].c_str(),
                      to_string(kind).c_str());
          for (double phi : {1.0, 50.0, 100.0}) {
            attacks::AttackConfig atk;
            atk.epsilon = eps;
            atk.phi_percent = phi;
            atk.num_steps = 6;
            double acc = 0.0;
            for (const auto& test : sc.device_tests)
              acc += eval::evaluate_under_attack(*model, test, kind, atk,
                                                 grads)
                         .error_m.mean;
            std::printf(" phi=%.0f:%.2fm", phi,
                        acc / static_cast<double>(sc.device_tests.size()));
          }
          std::printf("\n");
        }
      }
      std::printf("swept %-8s on %s\n", frameworks[f].c_str(),
                  sc.building_spec.name.c_str());
    }
    ++runs;
  }
  for (auto& s : series)
    for (auto& v : s) v /= static_cast<double>(runs);

  TextTable table([&] {
    std::vector<std::string> h = {"framework"};
    for (double p : phis) h.push_back("phi=" + std::to_string((int)p));
    return h;
  }());
  for (std::size_t f = 0; f < frameworks.size(); ++f)
    table.add_row(frameworks[f], series[f]);
  std::printf("\nFig. 7 series — mean error (m) vs phi, FGSM eps=%.1f\n%s\n",
              eps, table.str().c_str());

  bool ok = true;
  const std::size_t last = phis.size() - 1;
  // "Relatively stable ... unlike other frameworks": CALLOC's rise from
  // phi=1 to phi=100 is smaller than the adversarially-fragile deep
  // frameworks that track it at low phi (AdvLoc, ANVIL).
  const double calloc_rise = series[0][last] - series[0][0];
  const double advloc_rise = series[1][last] - series[1][0];
  const double anvil_rise = series[3][last] - series[3][0];
  ok &= bench::shape_check(calloc_rise < advloc_rise,
                           "AdvLoc deteriorates with phi faster than CALLOC "
                           "(error rising from phi ~ 60)");
  ok &= bench::shape_check(calloc_rise < anvil_rise,
                           "ANVIL deteriorates with phi faster than CALLOC");
  // CALLOC wins at the hardest setting.
  for (std::size_t f = 1; f < frameworks.size(); ++f)
    ok &= bench::shape_check(series[0][last] < series[f][last],
                             "CALLOC < " + frameworks[f] + " at phi=100");
  // SANGRIA/WiDeep: "higher errors for both low and high values of phi" —
  // at phi=1 they already sit above CALLOC.
  ok &= bench::shape_check(series[2][0] > series[0][0],
                           "SANGRIA higher than CALLOC already at phi=1");
  ok &= bench::shape_check(series[4][0] > series[0][0],
                           "WiDeep higher than CALLOC already at phi=1");
  return ok ? 0 : 1;
}
