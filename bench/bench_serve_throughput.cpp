// Serving-engine throughput: sequential one-at-a-time inference vs the
// batched / shared-pool ServeEngine, plus the effect of the fingerprint
// cache on stationary-device traffic.
//
// Run: ./build/bench/bench_serve_throughput   (CALLOC_BENCH_FULL=1 for the
// larger request count and paper-scale building)
#include <algorithm>
#include <chrono>
#include <future>
#include <thread>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/calloc.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "sim/fleet.hpp"

namespace {

using namespace cal;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ModeReport {
  std::string name;
  double rps = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean_batch = 0.0;
  double cache_hit_pct = 0.0;
};

const serve::TenantKey& tenant() {
  static const serve::TenantKey key{"bench", 0, ""};
  return key;
}

/// One single-tenant engine deployment: `slots` replicas on a pool of
/// `pool` threads.
serve::ServeEngine make_engine(const serve::ReplicaFactory& factory,
                               std::size_t num_aps, std::size_t pool,
                               std::size_t slots, std::size_t max_batch,
                               std::size_t cache_capacity) {
  serve::ModelRegistry registry;
  serve::TenantSpec spec;
  spec.factory = factory;
  spec.num_aps = num_aps;
  spec.service.num_workers = slots;
  spec.service.max_batch = max_batch;
  spec.service.queue_capacity = 512;
  spec.service.cache_capacity = cache_capacity;
  registry.register_tenant(tenant(), std::move(spec));
  serve::EngineConfig cfg;
  cfg.pool_size = pool;
  return {registry.publish(), cfg};
}

/// Drive `n_requests` through a running engine from one producer thread;
/// `repeat_prob` models stationary devices re-sending their last scan.
ModeReport drive(std::string name, serve::ServeEngine& engine,
                 const Tensor& x, std::size_t n_requests, double repeat_prob,
                 Rng rng) {
  std::vector<std::future<serve::ServeResult>> futs;
  futs.reserve(n_requests);
  const auto t0 = Clock::now();
  std::size_t row = 0;
  for (std::size_t i = 0; i < n_requests; ++i) {
    if (i == 0 || !rng.bernoulli(repeat_prob)) row = rng.uniform_index(x.rows());
    const auto fp = x.row(row);
    // Bounded queue: the engine's wrapper retries typed QueueFull denials.
    futs.push_back(
        engine.submit_blocking(tenant(), {fp.begin(), fp.end()}).result);
  }
  for (auto& f : futs) f.get();
  const double wall = seconds_since(t0);
  engine.shutdown();
  const auto stats = engine.stats().per_tenant.front().stats;
  ModeReport r;
  r.name = std::move(name);
  r.rps = static_cast<double>(n_requests) / wall;
  r.p50 = stats.latency_p50_ms;
  r.p95 = stats.latency_p95_ms;
  r.p99 = stats.latency_p99_ms;
  r.mean_batch = stats.mean_batch_size;
  if (stats.completed > 0)
    r.cache_hit_pct = 100.0 * static_cast<double>(stats.cache_hits) /
                      static_cast<double>(stats.completed);
  return r;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

int main() {
  using namespace cal;
  bench::banner("bench_serve_throughput — online serving engine",
                "claim: micro-batching (and pool parallelism on multi-core) "
                "raises served requests/second over sequential predict()");

  // A trained model to serve.
  sim::Scenario sc;
  if (bench::full_mode()) {
    sc = bench::bench_scenario(2);  // Table II building 3
  } else {
    sim::BuildingSpec spec;
    spec.name = "bench-serve";
    spec.num_aps = 24;
    spec.path_length_m = 14;
    spec.seed = 313;
    sc = sim::make_scenario(spec, 999);
  }
  core::CallocConfig ccfg;
  ccfg.num_lessons = bench::full_mode() ? 10 : 5;
  ccfg.train.max_epochs_per_lesson = bench::full_mode() ? 10 : 6;
  core::Calloc model(ccfg);
  std::printf("training CALLOC on %s (%zu RPs, %zu APs)...\n",
              sc.building_spec.name.c_str(), sc.train.num_rps(),
              sc.train.num_aps());
  model.fit(sc.train);
  const auto weights = std::string("/tmp/bench_serve_weights.bin");
  model.save_weights(weights);
  const serve::ReplicaFactory factory = [&] {
    auto replica = std::make_unique<core::Calloc>(ccfg);
    replica->load_weights(weights, sc.train);
    return replica;
  };

  // Request stream: every device's online capture, concatenated.
  const data::FingerprintDataset traffic = sim::merged_device_capture(sc);
  const Tensor x = traffic.normalized();
  const std::size_t n_requests = bench::full_mode() ? 20000 : 2000;
  const std::size_t hw = std::max<std::size_t>(
      2, std::thread::hardware_concurrency());
  std::printf("request stream: %zu requests over %zu distinct fingerprints, "
              "%zu hardware threads\n\n", n_requests, x.rows(), hw);

  std::vector<ModeReport> reports;

  // 1. Sequential baseline: one predict() per request, no engine at all.
  {
    Rng rng(1);
    std::vector<double> lat;
    lat.reserve(n_requests);
    const auto t0 = Clock::now();
    Tensor one({1, x.cols()});
    for (std::size_t i = 0; i < n_requests; ++i) {
      const std::size_t row = rng.uniform_index(x.rows());
      std::copy(x.row(row).begin(), x.row(row).end(), one.data());
      const auto r0 = Clock::now();
      (void)model.predict(one);
      lat.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - r0)
              .count());
    }
    ModeReport r;
    r.name = "sequential predict()";
    r.rps = static_cast<double>(n_requests) / seconds_since(t0);
    r.p50 = percentile(lat, 50.0);
    r.p95 = percentile(lat, 95.0);
    r.p99 = percentile(lat, 99.0);
    reports.push_back(r);
  }

  const std::size_t num_aps = traffic.num_aps();
  // 2. Engine, one worker, no coalescing: queue/future overhead exposed.
  {
    auto engine = make_engine(factory, num_aps, 1, 1, 1, 0);
    reports.push_back(
        drive("engine 1w batch=1", engine, x, n_requests, 0.0, Rng(2)));
  }
  // 3. Engine, one worker, micro-batching on.
  {
    auto engine = make_engine(factory, num_aps, 1, 1, 32, 0);
    reports.push_back(
        drive("engine 1w batch=32", engine, x, n_requests, 0.0, Rng(3)));
  }
  // 4. Pool of hw threads, one replica slot per thread, batching on.
  {
    auto engine = make_engine(factory, num_aps, hw, hw, 32, 0);
    reports.push_back(drive("engine " + std::to_string(hw) + "w batch=32",
                            engine, x, n_requests, 0.0, Rng(4)));
  }
  // 5. Stationary-fleet traffic (70% repeats) with the LRU cache on.
  {
    auto engine = make_engine(factory, num_aps, hw, hw, 32, 1024);
    reports.push_back(drive("engine +cache (70% repeat)", engine, x,
                            n_requests, 0.7, Rng(5)));
    // Full metrics registry of the richest configuration for the CI
    // observability artifact (engine is shut down; counters are final).
    bench::append_obs_metrics("bench_serve_throughput", engine.metrics());
  }

  TextTable table({"mode", "req/s", "speedup", "p50 ms", "p95 ms", "p99 ms",
                   "mean batch", "cache hit%"});
  const double base_rps = reports.front().rps;
  for (const auto& r : reports)
    table.add_row({r.name, fmt(r.rps), fmt(r.rps / base_rps) + "x",
                   fmt(r.p50), fmt(r.p95), fmt(r.p99), fmt(r.mean_batch),
                   fmt(r.cache_hit_pct)});
  std::printf("%s\n\n", table.str().c_str());

  // Machine-readable trajectory for CI artifacts (uploaded alongside
  // BENCH_kernels.json so serving perf is tracked per commit too).
  {
    FILE* f = std::fopen("BENCH_serve.json", "w");
    if (f != nullptr) {
      std::fprintf(f, "{\n  \"bench\": \"bench_serve_throughput\",\n");
      std::fprintf(f, "  \"api\": \"ServeEngine\",\n");
      std::fprintf(f, "  \"mode\": \"%s\",\n",
                   bench::full_mode() ? "full" : "quick");
      std::fprintf(f, "  \"hw_threads\": %zu,\n  \"requests\": %zu,\n",
                   hw, n_requests);
      std::fprintf(f, "  \"modes\": [\n");
      for (std::size_t i = 0; i < reports.size(); ++i) {
        const ModeReport& r = reports[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"rps\": %.1f, \"speedup\": %.2f,\n"
            "     \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f,\n"
            "     \"mean_batch\": %.2f, \"cache_hit_pct\": %.1f}%s\n",
            r.name.c_str(), r.rps, r.rps / base_rps, r.p50, r.p95, r.p99,
            r.mean_batch, r.cache_hit_pct,
            i + 1 < reports.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("wrote BENCH_serve.json\n\n");
    }
  }

  // 1.2x margin: the true ratios sit near 9-10x, so a genuine regression
  // still fails while shared-runner timing noise cannot flip a check.
  constexpr double kMargin = 1.2;
  bool ok = true;
  ok &= bench::shape_check(reports[2].rps > kMargin * reports[0].rps,
                           "micro-batching beats sequential predict()");
  ok &= bench::shape_check(reports[2].rps > kMargin * reports[1].rps,
                           "coalescing beats the unbatched engine path");
  ok &= bench::shape_check(reports[3].rps > kMargin * reports[0].rps,
                           "pooled batched serving beats sequential");
  ok &= bench::shape_check(reports[4].cache_hit_pct > 10.0,
                           "LRU cache absorbs stationary-device repeats");

  // Tracing overhead gate (CALLOC_BENCH_TRACE_GATE=1, set by CI): the
  // flight-recorder instrumentation must cost no more than 5% of
  // throughput. Throughput noise on a shared runner is one-sided —
  // interference only ever slows a run down — so each side's best of N
  // interleaved runs is its least-disturbed measurement, and their ratio
  // is far more stable than any single on/off pair.
  if (const char* gate = std::getenv("CALLOC_BENCH_TRACE_GATE");
      gate != nullptr && std::string(gate) == "1") {
    if (!obs::kTracingCompiledIn) {
      std::printf("trace gate: tracing compiled out, nothing to measure\n");
    } else {
      const std::size_t gate_requests = n_requests / 2;
      constexpr int kGateRuns = 5;
      const auto measure = [&](bool enabled, int run) {
        obs::Tracer::instance().set_enabled(enabled);
        auto engine = make_engine(factory, num_aps, hw, hw, 32, 0);
        return drive(enabled ? "gate tracing-on" : "gate tracing-off",
                     engine, x, gate_requests, 0.0,
                     Rng((enabled ? 100 : 200) +
                         static_cast<std::uint64_t>(run)))
            .rps;
      };
      measure(true, 99);  // warm-up: page in weights, settle the pool
      double best_on = 0.0;
      double best_off = 0.0;
      for (int run = 0; run < kGateRuns; ++run) {
        best_on = std::max(best_on, measure(true, run));
        best_off = std::max(best_off, measure(false, run));
      }
      obs::Tracer::instance().set_enabled(true);
      const double ratio = best_on / best_off;
      std::printf(
          "trace gate: best-of-%d on %.0f req/s, off %.0f req/s, "
          "ratio %.3f\n",
          kGateRuns, best_on, best_off, ratio);
      ok &= bench::shape_check(ratio >= 0.95,
                               "tracing overhead within the 5% budget");
    }
  }
  std::remove(weights.c_str());
  return ok ? 0 : 1;
}
