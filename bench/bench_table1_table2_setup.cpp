// Table I + Table II — experimental-setup tables (paper §V.A).
//
// Regenerates both tables from the simulator presets and verifies the
// derived campaign numbers (RPs at 1 m granularity, 5 train fingerprints
// per RP on OP3, 1 test fingerprint per RP per device).
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/collector.hpp"

int main() {
  using namespace cal;
  bench::banner("Table I + Table II — experimental setup",
                "Smartphone roster and building floorplans used everywhere");

  TextTable t1({"Manufacturer", "Model", "Acronym", "offset(dB)", "slope",
                "noise(dB)", "floor(dBm)"});
  for (const auto& d : sim::table1_devices()) {
    t1.add_row({d.name == "BLU" ? "BLU"
                : d.name == "HTC" ? "HTC"
                : d.name == "S7" ? "Samsung"
                : d.name == "LG" ? "LG"
                : d.name == "MOTO" ? "Motorola"
                : "Oneplus",
                d.model, d.name, std::to_string(d.gain_offset_db),
                std::to_string(d.gain_slope),
                std::to_string(d.noise_sigma_db),
                std::to_string(d.sensitivity_dbm)});
  }
  std::printf("\nTABLE I: SMARTPHONE DETAILS (+ heterogeneity profile)\n%s\n",
              t1.str().c_str());

  TextTable t2({"Building", "Visible APs", "Path Length", "Characteristics",
                "RPs", "train fp", "test fp/device"});
  for (std::size_t i = 0; i < sim::table2_buildings().size(); ++i) {
    const auto spec = sim::table2_buildings()[i];
    const sim::Building b(spec);
    t2.add_row({spec.name, std::to_string(spec.num_aps),
                std::to_string(spec.path_length_m) + " meters",
                spec.characteristics, std::to_string(b.num_rps()),
                std::to_string(5 * b.num_rps()), std::to_string(b.num_rps())});
  }
  std::printf("TABLE II: BUILDING FLOORPLAN DETAILS (+ derived campaign)\n%s\n",
              t2.str().c_str());

  bool ok = true;
  const auto specs = sim::table2_buildings();
  ok &= bench::shape_check(specs.size() == 5, "five buildings (Table II)");
  ok &= bench::shape_check(sim::table1_devices().size() == 6,
                           "six smartphones (Table I)");
  ok &= bench::shape_check(
      specs[0].num_aps == 156 && specs[1].num_aps == 125 &&
          specs[2].num_aps == 78 && specs[3].num_aps == 112 &&
          specs[4].num_aps == 218,
      "visible-AP counts match the paper");
  ok &= bench::shape_check(
      specs[0].path_length_m == 64 && specs[4].path_length_m == 60,
      "path lengths match the paper");
  const sim::Scenario sc = bench::bench_scenario(0);
  ok &= bench::shape_check(
      sc.train.num_samples() == 5 * sc.train.num_rps(),
      "offline phase: 5 fingerprints per RP (OP3)");
  ok &= bench::shape_check(
      sc.device_tests[0].num_samples() == sc.train.num_rps(),
      "online phase: 1 fingerprint per RP per device");
  return ok ? 0 : 1;
}
