// Design-choice ablations (DESIGN.md §6) — our own analysis bench.
//
// Variants of CALLOC trained on the same data, evaluated clean and under
// FGSM(ϵ=0.3, ø=60):
//   full        — adaptive curriculum + hyperspace alignment loss
//   static      — curriculum without the §IV.D adaptive ø reduction
//   no-align    — alignment (hyperspace MSE) weight set to 0
//   NC          — no curriculum (single hardest-mix lesson)
// Expected shape: full >= static >= NC on robustness; alignment helps
// cross-device consistency.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/calloc.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace cal;
  bench::banner("Ablation — adaptive curriculum / alignment loss / NC",
                "which CALLOC design choices buy the robustness");

  struct Variant {
    std::string name;
    bool curriculum;
    bool adaptive;
    float align_weight;
  };
  const std::vector<Variant> variants = {
      {"full", true, true, 0.5F},
      {"static", true, false, 0.5F},
      {"no-align", true, true, 0.0F},
      {"NC", false, false, 0.5F},
  };

  attacks::AttackConfig atk;
  atk.epsilon = 0.3;
  atk.phi_percent = 60.0;

  TextTable table({"variant", "clean mean(m)", "FGSM mean(m)",
                   "FGSM worst(m)", "device spread(m)"});
  std::vector<double> robust_means;
  bool ok = true;

  const auto buildings = bench::bench_building_indices();
  for (const auto& variant : variants) {
    double clean_sum = 0.0;
    double adv_sum = 0.0;
    double adv_worst = 0.0;
    double spread_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t b : buildings) {
      const sim::Scenario sc = bench::bench_scenario(b);
      core::CallocConfig cfg;
      cfg.seed = 500 + b;
      cfg.use_curriculum = variant.curriculum;
      cfg.adaptive = variant.adaptive;
      cfg.train.hyperspace_loss_weight = variant.align_weight;
      cfg.train.max_epochs_per_lesson = bench::full_mode() ? 12 : 8;
      core::Calloc model(cfg);
      model.fit(sc.train);

      double dev_lo = 1e300;
      double dev_hi = 0.0;
      for (const auto& test : sc.device_tests) {
        const auto clean = eval::evaluate_clean(model, test);
        const auto adv = eval::evaluate_under_attack(
            model, test, attacks::AttackKind::Fgsm, atk,
            *model.gradient_source());
        clean_sum += clean.error_m.mean;
        adv_sum += adv.error_m.mean;
        adv_worst = std::max(adv_worst, adv.error_m.max);
        dev_lo = std::min(dev_lo, adv.error_m.mean);
        dev_hi = std::max(dev_hi, adv.error_m.mean);
        ++n;
      }
      spread_sum += dev_hi - dev_lo;
    }
    const double adv_mean = adv_sum / n;
    table.add_row(variant.name,
                  {clean_sum / n, adv_mean, adv_worst,
                   spread_sum / static_cast<double>(buildings.size())});
    robust_means.push_back(adv_mean);
    std::printf("evaluated variant %-9s (FGSM mean %.2f m)\n",
                variant.name.c_str(), adv_mean);
  }

  std::printf("\nAblation results (FGSM eps=0.3, phi=60)\n%s\n",
              table.str().c_str());

  ok &= bench::shape_check(robust_means[0] <= robust_means[3] * 1.05,
                           "full curriculum is at least as robust as NC");
  ok &= bench::shape_check(
      robust_means[1] <= robust_means[3] * 1.15,
      "even a static curriculum beats cramming (NC) or ties it");
  std::printf("(adaptive-vs-static and alignment deltas are reported for "
              "analysis; the paper only claims the curriculum-vs-NC gap)\n");
  return ok ? 0 : 1;
}
