// Fig. 5 — impact of curriculum learning across attacks and ϵ.
//
// Bars: mean error of CALLOC vs CALLOC-NC (no curriculum) for each attack
// kind and ϵ value, averaged over devices, buildings and the ø grid.
// Shape to reproduce: NC degrades markedly at higher ϵ while the
// curriculum-trained model stays flat; curriculum never loses by much.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/calloc.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace cal;
  bench::banner("Fig. 5 — curriculum vs no-curriculum (NC)",
                "curriculum keeps error flat as attack strength grows");

  const auto buildings = bench::bench_building_indices();
  const auto eps_grid = bench::epsilon_grid();
  const auto phi_grid = bench::phi_grid();
  const std::vector<attacks::AttackKind> kinds = {
      attacks::AttackKind::Fgsm, attacks::AttackKind::Pgd,
      attacks::AttackKind::Mim};

  // err[variant][kind][eps-index] accumulated over buildings/devices/phi.
  double err[2][3][5] = {};
  std::size_t cells[2][3][5] = {};

  for (std::size_t b : buildings) {
    const sim::Scenario sc = bench::bench_scenario(b);
    for (int variant = 0; variant < 2; ++variant) {
      core::CallocConfig cfg;
      cfg.seed = 55 + b;
      cfg.use_curriculum = (variant == 0);
      cfg.train.max_epochs_per_lesson = bench::full_mode() ? 12 : 8;
      core::Calloc model(cfg);
      model.fit(sc.train);
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        for (std::size_t e = 0; e < eps_grid.size(); ++e) {
          for (double phi : phi_grid) {
            attacks::AttackConfig atk;
            atk.epsilon = eps_grid[e];
            atk.phi_percent = phi;
            atk.num_steps = 6;
            for (const auto& test : sc.device_tests) {
              const auto stats = eval::evaluate_under_attack(
                  model, test, kinds[k], atk, *model.gradient_source());
              err[variant][k][e] += stats.error_m.mean;
              ++cells[variant][k][e];
            }
          }
        }
      }
    }
  }

  bool ok = true;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    TextTable table({"eps", "CALLOC mean(m)", "NC mean(m)", "NC/CALLOC"});
    std::vector<std::string> labels;
    std::vector<double> bars;
    for (std::size_t e = 0; e < eps_grid.size(); ++e) {
      const double with_c = err[0][k][e] / cells[0][k][e];
      const double without_c = err[1][k][e] / cells[1][k][e];
      table.add_row("eps=" + std::to_string(eps_grid[e]).substr(0, 3),
                    {with_c, without_c, without_c / std::max(with_c, 1e-9)});
      labels.push_back("C  eps=" + std::to_string(eps_grid[e]).substr(0, 3));
      bars.push_back(with_c);
      labels.push_back("NC eps=" + std::to_string(eps_grid[e]).substr(0, 3));
      bars.push_back(without_c);
    }
    std::printf("\nFig. 5 series — %s\n%s\n%s\n",
                to_string(kinds[k]).c_str(), table.str().c_str(),
                render_bar_chart("Fig. 5 bars — " + to_string(kinds[k]),
                                 labels, bars)
                    .c_str());

    // Shape checks per attack: at the highest ϵ the curriculum must win.
    const std::size_t last = eps_grid.size() - 1;
    const double with_c = err[0][k][last] / cells[0][k][last];
    const double without_c = err[1][k][last] / cells[1][k][last];
    ok &= bench::shape_check(with_c <= without_c * 1.05,
                             to_string(kinds[k]) +
                                 ": curriculum <= NC at the highest eps");
  }
  // Averaged over everything, curriculum must be the better variant.
  double tot_c = 0.0, tot_nc = 0.0;
  for (std::size_t k = 0; k < 3; ++k)
    for (std::size_t e = 0; e < eps_grid.size(); ++e) {
      tot_c += err[0][k][e] / cells[0][k][e];
      tot_nc += err[1][k][e] / cells[1][k][e];
    }
  ok &= bench::shape_check(tot_c < tot_nc,
                           "overall: curriculum beats no-curriculum");
  return ok ? 0 : 1;
}
