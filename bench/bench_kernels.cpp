// GEMM kernel throughput: naive triple loop vs the blocked/register-tiled
// cal_kernels path, serial and with the row-block thread pool, across
// serving-shaped and training-shaped sizes; plus the fused-transpose win
// (gemm_nt vs transpose-copy + gemm_nn) on the attention score shape.
//
// Emits BENCH_kernels.json in the working directory so CI can archive the
// perf trajectory. Run: ./build/bench/bench_kernels
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/calloc.hpp"
#include "eval/metrics.hpp"
#include "kernels/gemm.hpp"
#include "kernels/quant.hpp"
#include "sim/collector.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace cal;
using Clock = std::chrono::steady_clock;

struct ShapeCase {
  std::string label;
  std::size_t m, k, n;
};

struct Row {
  ShapeCase shape;
  double naive_gflops = 0.0;
  double blocked_gflops = 0.0;
  double threaded_gflops = 0.0;
  double blocked_speedup = 0.0;
  double threaded_speedup = 0.0;
  bool close = false;
};

double gflop(const ShapeCase& s) {
  return 2.0 * static_cast<double>(s.m) * static_cast<double>(s.k) *
         static_cast<double>(s.n) / 1.0e9;
}

/// Best-of-`reps` timing of fn(), in seconds (min filters scheduler noise).
template <typename Fn>
double time_best(std::size_t reps, Fn&& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt < best) best = dt;
  }
  return best;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

int main() {
  bench::banner("bench_kernels — blocked/SIMD GEMM layer",
                "claim: the cache-blocked register-tiled kernels beat the "
                "naive triple loop >=3x on training-shaped GEMMs, and the "
                "row-block thread pool scales them further");

  const std::size_t hw =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());
  const std::size_t reps = bench::full_mode() ? 30 : 12;

  // 520 APs is the paper-scale fingerprint width (UJIIndoorLoc-like); 128
  // is the embedding dim / RP-class count used across the model zoo.
  const std::vector<ShapeCase> shapes = {
      {"serve micro-batch embed (32x520 * 520x128)", 32, 520, 128},
      {"training batch embed (128x520 * 520x128)", 128, 520, 128},
      {"anchor attention scores (128x128 * 128x512)", 128, 128, 512},
      {"fleet batch (512x256 * 256x256)", 512, 256, 256},
  };
  const std::size_t kTargetShape = 1;  // the >=3x acceptance shape

  std::vector<Row> rows;
  for (const auto& s : shapes) {
    Rng rng(s.m + s.k + s.n);
    const Tensor a = Tensor::randn({s.m, s.k}, rng);
    const Tensor b = Tensor::randn({s.k, s.n}, rng);
    Tensor c_naive({s.m, s.n});
    Tensor c_blocked({s.m, s.n});
    Tensor c_mt({s.m, s.n});

    Row row;
    row.shape = s;
    const double t_naive = time_best(reps, [&] {
      kernels::gemm_naive(a.flat(), b.flat(), c_naive.flat(), s.m, s.k, s.n);
    });
    const double t_blocked = time_best(reps, [&] {
      kernels::gemm_nn(a.flat(), b.flat(), c_blocked.flat(), s.m, s.k, s.n);
    });
    kernels::set_max_threads(hw);
    const double t_mt = time_best(reps, [&] {
      kernels::gemm_nn(a.flat(), b.flat(), c_mt.flat(), s.m, s.k, s.n);
    });
    kernels::set_max_threads(1);

    row.naive_gflops = gflop(s) / t_naive;
    row.blocked_gflops = gflop(s) / t_blocked;
    row.threaded_gflops = gflop(s) / t_mt;
    row.blocked_speedup = t_naive / t_blocked;
    row.threaded_speedup = t_naive / t_mt;
    // atol scaled to the result magnitude: k-block partial-sum rounding is
    // proportional to the summand scale, not the (possibly tiny) output.
    const float atol = 1e-5F * std::max(1.0F, c_naive.abs_max());
    row.close = allclose(c_blocked, c_naive, atol, 1e-5F) &&
                allclose(c_mt, c_naive, atol, 1e-5F);
    rows.push_back(row);
  }

  // Fused-transpose variant vs materialising Kᵀ first (attention scores:
  // B x D query against M x D anchor keys).
  const ShapeCase att{"fused q·kᵀ (128x64 * (520x64)ᵀ)", 128, 64, 520};
  double fused_speedup = 0.0;
  bool fused_close = false;
  {
    Rng rng(7);
    const Tensor q = Tensor::randn({att.m, att.k}, rng);
    const Tensor kmat = Tensor::randn({att.n, att.k}, rng);
    Tensor via_copy;
    Tensor fused;
    const double t_copy =
        time_best(reps, [&] { via_copy = q.matmul(kmat.transposed()); });
    const double t_fused = time_best(reps, [&] { fused = q.matmul_nt(kmat); });
    fused_speedup = t_copy / t_fused;
    fused_close = allclose(fused, via_copy,
                           1e-5F * std::max(1.0F, via_copy.abs_max()), 1e-5F);
  }

  // Int8 quantized path vs fp32 on the CI-gated training-embed shape.
  // Weights are quantized once (publish-time cost); the timed int8 loop
  // pays the full serving price — dynamic per-row activation quantization
  // plus gemm_s8_nn — and must still clear the 1.7x floor.
  const ShapeCase s8shape{"int8 embed (128x520 * 520x128)", 128, 520, 128};
  double s8_speedup = 0.0;
  double s8_gflops = 0.0;
  {
    Rng rng(40);
    const Tensor a = Tensor::randn({s8shape.m, s8shape.k}, rng);
    const Tensor b = Tensor::randn({s8shape.k, s8shape.n}, rng);
    const kernels::QuantizedMatrix wq =
        kernels::quantize_per_output_channel(b.flat(), s8shape.k, s8shape.n);
    std::vector<std::int8_t> a8(s8shape.m * s8shape.k);
    std::vector<float> a_scales(s8shape.m);
    Tensor c_f32({s8shape.m, s8shape.n});
    std::vector<float> c_s8(s8shape.m * s8shape.n);
    const double t_f32 = time_best(reps, [&] {
      kernels::gemm_nn(a.flat(), b.flat(), c_f32.flat(), s8shape.m,
                       s8shape.k, s8shape.n);
    });
    const double t_s8 = time_best(reps, [&] {
      kernels::quantize_rows(a.flat(), s8shape.m, s8shape.k, a8, a_scales);
      kernels::gemm_s8_nn(a8, wq.data, c_s8, s8shape.m, s8shape.k,
                          s8shape.n, a_scales, wq.scales);
    });
    s8_speedup = t_f32 / t_s8;
    s8_gflops = gflop(s8shape) / t_s8;
  }

  // Batched/strided multi-head attention scores: one strided
  // gemm_batched_nt over the fused B x (H·D) query vs H per-head gemm_nt
  // calls on contiguous per-head copies (the pre-fusion formulation).
  // rows=256 puts the BATCHED total (2·256·16·64·8 ≈ 4.2 MFLOP) past the
  // thread-pool threshold while each per-head GEMM (0.5 MFLOP) stays
  // serial — exactly the regime the fused serving path lives in, and the
  // reason batching wins on multi-core hosts: only the fused call can
  // recruit the pool.
  const std::size_t att_rows = 256, att_heads = 8, att_d = 16, att_m = 64;
  double batched_speedup = 0.0;
  bool batched_close = false;
  {
    Rng rng(41);
    const Tensor q = Tensor::randn({att_rows, att_heads * att_d}, rng);
    const Tensor proto = Tensor::randn({att_heads * att_m, att_d}, rng);
    // Contiguous per-head operands for the looped formulation (the old
    // code held separate head tensors, so the copies are not timed).
    std::vector<Tensor> q_heads(att_heads, Tensor({att_rows, att_d}));
    for (std::size_t h = 0; h < att_heads; ++h)
      for (std::size_t i = 0; i < att_rows; ++i)
        for (std::size_t j = 0; j < att_d; ++j)
          q_heads[h].at(i, j) = q.at(i, h * att_d + j);
    std::vector<Tensor> s_heads(att_heads, Tensor({att_rows, att_m}));
    std::vector<float> s_batched(att_rows * att_heads * att_m);
    kernels::BatchStrides st;
    st.stride_a = att_d;
    st.lda = att_heads * att_d;
    st.stride_b = att_m * att_d;
    st.stride_c = att_m;
    st.ldc = att_heads * att_m;
    // The pool is live for this section when the host has real cores:
    // only the batched call is big enough to recruit it, which is the
    // point being measured (on a single core the pool would just add
    // context switches to the batched side). The two timings interleave
    // rep by rep so slow phases of a noisy container hit both
    // formulations equally instead of skewing one.
    kernels::set_max_threads(std::thread::hardware_concurrency() > 1 ? hw
                                                                     : 1);
    double t_loop = 1e300;
    double t_batched = 1e300;
    for (std::size_t r = 0; r < 3 * reps; ++r) {
      t_loop = std::min(t_loop, time_best(1, [&] {
        for (std::size_t h = 0; h < att_heads; ++h)
          kernels::gemm_nt(q_heads[h].flat(),
                           proto.flat().subspan(h * att_m * att_d,
                                                att_m * att_d),
                           s_heads[h].flat(), att_rows, att_d, att_m);
      }));
      t_batched = std::min(t_batched, time_best(1, [&] {
        kernels::gemm_batched_nt(q.flat(), proto.flat(), s_batched,
                                 att_heads, att_rows, att_d, att_m, st);
      }));
    }
    kernels::set_max_threads(1);
    batched_speedup = t_loop / t_batched;
    batched_close = true;
    for (std::size_t h = 0; h < att_heads && batched_close; ++h)
      for (std::size_t i = 0; i < att_rows && batched_close; ++i)
        for (std::size_t j = 0; j < att_m; ++j)
          if (s_batched[i * att_heads * att_m + h * att_m + j] !=
              s_heads[h].at(i, j)) {
            batched_close = false;
            break;
          }
  }

  // End-to-end accuracy cost of quantization: a fast curriculum run on a
  // simulated venue, then mean localization error fp32 vs int8. CI gates
  // the delta at 0.05 m — the quantized lane must be accuracy-neutral.
  double err_fp32_m = 0.0;
  double err_int8_m = 0.0;
  {
    sim::BuildingSpec spec;
    spec.name = "bench-quant";
    spec.num_aps = 24;
    spec.path_length_m = 14;
    spec.seed = 313;
    const sim::Scenario sc = sim::make_scenario(spec, 999);
    core::CallocConfig cfg;
    cfg.seed = 71;
    cfg.num_lessons = 5;
    cfg.train.max_epochs_per_lesson = 6;
    core::Calloc model(cfg);
    model.fit(sc.train);
    const auto& test = sc.device_tests.front();
    const Tensor x = test.normalized();
    const auto pred_f = model.predict(x);
    auto quantized = model.quantize_int8();
    const auto pred_q = quantized->predict(x);
    err_fp32_m = eval::error_stats(test, pred_f).error_m.mean;
    err_int8_m = eval::error_stats(test, pred_q).error_m.mean;
  }
  const double err_delta_m = err_int8_m - err_fp32_m;

  TextTable table({"shape", "naive GF/s", "blocked GF/s",
                   std::to_string(hw) + "t GF/s", "blocked x", "threads x"});
  for (const auto& r : rows)
    table.add_row({r.shape.label, fmt(r.naive_gflops), fmt(r.blocked_gflops),
                   fmt(r.threaded_gflops), fmt(r.blocked_speedup),
                   fmt(r.threaded_speedup)});
  std::printf("%s\n", table.str().c_str());
  std::printf("fused gemm_nt vs transpose-copy on %s: %.2fx\n",
              att.label.c_str(), fused_speedup);
  const std::string s8_isa = kernels::gemm_s8_isa();
  std::printf("int8 (quantize_rows + gemm_s8_nn) vs fp32 on %s: %.2fx "
              "(%.2f int8 GF/s, %s tier)\n",
              s8shape.label.c_str(), s8_speedup, s8_gflops, s8_isa.c_str());
  std::printf("batched strided q·kᵀ (%zu heads, %zux%zux%zu) vs per-head "
              "loop: %.2fx\n",
              att_heads, att_rows, att_d, att_m, batched_speedup);
  std::printf("localization error: fp32 %.3f m, int8 %.3f m (delta %+.3f "
              "m)\n\n",
              err_fp32_m, err_int8_m, err_delta_m);

  // Machine-readable trajectory for CI artifacts.
  {
    FILE* f = std::fopen("BENCH_kernels.json", "w");
    if (f != nullptr) {
      std::fprintf(f, "{\n  \"bench\": \"bench_kernels\",\n");
      std::fprintf(f, "  \"mode\": \"%s\",\n",
                   bench::full_mode() ? "full" : "quick");
      std::fprintf(f, "  \"hw_threads\": %zu,\n  \"shapes\": [\n", hw);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(
            f,
            "    {\"label\": \"%s\", \"m\": %zu, \"k\": %zu, \"n\": %zu,\n"
            "     \"naive_gflops\": %.3f, \"blocked_gflops\": %.3f,\n"
            "     \"threaded_gflops\": %.3f, \"blocked_speedup\": %.3f,\n"
            "     \"threaded_speedup\": %.3f, \"matches_naive\": %s}%s\n",
            r.shape.label.c_str(), r.shape.m, r.shape.k, r.shape.n,
            r.naive_gflops, r.blocked_gflops, r.threaded_gflops,
            r.blocked_speedup, r.threaded_speedup,
            r.close ? "true" : "false", i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n  \"fused_nt_speedup\": %.3f,\n",
                   fused_speedup);
      std::fprintf(f,
                   "  \"int8\": {\"label\": \"%s\", \"speedup_vs_fp32\": "
                   "%.3f, \"gflops\": %.3f, \"isa\": \"%s\"},\n",
                   s8shape.label.c_str(), s8_speedup, s8_gflops,
                   s8_isa.c_str());
      std::fprintf(f,
                   "  \"batched_attention\": {\"heads\": %zu, \"rows\": %zu,"
                   " \"head_dim\": %zu, \"prototypes\": %zu,\n"
                   "   \"speedup_vs_per_head_loop\": %.3f, "
                   "\"matches_loop\": %s},\n",
                   att_heads, att_rows, att_d, att_m, batched_speedup,
                   batched_close ? "true" : "false");
      std::fprintf(f,
                   "  \"quantized_accuracy\": {\"fp32_mean_error_m\": %.4f,"
                   " \"int8_mean_error_m\": %.4f, \"delta_m\": %.4f}\n}\n",
                   err_fp32_m, err_int8_m, err_delta_m);
      std::fclose(f);
      std::printf("wrote BENCH_kernels.json\n\n");
    }
  }

  bool ok = true;
  for (const auto& r : rows)
    ok &= bench::shape_check(r.close, "blocked matches naive on " +
                                          r.shape.label);
  ok &= bench::shape_check(fused_close, "fused gemm_nt matches copy path");
  ok &= bench::shape_check(
      rows[kTargetShape].blocked_speedup >= 3.0,
      "blocked >=3x naive on " + rows[kTargetShape].shape.label + " (got " +
          fmt(rows[kTargetShape].blocked_speedup) + "x)");
  ok &= bench::shape_check(
      rows.back().threaded_gflops > 0.8 * rows.back().blocked_gflops,
      "thread pool does not regress the largest shape");
  ok &= bench::shape_check(batched_close,
                           "batched strided scores match per-head loop "
                           "bit for bit");
  // The 1.7x int8 floor needs 512-bit integer madd: two AVX2
  // instructions per 16 int8 MACs sit at throughput parity with one
  // 8-MAC fp32 FMA, so the AVX2 tier architecturally tops out near
  // ~1.3x and the scalar tier loses outright. Gate each tier at what
  // its ISA can honestly deliver; the full floor is enforced wherever
  // the dispatcher selected the avx512 tile.
  const double s8_floor =
      s8_isa == "avx512" ? 1.7 : (s8_isa == "avx2" ? 1.0 : 0.2);
  ok &= bench::shape_check(
      s8_speedup >= s8_floor,
      "int8 >=" + fmt(s8_floor) + "x fp32 on " + s8shape.label + " [" +
          s8_isa + " tier] (got " + fmt(s8_speedup) + "x)");
  // Single-core hosts only see the dispatch-amortisation part of the
  // batched win (the pool is the main event), so gate no-regression
  // there and a real win where physical threads exist. hw is clamped to
  // >=2 for the pool timings above, so consult the real core count.
  const double batched_floor =
      std::thread::hardware_concurrency() > 1 ? 1.05 : 0.9;
  ok &= bench::shape_check(
      batched_speedup >= batched_floor,
      "batched attention GEMM beats the per-head loop (floor " +
          fmt(batched_floor) + "x, got " + fmt(batched_speedup) + "x)");
  // Signed on purpose: int8 may land BETTER than fp32 (quantization acts
  // as a mild regularizer on this venue) and an improvement must pass.
  ok &= bench::shape_check(
      err_delta_m <= 0.05,
      "int8 localization-error delta within +0.05 m (got " +
          fmt(err_delta_m) + " m)");
  return ok ? 0 : 1;
}
