// GEMM kernel throughput: naive triple loop vs the blocked/register-tiled
// cal_kernels path, serial and with the row-block thread pool, across
// serving-shaped and training-shaped sizes; plus the fused-transpose win
// (gemm_nt vs transpose-copy + gemm_nn) on the attention score shape.
//
// Emits BENCH_kernels.json in the working directory so CI can archive the
// perf trajectory. Run: ./build/bench/bench_kernels
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "kernels/gemm.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace cal;
using Clock = std::chrono::steady_clock;

struct ShapeCase {
  std::string label;
  std::size_t m, k, n;
};

struct Row {
  ShapeCase shape;
  double naive_gflops = 0.0;
  double blocked_gflops = 0.0;
  double threaded_gflops = 0.0;
  double blocked_speedup = 0.0;
  double threaded_speedup = 0.0;
  bool close = false;
};

double gflop(const ShapeCase& s) {
  return 2.0 * static_cast<double>(s.m) * static_cast<double>(s.k) *
         static_cast<double>(s.n) / 1.0e9;
}

/// Best-of-`reps` timing of fn(), in seconds (min filters scheduler noise).
template <typename Fn>
double time_best(std::size_t reps, Fn&& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt < best) best = dt;
  }
  return best;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

int main() {
  bench::banner("bench_kernels — blocked/SIMD GEMM layer",
                "claim: the cache-blocked register-tiled kernels beat the "
                "naive triple loop >=3x on training-shaped GEMMs, and the "
                "row-block thread pool scales them further");

  const std::size_t hw =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());
  const std::size_t reps = bench::full_mode() ? 30 : 12;

  // 520 APs is the paper-scale fingerprint width (UJIIndoorLoc-like); 128
  // is the embedding dim / RP-class count used across the model zoo.
  const std::vector<ShapeCase> shapes = {
      {"serve micro-batch embed (32x520 * 520x128)", 32, 520, 128},
      {"training batch embed (128x520 * 520x128)", 128, 520, 128},
      {"anchor attention scores (128x128 * 128x512)", 128, 128, 512},
      {"fleet batch (512x256 * 256x256)", 512, 256, 256},
  };
  const std::size_t kTargetShape = 1;  // the >=3x acceptance shape

  std::vector<Row> rows;
  for (const auto& s : shapes) {
    Rng rng(s.m + s.k + s.n);
    const Tensor a = Tensor::randn({s.m, s.k}, rng);
    const Tensor b = Tensor::randn({s.k, s.n}, rng);
    Tensor c_naive({s.m, s.n});
    Tensor c_blocked({s.m, s.n});
    Tensor c_mt({s.m, s.n});

    Row row;
    row.shape = s;
    const double t_naive = time_best(reps, [&] {
      kernels::gemm_naive(a.flat(), b.flat(), c_naive.flat(), s.m, s.k, s.n);
    });
    const double t_blocked = time_best(reps, [&] {
      kernels::gemm_nn(a.flat(), b.flat(), c_blocked.flat(), s.m, s.k, s.n);
    });
    kernels::set_max_threads(hw);
    const double t_mt = time_best(reps, [&] {
      kernels::gemm_nn(a.flat(), b.flat(), c_mt.flat(), s.m, s.k, s.n);
    });
    kernels::set_max_threads(1);

    row.naive_gflops = gflop(s) / t_naive;
    row.blocked_gflops = gflop(s) / t_blocked;
    row.threaded_gflops = gflop(s) / t_mt;
    row.blocked_speedup = t_naive / t_blocked;
    row.threaded_speedup = t_naive / t_mt;
    // atol scaled to the result magnitude: k-block partial-sum rounding is
    // proportional to the summand scale, not the (possibly tiny) output.
    const float atol = 1e-5F * std::max(1.0F, c_naive.abs_max());
    row.close = allclose(c_blocked, c_naive, atol, 1e-5F) &&
                allclose(c_mt, c_naive, atol, 1e-5F);
    rows.push_back(row);
  }

  // Fused-transpose variant vs materialising Kᵀ first (attention scores:
  // B x D query against M x D anchor keys).
  const ShapeCase att{"fused q·kᵀ (128x64 * (520x64)ᵀ)", 128, 64, 520};
  double fused_speedup = 0.0;
  bool fused_close = false;
  {
    Rng rng(7);
    const Tensor q = Tensor::randn({att.m, att.k}, rng);
    const Tensor kmat = Tensor::randn({att.n, att.k}, rng);
    Tensor via_copy;
    Tensor fused;
    const double t_copy =
        time_best(reps, [&] { via_copy = q.matmul(kmat.transposed()); });
    const double t_fused = time_best(reps, [&] { fused = q.matmul_nt(kmat); });
    fused_speedup = t_copy / t_fused;
    fused_close = allclose(fused, via_copy,
                           1e-5F * std::max(1.0F, via_copy.abs_max()), 1e-5F);
  }

  TextTable table({"shape", "naive GF/s", "blocked GF/s",
                   std::to_string(hw) + "t GF/s", "blocked x", "threads x"});
  for (const auto& r : rows)
    table.add_row({r.shape.label, fmt(r.naive_gflops), fmt(r.blocked_gflops),
                   fmt(r.threaded_gflops), fmt(r.blocked_speedup),
                   fmt(r.threaded_speedup)});
  std::printf("%s\n", table.str().c_str());
  std::printf("fused gemm_nt vs transpose-copy on %s: %.2fx\n\n",
              att.label.c_str(), fused_speedup);

  // Machine-readable trajectory for CI artifacts.
  {
    FILE* f = std::fopen("BENCH_kernels.json", "w");
    if (f != nullptr) {
      std::fprintf(f, "{\n  \"bench\": \"bench_kernels\",\n");
      std::fprintf(f, "  \"mode\": \"%s\",\n",
                   bench::full_mode() ? "full" : "quick");
      std::fprintf(f, "  \"hw_threads\": %zu,\n  \"shapes\": [\n", hw);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(
            f,
            "    {\"label\": \"%s\", \"m\": %zu, \"k\": %zu, \"n\": %zu,\n"
            "     \"naive_gflops\": %.3f, \"blocked_gflops\": %.3f,\n"
            "     \"threaded_gflops\": %.3f, \"blocked_speedup\": %.3f,\n"
            "     \"threaded_speedup\": %.3f, \"matches_naive\": %s}%s\n",
            r.shape.label.c_str(), r.shape.m, r.shape.k, r.shape.n,
            r.naive_gflops, r.blocked_gflops, r.threaded_gflops,
            r.blocked_speedup, r.threaded_speedup,
            r.close ? "true" : "false", i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n  \"fused_nt_speedup\": %.3f\n}\n",
                   fused_speedup);
      std::fclose(f);
      std::printf("wrote BENCH_kernels.json\n\n");
    }
  }

  bool ok = true;
  for (const auto& r : rows)
    ok &= bench::shape_check(r.close, "blocked matches naive on " +
                                          r.shape.label);
  ok &= bench::shape_check(fused_close, "fused gemm_nt matches copy path");
  ok &= bench::shape_check(
      rows[kTargetShape].blocked_speedup >= 3.0,
      "blocked >=3x naive on " + rows[kTargetShape].shape.label + " (got " +
          fmt(rows[kTargetShape].blocked_speedup) + "x)");
  ok &= bench::shape_check(
      rows.back().threaded_gflops > 0.8 * rows.back().blocked_gflops,
      "thread pool does not regress the largest shape");
  return ok ? 0 : 1;
}
