// Shared helpers for the paper-artefact benches.
//
// Every bench binary runs argument-free. The default ("quick") mode
// shrinks the sweep (fewer buildings, coarser ϵ/ø grids, shorter training)
// so `for b in build/bench/*; do $b; done` finishes in minutes; setting
// CALLOC_BENCH_FULL=1 restores the paper's full matrix. Each bench prints
// the rows/series of its figure plus explicit PASS/FAIL shape checks for
// the qualitative claims the paper makes about that artefact.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/collector.hpp"

namespace cal::bench {

/// True when CALLOC_BENCH_FULL=1 requests the paper-scale sweep.
inline bool full_mode() {
  const char* env = std::getenv("CALLOC_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// Indices into sim::table2_buildings() used by this run.
inline std::vector<std::size_t> bench_building_indices() {
  if (full_mode()) return {0, 1, 2, 3, 4};
  return {0, 2};  // Building 1 (noisiest) and Building 3 (fewest APs)
}

/// Scenario for one Table II building under the paper's protocol.
inline sim::Scenario bench_scenario(std::size_t building_idx,
                                    std::uint64_t seed = 2024) {
  const auto specs = sim::table2_buildings();
  return sim::make_scenario(specs.at(building_idx), seed + building_idx);
}

/// ϵ grid (paper: 0.1..0.5).
inline std::vector<double> epsilon_grid() {
  if (full_mode()) return {0.1, 0.2, 0.3, 0.4, 0.5};
  return {0.1, 0.3, 0.5};
}

/// ø grid (paper: 10..100).
inline std::vector<double> phi_grid() {
  if (full_mode()) return {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  return {10, 50, 100};
}

/// One shape-check line; returns `ok` so callers can aggregate.
inline bool shape_check(bool ok, const std::string& claim) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
  return ok;
}

/// Append one bench's metrics registry to BENCH_obs.json as one JSON
/// line: {"bench": <name>, "metrics": <registry JSON>}. Append mode (and
/// one-object-per-line) because the serve benches run back-to-back in CI
/// and share the artifact — consumers parse it as JSON Lines.
inline void append_obs_metrics(const std::string& bench_name,
                               const obs::MetricsRegistry& registry) {
  FILE* f = std::fopen("BENCH_obs.json", "a");
  if (f == nullptr) return;
  std::fprintf(f, "{\"bench\": \"%s\", \"metrics\": %s}\n",
               bench_name.c_str(), registry.json().c_str());
  std::fclose(f);
  std::printf("appended %s metrics registry to BENCH_obs.json\n",
              bench_name.c_str());
}

/// Standard bench banner.
inline void banner(const std::string& artefact, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", artefact.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("mode: %s (set CALLOC_BENCH_FULL=1 for the full paper matrix)\n",
              full_mode() ? "FULL" : "quick");
  std::printf("================================================================\n");
}

}  // namespace cal::bench
