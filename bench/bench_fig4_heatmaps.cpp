// Fig. 4 — CALLOC mean localization error heatmaps: device x building,
// one heatmap per attack (FGSM, PGD, MIM), averaged over the ϵ and ø
// grids (paper: ϵ 0.1..0.5, ø 10..100).
//
// Shapes to reproduce: (a) rows are flat — CALLOC is device-resilient;
// (b) FGSM (the trained-against attack) is no worse than the iterative
// PGD/MIM; (c) errors stay bounded (no collapse) everywhere.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/calloc.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace cal;
  bench::banner("Fig. 4 — CALLOC heatmaps (device x building x attack)",
                "mean error under FGSM/PGD/MIM over the eps/phi grid");

  const auto buildings = bench::bench_building_indices();
  const auto eps_grid = bench::epsilon_grid();
  const auto phi_grid = bench::phi_grid();
  const std::vector<attacks::AttackKind> kinds = {
      attacks::AttackKind::Fgsm, attacks::AttackKind::Pgd,
      attacks::AttackKind::Mim};

  // errors[kind][building][device]
  std::vector<std::vector<std::vector<double>>> errors(
      kinds.size(),
      std::vector<std::vector<double>>(buildings.size(),
                                       std::vector<double>(6, 0.0)));
  std::vector<std::string> row_labels;
  std::vector<std::string> device_names;

  for (std::size_t bi = 0; bi < buildings.size(); ++bi) {
    const sim::Scenario sc = bench::bench_scenario(buildings[bi]);
    row_labels.push_back(sc.building_spec.name);
    device_names = sc.device_names;

    core::CallocConfig cfg;
    cfg.seed = 100 + buildings[bi];
    cfg.train.max_epochs_per_lesson = bench::full_mode() ? 12 : 8;
    core::Calloc model(cfg);
    model.fit(sc.train);
    std::printf("trained CALLOC on %s (%zu lessons, %zu epochs)\n",
                sc.building_spec.name.c_str(),
                model.report().lessons.size(),
                model.report().total_epochs);

    for (std::size_t k = 0; k < kinds.size(); ++k) {
      for (std::size_t d = 0; d < sc.device_tests.size(); ++d) {
        double acc = 0.0;
        std::size_t cells = 0;
        for (double eps : eps_grid) {
          for (double phi : phi_grid) {
            attacks::AttackConfig atk;
            atk.epsilon = eps;
            atk.phi_percent = phi;
            atk.num_steps = 6;
            const auto stats = eval::evaluate_under_attack(
                model, sc.device_tests[d], kinds[k], atk,
                *model.gradient_source());
            acc += stats.error_m.mean;
            ++cells;
          }
        }
        errors[k][bi][d] = acc / static_cast<double>(cells);
      }
    }
  }

  bool ok = true;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    std::printf("\n%s\n",
                render_heatmap("Fig. 4 heatmap — " + to_string(kinds[k]) +
                                   " (mean error, metres)",
                               row_labels, device_names, errors[k])
                    .c_str());
  }

  // Shape checks.
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    for (std::size_t bi = 0; bi < buildings.size(); ++bi) {
      double lo = errors[k][bi][0];
      double hi = errors[k][bi][0];
      for (double e : errors[k][bi]) {
        lo = std::min(lo, e);
        hi = std::max(hi, e);
      }
      ok &= bench::shape_check(
          hi - lo < 3.0, to_string(kinds[k]) + " / " + row_labels[bi] +
                             ": flat row (device resilience, spread < 3 m)");
      const double path =
          static_cast<double>(sim::table2_buildings()[buildings[bi]]
                                  .path_length_m);
      ok &= bench::shape_check(hi < path / 2.0,
                               to_string(kinds[k]) + " / " + row_labels[bi] +
                                   ": bounded error (no collapse)");
    }
  }
  // FGSM (trained-against) no worse than the iterative attacks on average.
  double fgsm_avg = 0.0, iter_avg = 0.0;
  for (std::size_t bi = 0; bi < buildings.size(); ++bi)
    for (std::size_t d = 0; d < 6; ++d) {
      fgsm_avg += errors[0][bi][d];
      iter_avg += 0.5 * (errors[1][bi][d] + errors[2][bi][d]);
    }
  ok &= bench::shape_check(
      fgsm_avg <= iter_avg * 1.1,
      "FGSM error <= PGD/MIM error (stronger iterative attacks)");
  return ok ? 0 : 1;
}
