// Fig. 6 — CALLOC vs state-of-the-art frameworks (AdvLoc, SANGRIA,
// ANVIL, WiDeep) across devices, buildings, ϵ (0.1..0.5) and ø (1..100).
//
// The paper reports CALLOC winning by 1.77x/2.35x (AdvLoc), 2.64x/2.92x
// (SANGRIA), 3.77x/4.26x (ANVIL) and 6.03x/4.6x (WiDeep) on mean /
// worst-case error. Absolute ratios depend on the testbed; the shape to
// reproduce is the ordering: CALLOC best on both statistics, AdvLoc the
// closest competitor, WiDeep the worst.
#include <algorithm>
#include <cstdio>

#include "baselines/surrogate.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "eval/frameworks.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace cal;
  bench::banner("Fig. 6 — CALLOC vs state-of-the-art",
                "lowest mean and worst-case error across the attack grid");

  const std::vector<std::string> frameworks = {"CALLOC", "AdvLoc", "SANGRIA",
                                               "ANVIL", "WiDeep"};
  const auto buildings = bench::bench_building_indices();
  const auto eps_grid = bench::epsilon_grid();
  const auto phi_grid = bench::phi_grid();
  const std::vector<attacks::AttackKind> kinds = {
      attacks::AttackKind::Fgsm, attacks::AttackKind::Pgd,
      attacks::AttackKind::Mim};

  std::vector<double> mean_err(frameworks.size(), 0.0);
  std::vector<double> worst_err(frameworks.size(), 0.0);
  std::vector<std::size_t> cells(frameworks.size(), 0);

  for (std::size_t b : buildings) {
    const sim::Scenario sc = bench::bench_scenario(b);
    baselines::SurrogateGradients surrogate(sc.train, 300 + b);
    for (std::size_t f = 0; f < frameworks.size(); ++f) {
      auto model =
          eval::make_framework(frameworks[f], 60 + b, !bench::full_mode());
      model->fit(sc.train);
      auto& grads = baselines::gradients_for(*model, surrogate);
      for (const auto kind : kinds) {
        for (double eps : eps_grid) {
          for (double phi : phi_grid) {
            attacks::AttackConfig atk;
            atk.epsilon = eps;
            atk.phi_percent = phi;
            atk.num_steps = 6;
            for (const auto& test : sc.device_tests) {
              const auto stats =
                  eval::evaluate_under_attack(*model, test, kind, atk, grads);
              mean_err[f] += stats.error_m.mean;
              worst_err[f] = std::max(worst_err[f], stats.error_m.max);
              ++cells[f];
            }
          }
        }
      }
      std::printf("evaluated %-8s on %s\n", frameworks[f].c_str(),
                  sc.building_spec.name.c_str());
    }
  }

  for (std::size_t f = 0; f < frameworks.size(); ++f)
    mean_err[f] /= static_cast<double>(cells[f]);

  TextTable table({"framework", "mean(m)", "worst-case(m)", "mean ratio",
                   "worst ratio"});
  for (std::size_t f = 0; f < frameworks.size(); ++f) {
    table.add_row(frameworks[f],
                  {mean_err[f], worst_err[f], mean_err[f] / mean_err[0],
                   worst_err[f] / worst_err[0]});
  }
  std::printf("\nFig. 6 — aggregate over attacks x eps x phi x devices x "
              "buildings\n%s\n",
              table.str().c_str());
  std::printf("%s\n", render_bar_chart("Fig. 6 bars — mean error",
                                       frameworks, mean_err)
                          .c_str());
  std::printf("paper ratios for reference: AdvLoc 1.77x/2.35x, SANGRIA "
              "2.64x/2.92x, ANVIL 3.77x/4.26x, WiDeep 6.03x/4.6x\n\n");

  bool ok = true;
  for (std::size_t f = 1; f < frameworks.size(); ++f) {
    ok &= bench::shape_check(mean_err[0] < mean_err[f],
                             "CALLOC mean < " + frameworks[f] + " mean");
    // Worst-case is a single-sample statistic over the whole grid and is
    // inherently noisy at bench scale; allow 15% slack.
    ok &= bench::shape_check(worst_err[0] <= worst_err[f] * 1.15,
                             "CALLOC worst <= " + frameworks[f] +
                                 " worst (15% slack)");
  }
  const std::size_t advloc = 1;
  double best_other = 1e300;
  for (std::size_t f = 2; f < frameworks.size(); ++f)
    best_other = std::min(best_other, mean_err[f]);
  ok &= bench::shape_check(
      mean_err[advloc] <= best_other * 1.1,
      "AdvLoc (adversarially trained) is CALLOC's closest competitor");
  return ok ? 0 : 1;
}
