// §V.A — model footprint and inference latency.
//
// The paper reports 65,239 trainable parameters (42,496 embedding /
// 18,961 attention / 3,782 classifier) in a 254.84 kB model, sized for
// mobile and IoT deployment. This bench audits our parameter accounting
// at the paper's configuration and uses google-benchmark to measure
// single-fingerprint and batch inference latency against the baselines.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <numeric>

#include "common/table.hpp"
#include "attacks/attack.hpp"
#include "core/calloc.hpp"
#include "eval/frameworks.hpp"
#include "sim/collector.hpp"

namespace {

using namespace cal;

/// Shared trained fixtures (built once; benchmarks only measure predict).
struct Fixtures {
  sim::Scenario sc;
  std::unique_ptr<core::Calloc> calloc_model;
  std::unique_ptr<baselines::ILocalizer> dnn;
  std::unique_ptr<baselines::ILocalizer> knn;
  Tensor one;
  Tensor batch;

  Fixtures() : sc(sim::make_scenario(sim::table2_buildings()[2], 7)) {
    core::CallocConfig cfg;
    cfg.train.max_epochs_per_lesson = 6;
    calloc_model = std::make_unique<core::Calloc>(cfg);
    calloc_model->fit(sc.train);
    dnn = eval::make_framework("DNN", 3, /*fast=*/true);
    dnn->fit(sc.train);
    knn = eval::make_framework("KNN", 3);
    knn->fit(sc.train);

    const Tensor all = sc.device_tests.back().normalized();
    one = Tensor({1, all.cols()});
    std::copy(all.row(0).begin(), all.row(0).end(), one.data());
    const std::size_t rows = std::min<std::size_t>(32, all.rows());
    batch = Tensor({rows, all.cols()});
    std::copy(all.data(), all.data() + rows * all.cols(), batch.data());
  }
};

Fixtures& fixtures() {
  static Fixtures f;
  return f;
}

void BM_CallocSingleFingerprint(benchmark::State& state) {
  auto& f = fixtures();
  for (auto _ : state)
    benchmark::DoNotOptimize(f.calloc_model->predict(f.one));
}
BENCHMARK(BM_CallocSingleFingerprint);

void BM_CallocBatch32(benchmark::State& state) {
  auto& f = fixtures();
  for (auto _ : state)
    benchmark::DoNotOptimize(f.calloc_model->predict(f.batch));
}
BENCHMARK(BM_CallocBatch32);

void BM_DnnSingleFingerprint(benchmark::State& state) {
  auto& f = fixtures();
  for (auto _ : state) benchmark::DoNotOptimize(f.dnn->predict(f.one));
}
BENCHMARK(BM_DnnSingleFingerprint);

void BM_KnnSingleFingerprint(benchmark::State& state) {
  auto& f = fixtures();
  for (auto _ : state) benchmark::DoNotOptimize(f.knn->predict(f.one));
}
BENCHMARK(BM_KnnSingleFingerprint);

void BM_CallocFgsmCrafting(benchmark::State& state) {
  auto& f = fixtures();
  attacks::AttackConfig atk;
  atk.epsilon = 0.3;
  const std::vector<std::size_t> y{0};
  for (auto _ : state)
    benchmark::DoNotOptimize(attacks::fgsm_attack(
        *f.calloc_model->gradient_source(), f.one, y, atk));
}
BENCHMARK(BM_CallocFgsmCrafting);

}  // namespace

int main(int argc, char** argv) {
  using namespace cal;

  std::printf("================================================================\n");
  std::printf("Sec. V.A — model footprint audit + inference latency\n");
  std::printf("================================================================\n");

  // Parameter audit at the paper's published configuration.
  core::CallocModelConfig paper;
  paper.num_aps = 165;  // reproduces the embedding count of Sec. V.A exactly
  paper.num_rps = 61;
  core::CallocModel model(paper);
  TextTable audit({"component", "ours", "paper"});
  audit.add_row({"embedding layers",
                 std::to_string(model.embedding_parameter_count()), "42,496"});
  audit.add_row({"attention layer",
                 std::to_string(model.attention_parameter_count()), "18,961"});
  audit.add_row({"final FC layer",
                 std::to_string(model.classifier_parameter_count()), "3,782"});
  audit.add_row({"total", std::to_string(model.parameter_count()), "65,239"});
  audit.add_row({"serialized size (kB)",
                 std::to_string(model.weight_bytes() / 1024), "254.84"});
  std::printf("\n%s\n", audit.str().c_str());
  std::printf("(embedding and FC counts match the paper exactly; our "
              "attention layer uses two 128->64 projections plus a learned "
              "temperature — 16,513 parameters vs the paper's 18,961 — see "
              "EXPERIMENTS.md)\n\n");

  const bool ok =
      model.embedding_parameter_count() == 42496 &&
      model.classifier_parameter_count() == 3782 &&
      model.weight_bytes() < 300 * 1024;
  std::printf("  [%s] embedding + FC parameter counts match Sec. V.A; model "
              "under 300 kB\n\n",
              ok ? "PASS" : "FAIL");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return ok ? 0 : 1;
}
