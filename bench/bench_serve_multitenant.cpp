// Multi-tenant serving engine: routing, shard isolation, and the
// screening-work scaling claim — per-request screening cost follows the
// routed shard's anchor count, NOT the fleet-wide anchor total, so adding
// venues to the process leaves each venue's per-request work unchanged.
//
// Tenants are KNN models (training-free, deterministic): the bench
// measures the serving architecture, not the localizer. Venues are real
// Table II buildings, so shard anchor databases have realistic sizes and
// cluster structure.
//
// Emits BENCH_serve_multitenant.json for the CI perf-trajectory artifact.
//
// Run: ./build/bench/bench_serve_multitenant   (CALLOC_BENCH_FULL=1 for
// all five Table II venues and the larger request count)
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "baselines/knn.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "serve/router.hpp"
#include "sim/fleet.hpp"

namespace {

using namespace cal;
using Clock = std::chrono::steady_clock;

serve::ModelRegistry build_registry(std::span<const sim::Scenario> fleet) {
  serve::ModelRegistry registry;
  for (const auto& sc : fleet) {
    serve::TenantSpec spec;
    const data::FingerprintDataset& train = sc.train;
    spec.factory = [&train] {
      auto model = std::make_unique<baselines::Knn>(3);
      model->fit(train);
      return model;
    };
    spec.num_aps = train.num_aps();
    spec.anchors = serve::anchor_database_from(train);
    // Screen calibrated on the venue's clean online fleet capture.
    spec.service.screening = serve::calibrate_thresholds(
        spec.anchors, sim::merged_device_capture(sc).normalized(), 95.0,
        3.0);
    spec.service.num_workers = 2;
    spec.service.max_batch = 16;
    spec.service.queue_capacity = 512;
    spec.service.cache_capacity = 0;  // measure screening, not the cache
    registry.register_tenant({sc.building_spec.name, 0, "OP3"},
                             std::move(spec));
  }
  registry.set_profile_fallbacks({"OP3"});
  return registry;
}

/// Submit the stream (optionally restricted to one venue) and wait for
/// every result. Returns the wall-clock seconds of the drive.
double drive(serve::MultiTenantService& service,
             std::span<const sim::Scenario> fleet,
             std::span<const sim::FleetRequest> stream,
             const std::vector<std::vector<Tensor>>& pools,
             std::optional<std::size_t> only_venue = std::nullopt) {
  std::vector<std::future<serve::ServeResult>> futs;
  futs.reserve(stream.size());
  const auto t0 = Clock::now();
  for (const auto& req : stream) {
    if (only_venue && req.venue != *only_venue) continue;
    const auto fp = pools[req.venue][req.device].row(req.row);
    auto sub = service.submit(
        {fleet[req.venue].building_spec.name, 0, "OP3"},
        {fp.begin(), fp.end()});
    futs.push_back(std::move(sub.result));
  }
  for (auto& f : futs) f.get();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

int main() {
  using namespace cal;
  bench::banner(
      "bench_serve_multitenant — routed, sharded serving",
      "claim: per-request screening work scales with the routed shard's "
      "anchor count, not the fleet-wide anchor total");

  const std::vector<std::size_t> venues =
      bench::full_mode() ? std::vector<std::size_t>{0, 1, 2, 3, 4}
                         : std::vector<std::size_t>{0, 2, 3};
  const std::size_t train_spr = bench::full_mode() ? 5 : 2;
  const auto fleet = sim::make_table2_fleet(venues, 2024, train_spr, 1);
  const std::size_t n_requests = bench::full_mode() ? 20000 : 3000;

  // Pre-normalised request pools: pools[venue][device].
  std::vector<std::vector<Tensor>> pools(fleet.size());
  for (std::size_t v = 0; v < fleet.size(); ++v)
    for (const auto& test : fleet[v].device_tests)
      pools[v].push_back(test.normalized());

  const auto stream =
      sim::fleet_request_stream(fleet, n_requests, 31, /*repeat_prob=*/0.2);

  // -- Run 1: the full multi-venue fleet -----------------------------------
  serve::MultiTenantService service(build_registry(fleet));
  const double wall = drive(service, fleet, stream, pools);
  service.shutdown();
  const auto stats = service.stats();

  // -- Run 2: venue 0 alone, fed the IDENTICAL venue-0 requests ------------
  // Same queries against a single-tenant deployment: if sharding works,
  // venue 0's per-request screening work must be identical in both runs.
  serve::MultiTenantService solo(
      build_registry(std::span(fleet).first(1)));
  drive(solo, fleet, stream, pools, /*only_venue=*/0);
  solo.shutdown();
  const auto solo_stats = solo.stats();

  // -- Report --------------------------------------------------------------
  // Resolve venue 0's shard through the router: shard ids are
  // TenantKey-sorted, which need not match the fleet's venue order.
  const serve::TenantKey venue0_key{fleet[0].building_spec.name, 0, "OP3"};
  const auto& venue0 =
      stats.per_tenant[service.router().route(venue0_key).shard].stats;
  const auto& venue0_solo =
      solo_stats.per_tenant[solo.router().route(venue0_key).shard].stats;

  std::size_t total_anchors = 0;
  for (std::size_t shard = 0; shard < service.num_shards(); ++shard)
    total_anchors += service.lane(shard).screen().num_anchors();

  TextTable table({"tenant", "anchors", "screened", "mean scanned",
                   "pruned %", "flag+rej", "req/s"});
  for (std::size_t shard = 0; shard < stats.per_tenant.size(); ++shard) {
    const auto& t = stats.per_tenant[shard];
    const double pruned_pct =
        t.stats.anchors_scanned + t.stats.anchors_pruned > 0
            ? 100.0 * static_cast<double>(t.stats.anchors_pruned) /
                  static_cast<double>(t.stats.anchors_scanned +
                                      t.stats.anchors_pruned)
            : 0.0;
    table.add_row(
        {t.tenant.str(),
         std::to_string(service.lane(shard).screen().num_anchors()),
         std::to_string(t.stats.screened), fmt(t.stats.mean_anchors_scanned),
         fmt(pruned_pct), std::to_string(t.stats.flagged + t.stats.rejected),
         fmt(t.stats.throughput_rps)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("fleet: %zu venues, %zu anchors total, %zu requests in %.2f s "
              "(%.0f req/s end-to-end)\n",
              fleet.size(), total_anchors, stream.size(), wall,
              static_cast<double>(stream.size()) / wall);
  std::printf("venue-0 mean anchors scanned: %.3f in the %zu-venue fleet "
              "vs %.3f alone\n\n",
              venue0.mean_anchors_scanned, fleet.size(),
              venue0_solo.mean_anchors_scanned);

  // A misrouted client: unknown venue must reject deterministically.
  serve::MultiTenantService reject_probe(
      build_registry(std::span(fleet).first(1)));
  const auto fp = pools[0][0].row(0);
  auto stray =
      reject_probe.submit({"no-such-venue", 0, "OP3"}, {fp.begin(), fp.end()});
  const bool stray_rejected =
      stray.decision.status == serve::RouteDecision::Status::Reject &&
      !stray.result.get().localized;
  auto fallback =
      reject_probe.submit({fleet[0].building_spec.name, 0, "S7"},
                          {fp.begin(), fp.end()});
  const bool fallback_served =
      fallback.decision.status == serve::RouteDecision::Status::Fallback &&
      fallback.result.get().localized;
  reject_probe.shutdown();

  // Machine-readable trajectory for CI artifacts.
  {
    FILE* f = std::fopen("BENCH_serve_multitenant.json", "w");
    if (f != nullptr) {
      std::fprintf(f, "{\n  \"bench\": \"bench_serve_multitenant\",\n");
      std::fprintf(f, "  \"mode\": \"%s\",\n",
                   bench::full_mode() ? "full" : "quick");
      std::fprintf(f, "  \"venues\": %zu,\n  \"total_anchors\": %zu,\n",
                   fleet.size(), total_anchors);
      std::fprintf(f, "  \"requests\": %zu,\n  \"fleet_rps\": %.1f,\n",
                   stream.size(),
                   static_cast<double>(stream.size()) / wall);
      std::fprintf(f, "  \"shards\": [\n");
      for (std::size_t shard = 0; shard < stats.per_tenant.size(); ++shard) {
        const auto& t = stats.per_tenant[shard];
        std::fprintf(
            f,
            "    {\"tenant\": \"%s\", \"anchors\": %zu, \"screened\": %zu,\n"
            "     \"mean_anchors_scanned\": %.3f, \"anchors_pruned\": %zu,\n"
            "     \"flagged\": %zu, \"rejected\": %zu, \"rps\": %.1f}%s\n",
            t.tenant.str().c_str(),
            service.lane(shard).screen().num_anchors(), t.stats.screened,
            t.stats.mean_anchors_scanned, t.stats.anchors_pruned,
            t.stats.flagged, t.stats.rejected, t.stats.throughput_rps,
            shard + 1 < stats.per_tenant.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
      std::fprintf(f, "  \"venue0_scanned_in_fleet\": %.3f,\n",
                   venue0.mean_anchors_scanned);
      std::fprintf(f, "  \"venue0_scanned_alone\": %.3f\n}\n",
                   venue0_solo.mean_anchors_scanned);
      std::fclose(f);
      std::printf("wrote BENCH_serve_multitenant.json\n\n");
    }
  }

  // -- Shape checks --------------------------------------------------------
  bool ok = true;
  for (std::size_t shard = 0; shard < stats.per_tenant.size(); ++shard) {
    const auto& t = stats.per_tenant[shard];
    const auto shard_anchors =
        static_cast<double>(service.lane(shard).screen().num_anchors());
    ok &= bench::shape_check(
        t.stats.mean_anchors_scanned <= shard_anchors,
        "shard " + t.tenant.str() + " screening work <= its " +
            std::to_string(service.lane(shard).screen().num_anchors()) +
            " anchors (got " + fmt(t.stats.mean_anchors_scanned) + ")");
  }
  ok &= bench::shape_check(
      stats.aggregate.mean_anchors_scanned <
          0.5 * static_cast<double>(total_anchors),
      "mean screening work (" + fmt(stats.aggregate.mean_anchors_scanned) +
          ") < half the fleet anchor total (" +
          std::to_string(total_anchors) + ")");
  // Identical venue-0 queries: the shard does exactly the same screening
  // work whether it shares the process with 0 or N-1 other venues.
  ok &= bench::shape_check(
      venue0.mean_anchors_scanned == venue0_solo.mean_anchors_scanned,
      "venue-0 per-request screening work is independent of fleet size");
  ok &= bench::shape_check(stray_rejected,
                           "unknown venue rejects deterministically");
  ok &= bench::shape_check(fallback_served,
                           "unknown device profile falls back to OP3 model");
  return ok ? 0 : 1;
}
