// ServeEngine multi-tenant bench: the shared-pool redesign's three
// CI-enforced claims, plus the PR 4 screening-work scaling claim.
//
//   1. THREADS — the engine's OS thread count is pool_size, independent
//      of how many tenants are deployed (the retired per-lane model
//      spawned tenants × workers threads).
//   2. HOT RELOAD — routed predictions stay bit-identical to sequential
//      per-tenant predict() across a mid-stream reload+deploy of one
//      venue (RCU snapshot swap, same trained weights).
//   3. ISOLATION — a tenant saturating the engine (flood threads, shed by
//      its token-bucket quota) leaves a quiet tenant's p99 within a
//      bounded factor of its uncontended p99.
//   4. SHARDING — per-request screening work tracks the routed shard's
//      anchor count, NOT the fleet-wide anchor total (unchanged).
//
// Tenants are KNN models (training-free, deterministic): the bench
// measures the serving architecture, not the localizer. Venues are real
// Table II buildings, so shard anchor databases have realistic sizes and
// cluster structure.
//
// Emits BENCH_serve_multitenant.json for the CI perf-trajectory artifact.
//
// Run: ./build/bench/bench_serve_multitenant   (CALLOC_BENCH_FULL=1 for
// all five Table II venues and the larger request count)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "baselines/knn.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "serve/engine.hpp"
#include "sim/fleet.hpp"

namespace {

using namespace cal;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kPoolSize = 4;

/// Threads of this process, via /proc/self/task; 0 when unavailable
/// (non-Linux), in which case the thread-count check is skipped.
std::size_t os_thread_count() {
  try {
    return static_cast<std::size_t>(std::distance(
        std::filesystem::directory_iterator("/proc/self/task"),
        std::filesystem::directory_iterator{}));
  } catch (const std::filesystem::filesystem_error&) {
    return 0;
  }
}

serve::TenantKey venue_key(const sim::Scenario& sc) {
  return {sc.building_spec.name, 0, "OP3"};
}

serve::TenantSpec venue_spec(const sim::Scenario& sc) {
  serve::TenantSpec spec;
  const data::FingerprintDataset& train = sc.train;
  spec.factory = [&train] {
    auto model = std::make_unique<baselines::Knn>(3);
    model->fit(train);
    return model;
  };
  spec.num_aps = train.num_aps();
  spec.anchors = serve::anchor_database_from(train);
  // Screen calibrated on the venue's clean online fleet capture.
  spec.service.screening = serve::calibrate_thresholds(
      spec.anchors, sim::merged_device_capture(sc).normalized(), 95.0, 3.0);
  spec.service.num_workers = 2;  // replica slots, NOT threads
  spec.service.max_batch = 16;
  spec.service.queue_capacity = 512;
  spec.service.cache_capacity = 0;  // measure screening, not the cache
  return spec;
}

serve::ModelRegistry build_registry(std::span<const sim::Scenario> fleet) {
  serve::ModelRegistry registry;
  for (const auto& sc : fleet)
    registry.register_tenant(venue_key(sc), venue_spec(sc));
  registry.set_profile_fallbacks({"OP3"});
  return registry;
}

/// Blocking submit for drive loops: the engine's typed denials are
/// retried (queues are sized so QueueFull stays rare here).
serve::EngineSubmission submit_blocking(serve::ServeEngine& engine,
                                        const serve::TenantKey& key,
                                        const std::vector<float>& fp) {
  return engine.submit_blocking(key, fp);
}

struct DriveResult {
  double wall_seconds = 0.0;
  bool bit_identical = true;  ///< vs. sequential per-tenant ground truth
};

/// Submit the stream (optionally restricted to one venue), wait for every
/// result, and verify each prediction against `expected` (the venues' own
/// models run sequentially). When `reload` is set, venue 0 is hot-
/// reloaded (same training data → bit-identical weights) and redeployed
/// mid-stream — predictions must not change.
DriveResult drive(serve::ServeEngine& engine, serve::ModelRegistry* reload,
                  std::span<const sim::Scenario> fleet,
                  std::span<const sim::FleetRequest> stream,
                  const std::vector<std::vector<Tensor>>& pools,
                  const std::vector<std::vector<std::vector<std::size_t>>>&
                      expected,
                  std::optional<std::size_t> only_venue = std::nullopt) {
  struct Sent {
    sim::FleetRequest req;
    std::future<serve::ServeResult> fut;
  };
  std::vector<Sent> sent;
  sent.reserve(stream.size());
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (reload != nullptr && i == stream.size() / 2) {
      reload->reload_tenant(venue_key(fleet[0]), venue_spec(fleet[0]));
      engine.deploy(reload->publish());
    }
    const auto& req = stream[i];
    if (only_venue && req.venue != *only_venue) continue;
    const auto fp = pools[req.venue][req.device].row(req.row);
    auto sub = submit_blocking(engine, venue_key(fleet[req.venue]),
                               {fp.begin(), fp.end()});
    sent.push_back({req, std::move(sub.result)});
  }
  DriveResult out;
  for (auto& s : sent) {
    const auto res = s.fut.get();
    // Screen-rejected requests are never localized (by design, identically
    // in both deployments); every SERVED prediction must match the
    // venue's own model run sequentially.
    if (res.localized &&
        res.rp != expected[s.req.venue][s.req.device][s.req.row])
      out.bit_identical = false;
  }
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// Quiet tenant's p99 while (optionally) a saturating tenant floods the
/// engine through its quota. Fresh engine per call so stats are clean.
struct IsolationResult {
  double quiet_p99_ms = 0.0;
  std::size_t flood_over_quota = 0;
  std::size_t flood_queue_full = 0;
  std::size_t flood_sent = 0;
};

IsolationResult run_isolation(std::span<const sim::Scenario> fleet,
                              const std::vector<std::vector<Tensor>>& pools,
                              bool with_flood, std::size_t quiet_requests) {
  const sim::Scenario& quiet_venue = fleet[0];
  const sim::Scenario& loud_venue = fleet[1];
  serve::ModelRegistry registry;
  registry.register_tenant(venue_key(quiet_venue), venue_spec(quiet_venue));
  serve::TenantSpec loud = venue_spec(loud_venue);
  // The isolation mechanism under test: the saturator is admitted at a
  // bounded rate; everything beyond it is shed at the door.
  loud.service.quota.rate_per_s = 2000.0;
  loud.service.quota.burst = 256.0;
  loud.service.queue_capacity = 256;
  registry.register_tenant(venue_key(loud_venue), std::move(loud));
  registry.set_profile_fallbacks({"OP3"});

  serve::EngineConfig cfg;
  cfg.pool_size = 2;
  serve::ServeEngine engine(registry.publish(), cfg);
  engine.reset_telemetry_clocks();

  std::atomic<bool> quiet_done{false};
  IsolationResult out;
  std::thread flooder;
  if (with_flood) {
    flooder = std::thread([&] {
      const Tensor& pool = pools[1][0];
      std::size_t row = 0;
      while (!quiet_done.load(std::memory_order_relaxed)) {
        const auto fp = pool.row(row);
        const auto sub =
            engine.submit(venue_key(loud_venue), {fp.begin(), fp.end()});
        ++out.flood_sent;
        if (sub.admission == serve::Admission::OverQuota)
          ++out.flood_over_quota;
        if (sub.admission == serve::Admission::QueueFull)
          ++out.flood_queue_full;
        row = (row + 1) % pool.rows();
      }
    });
  }

  // The quiet tenant: steady paced traffic, one request per millisecond.
  std::vector<std::future<serve::ServeResult>> futs;
  futs.reserve(quiet_requests);
  const Tensor& pool = pools[0][0];
  for (std::size_t i = 0; i < quiet_requests; ++i) {
    const auto fp = pool.row(i % pool.rows());
    futs.push_back(submit_blocking(engine, venue_key(quiet_venue),
                                   {fp.begin(), fp.end()})
                       .result);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& f : futs) f.get();
  quiet_done.store(true, std::memory_order_relaxed);
  if (flooder.joinable()) flooder.join();

  const auto stats = engine.stats();
  const auto quiet_shard =
      engine.snapshot()->route(venue_key(quiet_venue)).shard;
  out.quiet_p99_ms = stats.per_tenant[quiet_shard].stats.latency_p99_ms;
  engine.shutdown();
  return out;
}

}  // namespace

int main() {
  using namespace cal;
  bench::banner(
      "bench_serve_multitenant — ServeEngine shared-pool serving",
      "claims: OS threads track pool_size (not tenant count); predictions "
      "stay bit-identical across a mid-stream hot reload; a quota-capped "
      "saturator leaves a quiet tenant's p99 bounded; screening work "
      "scales with the routed shard's anchors");

  const std::vector<std::size_t> venues =
      bench::full_mode() ? std::vector<std::size_t>{0, 1, 2, 3, 4}
                         : std::vector<std::size_t>{0, 2, 3};
  const std::size_t train_spr = bench::full_mode() ? 5 : 2;
  const auto fleet = sim::make_table2_fleet(venues, 2024, train_spr, 1);
  const std::size_t n_requests = bench::full_mode() ? 20000 : 3000;

  // Pre-normalised request pools: pools[venue][device].
  std::vector<std::vector<Tensor>> pools(fleet.size());
  for (std::size_t v = 0; v < fleet.size(); ++v)
    for (const auto& test : fleet[v].device_tests)
      pools[v].push_back(test.normalized());

  // Sequential ground truth: each venue's own model on its own traffic —
  // the bit-identity reference for the routed + hot-reloaded runs.
  std::vector<std::vector<std::vector<std::size_t>>> expected(fleet.size());
  for (std::size_t v = 0; v < fleet.size(); ++v) {
    baselines::Knn knn(3);
    knn.fit(fleet[v].train);
    for (const auto& test : fleet[v].device_tests)
      expected[v].push_back(knn.predict(test.normalized()));
  }

  const auto stream =
      sim::fleet_request_stream(fleet, n_requests, 31, /*repeat_prob=*/0.2);

  // -- Run 1: full fleet on one shared pool, hot reload mid-stream --------
  const std::size_t threads_before_fleet = os_thread_count();
  serve::ModelRegistry registry = build_registry(fleet);
  serve::EngineConfig cfg;
  cfg.pool_size = kPoolSize;
  serve::ServeEngine service(registry.publish(), cfg);
  service.reset_telemetry_clocks();
  const std::size_t fleet_thread_delta =
      threads_before_fleet > 0 ? os_thread_count() - threads_before_fleet
                               : 0;
  const DriveResult fleet_run =
      drive(service, &registry, fleet, stream, pools, expected);
  const auto stats = service.stats();
  service.shutdown();
  // Full fleet metrics registry — per-tenant counters, latency
  // histograms, deploy epoch — for the CI observability artifact.
  bench::append_obs_metrics("bench_serve_multitenant", service.metrics());

  // -- Run 2: venue 0 alone, fed the IDENTICAL venue-0 requests ------------
  // Same queries against a single-tenant deployment on the SAME pool
  // size: per-request screening work and thread count must be identical.
  const std::size_t threads_before_solo = os_thread_count();
  serve::ModelRegistry solo_registry =
      build_registry(std::span(fleet).first(1));
  serve::ServeEngine solo(solo_registry.publish(), cfg);
  const std::size_t solo_thread_delta =
      threads_before_solo > 0 ? os_thread_count() - threads_before_solo : 0;
  drive(solo, nullptr, fleet, stream, pools, expected, /*only_venue=*/0);
  const auto solo_stats = solo.stats();
  solo.shutdown();

  // -- Run 3: quota isolation — quiet tenant vs saturating tenant ----------
  const std::size_t quiet_requests = bench::full_mode() ? 400 : 150;
  const IsolationResult calm =
      run_isolation(fleet, pools, /*with_flood=*/false, quiet_requests);
  const IsolationResult loaded =
      run_isolation(fleet, pools, /*with_flood=*/true, quiet_requests);
  // Bounded-interference contract: generous enough for shared CI runners,
  // tight enough that an unfair pool (quiet batches starved behind the
  // flood) blows through it.
  const double isolation_bound_ms =
      std::max(10.0 * std::max(calm.quiet_p99_ms, 0.5), 25.0);

  // -- Report --------------------------------------------------------------
  const serve::TenantKey venue0_key = venue_key(fleet[0]);
  const auto venue0_shard = stats.per_tenant.empty()
                                ? std::size_t{0}
                                : service.snapshot()->route(venue0_key).shard;
  const auto& venue0 = stats.per_tenant[venue0_shard].stats;
  const auto& venue0_solo = solo_stats.per_tenant[0].stats;

  std::size_t total_anchors = 0;
  for (std::size_t shard = 0; shard < stats.per_tenant.size(); ++shard)
    total_anchors +=
        service.tenant_screen(stats.per_tenant[shard].tenant).num_anchors();

  TextTable table({"tenant", "anchors", "screened", "mean scanned",
                   "pruned %", "flag+rej", "req/s"});
  for (std::size_t shard = 0; shard < stats.per_tenant.size(); ++shard) {
    const auto& t = stats.per_tenant[shard];
    const double pruned_pct =
        t.stats.anchors_scanned + t.stats.anchors_pruned > 0
            ? 100.0 * static_cast<double>(t.stats.anchors_pruned) /
                  static_cast<double>(t.stats.anchors_scanned +
                                      t.stats.anchors_pruned)
            : 0.0;
    table.add_row(
        {t.tenant.str(),
         std::to_string(service.tenant_screen(t.tenant).num_anchors()),
         std::to_string(t.stats.screened), fmt(t.stats.mean_anchors_scanned),
         fmt(pruned_pct), std::to_string(t.stats.flagged + t.stats.rejected),
         fmt(t.stats.throughput_rps)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("fleet: %zu venues on ONE pool of %zu threads, %zu anchors "
              "total, %zu requests in %.2f s (%.0f req/s end-to-end), "
              "hot-reloaded venue 0 mid-stream (epoch %llu, %zu deploys)\n",
              fleet.size(), service.pool_size(), total_anchors,
              stream.size(), fleet_run.wall_seconds,
              static_cast<double>(stream.size()) / fleet_run.wall_seconds,
              static_cast<unsigned long long>(stats.snapshot_epoch),
              stats.deploys);
  std::printf("threads: +%zu with %zu tenants, +%zu with 1 tenant "
              "(pool_size %zu)\n",
              fleet_thread_delta, fleet.size(), solo_thread_delta, kPoolSize);
  std::printf("venue-0 mean anchors scanned: %.3f in the %zu-venue fleet "
              "vs %.3f alone\n",
              venue0.mean_anchors_scanned, fleet.size(),
              venue0_solo.mean_anchors_scanned);
  std::printf("isolation: quiet p99 %.2f ms alone vs %.2f ms beside a "
              "flood (%zu sent, %zu over-quota, %zu queue-full; bound "
              "%.2f ms)\n\n",
              calm.quiet_p99_ms, loaded.quiet_p99_ms, loaded.flood_sent,
              loaded.flood_over_quota, loaded.flood_queue_full,
              isolation_bound_ms);

  // A misrouted client: unknown venue must reject, typed and immediate.
  serve::ModelRegistry probe_registry =
      build_registry(std::span(fleet).first(1));
  serve::ServeEngine reject_probe(probe_registry.publish(), cfg);
  const auto fp = pools[0][0].row(0);
  auto stray = reject_probe.submit({"no-such-venue", 0, "OP3"},
                                   {fp.begin(), fp.end()});
  const bool stray_rejected =
      stray.admission == serve::Admission::Rejected &&
      stray.decision.status == serve::RouteDecision::Status::Reject &&
      !stray.result.get().localized;
  auto fallback =
      reject_probe.submit({fleet[0].building_spec.name, 0, "S7"},
                          {fp.begin(), fp.end()});
  const bool fallback_served =
      fallback.admission == serve::Admission::Accepted &&
      fallback.decision.status == serve::RouteDecision::Status::Fallback &&
      fallback.result.get().localized;
  reject_probe.shutdown();

  // Machine-readable trajectory for CI artifacts.
  {
    FILE* f = std::fopen("BENCH_serve_multitenant.json", "w");
    if (f != nullptr) {
      std::fprintf(f, "{\n  \"bench\": \"bench_serve_multitenant\",\n");
      std::fprintf(f, "  \"mode\": \"%s\",\n",
                   bench::full_mode() ? "full" : "quick");
      std::fprintf(f, "  \"pool_size\": %zu,\n", kPoolSize);
      std::fprintf(f, "  \"threads_fleet_delta\": %zu,\n", fleet_thread_delta);
      std::fprintf(f, "  \"threads_solo_delta\": %zu,\n", solo_thread_delta);
      std::fprintf(f, "  \"venues\": %zu,\n  \"total_anchors\": %zu,\n",
                   fleet.size(), total_anchors);
      std::fprintf(f, "  \"requests\": %zu,\n  \"fleet_rps\": %.1f,\n",
                   stream.size(),
                   static_cast<double>(stream.size()) /
                       fleet_run.wall_seconds);
      std::fprintf(f, "  \"reload_bit_identical\": %s,\n",
                   fleet_run.bit_identical ? "true" : "false");
      std::fprintf(f, "  \"quiet_p99_solo_ms\": %.3f,\n", calm.quiet_p99_ms);
      std::fprintf(f, "  \"quiet_p99_loaded_ms\": %.3f,\n",
                   loaded.quiet_p99_ms);
      std::fprintf(f, "  \"flood_over_quota\": %zu,\n",
                   loaded.flood_over_quota);
      std::fprintf(f, "  \"shards\": [\n");
      for (std::size_t shard = 0; shard < stats.per_tenant.size(); ++shard) {
        const auto& t = stats.per_tenant[shard];
        std::fprintf(
            f,
            "    {\"tenant\": \"%s\", \"anchors\": %zu, \"screened\": %zu,\n"
            "     \"mean_anchors_scanned\": %.3f, \"anchors_pruned\": %zu,\n"
            "     \"flagged\": %zu, \"rejected\": %zu, \"rps\": %.1f}%s\n",
            t.tenant.str().c_str(),
            service.tenant_screen(t.tenant).num_anchors(), t.stats.screened,
            t.stats.mean_anchors_scanned, t.stats.anchors_pruned,
            t.stats.flagged, t.stats.rejected, t.stats.throughput_rps,
            shard + 1 < stats.per_tenant.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
      std::fprintf(f, "  \"venue0_scanned_in_fleet\": %.3f,\n",
                   venue0.mean_anchors_scanned);
      std::fprintf(f, "  \"venue0_scanned_alone\": %.3f\n}\n",
                   venue0_solo.mean_anchors_scanned);
      std::fclose(f);
      std::printf("wrote BENCH_serve_multitenant.json\n\n");
    }
  }

  // -- Shape checks --------------------------------------------------------
  bool ok = true;
  // 1. Shared pool: OS threads track pool_size, never tenant count.
  if (threads_before_fleet > 0 && threads_before_solo > 0) {
    ok &= bench::shape_check(
        fleet_thread_delta == kPoolSize,
        "engine with " + std::to_string(fleet.size()) +
            " tenants spawns exactly pool_size=" +
            std::to_string(kPoolSize) + " threads (got +" +
            std::to_string(fleet_thread_delta) + ")");
    ok &= bench::shape_check(
        solo_thread_delta == fleet_thread_delta,
        "thread count is independent of tenant count (1 tenant: +" +
            std::to_string(solo_thread_delta) + ")");
  } else {
    std::printf("  [SKIP] /proc/self/task unavailable; thread-count check "
                "skipped\n");
  }
  // 2. Hot reload: bit-identity held across the mid-stream swap.
  ok &= bench::shape_check(
      fleet_run.bit_identical,
      "routed predictions bit-identical to sequential per-tenant predict "
      "across a mid-stream hot reload");
  ok &= bench::shape_check(stats.reload_flushes == 1,
                           "mid-stream reload flushed exactly one tenant");
  // 3. Isolation: the quota keeps the flood from starving the quiet lane.
  ok &= bench::shape_check(
      loaded.flood_over_quota > 0,
      "the saturator actually hit its admission quota (" +
          std::to_string(loaded.flood_over_quota) + " shed)");
  ok &= bench::shape_check(
      loaded.quiet_p99_ms <= isolation_bound_ms,
      "quiet tenant p99 beside the flood (" + fmt(loaded.quiet_p99_ms) +
          " ms) within bound (" + fmt(isolation_bound_ms) + " ms)");
  // 4. Screening work scales with the shard, not the fleet.
  for (std::size_t shard = 0; shard < stats.per_tenant.size(); ++shard) {
    const auto& t = stats.per_tenant[shard];
    const auto shard_anchors = static_cast<double>(
        service.tenant_screen(t.tenant).num_anchors());
    ok &= bench::shape_check(
        t.stats.mean_anchors_scanned <= shard_anchors,
        "shard " + t.tenant.str() + " screening work <= its " +
            std::to_string(static_cast<std::size_t>(shard_anchors)) +
            " anchors (got " + fmt(t.stats.mean_anchors_scanned) + ")");
  }
  ok &= bench::shape_check(
      stats.aggregate.mean_anchors_scanned <
          0.5 * static_cast<double>(total_anchors),
      "mean screening work (" + fmt(stats.aggregate.mean_anchors_scanned) +
          ") < half the fleet anchor total (" +
          std::to_string(total_anchors) + ")");
  // Identical venue-0 queries: the shard does exactly the same screening
  // work whether it shares the process with 0 or N-1 other venues.
  ok &= bench::shape_check(
      venue0.mean_anchors_scanned == venue0_solo.mean_anchors_scanned,
      "venue-0 per-request screening work is independent of fleet size");
  ok &= bench::shape_check(stray_rejected,
                           "unknown venue rejects deterministically (typed)");
  ok &= bench::shape_check(fallback_served,
                           "unknown device profile falls back to OP3 model");
  return ok ? 0 : 1;
}
