// ServeEngine chaos bench: deterministic fault injection against a live
// multi-tenant fleet, CI-enforcing the fault-containment claims.
//
//   1. CONTAINMENT — with one tenant's replicas faulting on a seeded
//      schedule (p=0.85 via CAL_FAULT_POINT("chaos.predict")), the
//      HEALTHY tenants keep >= 99% availability and their p99 stays
//      within a bounded factor of the no-fault baseline.
//   2. TYPED BLAST RADIUS — the faulty tenant's failures surface as
//      ServeStatus::Faulted results, breaker opens, and BreakerOpen
//      fast-fails; never as hangs, crashes, or wrong answers.
//   3. BIT-IDENTITY UNDER FAULTS — every SERVED row, on every tenant,
//      still matches sequential per-tenant predict() exactly: the
//      per-row containment retry runs the same model on the same input.
//   4. HEAL — after the outage, disarming the site and redeploying the
//      faulty tenant restores service (quarantined slots rebuilt).
//
// Built with -DCALLOC_FAULT_INJECTION=OFF (the default), the fault site
// compiles to nothing: this bench then asserts the inverse shape — zero
// faults, zero breaker activity, 100% availability everywhere — so the
// OFF configuration in CI proves the kill switch strips the chaos
// surface from release binaries.
//
// Emits BENCH_serve_chaos.json for the CI perf-trajectory artifact.
//
// Run: ./build/bench/bench_serve_chaos   (CALLOC_BENCH_FULL=1 for all
// five Table II venues and the larger request count)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "baselines/knn.hpp"
#include "bench_util.hpp"
#include "common/fault_inject.hpp"
#include "common/table.hpp"
#include "serve/engine.hpp"
#include "sim/fleet.hpp"

namespace {

using namespace cal;

constexpr std::size_t kPoolSize = 4;
constexpr std::size_t kFaultyVenue = 1;  // index into the bench fleet
constexpr double kFaultProbability = 0.85;
constexpr std::uint64_t kFaultSeed = 4242;

/// KNN replica with a fault site in front of inference — the ONLY
/// difference from the healthy tenants' replicas. With fault injection
/// compiled out the macro vanishes and this is a plain KNN delegate.
class ChaosKnn : public baselines::ILocalizer {
 public:
  explicit ChaosKnn(const data::FingerprintDataset& train) : inner_(3) {
    inner_.fit(train);
  }
  void fit(const data::FingerprintDataset&) override {}
  std::vector<std::size_t> predict(const Tensor& x) override {
    CAL_FAULT_POINT("chaos.predict");
    return inner_.predict(x);
  }
  std::string name() const override { return "ChaosKnn"; }

 private:
  baselines::Knn inner_;
};

serve::TenantKey venue_key(const sim::Scenario& sc) {
  return {sc.building_spec.name, 0, "OP3"};
}

serve::TenantSpec venue_spec(const sim::Scenario& sc, bool faulty) {
  serve::TenantSpec spec;
  const data::FingerprintDataset& train = sc.train;
  if (faulty) {
    spec.factory = [&train] { return std::make_unique<ChaosKnn>(train); };
    // The containment stack under test: two consecutive all-fault
    // batches open the breaker; short open intervals keep probes (and
    // therefore reopens) flowing during the bench window.
    spec.service.breaker.fault_threshold = 2;
    spec.service.breaker.open_for_s = 0.05;
    spec.service.breaker.backoff_factor = 2.0;
    spec.service.breaker.max_open_s = 1.0;
  } else {
    spec.factory = [&train] {
      auto model = std::make_unique<baselines::Knn>(3);
      model->fit(train);
      return model;
    };
  }
  spec.num_aps = train.num_aps();
  spec.service.num_workers = 2;  // replica slots, NOT threads
  spec.service.max_batch = 16;
  spec.service.queue_capacity = 512;
  spec.service.cache_capacity = 0;  // measure serving, not the cache
  return spec;
}

serve::ModelRegistry build_registry(std::span<const sim::Scenario> fleet) {
  serve::ModelRegistry registry;
  for (std::size_t v = 0; v < fleet.size(); ++v)
    registry.register_tenant(venue_key(fleet[v]),
                             venue_spec(fleet[v], v == kFaultyVenue));
  registry.set_profile_fallbacks({"OP3"});
  return registry;
}

/// Per-venue outcome tallies of one full drive of the request stream.
struct VenueOutcome {
  std::size_t sent = 0;
  std::size_t served = 0;
  std::size_t faulted = 0;
  std::size_t breaker_denied = 0;  ///< BreakerOpen fast-fails at submit
  std::size_t other = 0;           ///< any other terminal status
  bool bit_identical = true;       ///< served rows vs sequential predict
};

std::vector<VenueOutcome> drive(
    serve::ServeEngine& engine, std::span<const sim::Scenario> fleet,
    std::span<const sim::FleetRequest> stream,
    const std::vector<std::vector<Tensor>>& pools,
    const std::vector<std::vector<std::vector<std::size_t>>>& expected) {
  struct Sent {
    sim::FleetRequest req;
    std::future<serve::ServeResult> fut;
  };
  std::vector<VenueOutcome> out(fleet.size());
  std::vector<Sent> sent;
  sent.reserve(stream.size());
  for (const auto& req : stream) {
    const auto fp = pools[req.venue][req.device].row(req.row);
    auto sub = engine.submit_blocking(venue_key(fleet[req.venue]),
                                      {fp.begin(), fp.end()});
    ++out[req.venue].sent;
    if (sub.admission == serve::Admission::BreakerOpen) {
      ++out[req.venue].breaker_denied;
      continue;  // ready denial future; nothing to await
    }
    sent.push_back({req, std::move(sub.result)});
  }
  for (auto& s : sent) {
    const auto res = s.fut.get();
    VenueOutcome& v = out[s.req.venue];
    switch (res.status) {
      case serve::ServeStatus::Served:
        ++v.served;
        if (res.rp != expected[s.req.venue][s.req.device][s.req.row])
          v.bit_identical = false;
        break;
      case serve::ServeStatus::Faulted:
        ++v.faulted;
        break;
      default:
        ++v.other;
        break;
    }
  }
  return out;
}

double availability(const VenueOutcome& v) {
  return v.sent > 0
             ? static_cast<double>(v.served) / static_cast<double>(v.sent)
             : 0.0;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

int main() {
  using namespace cal;
  bench::banner(
      "bench_serve_chaos — fault containment under injected replica "
      "faults",
      "claims: with one tenant's replicas faulting on a seeded schedule, "
      "healthy tenants keep >= 99% availability and bounded p99; faults "
      "surface as typed Faulted/BreakerOpen outcomes; served rows stay "
      "bit-identical to sequential predict; redeploy heals the outage");

  const std::vector<std::size_t> venues =
      bench::full_mode() ? std::vector<std::size_t>{0, 1, 2, 3, 4}
                         : std::vector<std::size_t>{0, 2, 3};
  const std::size_t train_spr = bench::full_mode() ? 5 : 2;
  const auto fleet = sim::make_table2_fleet(venues, 2024, train_spr, 1);
  const std::size_t n_requests = bench::full_mode() ? 12000 : 3000;
  const serve::TenantKey faulty_key = venue_key(fleet[kFaultyVenue]);

  // Pre-normalised request pools and sequential per-venue ground truth.
  std::vector<std::vector<Tensor>> pools(fleet.size());
  std::vector<std::vector<std::vector<std::size_t>>> expected(fleet.size());
  for (std::size_t v = 0; v < fleet.size(); ++v) {
    baselines::Knn knn(3);
    knn.fit(fleet[v].train);
    for (const auto& test : fleet[v].device_tests) {
      pools[v].push_back(test.normalized());
      expected[v].push_back(knn.predict(test.normalized()));
    }
  }
  const auto stream =
      sim::fleet_request_stream(fleet, n_requests, 31, /*repeat_prob=*/0.2);

  serve::EngineConfig cfg;
  cfg.pool_size = kPoolSize;

  // -- Run 1: baseline, nothing armed — the p99 yardstick ------------------
  FaultRegistry::instance().disarm_all();
  serve::ModelRegistry base_registry = build_registry(fleet);
  serve::ServeEngine baseline(base_registry.publish(), cfg);
  baseline.reset_telemetry_clocks();
  const auto base_out = drive(baseline, fleet, stream, pools, expected);
  double baseline_healthy_p99 = 0.0;
  {
    const auto stats = baseline.stats();
    for (std::size_t v = 0; v < fleet.size(); ++v) {
      if (v == kFaultyVenue) continue;
      const auto shard = baseline.snapshot()->route(venue_key(fleet[v])).shard;
      baseline_healthy_p99 = std::max(
          baseline_healthy_p99, stats.per_tenant[shard].stats.latency_p99_ms);
    }
  }
  baseline.shutdown();
  // Generous enough for shared CI runners, tight enough that a faulty
  // tenant leaking latency into healthy lanes blows through it.
  const double p99_bound_ms =
      std::max(10.0 * std::max(baseline_healthy_p99, 0.5), 25.0);

  // -- Run 2: chaos — the faulty tenant's replicas fault at p=0.85 ---------
  if (kFaultInjectionCompiledIn)
    FaultRegistry::instance().arm("chaos.predict", kFaultProbability,
                                  kFaultSeed);
  serve::ModelRegistry registry = build_registry(fleet);
  serve::ServeEngine engine(registry.publish(), cfg);
  engine.reset_telemetry_clocks();
  const auto chaos_out = drive(engine, fleet, stream, pools, expected);
  const auto site = FaultRegistry::instance().site_stats("chaos.predict");
  FaultRegistry::instance().disarm_all();

  const auto chaos_stats = engine.stats();
  const auto faulty_shard = engine.snapshot()->route(faulty_key).shard;
  const auto& faulty_tenant = chaos_stats.per_tenant[faulty_shard];
  double chaos_healthy_p99 = 0.0;
  for (std::size_t v = 0; v < fleet.size(); ++v) {
    if (v == kFaultyVenue) continue;
    const auto shard = engine.snapshot()->route(venue_key(fleet[v])).shard;
    chaos_healthy_p99 = std::max(
        chaos_healthy_p99, chaos_stats.per_tenant[shard].stats.latency_p99_ms);
  }

  // -- Run 3: heal — disarmed + redeployed, the faulty tenant serves -------
  registry.reload_tenant(faulty_key,
                         venue_spec(fleet[kFaultyVenue], /*faulty=*/true));
  engine.deploy(registry.publish());
  bool healed = true;
  for (int i = 0; i < 8; ++i) {
    const auto fp = pools[kFaultyVenue][0].row(static_cast<std::size_t>(i));
    const auto res =
        engine.submit_blocking(faulty_key, {fp.begin(), fp.end()})
            .result.get();
    healed &= res.status == serve::ServeStatus::Served &&
              res.rp == expected[kFaultyVenue][0][static_cast<std::size_t>(i)];
  }
  const std::size_t quarantined_after_heal =
      engine.stats().per_tenant[faulty_shard].quarantined_slots;
  engine.shutdown();
  bench::append_obs_metrics("bench_serve_chaos", engine.metrics());

  // -- Report --------------------------------------------------------------
  TextTable table({"tenant", "sent", "served", "faulted", "breaker-denied",
                   "avail %", "p99 ms"});
  for (std::size_t v = 0; v < fleet.size(); ++v) {
    const auto shard = engine.snapshot()->route(venue_key(fleet[v])).shard;
    table.add_row({venue_key(fleet[v]).str() +
                       (v == kFaultyVenue ? " (faulty)" : ""),
                   std::to_string(chaos_out[v].sent),
                   std::to_string(chaos_out[v].served),
                   std::to_string(chaos_out[v].faulted),
                   std::to_string(chaos_out[v].breaker_denied),
                   fmt(100.0 * availability(chaos_out[v])),
                   fmt(chaos_stats.per_tenant[shard].stats.latency_p99_ms)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("fault injection %s: site chaos.predict %llu hits, %llu "
              "fires (p=%.2f, seed %llu)\n",
              kFaultInjectionCompiledIn ? "COMPILED IN" : "COMPILED OUT",
              static_cast<unsigned long long>(site.hits),
              static_cast<unsigned long long>(site.fires), kFaultProbability,
              static_cast<unsigned long long>(kFaultSeed));
  std::printf("faulty tenant: breaker %zu opens / %zu closes, %zu slots "
              "quarantined during chaos; healed to %zu after redeploy\n",
              faulty_tenant.breaker.opens, faulty_tenant.breaker.closes,
              faulty_tenant.quarantined_slots, quarantined_after_heal);
  std::printf("healthy p99: %.2f ms baseline, %.2f ms under chaos "
              "(bound %.2f ms)\n\n",
              baseline_healthy_p99, chaos_healthy_p99, p99_bound_ms);

  // Machine-readable trajectory for CI artifacts.
  {
    FILE* f = std::fopen("BENCH_serve_chaos.json", "w");
    if (f != nullptr) {
      std::fprintf(f, "{\n  \"bench\": \"bench_serve_chaos\",\n");
      std::fprintf(f, "  \"mode\": \"%s\",\n",
                   bench::full_mode() ? "full" : "quick");
      std::fprintf(f, "  \"fault_injection_compiled_in\": %s,\n",
                   kFaultInjectionCompiledIn ? "true" : "false");
      std::fprintf(f, "  \"fault_probability\": %.2f,\n", kFaultProbability);
      std::fprintf(f, "  \"site_hits\": %llu,\n  \"site_fires\": %llu,\n",
                   static_cast<unsigned long long>(site.hits),
                   static_cast<unsigned long long>(site.fires));
      std::fprintf(f, "  \"baseline_healthy_p99_ms\": %.3f,\n",
                   baseline_healthy_p99);
      std::fprintf(f, "  \"chaos_healthy_p99_ms\": %.3f,\n",
                   chaos_healthy_p99);
      std::fprintf(f, "  \"p99_bound_ms\": %.3f,\n", p99_bound_ms);
      std::fprintf(f, "  \"breaker_opens\": %zu,\n",
                   faulty_tenant.breaker.opens);
      std::fprintf(f, "  \"breaker_closes\": %zu,\n",
                   faulty_tenant.breaker.closes);
      std::fprintf(f, "  \"quarantined_slots\": %zu,\n",
                   faulty_tenant.quarantined_slots);
      std::fprintf(f, "  \"healed_after_redeploy\": %s,\n",
                   healed ? "true" : "false");
      std::fprintf(f, "  \"tenants\": [\n");
      for (std::size_t v = 0; v < fleet.size(); ++v) {
        std::fprintf(
            f,
            "    {\"tenant\": \"%s\", \"faulty\": %s, \"sent\": %zu,\n"
            "     \"served\": %zu, \"faulted\": %zu, "
            "\"breaker_denied\": %zu,\n"
            "     \"availability\": %.4f, \"bit_identical\": %s}%s\n",
            venue_key(fleet[v]).str().c_str(),
            v == kFaultyVenue ? "true" : "false", chaos_out[v].sent,
            chaos_out[v].served, chaos_out[v].faulted,
            chaos_out[v].breaker_denied, availability(chaos_out[v]),
            chaos_out[v].bit_identical ? "true" : "false",
            v + 1 < fleet.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("wrote BENCH_serve_chaos.json\n\n");
    }
  }

  // -- Shape checks --------------------------------------------------------
  bool ok = true;
  // Healthy tenants: availability and latency survive the chaos run, and
  // every served row is still bit-identical — in BOTH build modes.
  for (std::size_t v = 0; v < fleet.size(); ++v) {
    if (v == kFaultyVenue) continue;
    ok &= bench::shape_check(
        availability(chaos_out[v]) >= 0.99,
        "healthy tenant " + venue_key(fleet[v]).str() +
            " availability >= 99% under chaos (got " +
            fmt(100.0 * availability(chaos_out[v])) + "%)");
    ok &= bench::shape_check(
        chaos_out[v].bit_identical,
        "healthy tenant " + venue_key(fleet[v]).str() +
            " served rows bit-identical to sequential predict");
  }
  ok &= bench::shape_check(
      chaos_healthy_p99 <= p99_bound_ms,
      "healthy p99 under chaos (" + fmt(chaos_healthy_p99) +
          " ms) within bound (" + fmt(p99_bound_ms) + " ms)");
  ok &= bench::shape_check(
      chaos_out[kFaultyVenue].bit_identical,
      "faulty tenant's SERVED rows bit-identical (containment retry runs "
      "the same model)");
  // Baseline sanity: with nothing armed, everything serves everywhere.
  for (std::size_t v = 0; v < fleet.size(); ++v)
    ok &= bench::shape_check(
        base_out[v].served == base_out[v].sent && base_out[v].bit_identical,
        "baseline run: " + venue_key(fleet[v]).str() +
            " served 100% bit-identically");

  if (kFaultInjectionCompiledIn) {
    // Compiled in: the outage must be VISIBLE and typed.
    ok &= bench::shape_check(site.fires > 0,
                             "armed site actually fired (" +
                                 std::to_string(site.fires) + " of " +
                                 std::to_string(site.hits) + " passages)");
    ok &= bench::shape_check(
        chaos_out[kFaultyVenue].faulted > 0,
        "faulty tenant surfaced typed Faulted results (" +
            std::to_string(chaos_out[kFaultyVenue].faulted) + ")");
    ok &= bench::shape_check(faulty_tenant.breaker.opens >= 1,
                             "circuit breaker opened at least once (" +
                                 std::to_string(faulty_tenant.breaker.opens) +
                                 " opens)");
    ok &= bench::shape_check(
        chaos_out[kFaultyVenue].breaker_denied > 0,
        "open breaker / quarantine fast-failed submissions (" +
            std::to_string(chaos_out[kFaultyVenue].breaker_denied) + ")");
    ok &= bench::shape_check(healed && quarantined_after_heal == 0,
                             "disarm + redeploy healed the faulty tenant");
  } else {
    // Compiled out: the kill switch must strip the chaos surface — the
    // "faulty" tenant is indistinguishable from a healthy one.
    ok &= bench::shape_check(site.hits == 0 && site.fires == 0,
                             "stripped site never registered a passage");
    ok &= bench::shape_check(
        chaos_out[kFaultyVenue].faulted == 0 &&
            chaos_out[kFaultyVenue].breaker_denied == 0,
        "no faults, no breaker denials with injection compiled out");
    ok &= bench::shape_check(faulty_tenant.breaker.opens == 0,
                             "breaker never opened with injection "
                             "compiled out");
    ok &= bench::shape_check(
        availability(chaos_out[kFaultyVenue]) == 1.0,
        "the instrumented tenant served 100% with injection compiled out");
  }
  return ok ? 0 : 1;
}
