#include "model.hpp"

#include <algorithm>

namespace callint {
namespace {

const std::set<std::string>& keywords() {
  static const std::set<std::string> k = {
      "if",       "for",      "while",    "switch",   "return",
      "catch",    "sizeof",   "alignof",  "decltype", "noexcept",
      "new",      "delete",   "throw",    "do",       "else",
      "case",     "default",  "goto",     "static_assert",
      "alignas",  "co_await", "co_yield", "co_return"};
  return k;
}

// Annotation/assertion macros whose parenthesized payload is not code to
// analyze. CAL_ENSURE / CAL_INVARIANT are the project assertion macros:
// their failure path is program-fatal and cold, so the whole group is
// skipped (documented in README "Correctness tooling").
const std::set<std::string>& skip_macros() {
  static const std::set<std::string> k = {
      "CAL_GUARDED_BY",      "CAL_PT_GUARDED_BY",  "CAL_ACQUIRED_AFTER",
      "CAL_ACQUIRED_BEFORE", "CAL_REQUIRES",       "CAL_REQUIRES_SHARED",
      "CAL_ACQUIRE",         "CAL_ACQUIRE_SHARED", "CAL_RELEASE",
      "CAL_RELEASE_SHARED",  "CAL_TRY_ACQUIRE",    "CAL_EXCLUDES",
      "CAL_RETURN_CAPABILITY", "CAL_CAPABILITY",   "CAL_SCOPED_CAPABILITY",
      "CAL_ENSURE",          "CAL_INVARIANT",      "assert",
      "static_assert",       "alignas",            "defined"};
  return k;
}

const std::set<std::string>& lock_classes() {
  static const std::set<std::string> k = {
      "MutexLock",   "ReaderMutexLock", "WriterMutexLock", "lock_guard",
      "scoped_lock", "unique_lock",     "shared_lock"};
  return k;
}

struct Parser {
  const std::vector<Token>& t;
  TuModel model;

  // Pending annotations: attach to the next declaration or definition.
  bool p_hot = false, p_nb = false, p_na = false;
  std::vector<SuppressEntry> p_sup;

  explicit Parser(const std::string& file, const std::vector<Token>& toks)
      : t(toks) {
    model.file = file;
  }

  bool is(std::size_t k, const char* s) const {
    return k < t.size() && t[k].text == s;
  }
  bool ident(std::size_t k) const {
    return k < t.size() && t[k].kind == TokKind::Identifier;
  }

  /// Index just past the group that opens at `k` (expects '(' '{' '[' '<').
  std::size_t skip_group(std::size_t k) const {
    const std::string& open = t[k].text;
    std::string close = open == "(" ? ")" : open == "{" ? "}"
                        : open == "[" ? "]" : ">";
    int depth = 0;
    for (std::size_t j = k; j < t.size(); ++j) {
      if (t[j].kind != TokKind::Punct) continue;
      if (t[j].text == open) ++depth;
      else if (t[j].text == close && --depth == 0) return j + 1;
      // Angle groups: bail on tokens that cannot appear in template args,
      // so stray comparisons don't swallow the file.
      if (open == "<" && (t[j].text == ";" || t[j].text == "{")) return j;
    }
    return t.size();
  }

  void clear_pending() {
    p_hot = p_nb = p_na = false;
    p_sup.clear();
  }

  bool take_annotation(std::size_t& k) {
    const std::string& s = t[k].text;
    if (s == "CAL_HOT_PATH") { p_hot = true; ++k; return true; }
    if (s == "CAL_NONBLOCKING") { p_nb = true; ++k; return true; }
    if (s == "CAL_NOALLOC") { p_na = true; ++k; return true; }
    if (s == "CAL_LINT_SUPPRESS") {
      SuppressEntry e;
      e.line = t[k].line;
      ++k;  // name
      if (is(k, "(")) {
        std::size_t end = skip_group(k);
        // Expect: ( ident , "reason" )
        if (k + 1 < end && ident(k + 1)) e.rule = t[k + 1].text;
        for (std::size_t j = k + 1; j + 1 < end; ++j)
          if (t[j].kind == TokKind::String) e.reason += t[j].text;
        k = end;
      }
      p_sup.push_back(std::move(e));
      return true;
    }
    return false;
  }

  // -------------------------------------------------------------------
  // Body facts
  // -------------------------------------------------------------------

  /// Scans [b, e) (the token slice of a function body, braces included)
  /// into `fn`. Nested lambdas are scanned inline: work a function
  /// creates is attributed to it, which is the conservative direction.
  void scan_body(FunctionInfo& fn, std::size_t b, std::size_t e) {
    for (std::size_t k = b; k < e; ++k) {
      if (!ident(k)) continue;
      const std::string& s = t[k].text;

      if (skip_macros().count(s) && is(k + 1, "(")) {
        k = skip_group(k + 1) - 1;
        continue;
      }
      if (s == "CAL_FAULT_POINT" && is(k + 1, "(")) {
        std::size_t end = skip_group(k + 1);
        SiteUse u;
        u.kind = SiteUse::Kind::FaultPoint;
        u.file = model.file;
        u.line = t[k].line;
        u.is_literal = (k + 2 < end && t[k + 2].kind == TokKind::String &&
                        k + 3 < t.size() && t[k + 3].text == ")");
        if (u.is_literal) u.literal = t[k + 2].text;
        model.sites.push_back(std::move(u));
        fn.calls.push_back({"passage", "", t[k].line});
        k = end - 1;
        continue;
      }
      if (s == "CAL_TRACE_EVENT" && is(k + 1, "(")) {
        std::size_t end = skip_group(k + 1);
        SiteUse u;
        u.kind = SiteUse::Kind::TraceEvent;
        u.file = model.file;
        u.line = t[k].line;
        // First argument must be a qualified EventType enumerator.
        std::string first;
        int depth = 0;
        for (std::size_t j = k + 1; j < end; ++j) {
          if (t[j].text == "(" || t[j].text == "{") ++depth;
          else if (t[j].text == ")" || t[j].text == "}") --depth;
          else if (t[j].text == "," && depth == 1) break;
          if (j > k + 1) first += t[j].text;
        }
        u.literal = first;
        u.is_literal = first.find("EventType::") != std::string::npos;
        model.sites.push_back(std::move(u));
        fn.calls.push_back({"record", "__tracer", t[k].line});
        k = end - 1;
        continue;
      }
      if (s == "new" && !(k > b && t[k - 1].text == "operator")) {
        fn.new_lines.push_back(t[k].line);
        continue;
      }
      // iostream sinks are blocking I/O even without a call-shaped token.
      if (s == "cerr" || s == "cout" || s == "clog") {
        fn.calls.push_back({"__stream_io", "", t[k].line});
        continue;
      }
      // Blocking guard construction: `MutexLock lock(mu_);`,
      // `std::unique_lock<std::mutex> g(m);` — allowed only with an
      // explicit try_to_lock / defer_lock / adopt_lock tag.
      if (lock_classes().count(s)) {
        std::size_t j = k + 1;
        if (is(j, "<")) j = skip_group(j);
        if (ident(j)) {
          std::size_t g = j + 1;
          if (is(g, "(") || is(g, "{")) {
            std::size_t end = skip_group(g);
            bool deferred = false;
            for (std::size_t m = g; m < end; ++m)
              if (t[m].text == "try_to_lock" || t[m].text == "defer_lock" ||
                  t[m].text == "adopt_lock")
                deferred = true;
            if (!deferred) {
              fn.lock_ctors.push_back(s);
              fn.lock_ctor_lines.push_back(t[k].line);
            }
            k = end - 1;
            continue;
          }
        }
      }
      // Local promise/future declarations: [std::]promise<...> name.
      if ((s == "promise" || s == "future" || s == "shared_future") &&
          is(k + 1, "<")) {
        std::size_t j = skip_group(k + 1);
        if (ident(j) && !keywords().count(t[j].text)) {
          if (s == "promise") fn.promise_locals.insert(t[j].text);
          else fn.future_locals.insert(t[j].text);
        }
      }
      // Plain call: identifier followed by '('.
      if (is(k + 1, "(") && !keywords().count(s)) {
        CallSite c;
        c.name = s;
        c.line = t[k].line;
        if (k >= 1 && t[k - 1].text == "." && k >= 2 && ident(k - 2))
          c.receiver = t[k - 2].text;
        else if (k >= 2 && t[k - 1].text == ">" && t[k - 2].text == "-" &&
                 k >= 3 && ident(k - 3))
          c.receiver = t[k - 3].text;
        // `trip("reason", ...)`: flight-recorder trip-reason registry.
        if (s == "trip" && k + 2 < t.size() &&
            t[k + 2].kind == TokKind::String) {
          SiteUse u;
          u.kind = SiteUse::Kind::TripReason;
          u.file = model.file;
          u.line = t[k].line;
          u.literal = t[k + 2].text;
          model.sites.push_back(std::move(u));
        }
        fn.calls.push_back(std::move(c));
      }
    }
  }

  // -------------------------------------------------------------------
  // Statement tree (promise-resolution rule)
  // -------------------------------------------------------------------

  std::unique_ptr<Stmt> parse_block(std::size_t& k, std::size_t limit) {
    auto seq = std::make_unique<Stmt>();
    seq->kind = Stmt::Kind::Seq;
    seq->line = t[k].line;
    ++k;  // '{'
    while (k < limit && !is(k, "}")) {
      auto s = parse_stmt(k, limit);
      if (s) seq->kids.push_back(std::move(s));
    }
    if (k < limit) ++k;  // '}'
    return seq;
  }

  std::unique_ptr<Stmt> parse_stmt(std::size_t& k, std::size_t limit) {
    if (k >= limit) return nullptr;
    if (is(k, "{")) return parse_block(k, limit);
    if (is(k, ";")) { ++k; return nullptr; }
    const std::string& s = t[k].text;
    if (s == "if") {
      auto node = std::make_unique<Stmt>();
      node->kind = Stmt::Kind::If;
      node->line = t[k].line;
      ++k;
      if (is(k, "constexpr")) ++k;
      if (is(k, "(")) {
        std::size_t end = skip_group(k);
        node->tokens.assign(t.begin() + static_cast<long>(k),
                            t.begin() + static_cast<long>(end));
        k = end;
      }
      node->then_branch = parse_stmt(k, limit);
      if (is(k, "else")) {
        ++k;
        node->else_branch = parse_stmt(k, limit);
      }
      return node;
    }
    if (s == "for" || s == "while" || s == "switch") {
      auto node = std::make_unique<Stmt>();
      node->kind = Stmt::Kind::Loop;
      node->line = t[k].line;
      ++k;
      if (is(k, "(")) {
        std::size_t end = skip_group(k);
        node->tokens.assign(t.begin() + static_cast<long>(k),
                            t.begin() + static_cast<long>(end));
        k = end;
      }
      node->body = parse_stmt(k, limit);
      return node;
    }
    if (s == "do") {
      auto node = std::make_unique<Stmt>();
      node->kind = Stmt::Kind::Loop;
      node->line = t[k].line;
      ++k;
      node->body = parse_stmt(k, limit);
      // `while ( ... ) ;`
      if (is(k, "while")) {
        ++k;
        if (is(k, "(")) k = skip_group(k);
        if (is(k, ";")) ++k;
      }
      return node;
    }
    if (s == "try") {
      auto node = std::make_unique<Stmt>();
      node->kind = Stmt::Kind::TryCatch;
      node->line = t[k].line;
      ++k;
      if (is(k, "{")) node->body = parse_block(k, limit);
      while (is(k, "catch")) {
        ++k;
        if (is(k, "(")) k = skip_group(k);
        if (is(k, "{")) node->handlers.push_back(parse_block(k, limit));
        else node->handlers.push_back(parse_stmt(k, limit));
      }
      return node;
    }
    if (s == "return" || s == "throw") {
      auto node = std::make_unique<Stmt>();
      node->kind = s == "return" ? Stmt::Kind::Return : Stmt::Kind::Throw;
      node->line = t[k].line;
      ++k;
      k = collect_to_semicolon(k, limit, &node->tokens);
      return node;
    }
    // Expression / declaration statement (labels included).
    auto node = std::make_unique<Stmt>();
    node->kind = Stmt::Kind::Expr;
    node->line = t[k].line;
    k = collect_to_semicolon(k, limit, &node->tokens);
    return node;
  }

  /// Collects tokens up to the ';' that ends the statement (balanced over
  /// parens/braces/brackets, so lambda bodies ride along); returns the
  /// index past the ';'.
  std::size_t collect_to_semicolon(std::size_t k, std::size_t limit,
                                   std::vector<Token>* out) {
    int depth = 0;
    while (k < limit) {
      const std::string& s = t[k].text;
      if (t[k].kind == TokKind::Punct) {
        if (s == "(" || s == "[") ++depth;
        else if (s == ")" || s == "]") --depth;
        else if (s == "{") ++depth;
        else if (s == "}") {
          if (depth == 0) return k;  // enclosing block ends; no ';'
          --depth;
        } else if (s == ";" && depth == 0) {
          out->push_back(t[k]);
          return k + 1;
        }
      }
      out->push_back(t[k]);
      ++k;
    }
    return k;
  }

  // -------------------------------------------------------------------
  // Top-level scan
  // -------------------------------------------------------------------

  struct Scope {
    enum class Kind { Namespace, Class, Plain } kind;
    std::string name;
  };
  std::vector<Scope> scopes;

  std::string class_scope() const {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it)
      if (it->kind == Scope::Kind::Class) return it->name;
    return {};
  }

  void run() {
    std::size_t k = 0;
    while (k < t.size()) {
      if (ident(k)) {
        if (take_annotation(k)) continue;
        const std::string& s = t[k].text;
        if (s == "namespace") { k = enter_namespace(k); continue; }
        if (s == "class" || s == "struct" || s == "union") {
          k = enter_record(k);
          continue;
        }
        if (s == "enum") {
          k = skip_enum(k);
          clear_pending();
          continue;
        }
        if (s == "template") {
          ++k;
          if (is(k, "<")) k = skip_group(k);
          continue;
        }
        if (s == "using" || s == "typedef") {
          while (k < t.size() && !is(k, ";")) ++k;
          ++k;
          clear_pending();
          continue;
        }
        if (skip_macros().count(s) && is(k + 1, "(")) {
          k = skip_group(k + 1);
          continue;
        }
        // Candidate function: identifier directly before '('.
        if (is(k + 1, "(") && !keywords().count(s)) {
          std::size_t next = k;
          if (try_function(k, &next)) { k = next; continue; }
          k = next;
          continue;
        }
        ++k;
        continue;
      }
      if (is(k, "{")) {
        scopes.push_back({Scope::Kind::Plain, ""});
        ++k;
        continue;
      }
      if (is(k, "}")) {
        if (!scopes.empty()) scopes.pop_back();
        clear_pending();
        ++k;
        continue;
      }
      // A ';' or '}' crossed here means whatever the pending annotations
      // preceded was not a function this parser recognized (a variable, or
      // a signature the heuristic failed on). Drop them rather than let
      // them silently attach to — and mis-root the contract of — the next
      // parsed function.
      if (is(k, ";")) {
        clear_pending();
        ++k;
        continue;
      }
      ++k;
    }
  }

  std::size_t enter_namespace(std::size_t k) {
    ++k;  // 'namespace'
    std::string name;
    while (ident(k) || is(k, ":")) {
      if (ident(k)) name += t[k].text;
      else name += ":";
      ++k;
    }
    if (is(k, "=")) {  // namespace alias
      while (k < t.size() && !is(k, ";")) ++k;
      return k + 1;
    }
    if (is(k, "{")) {
      scopes.push_back({Scope::Kind::Namespace, name});
      return k + 1;
    }
    return k;
  }

  std::size_t enter_record(std::size_t k) {
    ++k;  // class/struct/union
    std::string name;
    while (k < t.size()) {
      if (ident(k)) {
        // Attribute-like macro with payload (CAL_CAPABILITY("mutex")).
        if (is(k + 1, "(")) {
          k = skip_group(k + 1);
          continue;
        }
        name = t[k].text;
        ++k;
        continue;
      }
      if (is(k, "<")) { k = skip_group(k); continue; }
      if (is(k, "[")) { k = skip_group(k); continue; }
      break;
    }
    if (is(k, ":")) {  // base clause
      while (k < t.size() && !is(k, "{") && !is(k, ";")) {
        if (is(k, "<")) { k = skip_group(k); continue; }
        ++k;
      }
    }
    if (is(k, "{")) {
      scopes.push_back({Scope::Kind::Class, name});
      return k + 1;
    }
    if (is(k, ";")) return k + 1;  // forward declaration
    return k;  // elaborated type specifier; resume normally
  }

  std::size_t skip_enum(std::size_t k) {
    while (k < t.size() && !is(k, "{") && !is(k, ";")) ++k;
    if (is(k, "{")) return skip_group(k);
    return k + 1;
  }

  /// `k` sits on the identifier before '('. Returns true when a
  /// declaration or definition was consumed; `*next` is where to resume.
  bool try_function(std::size_t k, std::size_t* next) {
    const std::size_t name_tok = k;
    std::string name = t[k].text;
    std::string qual_prefix;
    // Walk back over `A::B::` qualifiers.
    std::size_t b = k;
    while (b >= 2 && t[b - 1].text == ":" && t[b - 2].text == ":") {
      std::size_t q = b - 2;
      if (q >= 1 && ident(q - 1)) {
        qual_prefix = t[q - 1].text + "::" + qual_prefix;
        b = q - 1;
      } else {
        break;
      }
    }
    const std::size_t close = skip_group(k + 1);  // past ')'
    std::size_t j = close;
    // Trailer: const/noexcept/override/trailing-return/annotation macros.
    while (j < t.size()) {
      if (ident(j)) {
        if (is(j + 1, "(")) { j = skip_group(j + 1); continue; }
        ++j;
        continue;
      }
      const std::string& s = t[j].text;
      if (s == "&" || s == "*" || s == "-" || s == ">" || s == "<" ||
          s == ":" || s == ",") {
        if (s == "<") { j = skip_group(j); continue; }
        if (s == ":" && j + 1 < t.size() && t[j + 1].text == ":") {
          j += 2;
          continue;
        }
        if (s == ":") break;  // ctor-init list
        if (s == ",") { *next = name_tok + 1; return false; }
        ++j;
        continue;
      }
      if (s == "[") { j = skip_group(j); continue; }
      break;
    }
    if (j < t.size() && t[j].text == ":") {
      // Constructor initializer list: `ident (group|braces) [, ...] {`.
      ++j;
      while (j < t.size()) {
        while (ident(j) || is(j, ":")) ++j;
        if (is(j, "<")) j = skip_group(j);
        if (is(j, "(") || is(j, "{")) j = skip_group(j);
        if (is(j, ",")) { ++j; continue; }
        break;
      }
    }
    if (j >= t.size()) { *next = name_tok + 1; return false; }
    if (t[j].text == "=") {
      // `= default;` / `= delete;` / pure virtual.
      while (j < t.size() && !is(j, ";")) ++j;
      record_declaration(name, qual_prefix);
      *next = j + 1;
      return true;
    }
    if (t[j].text == ";") {
      record_declaration(name, qual_prefix);
      *next = j + 1;
      return true;
    }
    if (t[j].text != "{") { *next = name_tok + 1; return false; }

    // Definition.
    auto fn = std::make_unique<FunctionInfo>();
    fn->name = name;
    fn->file = model.file;
    fn->line = t[name_tok].line;
    if (!qual_prefix.empty()) fn->qualified = qual_prefix + name;
    else if (!class_scope().empty())
      fn->qualified = class_scope() + "::" + name;
    else fn->qualified = name;
    fn->hot_path = p_hot;
    fn->nonblocking = p_nb;
    fn->noalloc = p_na;
    fn->suppressions = p_sup;
    clear_pending();

    const std::size_t body_end = skip_group(j);
    scan_body(*fn, j, body_end);
    if (!fn->promise_locals.empty()) {
      std::size_t cursor = j;
      fn->stmts = parse_block(cursor, body_end);
    }
    model.functions.push_back(std::move(fn));
    *next = body_end;
    return true;
  }

  void record_declaration(const std::string& name,
                          const std::string& qual_prefix) {
    if (!p_hot && !p_nb && !p_na && p_sup.empty()) return;
    TuModel::DeclAnnotation d;
    if (!qual_prefix.empty()) d.qualified = qual_prefix + name;
    else if (!class_scope().empty())
      d.qualified = class_scope() + "::" + name;
    else d.qualified = name;
    d.hot_path = p_hot;
    d.nonblocking = p_nb;
    d.noalloc = p_na;
    d.suppressions = p_sup;
    model.decl_annotations.push_back(std::move(d));
    clear_pending();
  }
};

}  // namespace

TuModel build_model(const std::string& file, const std::vector<Token>& toks) {
  Parser p(file, toks);
  p.run();
  return std::move(p.model);
}

}  // namespace callint
