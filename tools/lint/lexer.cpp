#include "lexer.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace callint {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> toks;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last '\n'

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: swallow to end of line, honoring backslash
    // continuations (multi-line #define bodies are one directive).
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (src[i] == '\n') break;  // the '\n' itself handled above
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && peek(1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Raw string literal [u8|u|U|L]R"delim( ... )delim". The encoding
    // prefix must be matched here: left to the identifier branch, `u8R`
    // would lex as an identifier and the raw body would then be mislexed
    // as an ordinary string, desyncing on any unescaped '"' inside it.
    std::size_t rpre = 0;  // token length up to and including the 'R'
    if (c == 'R' && peek(1) == '"') rpre = 1;
    else if ((c == 'u' || c == 'U' || c == 'L') && peek(1) == 'R' &&
             peek(2) == '"')
      rpre = 2;
    else if (c == 'u' && peek(1) == '8' && peek(2) == 'R' && peek(3) == '"')
      rpre = 3;
    if (rpre > 0) {
      std::size_t j = i + rpre + 1;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string close = ")" + delim + "\"";
      const std::size_t start = j + 1;
      const std::size_t end = src.find(close, start);
      const std::size_t stop = end == std::string::npos ? n : end;
      std::string body = src.substr(start, stop - start);
      for (char b : body)
        if (b == '\n') ++line;
      toks.push_back({TokKind::String, std::move(body), line});
      i = stop == n ? n : stop + close.size();
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string body;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          body.push_back(src[j]);
          body.push_back(src[j + 1]);
          j += 2;
          continue;
        }
        if (src[j] == '\n') ++line;  // unterminated; keep going anyway
        body.push_back(src[j++]);
      }
      toks.push_back({quote == '"' ? TokKind::String : TokKind::Char,
                      std::move(body), line});
      i = j < n ? j + 1 : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      toks.push_back({TokKind::Identifier, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      // A digit separator (') is part of the number only when a digit
      // follows; otherwise 1'000'000 would stop at the quote and the
      // '000' span would be consumed as a char literal, desyncing
      // string/char tokenization for the rest of the file.
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       (src[j] == '\'' && j + 1 < n &&
                        std::isalnum(static_cast<unsigned char>(src[j + 1]))) ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P'))))
        ++j;
      toks.push_back({TokKind::Number, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    toks.push_back({TokKind::Punct, std::string(1, c), line});
    ++i;
  }
  return toks;
}

}  // namespace callint
