// calloc-lint: the four enforced rules over the merged source model.
//
//   alloc   — no heap allocation reachable from a CAL_NOALLOC root
//   block   — no unbounded wait reachable from a CAL_HOT_PATH root; no
//             lock acquisition at all reachable from a CAL_NONBLOCKING
//             root (try_to_lock / defer_lock acquisitions excepted)
//   promise — every function declaring a local std::promise resolves or
//             hands it off on every control-flow path
//   sites   — CAL_FAULT_POINT / FlightRecorder::trip literals are unique,
//             appear in the checked-in site table, and CAL_TRACE_EVENT's
//             first argument is a qualified EventType enumerator
//
// plus `suppress` findings for CAL_LINT_SUPPRESS entries with a missing
// or empty reason string (the escape hatch must stay auditable).
#pragma once

#include <string>
#include <vector>

#include "model.hpp"

namespace callint {

struct Finding {
  std::string rule;  ///< alloc | block | promise | sites | suppress
  std::string file;
  int line = 0;
  std::string message;
};

struct SiteTableEntry {
  std::string kind;  ///< "fault" | "trip"
  std::string literal;
};

/// Parses tools/lint/site_table.txt: `kind literal description...` per
/// line, '#' comments. Returns false on I/O error.
bool load_site_table(const std::string& path,
                     std::vector<SiteTableEntry>* out);

struct AnalysisOptions {
  std::vector<SiteTableEntry> site_table;
  bool have_site_table = false;
  /// Fail on table entries never seen in the scanned sources (used for
  /// the full-src CI run; off for single-file corpus runs).
  bool require_all_sites = false;
};

/// Merges the per-TU models (annotations declared in headers attach to
/// definitions in .cpp files by qualified name), builds the call graph,
/// and runs every rule.
std::vector<Finding> analyze(std::vector<TuModel>& tus,
                             const AnalysisOptions& opts);

}  // namespace callint
