// calloc-lint: the project hot-path analyzer. See rules.hpp for the rule
// set and src/common/hot_path_annotations.hpp for the vocabulary.
//
// Usage:
//   calloc-lint [--table FILE] [--require-all-sites] [--expect RULE]
//               [--quiet] PATH...
//
// PATH is a file or a directory (recursed for .hpp/.h/.cpp/.cc/.inc).
// Exit status:
//   normal mode : 0 when no findings, 1 when any finding, 2 on usage/IO
//   --expect R  : 0 iff there is at least one finding AND every finding
//                 is of rule R — the seeded-violation corpus gate: a
//                 clean run over a file that is supposed to violate R is
//                 itself a failure (a gate that can't fail is dead), and
//                 so is tripping the wrong rule.
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "model.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

bool source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".hpp" || e == ".h" || e == ".cpp" || e == ".cc" ||
         e == ".inc";
}

void collect(const std::string& path, std::vector<std::string>* files) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (auto it = fs::recursive_directory_iterator(path, ec);
         it != fs::recursive_directory_iterator(); ++it)
      if (it->is_regular_file(ec) && source_ext(it->path()))
        files->push_back(it->path().string());
  } else {
    files->push_back(path);
  }
}

int usage() {
  std::cerr << "usage: calloc-lint [--table FILE] [--require-all-sites] "
               "[--expect alloc|block|promise|sites] [--quiet] PATH...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string table_path;
  std::string expect;
  bool require_all_sites = false;
  bool quiet = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--table" && i + 1 < argc) table_path = argv[++i];
    else if (a == "--expect" && i + 1 < argc) expect = argv[++i];
    else if (a == "--require-all-sites") require_all_sites = true;
    else if (a == "--quiet") quiet = true;
    else if (a == "--help" || a == "-h") return usage();
    else if (!a.empty() && a[0] == '-') return usage();
    else paths.push_back(a);
  }
  if (paths.empty()) return usage();

  callint::AnalysisOptions opts;
  opts.require_all_sites = require_all_sites;
  if (!table_path.empty()) {
    if (!callint::load_site_table(table_path, &opts.site_table)) {
      std::cerr << "calloc-lint: cannot read site table: " << table_path
                << "\n";
      return 2;
    }
    opts.have_site_table = true;
  }

  std::vector<std::string> files;
  for (const auto& p : paths) collect(p, &files);
  if (files.empty()) {
    std::cerr << "calloc-lint: no source files under given paths\n";
    return 2;
  }

  std::vector<callint::TuModel> tus;
  tus.reserve(files.size());
  for (const auto& f : files) {
    std::string src;
    if (!callint::read_file(f, &src)) {
      std::cerr << "calloc-lint: cannot read " << f << "\n";
      return 2;
    }
    tus.push_back(callint::build_model(f, callint::lex(src)));
  }

  const std::vector<callint::Finding> findings =
      callint::analyze(tus, opts);

  std::size_t functions = 0, annotated = 0;
  for (const auto& tu : tus)
    for (const auto& fn : tu.functions) {
      ++functions;
      if (fn->hot_path || fn->nonblocking || fn->noalloc) ++annotated;
    }

  for (const auto& f : findings)
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  if (!quiet)
    std::cout << "calloc-lint: " << files.size() << " files, " << functions
              << " functions (" << annotated << " annotated roots), "
              << findings.size() << " finding(s)\n";

  if (!expect.empty()) {
    if (findings.empty()) {
      std::cout << "calloc-lint: FAIL — expected at least one '" << expect
                << "' finding, got none (dead gate)\n";
      return 1;
    }
    for (const auto& f : findings)
      if (f.rule != expect) {
        std::cout << "calloc-lint: FAIL — expected only '" << expect
                  << "' findings, got '" << f.rule << "'\n";
        return 1;
      }
    std::cout << "calloc-lint: OK — seeded '" << expect
              << "' violation detected\n";
    return 0;
  }
  return findings.empty() ? 0 : 1;
}
