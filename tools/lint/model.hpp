// calloc-lint: heuristic source model.
//
// A TU scan produces FunctionInfo records: the function's (qualified)
// name, the hot-path annotations attached to its declaration(s) or
// definition, the calls its body makes, and the lexical facts the rules
// consume (allocation tokens, wait/lock tokens, local promise/future
// declarations, instrumentation-site literals, a statement tree for the
// promise-resolution dataflow).
//
// This is a *name-based* model over raw source — deliberately so (see
// lexer.hpp): templates, overloads, and virtual dispatch all collapse
// onto names, which over-approximates the call graph. Over-approximation
// is the safe direction for a gate (extra edges can only produce extra
// findings, which the audited CAL_LINT_SUPPRESS list then documents);
// the LibTooling/AST upgrade path is noted in tools/lint/README comments
// and in the top-level README.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace callint {

/// One call site inside a function body: the unqualified callee name as
/// written (`obj.method(..)` -> "method", `ns::fn(..)` -> "fn").
struct CallSite {
  std::string name;
  std::string receiver;  ///< identifier before '.'/'->', if any
  int line = 0;
};

/// Statement tree for the promise-resolution dataflow. Expression
/// statements keep their token slice; control flow keeps children.
struct Stmt {
  enum class Kind { Seq, Expr, If, Loop, TryCatch, Return, Throw };
  Kind kind = Kind::Expr;
  int line = 0;
  std::vector<Token> tokens;               ///< Expr/Return/Throw payload
  std::vector<std::unique_ptr<Stmt>> kids; ///< Seq children; If: [cond?,
                                           ///< then, else?]; see model.cpp
  std::unique_ptr<Stmt> then_branch, else_branch, body;  // If / Loop
  std::vector<std::unique_ptr<Stmt>> handlers;           // TryCatch
};

struct SuppressEntry {
  std::string rule;    ///< alloc | block | promise | sites
  std::string reason;  ///< empty reason is itself a finding
  int line = 0;
};

struct SiteUse {
  enum class Kind { FaultPoint, TripReason, TraceEvent };
  Kind kind;
  std::string literal;  ///< site string, trip reason, or EventType token
  bool is_literal = true;
  std::string file;
  int line = 0;
};

struct FunctionInfo {
  std::string name;       ///< unqualified name as written
  std::string qualified;  ///< Scope::name when the scope is known
  std::string file;
  int line = 0;

  bool hot_path = false;
  bool nonblocking = false;
  bool noalloc = false;
  std::vector<SuppressEntry> suppressions;

  std::vector<CallSite> calls;
  std::vector<int> new_lines;            ///< `new` keyword occurrences
  std::vector<std::string> lock_ctors;   ///< blocking guard constructions
  std::vector<int> lock_ctor_lines;
  std::set<std::string> future_locals;   ///< locals of std::future type
  std::set<std::string> promise_locals;  ///< locals of std::promise type
  std::unique_ptr<Stmt> stmts;           ///< body tree (promise rule)

  bool suppressed(const std::string& rule) const {
    for (const auto& s : suppressions)
      if (s.rule == rule) return true;
    return false;
  }
};

struct TuModel {
  std::string file;
  std::vector<std::unique_ptr<FunctionInfo>> functions;
  std::vector<SiteUse> sites;
  /// Annotations that appeared on a pure declaration (name -> flags);
  /// merged onto the definition by qualified name, falling back to the
  /// unqualified name when the declaration carries no scope.
  struct DeclAnnotation {
    std::string qualified;
    bool hot_path = false, nonblocking = false, noalloc = false;
    std::vector<SuppressEntry> suppressions;
  };
  std::vector<DeclAnnotation> decl_annotations;
};

/// Parses one file's token stream into a TuModel.
TuModel build_model(const std::string& file, const std::vector<Token>& toks);

}  // namespace callint
