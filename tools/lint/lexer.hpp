// calloc-lint: token stream over RAW (un-preprocessed) C++ source.
//
// The analyzer deliberately reads source text before the preprocessor
// runs, so the annotation macros from src/common/hot_path_annotations.hpp
// (which expand to nothing) are still visible as identifiers, and so the
// CAL_FAULT_POINT / CAL_TRACE_EVENT instrumentation sites can be read
// off as written rather than as their expansions. Preprocessor directive
// lines (including backslash continuations) are skipped entirely: macro
// *definitions* are not code and must not be parsed as functions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace callint {

enum class TokKind {
  Identifier,  ///< identifiers and keywords (the parser distinguishes)
  Number,
  String,  ///< text excludes the quotes; adjacent literals NOT merged
  Char,
  Punct,  ///< one token per character: ( ) { } < > ; : , . * & = etc.
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

/// Tokenizes `source`. Comments, preprocessor directives, and raw-string
/// bodies are consumed (raw strings become String tokens). Never throws
/// on malformed input — unknown bytes become single-char Punct tokens so
/// the parser can resynchronize.
std::vector<Token> lex(const std::string& source);

/// Reads a whole file; returns false (and leaves `out` empty) on error.
bool read_file(const std::string& path, std::string* out);

}  // namespace callint
