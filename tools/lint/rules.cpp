#include "rules.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace callint {
namespace {

// ---------------------------------------------------------------------
// Deny lists
// ---------------------------------------------------------------------

/// Heap allocation, by call name. Growing-container calls count: the
/// CAL_NOALLOC contract is "no allocation", not "no operator new".
const std::set<std::string>& alloc_deny() {
  static const std::set<std::string> k = {
      "malloc",       "calloc",   "realloc",      "aligned_alloc",
      "strdup",       "make_unique", "make_shared", "push_back",
      "emplace_back", "emplace",  "emplace_front", "insert",
      "resize",       "reserve",  "append",       "to_string",
      "substr"};
  return k;
}

/// Unbounded waits — forbidden from CAL_HOT_PATH (and stricter) roots.
/// `__stream_io` is the pseudo-call the model emits for cerr/cout/clog
/// use; stdio sinks are listed by name.
const std::set<std::string>& wait_deny() {
  static const std::set<std::string> k = {
      "wait",      "wait_for",  "wait_until", "sleep_for", "sleep_until",
      "sleep",     "usleep",    "nanosleep",  "join",      "__stream_io",
      "printf",    "fprintf",   "vfprintf",   "fputs",     "fwrite",
      "puts",      "fflush",    "getline",    "fopen",     "fread",
      "system"};
  return k;
}

/// Lock acquisitions — additionally forbidden from CAL_NONBLOCKING roots.
const std::set<std::string>& lock_deny() {
  static const std::set<std::string> k = {"lock", "lock_shared"};
  return k;
}

/// Short, type-ambiguous names the name-based call graph must not chase:
/// `v.size()` on a vector would otherwise resolve to BoundedQueue::size
/// (which takes a mutex) and poison every lock-free root. Deny-list
/// checks still apply to these names; only graph *descent* is skipped.
const std::set<std::string>& no_descend() {
  static const std::set<std::string> k = {
      "size",  "empty", "begin", "end",   "clear", "count", "data",
      "at",    "front", "back",  "reset", "find",  "str",   "c_str",
      "min",   "max",   "abs",   "get",   "swap",  "value", "load",
      "store", "exchange", "compare_exchange_weak",
      "compare_exchange_strong", "fetch_add", "fetch_sub", "name",
      "enabled"};
  return k;
}

// ---------------------------------------------------------------------
// Merged model + call graph
// ---------------------------------------------------------------------

struct Graph {
  std::vector<FunctionInfo*> fns;
  std::unordered_map<std::string, std::vector<int>> by_last_name;

  void build(std::vector<TuModel>& tus) {
    for (auto& tu : tus)
      for (auto& f : tu.functions) {
        by_last_name[f->name].push_back(static_cast<int>(fns.size()));
        fns.push_back(f.get());
      }
    // Attach annotations that rode on declarations (headers) to the
    // definitions, by qualified name with unqualified fallback.
    for (auto& tu : tus)
      for (auto& d : tu.decl_annotations) {
        const std::string last = d.qualified.rfind("::") == std::string::npos
                                     ? d.qualified
                                     : d.qualified.substr(
                                           d.qualified.rfind("::") + 2);
        auto it = by_last_name.find(last);
        if (it == by_last_name.end()) continue;
        bool matched_qualified = false;
        for (int idx : it->second)
          if (fns[idx]->qualified == d.qualified) matched_qualified = true;
        for (int idx : it->second) {
          FunctionInfo* f = fns[idx];
          if (matched_qualified && f->qualified != d.qualified) continue;
          f->hot_path |= d.hot_path;
          f->nonblocking |= d.nonblocking;
          f->noalloc |= d.noalloc;
          for (const auto& s : d.suppressions) f->suppressions.push_back(s);
        }
      }
  }
};

std::string chain_str(const std::vector<FunctionInfo*>& path) {
  std::string out;
  for (const auto* f : path) {
    if (!out.empty()) out += " -> ";
    out += f->qualified;
  }
  return out;
}

// ---------------------------------------------------------------------
// Rules alloc + block: transitive DFS from annotated roots
// ---------------------------------------------------------------------

class ReachChecker {
 public:
  ReachChecker(Graph& g, std::vector<Finding>& findings)
      : g_(g), findings_(findings) {}

  void run() {
    for (FunctionInfo* f : g_.fns) {
      if (f->noalloc && !f->suppressed("alloc")) {
        path_.clear();
        visited_.clear();
        walk_alloc(f);
      }
      if ((f->hot_path || f->nonblocking) && !f->suppressed("block")) {
        path_.clear();
        visited_.clear();
        walk_block(f, /*strict=*/f->nonblocking);
      }
    }
  }

 private:
  void emit(const std::string& rule, const FunctionInfo* at, int line,
            const std::string& what) {
    std::ostringstream msg;
    msg << what << " [path: " << chain_str(path_) << "]";
    const std::string key =
        rule + "|" + at->file + "|" + std::to_string(line) + "|" +
        path_.front()->qualified + "|" + what;
    if (!seen_.insert(key).second) return;
    findings_.push_back({rule, at->file, line, msg.str()});
  }

  void descend(const CallSite& c,
               const std::function<void(FunctionInfo*)>& visit) {
    if (no_descend().count(c.name)) return;
    auto it = g_.by_last_name.find(c.name);
    if (it == g_.by_last_name.end()) return;
    for (int idx : it->second) {
      FunctionInfo* callee = g_.fns[idx];
      if (callee == path_.back()) continue;  // direct self-recursion
      if (!visited_.insert(callee).second) continue;
      visit(callee);
    }
  }

  void walk_alloc(FunctionInfo* f) {
    if (f->suppressed("alloc")) return;
    if (path_.size() > 40) return;
    path_.push_back(f);
    for (int line : f->new_lines)
      emit("alloc", f, line,
           "'new' on a CAL_NOALLOC path in " + f->qualified);
    for (const auto& c : f->calls) {
      if (alloc_deny().count(c.name))
        emit("alloc", f, c.line,
             "allocating call '" + c.name + "' on a CAL_NOALLOC path in " +
                 f->qualified);
      descend(c, [&](FunctionInfo* callee) { walk_alloc(callee); });
    }
    path_.pop_back();
  }

  void walk_block(FunctionInfo* f, bool strict) {
    if (f->suppressed("block")) return;
    if (path_.size() > 40) return;
    path_.push_back(f);
    const char* tier = strict ? "CAL_NONBLOCKING" : "CAL_HOT_PATH";
    for (const auto& c : f->calls) {
      const bool is_wait = wait_deny().count(c.name) != 0;
      const bool is_future_get =
          c.name == "get" && f->future_locals.count(c.receiver) != 0;
      const bool is_lock = strict && lock_deny().count(c.name) != 0;
      if (is_wait || is_future_get)
        emit("block", f, c.line,
             std::string("blocking call '") + c.name + "' on a " + tier +
                 " path in " + f->qualified);
      else if (is_lock)
        emit("block", f, c.line,
             "lock acquisition '" + c.name + "' on a CAL_NONBLOCKING path "
             "in " + f->qualified);
      descend(c, [&](FunctionInfo* callee) { walk_block(callee, strict); });
    }
    if (strict)
      for (std::size_t i = 0; i < f->lock_ctors.size(); ++i)
        emit("block", f, f->lock_ctor_lines[i],
             "guard '" + f->lock_ctors[i] +
                 "' constructed on a CAL_NONBLOCKING path in " +
                 f->qualified);
    path_.pop_back();
  }

  Graph& g_;
  std::vector<Finding>& findings_;
  std::vector<FunctionInfo*> path_;
  std::unordered_set<FunctionInfo*> visited_;
  std::unordered_set<std::string> seen_;
};

// ---------------------------------------------------------------------
// Rule promise: per-function dataflow over the statement tree
// ---------------------------------------------------------------------

class PromiseChecker {
 public:
  PromiseChecker(FunctionInfo& fn, std::vector<Finding>& findings)
      : fn_(fn), findings_(findings) {}

  struct State {
    /// var -> {declared, resolved}. A var is only checked at an exit
    /// once its declaration statement has executed.
    std::map<std::string, std::pair<bool, bool>> vars;
  };

  void run() {
    if (!fn_.stmts) return;
    State st;
    for (const auto& v : fn_.promise_locals) st.vars[v] = {false, false};
    const bool falls = exec(fn_.stmts.get(), st);
    if (falls) check_exit(st, fn_.line, "falls off the end");
  }

 private:
  void check_exit(const State& st, int line, const std::string& how) {
    for (const auto& [var, flags] : st.vars) {
      if (!flags.first || flags.second) continue;
      if (!reported_.insert(var).second) continue;
      findings_.push_back(
          {"promise", fn_.file, line,
           "std::promise '" + var + "' in " + fn_.qualified + " " + how +
               " without set_value/set_exception or handoff on some path"});
    }
  }

  void scan_tokens(const std::vector<Token>& toks, State& st) {
    for (std::size_t k = 0; k < toks.size(); ++k) {
      if (toks[k].kind != TokKind::Identifier) continue;
      const std::string& s = toks[k].text;
      // Declaration: promise < ... > var
      if (s == "promise" && k + 1 < toks.size() && toks[k + 1].text == "<") {
        int depth = 0;
        std::size_t j = k + 1;
        for (; j < toks.size(); ++j) {
          if (toks[j].text == "<") ++depth;
          else if (toks[j].text == ">" && --depth == 0) { ++j; break; }
        }
        if (j < toks.size() && st.vars.count(toks[j].text))
          st.vars[toks[j].text].first = true;
        continue;
      }
      auto it = st.vars.find(s);
      if (it == st.vars.end()) continue;
      // var.set_value / var.set_exception
      if (k + 2 < toks.size() && toks[k + 1].text == "." &&
          (toks[k + 2].text == "set_value" ||
           toks[k + 2].text == "set_exception")) {
        it->second.second = true;
        continue;
      }
      // std::move(var): ownership handed off — whoever received it is now
      // responsible (tracked at its own declaration site if local).
      if (k >= 1 && toks[k - 1].text == "(" && k >= 2 &&
          toks[k - 2].text == "move") {
        it->second.second = true;
        continue;
      }
    }
  }

  static void merge_and(State& a, const State& b) {
    for (auto& [var, flags] : a.vars) {
      auto it = b.vars.find(var);
      if (it == b.vars.end()) continue;
      flags.first = flags.first || it->second.first;
      flags.second = flags.second && it->second.second;
    }
  }

  /// Executes `s` over `st`; returns whether control can fall through.
  bool exec(const Stmt* s, State& st) {
    if (!s) return true;
    switch (s->kind) {
      case Stmt::Kind::Seq: {
        for (const auto& kid : s->kids)
          if (!exec(kid.get(), st)) return false;
        return true;
      }
      case Stmt::Kind::Expr:
        scan_tokens(s->tokens, st);
        return true;
      case Stmt::Kind::Return:
      case Stmt::Kind::Throw: {
        scan_tokens(s->tokens, st);
        check_exit(st, s->line,
                   s->kind == Stmt::Kind::Return ? "reaches a return"
                                                 : "reaches a throw");
        return false;
      }
      case Stmt::Kind::If: {
        scan_tokens(s->tokens, st);
        State then_st = st, else_st = st;
        const bool then_falls = exec(s->then_branch.get(), then_st);
        const bool else_falls =
            s->else_branch ? exec(s->else_branch.get(), else_st) : true;
        if (then_falls && else_falls) {
          State joined = then_st;
          merge_and(joined, else_st);
          st = joined;
          return true;
        }
        if (then_falls) { st = then_st; return true; }
        if (else_falls) { st = else_st; return true; }
        return false;
      }
      case Stmt::Kind::Loop: {
        scan_tokens(s->tokens, st);
        // Optimistic on loop bodies: a resolution inside the loop counts
        // (worker loops resolve every claimed request by construction;
        // the zero-iteration case is the if-join's job to model).
        if (s->body) exec(s->body.get(), st);
        return true;
      }
      case Stmt::Kind::TryCatch: {
        const State entry = st;
        State try_st = st;
        const bool try_falls = exec(s->body.get(), try_st);
        bool any_falls = try_falls;
        State joined = try_falls ? try_st : entry;
        bool have = try_falls;
        for (const auto& h : s->handlers) {
          State h_st = entry;  // the throw may precede any try-side work
          if (exec(h.get(), h_st)) {
            any_falls = true;
            if (have) merge_and(joined, h_st);
            else { joined = h_st; have = true; }
          }
        }
        if (any_falls) st = joined;
        return any_falls;
      }
    }
    return true;
  }

  FunctionInfo& fn_;
  std::vector<Finding>& findings_;
  std::set<std::string> reported_;
};

// ---------------------------------------------------------------------
// Rule sites: instrumentation-site registry discipline
// ---------------------------------------------------------------------

void check_sites(const std::vector<TuModel>& tus, const AnalysisOptions& opts,
                 std::vector<Finding>& findings) {
  struct Occ {
    const SiteUse* use;
  };
  std::map<std::string, std::vector<const SiteUse*>> faults, trips;
  for (const auto& tu : tus)
    for (const auto& u : tu.sites) {
      switch (u.kind) {
        case SiteUse::Kind::FaultPoint:
          if (!u.is_literal) {
            findings.push_back({"sites", u.file, u.line,
                                "CAL_FAULT_POINT site must be a single "
                                "string literal"});
            continue;
          }
          faults[u.literal].push_back(&u);
          break;
        case SiteUse::Kind::TripReason:
          trips[u.literal].push_back(&u);
          break;
        case SiteUse::Kind::TraceEvent:
          if (!u.is_literal)
            findings.push_back(
                {"sites", u.file, u.line,
                 "CAL_TRACE_EVENT first argument must be a qualified "
                 "obs::EventType enumerator (got '" + u.literal + "')"});
          break;
      }
    }

  auto check_group = [&](const char* kind,
                         std::map<std::string, std::vector<const SiteUse*>>&
                             group) {
    for (auto& [lit, uses] : group) {
      if (uses.size() > 1)
        for (std::size_t i = 1; i < uses.size(); ++i)
          findings.push_back(
              {"sites", uses[i]->file, uses[i]->line,
               std::string("duplicate ") + kind + " site '" + lit +
                   "' (first at " + uses[0]->file + ":" +
                   std::to_string(uses[0]->line) + ")"});
      if (opts.have_site_table) {
        bool in_table = false;
        for (const auto& e : opts.site_table)
          if (e.kind == kind && e.literal == lit) in_table = true;
        if (!in_table)
          findings.push_back(
              {"sites", uses[0]->file, uses[0]->line,
               std::string(kind) + " site '" + lit +
                   "' is not in tools/lint/site_table.txt"});
      }
    }
  };
  check_group("fault", faults);
  check_group("trip", trips);

  if (opts.have_site_table && opts.require_all_sites)
    for (const auto& e : opts.site_table) {
      const auto& group = e.kind == "fault" ? faults : trips;
      if (!group.count(e.literal))
        findings.push_back(
            {"sites", "site_table.txt", 0,
             "dead table entry: " + e.kind + " site '" + e.literal +
                 "' never appears in the scanned sources"});
    }
}

}  // namespace

bool load_site_table(const std::string& path,
                     std::vector<SiteTableEntry>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    std::string kind, literal;
    if (!(ss >> kind) || kind[0] == '#') continue;
    if (!(ss >> literal)) continue;
    out->push_back({kind, literal});
  }
  return true;
}

std::vector<Finding> analyze(std::vector<TuModel>& tus,
                             const AnalysisOptions& opts) {
  std::vector<Finding> findings;

  Graph g;
  g.build(tus);

  // Suppress-contract check: the escape hatch itself must be auditable.
  static const std::set<std::string> valid_rules = {"alloc", "block",
                                                    "promise", "sites"};
  for (FunctionInfo* f : g.fns)
    for (const auto& s : f->suppressions) {
      if (!valid_rules.count(s.rule))
        findings.push_back({"suppress", f->file, s.line,
                            "CAL_LINT_SUPPRESS rule '" + s.rule +
                                "' is not one of alloc/block/promise/sites"});
      std::string reason = s.reason;
      reason.erase(0, reason.find_first_not_of(" \t"));
      if (reason.empty())
        findings.push_back({"suppress", f->file, s.line,
                            "CAL_LINT_SUPPRESS on " + f->qualified +
                                " needs a non-empty reason string"});
    }

  ReachChecker(g, findings).run();

  for (FunctionInfo* f : g.fns)
    if (!f->promise_locals.empty() && !f->suppressed("promise"))
      PromiseChecker(*f, findings).run();

  check_sites(tus, opts, findings);
  return findings;
}

}  // namespace callint
