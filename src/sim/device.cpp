#include "sim/device.hpp"

#include "common/ensure.hpp"

namespace cal::sim {

double apply_device_gain(const DeviceProfile& dev, double true_rss_dbm) {
  return kDevicePivotDbm +
         dev.gain_slope * (true_rss_dbm - kDevicePivotDbm) +
         dev.gain_offset_db;
}

std::vector<DeviceProfile> table1_devices() {
  // Offsets/slopes span the ±6 dB / 0.9–1.1 range reported for commodity
  // chipsets; MOTO and BLU get the most aggressive transforms (the paper's
  // Fig. 4 calls out MOTO and OP3-vs-rest variation in Building 1).
  return {
      {"BLU", "Vivo 8", -7.0, 0.88, 2.8, -90.0, 1.0},
      {"HTC", "U11", 4.0, 1.09, 2.0, -93.0, 1.0},
      {"S7", "Galaxy S7", -2.5, 1.05, 1.6, -95.0, 1.0},
      {"LG", "V20", 5.5, 0.92, 2.2, -92.0, 1.0},
      {"MOTO", "Z2", -9.0, 1.14, 3.4, -88.0, 2.0},
      {"OP3", "Oneplus 3", 0.0, 1.00, 1.2, -96.0, 1.0},
  };
}

DeviceProfile device_by_name(const std::string& acronym) {
  for (const auto& d : table1_devices())
    if (d.name == acronym) return d;
  CAL_ENSURE(false, "unknown device acronym: " << acronym);
  return {};  // unreachable
}

}  // namespace cal::sim
