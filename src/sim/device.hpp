// Device heterogeneity models (substitute for the paper's Table I).
//
// Two phones at the same spot report different RSS because of Wi-Fi
// chipset gain, firmware noise filtering, antenna sensitivity and
// reporting granularity. The standard literature model — and what defeats
// naive fingerprinting — is an affine per-device transform plus a
// detection floor; each Table I handset gets a distinct profile, with the
// OnePlus 3 (OP3) as the neutral reference device used for offline
// training (paper §V.A).
#pragma once

#include <string>
#include <vector>

namespace cal::sim {

/// Per-device RSS measurement transform.
struct DeviceProfile {
  std::string name;          ///< Table I acronym (BLU, HTC, S7, LG, MOTO, OP3)
  std::string model;         ///< marketing name
  double gain_offset_db = 0.0;   ///< additive chipset gain bias
  double gain_slope = 1.0;       ///< multiplicative distortion around pivot
  double noise_sigma_db = 1.0;   ///< firmware/measurement noise
  double sensitivity_dbm = -96.0;///< weakest detectable RSS
  double quantization_db = 1.0;  ///< reporting granularity
};

/// RSS pivot around which the slope distortion acts (typical mid-range).
inline constexpr double kDevicePivotDbm = -60.0;

/// Apply the device transform to a true channel RSS (before noise; noise
/// is added by the collector using the profile's noise_sigma_db).
double apply_device_gain(const DeviceProfile& dev, double true_rss_dbm);

/// The six Table I smartphones. OP3 (last) is the reference training
/// device with a neutral transform.
std::vector<DeviceProfile> table1_devices();

/// Look up a Table I device by acronym; throws if unknown.
DeviceProfile device_by_name(const std::string& acronym);

}  // namespace cal::sim
