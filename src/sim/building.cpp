#include "sim/building.hpp"

#include <cmath>

#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace cal::sim {
namespace {

/// Serpentine corridor waypoints: east-going runs of `run_m`, joined by
/// north jogs of `jog_m`, until the requested walk length is covered.
std::vector<Point> serpentine_walk(double total_m, double run_m, double jog_m) {
  std::vector<Point> waypoints;
  waypoints.push_back({0.0, 0.0});
  double remaining = total_m;
  double x = 0.0;
  double y = 0.0;
  int dir = 1;
  while (remaining > 1e-9) {
    const double run = std::min(run_m, remaining);
    x += dir * run;
    waypoints.push_back({x, y});
    remaining -= run;
    if (remaining <= 1e-9) break;
    const double jog = std::min(jog_m, remaining);
    y += jog;
    waypoints.push_back({x, y});
    remaining -= jog;
    dir = -dir;
  }
  return waypoints;
}

/// Sample the polyline every metre of arc length.
std::vector<Point> sample_every_metre(const std::vector<Point>& waypoints,
                                      std::size_t path_length_m) {
  std::vector<Point> rps;
  rps.reserve(path_length_m + 1);
  std::size_t seg = 0;
  double seg_used = 0.0;
  Point cur = waypoints.front();
  rps.push_back(cur);
  for (std::size_t step = 1; step <= path_length_m; ++step) {
    double remaining = 1.0;
    while (remaining > 1e-12 && seg + 1 < waypoints.size()) {
      const Point& a = waypoints[seg];
      const Point& b = waypoints[seg + 1];
      const double seg_len = std::hypot(b.x - a.x, b.y - a.y);
      const double avail = seg_len - seg_used;
      if (avail > remaining) {
        seg_used += remaining;
        remaining = 0.0;
      } else {
        remaining -= avail;
        ++seg;
        seg_used = 0.0;
      }
    }
    const Point& a = waypoints[seg];
    const Point& b = waypoints[std::min(seg + 1, waypoints.size() - 1)];
    const double seg_len = std::max(std::hypot(b.x - a.x, b.y - a.y), 1e-12);
    const double t = seg_used / seg_len;
    cur = {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
    rps.push_back(cur);
  }
  return rps;
}

}  // namespace

Building::Building(BuildingSpec spec) : spec_(std::move(spec)) {
  CAL_ENSURE(spec_.num_aps > 0, "building needs at least one AP");
  CAL_ENSURE(spec_.path_length_m >= 4, "path length must be >= 4 m");

  Rng rng(spec_.seed);

  // Corridor geometry: run length scales with total walk so every building
  // has 3-4 parallel corridors, jog 4 m between them.
  const double run_m =
      std::max(12.0, static_cast<double>(spec_.path_length_m) / 3.5);
  const double jog_m = 4.0;
  const auto waypoints =
      serpentine_walk(static_cast<double>(spec_.path_length_m), run_m, jog_m);
  rps_ = sample_every_metre(waypoints, spec_.path_length_m);

  // Footprint = walk bounding box plus a 4 m margin all around.
  double min_x = rps_[0].x, max_x = rps_[0].x;
  double min_y = rps_[0].y, max_y = rps_[0].y;
  for (const auto& p : rps_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double margin = 4.0;
  width_ = (max_x - min_x) + 2 * margin;
  height_ = (max_y - min_y) + 2 * margin;

  // Shift the walk so the footprint origin is (0,0).
  for (auto& p : rps_) {
    p.x += margin - min_x;
    p.y += margin - min_y;
  }

  aps_.reserve(spec_.num_aps);
  for (std::size_t i = 0; i < spec_.num_aps; ++i)
    aps_.push_back({rng.uniform(0.0, width_), rng.uniform(0.0, height_)});
}

std::vector<data::RpPosition> Building::rp_map() const {
  std::vector<data::RpPosition> map;
  map.reserve(rps_.size());
  for (const auto& p : rps_) map.push_back({p.x, p.y});
  return map;
}

std::vector<BuildingSpec> table2_buildings() {
  // Material profiles keyed to the Table II "Characteristics" column.
  // Wood+concrete: moderate walls, strong people/equipment shadowing (the
  // paper observes Building 1's dynamic noise). Heavy metal: high wall
  // attenuation and multipath fading. Wide spaces: low exponent, few
  // walls, but large open-space shadowing variation (Building 5).
  // Last field: session drift — highest in Building 1 and Building 5,
  // whose "dynamic density of people / movement of equipment" the paper
  // singles out as the noisiest floorplans.
  const MaterialProfile wood_concrete{2.9, 4.5, 6.0, 5.0, 1.6, 12.0, 3.0};
  const MaterialProfile heavy_metal{3.2, 7.0, 8.0, 3.8, 2.2, 10.0, 1.8};
  const MaterialProfile mixed{3.0, 5.5, 7.0, 4.2, 1.8, 13.0, 2.0};
  const MaterialProfile mixed_b4{2.95, 5.0, 7.0, 4.0, 1.7, 13.0, 2.0};
  const MaterialProfile wide_spaces{2.3, 3.0, 14.0, 5.5, 1.5, 18.0, 3.2};

  return {
      {"Building 1", 156, 64, "Wood and Concrete", wood_concrete, 101},
      {"Building 2", 125, 62, "Heavy Metallic Equipments", heavy_metal, 202},
      {"Building 3", 78, 88, "Wood, Concrete, Metal", mixed, 303},
      {"Building 4", 112, 68, "Wood, Concrete, Metal", mixed_b4, 404},
      {"Building 5", 218, 60, "Wide Spaces, Wood, Metal", wide_spaces, 505},
  };
}

}  // namespace cal::sim
