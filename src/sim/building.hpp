// Synthetic building floorplans (substitute for the paper's Table II).
//
// Each building is a serpentine corridor walk inside a rectangular
// footprint: reference points (RPs) are dropped every metre of the walk
// (the paper's "physical granularity of 1 meter"), and Wi-Fi APs are
// scattered over the footprint. Path length and AP count are taken
// directly from Table II; material characteristics select the propagation
// profile in propagation.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace cal::sim {

/// 2-D point in metres.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Propagation-relevant material characteristics of a floorplan.
struct MaterialProfile {
  double path_loss_exponent = 2.8;  ///< log-distance exponent n
  double wall_attenuation_db = 4.0; ///< loss per wall crossed
  double wall_spacing_m = 8.0;      ///< mean distance between walls
  double shadow_sigma_db = 4.0;     ///< correlated shadowing strength
  double fading_sigma_db = 1.5;     ///< per-measurement fast fading
  double shadow_wavelength_m = 14.0;///< spatial scale of shadowing field
  /// Per-AP offset drawn fresh for every collection session: the slow
  /// environmental drift (people density, moved equipment, AP power
  /// changes) that separates the online phase from the offline survey.
  double session_drift_sigma_db = 2.0;
};

/// Static description of one building (one Table II row).
struct BuildingSpec {
  std::string name;
  std::size_t num_aps = 0;
  std::size_t path_length_m = 0;  ///< RPs = path_length_m + 1
  std::string characteristics;
  MaterialProfile material;
  std::uint64_t seed = 0;  ///< geometry + shadowing field seed
};

/// Instantiated floorplan geometry.
class Building {
 public:
  /// Generate geometry deterministically from the spec's seed.
  explicit Building(BuildingSpec spec);

  const BuildingSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  /// RP walk positions (size == path_length_m + 1), 1 m apart.
  const std::vector<Point>& rp_positions() const { return rps_; }

  /// AP positions (size == spec.num_aps).
  const std::vector<Point>& ap_positions() const { return aps_; }

  std::size_t num_rps() const { return rps_.size(); }
  std::size_t num_aps() const { return aps_.size(); }

  /// Footprint bounds (metres).
  double width() const { return width_; }
  double height() const { return height_; }

  /// RP map in dataset form.
  std::vector<data::RpPosition> rp_map() const;

 private:
  BuildingSpec spec_;
  double width_ = 0.0;
  double height_ = 0.0;
  std::vector<Point> rps_;
  std::vector<Point> aps_;
};

/// The five Table II buildings, with material profiles matched to their
/// "Characteristics" column and distinct geometry seeds.
std::vector<BuildingSpec> table2_buildings();

}  // namespace cal::sim
