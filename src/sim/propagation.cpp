#include "sim/propagation.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"
#include "data/dataset.hpp"

namespace cal::sim {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr std::size_t kWavesPerAp = 8;

}  // namespace

RadioEnvironment::RadioEnvironment(const Building& building, TxConfig tx)
    : building_(&building), tx_(tx), material_(building.spec().material) {
  CAL_ENSURE(tx_.min_distance_m > 0.0, "min_distance must be positive");
  // Shadowing fields are part of the *static* radio map: derive them from
  // the building seed so every collector sees the same environment.
  Rng rng(building.spec().seed ^ 0xABCDEF0123456789ULL);
  const double k_mag = 2.0 * kPi / material_.shadow_wavelength_m;
  shadow_waves_.resize(building.num_aps());
  for (auto& waves : shadow_waves_) {
    waves.reserve(kWavesPerAp);
    for (std::size_t w = 0; w < kWavesPerAp; ++w) {
      const double theta = rng.uniform(0.0, 2.0 * kPi);
      // Jitter the wavelength per wave to avoid periodic artefacts.
      const double mag = k_mag * rng.uniform(0.6, 1.4);
      waves.push_back(
          {mag * std::cos(theta), mag * std::sin(theta),
           rng.uniform(0.0, 2.0 * kPi)});
    }
  }
  shadow_scale_ =
      material_.shadow_sigma_db * std::sqrt(2.0 / static_cast<double>(kWavesPerAp));
}

double RadioEnvironment::shadow_db(std::size_t ap, const Point& p) const {
  const auto& waves = shadow_waves_[ap];
  double acc = 0.0;
  for (const auto& w : waves)
    acc += std::cos(w.kx * p.x + w.ky * p.y + w.phase);
  return shadow_scale_ * acc;
}

double RadioEnvironment::channel_rss_dbm(std::size_t ap, const Point& p) const {
  CAL_ENSURE(ap < building_->num_aps(),
             "AP index " << ap << " out of " << building_->num_aps());
  const Point& a = building_->ap_positions()[ap];
  const double d =
      std::max(std::hypot(p.x - a.x, p.y - a.y), tx_.min_distance_m);
  const double path_loss =
      10.0 * material_.path_loss_exponent * std::log10(d / tx_.min_distance_m);
  // Walls crossed grows with distance through the floorplan.
  const double walls = std::floor(d / material_.wall_spacing_m);
  const double wall_loss =
      std::min(walls, 8.0) * material_.wall_attenuation_db;
  return tx_.rss_at_1m_dbm - path_loss - wall_loss + shadow_db(ap, p);
}

double RadioEnvironment::measure_dbm(std::size_t ap, const Point& p,
                                     const DeviceProfile& dev, Rng& rng,
                                     std::span<const double> session_drift)
    const {
  const double drift =
      session_drift.empty() ? 0.0 : session_drift[ap];
  const double channel = channel_rss_dbm(ap, p) + drift +
                         rng.normal(0.0, material_.fading_sigma_db);
  double rss = apply_device_gain(dev, channel) +
               rng.normal(0.0, dev.noise_sigma_db);
  if (rss < dev.sensitivity_dbm)
    return static_cast<double>(data::kNotDetectedDbm);
  if (dev.quantization_db > 0.0)
    rss = std::round(rss / dev.quantization_db) * dev.quantization_db;
  return std::clamp(rss, static_cast<double>(data::kNotDetectedDbm),
                    static_cast<double>(data::kMaxRssDbm));
}

std::vector<float> RadioEnvironment::fingerprint(
    const Point& p, const DeviceProfile& dev, Rng& rng,
    std::span<const double> session_drift) const {
  CAL_ENSURE(session_drift.empty() ||
                 session_drift.size() == building_->num_aps(),
             "session drift vector must cover every AP");
  std::vector<float> rss(building_->num_aps());
  for (std::size_t ap = 0; ap < rss.size(); ++ap)
    rss[ap] = static_cast<float>(measure_dbm(ap, p, dev, rng, session_drift));
  return rss;
}

std::vector<double> RadioEnvironment::draw_session_drift(Rng& rng) const {
  std::vector<double> drift(building_->num_aps());
  for (auto& d : drift)
    d = rng.normal(0.0, material_.session_drift_sigma_db);
  return drift;
}

}  // namespace cal::sim
