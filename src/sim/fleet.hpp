// Multi-building fleet campaigns: cross-venue traffic generation.
//
// The single-building Scenario (collector.hpp) reproduces the paper's
// per-floorplan protocol. A multi-tenant serving deployment needs the
// step above it: several venues surveyed independently, plus an
// interleaved request stream that mixes devices and venues the way a
// fleet of phones does — the workload the registry/router/shard stack
// (src/serve) is built to absorb. Everything here is deterministic in its
// seed, so serving tests and benches replay identical cross-venue traffic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/collector.hpp"

namespace cal::sim {

/// Survey every building in `specs` independently (distinct collection
/// seeds per venue, derived from `seed`). Element i is the full Scenario
/// of specs[i]: OP3 train set plus one drifted test capture per Table I
/// device.
std::vector<Scenario> make_fleet(std::span<const BuildingSpec> specs,
                                 std::uint64_t seed,
                                 std::size_t train_samples_per_rp = 5,
                                 std::size_t test_samples_per_rp = 1);

/// Fleet over venues chosen by index into table2_buildings().
std::vector<Scenario> make_table2_fleet(
    std::span<const std::size_t> building_indices, std::uint64_t seed,
    std::size_t train_samples_per_rp = 5,
    std::size_t test_samples_per_rp = 1);

/// Every device's online test capture of one venue, merged into a single
/// dataset — the clean *online-phase* capture the serving layer's
/// screening calibration wants (see serve::calibrate_thresholds: the
/// offline survey alone is too tight once session drift and device
/// heterogeneity kick in).
data::FingerprintDataset merged_device_capture(const Scenario& scenario);

/// One cross-venue request: coordinates into a fleet's test captures.
struct FleetRequest {
  std::size_t venue = 0;   ///< index into the fleet
  std::size_t device = 0;  ///< index into scenario.device_tests
  std::size_t row = 0;     ///< row of that device's test set
};

/// Interleaved cross-venue request stream, deterministic in `seed`.
/// Each request picks a uniform venue; with probability `repeat_prob` it
/// re-issues that venue's previous request (a stationary device
/// re-scanning its spot — the traffic per-shard LRU caches absorb),
/// otherwise a fresh uniform (device, row).
std::vector<FleetRequest> fleet_request_stream(
    std::span<const Scenario> fleet, std::size_t n_requests,
    std::uint64_t seed, double repeat_prob = 0.0);

}  // namespace cal::sim
