// Fingerprint campaign collector (the paper's offline/online phases).
//
// Offline phase (§V.A): 5 fingerprints per RP captured with the OP3
// reference device. Online phase: 1 fingerprint per RP per test device.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "sim/propagation.hpp"

namespace cal::sim {

/// Collect `samples_per_rp` fingerprints at every RP of the building with
/// the given device. Deterministic in `seed`. When `with_session_drift`
/// is set, a fresh per-AP drift vector (environmental change since the
/// offline survey) is drawn for this collection session — the paper's
/// online phase always carries such drift.
data::FingerprintDataset collect_fingerprints(const RadioEnvironment& env,
                                              const DeviceProfile& device,
                                              std::size_t samples_per_rp,
                                              std::uint64_t seed,
                                              bool with_session_drift = false);

/// One building's full experimental scenario: OP3 training set plus one
/// test set per Table I device (paper data-collection protocol).
struct Scenario {
  BuildingSpec building_spec;
  data::FingerprintDataset train;  ///< OP3, 5 fingerprints/RP
  std::vector<std::string> device_names;
  std::vector<data::FingerprintDataset> device_tests;  ///< 1 fp/RP each
};

/// Build the scenario for one Table II building. `test_samples_per_rp`
/// defaults to the paper's single online fingerprint per RP.
Scenario make_scenario(const BuildingSpec& spec, std::uint64_t seed,
                       std::size_t train_samples_per_rp = 5,
                       std::size_t test_samples_per_rp = 1);

}  // namespace cal::sim
