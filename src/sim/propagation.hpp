// Wi-Fi RSS propagation physics.
//
// Log-distance path loss with three noise layers, matching the effects the
// paper attributes to real floorplans (§I, §V.B):
//   1. wall/material attenuation        — static, distance-proportional
//   2. spatially-correlated shadowing   — static per (AP, location); people,
//                                         furniture, structural features
//   3. fast fading                      — fresh per measurement; multipath
// The shadowing field is a sum of random-phase plane waves (a standard
// Gaussian-random-field approximation), so nearby RPs see correlated bias —
// exactly the structure that makes fingerprinting work at all.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/building.hpp"
#include "sim/device.hpp"

namespace cal::sim {

/// Transmit-side constants of the simulated APs.
struct TxConfig {
  double rss_at_1m_dbm = -38.0;  ///< measured RSS one metre from the AP
  double min_distance_m = 1.0;   ///< near-field clamp
};

/// Deterministic radio map of one building plus measurement sampling.
class RadioEnvironment {
 public:
  /// Build the static radio map (shadowing fields) for a building.
  explicit RadioEnvironment(const Building& building,
                            TxConfig tx = TxConfig{});

  const Building& building() const { return *building_; }

  /// Noise-free channel RSS (path loss + walls + shadowing) from AP `ap`
  /// at position `p`, before any device effect. May fall below the
  /// detection floor; callers clamp via the device profile.
  double channel_rss_dbm(std::size_t ap, const Point& p) const;

  /// One measured RSS sample as reported by `dev` at position `p`:
  /// channel RSS + session drift + fast fading + device gain + device
  /// noise, quantised, and replaced by data::kNotDetectedDbm when below
  /// the device's sensitivity. `session_drift` is a per-AP offset vector
  /// (may be empty for a drift-free survey).
  double measure_dbm(std::size_t ap, const Point& p, const DeviceProfile& dev,
                     Rng& rng,
                     std::span<const double> session_drift = {}) const;

  /// Full fingerprint at `p` for device `dev` (one value per AP).
  std::vector<float> fingerprint(const Point& p, const DeviceProfile& dev,
                                 Rng& rng,
                                 std::span<const double> session_drift = {}) const;

  /// Draw a per-AP session-drift vector from the building's material
  /// profile (deterministic in `rng`).
  std::vector<double> draw_session_drift(Rng& rng) const;

 private:
  struct PlaneWave {
    double kx = 0.0;
    double ky = 0.0;
    double phase = 0.0;
  };

  double shadow_db(std::size_t ap, const Point& p) const;

  const Building* building_;
  TxConfig tx_;
  MaterialProfile material_;
  std::vector<std::vector<PlaneWave>> shadow_waves_;  // per AP
  double shadow_scale_ = 0.0;
};

}  // namespace cal::sim
