#include "sim/collector.hpp"

#include "common/ensure.hpp"

namespace cal::sim {

data::FingerprintDataset collect_fingerprints(const RadioEnvironment& env,
                                              const DeviceProfile& device,
                                              std::size_t samples_per_rp,
                                              std::uint64_t seed,
                                              bool with_session_drift) {
  CAL_ENSURE(samples_per_rp > 0, "samples_per_rp must be positive");
  const Building& b = env.building();
  data::FingerprintDataset ds(b.num_aps(), b.rp_map());
  Rng rng(seed);
  std::vector<double> drift;
  if (with_session_drift) drift = env.draw_session_drift(rng);
  for (std::size_t rp = 0; rp < b.num_rps(); ++rp) {
    for (std::size_t s = 0; s < samples_per_rp; ++s) {
      const auto fp =
          env.fingerprint(b.rp_positions()[rp], device, rng, drift);
      ds.add_sample(fp, rp);
    }
  }
  return ds;
}

Scenario make_scenario(const BuildingSpec& spec, std::uint64_t seed,
                       std::size_t train_samples_per_rp,
                       std::size_t test_samples_per_rp) {
  Building building(spec);
  RadioEnvironment env(building);

  Scenario sc;
  sc.building_spec = spec;
  const auto devices = table1_devices();
  const DeviceProfile& op3 = devices.back();
  CAL_ENSURE(op3.name == "OP3", "expected OP3 as the reference device");

  // Offline survey: drift-free reference campaign on the OP3.
  sc.train = collect_fingerprints(env, op3, train_samples_per_rp,
                                  seed ^ 0x5EEDF00DULL,
                                  /*with_session_drift=*/false);
  // Online phase: each device visits in its own later session, so every
  // test capture carries fresh environmental drift.
  for (std::size_t d = 0; d < devices.size(); ++d) {
    sc.device_names.push_back(devices[d].name);
    sc.device_tests.push_back(
        collect_fingerprints(env, devices[d], test_samples_per_rp,
                             seed + 977 * (d + 1),
                             /*with_session_drift=*/true));
  }
  return sc;
}

}  // namespace cal::sim
