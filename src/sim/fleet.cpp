#include "sim/fleet.hpp"

#include "common/ensure.hpp"
#include "sim/building.hpp"

namespace cal::sim {

std::vector<Scenario> make_fleet(std::span<const BuildingSpec> specs,
                                 std::uint64_t seed,
                                 std::size_t train_samples_per_rp,
                                 std::size_t test_samples_per_rp) {
  CAL_ENSURE(!specs.empty(), "fleet needs >= 1 building");
  std::vector<Scenario> fleet;
  fleet.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    // Distinct per-venue campaign seeds: venue i's survey must not replay
    // venue j's measurement noise.
    fleet.push_back(make_scenario(specs[i], seed + 7919 * (i + 1),
                                  train_samples_per_rp,
                                  test_samples_per_rp));
  }
  return fleet;
}

std::vector<Scenario> make_table2_fleet(
    std::span<const std::size_t> building_indices, std::uint64_t seed,
    std::size_t train_samples_per_rp, std::size_t test_samples_per_rp) {
  const auto all = table2_buildings();
  std::vector<BuildingSpec> specs;
  specs.reserve(building_indices.size());
  for (const std::size_t idx : building_indices) {
    CAL_ENSURE(idx < all.size(),
               "building index " << idx << " out of " << all.size());
    specs.push_back(all[idx]);
  }
  return make_fleet(specs, seed, train_samples_per_rp, test_samples_per_rp);
}

data::FingerprintDataset merged_device_capture(const Scenario& scenario) {
  CAL_ENSURE(!scenario.device_tests.empty(),
             "venue " << scenario.building_spec.name
                      << " has no test captures");
  data::FingerprintDataset merged = scenario.device_tests.front();
  for (std::size_t d = 1; d < scenario.device_tests.size(); ++d)
    merged.merge(scenario.device_tests[d]);
  return merged;
}

std::vector<FleetRequest> fleet_request_stream(
    std::span<const Scenario> fleet, std::size_t n_requests,
    std::uint64_t seed, double repeat_prob) {
  CAL_ENSURE(!fleet.empty(), "request stream needs >= 1 venue");
  CAL_ENSURE(repeat_prob >= 0.0 && repeat_prob <= 1.0,
             "repeat_prob out of [0,1]: " << repeat_prob);
  for (const Scenario& sc : fleet) {
    CAL_ENSURE(!sc.device_tests.empty(),
               "venue " << sc.building_spec.name << " has no test captures");
    for (const auto& test : sc.device_tests)
      CAL_ENSURE(test.num_samples() > 0,
                 "venue " << sc.building_spec.name
                          << " has an empty test capture");
  }
  Rng rng(seed);
  std::vector<FleetRequest> stream;
  stream.reserve(n_requests);
  // Last request per venue, for stationary-device repeats.
  std::vector<FleetRequest> last(fleet.size());
  std::vector<bool> seen(fleet.size(), false);
  for (std::size_t i = 0; i < n_requests; ++i) {
    FleetRequest req;
    req.venue = rng.uniform_index(fleet.size());
    if (seen[req.venue] && rng.bernoulli(repeat_prob)) {
      req = last[req.venue];
    } else {
      const Scenario& sc = fleet[req.venue];
      req.device = rng.uniform_index(sc.device_tests.size());
      req.row = rng.uniform_index(sc.device_tests[req.device].num_samples());
      last[req.venue] = req;
      seen[req.venue] = true;
    }
    stream.push_back(req);
  }
  return stream;
}

}  // namespace cal::sim
