#include "baselines/knn.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"

namespace cal::baselines {

Knn::Knn(std::size_t k) : k_(k) {
  CAL_ENSURE(k_ >= 1, "KNN needs k >= 1");
}

void Knn::fit(const data::FingerprintDataset& train) {
  CAL_ENSURE(train.num_samples() >= 1, "KNN fit on empty dataset");
  train_x_ = train.normalized();
  train_y_.assign(train.labels().begin(), train.labels().end());
  num_classes_ = train.num_rps();
}

std::vector<std::size_t> Knn::predict(const Tensor& x) {
  CAL_ENSURE(!train_y_.empty(), "KNN predict before fit");
  CAL_ENSURE(x.rank() == 2 && x.cols() == train_x_.cols(),
             "KNN feature mismatch: " << x.shape_str() << " vs train "
                                      << train_x_.shape_str());
  const std::size_t n_train = train_x_.rows();
  const std::size_t k = std::min(k_, n_train);
  const std::size_t cols = x.cols();

  std::vector<std::size_t> out(x.rows());
  std::vector<std::pair<float, std::size_t>> dist(n_train);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* q = x.data() + i * cols;
    for (std::size_t t = 0; t < n_train; ++t) {
      const float* r = train_x_.data() + t * cols;
      float acc = 0.0F;
      for (std::size_t j = 0; j < cols; ++j) {
        const float d = q[j] - r[j];
        acc += d * d;
      }
      dist[t] = {acc, t};
    }
    std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                      dist.end());
    // Distance-weighted vote: w = 1/(d+eps); robust to ties and to a
    // single mislabeled close neighbour.
    std::vector<double> votes(num_classes_, 0.0);
    for (std::size_t t = 0; t < k; ++t) {
      const double w = 1.0 / (std::sqrt(static_cast<double>(dist[t].first)) +
                              1e-6);
      votes[train_y_[dist[t].second]] += w;
    }
    out[i] = static_cast<std::size_t>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
  }
  return out;
}

}  // namespace cal::baselines
