// WiDeep baseline [14]: denoising autoencoder + Gaussian-process classifier.
//
// WiDeep denoises fingerprints with an autoencoder and classifies the
// embedding with a GPC. Its GP stage is extremely sensitive to residual
// noise — the paper attributes WiDeep's 6.03x mean-error gap to exactly
// that (Fig. 6 discussion).
#pragma once

#include <memory>

#include "baselines/autoencoder.hpp"
#include "baselines/gpc.hpp"
#include "baselines/localizer.hpp"

namespace cal::baselines {

struct WiDeepConfig {
  DaeConfig dae;
  GpcConfig gpc;
  std::uint64_t seed = 43;
};

class WiDeep : public ILocalizer {
 public:
  explicit WiDeep(WiDeepConfig cfg = WiDeepConfig{});

  void fit(const data::FingerprintDataset& train) override;
  std::vector<std::size_t> predict(const Tensor& x_normalized) override;
  std::string name() const override { return "WiDeep"; }

 private:
  WiDeepConfig cfg_;
  std::unique_ptr<DenoisingAutoencoder> encoder_;
  std::unique_ptr<Gpc> gpc_;
  std::unique_ptr<data::FingerprintDataset> embedded_train_;
};

}  // namespace cal::baselines
