#include "baselines/autoencoder.hpp"

#include "autograd/ops.hpp"
#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"

namespace cal::baselines {

/// Encoder (Linear+ReLU) and decoder (Linear) trained end-to-end on MSE.
class DenoisingAutoencoder::AeModule : public nn::Module {
 public:
  AeModule(std::size_t input_dim, std::size_t hidden, Rng& rng)
      : enc_(input_dim, hidden, rng, "enc"),
        dec_(hidden, input_dim, rng, "dec") {}

  autograd::Var forward(const autograd::Var& x) override {
    return dec_.forward(encode(x));
  }

  autograd::Var encode(const autograd::Var& x) {
    return autograd::relu(enc_.forward(x));
  }

  std::vector<nn::Parameter> parameters() override {
    auto p = enc_.parameters();
    for (auto& q : dec_.parameters()) p.push_back(q);
    return p;
  }

 private:
  nn::Linear enc_;
  nn::Linear dec_;
};

DenoisingAutoencoder::DenoisingAutoencoder(std::size_t input_dim,
                                           DaeConfig cfg)
    : input_dim_(input_dim), cfg_(cfg) {
  CAL_ENSURE(input_dim_ > 0 && cfg_.hidden > 0, "DAE dims must be positive");
  CAL_ENSURE(cfg_.corruption >= 0.0F && cfg_.corruption < 1.0F,
             "corruption out of [0,1)");
  Rng rng(cfg_.seed);
  net_ = std::make_shared<AeModule>(input_dim_, cfg_.hidden, rng);
}

nn::TrainHistory DenoisingAutoencoder::fit(const Tensor& x_clean) {
  CAL_ENSURE(x_clean.rank() == 2 && x_clean.cols() == input_dim_,
             "DAE fit input mismatch");
  // Pre-corrupt the inputs (masking + Gaussian); targets stay clean.
  Rng rng(cfg_.seed ^ 0xC0FFEEULL);
  Tensor x_noisy = x_clean;
  for (std::size_t i = 0; i < x_noisy.size(); ++i) {
    if (cfg_.corruption > 0.0F && rng.bernoulli(cfg_.corruption)) {
      x_noisy[i] = 0.0F;
    } else if (cfg_.noise_sigma > 0.0F) {
      x_noisy[i] += static_cast<float>(rng.normal(0.0, cfg_.noise_sigma));
    }
  }
  return nn::fit_regression(*net_, x_noisy, x_clean, cfg_.train);
}

Tensor DenoisingAutoencoder::encode(const Tensor& x) const {
  CAL_ENSURE(x.rank() == 2 && x.cols() == input_dim_, "encode input mismatch");
  auto h = net_->encode(autograd::constant(x));
  return h->value();
}

StackedAutoencoder::StackedAutoencoder(std::size_t input_dim,
                                       std::vector<std::size_t> hidden_dims,
                                       DaeConfig cfg) {
  CAL_ENSURE(!hidden_dims.empty(), "stacked AE needs at least one layer");
  std::size_t in = input_dim;
  for (std::size_t i = 0; i < hidden_dims.size(); ++i) {
    DaeConfig layer_cfg = cfg;
    layer_cfg.hidden = hidden_dims[i];
    layer_cfg.seed = cfg.seed + 131 * (i + 1);
    layers_.push_back(
        std::make_unique<DenoisingAutoencoder>(in, layer_cfg));
    in = hidden_dims[i];
  }
}

void StackedAutoencoder::fit(const Tensor& x_clean) {
  // Greedy layer-wise pre-training: each layer denoises the codes of the
  // stack below it (Bengio et al.'s classic recipe, as used by SANGRIA).
  Tensor codes = x_clean;
  for (auto& layer : layers_) {
    layer->fit(codes);
    codes = layer->encode(codes);
  }
  fitted_ = true;
}

Tensor StackedAutoencoder::encode(const Tensor& x) const {
  CAL_ENSURE(fitted_, "stacked AE encode before fit");
  Tensor codes = x;
  for (const auto& layer : layers_) codes = layer->encode(codes);
  return codes;
}

std::size_t StackedAutoencoder::code_dim() const {
  return layers_.back()->hidden_dim();
}

}  // namespace cal::baselines
