#include "baselines/surrogate.hpp"

#include "common/ensure.hpp"

namespace cal::baselines {

SurrogateGradients::SurrogateGradients(const data::FingerprintDataset& train,
                                       std::uint64_t seed) {
  DnnConfig cfg;
  cfg.seed = seed;
  cfg.train.epochs = 40;
  dnn_ = std::make_unique<Dnn>(cfg);
  dnn_->fit(train);
}

attacks::GradientSource& SurrogateGradients::source() {
  attacks::GradientSource* src = dnn_->gradient_source();
  CAL_ENSURE(src != nullptr, "surrogate DNN has no gradient source");
  return *src;
}

attacks::GradientSource& gradients_for(ILocalizer& victim,
                                       SurrogateGradients& surrogate) {
  if (auto* own = victim.gradient_source(); own != nullptr) return *own;
  return surrogate.source();
}

}  // namespace cal::baselines
