// Deep-neural-network fingerprint classifier [15].
#pragma once

#include <memory>

#include "baselines/localizer.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"

namespace cal::baselines {

/// MLP hyper-parameters shared by the DNN-family baselines.
struct DnnConfig {
  std::size_t hidden1 = 128;
  std::size_t hidden2 = 128;
  float dropout = 0.1F;
  nn::TrainConfig train;
  std::uint64_t seed = 21;
};

/// Two-hidden-layer ReLU MLP trained with Adam + cross-entropy.
class Dnn : public ILocalizer {
 public:
  explicit Dnn(DnnConfig cfg = DnnConfig{});

  void fit(const data::FingerprintDataset& train) override;
  std::vector<std::size_t> predict(const Tensor& x_normalized) override;
  std::string name() const override { return "DNN"; }
  attacks::GradientSource* gradient_source() override;

  nn::Module& model();
  const nn::TrainHistory& history() const { return history_; }

 protected:
  /// Build the network for the given input/output width (called by fit).
  void build(std::size_t num_aps, std::size_t num_classes);

  DnnConfig cfg_;
  std::unique_ptr<nn::Sequential> net_;
  std::unique_ptr<attacks::ModuleGradientSource> grads_;
  nn::TrainHistory history_;
};

}  // namespace cal::baselines
