// Convolutional fingerprint classifier [16].
#pragma once

#include <memory>

#include "baselines/localizer.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"

namespace cal::baselines {

struct CnnConfig {
  std::size_t kernel_size = 7;
  std::size_t filters = 8;
  std::size_t stride = 2;
  std::size_t hidden = 128;
  nn::TrainConfig train;
  std::uint64_t seed = 23;
};

/// Conv1d over the AP axis + MLP head.
class Cnn : public ILocalizer {
 public:
  explicit Cnn(CnnConfig cfg = CnnConfig{});

  void fit(const data::FingerprintDataset& train) override;
  std::vector<std::size_t> predict(const Tensor& x_normalized) override;
  std::string name() const override { return "CNN"; }
  attacks::GradientSource* gradient_source() override;

 private:
  CnnConfig cfg_;
  std::unique_ptr<nn::Sequential> net_;
  std::unique_ptr<attacks::ModuleGradientSource> grads_;
};

}  // namespace cal::baselines
