#include "baselines/wideep.hpp"

#include "common/ensure.hpp"

namespace cal::baselines {

WiDeep::WiDeep(WiDeepConfig cfg) : cfg_(cfg) {}

void WiDeep::fit(const data::FingerprintDataset& train) {
  CAL_ENSURE(train.num_samples() >= 2, "WiDeep fit needs >= 2 samples");
  const Tensor x = train.normalized();

  DaeConfig dae = cfg_.dae;
  dae.seed = cfg_.seed;
  encoder_ = std::make_unique<DenoisingAutoencoder>(train.num_aps(), dae);
  encoder_->fit(x);

  GpcConfig gpc_cfg = cfg_.gpc;
  gpc_cfg.seed = cfg_.seed ^ 0x91DEEULL;
  gpc_ = std::make_unique<Gpc>(gpc_cfg);
  gpc_->fit_features(encoder_->encode(x), train.labels(), train.num_rps());
}

std::vector<std::size_t> WiDeep::predict(const Tensor& x) {
  CAL_ENSURE(gpc_ != nullptr, "WiDeep predict before fit");
  return gpc_->predict(encoder_->encode(x));
}

}  // namespace cal::baselines
