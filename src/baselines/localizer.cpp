#include "baselines/localizer.hpp"

#include "common/ensure.hpp"

namespace cal::baselines {

double prediction_accuracy(ILocalizer& model, const Tensor& x_normalized,
                           std::span<const std::size_t> labels) {
  CAL_ENSURE(labels.size() == x_normalized.rows(), "labels/rows mismatch");
  const auto pred = model.predict(x_normalized);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace cal::baselines
