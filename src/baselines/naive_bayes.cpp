#include "baselines/naive_bayes.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"

namespace cal::baselines {

NaiveBayes::NaiveBayes(double variance_floor)
    : variance_floor_(variance_floor) {
  CAL_ENSURE(variance_floor_ > 0.0, "variance floor must be positive");
}

void NaiveBayes::fit(const data::FingerprintDataset& train) {
  CAL_ENSURE(train.num_samples() >= 1, "NaiveBayes fit on empty dataset");
  const Tensor x = train.normalized();
  const auto labels = train.labels();
  num_classes_ = train.num_rps();
  num_features_ = x.cols();

  mean_.assign(num_classes_ * num_features_, 0.0);
  var_.assign(num_classes_ * num_features_, 0.0);
  log_prior_.assign(num_classes_, 0.0);
  std::vector<std::size_t> counts(num_classes_, 0);

  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* row = x.data() + i * num_features_;
    double* m = &mean_[labels[i] * num_features_];
    for (std::size_t j = 0; j < num_features_; ++j) m[j] += row[j];
    ++counts[labels[i]];
  }
  for (std::size_t c = 0; c < num_classes_; ++c) {
    if (counts[c] == 0) continue;
    double* m = &mean_[c * num_features_];
    for (std::size_t j = 0; j < num_features_; ++j)
      m[j] /= static_cast<double>(counts[c]);
  }
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* row = x.data() + i * num_features_;
    const double* m = &mean_[labels[i] * num_features_];
    double* v = &var_[labels[i] * num_features_];
    for (std::size_t j = 0; j < num_features_; ++j) {
      const double d = row[j] - m[j];
      v[j] += d * d;
    }
  }
  const auto total = static_cast<double>(x.rows());
  for (std::size_t c = 0; c < num_classes_; ++c) {
    double* v = &var_[c * num_features_];
    for (std::size_t j = 0; j < num_features_; ++j) {
      v[j] = counts[c] > 0
                 ? std::max(v[j] / static_cast<double>(counts[c]),
                            variance_floor_)
                 : variance_floor_;
    }
    // Unvisited classes get a vanishing prior rather than -inf.
    log_prior_[c] = std::log(
        std::max(static_cast<double>(counts[c]), 0.5) / total);
  }
}

std::vector<std::size_t> NaiveBayes::predict(const Tensor& x) {
  CAL_ENSURE(num_classes_ > 0, "NaiveBayes predict before fit");
  CAL_ENSURE(x.rank() == 2 && x.cols() == num_features_,
             "NaiveBayes feature mismatch");
  std::vector<std::size_t> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* row = x.data() + i * num_features_;
    double best_score = -1e300;
    std::size_t best = 0;
    for (std::size_t c = 0; c < num_classes_; ++c) {
      const double* m = &mean_[c * num_features_];
      const double* v = &var_[c * num_features_];
      double score = log_prior_[c];
      for (std::size_t j = 0; j < num_features_; ++j) {
        const double d = row[j] - m[j];
        score += -0.5 * (std::log(2.0 * 3.14159265358979 * v[j]) +
                         d * d / v[j]);
      }
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    out[i] = best;
  }
  return out;
}

}  // namespace cal::baselines
