#include "baselines/advloc.hpp"

#include "attacks/attack.hpp"
#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace cal::baselines {

AdvLoc::AdvLoc(AdvLocConfig cfg) : Dnn(cfg.dnn), adv_cfg_(cfg) {
  CAL_ENSURE(cfg.adversarial_fraction >= 0.0 &&
                 cfg.adversarial_fraction <= 1.0,
             "adversarial_fraction out of [0,1]");
}

void AdvLoc::fit(const data::FingerprintDataset& train) {
  CAL_ENSURE(train.num_samples() >= 2, "AdvLoc fit needs >= 2 samples");
  build(train.num_aps(), train.num_rps());

  const Tensor x = train.normalized();
  const auto labels = train.labels();

  // Phase 1: clean warm-up so the FGSM gradients are meaningful.
  nn::TrainConfig warm = cfg_.train;
  warm.epochs = adv_cfg_.warmup_epochs;
  nn::fit_classifier(*net_, x, labels, warm);

  // Phase 2: craft a static adversarial copy of a random subset with
  // FGSM against the warmed-up model (self-augmentation, as in [24]).
  Rng rng(cfg_.seed ^ 0xAD70CULL);
  const auto n_adv = static_cast<std::size_t>(
      static_cast<double>(x.rows()) * adv_cfg_.adversarial_fraction);
  Tensor x_aug = x;
  std::vector<std::size_t> y_aug(labels.begin(), labels.end());
  if (n_adv > 0) {
    auto idx = rng.sample_without_replacement(x.rows(), n_adv);
    Tensor x_sub = nn::gather_rows(x, idx);
    std::vector<std::size_t> y_sub(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) y_sub[i] = labels[idx[i]];

    attacks::AttackConfig atk;
    atk.epsilon = adv_cfg_.train_epsilon;
    atk.phi_percent = adv_cfg_.train_phi_percent;
    atk.selection = attacks::TargetSelection::Strongest;
    Tensor x_adv = attacks::fgsm_attack(*grads_, x_sub, y_sub, atk);

    // Stack clean + adversarial into one training matrix.
    Tensor stacked({x.rows() + x_adv.rows(), x.cols()});
    std::copy(x.flat().begin(), x.flat().end(), stacked.data());
    std::copy(x_adv.flat().begin(), x_adv.flat().end(),
              stacked.data() + x.size());
    x_aug = std::move(stacked);
    y_aug.insert(y_aug.end(), y_sub.begin(), y_sub.end());
  }

  // Phase 3: continue training on the augmented set.
  history_ = nn::fit_classifier(*net_, x_aug, y_aug, cfg_.train);
}

}  // namespace cal::baselines
