// Common interface for every indoor-localization model in the repository
// (the classical baselines of Fig. 1, the state-of-the-art frameworks of
// Fig. 6/7, and CALLOC itself).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "attacks/gradient_source.hpp"
#include "data/dataset.hpp"
#include "tensor/tensor.hpp"

namespace cal::baselines {

/// A fingerprint-to-RP classifier with optional white-box gradient access.
class ILocalizer {
 public:
  ILocalizer() = default;
  ILocalizer(const ILocalizer&) = delete;
  ILocalizer& operator=(const ILocalizer&) = delete;
  virtual ~ILocalizer() = default;

  /// Train on an offline-phase dataset (consumes normalised features
  /// internally; callers pass the raw dataset).
  virtual void fit(const data::FingerprintDataset& train) = 0;

  /// Predict the RP class for each row of a normalised [0,1] batch.
  virtual std::vector<std::size_t> predict(const Tensor& x_normalized) = 0;

  /// Display name used in reports ("KNN", "CALLOC", ...).
  virtual std::string name() const = 0;

  /// Exact white-box gradient access, or nullptr when the model is not
  /// differentiable (attackers then transfer from a surrogate).
  virtual attacks::GradientSource* gradient_source() { return nullptr; }

  /// Resident bytes of the trained inference state (weights, anchors,
  /// scales — whatever must stay in memory to serve). 0 = unknown/untrained.
  /// The serve layer exports this per tenant so quantization memory wins
  /// are observable.
  virtual std::size_t weight_bytes() const { return 0; }

  /// Build an int8-quantized, inference-only copy of this trained model
  /// (per-output-channel weight scales, fp32 accumulate), or nullptr when
  /// the model has no quantized path. The copy shares no state with the
  /// original.
  virtual std::unique_ptr<ILocalizer> quantize_int8() { return nullptr; }
};

/// Prediction accuracy helper shared by tests.
double prediction_accuracy(ILocalizer& model, const Tensor& x_normalized,
                           std::span<const std::size_t> labels);

}  // namespace cal::baselines
