#include "baselines/anvil.hpp"

#include "autograd/ops.hpp"
#include "common/ensure.hpp"
#include "nn/linear.hpp"
#include "nn/prototype_attention.hpp"

namespace cal::baselines {

/// logits = head(ReLU(fc1([mha(x) ; x]))) — attention features plus the
/// raw fingerprint as a residual, matching the skip connections of the
/// ANVIL encoder block and keeping gradients strong while the attention
/// warms up.
class Anvil::AnvilNet : public nn::Module {
 public:
  AnvilNet(std::size_t num_aps, std::size_t num_classes,
           const AnvilConfig& cfg, Rng& rng)
      : mha_(num_aps, cfg.head_dim, cfg.num_heads, cfg.num_prototypes, rng,
             "anvil_mha"),
        fc1_(mha_.out_features() + num_aps, cfg.hidden, rng, "anvil_fc1"),
        head_(cfg.hidden, num_classes, rng, "anvil_head") {}

  autograd::Var forward(const autograd::Var& x) override {
    auto attended = mha_.forward(x);
    auto h = autograd::concat_cols(attended, x);
    h = autograd::relu(fc1_.forward(h));
    return head_.forward(h);
  }

  std::vector<nn::Parameter> parameters() override {
    auto all = mha_.parameters();
    for (auto& p : fc1_.parameters()) all.push_back(p);
    for (auto& p : head_.parameters()) all.push_back(p);
    return all;
  }

  void set_training(bool training) override {
    nn::Module::set_training(training);
    mha_.set_training(training);
  }

 private:
  nn::MultiHeadPrototypeAttention mha_;
  nn::Linear fc1_;
  nn::Linear head_;
};

Anvil::Anvil(AnvilConfig cfg) : cfg_(cfg) {}

void Anvil::fit(const data::FingerprintDataset& train) {
  CAL_ENSURE(train.num_samples() >= 2, "ANVIL fit needs >= 2 samples");
  Rng rng(cfg_.seed);
  net_ = std::make_shared<AnvilNet>(train.num_aps(), train.num_rps(), cfg_,
                                    rng);
  grads_ = std::make_unique<attacks::ModuleGradientSource>(*net_);
  nn::fit_classifier(*net_, train.normalized(), train.labels(), cfg_.train);
}

std::vector<std::size_t> Anvil::predict(const Tensor& x) {
  CAL_ENSURE(net_ != nullptr, "ANVIL predict before fit");
  return autograd::argmax_rows(nn::predict_tensor(*net_, x));
}

attacks::GradientSource* Anvil::gradient_source() {
  return grads_ ? grads_.get() : nullptr;
}

}  // namespace cal::baselines
