// Surrogate gradient provider for attacking non-differentiable victims.
//
// White-box attacks on KNN/GPC/GBDT-based localizers (Fig. 1, Fig. 6/7)
// use transfer: a DNN surrogate is trained on the victim's training data
// and its input gradients drive the perturbation. Transferability of
// FGSM/PGD perturbations across models trained on the same data is the
// standard assumption in the adversarial-ML literature.
#pragma once

#include <memory>

#include "attacks/gradient_source.hpp"
#include "baselines/dnn.hpp"
#include "data/dataset.hpp"

namespace cal::baselines {

/// Trains an internal DNN on the given dataset and exposes its exact
/// input gradients as an attacks::GradientSource.
class SurrogateGradients {
 public:
  explicit SurrogateGradients(const data::FingerprintDataset& train,
                              std::uint64_t seed = 4242);

  attacks::GradientSource& source();

 private:
  std::unique_ptr<Dnn> dnn_;
};

/// Resolve the gradient source used to attack `victim`: its own exact
/// gradients when differentiable, otherwise `surrogate`.
attacks::GradientSource& gradients_for(ILocalizer& victim,
                                       SurrogateGradients& surrogate);

}  // namespace cal::baselines
