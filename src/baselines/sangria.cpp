#include "baselines/sangria.hpp"

#include "common/ensure.hpp"

namespace cal::baselines {

Sangria::Sangria(SangriaConfig cfg) : cfg_(cfg) {}

void Sangria::fit(const data::FingerprintDataset& train) {
  CAL_ENSURE(train.num_samples() >= 2, "SANGRIA fit needs >= 2 samples");
  const Tensor x = train.normalized();

  DaeConfig dae = cfg_.dae;
  dae.seed = cfg_.seed;
  encoder_ = std::make_unique<StackedAutoencoder>(train.num_aps(),
                                                  cfg_.hidden_dims, dae);
  encoder_->fit(x);

  GbdtConfig gbdt = cfg_.gbdt;
  gbdt.seed = cfg_.seed ^ 0x5A46ULL;
  trees_ = std::make_unique<GbdtClassifier>(gbdt);
  trees_->fit(encoder_->encode(x), train.labels(), train.num_rps());
}

std::vector<std::size_t> Sangria::predict(const Tensor& x) {
  CAL_ENSURE(trees_ != nullptr, "SANGRIA predict before fit");
  return trees_->predict(encoder_->encode(x));
}

}  // namespace cal::baselines
