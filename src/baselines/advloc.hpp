// AdvLoc baseline [24]: adversarially-augmented DNN.
//
// AdvLoc hardens a DNN by folding a fixed batch of FGSM adversarial
// samples into offline training — a single augmentation pass, with no
// curriculum and no progressive ø schedule. It is the closest prior work
// to CALLOC and the paper's strongest competitor (Fig. 6: CALLOC wins by
// 1.77x mean / 2.35x worst-case; Fig. 7: AdvLoc degrades from ø ≈ 60).
#pragma once

#include "baselines/dnn.hpp"

namespace cal::baselines {

struct AdvLocConfig {
  DnnConfig dnn;
  /// FGSM budget used for the training-time augmentation (the paper's
  /// AdvLoc trains at a fixed small ϵ, like CALLOC's curriculum lessons).
  double train_epsilon = 0.1;
  /// ø used when generating training adversarial samples. AdvLoc uses a
  /// static full-AP attack (no schedule) — the design choice CALLOC's
  /// curriculum improves on.
  double train_phi_percent = 100.0;
  /// Fraction of the training set converted to adversarial copies.
  double adversarial_fraction = 0.5;
  /// Epochs of clean pre-training before augmentation.
  std::size_t warmup_epochs = 20;
};

class AdvLoc : public Dnn {
 public:
  explicit AdvLoc(AdvLocConfig cfg = AdvLocConfig{});

  void fit(const data::FingerprintDataset& train) override;
  std::string name() const override { return "AdvLoc"; }

 private:
  AdvLocConfig adv_cfg_;
};

}  // namespace cal::baselines
