// SANGRIA baseline [19]: stacked autoencoder + gradient-boosted trees.
//
// SANGRIA couples a domain-specific stacked autoencoder (noise-robust
// embedding) with a categorical gradient-boosted tree classifier. It
// excels at environmental-noise augmentation but has no adversarial
// defence — the paper's Fig. 6 places it between AdvLoc and ANVIL.
#pragma once

#include <memory>

#include "baselines/autoencoder.hpp"
#include "baselines/gbdt.hpp"
#include "baselines/localizer.hpp"

namespace cal::baselines {

struct SangriaConfig {
  std::vector<std::size_t> hidden_dims = {128, 48};
  DaeConfig dae;
  GbdtConfig gbdt;
  std::uint64_t seed = 41;
};

class Sangria : public ILocalizer {
 public:
  explicit Sangria(SangriaConfig cfg = SangriaConfig{});

  void fit(const data::FingerprintDataset& train) override;
  std::vector<std::size_t> predict(const Tensor& x_normalized) override;
  std::string name() const override { return "SANGRIA"; }

  // Non-differentiable end-to-end (trees): attacks transfer via surrogate.

 private:
  SangriaConfig cfg_;
  std::unique_ptr<StackedAutoencoder> encoder_;
  std::unique_ptr<GbdtClassifier> trees_;
};

}  // namespace cal::baselines
