// Gaussian Naive Bayes fingerprint classifier [12].
#pragma once

#include "baselines/localizer.hpp"

namespace cal::baselines {

/// Per-class, per-AP Gaussian likelihood with a variance floor; classes
/// are scored by log-prior + sum of feature log-likelihoods.
class NaiveBayes : public ILocalizer {
 public:
  /// variance_floor regularises APs with near-constant readings.
  explicit NaiveBayes(double variance_floor = 1e-4);

  void fit(const data::FingerprintDataset& train) override;
  std::vector<std::size_t> predict(const Tensor& x_normalized) override;
  std::string name() const override { return "NaiveBayes"; }

 private:
  double variance_floor_;
  std::size_t num_classes_ = 0;
  std::size_t num_features_ = 0;
  std::vector<double> mean_;      // (C x A)
  std::vector<double> var_;       // (C x A)
  std::vector<double> log_prior_; // (C)
};

}  // namespace cal::baselines
