// K-Nearest-Neighbours fingerprint classifier [13].
#pragma once

#include "baselines/localizer.hpp"

namespace cal::baselines {

/// Euclidean KNN over normalised fingerprints with majority vote
/// (distance-weighted tie-breaking).
class Knn : public ILocalizer {
 public:
  explicit Knn(std::size_t k = 5);

  void fit(const data::FingerprintDataset& train) override;
  std::vector<std::size_t> predict(const Tensor& x_normalized) override;
  std::string name() const override { return "KNN"; }

  std::size_t k() const { return k_; }

 private:
  std::size_t k_;
  Tensor train_x_;
  std::vector<std::size_t> train_y_;
  std::size_t num_classes_ = 0;
};

}  // namespace cal::baselines
