// Gaussian-process classifier [14].
//
// Implemented as Gaussian-process regression on one-hot class targets
// (least-squares classification): one shared RBF kernel, a single Cholesky
// factorisation of K + σ_n²I, and C posterior-mean solves. This is the
// standard scalable GP classifier (GPML §6.5); the full Laplace
// approximation changes the link function, not the qualitative behaviour
// that matters here — extreme sensitivity of the kernel to perturbed
// inputs, which is exactly what the paper exploits when WiDeep/GPC
// degrades under noise and attack.
#pragma once

#include "baselines/localizer.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace cal::baselines {

/// Hyper-parameters of the RBF-kernel GP classifier.
struct GpcConfig {
  double signal_variance = 1.0;   ///< σ_f²
  double length_scale = 0.0;      ///< ℓ; 0 ⇒ median-distance heuristic
  double noise_variance = 0.01;   ///< σ_n²
  std::size_t max_train_samples = 700;  ///< subsample cap (keeps O(N³) sane)
  std::uint64_t seed = 11;
};

class Gpc : public ILocalizer {
 public:
  explicit Gpc(GpcConfig cfg = GpcConfig{});

  void fit(const data::FingerprintDataset& train) override;

  /// Fit directly on an arbitrary feature matrix (e.g. autoencoder codes
  /// in WiDeep) rather than normalised fingerprints.
  void fit_features(const Tensor& x, std::span<const std::size_t> labels,
                    std::size_t num_classes);

  std::vector<std::size_t> predict(const Tensor& x_normalized) override;
  std::string name() const override { return "GPC"; }

  /// Posterior-mean scores per class (rows align with x).
  linalg::Matrix decision_scores(const Tensor& x_normalized) const;

  double length_scale() const { return length_scale_; }

 private:
  double kernel(const double* a, const double* b, std::size_t n) const;

  GpcConfig cfg_;
  double length_scale_ = 1.0;
  std::size_t num_classes_ = 0;
  std::size_t num_features_ = 0;
  linalg::Matrix train_x_;  // (N x A) double copy
  linalg::Matrix alpha_;    // (N x C) posterior weights
};

}  // namespace cal::baselines
