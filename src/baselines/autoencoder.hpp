// Denoising and stacked autoencoders.
//
// Substrates for SANGRIA [19] (stacked autoencoder feeding a
// gradient-boosted-tree classifier) and WiDeep [14] (denoising autoencoder
// feeding a Gaussian-process classifier).
#pragma once

#include <memory>

#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "nn/trainer.hpp"

namespace cal::baselines {

/// One denoising autoencoder layer: corrupt -> encode -> decode.
struct DaeConfig {
  std::size_t hidden = 64;
  /// Fraction of inputs zeroed (masking corruption) during training.
  float corruption = 0.2F;
  /// Additive Gaussian corruption sigma.
  float noise_sigma = 0.1F;
  nn::TrainConfig train;
  std::uint64_t seed = 31;
};

/// A single denoising autoencoder with a ReLU encoder and linear decoder.
class DenoisingAutoencoder {
 public:
  DenoisingAutoencoder(std::size_t input_dim, DaeConfig cfg);

  /// Train to reconstruct clean inputs from corrupted copies.
  nn::TrainHistory fit(const Tensor& x_clean);

  /// Encode a batch into the hidden representation (eval mode).
  Tensor encode(const Tensor& x) const;

  std::size_t hidden_dim() const { return cfg_.hidden; }
  std::size_t input_dim() const { return input_dim_; }

 private:
  /// Full reconstruction module used during training.
  class AeModule;

  std::size_t input_dim_;
  DaeConfig cfg_;
  std::shared_ptr<AeModule> net_;
};

/// Layer-wise-trained stack of denoising autoencoders (SANGRIA front end).
class StackedAutoencoder {
 public:
  /// hidden_dims: e.g. {128, 64}; each layer trained greedily on the
  /// previous layer's codes.
  StackedAutoencoder(std::size_t input_dim,
                     std::vector<std::size_t> hidden_dims, DaeConfig cfg);

  void fit(const Tensor& x_clean);
  Tensor encode(const Tensor& x) const;

  std::size_t code_dim() const;

 private:
  std::vector<std::unique_ptr<DenoisingAutoencoder>> layers_;
  bool fitted_ = false;
};

}  // namespace cal::baselines
