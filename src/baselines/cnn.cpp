#include "baselines/cnn.hpp"

#include <algorithm>

#include "autograd/ops.hpp"
#include "common/ensure.hpp"
#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/linear.hpp"

namespace cal::baselines {

Cnn::Cnn(CnnConfig cfg) : cfg_(cfg) {}

void Cnn::fit(const data::FingerprintDataset& train) {
  CAL_ENSURE(train.num_samples() >= 2, "CNN fit needs >= 2 samples");
  const std::size_t num_aps = train.num_aps();
  const std::size_t kernel = std::min(cfg_.kernel_size, num_aps);

  Rng rng(cfg_.seed);
  net_ = std::make_unique<nn::Sequential>();
  auto conv = std::make_unique<nn::Conv1d>(num_aps, kernel, cfg_.filters,
                                           cfg_.stride, rng, "conv1");
  const std::size_t conv_out = conv->output_features();
  net_->add(std::move(conv));
  net_->emplace<nn::ReLU>();
  net_->emplace<nn::Linear>(conv_out, cfg_.hidden, rng, "fc1");
  net_->emplace<nn::ReLU>();
  net_->emplace<nn::Linear>(cfg_.hidden, train.num_rps(), rng, "head");
  grads_ = std::make_unique<attacks::ModuleGradientSource>(*net_);

  nn::fit_classifier(*net_, train.normalized(), train.labels(), cfg_.train);
}

std::vector<std::size_t> Cnn::predict(const Tensor& x) {
  CAL_ENSURE(net_ != nullptr, "CNN predict before fit");
  return autograd::argmax_rows(nn::predict_tensor(*net_, x));
}

attacks::GradientSource* Cnn::gradient_source() {
  return grads_ ? grads_.get() : nullptr;
}

}  // namespace cal::baselines
