#include "baselines/dnn.hpp"

#include "autograd/ops.hpp"
#include "common/ensure.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/regularizers.hpp"

namespace cal::baselines {

Dnn::Dnn(DnnConfig cfg) : cfg_(cfg) {}

void Dnn::build(std::size_t num_aps, std::size_t num_classes) {
  Rng rng(cfg_.seed);
  net_ = std::make_unique<nn::Sequential>();
  net_->emplace<nn::Linear>(num_aps, cfg_.hidden1, rng, "fc1");
  net_->emplace<nn::ReLU>();
  net_->emplace<nn::Dropout>(cfg_.dropout, rng.fork(1));
  net_->emplace<nn::Linear>(cfg_.hidden1, cfg_.hidden2, rng, "fc2");
  net_->emplace<nn::ReLU>();
  net_->emplace<nn::Linear>(cfg_.hidden2, num_classes, rng, "head");
  grads_ = std::make_unique<attacks::ModuleGradientSource>(*net_);
}

void Dnn::fit(const data::FingerprintDataset& train) {
  CAL_ENSURE(train.num_samples() >= 2, "DNN fit needs >= 2 samples");
  build(train.num_aps(), train.num_rps());
  history_ = nn::fit_classifier(*net_, train.normalized(), train.labels(),
                                cfg_.train);
}

std::vector<std::size_t> Dnn::predict(const Tensor& x) {
  CAL_ENSURE(net_ != nullptr, "DNN predict before fit");
  return autograd::argmax_rows(nn::predict_tensor(*net_, x));
}

attacks::GradientSource* Dnn::gradient_source() {
  return grads_ ? grads_.get() : nullptr;
}

nn::Module& Dnn::model() {
  CAL_ENSURE(net_ != nullptr, "DNN model() before fit");
  return *net_;
}

}  // namespace cal::baselines
