// ANVIL baseline [17]: multi-head attention neural network.
//
// ANVIL pairs a multi-headed attention encoder with an MLP head to gain
// device-heterogeneity resilience. Here each head attends from the
// fingerprint embedding over learned prototype tokens (inducing-point
// attention, see nn/prototype_attention.hpp), which preserves the
// architecture's character while staying efficiently batchable.
#pragma once

#include <memory>

#include "baselines/localizer.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"

namespace cal::baselines {

struct AnvilConfig {
  std::size_t num_heads = 4;
  std::size_t head_dim = 32;
  std::size_t num_prototypes = 16;
  std::size_t hidden = 128;
  /// The attention block needs a hotter learning rate than a plain MLP to
  /// escape its initial near-uniform prototype softmax.
  nn::TrainConfig train{.learning_rate = 3e-3F};
  std::uint64_t seed = 29;
};

class Anvil : public ILocalizer {
 public:
  explicit Anvil(AnvilConfig cfg = AnvilConfig{});

  void fit(const data::FingerprintDataset& train) override;
  std::vector<std::size_t> predict(const Tensor& x_normalized) override;
  std::string name() const override { return "ANVIL"; }
  attacks::GradientSource* gradient_source() override;

 private:
  /// MHA block with a residual concat around it (as in the ANVIL encoder),
  /// feeding an MLP classification head.
  class AnvilNet;

  AnvilConfig cfg_;
  std::shared_ptr<AnvilNet> net_;
  std::unique_ptr<attacks::ModuleGradientSource> grads_;
};

}  // namespace cal::baselines
