// Gradient-boosted decision trees (SANGRIA's classifier stage [19]).
//
// Multiclass softmax boosting with second-order (Newton) leaf weights and
// XGBoost-style split gain: at each round, per class, a regression tree is
// fitted to the gradient/hessian of the softmax cross-entropy. Exact
// greedy splits — the trees operate on the autoencoder's low-dimensional
// code, so exhaustive search is cheap.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace cal::baselines {

struct GbdtConfig {
  std::size_t rounds = 40;          ///< boosting iterations
  std::size_t max_depth = 3;
  double learning_rate = 0.2;
  std::size_t min_samples_leaf = 4;
  double lambda = 1.0;              ///< L2 leaf regulariser
  double subsample = 0.8;           ///< per-round row sampling
  std::uint64_t seed = 37;
};

/// One fitted regression tree (flat node array).
class RegressionTree {
 public:
  /// Fit to (gradient, hessian) statistics over the rows in `rows`.
  void fit(const Tensor& x, std::span<const double> grad,
           std::span<const double> hess, std::span<const std::size_t> rows,
           const GbdtConfig& cfg);

  /// Predicted leaf weight for one feature row.
  double predict_one(const float* row) const;

  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  struct TreeNode {
    int feature = -1;       ///< -1 for leaves
    float threshold = 0.0F;
    double value = 0.0;     ///< leaf weight
    int left = -1;
    int right = -1;
  };

  int build(const Tensor& x, std::span<const double> grad,
            std::span<const double> hess, std::vector<std::size_t>& rows,
            std::size_t depth, const GbdtConfig& cfg);

  std::vector<TreeNode> nodes_;
};

/// Multiclass gradient-boosted classifier.
class GbdtClassifier {
 public:
  explicit GbdtClassifier(GbdtConfig cfg = GbdtConfig{});

  void fit(const Tensor& x, std::span<const std::size_t> labels,
           std::size_t num_classes);

  /// Raw additive scores (N x C).
  Tensor decision_scores(const Tensor& x) const;

  std::vector<std::size_t> predict(const Tensor& x) const;

  std::size_t num_classes() const { return num_classes_; }
  std::size_t rounds_fitted() const { return trees_.size(); }

 private:
  GbdtConfig cfg_;
  std::size_t num_classes_ = 0;
  std::size_t num_features_ = 0;
  /// trees_[round][class]
  std::vector<std::vector<RegressionTree>> trees_;
};

}  // namespace cal::baselines
