#include "baselines/gpc.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace cal::baselines {

Gpc::Gpc(GpcConfig cfg) : cfg_(cfg) {
  CAL_ENSURE(cfg_.signal_variance > 0.0, "signal variance must be positive");
  CAL_ENSURE(cfg_.noise_variance > 0.0, "noise variance must be positive");
  CAL_ENSURE(cfg_.max_train_samples >= 2, "GPC needs >= 2 training samples");
}

double Gpc::kernel(const double* a, const double* b, std::size_t n) const {
  double sq = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double d = a[j] - b[j];
    sq += d * d;
  }
  return cfg_.signal_variance *
         std::exp(-sq / (2.0 * length_scale_ * length_scale_));
}

void Gpc::fit(const data::FingerprintDataset& train) {
  CAL_ENSURE(train.num_samples() >= 2, "GPC fit needs >= 2 samples");
  fit_features(train.normalized(), train.labels(), train.num_rps());
}

void Gpc::fit_features(const Tensor& x, std::span<const std::size_t> labels,
                       std::size_t num_classes) {
  CAL_ENSURE(x.rank() == 2 && x.rows() >= 2, "GPC fit needs >= 2 samples");
  CAL_ENSURE(labels.size() == x.rows(), "GPC labels/rows mismatch");
  num_classes_ = num_classes;
  num_features_ = x.cols();

  // Optional subsampling to bound the O(N^3) factorisation.
  std::vector<std::size_t> keep(x.rows());
  for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = i;
  if (x.rows() > cfg_.max_train_samples) {
    Rng rng(cfg_.seed);
    keep = rng.sample_without_replacement(x.rows(), cfg_.max_train_samples);
    std::sort(keep.begin(), keep.end());
  }
  const std::size_t n = keep.size();

  train_x_ = linalg::Matrix(n, num_features_);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = x.data() + keep[i] * num_features_;
    for (std::size_t j = 0; j < num_features_; ++j)
      train_x_(i, j) = static_cast<double>(row[j]);
  }

  // Median-pairwise-distance heuristic for the length scale.
  if (cfg_.length_scale > 0.0) {
    length_scale_ = cfg_.length_scale;
  } else {
    Rng rng(cfg_.seed ^ 0x5CA1EULL);
    std::vector<double> dists;
    const std::size_t pairs = std::min<std::size_t>(2000, n * (n - 1) / 2);
    for (std::size_t p = 0; p < pairs; ++p) {
      const std::size_t a = rng.uniform_index(n);
      std::size_t b = rng.uniform_index(n);
      if (a == b) b = (b + 1) % n;
      double sq = 0.0;
      for (std::size_t j = 0; j < num_features_; ++j) {
        const double d = train_x_(a, j) - train_x_(b, j);
        sq += d * d;
      }
      dists.push_back(std::sqrt(sq));
    }
    length_scale_ = std::max(median(dists), 1e-3);
  }

  // K + σ_n² I and the posterior weights α = (K+σ_n²I)⁻¹ Y.
  linalg::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(&train_x_(i, 0), &train_x_(j, 0),
                              num_features_);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  k.add_diagonal(cfg_.noise_variance);

  linalg::Matrix y(n, num_classes_);
  for (std::size_t i = 0; i < n; ++i) y(i, labels[keep[i]]) = 1.0;

  double used_jitter = 0.0;
  const auto chol =
      linalg::cholesky_with_jitter(k, 0.0, 1e-3, &used_jitter);
  alpha_ = chol.solve(y);
}

linalg::Matrix Gpc::decision_scores(const Tensor& x) const {
  CAL_ENSURE(alpha_.rows() > 0, "GPC predict before fit");
  CAL_ENSURE(x.rank() == 2 && x.cols() == num_features_,
             "GPC feature mismatch");
  const std::size_t n = train_x_.rows();
  linalg::Matrix scores(x.rows(), num_classes_);
  std::vector<double> q(num_features_);
  std::vector<double> kstar(n);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* row = x.data() + i * num_features_;
    for (std::size_t j = 0; j < num_features_; ++j)
      q[j] = static_cast<double>(row[j]);
    for (std::size_t t = 0; t < n; ++t)
      kstar[t] = kernel(q.data(), train_x_.row(t).data(), num_features_);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      double acc = 0.0;
      for (std::size_t t = 0; t < n; ++t) acc += kstar[t] * alpha_(t, c);
      scores(i, c) = acc;
    }
  }
  return scores;
}

std::vector<std::size_t> Gpc::predict(const Tensor& x) {
  const auto scores = decision_scores(x);
  std::vector<std::size_t> out(scores.rows());
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < num_classes_; ++c)
      if (scores(i, c) > scores(i, best)) best = c;
    out[i] = best;
  }
  return out;
}

}  // namespace cal::baselines
