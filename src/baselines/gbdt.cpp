#include "baselines/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "autograd/ops.hpp"
#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace cal::baselines {
namespace {

/// Newton leaf weight: -G / (H + lambda).
double leaf_weight(double g, double h, double lambda) {
  return -g / (h + lambda);
}

/// Split gain (constant terms dropped).
double split_gain(double gl, double hl, double gr, double hr, double lambda) {
  const double g = gl + gr;
  const double h = hl + hr;
  return gl * gl / (hl + lambda) + gr * gr / (hr + lambda) -
         g * g / (h + lambda);
}

/// Rows pre-sorted by every feature (computed once per fit; trees then
/// filter the global order by node membership instead of re-sorting).
struct SortedFeatures {
  std::vector<std::vector<std::uint32_t>> order;  // [feature][rank] -> row
};

}  // namespace

// --------------------------------------------------------------------------
// RegressionTree
// --------------------------------------------------------------------------

namespace {

struct BuildContext {
  const Tensor* x = nullptr;
  std::span<const double> grad;
  std::span<const double> hess;
  const SortedFeatures* sorted = nullptr;
  std::vector<char>* member = nullptr;  // per-row membership of current node
  const GbdtConfig* cfg = nullptr;
  std::vector<std::uint32_t> scratch;   // member rows in feature order
};

}  // namespace

int RegressionTree::build(const Tensor& x, std::span<const double> grad,
                          std::span<const double> hess,
                          std::vector<std::size_t>& rows, std::size_t depth,
                          const GbdtConfig& cfg) {
  // Exact greedy search with per-node feature sorts. Training sets here
  // are small (5 fingerprints per RP), so this stays well under a second
  // per classifier; a histogram/pre-sort scheme would only pay off at
  // orders of magnitude more rows.
  double g_sum = 0.0;
  double h_sum = 0.0;
  for (std::size_t r : rows) {
    g_sum += grad[r];
    h_sum += hess[r];
  }
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back({});
  nodes_[static_cast<std::size_t>(node_id)].value =
      leaf_weight(g_sum, h_sum, cfg.lambda);

  if (depth >= cfg.max_depth || rows.size() < 2 * cfg.min_samples_leaf)
    return node_id;

  const std::size_t num_features = x.cols();
  double best_gain = 1e-9;
  int best_feature = -1;
  float best_threshold = 0.0F;

  std::vector<std::size_t> order(rows);
  for (std::size_t f = 0; f < num_features; ++f) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return x.data()[a * num_features + f] < x.data()[b * num_features + f];
    });
    double gl = 0.0;
    double hl = 0.0;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      gl += grad[order[i]];
      hl += hess[order[i]];
      const float cur = x.data()[order[i] * num_features + f];
      const float nxt = x.data()[order[i + 1] * num_features + f];
      if (cur == nxt) continue;
      const std::size_t n_left = i + 1;
      const std::size_t n_right = order.size() - n_left;
      if (n_left < cfg.min_samples_leaf || n_right < cfg.min_samples_leaf)
        continue;
      const double g = split_gain(gl, hl, g_sum - gl, h_sum - hl, cfg.lambda);
      if (g > best_gain) {
        best_gain = g;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5F * (cur + nxt);
      }
    }
  }
  if (best_feature < 0) return node_id;

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (std::size_t r : rows) {
    if (x.data()[r * num_features + static_cast<std::size_t>(best_feature)] <=
        best_threshold)
      left_rows.push_back(r);
    else
      right_rows.push_back(r);
  }
  CAL_INVARIANT(!left_rows.empty() && !right_rows.empty(),
                "degenerate GBDT split");

  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const int left = build(x, grad, hess, left_rows, depth + 1, cfg);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  const int right = build(x, grad, hess, right_rows, depth + 1, cfg);
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

void RegressionTree::fit(const Tensor& x, std::span<const double> grad,
                         std::span<const double> hess,
                         std::span<const std::size_t> rows,
                         const GbdtConfig& cfg) {
  CAL_ENSURE(!rows.empty(), "tree fit with no rows");
  CAL_ENSURE(x.rank() == 2, "tree fit expects rank-2 features");
  CAL_ENSURE(grad.size() == x.rows() && hess.size() == x.rows(),
             "grad/hess must cover every row");
  nodes_.clear();
  std::vector<std::size_t> mutable_rows(rows.begin(), rows.end());
  build(x, grad, hess, mutable_rows, 0, cfg);
}

double RegressionTree::predict_one(const float* row) const {
  CAL_ENSURE(!nodes_.empty(), "predict on unfitted tree");
  int node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const auto& n = nodes_[static_cast<std::size_t>(node)];
    node = (row[n.feature] <= n.threshold) ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

// --------------------------------------------------------------------------
// GbdtClassifier
// --------------------------------------------------------------------------

GbdtClassifier::GbdtClassifier(GbdtConfig cfg) : cfg_(cfg) {
  CAL_ENSURE(cfg_.rounds >= 1, "GBDT needs >= 1 round");
  CAL_ENSURE(cfg_.learning_rate > 0.0, "GBDT learning rate must be positive");
  CAL_ENSURE(cfg_.subsample > 0.0 && cfg_.subsample <= 1.0,
             "subsample out of (0,1]");
}

void GbdtClassifier::fit(const Tensor& x, std::span<const std::size_t> labels,
                         std::size_t num_classes) {
  CAL_ENSURE(x.rank() == 2, "GBDT fit expects rank-2 features");
  CAL_ENSURE(labels.size() == x.rows(), "labels/rows mismatch");
  CAL_ENSURE(num_classes >= 2, "GBDT needs >= 2 classes");
  num_classes_ = num_classes;
  num_features_ = x.cols();
  trees_.clear();

  const std::size_t n = x.rows();
  std::vector<double> f(n * num_classes_, 0.0);
  std::vector<double> probs(n * num_classes_, 0.0);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  Rng rng(cfg_.seed);

  for (std::size_t round = 0; round < cfg_.rounds; ++round) {
    // Softmax over the current scores, once per round for all classes.
    for (std::size_t i = 0; i < n; ++i) {
      const double* fi = &f[i * num_classes_];
      double* pi = &probs[i * num_classes_];
      double mx = fi[0];
      for (std::size_t k = 1; k < num_classes_; ++k)
        mx = std::max(mx, fi[k]);
      double denom = 0.0;
      for (std::size_t k = 0; k < num_classes_; ++k) {
        pi[k] = std::exp(fi[k] - mx);
        denom += pi[k];
      }
      const double inv = 1.0 / denom;
      for (std::size_t k = 0; k < num_classes_; ++k) pi[k] *= inv;
    }

    std::vector<std::size_t> rows;
    if (cfg_.subsample < 1.0) {
      const auto keep = static_cast<std::size_t>(
          std::max(2.0, std::floor(static_cast<double>(n) * cfg_.subsample)));
      rows = rng.sample_without_replacement(n, keep);
      std::sort(rows.begin(), rows.end());
    } else {
      rows.resize(n);
      for (std::size_t i = 0; i < n; ++i) rows[i] = i;
    }

    trees_.emplace_back();
    auto& round_trees = trees_.back();
    round_trees.resize(num_classes_);

    for (std::size_t c = 0; c < num_classes_; ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        const double p = probs[i * num_classes_ + c];
        const double y = (labels[i] == c) ? 1.0 : 0.0;
        grad[i] = p - y;
        hess[i] = std::max(p * (1.0 - p), 1e-6);
      }
      round_trees[c].fit(x, grad, hess, rows, cfg_);
      for (std::size_t i = 0; i < n; ++i)
        f[i * num_classes_ + c] +=
            cfg_.learning_rate *
            round_trees[c].predict_one(x.data() + i * num_features_);
    }
  }
}

Tensor GbdtClassifier::decision_scores(const Tensor& x) const {
  CAL_ENSURE(!trees_.empty(), "GBDT predict before fit");
  CAL_ENSURE(x.rank() == 2 && x.cols() == num_features_,
             "GBDT feature mismatch");
  Tensor scores({x.rows(), num_classes_});
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* row = x.data() + i * num_features_;
    float* out = scores.data() + i * num_classes_;
    for (const auto& round_trees : trees_)
      for (std::size_t c = 0; c < num_classes_; ++c)
        out[c] += static_cast<float>(cfg_.learning_rate *
                                     round_trees[c].predict_one(row));
  }
  return scores;
}

std::vector<std::size_t> GbdtClassifier::predict(const Tensor& x) const {
  return autograd::argmax_rows(decision_scores(x));
}

}  // namespace cal::baselines
