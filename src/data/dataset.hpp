// Fingerprint dataset container shared by the whole pipeline.
//
// A fingerprint is one RSS vector (dBm per visible AP, NOT_DETECTED for
// unseen APs) labelled with the reference point (RP) it was captured at.
// RPs are classes for the classifiers; their metric coordinates turn class
// confusion into localisation error in metres (the paper's reporting unit).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace cal::data {

/// RSS floor reported when an AP is not detected (dBm).
inline constexpr float kNotDetectedDbm = -100.0F;

/// Strongest representable RSS (dBm).
inline constexpr float kMaxRssDbm = 0.0F;

/// Ground-truth metric position of one reference point.
struct RpPosition {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance between two RP positions in metres.
double distance_m(const RpPosition& a, const RpPosition& b);

/// Map raw dBm in [-100, 0] to the normalised [0, 1] feature scale used by
/// every model and by the attack budget ϵ (the paper's ϵ ∈ [0.1, 0.5] is on
/// this scale: ϵ = 0.1 ⇔ 10 dB of perturbation headroom).
float normalize_rss(float dbm);

/// Inverse of normalize_rss.
float denormalize_rss(float unit);

/// Labelled RSS fingerprint collection for one building (+ device).
class FingerprintDataset {
 public:
  FingerprintDataset() = default;

  /// Create an empty dataset over `num_aps` APs and the given RP map.
  FingerprintDataset(std::size_t num_aps, std::vector<RpPosition> rps);

  std::size_t num_aps() const { return num_aps_; }
  std::size_t num_rps() const { return rps_.size(); }
  std::size_t num_samples() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  /// Append one fingerprint (raw dBm values, length == num_aps).
  void add_sample(std::span<const float> rss_dbm, std::size_t rp_label);

  /// Raw dBm feature matrix (num_samples x num_aps).
  const Tensor& raw() const;

  /// Normalised [0,1] feature matrix (num_samples x num_aps).
  Tensor normalized() const;

  /// RP labels per sample.
  std::span<const std::size_t> labels() const { return labels_; }

  /// RP index -> metric position.
  const std::vector<RpPosition>& rp_positions() const { return rps_; }

  /// Metric position of sample i's true RP.
  const RpPosition& position_of_sample(std::size_t i) const;

  /// In-place deterministic shuffle of samples.
  void shuffle(Rng& rng);

  /// Merge another dataset collected over the same AP set and RP map.
  void merge(const FingerprintDataset& other);

  /// Subset copy by sample indices.
  FingerprintDataset subset(std::span<const std::size_t> idx) const;

  /// Per-RP mean fingerprint (one row per RP, raw dBm). RPs with no
  /// samples are rejected. Used to build the CALLOC anchor set.
  Tensor mean_fingerprint_per_rp() const;

  /// Persist to CSV (header: rp,x,y,ap0..apN) and restore.
  void save_csv(const std::string& path) const;
  static FingerprintDataset load_csv(const std::string& path);

 private:
  std::size_t num_aps_ = 0;
  std::vector<RpPosition> rps_;
  std::vector<float> flat_;           // row-major raw dBm
  std::vector<std::size_t> labels_;
  mutable Tensor cached_raw_;         // rebuilt on demand after mutation
  mutable bool cache_valid_ = false;
};

}  // namespace cal::data
