#include "data/dataset.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>
#include <type_traits>

#include "common/csv.hpp"
#include "common/ensure.hpp"

namespace cal::data {
namespace {

// Checked cell parsers for load_csv: a dataset CSV is untrusted input
// (hand-edited surveys, exports from other tools), so a malformed cell
// must surface as a clear PreconditionError instead of the silent
// garbage/UB of unvalidated std::stof-style parsing. Each parser requires
// the whole cell to be consumed ("1.2.3" and "12abc" are rejected, not
// prefix-parsed).
template <typename T>
T parse_numeric_cell(const std::string& cell, const char* what,
                     const std::string& path) {
  T value{};
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  bool valid = ec == std::errc{} && ptr == end && !cell.empty();
  if constexpr (std::is_floating_point_v<T>) {
    // from_chars happily consumes "nan"/"inf"; a non-finite RSS or
    // coordinate is still silent garbage downstream, so reject it here.
    valid = valid && std::isfinite(value);
  }
  CAL_ENSURE(valid, "malformed dataset CSV " << path << ": " << what
                                             << " cell '" << cell
                                             << "' is not a finite number");
  return value;
}

}  // namespace

double distance_m(const RpPosition& a, const RpPosition& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

float normalize_rss(float dbm) {
  const float clamped = std::clamp(dbm, kNotDetectedDbm, kMaxRssDbm);
  return (clamped - kNotDetectedDbm) / (kMaxRssDbm - kNotDetectedDbm);
}

float denormalize_rss(float unit) {
  const float clamped = std::clamp(unit, 0.0F, 1.0F);
  return kNotDetectedDbm + clamped * (kMaxRssDbm - kNotDetectedDbm);
}

FingerprintDataset::FingerprintDataset(std::size_t num_aps,
                                       std::vector<RpPosition> rps)
    : num_aps_(num_aps), rps_(std::move(rps)) {
  CAL_ENSURE(num_aps_ > 0, "dataset needs at least one AP");
  CAL_ENSURE(!rps_.empty(), "dataset needs at least one RP");
}

void FingerprintDataset::add_sample(std::span<const float> rss_dbm,
                                    std::size_t rp_label) {
  CAL_ENSURE(rss_dbm.size() == num_aps_,
             "fingerprint has " << rss_dbm.size() << " APs, dataset expects "
                                << num_aps_);
  CAL_ENSURE(rp_label < rps_.size(),
             "RP label " << rp_label << " out of " << rps_.size());
  flat_.insert(flat_.end(), rss_dbm.begin(), rss_dbm.end());
  labels_.push_back(rp_label);
  cache_valid_ = false;
}

const Tensor& FingerprintDataset::raw() const {
  CAL_ENSURE(!labels_.empty(), "raw() on empty dataset");
  if (!cache_valid_) {
    cached_raw_ = Tensor({labels_.size(), num_aps_});
    std::copy(flat_.begin(), flat_.end(), cached_raw_.data());
    cache_valid_ = true;
  }
  return cached_raw_;
}

Tensor FingerprintDataset::normalized() const {
  Tensor out = raw();
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = normalize_rss(out[i]);
  return out;
}

const RpPosition& FingerprintDataset::position_of_sample(std::size_t i) const {
  CAL_ENSURE(i < labels_.size(), "sample " << i << " out of "
                                           << labels_.size());
  return rps_[labels_[i]];
}

void FingerprintDataset::shuffle(Rng& rng) {
  const auto perm = rng.permutation(labels_.size());
  std::vector<float> new_flat(flat_.size());
  std::vector<std::size_t> new_labels(labels_.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const std::size_t src = perm[i];
    std::copy(flat_.begin() + static_cast<long>(src * num_aps_),
              flat_.begin() + static_cast<long>((src + 1) * num_aps_),
              new_flat.begin() + static_cast<long>(i * num_aps_));
    new_labels[i] = labels_[src];
  }
  flat_ = std::move(new_flat);
  labels_ = std::move(new_labels);
  cache_valid_ = false;
}

void FingerprintDataset::merge(const FingerprintDataset& other) {
  CAL_ENSURE(other.num_aps_ == num_aps_,
             "merge AP-count mismatch: " << other.num_aps_ << " vs "
                                         << num_aps_);
  CAL_ENSURE(other.rps_.size() == rps_.size(), "merge RP-map mismatch");
  flat_.insert(flat_.end(), other.flat_.begin(), other.flat_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
  cache_valid_ = false;
}

FingerprintDataset FingerprintDataset::subset(
    std::span<const std::size_t> idx) const {
  FingerprintDataset out(num_aps_, rps_);
  for (std::size_t i : idx) {
    CAL_ENSURE(i < labels_.size(), "subset index " << i << " out of "
                                                   << labels_.size());
    out.add_sample({flat_.data() + i * num_aps_, num_aps_}, labels_[i]);
  }
  return out;
}

Tensor FingerprintDataset::mean_fingerprint_per_rp() const {
  CAL_ENSURE(!labels_.empty(), "mean fingerprints of empty dataset");
  Tensor sums({rps_.size(), num_aps_});
  std::vector<std::size_t> counts(rps_.size(), 0);
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    const float* row = flat_.data() + i * num_aps_;
    float* dst = sums.data() + labels_[i] * num_aps_;
    for (std::size_t j = 0; j < num_aps_; ++j) dst[j] += row[j];
    ++counts[labels_[i]];
  }
  for (std::size_t r = 0; r < rps_.size(); ++r) {
    CAL_ENSURE(counts[r] > 0,
               "RP " << r << " has no samples; cannot build anchors");
    float* dst = sums.data() + r * num_aps_;
    const float inv = 1.0F / static_cast<float>(counts[r]);
    for (std::size_t j = 0; j < num_aps_; ++j) dst[j] *= inv;
  }
  return sums;
}

void FingerprintDataset::save_csv(const std::string& path) const {
  CsvDocument doc;
  doc.header = {"rp", "x", "y"};
  for (std::size_t j = 0; j < num_aps_; ++j)
    doc.header.push_back("ap" + std::to_string(j));
  // First num_rps rows carry the RP map (with label sentinel "#rp").
  for (std::size_t r = 0; r < rps_.size(); ++r) {
    CsvRow row = {"#rp" + std::to_string(r), std::to_string(rps_[r].x),
                  std::to_string(rps_[r].y)};
    for (std::size_t j = 0; j < num_aps_; ++j) row.push_back("0");
    doc.rows.push_back(std::move(row));
  }
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    CsvRow row = {std::to_string(labels_[i]),
                  std::to_string(rps_[labels_[i]].x),
                  std::to_string(rps_[labels_[i]].y)};
    const float* src = flat_.data() + i * num_aps_;
    for (std::size_t j = 0; j < num_aps_; ++j) {
      std::ostringstream os;
      os << src[j];
      row.push_back(os.str());
    }
    doc.rows.push_back(std::move(row));
  }
  write_csv(path, doc);
}

FingerprintDataset FingerprintDataset::load_csv(const std::string& path) {
  const CsvDocument doc = read_csv(path, /*has_header=*/true);
  CAL_ENSURE(doc.header.size() > 3, "malformed dataset CSV: " << path);
  const std::size_t num_aps = doc.header.size() - 3;

  std::vector<RpPosition> rps;
  std::vector<const CsvRow*> samples;
  for (const auto& row : doc.rows) {
    CAL_ENSURE(row.size() == doc.header.size(),
               "malformed dataset CSV row in " << path);
    if (row[0].rfind("#rp", 0) == 0) {
      rps.push_back({parse_numeric_cell<double>(row[1], "RP x", path),
                     parse_numeric_cell<double>(row[2], "RP y", path)});
    } else {
      samples.push_back(&row);
    }
  }
  CAL_ENSURE(!rps.empty(), "dataset CSV has no RP map: " << path);

  FingerprintDataset out(num_aps, std::move(rps));
  std::vector<float> rss(num_aps);
  for (const CsvRow* row : samples) {
    const auto label =
        parse_numeric_cell<std::size_t>((*row)[0], "RP label", path);
    CAL_ENSURE(label < out.num_rps(),
               "malformed dataset CSV " << path << ": RP label " << label
                                        << " out of " << out.num_rps());
    for (std::size_t j = 0; j < num_aps; ++j)
      rss[j] = parse_numeric_cell<float>((*row)[3 + j], "RSS", path);
    out.add_sample(rss, label);
  }
  return out;
}

}  // namespace cal::data
