// ServeEngine: hot-reloadable, quota-governed serving on a shared pool.
//
//   request {tenant key, fingerprint}
//        │ submit()  — never blocks; returns a typed Admission
//        ▼
//   DeploymentSnapshot::route ── exact / fallback ──▶ tenant
//        │                            └─ miss ──▶ Rejected (ready future)
//        ▼
//   token bucket ──▶ OverQuota │ bounded sub-queue ──▶ QueueFull
//        │ Accepted (admission timestamp taken here, post-quota)
//        ▼
//   per-tenant sub-queue ◀── shared worker pool (pool_size threads,
//                             independent of tenant count) claims
//                             micro-batches round-robin across tenants:
//                             1. checkout a replica slot (per-tenant
//                                concurrency = its slot count)
//                             2. screen → LRU probe → ONE batched
//                                predict() → drift check
//                             3. fulfil futures, release the slot
//
// This replaces the PR 4 thread-per-lane model: N tenants × K workers
// threads became ONE pool of pool_size threads for the whole fleet, with
// two isolation mechanisms the shared pool needs — bounded per-tenant
// sub-queues (a burst cannot occupy more than its queue) and token-bucket
// admission quotas (a burst beyond rate_per_s is shed at the door with
// Admission::OverQuota, before it costs the pool anything). Round-robin
// claiming then bounds how long a quiet tenant's batch waits behind a
// saturated one: at most one in-flight batch per pool worker.
//
// Hot reload (RCU over DeploymentSnapshot): deploy() swaps the snapshot
// pointer mid-traffic. In-flight batches finish on the replicas they
// checked out from the old snapshot (kept alive by their shared_ptr);
// queued and new requests run on the new one. Per-tenant mutable state —
// cache, drift baseline, stats, quota bucket, sub-queue — persists across
// deploys; only tenants whose registry spec VERSION changed get their LRU
// flushed and drift baseline reset (so re-publishing an identical
// catalogue is a no-op flush-wise, and reloading venue T never cold-
// starts venue U). Predictions stay bit-identical to sequential
// per-tenant predict() across a reload of unchanged weights, because
// replicas are bit-identical and the forward math is row-independent.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/hot_path_annotations.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/lru_cache.hpp"
#include "serve/queue.hpp"
#include "serve/snapshot.hpp"

namespace cal::serve {

/// Typed outcome of ServeEngine::submit — the engine never blocks the
/// caller; every denial is explicit.
enum class Admission {
  Accepted,    ///< enqueued; the future resolves when a worker serves it
  OverQuota,   ///< tenant's token bucket is empty (ready future)
  QueueFull,   ///< tenant's bounded sub-queue is at capacity (ready future)
  Rejected,    ///< tenant resolved nowhere — routing miss (ready future)
  BreakerOpen, ///< tenant's circuit breaker is open, or every replica slot
               ///< is quarantined — fast-fail (ready future)
};

std::string to_string(Admission a);

/// Monotonic-clock token bucket (see QuotaPolicy). try_acquire takes the
/// current time explicitly so tests can drive synthetic clocks.
class TokenBucket {
 public:
  TokenBucket() = default;  ///< unlimited
  explicit TokenBucket(QuotaPolicy policy);

  bool unlimited() const CAL_EXCLUDES(mu_);

  /// Take one token if available. Refills rate_per_s per second up to
  /// the burst cap, computed lazily from the elapsed monotonic time.
  CAL_HOT_PATH
  bool try_acquire(std::chrono::steady_clock::time_point now)
      CAL_EXCLUDES(mu_);
  CAL_HOT_PATH
  bool try_acquire() { return try_acquire(std::chrono::steady_clock::now()); }

  /// Return one token (capped at the burst). The engine refunds a token
  /// when a quota-admitted request is then refused by the sub-queue —
  /// QueueFull denials must not drain the tenant's admission budget.
  void refund() CAL_EXCLUDES(mu_);

  /// Swap the policy in place (engine hot reload); the bucket restarts
  /// full so a freshly reloaded tenant is not instantly throttled.
  void reconfigure(QuotaPolicy policy) CAL_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  QuotaPolicy policy_ CAL_GUARDED_BY(mu_){};
  double tokens_ CAL_GUARDED_BY(mu_) = 0.0;
  /// Until first acquire, bucket starts full.
  bool primed_ CAL_GUARDED_BY(mu_) = false;
  std::chrono::steady_clock::time_point last_ CAL_GUARDED_BY(mu_){};
};

/// How a CircuitBreaker::on_batch call moved the breaker, so the engine
/// can trace state changes without polling snapshots.
enum class BreakerTransition : std::uint8_t {
  None = 0,  ///< no state change
  Opened,    ///< Closed -> Open (consecutive-fault threshold reached)
  Reopened,  ///< HalfOpen probe faulted -> Open again (backoff grows)
  Closed,    ///< HalfOpen probe served -> Closed (recovered)
};

/// Per-tenant circuit breaker (see BreakerPolicy): consecutive all-fault
/// batches open it, submissions then fast-fail with Admission::BreakerOpen
/// instead of queueing doomed work, and timed half-open probes with
/// exponential backoff test for recovery. Like TokenBucket, every entry
/// point takes the current time explicitly so tests drive synthetic
/// clocks; a default-constructed breaker (fault_threshold == 0) is
/// disabled and admits everything.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { Closed = 0, Open, HalfOpen };

  struct Snapshot {
    State state = State::Closed;
    std::size_t consecutive_faults = 0;  ///< current all-fault batch streak
    std::size_t opens = 0;    ///< Closed->Open + HalfOpen->Open transitions
    std::size_t closes = 0;   ///< HalfOpen->Closed recoveries
    double current_open_s = 0.0;  ///< present open/backoff interval
  };

  CircuitBreaker() = default;  ///< disabled
  explicit CircuitBreaker(BreakerPolicy policy);

  bool enabled() const CAL_EXCLUDES(mu_);

  /// Admission-side gate. Closed (or disabled): admit. Open: refuse until
  /// the current backoff interval elapses, then flip to HalfOpen and admit
  /// up to half_open_probes probe requests. HalfOpen with all probes out:
  /// refuse — unless a full backoff interval passed since the last probe
  /// left (probes can vanish: shed by deadline, dropped by a deploy), in
  /// which case one replacement probe is admitted so the breaker cannot
  /// deadlock half-open forever.
  CAL_HOT_PATH
  bool try_admit(std::chrono::steady_clock::time_point now)
      CAL_EXCLUDES(mu_);

  /// Completion-side feed: one micro-batch finished with `faulted` rows
  /// failed by the replica and `served` rows fulfilled (expired rows count
  /// as neither). Any served row proves the replica works — it resets the
  /// consecutive-fault streak, and closes a HalfOpen breaker. All-fault
  /// batches grow the streak; at fault_threshold the breaker opens. A
  /// faulted HalfOpen probe reopens with the backoff interval multiplied
  /// by backoff_factor (capped at max_open_s). Results from batches
  /// claimed before the breaker opened are ignored while Open.
  BreakerTransition on_batch(std::chrono::steady_clock::time_point now,
                             std::size_t faulted, std::size_t served)
      CAL_EXCLUDES(mu_);

  /// Swap the policy in place (engine hot reload). The breaker restarts
  /// Closed with a clean streak — a version-bump redeploy replaced the
  /// replicas, so past faults say nothing about the new ones.
  void reconfigure(BreakerPolicy policy) CAL_EXCLUDES(mu_);

  Snapshot snapshot() const CAL_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  BreakerPolicy policy_ CAL_GUARDED_BY(mu_){};
  State state_ CAL_GUARDED_BY(mu_) = State::Closed;
  std::size_t consecutive_faults_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t probes_in_flight_ CAL_GUARDED_BY(mu_) = 0;
  double current_open_s_ CAL_GUARDED_BY(mu_) = 0.0;
  std::chrono::steady_clock::time_point opened_at_ CAL_GUARDED_BY(mu_){};
  std::chrono::steady_clock::time_point last_probe_at_ CAL_GUARDED_BY(mu_){};
  std::size_t opens_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t closes_ CAL_GUARDED_BY(mu_) = 0;
};

/// When the engine's flight recorder trips (see obs/flight_recorder.hpp).
/// Every trigger is off by default: an engine without observability
/// configuration behaves exactly as before, and the tracer itself is
/// governed separately (obs::Tracer::set_enabled / CALLOC_TRACING=OFF).
struct ObsConfig {
  /// Trip when a tenant's lifetime p99 latency exceeds this (ms); 0 = off.
  double p99_breach_ms = 0.0;
  /// Completions between p99 checks per tenant — the check takes the
  /// tenant's stats mutex, so it is sampled, not per-request.
  std::size_t p99_check_every = 256;
  /// Trip when one tenant accumulates this many CONSECUTIVE queue-full
  /// denials (an admitted request resets the streak); 0 = off.
  std::size_t queue_full_burst = 0;
  /// Trip when a drift trend forces a cache flush.
  bool trip_on_drift = false;
  /// Trip when a replica slot is quarantined (every row of its batch
  /// faulted). On by default: a broken replica is exactly the anomaly a
  /// flight recorder exists for, and quarantine is rare enough that the
  /// dump rate limiter is never pressure.
  bool trip_on_quarantine = true;
  /// Trip on every deploy() — captures the cross-deploy timeline.
  bool trip_on_deploy = false;
  /// Dump size / rate limiting for the recorder itself.
  obs::FlightRecorderConfig recorder;
};

struct EngineConfig {
  /// Shared worker threads for the WHOLE fleet — the engine's OS thread
  /// count, independent of how many tenants are deployed.
  std::size_t pool_size = 2;
  /// Base seed for the per-worker Rng streams (cache-hit audits).
  std::uint64_t seed = 2026;
  /// Flight-recorder trip policy.
  ObsConfig obs;
};

/// submit() outcome: admission and routing are known synchronously; the
/// localization result arrives through the future (already fulfilled,
/// with localized == false, for anything but Accepted).
struct EngineSubmission {
  Admission admission = Admission::Rejected;
  RouteDecision decision;
  std::future<ServeResult> result;
};

/// Per-tenant entry of a MultiTenantStats snapshot.
struct TenantStats {
  TenantKey tenant;
  ServiceStats stats;
  /// The drift trend itself (window means + pinned baseline), so
  /// operators see drift building before the flush.
  DriftTrend drift;
  /// Circuit-breaker state (Closed/Open/HalfOpen, streak, open count).
  CircuitBreaker::Snapshot breaker;
  /// Replica slots retired from this tenant's live deployment.
  std::size_t quarantined_slots = 0;
};

/// Fleet snapshot: every tenant's stats, their aggregate, the route mix,
/// and the deployment epoch the engine is serving from.
struct MultiTenantStats {
  std::vector<TenantStats> per_tenant;  ///< shard (snapshot) order
  ServiceStats aggregate;
  std::size_t route_exact = 0;
  std::size_t route_fallback = 0;
  std::size_t route_rejected = 0;
  std::uint64_t snapshot_epoch = 0;  ///< epoch of the live snapshot
  std::size_t deploys = 0;           ///< deploy() calls since construction
  std::size_t reload_flushes = 0;    ///< tenants flushed by version change

  std::string str() const;
};

/// The serving engine. Construct from a published snapshot; deploy()
/// newer snapshots at any time without draining traffic.
class ServeEngine {
 public:
  ServeEngine(std::shared_ptr<const DeploymentSnapshot> snapshot,
              EngineConfig cfg);

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;
  ~ServeEngine();

  /// Route, quota-check, and enqueue one normalised fingerprint. Never
  /// blocks: the outcome is a typed Admission (plus a ready future for
  /// every denial). Throws PreconditionError on a malformed fingerprint
  /// (wrong width for the resolved tenant, non-finite values) and after
  /// shutdown().
  ///
  /// `deadline`, when set, is the latest monotonic instant the caller
  /// still wants an answer: a worker that dequeues the request past it
  /// sheds it — completing the future with ServeStatus::Expired, before
  /// the request costs a replica checkout or a batch slot. Admission is
  /// NOT deadline-checked (an already-expired deadline is still Accepted
  /// and then shed by the pool), keeping submit() clock-read-free on the
  /// no-deadline path.
  CAL_HOT_PATH
  EngineSubmission submit(
      const TenantKey& tenant, std::vector<float> fingerprint_normalized,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt);

  /// Blocking convenience wrapper for legacy-style producers (and the
  /// deprecated shims): retries OverQuota / QueueFull denials with a
  /// short poll until the request is Accepted or Rejected. BreakerOpen is
  /// NOT retried — it is returned like Rejected, because an open breaker
  /// deliberately sheds load and a polling retry would defeat it.
  /// `denials`, when given, counts the retried attempts.
  EngineSubmission submit_blocking(const TenantKey& tenant,
                                   std::vector<float> fingerprint_normalized,
                                   std::size_t* denials = nullptr);

  /// RCU snapshot swap — see the file comment. Queued requests of
  /// tenants absent from (or width-incompatible with) the new snapshot
  /// are failed immediately with localized == false.
  void deploy(std::shared_ptr<const DeploymentSnapshot> snapshot);

  /// Stop accepting requests, drain every sub-queue, join the pool.
  /// Idempotent; also run by the destructor.
  void shutdown();

  MultiTenantStats stats() const;

  /// The full metrics surface as one point-in-time registry: per-tenant
  /// admission/verdict/cache counters, queue depth and capacity, LRU hit
  /// ratio and size, replica-slot occupancy, latency histograms, drift
  /// trend gauges, routing and deployment counters, deploy epoch, GEMM
  /// pool task timing, and tracer/flight-recorder health. Encode it with
  /// MetricsRegistry::prometheus_text() or ::json().
  obs::MetricsRegistry metrics() const;

  /// The engine's anomaly capture — trips per ObsConfig; tests and
  /// operators read trips()/dumps()/last_dump().
  obs::FlightRecorder& flight_recorder() { return recorder_; }

  /// Restart every tenant's telemetry wall clock (counters untouched) —
  /// call once a freshly constructed fleet is ready to take traffic.
  void reset_telemetry_clocks();

  std::size_t pool_size() const { return cfg_.pool_size; }
  std::size_t num_tenants() const;
  std::shared_ptr<const DeploymentSnapshot> snapshot() const;

  /// Per-tenant introspection (exact deployed key, no fallback). The
  /// screen reference is valid until the next deploy().
  const FingerprintCache& tenant_cache(const TenantKey& key) const;
  const AnchorScreen& tenant_screen(const TenantKey& key) const;
  DriftTrend tenant_drift(const TenantKey& key) const;

 private:
  struct Pending {
    std::vector<float> fingerprint;
    std::promise<ServeResult> promise;
    /// Post-quota admission on the monotonic clock — latency_ms bills
    /// queueing + inference, never pre-admission stalls.
    std::chrono::steady_clock::time_point admitted_at;
    /// Shed (ServeStatus::Expired) when dequeued past this instant; the
    /// max() sentinel means no deadline.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
  };

  /// Mutable per-tenant lane state; persists across deploy() for
  /// version-unchanged tenants.
  struct TenantState {
    explicit TenantState(std::size_t queue_capacity) : q(queue_capacity) {}

    TenantKey key;
    /// tenant_hash(key), cached at publish: trace sites on the submit hot
    /// path must not re-hash three strings per request.
    std::uint64_t trace_tenant = 0;
    std::uint64_t version = 0;
    std::size_t num_aps = 0;
    ServiceConfig lane;
    /// RCU-replaced (never mutated in place) on hot reload — see Claim.
    std::shared_ptr<FingerprintCache> cache;
    std::shared_ptr<DriftMonitor> drift;
    TokenBucket bucket;
    CircuitBreaker breaker;
    StatsCollector stats;
    /// Bounded sub-queue; try_push keeps submit() non-blocking.
    BoundedQueue<Pending> q;
    /// Sticky flag: set the first time a deadline-carrying request is
    /// queued, so the dequeue path of deadline-free tenants (the common
    /// case) never pays the drain_if scan or the clock read.
    std::atomic<bool> has_deadlines{false};
    /// Consecutive QueueFull denials (ObsConfig::queue_full_burst trip);
    /// any accepted submission resets it.
    std::atomic<std::size_t> queue_full_streak{0};
    /// Completions since the last sampled p99-breach check.
    std::atomic<std::size_t> completions_since_p99{0};
  };

  struct Claim {
    std::shared_ptr<const DeploymentSnapshot> snap;
    std::shared_ptr<TenantState> state;
    const TenantDeployment* dep = nullptr;  ///< points into `snap`
    std::size_t slot = 0;
    /// Engine-unique micro-batch id, stamped on this batch's trace events.
    std::uint64_t batch_id = 0;
    std::vector<Pending> batch;
    /// Copies taken at claim time: a concurrent hot reload swaps the
    /// tenant's cache/drift for fresh instances, while this batch keeps
    /// finishing against the ones its deployment was claimed with.
    std::shared_ptr<FingerprintCache> cache;
    std::shared_ptr<DriftMonitor> drift;
  };

  static std::shared_ptr<TenantState> make_state(const TenantDeployment& dep);
  static void configure_state(TenantState& st, const TenantDeployment& dep);
  /// Fail every queued request of `st` with the given terminal status
  /// (Dropped: tenant removed / incompatible on deploy; ShutDown: engine
  /// stopping). Returns how many were dropped. Caller holds mu_
  /// exclusively: the queue must be invisible to submit() while it is
  /// being failed.
  std::size_t drop_queue(TenantState& st, ServeStatus status)
      CAL_REQUIRES(mu_);

  // worker_loop itself parks on work_cv_ between claims and is therefore
  // deliberately NOT hot-path annotated; the claim→checkout→screen→
  // predict→complete chain it runs per wakeup is.
  void worker_loop(std::size_t worker_index) CAL_EXCLUDES(mu_, work_mu_);
  CAL_HOT_PATH
  bool try_claim(std::size_t& cursor, Claim& out)
      CAL_EXCLUDES(mu_, work_mu_);
  CAL_HOT_PATH
  void process(Claim& claim, Rng& rng);
  CAL_HOT_PATH
  void signal_work() CAL_EXCLUDES(work_mu_);

  EngineConfig cfg_;

  /// Guards snapshot_ / states_ / order_ as one consistent unit: submit
  /// and workers take it shared, deploy/shutdown take it unique.
  mutable SharedMutex mu_;
  std::shared_ptr<const DeploymentSnapshot> snapshot_ CAL_GUARDED_BY(mu_);
  std::unordered_map<TenantKey, std::shared_ptr<TenantState>, TenantKeyHash>
      states_ CAL_GUARDED_BY(mu_);
  /// Snapshot order.
  std::vector<std::shared_ptr<TenantState>> order_ CAL_GUARDED_BY(mu_);

  std::atomic<bool> accepting_{true};

  /// Pool wake-up state. work_gen_ bumps on every event a parked worker
  /// might care about (push, slot release, deploy, shutdown); waiting on
  /// a generation makes lost wakeups impossible.
  Mutex work_mu_;
  CondVar work_cv_;
  std::uint64_t work_gen_ CAL_GUARDED_BY(work_mu_) = 0;
  /// Queued-but-unclaimed requests, fleet-wide. Signed: push/claim
  /// bookkeeping from different threads may transiently interleave.
  std::int64_t pending_ CAL_GUARDED_BY(work_mu_) = 0;
  bool stopped_ CAL_GUARDED_BY(work_mu_) = false;

  std::atomic<std::size_t> route_exact_{0};
  std::atomic<std::size_t> route_fallback_{0};
  std::atomic<std::size_t> route_rejected_{0};
  std::atomic<std::size_t> deploys_{0};
  std::atomic<std::size_t> reload_flushes_{0};
  /// Micro-batch ids start at 1: trace events with batch == 0 are
  /// outside any batch (admission path, deploys).
  std::atomic<std::uint64_t> next_batch_id_{1};

  obs::FlightRecorder recorder_;

  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;
};

}  // namespace cal::serve
