#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/ensure.hpp"
#include "common/fault_inject.hpp"
#include "kernels/gemm.hpp"

namespace cal::serve {
namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

/// Tenant identity in the trace-event domain (events carry integers).
std::uint64_t tenant_hash(const TenantKey& key) {
  return static_cast<std::uint64_t>(TenantKeyHash{}(key));
}

/// Ready future for a denied submission: never localized; routing misses
/// additionally carry Verdict::Reject (the request was refused, not
/// screened), admission denials keep Verdict::Accept — the Admission enum
/// is the authoritative "why".
std::future<ServeResult> ready_denial(
    Verdict verdict, ServeStatus status = ServeStatus::Denied) {
  std::promise<ServeResult> promise;
  ServeResult res;
  res.localized = false;
  res.verdict = verdict;
  res.status = status;
  promise.set_value(res);
  return promise.get_future();
}

const char* breaker_state_name(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::Closed: return "closed";
    case CircuitBreaker::State::Open: return "open";
    case CircuitBreaker::State::HalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace

std::string to_string(Admission a) {
  switch (a) {
    case Admission::Accepted: return "accepted";
    case Admission::OverQuota: return "over-quota";
    case Admission::QueueFull: return "queue-full";
    case Admission::Rejected: return "rejected";
    case Admission::BreakerOpen: return "breaker-open";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TokenBucket
// ---------------------------------------------------------------------------

TokenBucket::TokenBucket(QuotaPolicy policy) { reconfigure(policy); }

bool TokenBucket::unlimited() const {
  MutexLock lock(mu_);
  return policy_.rate_per_s <= 0.0;
}

void TokenBucket::reconfigure(QuotaPolicy policy) {
  CAL_ENSURE(policy.rate_per_s >= 0.0 && policy.burst >= 0.0,
             "quota must be non-negative: rate " << policy.rate_per_s
                                                 << ", burst "
                                                 << policy.burst);
  MutexLock lock(mu_);
  policy_ = policy;
  if (policy_.rate_per_s > 0.0) {
    if (policy_.burst <= 0.0) policy_.burst = policy_.rate_per_s;
    // A bucket that can never hold one whole token (rate or burst below
    // 1) would deny EVERY request forever; clamp so sub-1/s rates mean
    // "one request per 1/rate seconds", not "no requests ever".
    policy_.burst = std::max(policy_.burst, 1.0);
  }
  tokens_ = policy_.burst;
  primed_ = false;
}

void TokenBucket::refund() {
  MutexLock lock(mu_);
  if (policy_.rate_per_s <= 0.0) return;
  tokens_ = std::min(policy_.burst, tokens_ + 1.0);
}

bool TokenBucket::try_acquire(std::chrono::steady_clock::time_point now) {
  MutexLock lock(mu_);
  if (policy_.rate_per_s <= 0.0) return true;
  if (!primed_) {
    // First acquire after (re)configuration: the bucket starts full.
    primed_ = true;
    tokens_ = policy_.burst;
    last_ = now;
  } else if (now > last_) {
    const double dt = std::chrono::duration<double>(now - last_).count();
    tokens_ = std::min(policy_.burst, tokens_ + dt * policy_.rate_per_s);
    last_ = now;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

CircuitBreaker::CircuitBreaker(BreakerPolicy policy) { reconfigure(policy); }

bool CircuitBreaker::enabled() const {
  MutexLock lock(mu_);
  return policy_.fault_threshold > 0;
}

void CircuitBreaker::reconfigure(BreakerPolicy policy) {
  if (policy.fault_threshold > 0) {
    CAL_ENSURE(policy.open_for_s > 0.0,
               "breaker open_for_s must be positive, got "
                   << policy.open_for_s);
    CAL_ENSURE(policy.backoff_factor >= 1.0,
               "breaker backoff_factor must be >= 1, got "
                   << policy.backoff_factor);
    CAL_ENSURE(!(policy.max_open_s < policy.open_for_s),
               "breaker max_open_s " << policy.max_open_s
                                     << " below open_for_s "
                                     << policy.open_for_s);
    CAL_ENSURE(policy.half_open_probes >= 1,
               "breaker needs half_open_probes >= 1");
  }
  MutexLock lock(mu_);
  policy_ = policy;
  state_ = State::Closed;
  consecutive_faults_ = 0;
  probes_in_flight_ = 0;
  current_open_s_ = policy_.open_for_s;
}

bool CircuitBreaker::try_admit(std::chrono::steady_clock::time_point now) {
  MutexLock lock(mu_);
  if (policy_.fault_threshold == 0 || state_ == State::Closed) return true;
  if (state_ == State::Open) {
    if (std::chrono::duration<double>(now - opened_at_).count() <
        current_open_s_)
      return false;
    state_ = State::HalfOpen;
    probes_in_flight_ = 0;
  }
  if (probes_in_flight_ < policy_.half_open_probes) {
    ++probes_in_flight_;
    last_probe_at_ = now;
    return true;
  }
  // Probes can vanish without ever reaching on_batch (shed by a deadline,
  // dropped by a deploy): after a full backoff interval of silence, admit
  // one replacement so the breaker cannot stay half-open forever.
  if (!(std::chrono::duration<double>(now - last_probe_at_).count() <
        current_open_s_)) {
    probes_in_flight_ = 1;
    last_probe_at_ = now;
    return true;
  }
  return false;
}

BreakerTransition CircuitBreaker::on_batch(
    std::chrono::steady_clock::time_point now, std::size_t faulted,
    std::size_t served) {
  if (faulted == 0 && served == 0) return BreakerTransition::None;
  MutexLock lock(mu_);
  if (policy_.fault_threshold == 0) return BreakerTransition::None;
  switch (state_) {
    case State::Closed:
      if (served > 0) {
        // Any served row proves the replicas work; a mixed batch is row
        // poison (the faulted rows got their typed result), not a broken
        // tenant.
        consecutive_faults_ = 0;
        return BreakerTransition::None;
      }
      consecutive_faults_ += faulted;
      if (consecutive_faults_ >= policy_.fault_threshold) {
        state_ = State::Open;
        opened_at_ = now;
        current_open_s_ = policy_.open_for_s;
        ++opens_;
        return BreakerTransition::Opened;
      }
      return BreakerTransition::None;
    case State::Open:
      // A batch claimed before the breaker opened finishing late: the
      // open interval is already counting down, nothing to learn.
      return BreakerTransition::None;
    case State::HalfOpen:
      if (served > 0) {
        state_ = State::Closed;
        consecutive_faults_ = 0;
        probes_in_flight_ = 0;
        current_open_s_ = policy_.open_for_s;
        ++closes_;
        return BreakerTransition::Closed;
      }
      state_ = State::Open;
      opened_at_ = now;
      current_open_s_ = std::min(current_open_s_ * policy_.backoff_factor,
                                 policy_.max_open_s);
      ++opens_;
      return BreakerTransition::Reopened;
  }
  return BreakerTransition::None;
}

CircuitBreaker::Snapshot CircuitBreaker::snapshot() const {
  MutexLock lock(mu_);
  Snapshot s;
  s.state = state_;
  s.consecutive_faults = consecutive_faults_;
  s.opens = opens_;
  s.closes = closes_;
  s.current_open_s = current_open_s_;
  return s;
}

// ---------------------------------------------------------------------------
// MultiTenantStats
// ---------------------------------------------------------------------------

std::string MultiTenantStats::str() const {
  std::ostringstream os;
  os << "deployment: epoch " << snapshot_epoch << ", " << deploys
     << " deploys, " << reload_flushes << " reload flushes\n";
  os << "routing:  " << route_exact << " exact, " << route_fallback
     << " fallback, " << route_rejected << " rejected\n";
  for (const TenantStats& t : per_tenant) {
    os << "-- tenant " << t.tenant.str() << " --\n" << t.stats.str() << "\n";
    if (t.breaker.opens + t.breaker.closes + t.quarantined_slots > 0)
      os << "breaker:  " << breaker_state_name(t.breaker.state) << ", "
         << t.breaker.opens << " opens, " << t.breaker.closes
         << " closes, " << t.quarantined_slots << " slots quarantined\n";
    if (t.drift.enabled) {
      os << "drift:    baseline ";
      if (t.drift.baseline_mean < 0.0) {
        os << "(pinning)";
      } else {
        os << t.drift.baseline_mean;
      }
      if (t.drift.last_window_mean >= 0.0)
        os << ", last window " << t.drift.last_window_mean;
      os << ", building " << t.drift.partial_mean << " ("
         << t.drift.partial_n << "/" << t.drift.window << ")\n";
    }
  }
  os << "-- aggregate (" << per_tenant.size() << " tenants) --\n"
     << aggregate.str();
  return os.str();
}

// ---------------------------------------------------------------------------
// ServeEngine
// ---------------------------------------------------------------------------

std::shared_ptr<ServeEngine::TenantState> ServeEngine::make_state(
    const TenantDeployment& dep) {
  auto state = std::make_shared<TenantState>(dep.lane.queue_capacity);
  state->key = dep.key;
  state->trace_tenant = tenant_hash(dep.key);
  configure_state(*state, dep);
  return state;
}

void ServeEngine::configure_state(TenantState& st,
                                  const TenantDeployment& dep) {
  st.version = dep.version;
  st.num_aps = dep.num_aps;
  st.lane = dep.lane;
  // RCU-replace the cache and drift monitor rather than mutating them: a
  // worker mid-batch on the retiring deployment holds shared_ptr copies
  // and finishes against those, while all new traffic sees the fresh
  // (empty, baseline-less) instances.
  st.cache = std::make_shared<FingerprintCache>(dep.lane.cache_capacity,
                                                dep.lane.cache_quant_step);
  st.drift = std::make_shared<DriftMonitor>(dep.lane.drift);
  st.bucket.reconfigure(dep.lane.quota);
  // The breaker restarts Closed: a version-bump deploy rebuilt the
  // replicas (healing any quarantine), so the fault streak is stale.
  st.breaker.reconfigure(dep.lane.breaker);
  // Applies to future pushes only: requests already queued beyond a
  // shrunken capacity stay and drain normally.
  st.q.set_capacity(dep.lane.queue_capacity);
}

ServeEngine::ServeEngine(std::shared_ptr<const DeploymentSnapshot> snapshot,
                         EngineConfig cfg)
    : cfg_(cfg), recorder_(cfg.obs.recorder) {
  CAL_ENSURE(snapshot != nullptr, "engine needs a deployment snapshot");
  CAL_ENSURE(cfg_.pool_size > 0, "engine needs pool_size >= 1");
  snapshot_ = std::move(snapshot);
  order_.reserve(snapshot_->num_tenants());
  for (std::size_t i = 0; i < snapshot_->num_tenants(); ++i) {
    auto state = make_state(snapshot_->tenant(i));
    states_.emplace(state->key, state);
    order_.push_back(std::move(state));
  }
  workers_.reserve(cfg_.pool_size);
  try {
    for (std::size_t i = 0; i < cfg_.pool_size; ++i)
      workers_.emplace_back(&ServeEngine::worker_loop, this, i);
  } catch (...) {
    // Thread spawn can fail (EAGAIN under resource exhaustion). Unwinding
    // with joinable threads would std::terminate, so stop the ones that
    // started before rethrowing.
    {
      MutexLock lock(work_mu_);
      stopped_ = true;
      ++work_gen_;
    }
    work_cv_.notify_all();
    for (auto& w : workers_)
      if (w.joinable()) w.join();
    throw;
  }
}

ServeEngine::~ServeEngine() { shutdown(); }

EngineSubmission ServeEngine::submit(
    const TenantKey& tenant, std::vector<float> fingerprint_normalized,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  CAL_ENSURE(accepting_.load(std::memory_order_acquire),
             "submit() after engine shutdown");
  EngineSubmission out;
  ReaderMutexLock lock(mu_);
  out.decision = snapshot_->route(tenant);
  if (out.decision.status == RouteDecision::Status::Reject) {
    route_rejected_.fetch_add(1, std::memory_order_relaxed);
    CAL_TRACE_EVENT(obs::EventType::Deny, tenant_hash(tenant),
                    snapshot_->epoch(), 0,
                    static_cast<double>(Admission::Rejected));
    // Deterministic explicit reject: never guess a venue.
    out.admission = Admission::Rejected;
    out.result = ready_denial(Verdict::Reject);
    return out;
  }
  const auto state_it = states_.find(out.decision.resolved);
  CAL_INVARIANT(state_it != states_.end(),
                "snapshot tenant missing engine state");
  TenantState& state = *state_it->second;
  CAL_ENSURE(fingerprint_normalized.size() == state.num_aps,
             "fingerprint has " << fingerprint_normalized.size()
                                << " APs, tenant " << state.key.str()
                                << " expects " << state.num_aps);
  // Untrusted channel: a NaN/Inf fingerprint would poison the batched
  // forward pass (the GEMM kernels propagate non-finites by contract) and
  // feed std::lround garbage in the cache-key quantizer, so reject it at
  // the door — same policy as the CSV loader.
  for (std::size_t i = 0; i < fingerprint_normalized.size(); ++i)
    CAL_ENSURE(std::isfinite(fingerprint_normalized[i]),
               "fingerprint AP " << i << " is non-finite");
  // Fault containment gate, ahead of the quota so a doomed request never
  // spends a token: a tenant with every replica slot quarantined is a
  // black hole (no replica left that could serve its queue), and an open
  // breaker is deliberately shedding load. healthy_slots() is one relaxed
  // atomic load; a disabled breaker's try_admit is one uncontended
  // mutex hop.
  if (snapshot_->tenant(out.decision.shard).healthy_slots() == 0 ||
      !state.breaker.try_admit(std::chrono::steady_clock::now())) {
    state.stats.record_breaker_denied();
    CAL_TRACE_EVENT(obs::EventType::Deny, state.trace_tenant,
                    snapshot_->epoch(), 0,
                    static_cast<double>(Admission::BreakerOpen));
    out.admission = Admission::BreakerOpen;
    out.result = ready_denial(Verdict::Accept);
    return out;
  }
  if (!state.bucket.try_acquire(std::chrono::steady_clock::now())) {
    state.stats.record_over_quota();
    CAL_TRACE_EVENT(obs::EventType::Deny, state.trace_tenant,
                    snapshot_->epoch(), 0,
                    static_cast<double>(Admission::OverQuota));
    out.admission = Admission::OverQuota;
    out.result = ready_denial(Verdict::Accept);
    return out;
  }
  // Count before the push: a worker may complete the request the instant
  // it lands, and `completed` must never be observed above `submitted`.
  state.stats.record_submitted();
  {
    // Pool bookkeeping BEFORE the push: once an item is visible in a
    // queue, pending_ already covers it, so a draining pool can never
    // observe "all served" while a just-pushed request is stranded.
    MutexLock wlock(work_mu_);
    ++pending_;
  }
  Pending pending;
  pending.fingerprint = std::move(fingerprint_normalized);
  // The admission timestamp, taken post-quota: latency_ms bills queueing
  // + inference, never the time a client spent being denied
  // (OverQuota/QueueFull) before this accept.
  pending.admitted_at = std::chrono::steady_clock::now();
  if (deadline) {
    pending.deadline = *deadline;
    // Sticky, set before the push: the worker that claims this request
    // must see the flag. (A lost relaxed-store race is still covered by
    // the per-row expiry check inside process().)
    state.has_deadlines.store(true, std::memory_order_relaxed);
  }
  out.result = pending.promise.get_future();
  // Depth is reported by the push itself — a size() call here would take
  // the queue mutex a second time per request just to label a trace event.
  [[maybe_unused]] std::size_t depth_after = 0;
  bool pushed = false;
  try {
    CAL_FAULT_POINT("serve.queue_push");
    pushed = state.q.try_push(std::move(pending), &depth_after);
  } catch (...) {
    // Containment: an exception between the bookkeeping above and a
    // successful push (the fault-injection site stands in for whatever
    // the future grows here — allocation, instrumentation) must leave
    // the engine exactly as if the submission never happened.
    state.stats.record_submit_rejected();
    state.bucket.refund();
    {
      MutexLock wlock(work_mu_);
      --pending_;
      ++work_gen_;
    }
    work_cv_.notify_all();
    throw;
  }
  if (!pushed) {
    state.stats.record_submit_rejected();
    // The consumed token must not bill a request that was never
    // admitted — QueueFull shedding is not quota usage.
    state.bucket.refund();
    {
      MutexLock wlock(work_mu_);
      --pending_;
      ++work_gen_;  // a parked drain may be waiting on pending_ to settle
    }
    work_cv_.notify_all();
    // try_push fails for a full queue or a closed one; the queues close
    // only inside shutdown() (after accepting_ flips), so re-reading the
    // flag disambiguates. shutdown() closes under the queue's own mutex,
    // making this read well-ordered after the close it lost to.
    CAL_ENSURE(accepting_.load(std::memory_order_acquire),
               "submit() after engine shutdown");
    state.stats.record_queue_full();
    CAL_TRACE_EVENT(obs::EventType::Deny, state.trace_tenant,
                    snapshot_->epoch(), 0,
                    static_cast<double>(Admission::QueueFull));
    // A sustained run of queue-full denials on one tenant is the classic
    // "who is flooding whom" incident — freeze the timeline that led in.
    const std::size_t streak =
        state.queue_full_streak.fetch_add(1, std::memory_order_relaxed) + 1;
    if (cfg_.obs.queue_full_burst > 0 &&
        streak >= cfg_.obs.queue_full_burst) {
      state.queue_full_streak.store(0, std::memory_order_relaxed);
      recorder_.trip("queue_full_burst",
                     {{"tenant", state.key.str()},
                      {"streak", streak},
                      {"queue_capacity", state.lane.queue_capacity}});
    }
    out.admission = Admission::QueueFull;
    out.result = ready_denial(Verdict::Accept);
    return out;
  }
  {
    MutexLock wlock(work_mu_);
    ++work_gen_;
  }
  work_cv_.notify_one();
  (out.decision.status == RouteDecision::Status::Exact ? route_exact_
                                                       : route_fallback_)
      .fetch_add(1, std::memory_order_relaxed);
  state.queue_full_streak.store(0, std::memory_order_relaxed);
  CAL_TRACE_EVENT(obs::EventType::Admit, state.trace_tenant,
                  snapshot_->epoch(), 0,
                  static_cast<double>(out.decision.status));
  CAL_TRACE_EVENT(obs::EventType::Enqueue, state.trace_tenant,
                  snapshot_->epoch(), 0,
                  static_cast<double>(depth_after));
  out.admission = Admission::Accepted;
  return out;
}

EngineSubmission ServeEngine::submit_blocking(
    const TenantKey& tenant, std::vector<float> fingerprint_normalized,
    std::size_t* denials) {
  // Exponential backoff (100us -> ~6.4ms) keeps a producer blocked on a
  // saturated tenant from spinning the admission path hot; precise
  // condvar backpressure is deliberately NOT rebuilt here — this wrapper
  // exists for the deprecated shims and drive loops, and overload-aware
  // callers should handle the typed denials themselves.
  auto backoff = std::chrono::microseconds(100);
  constexpr auto kMaxBackoff = std::chrono::microseconds(6400);
  for (;;) {
    // Copy per attempt: submit() consumes the vector only on Accepted.
    EngineSubmission sub = submit(tenant, fingerprint_normalized);
    if (sub.admission == Admission::OverQuota ||
        sub.admission == Admission::QueueFull) {
      if (denials != nullptr) ++*denials;
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, kMaxBackoff);
      continue;
    }
    return sub;
  }
}

std::size_t ServeEngine::drop_queue(TenantState& st, ServeStatus status) {
  std::size_t n = 0;
  for (;;) {
    auto batch = st.q.try_pop_batch(64);
    if (batch.empty()) return n;
    for (Pending& p : batch) {
      // The tenant vanished / changed width under the request (Dropped)
      // or the engine is stopping (ShutDown): fail it with its typed
      // terminal status, and shed its admission back out of `submitted`
      // — it was never served.
      ServeResult res;
      res.localized = false;
      res.status = status;
      res.verdict = Verdict::Reject;
      p.promise.set_value(res);
      st.stats.record_shed();
      ++n;
    }
  }
}

void ServeEngine::deploy(std::shared_ptr<const DeploymentSnapshot> snapshot) {
  CAL_ENSURE(snapshot != nullptr, "deploy() needs a snapshot");
  CAL_ENSURE(accepting_.load(std::memory_order_acquire),
             "deploy() after engine shutdown");
  // Before any engine state is touched: a deploy that faults here leaves
  // the old snapshot serving untouched (strong exception safety).
  CAL_FAULT_POINT("serve.deploy");
  std::size_t dropped = 0;
  {
    WriterMutexLock lock(mu_);
    // Re-check under the exclusive lock: a concurrent shutdown() closes
    // every queue under a SHARED lock, so once we hold the exclusive one
    // either its sweep already covered the current states (and this
    // throw fires) or it will run after us and cover the new ones.
    CAL_ENSURE(accepting_.load(std::memory_order_acquire),
               "deploy() after engine shutdown");
    std::unordered_map<TenantKey, std::shared_ptr<TenantState>, TenantKeyHash>
        next_states;
    std::vector<std::shared_ptr<TenantState>> next_order;
    next_states.reserve(snapshot->num_tenants());
    next_order.reserve(snapshot->num_tenants());
    for (std::size_t i = 0; i < snapshot->num_tenants(); ++i) {
      const TenantDeployment& dep = snapshot->tenant(i);
      std::shared_ptr<TenantState> state;
      if (const auto it = states_.find(dep.key); it != states_.end()) {
        state = it->second;
        if (state->version != dep.version) {
          // Hot reload of THIS tenant: its cached answers and drift
          // baseline describe the retired model's radio map. Queued
          // requests survive (they re-run on the new replicas) unless
          // the fingerprint width changed under them.
          if (state->num_aps != dep.num_aps)
            dropped += drop_queue(*state, ServeStatus::Dropped);
          configure_state(*state, dep);
          reload_flushes_.fetch_add(1, std::memory_order_relaxed);
        }
        // Version unchanged — an identical republish — is a no-op:
        // cache, drift baseline, bucket, and queue all carry over.
      } else {
        state = make_state(dep);
      }
      next_states.emplace(dep.key, state);
      next_order.push_back(std::move(state));
    }
    for (auto& [key, state] : states_)
      if (next_states.find(key) == next_states.end())
        dropped += drop_queue(*state, ServeStatus::Dropped);
    states_ = std::move(next_states);
    order_ = std::move(next_order);
    snapshot_ = std::move(snapshot);
  }
  deploys_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock wlock(work_mu_);
    pending_ -= static_cast<std::int64_t>(dropped);
    ++work_gen_;
  }
  work_cv_.notify_all();
  const std::uint64_t epoch = [this] {
    ReaderMutexLock lock(mu_);
    return snapshot_->epoch();
  }();
  CAL_TRACE_EVENT(obs::EventType::Deploy, 0, epoch, 0,
                  static_cast<double>(dropped));
  if (cfg_.obs.trip_on_deploy)
    recorder_.trip("deploy", {{"epoch", epoch}, {"dropped", dropped}});
}

void ServeEngine::shutdown() {
  std::call_once(shutdown_once_, [this] {
    accepting_.store(false, std::memory_order_release);
    std::size_t dropped = 0;
    {
      // Exclusive lock: in-flight submits hold the shared lock for their
      // whole push, so once we hold this, every accepted request is
      // visible in its queue and no new one can appear (a submit that
      // slipped past accepting_ and is parked on the lock will find its
      // queue closed, re-read the flag, and throw). Close each queue and
      // fail what it held with the typed ShutDown status — shutdown is
      // deterministic: every future a caller holds becomes ready, served
      // or ShutDown, never abandoned. In-flight batches already claimed
      // by workers are NOT cut short; the join below waits for them.
      WriterMutexLock lock(mu_);
      for (const auto& state : order_) {
        state->q.close();
        dropped += drop_queue(*state, ServeStatus::ShutDown);
      }
    }
    {
      MutexLock wlock(work_mu_);
      pending_ -= static_cast<std::int64_t>(dropped);
      stopped_ = true;
      ++work_gen_;
    }
    work_cv_.notify_all();
    for (auto& w : workers_)
      if (w.joinable()) w.join();
  });
}

bool ServeEngine::try_claim(std::size_t& cursor, Claim& out) {
  ReaderMutexLock lock(mu_);
  const std::size_t n = order_.size();
  if (n == 0) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (cursor + i) % n;
    const std::shared_ptr<TenantState>& state = order_[idx];
    if (state->q.size() == 0) continue;
    // order_ is rebuilt to snapshot order on every deploy, under the
    // same exclusive lock — index alignment is an invariant.
    const TenantDeployment& dep = snapshot_->tenant(idx);
    CAL_INVARIANT(dep.key == state->key, "engine state order out of sync");
    if (dep.healthy_slots() == 0) {
      // Every replica slot is quarantined: nothing can ever serve this
      // queue on this deployment. Fail what is queued deterministically
      // (requests racing past the submit-side gate land here on the next
      // scan — every push signals work) and let the breaker see the
      // faults so recovery probing has a state to close from after the
      // healing deploy.
      auto doomed = state->q.drain_if([](const Pending&) { return true; });
      if (!doomed.empty()) {
        for (Pending& p : doomed) {
          ServeResult res;
          res.localized = false;
          res.status = ServeStatus::Faulted;
          p.promise.set_value(res);
        }
        state->stats.record_faulted(doomed.size());
        {
          MutexLock wlock(work_mu_);
          pending_ -= static_cast<std::int64_t>(doomed.size());
        }
        CAL_TRACE_EVENT(obs::EventType::Fault, state->trace_tenant,
                        snapshot_->epoch(), 0,
                        static_cast<double>(doomed.size()));
        state->breaker.on_batch(std::chrono::steady_clock::now(),
                                doomed.size(), 0);
      }
      continue;
    }
    if (state->has_deadlines.load(std::memory_order_relaxed)) {
      // Deadline shedding at dequeue: expired requests leave the queue
      // with their typed result BEFORE this tenant costs a replica
      // checkout or a batch slot. Deadline-free tenants never reach this
      // scan (the sticky flag stays false), so they pay nothing.
      const auto now = std::chrono::steady_clock::now();
      auto expired = state->q.drain_if(
          [now](const Pending& p) { return p.deadline <= now; });
      if (!expired.empty()) {
        for (Pending& p : expired) {
          ServeResult res;
          res.localized = false;
          res.status = ServeStatus::Expired;
          p.promise.set_value(res);
        }
        state->stats.record_expired(expired.size());
        {
          MutexLock wlock(work_mu_);
          pending_ -= static_cast<std::int64_t>(expired.size());
        }
        CAL_TRACE_EVENT(obs::EventType::Expire, state->trace_tenant,
                        snapshot_->epoch(), 0,
                        static_cast<double>(expired.size()));
        if (state->q.size() == 0) continue;
      }
    }
    const int slot = dep.try_checkout();
    if (slot < 0) continue;  // this tenant is already at max concurrency
    std::vector<Pending> batch = state->q.try_pop_batch(dep.lane.max_batch);
    if (batch.empty()) {  // another worker drained it between the checks
      dep.release(static_cast<std::size_t>(slot));
      continue;
    }
    {
      MutexLock wlock(work_mu_);
      pending_ -= static_cast<std::int64_t>(batch.size());
    }
    out.snap = snapshot_;
    out.state = state;
    out.dep = &dep;
    out.slot = static_cast<std::size_t>(slot);
    out.batch_id = next_batch_id_.fetch_add(1, std::memory_order_relaxed);
    out.batch = std::move(batch);
    out.cache = state->cache;
    out.drift = state->drift;
    CAL_TRACE_EVENT(obs::EventType::BatchClaim, state->trace_tenant,
                    out.snap->epoch(), out.batch_id,
                    static_cast<double>(out.batch.size()));
    CAL_TRACE_EVENT(obs::EventType::ReplicaCheckout, state->trace_tenant,
                    out.snap->epoch(), out.batch_id,
                    static_cast<double>(out.slot));
    cursor = (idx + 1) % n;
    return true;
  }
  return false;
}

void ServeEngine::signal_work() {
  {
    MutexLock lock(work_mu_);
    ++work_gen_;
  }
  work_cv_.notify_all();
}

void ServeEngine::worker_loop(std::size_t worker_index) {
  // Private randomness stream for this worker (Rng is not shareable
  // across threads): deterministic in (cfg.seed, worker_index).
  Rng rng = Rng(cfg_.seed).fork(worker_index + 1);
  // Staggered start so idle workers don't all pile on tenant 0.
  std::size_t cursor = worker_index;
  for (;;) {
    std::uint64_t gen = 0;
    {
      MutexLock lock(work_mu_);
      if (stopped_ && pending_ <= 0) return;
      gen = work_gen_;
    }
    Claim claim;
    if (try_claim(cursor, claim)) {
      process(claim, rng);
      claim.dep->release(claim.slot);
      // The released slot may unblock a sibling that skipped this tenant.
      signal_work();
      continue;
    }
    // Explicit predicate loop (not a wait-with-lambda): the analysis
    // checks the guarded reads against the lock set of THIS function,
    // which holds work_mu_ across the whole wait.
    MutexLock lock(work_mu_);
    while (work_gen_ == gen && !(stopped_ && pending_ <= 0))
      work_cv_.wait(work_mu_);
    if (stopped_ && pending_ <= 0) return;
  }
}

void ServeEngine::process(Claim& claim, Rng& rng) {
  const TenantDeployment& dep = *claim.dep;
  const ServiceConfig& lane = dep.lane;  // immutable snapshot copy
  const AnchorScreen& screen = dep.screen;
  const std::shared_ptr<FingerprintCache>& cache = claim.cache;
  const std::shared_ptr<DriftMonitor>& drift = claim.drift;
  StatsCollector& stats = claim.state->stats;
  stats.record_batch(claim.batch.size());
  // Unused when tracing is compiled out (their only readers are
  // CAL_TRACE_EVENT sites, which strip their arguments).
  [[maybe_unused]] const std::uint64_t trace_tenant =
      claim.state->trace_tenant;
  [[maybe_unused]] const std::uint64_t trace_epoch = claim.snap->epoch();

  struct Slot {
    Pending req;
    ServeResult res;
    FingerprintCache::Key key;
    ShardIndexProbe probe;
    bool infer = false;
    bool audited = false;
    bool audit_mismatch = false;
    std::size_t cached_rp = 0;
    bool fulfilled = false;
  };

  std::vector<Slot> slots;
  slots.reserve(claim.batch.size());
  for (auto& pending : claim.batch) {
    Slot s;
    s.req = std::move(pending);
    slots.push_back(std::move(s));
  }

  try {
    // Phase 1 — per-request deadline check, screening, and cache probe.
    // One clock read covers the whole batch: a request that expired
    // between the dequeue-time drain and here (or whose claim sat behind
    // a slow sibling batch) is shed now, before it costs screening or an
    // inference row.
    const auto batch_now = std::chrono::steady_clock::now();
    std::vector<std::size_t> infer_rows;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& s = slots[i];
      if (s.req.deadline <= batch_now) {
        s.res.status = ServeStatus::Expired;
        s.res.localized = false;
        continue;
      }
      s.res.anchor_distance = screen.distance(s.req.fingerprint, &s.probe);
      s.res.verdict = screen.classify(s.res.anchor_distance);
      if (screen.enabled())
        CAL_TRACE_EVENT(obs::EventType::Screen, trace_tenant, trace_epoch,
                        claim.batch_id, s.res.anchor_distance);
      if (s.res.verdict == Verdict::Reject) continue;  // never localised
      // Drift tracking sees only non-rejected traffic: rejected
      // fingerprints are off-manifold adversaries, not a moved radio
      // map, and must not be able to poison the trend into flushing.
      if (screen.enabled() && drift->record(s.res.anchor_distance)) {
        cache->clear();
        stats.record_drift_flush();
        CAL_TRACE_EVENT(obs::EventType::DriftFlush, trace_tenant,
                        trace_epoch, claim.batch_id, 0.0);
        if (cfg_.obs.trip_on_drift)
          recorder_.trip("drift_flush",
                         {{"tenant", claim.state->key.str()},
                          {"anchor_distance", s.res.anchor_distance}});
      }
      if (cache->enabled()) {
        s.key = cache->make_key(s.req.fingerprint);
        if (const auto hit = cache->lookup(s.key)) {
          const bool audit = lane.cache_audit_rate > 0.0 &&
                             rng.bernoulli(lane.cache_audit_rate);
          CAL_TRACE_EVENT(obs::EventType::CacheHit, trace_tenant,
                          trace_epoch, claim.batch_id, audit ? 1.0 : 0.0);
          if (audit) {
            s.audited = true;
            s.cached_rp = *hit;
            s.infer = true;  // re-infer to verify the cached answer
            infer_rows.push_back(i);
          } else {
            s.res.rp = *hit;
            s.res.localized = true;
            s.res.from_cache = true;
          }
          continue;
        }
      }
      s.infer = true;
      infer_rows.push_back(i);
    }

    // Phase 2 — one batched forward pass for every surviving request,
    // on this claim's checked-out replica. A replica that throws must
    // not take down the worker or fail healthy neighbours: the batch is
    // retried row by row, poison rows get ServeStatus::Faulted, healthy
    // rows complete bit-identically to a sequential predict (forward
    // math is row-independent by contract). A replica that serves NO row
    // of its batch is quarantined out of the checkout rotation.
    if (!infer_rows.empty()) {
      const auto run_predict = [&](const Tensor& x) {
        CAL_FAULT_POINT("serve.replica_predict");
        if (Mutex* mu = dep.shared_serialization(); mu != nullptr) {
          // Borrowed model: predict() is not required to be thread-safe,
          // and a reload can briefly put two deployments of the same
          // model in flight — the registry-issued per-model mutex
          // serializes across all of them.
          MutexLock lock(*mu);
          return dep.replica(claim.slot).predict(x);
        }
        return dep.replica(claim.slot).predict(x);
      };
      const auto fill = [&](Slot& s, std::size_t rp) {
        s.res.rp = rp;
        s.res.localized = true;
        if (s.audited) s.audit_mismatch = (s.cached_rp != rp);
        if (cache->enabled()) cache->insert(s.key, rp);
      };
      Tensor xb({infer_rows.size(), dep.num_aps});
      for (std::size_t k = 0; k < infer_rows.size(); ++k) {
        const auto& fp = slots[infer_rows[k]].req.fingerprint;
        std::copy(fp.begin(), fp.end(), xb.data() + k * dep.num_aps);
      }
      bool batch_ok = true;
      try {
        const auto rps = run_predict(xb);
        CAL_INVARIANT(rps.size() == infer_rows.size(),
                      "predict returned " << rps.size() << " labels for "
                                          << infer_rows.size() << " rows");
        CAL_TRACE_EVENT(obs::EventType::Predict, trace_tenant, trace_epoch,
                        claim.batch_id,
                        static_cast<double>(infer_rows.size()));
        for (std::size_t k = 0; k < infer_rows.size(); ++k)
          fill(slots[infer_rows[k]], rps[k]);
      } catch (...) {
        batch_ok = false;
      }
      if (!batch_ok) {
        // Containment path: isolate the poison. Same replica on purpose
        // — a row that faults batched but serves alone means the batch
        // assembly was poisoned by a neighbour, and a row that faults
        // both ways is the poison itself.
        std::size_t served_rows = 0;
        std::size_t faulted_rows = 0;
        Tensor xrow({std::size_t{1}, dep.num_aps});
        for (std::size_t k = 0; k < infer_rows.size(); ++k) {
          Slot& s = slots[infer_rows[k]];
          std::copy(s.req.fingerprint.begin(), s.req.fingerprint.end(),
                    xrow.data());
          try {
            const auto rp1 = run_predict(xrow);
            CAL_INVARIANT(rp1.size() == 1, "single-row predict returned "
                                               << rp1.size() << " labels");
            fill(s, rp1[0]);
            ++served_rows;
          } catch (...) {
            s.res.status = ServeStatus::Faulted;
            s.res.localized = false;
            ++faulted_rows;
          }
        }
        CAL_TRACE_EVENT(obs::EventType::Fault, trace_tenant, trace_epoch,
                        claim.batch_id,
                        static_cast<double>(faulted_rows));
        if (served_rows == 0) {
          // Not one row survived: the replica (not any request) is
          // broken. Retire its slot — heals on the next version-bump
          // deploy of this tenant, which rebuilds the deployment.
          dep.quarantine(claim.slot);
          CAL_TRACE_EVENT(obs::EventType::Quarantine, trace_tenant,
                          trace_epoch, claim.batch_id,
                          static_cast<double>(claim.slot));
          if (cfg_.obs.trip_on_quarantine)
            recorder_.trip("replica_quarantine",
                           {{"tenant", claim.state->key.str()},
                            {"slot", claim.slot},
                            {"faulted", faulted_rows}});
        }
      }
    }

    // Phase 3 — fulfil promises and record telemetry. Only Served rows
    // count as completions and feed the latency histogram; Expired and
    // Faulted rows resolve their futures with the typed status and land
    // in their own counters (still inside `submitted` — they consumed
    // admission and queue space).
    std::size_t served_n = 0;
    std::size_t expired_n = 0;
    std::size_t faulted_n = 0;
    for (Slot& s : slots) {
      if (s.res.status == ServeStatus::Served) {
        s.res.latency_ms = ms_since(s.req.admitted_at);
        ResultRecord rec;
        rec.latency_ms = s.res.latency_ms;
        rec.verdict = s.res.verdict;
        rec.from_cache = s.res.from_cache;
        rec.audited = s.audited;
        rec.audit_mismatch = s.audit_mismatch;
        rec.screened = screen.enabled();
        rec.anchors_scanned = s.probe.scanned;
        rec.anchors_pruned = s.probe.pruned;
        stats.record_result(rec);
        CAL_TRACE_EVENT(obs::EventType::Complete, trace_tenant, trace_epoch,
                        claim.batch_id, s.res.latency_ms);
        ++served_n;
      } else if (s.res.status == ServeStatus::Expired) {
        ++expired_n;
      } else {
        ++faulted_n;
      }
      s.req.promise.set_value(s.res);
      s.fulfilled = true;
    }
    if (expired_n > 0) {
      stats.record_expired(expired_n);
      CAL_TRACE_EVENT(obs::EventType::Expire, trace_tenant, trace_epoch,
                      claim.batch_id, static_cast<double>(expired_n));
    }
    if (faulted_n > 0) stats.record_faulted(faulted_n);

    // Feed the breaker: served rows prove the tenant works (closing a
    // half-open breaker, resetting the streak); all-fault batches grow
    // the consecutive-fault streak toward BreakerPolicy::fault_threshold.
    // Pure-expired batches say nothing about replica health.
    if (served_n + faulted_n > 0) {
      const BreakerTransition tr = claim.state->breaker.on_batch(
          std::chrono::steady_clock::now(), faulted_n, served_n);
      if (tr != BreakerTransition::None)
        CAL_TRACE_EVENT(obs::EventType::Breaker, trace_tenant, trace_epoch,
                        claim.batch_id, static_cast<double>(tr));
    }

    // Sampled p99-breach check: every p99_check_every completions this
    // tenant's lifetime p99 is read (one mutex hop) and compared against
    // the configured ceiling.
    if (cfg_.obs.p99_breach_ms > 0.0) {
      const std::size_t done =
          claim.state->completions_since_p99.fetch_add(
              slots.size(), std::memory_order_relaxed) +
          slots.size();
      if (done >= std::max<std::size_t>(1, cfg_.obs.p99_check_every)) {
        claim.state->completions_since_p99.store(0,
                                                 std::memory_order_relaxed);
        const double p99 = stats.latency_p99_ms();
        if (p99 > cfg_.obs.p99_breach_ms)
          recorder_.trip("p99_breach",
                         {{"tenant", claim.state->key.str()},
                          {"p99_ms", p99},
                          {"threshold_ms", cfg_.obs.p99_breach_ms}});
      }
    }
  } catch (...) {
    // A model/bookkeeping failure must not strand waiting clients.
    for (Slot& s : slots)
      if (!s.fulfilled) s.req.promise.set_exception(std::current_exception());
  }
}

MultiTenantStats ServeEngine::stats() const {
  MultiTenantStats out;
  ReaderMutexLock lock(mu_);
  out.per_tenant.reserve(order_.size());
  std::vector<ServiceStats> snapshots;
  snapshots.reserve(order_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const auto& state = order_[i];
    snapshots.push_back(state->stats.snapshot());
    TenantStats t;
    t.tenant = state->key;
    t.stats = snapshots.back();
    t.drift = state->drift->snapshot();
    t.breaker = state->breaker.snapshot();
    t.quarantined_slots = snapshot_->tenant(i).quarantined_slots();
    out.per_tenant.push_back(std::move(t));
  }
  out.aggregate = aggregate_stats(snapshots);
  out.route_exact = route_exact_.load(std::memory_order_relaxed);
  out.route_fallback = route_fallback_.load(std::memory_order_relaxed);
  out.route_rejected = route_rejected_.load(std::memory_order_relaxed);
  out.snapshot_epoch = snapshot_->epoch();
  out.deploys = deploys_.load(std::memory_order_relaxed);
  out.reload_flushes = reload_flushes_.load(std::memory_order_relaxed);
  return out;
}

obs::MetricsRegistry ServeEngine::metrics() const {
  obs::MetricsRegistry reg;
  {
    ReaderMutexLock lock(mu_);
    for (std::size_t i = 0; i < order_.size(); ++i) {
      const TenantState& state = *order_[i];
      const TenantDeployment& dep = snapshot_->tenant(i);
      const ServiceStats s = state.stats.snapshot();
      const std::string tenant = state.key.str();
      reg.add_counter("cal_serve_admissions_total",
                      "Admission outcomes at the engine front door",
                      {{"tenant", tenant}, {"outcome", "accepted"}},
                      static_cast<double>(s.submitted));
      reg.add_counter("cal_serve_admissions_total",
                      "Admission outcomes at the engine front door",
                      {{"tenant", tenant}, {"outcome", "over_quota"}},
                      static_cast<double>(s.over_quota));
      reg.add_counter("cal_serve_admissions_total",
                      "Admission outcomes at the engine front door",
                      {{"tenant", tenant}, {"outcome", "queue_full"}},
                      static_cast<double>(s.queue_full));
      reg.add_counter("cal_serve_admissions_total",
                      "Admission outcomes at the engine front door",
                      {{"tenant", tenant}, {"outcome", "breaker_open"}},
                      static_cast<double>(s.breaker_denied));
      reg.add_counter("cal_serve_expired_total",
                      "Requests shed past their deadline",
                      {{"tenant", tenant}},
                      static_cast<double>(s.expired));
      reg.add_counter("cal_serve_faulted_total",
                      "Requests failed by replica faults",
                      {{"tenant", tenant}},
                      static_cast<double>(s.faulted));
      reg.add_counter("cal_serve_shed_total",
                      "Queued requests terminated unserved "
                      "(tenant removed / shutdown)",
                      {{"tenant", tenant}},
                      static_cast<double>(s.shed));
      const CircuitBreaker::Snapshot breaker = state.breaker.snapshot();
      reg.add_gauge("cal_serve_breaker_state",
                    "Circuit-breaker state: 0 closed, 1 open, 2 half-open",
                    {{"tenant", tenant}},
                    static_cast<double>(breaker.state));
      reg.add_counter("cal_serve_breaker_opens_total",
                      "Circuit-breaker open + reopen transitions",
                      {{"tenant", tenant}},
                      static_cast<double>(breaker.opens));
      reg.add_counter("cal_serve_breaker_closes_total",
                      "Circuit-breaker half-open -> closed recoveries",
                      {{"tenant", tenant}},
                      static_cast<double>(breaker.closes));
      reg.add_counter("cal_serve_completed_total",
                      "Requests fulfilled, any verdict",
                      {{"tenant", tenant}},
                      static_cast<double>(s.completed));
      reg.add_counter("cal_serve_verdicts_total",
                      "Screening verdicts on completed requests",
                      {{"tenant", tenant}, {"verdict", "flagged"}},
                      static_cast<double>(s.flagged));
      reg.add_counter("cal_serve_verdicts_total",
                      "Screening verdicts on completed requests",
                      {{"tenant", tenant}, {"verdict", "rejected"}},
                      static_cast<double>(s.rejected));
      reg.add_counter("cal_serve_cache_hits_total",
                      "Requests served from the fingerprint LRU",
                      {{"tenant", tenant}},
                      static_cast<double>(s.cache_hits));
      reg.add_counter("cal_serve_cache_audits_total",
                      "Cache hits re-inferred for verification",
                      {{"tenant", tenant}},
                      static_cast<double>(s.cache_audits));
      reg.add_counter("cal_serve_cache_audit_mismatches_total",
                      "Audited cache hits that disagreed with the model",
                      {{"tenant", tenant}},
                      static_cast<double>(s.cache_audit_mismatches));
      reg.add_counter("cal_serve_drift_flushes_total",
                      "Cache flushes forced by the drift trend",
                      {{"tenant", tenant}},
                      static_cast<double>(s.drift_flushes));
      reg.add_counter("cal_serve_batches_total",
                      "Micro-batches drained by pool workers",
                      {{"tenant", tenant}},
                      static_cast<double>(s.batches));
      reg.add_counter("cal_serve_screened_total",
                      "Requests that ran the anchor screen",
                      {{"tenant", tenant}},
                      static_cast<double>(s.screened));
      reg.add_histogram("cal_serve_latency_ms",
                        "Request latency (admission to fulfilment), ms",
                        {{"tenant", tenant}}, s.latency);
      reg.add_gauge("cal_serve_queue_depth",
                    "Requests waiting in the tenant sub-queue",
                    {{"tenant", tenant}},
                    static_cast<double>(state.q.size()));
      reg.add_gauge("cal_serve_queue_capacity",
                    "Bounded sub-queue capacity",
                    {{"tenant", tenant}},
                    static_cast<double>(state.lane.queue_capacity));
      const double lookups =
          static_cast<double>(state.cache->hits() + state.cache->misses());
      reg.add_gauge("cal_serve_lru_hit_ratio",
                    "LRU hits over lookups, lifetime",
                    {{"tenant", tenant}},
                    lookups > 0.0
                        ? static_cast<double>(state.cache->hits()) / lookups
                        : 0.0);
      reg.add_gauge("cal_serve_lru_size", "Entries in the fingerprint LRU",
                    {{"tenant", tenant}},
                    static_cast<double>(state.cache->size()));
      reg.add_gauge("cal_serve_replica_slots",
                    "Replica slots (max concurrent batches)",
                    {{"tenant", tenant}},
                    static_cast<double>(dep.slots()));
      reg.add_gauge("cal_serve_replica_slots_busy",
                    "Replica slots currently checked out",
                    {{"tenant", tenant}},
                    static_cast<double>(dep.busy_slots()));
      reg.add_gauge("cal_serve_replica_slots_quarantined",
                    "Replica slots retired from rotation by faults",
                    {{"tenant", tenant}},
                    static_cast<double>(dep.quarantined_slots()));
      reg.add_gauge("cal_serve_weight_bytes",
                    "Resident model weight bytes across replica slots",
                    {{"tenant", tenant}},
                    static_cast<double>(dep.weight_bytes));
      reg.add_gauge("cal_serve_precision_int8",
                    "1 when this tenant serves int8-quantized replicas",
                    {{"tenant", tenant}},
                    dep.precision == Precision::Int8 ? 1.0 : 0.0);
      const DriftTrend drift = state.drift->snapshot();
      if (drift.enabled) {
        reg.add_gauge("cal_serve_drift_baseline_mean",
                      "Pinned drift baseline window mean (-1 while pinning)",
                      {{"tenant", tenant}}, drift.baseline_mean);
        reg.add_gauge(
            "cal_serve_drift_last_window_mean",
            "Most recent completed drift window mean (-1 before one)",
            {{"tenant", tenant}}, drift.last_window_mean);
      }
    }
    reg.add_gauge("cal_serve_deploy_epoch",
                  "Epoch of the live deployment snapshot", {},
                  static_cast<double>(snapshot_->epoch()));
    reg.add_gauge("cal_serve_tenants", "Deployed tenants", {},
                  static_cast<double>(order_.size()));
  }
  reg.add_counter("cal_serve_route_total", "Routing outcomes",
                  {{"status", "exact"}},
                  static_cast<double>(
                      route_exact_.load(std::memory_order_relaxed)));
  reg.add_counter("cal_serve_route_total", "Routing outcomes",
                  {{"status", "fallback"}},
                  static_cast<double>(
                      route_fallback_.load(std::memory_order_relaxed)));
  reg.add_counter("cal_serve_route_total", "Routing outcomes",
                  {{"status", "rejected"}},
                  static_cast<double>(
                      route_rejected_.load(std::memory_order_relaxed)));
  reg.add_counter("cal_serve_deploys_total",
                  "deploy() calls since engine construction", {},
                  static_cast<double>(
                      deploys_.load(std::memory_order_relaxed)));
  reg.add_counter("cal_serve_reload_flushes_total",
                  "Tenant reloads that flushed cache and drift state", {},
                  static_cast<double>(
                      reload_flushes_.load(std::memory_order_relaxed)));
  reg.add_gauge("cal_serve_pool_size", "Shared worker threads", {},
                static_cast<double>(cfg_.pool_size));

  const kernels::PoolMetrics pool = kernels::pool_metrics();
  reg.add_counter("cal_gemm_parallel_total",
                  "GEMMs dispatched through the kernel pool", {},
                  static_cast<double>(pool.parallel_gemms));
  reg.add_counter("cal_gemm_serial_fallbacks_total",
                  "Pool-eligible GEMMs that ran serial (pool busy)", {},
                  static_cast<double>(pool.serial_fallbacks));
  reg.add_counter("cal_gemm_pool_tasks_total",
                  "Row-block tasks executed by the kernel pool", {},
                  static_cast<double>(pool.tasks));
  reg.add_histogram("cal_gemm_pool_task_ms",
                    "Kernel-pool row-block task wall time, ms", {},
                    pool.task_ms);

  const obs::Tracer& tracer = obs::Tracer::instance();
  const obs::Tracer::Totals totals = tracer.totals();
  reg.add_counter("cal_trace_events_total",
                  "Trace events recorded, all threads", {},
                  static_cast<double>(totals.recorded));
  reg.add_counter("cal_trace_dropped_total",
                  "Trace events overwritten before any snapshot read them",
                  {}, static_cast<double>(totals.dropped));
  reg.add_gauge("cal_trace_threads", "Threads with a trace ring", {},
                static_cast<double>(totals.threads));
  reg.add_gauge("cal_trace_enabled",
                "1 when tracing is compiled in and runtime-enabled", {},
                obs::kTracingCompiledIn && tracer.enabled() ? 1.0 : 0.0);
  reg.add_counter("cal_flight_trips_total",
                  "Flight-recorder anomaly trips", {},
                  static_cast<double>(recorder_.trips()));
  reg.add_counter("cal_flight_dumps_total",
                  "Flight-recorder dumps taken (trips minus rate-limited)",
                  {}, static_cast<double>(recorder_.dumps()));
  return reg;
}

void ServeEngine::reset_telemetry_clocks() {
  ReaderMutexLock lock(mu_);
  for (const auto& state : order_) state->stats.reset_clock();
}

std::size_t ServeEngine::num_tenants() const {
  ReaderMutexLock lock(mu_);
  return order_.size();
}

std::shared_ptr<const DeploymentSnapshot> ServeEngine::snapshot() const {
  ReaderMutexLock lock(mu_);
  return snapshot_;
}

const FingerprintCache& ServeEngine::tenant_cache(const TenantKey& key) const {
  ReaderMutexLock lock(mu_);
  const auto it = states_.find(key);
  CAL_ENSURE(it != states_.end(), "unknown tenant " << key.str());
  return *it->second->cache;
}

const AnchorScreen& ServeEngine::tenant_screen(const TenantKey& key) const {
  ReaderMutexLock lock(mu_);
  const TenantDeployment* dep = snapshot_->find(key);
  CAL_ENSURE(dep != nullptr, "unknown tenant " << key.str());
  return dep->screen;
}

DriftTrend ServeEngine::tenant_drift(const TenantKey& key) const {
  ReaderMutexLock lock(mu_);
  const auto it = states_.find(key);
  CAL_ENSURE(it != states_.end(), "unknown tenant " << key.str());
  return it->second->drift->snapshot();
}

}  // namespace cal::serve
