#include "serve/shard_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/ensure.hpp"

namespace cal::serve {
namespace {

/// Absolute slack on the centroid bound. The bound is exact mathematics;
/// the slack only covers double-rounding of the two sqrts feeding it
/// (error ~1e-15 on the O(1) normalised-RSS scale), so a true nearest
/// anchor can never be pruned and the returned minimum matches a full
/// scan bit for bit.
constexpr double kBoundSlack = 1e-9;

double row_sq_distance(std::span<const float> fp, std::span<const float> row) {
  // Same accumulation order as serve::anchor_distance — the pruned search
  // must return the identical double.
  double sq = 0.0;
  for (std::size_t j = 0; j < row.size(); ++j) {
    const double d = static_cast<double>(fp[j]) - row[j];
    sq += d * d;
  }
  return sq;
}

}  // namespace

ShardIndex::ShardIndex(Tensor anchors) : anchors_(std::move(anchors)) {
  CAL_ENSURE(anchors_.rank() == 2 && anchors_.rows() > 0,
             "ShardIndex needs a non-empty (M x num_aps) anchor matrix");
  const std::size_t m = anchors_.rows();
  const std::size_t n = anchors_.cols();
  centroid_.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = anchors_.row(i);
    for (std::size_t j = 0; j < n; ++j) centroid_[j] += row[j];
  }
  for (double& c : centroid_) c /= static_cast<double>(m);

  std::vector<double> dist(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = anchors_.row(i);
    double sq = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double d = static_cast<double>(row[j]) - centroid_[j];
      sq += d * d;
    }
    dist[i] = std::sqrt(sq);
  }
  order_.resize(m);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
    return dist[a] < dist[b] || (dist[a] == dist[b] && a < b);
  });
  centroid_dist_.resize(m);
  for (std::size_t p = 0; p < m; ++p) centroid_dist_[p] = dist[order_[p]];
}

double ShardIndex::nearest(std::span<const float> fingerprint,
                           ShardIndexProbe* probe) const {
  CAL_ENSURE(!empty(), "nearest() on an empty ShardIndex");
  CAL_ENSURE(fingerprint.size() == anchors_.cols(),
             "fingerprint has " << fingerprint.size()
                                << " APs, shard index expects "
                                << anchors_.cols());
  const std::size_t m = anchors_.rows();

  double qc_sq = 0.0;
  for (std::size_t j = 0; j < fingerprint.size(); ++j) {
    const double d = static_cast<double>(fingerprint[j]) - centroid_[j];
    qc_sq += d * d;
  }
  const double d_qc = std::sqrt(qc_sq);

  // Scan outward from the sorted position nearest d_qc: candidates there
  // have the smallest |d_qc - d_ac| lower bound, so the best distance
  // shrinks quickly and the outward bounds terminate both walks early.
  const auto it =
      std::lower_bound(centroid_dist_.begin(), centroid_dist_.end(), d_qc);
  std::size_t right = static_cast<std::size_t>(it - centroid_dist_.begin());
  std::size_t left = right;  // next candidate on the low side is left-1
  bool left_open = left > 0;
  bool right_open = right < m;

  double best = std::numeric_limits<double>::infinity();
  double best_sq = std::numeric_limits<double>::infinity();
  std::size_t scanned = 0;
  while (left_open || right_open) {
    // Pick the side whose lower bound is tighter.
    const double lb_left =
        left_open ? d_qc - centroid_dist_[left - 1]
                  : std::numeric_limits<double>::infinity();
    const double lb_right =
        right_open ? centroid_dist_[right] - d_qc
                   : std::numeric_limits<double>::infinity();
    const bool take_left = lb_left <= lb_right;
    const double lb = take_left ? lb_left : lb_right;
    if (lb > best + kBoundSlack) {
      // Bounds grow monotonically outward on both sides: every remaining
      // candidate is at least this far away. Done.
      break;
    }
    const std::size_t pos = take_left ? --left : right++;
    if (take_left)
      left_open = left > 0;
    else
      right_open = right < m;
    const double sq = row_sq_distance(fingerprint, anchors_.row(order_[pos]));
    ++scanned;
    if (sq < best_sq) {
      best_sq = sq;
      best = std::sqrt(sq);
    }
  }
  if (probe != nullptr) {
    probe->scanned = scanned;
    probe->pruned = m - scanned;
  }
  return std::sqrt(best_sq / static_cast<double>(anchors_.cols()));
}

}  // namespace cal::serve
