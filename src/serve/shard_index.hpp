// Per-shard anchor index: pruned nearest-anchor search.
//
// Screening cost is one scan over the shard's anchor database per request.
// Sharding already cuts that from all-M anchors (every venue) to the
// shard's own M_s; this index cuts the *within-shard* scan further with a
// centroid bound: precompute the shard centroid c and every anchor's
// distance ||a_i - c||, sort anchors by it, and at query time skip any
// anchor whose triangle-inequality lower bound
//
//     d(q, a_i) >= | d(q, c) - d(a_i, c) |
//
// cannot beat the best distance found so far. The scan runs outward from
// the anchors nearest the centroid-distance of the query, so the bound
// tightens fast on the clustered fingerprint manifolds real floorplans
// produce. The returned minimum is the exact same nearest-anchor distance
// a full scan finds (pruning uses a conservative epsilon slack, never
// skipping a potential winner), so screening verdicts are unchanged.
//
// The index is immutable after construction and safe to share across
// worker threads. Per-query work is reported through ShardIndexProbe so
// the serving stats can show that screening work scales with the shard's
// anchor count, not the fleet-wide total.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/hot_path_annotations.hpp"
#include "tensor/tensor.hpp"

namespace cal::serve {

/// Per-query work counters (filled by ShardIndex::nearest).
struct ShardIndexProbe {
  std::size_t scanned = 0;  ///< anchors whose full distance was computed
  std::size_t pruned = 0;   ///< anchors skipped via the centroid bound
};

/// Immutable nearest-anchor index over one shard's anchor database.
class ShardIndex {
 public:
  /// Disabled index: zero anchors, nearest() must not be called.
  ShardIndex() = default;

  /// `anchors`: (M x num_aps) normalised anchor matrix, M >= 1.
  explicit ShardIndex(Tensor anchors);

  bool empty() const { return anchors_.empty(); }
  std::size_t num_anchors() const { return empty() ? 0 : anchors_.rows(); }
  std::size_t num_aps() const { return empty() ? 0 : anchors_.cols(); }
  const Tensor& anchors() const { return anchors_; }

  /// Exact RMS-per-AP distance from `fingerprint` to its nearest anchor —
  /// the same quantity as serve::anchor_distance(anchors, fingerprint),
  /// computed with centroid-bound pruning. Optionally reports per-query
  /// work through `probe`.
  CAL_HOT_PATH CAL_NONBLOCKING CAL_NOALLOC
  double nearest(std::span<const float> fingerprint,
                 ShardIndexProbe* probe = nullptr) const;

 private:
  Tensor anchors_;
  std::vector<double> centroid_;         // mean anchor
  std::vector<double> centroid_dist_;    // ||a_i - c||, sorted ascending
  std::vector<std::size_t> order_;       // anchor row per sorted position
};

}  // namespace cal::serve
