// Request screening against the anchor fingerprint database.
//
// The paper's §III threat model has fingerprints arriving over a MITM-able
// channel; its defence intuition is that adversarial perturbations push a
// fingerprint away from the manifold of clean fingerprints captured during
// the offline survey. The serving layer exposes that intuition as a cheap
// per-request screen: the distance from the incoming fingerprint to its
// nearest anchor (the per-RP mean clean fingerprint — the same database
// CALLOC attends over) is compared against thresholds calibrated on clean
// data, yielding an accept / flag / reject verdict. Flagged requests are
// still localised (CALLOC is trained to survive them) but surfaced to the
// operator; rejected requests are dropped before they reach the model.
#pragma once

#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/hot_path_annotations.hpp"
#include "data/dataset.hpp"
#include "serve/shard_index.hpp"
#include "tensor/tensor.hpp"

namespace cal::serve {

/// Screening outcome for one request.
enum class Verdict { Accept, Flag, Reject };

std::string to_string(Verdict v);

/// Distance cutoffs on the per-AP RMS scale of anchor_distance(). The
/// defaults (+inf) accept everything — screening is opt-in.
struct ScreeningThresholds {
  double flag_distance = std::numeric_limits<double>::infinity();
  double reject_distance = std::numeric_limits<double>::infinity();
};

/// RMS-per-AP distance from a normalised fingerprint to its nearest row
/// of `anchors` (M x num_aps, normalised). Dividing the Euclidean norm by
/// sqrt(num_aps) keeps thresholds comparable across buildings with
/// different AP counts: 0.1 means "10 dB of deviation per AP on average".
double anchor_distance(const Tensor& anchors,
                       std::span<const float> fingerprint);

/// The per-RP mean clean fingerprint matrix on the normalised scale —
/// exactly the anchor database Calloc::fit installs.
Tensor anchor_database_from(const data::FingerprintDataset& train);

/// Pick thresholds from the clean-data distance distribution: flag beyond
/// the `flag_percentile` of clean distances, reject beyond that threshold
/// times `reject_factor` (clean traffic essentially never reaches it).
///
/// Feed this a clean *online-phase* capture spanning the device fleet,
/// not the offline train set: session drift and device heterogeneity push
/// legitimate online fingerprints well past the survey distribution (in
/// the simulator, every test device's median distance exceeds the train
/// set's maximum), so survey-only calibration flags everything.
ScreeningThresholds calibrate_thresholds(const Tensor& anchors,
                                         const Tensor& clean_x_normalized,
                                         double flag_percentile = 95.0,
                                         double reject_factor = 2.0);

/// Stateless screen bound to one shard's anchor database. Immutable after
/// construction, hence freely shared across worker threads. The nearest-
/// anchor search runs through a ShardIndex, so per-request screening work
/// is bounded by the shard's own anchor count, never the fleet-wide
/// total (the centroid bound trims a further slice within the shard —
/// ~9-19% on Table II venues; see shard_index.hpp and the multi-centroid
/// follow-on in ROADMAP.md).
class AnchorScreen {
 public:
  /// Default-constructed screens are disabled: distance 0, always Accept.
  AnchorScreen() = default;

  /// `anchors`: (M x num_aps) normalised database; must be non-empty.
  AnchorScreen(Tensor anchors, ScreeningThresholds thresholds);

  bool enabled() const { return !index_.empty(); }
  const ScreeningThresholds& thresholds() const { return thresholds_; }
  std::size_t num_anchors() const { return index_.num_anchors(); }
  const Tensor& anchors() const { return index_.anchors(); }

  /// Distance of one fingerprint to the nearest anchor (0 when disabled).
  /// `probe`, when given, reports the scan/prune work of this query.
  CAL_HOT_PATH CAL_NOALLOC
  double distance(std::span<const float> fingerprint,
                  ShardIndexProbe* probe = nullptr) const;

  /// Threshold the distance into a verdict.
  CAL_HOT_PATH CAL_NONBLOCKING CAL_NOALLOC
  Verdict classify(double distance) const;

 private:
  ShardIndex index_;
  ScreeningThresholds thresholds_;
};

}  // namespace cal::serve
