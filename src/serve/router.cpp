#include "serve/router.hpp"

#include <utility>

#include "common/ensure.hpp"

namespace cal::serve {

ShardRouter::ShardRouter(const ModelRegistry& registry)
    : shards_(registry.keys()), fallbacks_(registry.profile_fallbacks()) {
  CAL_ENSURE(!shards_.empty(), "router needs >= 1 registered tenant");
  by_key_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) by_key_[shards_[i]] = i;
}

const TenantKey& ShardRouter::shard_key(std::size_t shard) const {
  CAL_ENSURE(shard < shards_.size(),
             "shard " << shard << " out of " << shards_.size());
  return shards_[shard];
}

RouteDecision ShardRouter::route(const TenantKey& request) const {
  // One resolution policy for the whole stack (see resolve_tenant): the
  // router only adds the resolved-key -> shard-id mapping on top.
  const auto res =
      resolve_tenant(request, fallbacks_, [this](const TenantKey& k) {
        return by_key_.find(k) != by_key_.end();
      });
  if (res.kind == ModelRegistry::Resolution::Kind::Miss) return {};
  return {res.kind == ModelRegistry::Resolution::Kind::Exact
              ? RouteDecision::Status::Exact
              : RouteDecision::Status::Fallback,
          by_key_.at(res.resolved), res.resolved};
}

MultiTenantService::MultiTenantService(ModelRegistry registry)
    : registry_(std::move(registry)), router_(registry_) {
  // Thread-count parity with the retired per-lane model: each tenant's
  // num_workers now contributes replica slots AND pool threads, so the
  // shim behaves like the old fleet while new code sizes the two
  // independently through ServeEngine.
  std::size_t pool = 0;
  for (const TenantKey& key : registry_.keys())
    pool += registry_.find(key)->service.num_workers;
  EngineConfig cfg;
  cfg.pool_size = std::max<std::size_t>(pool, 1);
  engine_ = std::make_unique<ServeEngine>(registry_.publish(), cfg);
  // Replica factories are arbitrarily slow; align every tenant's
  // telemetry clock to "fleet ready" so shards built early don't count
  // the rest of the construction as serving time.
  engine_->reset_telemetry_clocks();
}

MultiTenantService::~MultiTenantService() { shutdown(); }

RoutedSubmission MultiTenantService::submit(
    const TenantKey& tenant, std::vector<float> fingerprint_normalized) {
  // The legacy API blocked the producer on a saturated shard;
  // submit_blocking emulates that backpressure by retrying admission.
  EngineSubmission sub =
      engine_->submit_blocking(tenant, std::move(fingerprint_normalized));
  return {sub.decision, std::move(sub.result)};
}

void MultiTenantService::shutdown() { engine_->shutdown(); }

MultiTenantStats MultiTenantService::stats() const { return engine_->stats(); }

std::size_t MultiTenantService::num_shards() const {
  return engine_->num_tenants();
}

}  // namespace cal::serve
