#include "serve/router.hpp"

#include <sstream>
#include <utility>

#include "common/ensure.hpp"

namespace cal::serve {

std::string to_string(RouteDecision::Status s) {
  switch (s) {
    case RouteDecision::Status::Exact: return "exact";
    case RouteDecision::Status::Fallback: return "fallback";
    case RouteDecision::Status::Reject: return "reject";
  }
  return "?";
}

ShardRouter::ShardRouter(const ModelRegistry& registry)
    : shards_(registry.keys()), fallbacks_(registry.profile_fallbacks()) {
  CAL_ENSURE(!shards_.empty(), "router needs >= 1 registered tenant");
  by_key_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) by_key_[shards_[i]] = i;
}

const TenantKey& ShardRouter::shard_key(std::size_t shard) const {
  CAL_ENSURE(shard < shards_.size(),
             "shard " << shard << " out of " << shards_.size());
  return shards_[shard];
}

RouteDecision ShardRouter::route(const TenantKey& request) const {
  // One resolution policy for the whole stack (see resolve_tenant): the
  // router only adds the resolved-key -> shard-id mapping on top.
  const auto res =
      resolve_tenant(request, fallbacks_, [this](const TenantKey& k) {
        return by_key_.find(k) != by_key_.end();
      });
  if (res.kind == ModelRegistry::Resolution::Kind::Miss) return {};
  return {res.kind == ModelRegistry::Resolution::Kind::Exact
              ? RouteDecision::Status::Exact
              : RouteDecision::Status::Fallback,
          by_key_.at(res.resolved), res.resolved};
}

std::string MultiTenantStats::str() const {
  std::ostringstream os;
  os << "routing:  " << route_exact << " exact, " << route_fallback
     << " fallback, " << route_rejected << " rejected\n";
  for (const TenantStats& t : per_tenant) {
    os << "-- tenant " << t.tenant.str() << " --\n" << t.stats.str() << "\n";
  }
  os << "-- aggregate (" << per_tenant.size() << " shards) --\n"
     << aggregate.str();
  return os.str();
}

MultiTenantService::MultiTenantService(ModelRegistry registry)
    : registry_(std::move(registry)), router_(registry_) {
  lanes_.reserve(router_.num_shards());
  for (std::size_t shard = 0; shard < router_.num_shards(); ++shard) {
    const TenantKey& key = router_.shard_key(shard);
    const TenantSpec* spec = registry_.find(key);
    CAL_INVARIANT(spec != nullptr, "router shard key missing from registry");
    // Tensor copy: the registry keeps its catalogue intact for later
    // inspection while each lane owns its shard's anchor database.
    lanes_.push_back(std::make_unique<LocalizationService>(
        spec->factory, spec->num_aps, spec->anchors, spec->service));
  }
  // Lanes were built sequentially, each running its replica factory
  // num_workers times; align every shard's telemetry clock to "fleet
  // ready" so early shards don't report the rest of the construction as
  // serving wall time.
  for (auto& lane : lanes_) lane->reset_telemetry_clock();
}

MultiTenantService::~MultiTenantService() { shutdown(); }

RoutedSubmission MultiTenantService::submit(
    const TenantKey& tenant, std::vector<float> fingerprint_normalized) {
  RoutedSubmission out;
  out.decision = router_.route(tenant);
  if (out.decision.status == RouteDecision::Status::Reject) {
    route_rejected_.fetch_add(1, std::memory_order_relaxed);
    // Deterministic explicit reject: never guess a venue. The future is
    // fulfilled before it is returned.
    std::promise<ServeResult> promise;
    ServeResult res;
    res.localized = false;
    res.verdict = Verdict::Reject;
    promise.set_value(res);
    out.result = promise.get_future();
    return out;
  }
  out.result =
      lanes_[out.decision.shard]->submit(std::move(fingerprint_normalized));
  // Count only after the lane accepted the request (submit throws after
  // shutdown and on invalid fingerprints): the route mix must never
  // exceed what the lanes actually enqueued.
  (out.decision.status == RouteDecision::Status::Exact ? route_exact_
                                                       : route_fallback_)
      .fetch_add(1, std::memory_order_relaxed);
  return out;
}

void MultiTenantService::shutdown() {
  for (auto& lane : lanes_) lane->shutdown();
}

const LocalizationService& MultiTenantService::lane(std::size_t shard) const {
  CAL_ENSURE(shard < lanes_.size(),
             "shard " << shard << " out of " << lanes_.size());
  return *lanes_[shard];
}

MultiTenantStats MultiTenantService::stats() const {
  MultiTenantStats out;
  out.per_tenant.reserve(lanes_.size());
  std::vector<ServiceStats> snapshots;
  snapshots.reserve(lanes_.size());
  for (std::size_t shard = 0; shard < lanes_.size(); ++shard) {
    snapshots.push_back(lanes_[shard]->stats());
    out.per_tenant.push_back({router_.shard_key(shard), snapshots.back()});
  }
  out.aggregate = aggregate_stats(snapshots);
  out.route_exact = route_exact_.load(std::memory_order_relaxed);
  out.route_fallback = route_fallback_.load(std::memory_order_relaxed);
  out.route_rejected = route_rejected_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace cal::serve
