#include "serve/router.hpp"

#include <utility>

#include "common/ensure.hpp"

namespace cal::serve {

ShardRouter::ShardRouter(const ModelRegistry& registry)
    : shards_(registry.keys()), fallbacks_(registry.profile_fallbacks()) {
  CAL_ENSURE(!shards_.empty(), "router needs >= 1 registered tenant");
  by_key_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) by_key_[shards_[i]] = i;
}

const TenantKey& ShardRouter::shard_key(std::size_t shard) const {
  CAL_ENSURE(shard < shards_.size(),
             "shard " << shard << " out of " << shards_.size());
  return shards_[shard];
}

RouteDecision ShardRouter::route(const TenantKey& request) const {
  // One resolution policy for the whole stack (see resolve_tenant): the
  // router only adds the resolved-key -> shard-id mapping on top.
  const auto res =
      resolve_tenant(request, fallbacks_, [this](const TenantKey& k) {
        return by_key_.find(k) != by_key_.end();
      });
  if (res.kind == ModelRegistry::Resolution::Kind::Miss) return {};
  return {res.kind == ModelRegistry::Resolution::Kind::Exact
              ? RouteDecision::Status::Exact
              : RouteDecision::Status::Fallback,
          by_key_.at(res.resolved), res.resolved};
}

}  // namespace cal::serve
