#include "serve/service.hpp"

#include "common/ensure.hpp"

namespace cal::serve {

const char* to_string(ServeStatus s) {
  switch (s) {
    case ServeStatus::Served: return "served";
    case ServeStatus::Denied: return "denied";
    case ServeStatus::Expired: return "expired";
    case ServeStatus::Faulted: return "faulted";
    case ServeStatus::Dropped: return "dropped";
    case ServeStatus::ShutDown: return "shutdown";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// DriftMonitor
// ---------------------------------------------------------------------------

DriftMonitor::DriftMonitor(DriftPolicy policy) : policy_(policy) {
  CAL_ENSURE(policy_.slope_factor >= 1.0,
             "drift slope factor must be >= 1, got " << policy_.slope_factor);
  CAL_ENSURE(!(policy_.level < 0.0),
             "drift level must be non-negative, got " << policy_.level);
}

bool DriftMonitor::record(double distance) {
  if (!enabled()) return false;
  MutexLock lock(mu_);
  current_sum_ += distance;
  if (++current_n_ < policy_.window) return false;
  const double mean = current_sum_ / static_cast<double>(current_n_);
  current_sum_ = 0.0;
  current_n_ = 0;
  last_window_mean_ = mean;
  ++windows_completed_;
  if (baseline_mean_ < 0.0) {
    // First window: establish the baseline. No flush even above the
    // level — the lane just started, so the cache holds nothing stale.
    baseline_mean_ = mean;
    return false;
  }
  // The level fires on the CROSSING (baseline below, window above), not
  // on the steady state: a persistent shift that settles above the level
  // flushes once and then serves normally from the rebaselined map,
  // matching the slope trigger's flush-once semantics.
  const bool flush = mean > policy_.slope_factor * baseline_mean_ ||
                     (mean > policy_.level &&
                      !(baseline_mean_ > policy_.level));
  // Rebaseline ONLY on flush: the drifted distribution is then the
  // shard's new normal, so a persistent shift flushes once instead of on
  // every window. Between flushes the baseline stays pinned — gradual
  // drift that creeps below slope_factor per window still accumulates
  // against the pinned baseline and flushes when the cache contents have
  // drifted materially, rather than ratcheting the baseline up with it
  // and never flushing at all.
  if (flush) baseline_mean_ = mean;
  return flush;
}

void DriftMonitor::reset() {
  MutexLock lock(mu_);
  baseline_mean_ = -1.0;
  last_window_mean_ = -1.0;
  windows_completed_ = 0;
  current_sum_ = 0.0;
  current_n_ = 0;
}

DriftTrend DriftMonitor::snapshot() const {
  MutexLock lock(mu_);
  DriftTrend t;
  t.enabled = policy_.window > 0;
  t.window = policy_.window;
  t.baseline_mean = baseline_mean_;
  t.last_window_mean = last_window_mean_;
  t.partial_n = current_n_;
  t.partial_mean =
      current_n_ > 0 ? current_sum_ / static_cast<double>(current_n_) : 0.0;
  t.windows_completed = windows_completed_;
  return t;
}

}  // namespace cal::serve
