#include "serve/service.hpp"

#include <utility>

#include "common/ensure.hpp"
#include "serve/engine.hpp"

namespace cal::serve {
namespace {

/// The one tenant the single-tenant shim registers on its private engine.
const TenantKey& shim_key() {
  static const TenantKey key{"default", 0, std::string{}};
  return key;
}

}  // namespace

// ---------------------------------------------------------------------------
// DriftMonitor
// ---------------------------------------------------------------------------

DriftMonitor::DriftMonitor(DriftPolicy policy) : policy_(policy) {
  CAL_ENSURE(policy_.slope_factor >= 1.0,
             "drift slope factor must be >= 1, got " << policy_.slope_factor);
  CAL_ENSURE(!(policy_.level < 0.0),
             "drift level must be non-negative, got " << policy_.level);
}

bool DriftMonitor::record(double distance) {
  if (!enabled()) return false;
  std::lock_guard lock(mu_);
  current_sum_ += distance;
  if (++current_n_ < policy_.window) return false;
  const double mean = current_sum_ / static_cast<double>(current_n_);
  current_sum_ = 0.0;
  current_n_ = 0;
  last_window_mean_ = mean;
  ++windows_completed_;
  if (baseline_mean_ < 0.0) {
    // First window: establish the baseline. No flush even above the
    // level — the lane just started, so the cache holds nothing stale.
    baseline_mean_ = mean;
    return false;
  }
  // The level fires on the CROSSING (baseline below, window above), not
  // on the steady state: a persistent shift that settles above the level
  // flushes once and then serves normally from the rebaselined map,
  // matching the slope trigger's flush-once semantics.
  const bool flush = mean > policy_.slope_factor * baseline_mean_ ||
                     (mean > policy_.level &&
                      !(baseline_mean_ > policy_.level));
  // Rebaseline ONLY on flush: the drifted distribution is then the
  // shard's new normal, so a persistent shift flushes once instead of on
  // every window. Between flushes the baseline stays pinned — gradual
  // drift that creeps below slope_factor per window still accumulates
  // against the pinned baseline and flushes when the cache contents have
  // drifted materially, rather than ratcheting the baseline up with it
  // and never flushing at all.
  if (flush) baseline_mean_ = mean;
  return flush;
}

void DriftMonitor::reset() {
  std::lock_guard lock(mu_);
  baseline_mean_ = -1.0;
  last_window_mean_ = -1.0;
  windows_completed_ = 0;
  current_sum_ = 0.0;
  current_n_ = 0;
}

DriftTrend DriftMonitor::snapshot() const {
  std::lock_guard lock(mu_);
  DriftTrend t;
  t.enabled = policy_.window > 0;
  t.window = policy_.window;
  t.baseline_mean = baseline_mean_;
  t.last_window_mean = last_window_mean_;
  t.partial_n = current_n_;
  t.partial_mean =
      current_n_ > 0 ? current_sum_ / static_cast<double>(current_n_) : 0.0;
  t.windows_completed = windows_completed_;
  return t;
}

// ---------------------------------------------------------------------------
// LocalizationService — DEPRECATED single-tenant shim over ServeEngine
// ---------------------------------------------------------------------------

LocalizationService::LocalizationService(ReplicaFactory factory,
                                         std::size_t num_aps, Tensor anchors,
                                         ServiceConfig cfg)
    : LocalizationService(std::move(factory), nullptr, num_aps,
                          std::move(anchors), cfg) {}

LocalizationService::LocalizationService(baselines::ILocalizer& model,
                                         std::size_t num_aps, Tensor anchors,
                                         ServiceConfig cfg)
    : LocalizationService(ReplicaFactory{}, &model, num_aps,
                          std::move(anchors), cfg) {}

LocalizationService::LocalizationService(ReplicaFactory factory,
                                         baselines::ILocalizer* shared_model,
                                         std::size_t num_aps, Tensor anchors,
                                         ServiceConfig cfg)
    : cfg_(cfg), num_aps_(num_aps) {
  ModelRegistry registry;
  TenantSpec spec;
  spec.factory = std::move(factory);
  spec.shared_model = shared_model;
  spec.num_aps = num_aps;
  spec.anchors = std::move(anchors);
  spec.service = cfg;
  registry.register_tenant(shim_key(), std::move(spec));
  EngineConfig engine_cfg;
  // The historical contract: num_workers private threads for this lane.
  engine_cfg.pool_size = cfg.num_workers;
  engine_cfg.seed = cfg.seed;
  engine_ = std::make_unique<ServeEngine>(registry.publish(), engine_cfg);
}

LocalizationService::~LocalizationService() { shutdown(); }

std::future<ServeResult> LocalizationService::submit(
    std::vector<float> fingerprint_normalized) {
  // The legacy API blocked the producer while the lane was saturated;
  // submit_blocking emulates that backpressure by retrying admission.
  EngineSubmission sub = engine_->submit_blocking(
      shim_key(), std::move(fingerprint_normalized));
  CAL_INVARIANT(sub.admission == Admission::Accepted,
                "single-tenant shim route rejected");
  return std::move(sub.result);
}

void LocalizationService::shutdown() { engine_->shutdown(); }

ServiceStats LocalizationService::stats() const {
  return engine_->stats().per_tenant.front().stats;
}

void LocalizationService::reset_telemetry_clock() {
  engine_->reset_telemetry_clocks();
}

const FingerprintCache& LocalizationService::cache() const {
  return engine_->tenant_cache(shim_key());
}

const AnchorScreen& LocalizationService::screen() const {
  return engine_->tenant_screen(shim_key());
}

DriftTrend LocalizationService::drift_trend() const {
  return engine_->tenant_drift(shim_key());
}

}  // namespace cal::serve
