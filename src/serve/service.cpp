#include "serve/service.hpp"

#include <chrono>
#include <cmath>
#include <utility>

#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace cal::serve {
namespace {

AnchorScreen make_screen(Tensor anchors, std::size_t num_aps,
                         const ScreeningThresholds& thresholds) {
  if (anchors.empty()) return AnchorScreen{};
  CAL_ENSURE(anchors.rank() == 2 && anchors.cols() == num_aps,
             "anchor database must be (M, " << num_aps << "), got "
                                            << anchors.shape_str());
  return AnchorScreen(std::move(anchors), thresholds);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

}  // namespace

DriftMonitor::DriftMonitor(DriftPolicy policy) : policy_(policy) {
  CAL_ENSURE(policy_.slope_factor >= 1.0,
             "drift slope factor must be >= 1, got " << policy_.slope_factor);
  CAL_ENSURE(!(policy_.level < 0.0),
             "drift level must be non-negative, got " << policy_.level);
}

bool DriftMonitor::record(double distance) {
  if (!enabled()) return false;
  std::lock_guard lock(mu_);
  current_sum_ += distance;
  if (++current_n_ < policy_.window) return false;
  const double mean = current_sum_ / static_cast<double>(current_n_);
  current_sum_ = 0.0;
  current_n_ = 0;
  if (baseline_mean_ < 0.0) {
    // First window: establish the baseline. No flush even above the
    // level — the lane just started, so the cache holds nothing stale.
    baseline_mean_ = mean;
    return false;
  }
  // The level fires on the CROSSING (baseline below, window above), not
  // on the steady state: a persistent shift that settles above the level
  // flushes once and then serves normally from the rebaselined map,
  // matching the slope trigger's flush-once semantics.
  const bool flush = mean > policy_.slope_factor * baseline_mean_ ||
                     (mean > policy_.level &&
                      !(baseline_mean_ > policy_.level));
  // Rebaseline ONLY on flush: the drifted distribution is then the
  // shard's new normal, so a persistent shift flushes once instead of on
  // every window. Between flushes the baseline stays pinned — gradual
  // drift that creeps below slope_factor per window still accumulates
  // against the pinned baseline and flushes when the cache contents have
  // drifted materially, rather than ratcheting the baseline up with it
  // and never flushing at all.
  if (flush) baseline_mean_ = mean;
  return flush;
}

LocalizationService::LocalizationService(ReplicaFactory factory,
                                         std::size_t num_aps, Tensor anchors,
                                         ServiceConfig cfg)
    : LocalizationService(std::move(factory), nullptr, num_aps,
                          std::move(anchors), cfg) {}

LocalizationService::LocalizationService(baselines::ILocalizer& model,
                                         std::size_t num_aps, Tensor anchors,
                                         ServiceConfig cfg)
    : LocalizationService(ReplicaFactory{}, &model, num_aps,
                          std::move(anchors), cfg) {}

LocalizationService::LocalizationService(ReplicaFactory factory,
                                         baselines::ILocalizer* shared_model,
                                         std::size_t num_aps, Tensor anchors,
                                         ServiceConfig cfg)
    : cfg_(cfg),
      num_aps_(num_aps),
      screen_(make_screen(std::move(anchors), num_aps, cfg.screening)),
      cache_(cfg.cache_capacity, cfg.cache_quant_step),
      drift_(cfg.drift),
      queue_(cfg.queue_capacity) {
  CAL_ENSURE(num_aps_ > 0, "service needs num_aps > 0");
  CAL_ENSURE(cfg_.num_workers > 0, "service needs >= 1 worker");
  CAL_ENSURE(cfg_.max_batch > 0, "service needs max_batch >= 1");
  CAL_ENSURE(cfg_.cache_audit_rate >= 0.0 && cfg_.cache_audit_rate <= 1.0,
             "cache audit rate out of [0,1]: " << cfg_.cache_audit_rate);
  // Drift tracking feeds on screening distances; with screening disabled
  // a configured DriftPolicy would be silently inert and stale cache
  // entries would never flush — surface the misconfiguration instead.
  CAL_ENSURE(!drift_.enabled() || screen_.enabled(),
             "drift policy configured but screening is disabled (no anchor "
             "database)");
  if (factory) {
    replicas_.reserve(cfg_.num_workers);
    for (std::size_t i = 0; i < cfg_.num_workers; ++i) {
      replicas_.push_back(factory());
      CAL_ENSURE(replicas_.back() != nullptr,
                 "replica factory returned nullptr for worker " << i);
    }
  } else {
    shared_model_ = shared_model;
    CAL_ENSURE(shared_model_ != nullptr, "service needs a model");
  }
  workers_.reserve(cfg_.num_workers);
  try {
    for (std::size_t i = 0; i < cfg_.num_workers; ++i)
      workers_.emplace_back(&LocalizationService::worker_loop, this, i);
  } catch (...) {
    // Thread spawn can fail (EAGAIN under resource exhaustion). Unwinding
    // with joinable threads would std::terminate, so stop the ones that
    // started before rethrowing.
    queue_.close();
    for (auto& w : workers_)
      if (w.joinable()) w.join();
    throw;
  }
}

LocalizationService::~LocalizationService() { shutdown(); }

std::future<ServeResult> LocalizationService::submit(
    std::vector<float> fingerprint_normalized) {
  CAL_ENSURE(fingerprint_normalized.size() == num_aps_,
             "fingerprint has " << fingerprint_normalized.size()
                                << " APs, service expects " << num_aps_);
  // Untrusted channel: a NaN/Inf fingerprint would poison the batched
  // forward pass (the GEMM kernels propagate non-finites by contract) and
  // feed std::lround garbage in the cache-key quantizer, so reject it at
  // the door — same policy as the CSV loader.
  for (std::size_t i = 0; i < fingerprint_normalized.size(); ++i)
    CAL_ENSURE(std::isfinite(fingerprint_normalized[i]),
               "fingerprint AP " << i << " is non-finite");
  Pending pending;
  pending.fingerprint = std::move(fingerprint_normalized);
  pending.enqueued_at = std::chrono::steady_clock::now();
  auto future = pending.promise.get_future();
  // Count before the push: a worker may complete the request the instant
  // it lands, and `completed` must never be observed above `submitted`.
  stats_.record_submitted();
  const bool accepted = queue_.push(std::move(pending));
  if (!accepted) {
    stats_.record_submit_rejected();
    CAL_ENSURE(accepted, "submit() after service shutdown");
  }
  return future;
}

void LocalizationService::shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.close();
    for (auto& w : workers_)
      if (w.joinable()) w.join();
  });
}

std::vector<std::size_t> LocalizationService::run_inference(
    std::size_t worker_index, const Tensor& batch) {
  if (shared_model_ != nullptr) {
    // ILocalizer::predict is not required to be thread-safe; serialize.
    std::lock_guard lock(shared_model_mu_);
    return shared_model_->predict(batch);
  }
  return replicas_[worker_index]->predict(batch);
}

void LocalizationService::worker_loop(std::size_t worker_index) {
  // Private randomness stream for this worker (Rng is not shareable
  // across threads): deterministic in (cfg.seed, worker_index).
  Rng rng = Rng(cfg_.seed).fork(worker_index + 1);

  struct Slot {
    Pending req;
    ServeResult res;
    FingerprintCache::Key key;
    ShardIndexProbe probe;
    bool infer = false;
    bool audited = false;
    bool audit_mismatch = false;
    std::size_t cached_rp = 0;
    bool fulfilled = false;
  };

  while (true) {
    auto batch = queue_.pop_batch(cfg_.max_batch);
    if (batch.empty()) return;  // closed and drained
    stats_.record_batch(batch.size());

    std::vector<Slot> slots;
    slots.reserve(batch.size());
    for (auto& pending : batch) {
      Slot s;
      s.req = std::move(pending);
      slots.push_back(std::move(s));
    }

    try {
      // Phase 1 — per-request screening and cache probe.
      std::vector<std::size_t> infer_rows;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        Slot& s = slots[i];
        s.res.anchor_distance = screen_.distance(s.req.fingerprint, &s.probe);
        s.res.verdict = screen_.classify(s.res.anchor_distance);
        if (s.res.verdict == Verdict::Reject) continue;  // never localised
        // Drift tracking sees only non-rejected traffic: rejected
        // fingerprints are off-manifold adversaries, not a moved radio
        // map, and must not be able to poison the trend into flushing.
        if (screen_.enabled() && drift_.record(s.res.anchor_distance)) {
          cache_.clear();
          stats_.record_drift_flush();
        }
        if (cache_.enabled()) {
          s.key = cache_.make_key(s.req.fingerprint);
          if (const auto hit = cache_.lookup(s.key)) {
            if (cfg_.cache_audit_rate > 0.0 &&
                rng.bernoulli(cfg_.cache_audit_rate)) {
              s.audited = true;
              s.cached_rp = *hit;
              s.infer = true;  // re-infer to verify the cached answer
              infer_rows.push_back(i);
            } else {
              s.res.rp = *hit;
              s.res.localized = true;
              s.res.from_cache = true;
            }
            continue;
          }
        }
        s.infer = true;
        infer_rows.push_back(i);
      }

      // Phase 2 — one batched forward pass for every surviving request.
      if (!infer_rows.empty()) {
        Tensor xb({infer_rows.size(), num_aps_});
        for (std::size_t k = 0; k < infer_rows.size(); ++k) {
          const auto& fp = slots[infer_rows[k]].req.fingerprint;
          std::copy(fp.begin(), fp.end(), xb.data() + k * num_aps_);
        }
        const auto rps = run_inference(worker_index, xb);
        CAL_INVARIANT(rps.size() == infer_rows.size(),
                      "predict returned " << rps.size() << " labels for "
                                          << infer_rows.size() << " rows");
        for (std::size_t k = 0; k < infer_rows.size(); ++k) {
          Slot& s = slots[infer_rows[k]];
          s.res.rp = rps[k];
          s.res.localized = true;
          if (s.audited) s.audit_mismatch = (s.cached_rp != rps[k]);
          if (cache_.enabled()) cache_.insert(s.key, rps[k]);
        }
      }

      // Phase 3 — fulfil promises and record telemetry.
      for (Slot& s : slots) {
        s.res.latency_ms = ms_since(s.req.enqueued_at);
        ResultRecord rec;
        rec.latency_ms = s.res.latency_ms;
        rec.verdict = s.res.verdict;
        rec.from_cache = s.res.from_cache;
        rec.audited = s.audited;
        rec.audit_mismatch = s.audit_mismatch;
        rec.screened = screen_.enabled();
        rec.anchors_scanned = s.probe.scanned;
        rec.anchors_pruned = s.probe.pruned;
        stats_.record_result(rec);
        s.req.promise.set_value(s.res);
        s.fulfilled = true;
      }
    } catch (...) {
      // A model/bookkeeping failure must not strand waiting clients.
      for (Slot& s : slots)
        if (!s.fulfilled) s.req.promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace cal::serve
