// Thread-safe LRU cache over quantized fingerprints.
//
// Stationary devices re-scan the same spot every few seconds, so repeat
// (near-identical) fingerprints are the common case in online serving.
// Exact float vectors almost never repeat, though: RSS jitter moves every
// entry by fractions of a dB. Quantizing the normalised [0,1] vector to a
// fixed grid (default 0.005 ⇔ 0.5 dB) makes "the same scan, re-measured"
// hash to the same key while distinct locations stay distinct — the grid
// is far coarser than measurement noise but far finer than the >=1 m RP
// spacing. Collisions map a fingerprint to the answer of a neighbour
// within half a quantization step, which is below the localisation noise
// floor; the service can additionally audit a random sample of hits
// against the model (see ServiceConfig::cache_audit_rate).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hot_path_annotations.hpp"
#include "common/thread_annotations.hpp"

namespace cal::serve {

/// Quantized-fingerprint -> RP-prediction LRU map. All public methods are
/// safe to call from multiple threads concurrently.
class FingerprintCache {
 public:
  using Key = std::vector<std::int32_t>;

  /// capacity == 0 disables the cache (lookups miss, inserts drop).
  FingerprintCache(std::size_t capacity, float quant_step);

  bool enabled() const { return capacity_ > 0; }
  std::size_t capacity() const { return capacity_; }
  float quant_step() const { return quant_step_; }

  /// Quantize a normalised fingerprint to its grid key.
  Key make_key(std::span<const float> fingerprint) const;

  /// Cached RP for this key, bumping it to most-recently-used. Counts a
  /// hit or a miss.
  CAL_HOT_PATH CAL_NOALLOC
  std::optional<std::size_t> lookup(const Key& key) CAL_EXCLUDES(mu_);

  /// Insert (or refresh) a prediction, evicting the least-recently-used
  /// entry when full.
  CAL_HOT_PATH
  void insert(const Key& key, std::size_t rp) CAL_EXCLUDES(mu_);

  /// Drop every entry (hit/miss counters survive). The serving layer calls
  /// this when the screening-distance trend says the radio map has drifted
  /// and the cached RPs describe yesterday's building.
  void clear() CAL_EXCLUDES(mu_);

  std::size_t size() const CAL_EXCLUDES(mu_);
  std::size_t hits() const CAL_EXCLUDES(mu_);
  std::size_t misses() const CAL_EXCLUDES(mu_);

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  using Entry = std::pair<Key, std::size_t>;  // (key, predicted RP)

  std::size_t capacity_;
  float quant_step_;
  mutable Mutex mu_;
  std::list<Entry> order_ CAL_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_
      CAL_GUARDED_BY(mu_);
  std::size_t hits_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t misses_ CAL_GUARDED_BY(mu_) = 0;
};

}  // namespace cal::serve
