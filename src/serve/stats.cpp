#include "serve/stats.hpp"

#include <algorithm>
#include <sstream>

namespace cal::serve {

std::string ServiceStats::str() const {
  std::ostringstream os;
  os << "requests: " << completed << "/" << submitted << " completed, "
     << flagged << " flagged, " << rejected << " rejected\n";
  if (over_quota + queue_full + breaker_denied > 0)
    os << "admission: " << over_quota << " over quota, " << queue_full
       << " queue-full, " << breaker_denied << " breaker-open\n";
  if (expired + faulted + shed > 0)
    os << "faults:   " << expired << " expired, " << faulted << " faulted, "
       << shed << " shed\n";
  os << "cache:    " << cache_hits << " hits";
  if (cache_audits > 0)
    os << " (" << cache_audits << " audited, " << cache_audit_mismatches
       << " mismatched)";
  if (drift_flushes > 0) os << ", " << drift_flushes << " drift flushes";
  os << "\n";
  if (screened > 0)
    os << "screen:   " << screened << " screened, mean "
       << mean_anchors_scanned << " anchors scanned ("
       << anchors_pruned << " pruned total)\n";
  os << "batching: " << batches << " micro-batches, mean " << mean_batch_size
     << ", largest " << largest_batch << "\n";
  os << "latency:  mean " << latency_mean_ms << " ms, p50 " << latency_p50_ms
     << " ms, p95 " << latency_p95_ms << " ms, p99 " << latency_p99_ms
     << " ms\n";
  os << "rate:     " << throughput_rps << " req/s over " << wall_seconds
     << " s";
  return os.str();
}

ServiceStats aggregate_stats(std::span<const ServiceStats> shards) {
  ServiceStats agg;
  for (const ServiceStats& s : shards) {
    agg.submitted += s.submitted;
    agg.completed += s.completed;
    agg.over_quota += s.over_quota;
    agg.queue_full += s.queue_full;
    agg.breaker_denied += s.breaker_denied;
    agg.expired += s.expired;
    agg.faulted += s.faulted;
    agg.shed += s.shed;
    agg.cache_hits += s.cache_hits;
    agg.cache_audits += s.cache_audits;
    agg.cache_audit_mismatches += s.cache_audit_mismatches;
    agg.flagged += s.flagged;
    agg.rejected += s.rejected;
    agg.screened += s.screened;
    agg.anchors_scanned += s.anchors_scanned;
    agg.anchors_pruned += s.anchors_pruned;
    agg.drift_flushes += s.drift_flushes;
    agg.batches += s.batches;
    agg.largest_batch = std::max(agg.largest_batch, s.largest_batch);
    agg.wall_seconds = std::max(agg.wall_seconds, s.wall_seconds);
    agg.latency.merge(s.latency);
  }
  if (agg.latency.count() > 0) {
    agg.latency_mean_ms = agg.latency.mean();
    agg.latency_p50_ms = agg.latency.quantile(0.50);
    agg.latency_p95_ms = agg.latency.quantile(0.95);
    agg.latency_p99_ms = agg.latency.quantile(0.99);
  }
  if (agg.screened > 0)
    agg.mean_anchors_scanned = static_cast<double>(agg.anchors_scanned) /
                               static_cast<double>(agg.screened);
  if (agg.batches > 0) {
    // Recover summed batch items from each shard's mean to keep the
    // aggregate mean exact.
    double items = 0.0;
    for (const ServiceStats& s : shards)
      items += s.mean_batch_size * static_cast<double>(s.batches);
    agg.mean_batch_size = items / static_cast<double>(agg.batches);
  }
  if (agg.wall_seconds > 0.0)
    agg.throughput_rps =
        static_cast<double>(agg.completed) / agg.wall_seconds;
  return agg;
}

StatsCollector::StatsCollector() : start_(std::chrono::steady_clock::now()) {}

void StatsCollector::record_submitted() {
  MutexLock lock(mu_);
  ++submitted_;
}

void StatsCollector::record_submit_rejected() {
  MutexLock lock(mu_);
  --submitted_;
}

void StatsCollector::record_over_quota() {
  MutexLock lock(mu_);
  ++over_quota_;
}

void StatsCollector::record_queue_full() {
  MutexLock lock(mu_);
  ++queue_full_;
}

void StatsCollector::record_breaker_denied() {
  MutexLock lock(mu_);
  ++breaker_denied_;
}

void StatsCollector::record_expired(std::size_t n) {
  MutexLock lock(mu_);
  expired_ += n;
}

void StatsCollector::record_faulted(std::size_t n) {
  MutexLock lock(mu_);
  faulted_ += n;
}

void StatsCollector::record_shed() {
  MutexLock lock(mu_);
  --submitted_;
  ++shed_;
}

void StatsCollector::record_batch(std::size_t batch_size) {
  MutexLock lock(mu_);
  ++batches_;
  batched_items_ += batch_size;
  largest_batch_ = std::max(largest_batch_, batch_size);
}

void StatsCollector::record_result(const ResultRecord& r) {
  MutexLock lock(mu_);
  ++completed_;
  latency_.record(r.latency_ms);
  if (r.from_cache) ++cache_hits_;
  if (r.audited) ++cache_audits_;
  if (r.audit_mismatch) ++cache_audit_mismatches_;
  if (r.verdict == Verdict::Flag) ++flagged_;
  if (r.verdict == Verdict::Reject) ++rejected_;
  if (r.screened) {
    ++screened_;
    anchors_scanned_ += r.anchors_scanned;
    anchors_pruned_ += r.anchors_pruned;
  }
}

void StatsCollector::record_drift_flush() {
  MutexLock lock(mu_);
  ++drift_flushes_;
}

void StatsCollector::reset_clock() {
  MutexLock lock(mu_);
  start_ = std::chrono::steady_clock::now();
}

ServiceStats StatsCollector::snapshot() const {
  MutexLock lock(mu_);
  ServiceStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.over_quota = over_quota_;
  s.queue_full = queue_full_;
  s.breaker_denied = breaker_denied_;
  s.expired = expired_;
  s.faulted = faulted_;
  s.shed = shed_;
  s.cache_hits = cache_hits_;
  s.cache_audits = cache_audits_;
  s.cache_audit_mismatches = cache_audit_mismatches_;
  s.flagged = flagged_;
  s.rejected = rejected_;
  s.screened = screened_;
  s.anchors_scanned = anchors_scanned_;
  s.anchors_pruned = anchors_pruned_;
  if (screened_ > 0)
    s.mean_anchors_scanned = static_cast<double>(anchors_scanned_) /
                             static_cast<double>(screened_);
  s.drift_flushes = drift_flushes_;
  s.batches = batches_;
  s.largest_batch = largest_batch_;
  if (batches_ > 0)
    s.mean_batch_size =
        static_cast<double>(batched_items_) / static_cast<double>(batches_);
  s.latency = latency_;
  if (latency_.count() > 0) {
    s.latency_mean_ms = latency_.mean();
    s.latency_p50_ms = latency_.quantile(0.50);
    s.latency_p95_ms = latency_.quantile(0.95);
    s.latency_p99_ms = latency_.quantile(0.99);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  s.wall_seconds = std::chrono::duration<double>(elapsed).count();
  if (s.wall_seconds > 0.0)
    s.throughput_rps = static_cast<double>(completed_) / s.wall_seconds;
  return s;
}

double StatsCollector::latency_p99_ms() const {
  MutexLock lock(mu_);
  return latency_.quantile(0.99);
}

}  // namespace cal::serve
