#include "serve/stats.hpp"

#include <algorithm>
#include <sstream>

#include "common/stats.hpp"

namespace cal::serve {

std::string ServiceStats::str() const {
  std::ostringstream os;
  os << "requests: " << completed << "/" << submitted << " completed, "
     << flagged << " flagged, " << rejected << " rejected\n";
  os << "cache:    " << cache_hits << " hits";
  if (cache_audits > 0)
    os << " (" << cache_audits << " audited, " << cache_audit_mismatches
       << " mismatched)";
  os << "\n";
  os << "batching: " << batches << " micro-batches, mean " << mean_batch_size
     << ", largest " << largest_batch << "\n";
  os << "latency:  mean " << latency_mean_ms << " ms, p50 " << latency_p50_ms
     << " ms, p95 " << latency_p95_ms << " ms, p99 " << latency_p99_ms
     << " ms\n";
  os << "rate:     " << throughput_rps << " req/s over " << wall_seconds
     << " s";
  return os.str();
}

StatsCollector::StatsCollector() : start_(std::chrono::steady_clock::now()) {}

void StatsCollector::record_submitted() {
  std::lock_guard lock(mu_);
  ++submitted_;
}

void StatsCollector::record_submit_rejected() {
  std::lock_guard lock(mu_);
  --submitted_;
}

void StatsCollector::record_batch(std::size_t batch_size) {
  std::lock_guard lock(mu_);
  ++batches_;
  batched_items_ += batch_size;
  largest_batch_ = std::max(largest_batch_, batch_size);
}

void StatsCollector::record_result(double latency_ms, Verdict verdict,
                                   bool from_cache, bool audited,
                                   bool audit_mismatch) {
  std::lock_guard lock(mu_);
  ++completed_;
  latency_sum_ms_ += latency_ms;
  if (latencies_ms_.size() < kLatencyWindow) {
    latencies_ms_.push_back(latency_ms);
  } else {  // full: overwrite the oldest sample (order is irrelevant for
            // percentiles, which sort a copy)
    latencies_ms_[latency_wrap_] = latency_ms;
    latency_wrap_ = (latency_wrap_ + 1) % kLatencyWindow;
  }
  if (from_cache) ++cache_hits_;
  if (audited) ++cache_audits_;
  if (audit_mismatch) ++cache_audit_mismatches_;
  if (verdict == Verdict::Flag) ++flagged_;
  if (verdict == Verdict::Reject) ++rejected_;
}

ServiceStats StatsCollector::snapshot() const {
  std::lock_guard lock(mu_);
  ServiceStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.cache_hits = cache_hits_;
  s.cache_audits = cache_audits_;
  s.cache_audit_mismatches = cache_audit_mismatches_;
  s.flagged = flagged_;
  s.rejected = rejected_;
  s.batches = batches_;
  s.largest_batch = largest_batch_;
  if (batches_ > 0)
    s.mean_batch_size =
        static_cast<double>(batched_items_) / static_cast<double>(batches_);
  if (!latencies_ms_.empty()) {
    s.latency_mean_ms = latency_sum_ms_ / static_cast<double>(completed_);
    s.latency_p50_ms = percentile(latencies_ms_, 50.0);
    s.latency_p95_ms = percentile(latencies_ms_, 95.0);
    s.latency_p99_ms = percentile(latencies_ms_, 99.0);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  s.wall_seconds = std::chrono::duration<double>(elapsed).count();
  if (s.wall_seconds > 0.0)
    s.throughput_rps = static_cast<double>(completed_) / s.wall_seconds;
  return s;
}

}  // namespace cal::serve
