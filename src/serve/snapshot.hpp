// Immutable deployment snapshots: the RCU unit of the serving engine.
//
// ModelRegistry::publish() materialises the mutable tenant catalogue into
// a DeploymentSnapshot — tenants in deterministic shard order, each with
// its built replica pool, anchor screen, lane config, spec version, and
// the profile fallback chain — stamped with a monotonically increasing
// epoch. ServeEngine holds a shared_ptr to the current snapshot and swaps
// it atomically on deploy(): in-flight batches keep the old snapshot
// alive through their own shared_ptr and finish on the replicas they
// checked out, while new submissions route on the new snapshot. Nothing
// in a snapshot is ever mutated after publish() except the per-tenant
// replica-slot free list, which is runtime checkout scratch (mutex-
// guarded, engine-internal) rather than deployment state.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "serve/registry.hpp"

namespace cal::serve {

/// Outcome of routing one request's tenant metadata.
struct RouteDecision {
  enum class Status { Exact, Fallback, Reject };
  Status status = Status::Reject;
  std::size_t shard = 0;  ///< tenant index; valid unless status == Reject
  TenantKey resolved;     ///< tenant actually serving; unless Reject
};

std::string to_string(RouteDecision::Status s);

/// One tenant's published deployment: everything immutable a pool worker
/// needs to execute a micro-batch for this tenant (the mutable lane state
/// — cache, drift monitor, stats, sub-queue, quota bucket — lives with
/// the engine and survives snapshot swaps).
class TenantDeployment {
 public:
  TenantDeployment() = default;
  TenantDeployment(const TenantDeployment&) = delete;
  TenantDeployment& operator=(const TenantDeployment&) = delete;

  TenantKey key;
  std::uint64_t version = 0;  ///< registry spec version at publish()
  std::size_t num_aps = 0;
  ServiceConfig lane;
  AnchorScreen screen;
  /// Precision the replicas serve at (Int8 ⇒ replicas are quantized
  /// copies built at publish() time).
  Precision precision = Precision::Fp32;
  /// Total resident weight bytes across this tenant's replicas
  /// (ILocalizer::weight_bytes summed at publish(); 0 when the model
  /// family does not report a footprint). Exported per tenant by
  /// ServeEngine::metrics() so quantization memory wins are observable.
  std::size_t weight_bytes = 0;

  /// Checkout one replica slot, or -1 when every slot is busy (the
  /// engine then leaves this tenant's queue for a later pass — at most
  /// `slots()` pool workers run one tenant concurrently). Thread-safe.
  int try_checkout() const CAL_EXCLUDES(slot_mu_);
  /// Return a slot obtained from try_checkout(). Quarantined slots are
  /// retired instead of re-entering the free list.
  void release(std::size_t slot) const CAL_EXCLUDES(slot_mu_);

  /// Remove `slot` from the checkout rotation permanently — the engine
  /// quarantines a replica whose predict() threw for every row of a
  /// batch. The caller still release()s the slot afterwards (release
  /// retires it). Quarantine heals when the tenant's deployment is
  /// rebuilt: a version-bump publish() constructs a fresh
  /// TenantDeployment with fresh replicas and a full free list, while an
  /// identical republish reuses this object — correctly keeping the same
  /// broken replicas out of rotation. Idempotent; thread-safe.
  void quarantine(std::size_t slot) const CAL_EXCLUDES(slot_mu_);

  std::size_t slots() const { return replicas_.size(); }
  /// Slots currently checked out and serving (excludes quarantined ones).
  std::size_t busy_slots() const CAL_EXCLUDES(slot_mu_);
  /// Slots retired from rotation by quarantine(). Lock-free (relaxed):
  /// submit() reads this per request to fast-fail fully-broken tenants.
  std::size_t quarantined_slots() const {
    return quarantined_count_.load(std::memory_order_relaxed);
  }
  /// Slots still in rotation (total minus quarantined).
  std::size_t healthy_slots() const {
    const std::size_t q = quarantined_slots();
    return replicas_.size() > q ? replicas_.size() - q : 0;
  }
  baselines::ILocalizer& replica(std::size_t slot) const {
    return *replicas_[slot];
  }

  /// Non-null for borrowed shared models: the registry hands every
  /// deployment of the same ILocalizer* the SAME mutex, so inference
  /// stays serialized even when two snapshots of a reloaded tenant are
  /// briefly in flight at once (slot checkout alone only serializes
  /// within one deployment).
  Mutex* shared_serialization() const { return shared_mu_.get(); }

 private:
  friend class ModelRegistry;

  /// One independent trained replica per slot (raw entries may borrow a
  /// caller-owned shared model, in which case there is exactly one slot
  /// and the checkout discipline serializes inference on it).
  std::vector<baselines::ILocalizer*> replicas_;
  std::vector<std::unique_ptr<baselines::ILocalizer>> owned_;
  std::shared_ptr<Mutex> shared_mu_;  ///< set iff borrowed model
  mutable Mutex slot_mu_;
  mutable std::vector<std::size_t> free_slots_ CAL_GUARDED_BY(slot_mu_);
  /// Per-slot quarantine flags (sized lazily on first quarantine).
  mutable std::vector<char> quarantined_ CAL_GUARDED_BY(slot_mu_);
  mutable std::atomic<std::size_t> quarantined_count_{0};
};

/// The immutable publish() product: tenants in shard order plus routing.
class DeploymentSnapshot {
 public:
  DeploymentSnapshot() = default;
  DeploymentSnapshot(const DeploymentSnapshot&) = delete;
  DeploymentSnapshot& operator=(const DeploymentSnapshot&) = delete;

  /// Monotonically increasing per registry; stamps engine telemetry so
  /// operators can see which deployment is live.
  std::uint64_t epoch() const { return epoch_; }

  std::size_t num_tenants() const { return tenants_.size(); }

  /// Tenants are str()-sorted by key — the same deterministic shard
  /// numbering ModelRegistry::keys() and ShardRouter use.
  const TenantDeployment& tenant(std::size_t shard) const;

  const TenantDeployment* find(const TenantKey& key) const;

  /// Exact → profile-fallback-chain → deterministic reject, over this
  /// snapshot's key set (resolve_tenant, the one policy shared with the
  /// registry and router).
  RouteDecision route(const TenantKey& request) const;

  const std::vector<std::string>& fallbacks() const { return fallbacks_; }

 private:
  friend class ModelRegistry;

  std::uint64_t epoch_ = 0;
  /// Shared with the registry's publish cache (and with other snapshots):
  /// publish() reuses a version-unchanged tenant's deployment instead of
  /// re-running its replica factory, so reloading one venue costs O(that
  /// venue), not O(fleet), and the replica-slot discipline spans every
  /// snapshot the deployment appears in.
  std::vector<std::shared_ptr<const TenantDeployment>> tenants_;
  std::unordered_map<TenantKey, std::size_t, TenantKeyHash> by_key_;
  std::vector<std::string> fallbacks_;
};

}  // namespace cal::serve
