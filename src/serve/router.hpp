// Registry-side routing view.
//
// Routing itself — exact key → profile fallback chain → deterministic
// reject — is one policy (resolve_tenant, registry.hpp) evaluated over
// three key sets: ModelRegistry::resolve for catalogue queries,
// ShardRouter below for a frozen pre-publish view, and
// DeploymentSnapshot::route (snapshot.hpp) for the live engine, which
// re-snapshots the key set on every hot reload. (The PR 4-era
// MultiTenantService shim over ServeEngine reached the end of its
// declared one-PR lifetime and is gone; talk to ServeEngine directly.)
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/snapshot.hpp"

namespace cal::serve {

/// Immutable request → shard map, snapshotted from a ModelRegistry.
/// Shard ids follow ModelRegistry::keys() order (str()-sorted), so the
/// numbering is deterministic across runs and processes — and matches
/// the tenant order of a DeploymentSnapshot published from the same
/// catalogue.
class ShardRouter {
 public:
  explicit ShardRouter(const ModelRegistry& registry);

  std::size_t num_shards() const { return shards_.size(); }
  const TenantKey& shard_key(std::size_t shard) const;

  RouteDecision route(const TenantKey& request) const;

 private:
  std::vector<TenantKey> shards_;
  std::unordered_map<TenantKey, std::size_t, TenantKeyHash> by_key_;
  std::vector<std::string> fallbacks_;
};

}  // namespace cal::serve
