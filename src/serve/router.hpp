// Registry-side routing view, and the multi-tenant compatibility shim.
//
// Routing itself — exact key → profile fallback chain → deterministic
// reject — is one policy (resolve_tenant, registry.hpp) evaluated over
// three key sets: ModelRegistry::resolve for catalogue queries,
// ShardRouter below for a frozen pre-publish view, and
// DeploymentSnapshot::route (snapshot.hpp) for the live engine, which
// re-snapshots the key set on every hot reload.
//
// MultiTenantService is the PR 4 thread-per-lane front door, kept for one
// more PR as a thin DEPRECATED shim over ServeEngine (engine.hpp): it
// publishes its registry once, sizes the shared pool like the old
// per-lane worker pools (sum of num_workers), and emulates the historical
// blocking submit() by retrying non-blocking admission. New code should
// talk to ServeEngine directly — it adds typed admission, per-tenant
// quotas, and mid-traffic hot reload, none of which this shim surfaces.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "serve/engine.hpp"

namespace cal::serve {

/// Immutable request → shard map, snapshotted from a ModelRegistry.
/// Shard ids follow ModelRegistry::keys() order (str()-sorted), so the
/// numbering is deterministic across runs and processes — and matches
/// the tenant order of a DeploymentSnapshot published from the same
/// catalogue.
class ShardRouter {
 public:
  explicit ShardRouter(const ModelRegistry& registry);

  std::size_t num_shards() const { return shards_.size(); }
  const TenantKey& shard_key(std::size_t shard) const;

  RouteDecision route(const TenantKey& request) const;

 private:
  std::vector<TenantKey> shards_;
  std::unordered_map<TenantKey, std::size_t, TenantKeyHash> by_key_;
  std::vector<std::string> fallbacks_;
};

/// submit() outcome: the routing decision is known synchronously; the
/// localization result arrives through the future (already fulfilled for
/// rejected routes).
struct RoutedSubmission {
  RouteDecision decision;
  std::future<ServeResult> result;
};

/// DEPRECATED multi-tenant shim over ServeEngine — kept for one PR so
/// downstream code migrates gradually.
class MultiTenantService {
 public:
  /// Publishes `registry` once and deploys it on a private engine whose
  /// pool has as many threads as the old per-lane model would have
  /// spawned (sum of every tenant's num_workers).
  explicit MultiTenantService(ModelRegistry registry);

  MultiTenantService(const MultiTenantService&) = delete;
  MultiTenantService& operator=(const MultiTenantService&) = delete;
  ~MultiTenantService();

  /// Route `tenant` and enqueue the fingerprint on its sub-queue.
  /// Unknown tenants get an immediately-fulfilled Reject result; known
  /// ones block (retrying admission) while the sub-queue is at capacity,
  /// exactly like the old bounded-queue backpressure.
  RoutedSubmission submit(const TenantKey& tenant,
                          std::vector<float> fingerprint_normalized);

  /// Stop the engine: drain queues, join the pool. Idempotent.
  void shutdown();

  MultiTenantStats stats() const;

  const ShardRouter& router() const { return router_; }
  const ModelRegistry& registry() const { return registry_; }
  std::size_t num_shards() const;

  /// The engine behind the shim — the migration escape hatch.
  ServeEngine& engine() { return *engine_; }
  const ServeEngine& engine() const { return *engine_; }

 private:
  ModelRegistry registry_;
  ShardRouter router_;
  std::unique_ptr<ServeEngine> engine_;
};

}  // namespace cal::serve
