// Routed, sharded multi-tenant serving engine.
//
//   request {tenant key, fingerprint}
//        │
//        ▼
//   ShardRouter ── exact / profile-fallback / reject ──▶ shard id
//        │
//        ▼
//   per-shard LocalizationService lane
//     (own replicas, anchor screen + shard index, LRU cache,
//      drift monitor, stats)
//
// The router is a snapshot of the registry's key set and fallback chain:
// two hash probes per request in the common case, no locks, no shared
// mutable state. Lanes are fully independent — one venue's traffic burst,
// cache flush, or screening storm cannot touch another venue's thresholds
// or tail latency. Predictions are bit-identical to calling the resolved
// tenant's own model sequentially, because each lane preserves the
// single-tenant engine's replica guarantee (see service.hpp).
//
// Unknown tenants are rejected deterministically: submit() returns an
// already-fulfilled future carrying Verdict::Reject and localized ==
// false, so a misconfigured client sees an explicit, immediate answer
// instead of traffic silently landing on the wrong venue's model.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "serve/registry.hpp"

namespace cal::serve {

/// Outcome of routing one request's tenant metadata.
struct RouteDecision {
  enum class Status { Exact, Fallback, Reject };
  Status status = Status::Reject;
  std::size_t shard = 0;  ///< lane index; valid unless status == Reject
  TenantKey resolved;     ///< tenant actually serving; unless Reject
};

std::string to_string(RouteDecision::Status s);

/// Immutable request → shard map, snapshotted from a ModelRegistry.
/// Shard ids follow ModelRegistry::keys() order (str()-sorted), so the
/// numbering is deterministic across runs and processes.
class ShardRouter {
 public:
  explicit ShardRouter(const ModelRegistry& registry);

  std::size_t num_shards() const { return shards_.size(); }
  const TenantKey& shard_key(std::size_t shard) const;

  RouteDecision route(const TenantKey& request) const;

 private:
  std::vector<TenantKey> shards_;
  std::unordered_map<TenantKey, std::size_t, TenantKeyHash> by_key_;
  std::vector<std::string> fallbacks_;
};

/// submit() outcome: the routing decision is known synchronously; the
/// localization result arrives through the future (already fulfilled for
/// rejected routes).
struct RoutedSubmission {
  RouteDecision decision;
  std::future<ServeResult> result;
};

/// Per-tenant stats entry of a MultiTenantStats snapshot.
struct TenantStats {
  TenantKey tenant;
  ServiceStats stats;
};

/// Fleet snapshot: every shard's stats, their aggregate, and the route
/// mix seen by the front door.
struct MultiTenantStats {
  std::vector<TenantStats> per_tenant;  ///< shard order
  ServiceStats aggregate;
  std::size_t route_exact = 0;
  std::size_t route_fallback = 0;
  std::size_t route_rejected = 0;

  std::string str() const;
};

/// The multi-venue serving engine: one lane per registered tenant.
class MultiTenantService {
 public:
  /// Snapshots `registry` (register every tenant first). Builds all lanes
  /// up front — replica factories run here, num_workers times per tenant.
  explicit MultiTenantService(ModelRegistry registry);

  MultiTenantService(const MultiTenantService&) = delete;
  MultiTenantService& operator=(const MultiTenantService&) = delete;
  ~MultiTenantService();

  /// Route `tenant` and enqueue the fingerprint on its shard lane.
  /// Unknown tenants get an immediately-fulfilled Reject result; known
  /// ones block on the shard's bounded queue exactly like the
  /// single-tenant engine.
  RoutedSubmission submit(const TenantKey& tenant,
                          std::vector<float> fingerprint_normalized);

  /// Stop all lanes: drain queues, join workers. Idempotent.
  void shutdown();

  MultiTenantStats stats() const;

  const ShardRouter& router() const { return router_; }
  const ModelRegistry& registry() const { return registry_; }
  std::size_t num_shards() const { return lanes_.size(); }
  const LocalizationService& lane(std::size_t shard) const;

 private:
  ModelRegistry registry_;
  ShardRouter router_;
  std::vector<std::unique_ptr<LocalizationService>> lanes_;
  std::atomic<std::size_t> route_exact_{0};
  std::atomic<std::size_t> route_fallback_{0};
  std::atomic<std::size_t> route_rejected_{0};
};

}  // namespace cal::serve
