#include "serve/snapshot.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace cal::serve {

std::string to_string(RouteDecision::Status s) {
  switch (s) {
    case RouteDecision::Status::Exact: return "exact";
    case RouteDecision::Status::Fallback: return "fallback";
    case RouteDecision::Status::Reject: return "reject";
  }
  return "?";
}

int TenantDeployment::try_checkout() const {
  MutexLock lock(slot_mu_);
  if (free_slots_.empty()) return -1;
  const std::size_t slot = free_slots_.back();
  free_slots_.pop_back();
  return static_cast<int>(slot);
}

std::size_t TenantDeployment::busy_slots() const {
  MutexLock lock(slot_mu_);
  // Free + quarantined slots are not serving; what remains is in flight.
  // A slot between quarantine() and its final release() counts as
  // quarantined, not busy — it will never serve again.
  const std::size_t out = free_slots_.size() +
                          quarantined_count_.load(std::memory_order_relaxed);
  return replicas_.size() > out ? replicas_.size() - out : 0;
}

void TenantDeployment::release(std::size_t slot) const {
  MutexLock lock(slot_mu_);
  CAL_INVARIANT(slot < replicas_.size(),
                "released slot " << slot << " out of " << replicas_.size());
  // A quarantined slot is retired, not recycled: try_checkout must never
  // see it again on this deployment.
  if (slot < quarantined_.size() && quarantined_[slot] != 0) return;
  free_slots_.push_back(slot);
}

void TenantDeployment::quarantine(std::size_t slot) const {
  MutexLock lock(slot_mu_);
  CAL_INVARIANT(slot < replicas_.size(),
                "quarantined slot " << slot << " out of "
                                    << replicas_.size());
  if (quarantined_.size() < replicas_.size())
    quarantined_.resize(replicas_.size(), 0);
  if (quarantined_[slot] != 0) return;
  quarantined_[slot] = 1;
  quarantined_count_.fetch_add(1, std::memory_order_relaxed);
  // Normally the caller holds the slot (fault detected mid-batch), but a
  // slot sitting on the free list is scrubbed too — quarantine must be
  // effective no matter who calls it.
  free_slots_.erase(
      std::remove(free_slots_.begin(), free_slots_.end(), slot),
      free_slots_.end());
}

const TenantDeployment& DeploymentSnapshot::tenant(std::size_t shard) const {
  CAL_ENSURE(shard < tenants_.size(),
             "tenant " << shard << " out of " << tenants_.size());
  return *tenants_[shard];
}

const TenantDeployment* DeploymentSnapshot::find(const TenantKey& key) const {
  const auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : tenants_[it->second].get();
}

RouteDecision DeploymentSnapshot::route(const TenantKey& request) const {
  const auto res =
      resolve_tenant(request, fallbacks_, [this](const TenantKey& k) {
        return by_key_.find(k) != by_key_.end();
      });
  if (res.kind == ModelRegistry::Resolution::Kind::Miss) return {};
  return {res.kind == ModelRegistry::Resolution::Kind::Exact
              ? RouteDecision::Status::Exact
              : RouteDecision::Status::Fallback,
          by_key_.at(res.resolved), res.resolved};
}

}  // namespace cal::serve
