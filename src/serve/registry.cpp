#include "serve/registry.hpp"

#include <algorithm>

#include "common/ensure.hpp"
#include "common/hash.hpp"

namespace cal::serve {

std::string TenantKey::str() const {
  std::string s = building;
  s += '/';
  s += std::to_string(floor);
  s += ':';
  s += device_profile.empty() ? "*" : device_profile;
  return s;
}

std::size_t TenantKeyHash::operator()(const TenantKey& k) const {
  // Collision quality is ample for a catalogue of venues.
  Fnv1a h;
  h.mix_bytes(k.building.data(), k.building.size());
  h.mix(k.floor);
  h.mix_bytes(k.device_profile.data(), k.device_profile.size());
  return h.value();
}

void ModelRegistry::register_tenant(TenantKey key, TenantSpec spec) {
  CAL_ENSURE(!key.building.empty(), "tenant key needs a building name");
  CAL_ENSURE(spec.factory != nullptr,
             "tenant " << key.str() << " needs a replica factory");
  CAL_ENSURE(spec.num_aps > 0,
             "tenant " << key.str() << " needs num_aps > 0");
  if (!spec.anchors.empty())
    CAL_ENSURE(spec.anchors.rank() == 2 &&
                   spec.anchors.cols() == spec.num_aps,
               "tenant " << key.str() << " anchor database must be (M, "
                         << spec.num_aps << "), got "
                         << spec.anchors.shape_str());
  const bool inserted =
      tenants_.emplace(std::move(key), std::move(spec)).second;
  CAL_ENSURE(inserted, "tenant registered twice");
}

void ModelRegistry::set_profile_fallbacks(std::vector<std::string> chain) {
  fallbacks_ = std::move(chain);
}

bool ModelRegistry::contains(const TenantKey& key) const {
  return tenants_.find(key) != tenants_.end();
}

const TenantSpec* ModelRegistry::find(const TenantKey& key) const {
  const auto it = tenants_.find(key);
  return it == tenants_.end() ? nullptr : &it->second;
}

std::vector<TenantKey> ModelRegistry::keys() const {
  std::vector<TenantKey> out;
  out.reserve(tenants_.size());
  for (const auto& [key, spec] : tenants_) out.push_back(key);
  std::sort(out.begin(), out.end(),
            [](const TenantKey& a, const TenantKey& b) {
              return a.str() < b.str();
            });
  return out;
}

ModelRegistry::Resolution ModelRegistry::resolve(
    const TenantKey& request) const {
  return resolve_tenant(request, fallbacks_,
                        [this](const TenantKey& k) { return contains(k); });
}

}  // namespace cal::serve
