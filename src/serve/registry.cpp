#include "serve/registry.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/ensure.hpp"
#include "common/hash.hpp"
#include "serve/snapshot.hpp"

namespace cal::serve {
namespace {

AnchorScreen build_screen(const Tensor& anchors, std::size_t num_aps,
                          const ScreeningThresholds& thresholds) {
  if (anchors.empty()) return AnchorScreen{};
  // Tensor copy: the registry keeps its catalogue intact for later
  // inspection and republishing while each snapshot owns its screen.
  Tensor copy = anchors;
  CAL_ENSURE(copy.rank() == 2 && copy.cols() == num_aps,
             "anchor database must be (M, " << num_aps << "), got "
                                            << copy.shape_str());
  return AnchorScreen(std::move(copy), thresholds);
}

/// Process-wide version counter: two registries can never mint the same
/// version, so ServeEngine::deploy()'s version comparison is safe even
/// across snapshots published by different (or copied-then-diverged)
/// registries — a cross-registry deploy always reconfigures.
std::uint64_t next_global_version() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

std::string TenantKey::str() const {
  std::string s = building;
  s += '/';
  s += std::to_string(floor);
  s += ':';
  s += device_profile.empty() ? "*" : device_profile;
  return s;
}

std::size_t TenantKeyHash::operator()(const TenantKey& k) const {
  // Collision quality is ample for a catalogue of venues.
  Fnv1a h;
  h.mix_bytes(k.building.data(), k.building.size());
  h.mix(k.floor);
  h.mix_bytes(k.device_profile.data(), k.device_profile.size());
  return h.value();
}

std::string to_string(Precision p) {
  return p == Precision::Int8 ? "int8" : "fp32";
}

void ModelRegistry::validate_spec(const TenantKey& key,
                                  const TenantSpec& spec) {
  CAL_ENSURE(!key.building.empty(), "tenant key needs a building name");
  CAL_ENSURE((spec.factory != nullptr) != (spec.shared_model != nullptr),
             "tenant " << key.str()
                       << " needs exactly one of factory / shared_model");
  // Quantized replicas are publish()-owned copies; a borrowed shared
  // model stays under the caller's control and cannot be swapped out.
  CAL_ENSURE(spec.precision == Precision::Fp32 || spec.factory != nullptr,
             "tenant " << key.str()
                       << " requests int8 precision, which needs a replica "
                          "factory (shared_model tenants serve fp32)");
  CAL_ENSURE(spec.num_aps > 0, "tenant " << key.str() << " needs num_aps > 0");
  if (!spec.anchors.empty())
    CAL_ENSURE(spec.anchors.rank() == 2 &&
                   spec.anchors.cols() == spec.num_aps,
               "tenant " << key.str() << " anchor database must be (M, "
                         << spec.num_aps << "), got "
                         << spec.anchors.shape_str());
  const ServiceConfig& lane = spec.service;
  CAL_ENSURE(lane.num_workers > 0,
             "tenant " << key.str() << " needs >= 1 replica slot");
  CAL_ENSURE(lane.max_batch > 0,
             "tenant " << key.str() << " needs max_batch >= 1");
  CAL_ENSURE(lane.queue_capacity > 0,
             "tenant " << key.str() << " needs queue_capacity >= 1");
  CAL_ENSURE(lane.cache_audit_rate >= 0.0 && lane.cache_audit_rate <= 1.0,
             "tenant " << key.str() << " cache audit rate out of [0,1]: "
                       << lane.cache_audit_rate);
  CAL_ENSURE(lane.quota.rate_per_s >= 0.0 && lane.quota.burst >= 0.0,
             "tenant " << key.str() << " quota must be non-negative");
  // Drift tracking feeds on screening distances; with screening disabled
  // a configured DriftPolicy would be silently inert and stale cache
  // entries would never flush — surface the misconfiguration instead.
  CAL_ENSURE(lane.drift.window == 0 || !spec.anchors.empty(),
             "tenant " << key.str()
                       << " has a drift policy but screening is disabled "
                          "(no anchor database)");
  // Construction-time validation of the drift policy numbers themselves.
  if (lane.drift.window > 0) (void)DriftMonitor(lane.drift);
}

void ModelRegistry::register_tenant(TenantKey key, TenantSpec spec) {
  validate_spec(key, spec);
  CAL_ENSURE(!contains(key), "tenant " << key.str() << " registered twice");
  versions_[key] = next_global_version();
  tenants_.emplace(std::move(key), std::move(spec));
}

void ModelRegistry::reload_tenant(const TenantKey& key, TenantSpec spec) {
  validate_spec(key, spec);
  const auto it = tenants_.find(key);
  CAL_ENSURE(it != tenants_.end(),
             "reload of unregistered tenant " << key.str());
  it->second = std::move(spec);
  versions_[key] = next_global_version();
  prune_shared_locks();
}

void ModelRegistry::remove_tenant(const TenantKey& key) {
  const auto it = tenants_.find(key);
  CAL_ENSURE(it != tenants_.end(),
             "removal of unregistered tenant " << key.str());
  tenants_.erase(it);
  versions_.erase(key);
  published_.erase(key);
  prune_shared_locks();
}

void ModelRegistry::prune_shared_locks() {
  for (auto it = shared_locks_.begin(); it != shared_locks_.end();) {
    if (it->second.expired())
      it = shared_locks_.erase(it);
    else
      ++it;
  }
}

void ModelRegistry::set_profile_fallbacks(std::vector<std::string> chain) {
  fallbacks_ = std::move(chain);
}

bool ModelRegistry::contains(const TenantKey& key) const {
  return tenants_.find(key) != tenants_.end();
}

const TenantSpec* ModelRegistry::find(const TenantKey& key) const {
  const auto it = tenants_.find(key);
  return it == tenants_.end() ? nullptr : &it->second;
}

std::uint64_t ModelRegistry::version(const TenantKey& key) const {
  const auto it = versions_.find(key);
  return it == versions_.end() ? 0 : it->second;
}

std::vector<TenantKey> ModelRegistry::keys() const {
  std::vector<TenantKey> out;
  out.reserve(tenants_.size());
  for (const auto& [key, spec] : tenants_) out.push_back(key);
  std::sort(out.begin(), out.end(),
            [](const TenantKey& a, const TenantKey& b) {
              return a.str() < b.str();
            });
  return out;
}

std::shared_ptr<const DeploymentSnapshot> ModelRegistry::publish() {
  CAL_ENSURE(!tenants_.empty(), "publish() needs >= 1 registered tenant");
  auto snap = std::make_shared<DeploymentSnapshot>();
  snap->epoch_ = ++next_epoch_;
  snap->fallbacks_ = fallbacks_;
  const auto sorted = keys();
  snap->tenants_.reserve(sorted.size());
  snap->by_key_.reserve(sorted.size());
  for (const TenantKey& key : sorted) {
    const TenantSpec& spec = tenants_.at(key);
    const std::uint64_t version = versions_.at(key);
    // Version unchanged since the last publish: share the existing
    // deployment (replicas, screen, slot free-list) instead of paying
    // the factory again — a one-venue reload costs one venue, and the
    // slot discipline spans every snapshot the deployment appears in.
    if (const auto it = published_.find(key);
        it != published_.end() && it->second->version == version) {
      snap->by_key_[key] = snap->tenants_.size();
      snap->tenants_.push_back(it->second);
      continue;
    }
    auto dep = std::make_shared<TenantDeployment>();
    dep->key = key;
    dep->version = version;
    dep->num_aps = spec.num_aps;
    dep->lane = spec.service;
    dep->screen = build_screen(spec.anchors, spec.num_aps,
                               spec.service.screening);
    if (spec.shared_model != nullptr) {
      // Borrowed model: one slot per deployment, and ONE serialization
      // mutex per underlying model across every deployment that borrows
      // it — a reload may briefly have two snapshots in flight, and
      // ILocalizer::predict is not required to be thread-safe.
      dep->replicas_.push_back(spec.shared_model);
      // Reuse the model's mutex while ANY deployment still holds it
      // (possibly one of a since-removed tenant, in flight on an old
      // snapshot); mint a fresh one only once every holder is gone.
      auto& weak = shared_locks_[spec.shared_model];
      auto lock = weak.lock();
      if (lock == nullptr) {
        lock = std::make_shared<Mutex>();
        weak = lock;
      }
      dep->shared_mu_ = std::move(lock);
    } else {
      dep->precision = spec.precision;
      dep->owned_.reserve(spec.service.num_workers);
      for (std::size_t i = 0; i < spec.service.num_workers; ++i) {
        auto replica = spec.factory();
        CAL_ENSURE(replica != nullptr,
                   "tenant " << key.str()
                             << " replica factory returned nullptr for slot "
                             << i);
        if (spec.precision == Precision::Int8) {
          // Snapshot the trained replica into its int8 inference copy;
          // the fp32 original is discarded once quantization succeeds.
          auto quantized = replica->quantize_int8();
          CAL_ENSURE(quantized != nullptr,
                     "tenant " << key.str() << " requests int8 but model '"
                               << replica->name()
                               << "' has no quantized path");
          replica = std::move(quantized);
        }
        dep->owned_.push_back(std::move(replica));
        dep->replicas_.push_back(dep->owned_.back().get());
      }
    }
    for (const baselines::ILocalizer* rep : dep->replicas_)
      dep->weight_bytes += rep->weight_bytes();
    {
      // The deployment is not shared yet, but free_slots_ is guarded by
      // slot_mu_ and the analysis (rightly) has no notion of "not yet
      // published" — take the uncontended lock.
      MutexLock lock(dep->slot_mu_);
      dep->free_slots_.reserve(dep->replicas_.size());
      for (std::size_t i = dep->replicas_.size(); i-- > 0;)
        dep->free_slots_.push_back(i);
    }
    published_[key] = dep;
    snap->by_key_[key] = snap->tenants_.size();
    snap->tenants_.push_back(std::move(dep));
  }
  return snap;
}

ModelRegistry::Resolution ModelRegistry::resolve(
    const TenantKey& request) const {
  return resolve_tenant(request, fallbacks_,
                        [this](const TenantKey& k) { return contains(k); });
}

}  // namespace cal::serve
