// Serving telemetry: the numbers an operator watches on a dashboard.
//
// One StatsCollector per shard lane — every counter is shard-local, so a
// multi-tenant deployment reads per-tenant health directly and combines
// shards with aggregate_stats() for the fleet-wide view.
#pragma once

#include <chrono>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "serve/screening.hpp"

namespace cal::serve {

/// Point-in-time snapshot of one shard lane's health. Latencies are
/// request latencies (submit -> result available), which include queueing
/// delay — the figure a client actually experiences. The mean is
/// lifetime-exact; the percentiles cover the most recent
/// StatsCollector::kLatencyWindow requests.
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;        ///< fulfilled results, any verdict
  std::size_t over_quota = 0;       ///< submissions denied by the token bucket
  std::size_t queue_full = 0;       ///< submissions denied by a full sub-queue
  std::size_t cache_hits = 0;
  std::size_t cache_audits = 0;     ///< hits re-inferred for verification
  std::size_t cache_audit_mismatches = 0;
  std::size_t flagged = 0;
  std::size_t rejected = 0;
  std::size_t screened = 0;         ///< requests that ran the anchor screen
  std::size_t anchors_scanned = 0;  ///< full distance computations, total
  std::size_t anchors_pruned = 0;   ///< anchors skipped by the shard index
  double mean_anchors_scanned = 0.0;///< anchors_scanned / screened
  std::size_t drift_flushes = 0;    ///< cache flushes forced by drift trend
  std::size_t batches = 0;          ///< micro-batches drained by workers
  std::size_t largest_batch = 0;
  double mean_batch_size = 0.0;
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double wall_seconds = 0.0;        ///< since service start
  double throughput_rps = 0.0;      ///< completed / wall_seconds

  /// Multi-line human-readable report for demos and benches.
  std::string str() const;
};

/// Fleet-wide roll-up of per-shard snapshots: counters are summed, the
/// latency mean and percentiles are completed-weighted averages of the
/// shard figures (exact for the mean; an approximation for the tails,
/// which are only defined per shard), wall_seconds is the longest-running
/// shard, and throughput is total completed over that wall clock.
ServiceStats aggregate_stats(std::span<const ServiceStats> shards);

/// Everything StatsCollector needs to know about one fulfilled request.
struct ResultRecord {
  double latency_ms = 0.0;
  Verdict verdict = Verdict::Accept;
  bool from_cache = false;
  bool audited = false;
  bool audit_mismatch = false;
  bool screened = false;
  std::size_t anchors_scanned = 0;
  std::size_t anchors_pruned = 0;
};

/// Mutex-guarded accumulator shared by one shard lane's worker pool.
///
/// Memory is bounded for arbitrarily long runs: the latency mean is exact
/// over the whole lifetime (running sum), while the percentiles are over
/// a sliding window of the most recent kLatencyWindow requests — the
/// operator-relevant "current" tail behaviour, in O(1) memory.
class StatsCollector {
 public:
  /// Latency samples retained for the percentile window.
  static constexpr std::size_t kLatencyWindow = 1U << 16;

  StatsCollector();

  void record_submitted() CAL_EXCLUDES(mu_);
  /// Roll back a record_submitted() whose push was refused (shutdown).
  void record_submit_rejected() CAL_EXCLUDES(mu_);
  /// Admission denials (engine front door): the request never entered a
  /// queue, so neither `submitted` nor `completed` moves.
  void record_over_quota() CAL_EXCLUDES(mu_);
  void record_queue_full() CAL_EXCLUDES(mu_);
  void record_batch(std::size_t batch_size) CAL_EXCLUDES(mu_);
  void record_result(const ResultRecord& r) CAL_EXCLUDES(mu_);
  void record_drift_flush() CAL_EXCLUDES(mu_);

  /// Restart the wall clock behind wall_seconds/throughput_rps. The
  /// multi-tenant engine calls this once every lane is up, so shards
  /// built early don't count the rest of the fleet's construction time
  /// (replica factories are arbitrarily slow) as serving time.
  void reset_clock() CAL_EXCLUDES(mu_);

  ServiceStats snapshot() const CAL_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::chrono::steady_clock::time_point start_ CAL_GUARDED_BY(mu_);
  /// Ring buffer, <= kLatencyWindow entries.
  std::vector<double> latencies_ms_ CAL_GUARDED_BY(mu_);
  /// Next slot to overwrite when full.
  std::size_t latency_wrap_ CAL_GUARDED_BY(mu_) = 0;
  /// Lifetime sum (exact mean).
  double latency_sum_ms_ CAL_GUARDED_BY(mu_) = 0.0;
  std::size_t submitted_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t completed_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t over_quota_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t queue_full_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t cache_hits_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t cache_audits_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t cache_audit_mismatches_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t flagged_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t rejected_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t screened_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t anchors_scanned_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t anchors_pruned_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t drift_flushes_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t batches_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t largest_batch_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t batched_items_ CAL_GUARDED_BY(mu_) = 0;
};

}  // namespace cal::serve
