// Serving telemetry: the numbers an operator watches on a dashboard.
//
// One StatsCollector per shard lane — every counter is shard-local, so a
// multi-tenant deployment reads per-tenant health directly and combines
// shards with aggregate_stats() for the fleet-wide view.
#pragma once

#include <chrono>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/hot_path_annotations.hpp"
#include "common/thread_annotations.hpp"
#include "obs/histogram.hpp"
#include "serve/screening.hpp"

namespace cal::serve {

/// Point-in-time snapshot of one shard lane's health. Latencies are
/// request latencies (submit -> result available), which include queueing
/// delay — the figure a client actually experiences.
///
/// Latency semantics (changed when the sorted sliding window was replaced
/// by the log-bucketed histogram): mean and percentiles are now LIFETIME
/// figures over every completed request, not a recent window, and the
/// percentiles carry the histogram's bounded relative error
/// (obs::Histogram::kRelativeError, ~3%) instead of being exact order
/// statistics of the last 64K samples. In exchange they are mergeable —
/// aggregate_stats() combines shard histograms exactly, so fleet-wide
/// tails are true quantiles of the union rather than completed-weighted
/// averages of per-shard quantiles (which were not quantiles of anything).
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;        ///< fulfilled results, any verdict
  std::size_t over_quota = 0;       ///< submissions denied by the token bucket
  std::size_t queue_full = 0;       ///< submissions denied by a full sub-queue
  std::size_t breaker_denied = 0;   ///< submissions fast-failed by the breaker
  std::size_t expired = 0;          ///< requests shed past their deadline
  std::size_t faulted = 0;          ///< requests failed by replica faults
  std::size_t shed = 0;             ///< queued requests terminated unserved
                                    ///< (tenant removed / engine shutdown)
  std::size_t cache_hits = 0;
  std::size_t cache_audits = 0;     ///< hits re-inferred for verification
  std::size_t cache_audit_mismatches = 0;
  std::size_t flagged = 0;
  std::size_t rejected = 0;
  std::size_t screened = 0;         ///< requests that ran the anchor screen
  std::size_t anchors_scanned = 0;  ///< full distance computations, total
  std::size_t anchors_pruned = 0;   ///< anchors skipped by the shard index
  double mean_anchors_scanned = 0.0;///< anchors_scanned / screened
  std::size_t drift_flushes = 0;    ///< cache flushes forced by drift trend
  std::size_t batches = 0;          ///< micro-batches drained by workers
  std::size_t largest_batch = 0;
  double mean_batch_size = 0.0;
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  /// The full latency distribution the four figures above are derived
  /// from — lifetime, fixed memory, exactly mergeable across shards.
  obs::Histogram latency;
  double wall_seconds = 0.0;        ///< since service start
  double throughput_rps = 0.0;      ///< completed / wall_seconds

  /// Multi-line human-readable report for demos and benches.
  std::string str() const;
};

/// Fleet-wide roll-up of per-shard snapshots: counters are summed, the
/// latency histograms are merged bucket-wise (exact — the aggregate
/// percentiles are true quantiles of the combined distribution, up to the
/// histogram's relative-error bound), wall_seconds is the longest-running
/// shard, and throughput is total completed over that wall clock.
ServiceStats aggregate_stats(std::span<const ServiceStats> shards);

/// Everything StatsCollector needs to know about one fulfilled request.
struct ResultRecord {
  double latency_ms = 0.0;
  Verdict verdict = Verdict::Accept;
  bool from_cache = false;
  bool audited = false;
  bool audit_mismatch = false;
  bool screened = false;
  std::size_t anchors_scanned = 0;
  std::size_t anchors_pruned = 0;
};

/// Mutex-guarded accumulator shared by one shard lane's worker pool.
///
/// Memory is bounded for arbitrarily long runs: latencies feed a
/// log-bucketed obs::Histogram (fixed ~9 KB, lifetime-mergeable, bounded
/// relative error), so mean and percentiles are both exact-lifetime in
/// count and O(1) in memory regardless of traffic volume.
class StatsCollector {
 public:
  StatsCollector();

  CAL_HOT_PATH
  void record_submitted() CAL_EXCLUDES(mu_);
  /// Roll back a record_submitted() whose push was refused (shutdown).
  CAL_HOT_PATH
  void record_submit_rejected() CAL_EXCLUDES(mu_);
  /// Admission denials (engine front door): the request never entered a
  /// queue, so neither `submitted` nor `completed` moves.
  CAL_HOT_PATH
  void record_over_quota() CAL_EXCLUDES(mu_);
  CAL_HOT_PATH
  void record_queue_full() CAL_EXCLUDES(mu_);
  CAL_HOT_PATH
  void record_breaker_denied() CAL_EXCLUDES(mu_);
  /// Admitted requests resolved by fault containment instead of serving:
  /// they stay in `submitted` (they consumed admission + queue space) but
  /// never reach `completed` or the latency histogram.
  CAL_HOT_PATH
  void record_expired(std::size_t n = 1) CAL_EXCLUDES(mu_);
  CAL_HOT_PATH
  void record_faulted(std::size_t n = 1) CAL_EXCLUDES(mu_);
  /// A queued request terminated unserved (tenant removed, shutdown):
  /// rolls its admission back out of `submitted` and counts it in `shed`.
  CAL_HOT_PATH
  void record_shed() CAL_EXCLUDES(mu_);
  CAL_HOT_PATH
  void record_batch(std::size_t batch_size) CAL_EXCLUDES(mu_);
  CAL_HOT_PATH
  void record_result(const ResultRecord& r) CAL_EXCLUDES(mu_);
  CAL_HOT_PATH
  void record_drift_flush() CAL_EXCLUDES(mu_);

  /// Restart the wall clock behind wall_seconds/throughput_rps. The
  /// multi-tenant engine calls this once every lane is up, so shards
  /// built early don't count the rest of the fleet's construction time
  /// (replica factories are arbitrarily slow) as serving time.
  void reset_clock() CAL_EXCLUDES(mu_);

  ServiceStats snapshot() const CAL_EXCLUDES(mu_);

  /// Cheap read of the current lifetime p99 — the flight-recorder breach
  /// check runs this on the completion path, where a full snapshot()
  /// (with its wall-clock math and struct copy) would be waste.
  CAL_HOT_PATH
  double latency_p99_ms() const CAL_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::chrono::steady_clock::time_point start_ CAL_GUARDED_BY(mu_);
  /// Lifetime latency distribution (mergeable, bounded relative error).
  obs::Histogram latency_ CAL_GUARDED_BY(mu_);
  std::size_t submitted_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t completed_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t over_quota_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t queue_full_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t breaker_denied_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t expired_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t faulted_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t shed_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t cache_hits_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t cache_audits_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t cache_audit_mismatches_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t flagged_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t rejected_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t screened_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t anchors_scanned_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t anchors_pruned_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t drift_flushes_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t batches_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t largest_batch_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t batched_items_ CAL_GUARDED_BY(mu_) = 0;
};

}  // namespace cal::serve
