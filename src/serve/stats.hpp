// Serving telemetry: the numbers an operator watches on a dashboard.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "serve/screening.hpp"

namespace cal::serve {

/// Point-in-time snapshot of service health. Latencies are request
/// latencies (submit -> result available), which include queueing delay —
/// the figure a client actually experiences. The mean is lifetime-exact;
/// the percentiles cover the most recent StatsCollector::kLatencyWindow
/// requests.
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;        ///< fulfilled results, any verdict
  std::size_t cache_hits = 0;
  std::size_t cache_audits = 0;     ///< hits re-inferred for verification
  std::size_t cache_audit_mismatches = 0;
  std::size_t flagged = 0;
  std::size_t rejected = 0;
  std::size_t batches = 0;          ///< micro-batches drained by workers
  std::size_t largest_batch = 0;
  double mean_batch_size = 0.0;
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double wall_seconds = 0.0;        ///< since service start
  double throughput_rps = 0.0;      ///< completed / wall_seconds

  /// Multi-line human-readable report for demos and benches.
  std::string str() const;
};

/// Mutex-guarded accumulator shared by the worker pool.
///
/// Memory is bounded for arbitrarily long runs: the latency mean is exact
/// over the whole lifetime (running sum), while the percentiles are over
/// a sliding window of the most recent kLatencyWindow requests — the
/// operator-relevant "current" tail behaviour, in O(1) memory.
class StatsCollector {
 public:
  /// Latency samples retained for the percentile window.
  static constexpr std::size_t kLatencyWindow = 1U << 16;

  StatsCollector();

  void record_submitted();
  /// Roll back a record_submitted() whose push was refused (shutdown).
  void record_submit_rejected();
  void record_batch(std::size_t batch_size);
  void record_result(double latency_ms, Verdict verdict, bool from_cache,
                     bool audited, bool audit_mismatch);

  ServiceStats snapshot() const;

 private:
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point start_;
  std::vector<double> latencies_ms_;  ///< ring buffer, <= kLatencyWindow
  std::size_t latency_wrap_ = 0;      ///< next slot to overwrite when full
  double latency_sum_ms_ = 0.0;       ///< lifetime sum (exact mean)
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t cache_audits_ = 0;
  std::size_t cache_audit_mismatches_ = 0;
  std::size_t flagged_ = 0;
  std::size_t rejected_ = 0;
  std::size_t batches_ = 0;
  std::size_t largest_batch_ = 0;
  std::size_t batched_items_ = 0;
};

}  // namespace cal::serve
