// Bounded multi-producer request queue with batched consumption.
//
// The serving front door pushes one request at a time from arbitrarily many
// client threads; worker threads drain up to `max_items` requests in one
// pop so the inference layer sees micro-batches instead of single
// fingerprints. The queue is the overload valve: when `capacity` requests
// are already waiting, push() blocks the producer (legacy backpressure)
// while try_push() refuses immediately — ServeEngine uses one BoundedQueue
// per tenant with the try_ flavour, turning overload into the typed
// Admission::QueueFull outcome instead of a blocked client thread (a
// surge from a compromised fleet must not exhaust server memory either
// way).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/ensure.hpp"
#include "common/hot_path_annotations.hpp"
#include "common/thread_annotations.hpp"

namespace cal::serve {

/// Mutex/condvar bounded queue. Producers block while full; consumers
/// block while empty. close() wakes everyone: subsequent pushes fail and
/// pop_batch() drains the remaining items, then returns empty batches.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    CAL_ENSURE(capacity_ > 0, "queue capacity must be positive");
  }

  /// Enqueue one item (moves from `item`). Blocks while the queue is at
  /// capacity. Returns false (leaving `item` untouched by the queue) when
  /// the queue has been closed.
  bool push(T&& item) CAL_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) not_full_.wait(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: returns false immediately — leaving `item`
  /// untouched — when the queue is full or closed, instead of waiting
  /// for a slot. This is the admission-control flavour the serving
  /// engine's typed submit() uses: overload is reported to the caller as
  /// Admission::QueueFull rather than absorbed as producer back-pressure.
  CAL_HOT_PATH
  bool try_push(T&& item, std::size_t* depth_after = nullptr)
      CAL_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      // Reported under the lock already held for the push: callers that
      // want the post-push depth (trace events) must not pay a second
      // mutex round-trip via size().
      if (depth_after != nullptr) *depth_after = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Dequeue up to `max_items` items in arrival order. Blocks until at
  /// least one item is available or the queue is closed; an empty result
  /// means closed-and-drained (the consumer should exit).
  std::vector<T> pop_batch(std::size_t max_items) CAL_EXCLUDES(mu_) {
    CAL_ENSURE(max_items > 0, "pop_batch needs max_items > 0");
    std::vector<T> batch;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.empty()) not_empty_.wait(mu_);
      const std::size_t n = std::min(max_items, items_.size());
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    // Draining may have unblocked several producers; closing must wake
    // every waiting consumer so the pool can exit.
    not_full_.notify_all();
    return batch;
  }

  /// Non-blocking drain: up to `max_items` items if any are queued,
  /// empty otherwise — never waits. Used by pool workers that scan many
  /// queues and must not park on an empty one.
  CAL_HOT_PATH
  std::vector<T> try_pop_batch(std::size_t max_items) CAL_EXCLUDES(mu_) {
    CAL_ENSURE(max_items > 0, "try_pop_batch needs max_items > 0");
    std::vector<T> batch;
    {
      MutexLock lock(mu_);
      const std::size_t n = std::min(max_items, items_.size());
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    if (!batch.empty()) not_full_.notify_all();
    return batch;
  }

  /// Remove and return every queued item matching `pred`, preserving
  /// arrival order among survivors. Never waits. The engine's deadline
  /// shedding uses this at dequeue time: expired requests leave the queue
  /// (and get their typed terminal result) without ever costing a replica
  /// checkout or a batch slot.
  template <typename Pred>
  std::vector<T> drain_if(Pred pred) CAL_EXCLUDES(mu_) {
    std::vector<T> removed;
    {
      MutexLock lock(mu_);
      for (auto it = items_.begin(); it != items_.end();) {
        if (pred(*it)) {
          removed.push_back(std::move(*it));
          it = items_.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Freed capacity may unblock producers parked in push().
    if (!removed.empty()) not_full_.notify_all();
    return removed;
  }

  /// Resize the capacity in place (ServeEngine applies a hot-reloaded
  /// tenant's queue_capacity this way). Only future pushes are affected:
  /// items already queued beyond a shrunken capacity stay and drain
  /// normally — admitted requests are never dropped by a resize.
  void set_capacity(std::size_t capacity) CAL_EXCLUDES(mu_) {
    CAL_ENSURE(capacity > 0, "queue capacity must be positive");
    {
      MutexLock lock(mu_);
      capacity_ = capacity;
    }
    not_full_.notify_all();  // a grown queue may unblock producers
  }

  /// Close the queue: future pushes fail, consumers drain then stop.
  void close() CAL_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const CAL_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const CAL_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ CAL_GUARDED_BY(mu_);
  std::size_t capacity_ CAL_GUARDED_BY(mu_);
  bool closed_ CAL_GUARDED_BY(mu_) = false;
};

}  // namespace cal::serve
