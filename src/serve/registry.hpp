// Tenant → model registry for multi-venue serving.
//
// The ROADMAP north star is one process serving many venues and device
// profiles. The registry is the deployment catalogue that makes that
// possible: each tenant — a (building, floor, device_profile) triple —
// owns a ReplicaFactory for its trained model, its shard-scoped anchor
// database, and its shard-local lane configuration (thresholds, cache,
// drift policy, replica slots, admission quota). Requests whose exact
// device profile has no dedicated model walk a configurable profile
// fallback chain (the heterogeneity study shows per-device error spread,
// so a dedicated per-profile replica set is better when available — but a
// venue-generic model beats a reject).
//
// The registry stays MUTABLE for the whole deployment's lifetime:
// publish() materialises the current catalogue into an immutable
// DeploymentSnapshot (snapshot.hpp) that ServeEngine swaps in RCU-style
// mid-traffic. Every register_tenant / reload_tenant bumps that tenant's
// version; the engine flushes a tenant's cache and drift baseline only
// when its version changed between snapshots, so re-publishing an
// unchanged catalogue is a flush-free no-op and a retrained venue can go
// live without draining anyone else.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "serve/service.hpp"

namespace cal::serve {

class DeploymentSnapshot;  // snapshot.hpp
class TenantDeployment;    // snapshot.hpp

/// Identity of one serving tenant. An empty device_profile means "the
/// venue-generic entry" — the conventional end of a fallback chain.
struct TenantKey {
  std::string building;
  std::size_t floor = 0;
  std::string device_profile;

  bool operator==(const TenantKey&) const = default;

  /// "building/floor:profile" (profile "*" when empty) for reports.
  std::string str() const;
};

struct TenantKeyHash {
  std::size_t operator()(const TenantKey& k) const;
};

/// Numeric precision a tenant's replicas serve at. Int8 asks publish()
/// to snapshot each freshly built replica through
/// ILocalizer::quantize_int8() — per-output-channel weight scales, fp32
/// accumulate — so the deployment carries ~4x smaller resident weights
/// and rides the int8 GEMM path. Requires a factory (the registry owns
/// the quantized copies) and a model family with a quantized path;
/// publish() throws otherwise.
enum class Precision : std::uint8_t { Fp32, Int8 };

std::string to_string(Precision p);

/// Everything needed to stand up one tenant's shard lane.
struct TenantSpec {
  /// Builds one trained replica per slot (ServiceConfig::num_workers).
  /// Exactly one of `factory` / `shared_model` must be set.
  ReplicaFactory factory;
  /// Alternative to `factory`: borrow a caller-owned model that cannot be
  /// replicated. The deployment then has a single replica slot, so the
  /// engine serializes this tenant's inference (the old "shared mode").
  baselines::ILocalizer* shared_model = nullptr;
  /// Fingerprint width of this venue. Required (> 0).
  std::size_t num_aps = 0;
  /// Shard-scoped anchor database (M x num_aps, normalised); empty
  /// disables screening for this shard.
  Tensor anchors;
  /// Shard-local lane configuration: replica slots, batching, cache,
  /// screening thresholds, drift policy, admission quota, seed.
  ServiceConfig service;
  /// Serving precision (see Precision). Int8 is validated at
  /// register/reload time (needs a factory) and applied at publish()
  /// time (each replica is quantized as it is built).
  Precision precision = Precision::Fp32;
};

/// Catalogue of trained models keyed by tenant. Assemble (and keep
/// amending) the catalogue, then publish() immutable snapshots for the
/// engine to deploy — including mid-traffic.
class ModelRegistry {
 public:
  /// Register one tenant. Throws on a duplicate key, an invalid model
  /// source (need exactly one of factory / shared_model), a zero
  /// num_aps, or an anchor matrix that does not match num_aps.
  void register_tenant(TenantKey key, TenantSpec spec);

  /// Replace an existing tenant's spec (e.g. a retrained model or new
  /// anchor database) and bump its version: the next publish()+deploy()
  /// flushes exactly this tenant's cache and drift baseline, nobody
  /// else's. Throws if `key` is not registered.
  void reload_tenant(const TenantKey& key, TenantSpec spec);

  /// Drop a tenant from the catalogue. After the next publish()+deploy()
  /// its queued requests are failed and its lane state discarded.
  /// Throws if `key` is not registered.
  void remove_tenant(const TenantKey& key);

  /// Device profiles tried, in order, when a request's exact profile has
  /// no entry. Default: {""} — fall back to the venue-generic entry only.
  void set_profile_fallbacks(std::vector<std::string> chain);
  const std::vector<std::string>& profile_fallbacks() const {
    return fallbacks_;
  }

  std::size_t size() const { return tenants_.size(); }
  bool contains(const TenantKey& key) const;
  const TenantSpec* find(const TenantKey& key) const;

  /// This tenant's spec version: bumped by register_tenant and
  /// reload_tenant. 0 for unknown tenants.
  std::uint64_t version(const TenantKey& key) const;

  /// Registered tenant keys in deterministic (str()-sorted) order — the
  /// shard numbering every component agrees on.
  std::vector<TenantKey> keys() const;

  /// Materialise the catalogue into an immutable DeploymentSnapshot and
  /// stamp it with a fresh epoch. Replica factories run (num_workers
  /// times) and anchor screens build ONLY for tenants whose version
  /// changed since the last publish() from this registry — unchanged
  /// tenants share their existing deployment (replicas, screen, slot
  /// free-list) with the previous snapshot, so hot-reloading one venue
  /// costs O(that venue), not O(fleet). Throws on an empty catalogue or
  /// an invalid lane config (zero slots, zero max_batch, audit rate
  /// outside [0,1], drift policy without a screen, negative quota). The
  /// snapshot is self-contained: later registry mutations never touch it.
  std::shared_ptr<const DeploymentSnapshot> publish();

  /// How a requested tenant maps onto the catalogue.
  struct Resolution {
    enum class Kind { Exact, Fallback, Miss };
    Kind kind = Kind::Miss;
    TenantKey resolved;  ///< valid unless kind == Miss
  };
  Resolution resolve(const TenantKey& request) const;

 private:
  static void validate_spec(const TenantKey& key, const TenantSpec& spec);
  /// Drop shared_locks_ entries whose mutex no deployment holds anymore
  /// (raw-pointer keys must not outlive every user of the model: a
  /// recycled address would otherwise collide with the stale entry).
  void prune_shared_locks();

  std::unordered_map<TenantKey, TenantSpec, TenantKeyHash> tenants_;
  std::unordered_map<TenantKey, std::uint64_t, TenantKeyHash> versions_;
  /// Deployments from the last publish(), reused while versions match.
  std::unordered_map<TenantKey, std::shared_ptr<const TenantDeployment>,
                     TenantKeyHash>
      published_;
  /// One serialization mutex per borrowed shared model, handed to every
  /// deployment of that model (see TenantDeployment::shared_serialization).
  /// Weak entries: deployments own the mutex; publish() reuses it while
  /// ANY deployment (even of a removed tenant, still in flight on an old
  /// snapshot) keeps it alive, and mints a fresh one only after every
  /// holder is gone — so two live deployments can never hold different
  /// mutexes for the same model.
  std::unordered_map<baselines::ILocalizer*, std::weak_ptr<Mutex>>
      shared_locks_;
  std::vector<std::string> fallbacks_{std::string{}};
  std::uint64_t next_epoch_ = 0;
};

/// THE tenant-resolution policy — exact key, then the profile fallback
/// chain, else miss — in one place, shared by ModelRegistry::resolve,
/// ShardRouter::route, and DeploymentSnapshot::route (each runs it over
/// its own key snapshot). `contains` answers membership over whichever
/// key set the caller holds.
template <typename ContainsFn>
ModelRegistry::Resolution resolve_tenant(const TenantKey& request,
                                         std::span<const std::string> fallbacks,
                                         ContainsFn&& contains) {
  using Kind = ModelRegistry::Resolution::Kind;
  if (contains(request)) return {Kind::Exact, request};
  for (const std::string& profile : fallbacks) {
    if (profile == request.device_profile) continue;  // already tried
    TenantKey candidate{request.building, request.floor, profile};
    if (contains(candidate)) return {Kind::Fallback, std::move(candidate)};
  }
  return {Kind::Miss, {}};
}

}  // namespace cal::serve
