// Tenant → model registry for multi-venue serving.
//
// The ROADMAP north star is one process serving many venues and device
// profiles. The registry is the deployment catalogue that makes that
// possible: each tenant — a (building, floor, device_profile) triple —
// owns a ReplicaFactory for its trained model, its shard-scoped anchor
// database, and its shard-local lane configuration (thresholds, cache,
// drift policy, worker count). The router (router.hpp) maps incoming
// tenant metadata onto these entries; requests whose exact device profile
// has no dedicated model walk a configurable profile fallback chain
// (the heterogeneity study shows per-device error spread, so a dedicated
// per-profile replica set is better when available — but a venue-generic
// model beats a reject).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/service.hpp"

namespace cal::serve {

/// Identity of one serving tenant. An empty device_profile means "the
/// venue-generic entry" — the conventional end of a fallback chain.
struct TenantKey {
  std::string building;
  std::size_t floor = 0;
  std::string device_profile;

  bool operator==(const TenantKey&) const = default;

  /// "building/floor:profile" (profile "*" when empty) for reports.
  std::string str() const;
};

struct TenantKeyHash {
  std::size_t operator()(const TenantKey& k) const;
};

/// Everything needed to stand up one tenant's shard lane.
struct TenantSpec {
  /// Builds one trained replica per lane worker. Required.
  ReplicaFactory factory;
  /// Fingerprint width of this venue. Required (> 0).
  std::size_t num_aps = 0;
  /// Shard-scoped anchor database (M x num_aps, normalised); empty
  /// disables screening for this shard.
  Tensor anchors;
  /// Shard-local lane configuration: workers, batching, cache, screening
  /// thresholds, drift policy, seed.
  ServiceConfig service;
};

/// Catalogue of trained models keyed by tenant. Mutable while a
/// deployment is being assembled; the multi-tenant engine snapshots it at
/// construction, so register everything first, then serve.
class ModelRegistry {
 public:
  /// Register one tenant. Throws on a duplicate key, a null factory, a
  /// zero num_aps, or an anchor matrix that does not match num_aps.
  void register_tenant(TenantKey key, TenantSpec spec);

  /// Device profiles tried, in order, when a request's exact profile has
  /// no entry. Default: {""} — fall back to the venue-generic entry only.
  void set_profile_fallbacks(std::vector<std::string> chain);
  const std::vector<std::string>& profile_fallbacks() const {
    return fallbacks_;
  }

  std::size_t size() const { return tenants_.size(); }
  bool contains(const TenantKey& key) const;
  const TenantSpec* find(const TenantKey& key) const;

  /// Registered tenant keys in deterministic (str()-sorted) order — the
  /// shard numbering every component agrees on.
  std::vector<TenantKey> keys() const;

  /// How a requested tenant maps onto the catalogue.
  struct Resolution {
    enum class Kind { Exact, Fallback, Miss };
    Kind kind = Kind::Miss;
    TenantKey resolved;  ///< valid unless kind == Miss
  };
  Resolution resolve(const TenantKey& request) const;

 private:
  std::unordered_map<TenantKey, TenantSpec, TenantKeyHash> tenants_;
  std::vector<std::string> fallbacks_{std::string{}};
};

/// THE tenant-resolution policy — exact key, then the profile fallback
/// chain, else miss — in one place, shared by ModelRegistry::resolve and
/// ShardRouter::route (which runs it over its own key snapshot).
/// `contains` answers membership over whichever key set the caller holds.
template <typename ContainsFn>
ModelRegistry::Resolution resolve_tenant(const TenantKey& request,
                                         std::span<const std::string> fallbacks,
                                         ContainsFn&& contains) {
  using Kind = ModelRegistry::Resolution::Kind;
  if (contains(request)) return {Kind::Exact, request};
  for (const std::string& profile : fallbacks) {
    if (profile == request.device_profile) continue;  // already tried
    TenantKey candidate{request.building, request.floor, profile};
    if (contains(candidate)) return {Kind::Fallback, std::move(candidate)};
  }
  return {Kind::Miss, {}};
}

}  // namespace cal::serve
