#include "serve/lru_cache.hpp"

#include <cmath>

#include "common/ensure.hpp"
#include "common/hash.hpp"

namespace cal::serve {

FingerprintCache::FingerprintCache(std::size_t capacity, float quant_step)
    : capacity_(capacity), quant_step_(quant_step) {
  CAL_ENSURE(quant_step_ > 0.0F,
             "cache quantization step must be positive, got " << quant_step_);
}

FingerprintCache::Key FingerprintCache::make_key(
    std::span<const float> fingerprint) const {
  Key key(fingerprint.size());
  for (std::size_t i = 0; i < fingerprint.size(); ++i)
    key[i] = static_cast<std::int32_t>(
        std::lround(fingerprint[i] / quant_step_));
  return key;
}

std::optional<std::size_t> FingerprintCache::lookup(const Key& key) {
  if (!enabled()) return std::nullopt;
  MutexLock lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  order_.splice(order_.begin(), order_, it->second);  // bump to MRU
  ++hits_;
  return it->second->second;
}

void FingerprintCache::insert(const Key& key, std::size_t rp) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = rp;
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (order_.size() >= capacity_) {
    map_.erase(order_.back().first);
    order_.pop_back();
  }
  order_.emplace_front(key, rp);
  map_.emplace(key, order_.begin());
}

void FingerprintCache::clear() {
  MutexLock lock(mu_);
  map_.clear();
  order_.clear();
}

std::size_t FingerprintCache::size() const {
  MutexLock lock(mu_);
  return order_.size();
}

std::size_t FingerprintCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

std::size_t FingerprintCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

std::size_t FingerprintCache::KeyHash::operator()(const Key& k) const {
  // FNV-1a over the quantized coordinates.
  Fnv1a h;
  for (const std::int32_t v : k) h.mix(v);
  return h.value();
}

}  // namespace cal::serve
