#include "serve/screening.hpp"

#include <cmath>

#include "common/ensure.hpp"
#include "common/fault_inject.hpp"
#include "common/stats.hpp"
#include "core/calloc.hpp"

namespace cal::serve {

std::string to_string(Verdict v) {
  switch (v) {
    case Verdict::Accept: return "accept";
    case Verdict::Flag: return "flag";
    case Verdict::Reject: return "reject";
  }
  return "?";
}

double anchor_distance(const Tensor& anchors,
                       std::span<const float> fingerprint) {
  CAL_ENSURE(anchors.rank() == 2 && anchors.rows() > 0,
             "anchor database must be a non-empty matrix");
  CAL_ENSURE(fingerprint.size() == anchors.cols(),
             "fingerprint has " << fingerprint.size()
                                << " APs, anchors expect " << anchors.cols());
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t m = 0; m < anchors.rows(); ++m) {
    const auto row = anchors.row(m);
    double sq = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) {
      const double d = static_cast<double>(fingerprint[j]) - row[j];
      sq += d * d;
    }
    best = std::min(best, sq);
  }
  return std::sqrt(best / static_cast<double>(anchors.cols()));
}

Tensor anchor_database_from(const data::FingerprintDataset& train) {
  return core::build_anchor_database(train);
}

ScreeningThresholds calibrate_thresholds(const Tensor& anchors,
                                         const Tensor& clean_x_normalized,
                                         double flag_percentile,
                                         double reject_factor) {
  // Calibration runs inside replica factories (registry publish): a fault
  // here must surface as a failed publish, never a half-built deployment.
  CAL_FAULT_POINT("serve.screen_calibrate");
  CAL_ENSURE(flag_percentile >= 0.0 && flag_percentile <= 100.0,
             "flag percentile out of [0,100]: " << flag_percentile);
  CAL_ENSURE(reject_factor >= 1.0,
             "reject factor must be >= 1, got " << reject_factor);
  CAL_ENSURE(clean_x_normalized.rank() == 2 && clean_x_normalized.rows() > 0,
             "calibration needs a non-empty clean batch");
  std::vector<double> dists(clean_x_normalized.rows());
  for (std::size_t i = 0; i < clean_x_normalized.rows(); ++i) {
    dists[i] = anchor_distance(anchors, clean_x_normalized.row(i));
    // A non-finite clean sample would make the percentile (and hence both
    // cutoffs) NaN, which silently disables the screen: thresholds must
    // come out of calibration finite, always.
    CAL_ENSURE(std::isfinite(dists[i]),
               "calibration sample " << i << " has a non-finite anchor "
                                     << "distance");
  }
  ScreeningThresholds th;
  th.flag_distance = percentile(dists, flag_percentile);
  th.reject_distance = th.flag_distance * reject_factor;
  CAL_INVARIANT(std::isfinite(th.flag_distance) &&
                    std::isfinite(th.reject_distance),
                "calibrated thresholds must be finite");
  return th;
}

AnchorScreen::AnchorScreen(Tensor anchors, ScreeningThresholds thresholds)
    : index_(std::move(anchors)), thresholds_(thresholds) {
  CAL_ENSURE(thresholds_.flag_distance >= 0.0 &&
                 thresholds_.reject_distance >= thresholds_.flag_distance,
             "screening thresholds must satisfy 0 <= flag <= reject");
}

double AnchorScreen::distance(std::span<const float> fingerprint,
                              ShardIndexProbe* probe) const {
  if (!enabled()) return 0.0;
  return index_.nearest(fingerprint, probe);
}

Verdict AnchorScreen::classify(double distance) const {
  if (!enabled()) return Verdict::Accept;
  if (distance > thresholds_.reject_distance) return Verdict::Reject;
  if (distance > thresholds_.flag_distance) return Verdict::Flag;
  return Verdict::Accept;
}

}  // namespace cal::serve
