// Concurrent, batched online-localization shard lane.
//
// LocalizationService is ONE serving lane: a trained model (replicated or
// shared), a bounded queue, a worker pool, a shard-local anchor screen,
// LRU cache, drift monitor, and stats collector. Deployed standalone it
// serves a single venue exactly as before; the multi-tenant engine
// (router.hpp) runs one lane per registered tenant, so every shard keeps
// its own thresholds, cache, and telemetry:
//
//   clients ──submit()──▶ bounded queue ──▶ worker pool ──▶ futures
//                                           │ per worker:
//                                           │  1. anchor-distance screen
//                                           │     (shard-index pruned;
//                                           │      rejects skip the rest)
//                                           │  2. LRU cache probe
//                                           │  3. coalesce survivors into
//                                           │     ONE batched predict()
//                                           │  4. drift trend check — a
//                                           │     drifted shard flushes
//                                           │     its own cache
//
// Concurrency model. Two deployment shapes are supported:
//  * replica mode — a ReplicaFactory builds one independent model replica
//    per worker (e.g. Calloc::load_weights from one trained artefact).
//    Workers never share mutable model state, so inference runs fully in
//    parallel. Because every replica carries bit-identical weights and the
//    forward math is row-independent, batched concurrent serving returns
//    bit-identical predictions to sequential predict() calls.
//  * shared mode — a single borrowed ILocalizer guarded by an internal
//    mutex. Inference is serialized (ILocalizer::predict is not required
//    to be thread-safe), but micro-batching still amortizes per-call graph
//    setup: B coalesced fingerprints are one matmul-sized forward pass
//    instead of B scalar loops.
//
// Every worker owns a private cal::Rng stream forked from ServiceConfig::
// seed (Rng instances must not be shared across threads — see rng.hpp);
// it drives the randomized cache-hit audit.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/localizer.hpp"
#include "serve/lru_cache.hpp"
#include "serve/queue.hpp"
#include "serve/screening.hpp"
#include "serve/stats.hpp"

namespace cal::serve {

/// Outcome of one localization request.
struct ServeResult {
  std::size_t rp = 0;       ///< predicted RP; meaningful iff `localized`
  bool localized = false;   ///< false when the screen rejected the request
  Verdict verdict = Verdict::Accept;
  double anchor_distance = 0.0;  ///< screening score (0 if screening off)
  bool from_cache = false;
  double latency_ms = 0.0;  ///< submit -> fulfillment, queueing included
};

/// Builds one independent, already-trained model replica per call.
using ReplicaFactory =
    std::function<std::unique_ptr<baselines::ILocalizer>()>;

/// When to flush a shard's LRU because the radio map drifted away from
/// the cached answers. The monitor windows screening distances
/// (non-rejected traffic only): the first completed window pins the
/// baseline; each later window's mean is compared against that baseline
/// (slope) and against an absolute level. Crossing either flushes the
/// cache and the drifted window becomes the new baseline, so a
/// persistent shift flushes once and then serves normally from the new
/// radio map — while the baseline stays pinned between flushes, so
/// gradual drift that creeps below slope_factor per window still
/// accumulates and eventually flushes.
struct DriftPolicy {
  /// Samples per window; 0 disables drift tracking.
  std::size_t window = 0;
  /// Flush when mean(current) > slope_factor * mean(baseline).
  double slope_factor = 1.5;
  /// Flush when mean(current) > level (absolute, RMS-per-AP scale).
  double level = std::numeric_limits<double>::infinity();
};

/// Thread-safe windowed trend detector over screening distances.
class DriftMonitor {
 public:
  DriftMonitor() = default;
  explicit DriftMonitor(DriftPolicy policy);

  bool enabled() const { return policy_.window > 0; }

  /// Record one screening distance. Returns true when the windowed trend
  /// crossed the policy — the caller should flush its cache. The drifted
  /// window then becomes the new baseline.
  bool record(double distance);

 private:
  DriftPolicy policy_;
  std::mutex mu_;
  double baseline_mean_ = -1.0;  ///< < 0 until the first window completes
  double current_sum_ = 0.0;
  std::size_t current_n_ = 0;
};

struct ServiceConfig {
  std::size_t num_workers = 2;
  /// Micro-batch coalescing cap B: a worker drains up to this many queued
  /// requests and runs them through one batched predict() call.
  std::size_t max_batch = 16;
  /// Bounded queue capacity; submit() blocks (backpressure) when full.
  std::size_t queue_capacity = 256;
  /// LRU entries; 0 disables caching.
  std::size_t cache_capacity = 0;
  /// Cache key grid on the normalised [0,1] RSS scale (0.005 ⇔ 0.5 dB).
  float cache_quant_step = 0.005F;
  /// Probability that a cache hit is re-inferred and compared against the
  /// cached value (guards against quantization collisions). 0 = off.
  double cache_audit_rate = 0.0;
  /// Accept/flag/reject cutoffs; defaults accept everything.
  ScreeningThresholds screening;
  /// Drift-triggered cache invalidation; disabled by default.
  DriftPolicy drift;
  /// Base seed for the per-worker Rng streams.
  std::uint64_t seed = 2026;
};

/// Thread-safe localization front door over a trained ILocalizer — one
/// shard lane of the serving engine.
class LocalizationService {
 public:
  /// Replica mode. `anchors` is the normalised anchor database used for
  /// screening (pass an empty Tensor to disable screening regardless of
  /// thresholds). The factory is invoked num_workers times, up front.
  LocalizationService(ReplicaFactory factory, std::size_t num_aps,
                      Tensor anchors, ServiceConfig cfg);

  /// Shared mode: borrows `model` (caller keeps it alive); model access
  /// is serialized through an internal mutex.
  LocalizationService(baselines::ILocalizer& model, std::size_t num_aps,
                      Tensor anchors, ServiceConfig cfg);

  LocalizationService(const LocalizationService&) = delete;
  LocalizationService& operator=(const LocalizationService&) = delete;
  ~LocalizationService();

  /// Enqueue one normalised fingerprint (size == num_aps). Blocks while
  /// the queue is at capacity. Throws PreconditionError after shutdown().
  std::future<ServeResult> submit(std::vector<float> fingerprint_normalized);

  /// Stop accepting requests, drain the queue, join the workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  ServiceStats stats() const { return stats_.snapshot(); }

  /// Restart this lane's telemetry wall clock (see
  /// StatsCollector::reset_clock). Counters are untouched.
  void reset_telemetry_clock() { stats_.reset_clock(); }

  std::size_t num_aps() const { return num_aps_; }
  std::size_t num_workers() const { return cfg_.num_workers; }
  const FingerprintCache& cache() const { return cache_; }
  const AnchorScreen& screen() const { return screen_; }

 private:
  struct Pending {
    std::vector<float> fingerprint;
    std::promise<ServeResult> promise;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  LocalizationService(ReplicaFactory factory,
                      baselines::ILocalizer* shared_model,
                      std::size_t num_aps, Tensor anchors, ServiceConfig cfg);

  void worker_loop(std::size_t worker_index);
  std::vector<std::size_t> run_inference(std::size_t worker_index,
                                         const Tensor& batch);

  ServiceConfig cfg_;
  std::size_t num_aps_;
  AnchorScreen screen_;
  FingerprintCache cache_;
  DriftMonitor drift_;
  StatsCollector stats_;
  BoundedQueue<Pending> queue_;

  baselines::ILocalizer* shared_model_ = nullptr;  // shared mode
  std::mutex shared_model_mu_;
  std::vector<std::unique_ptr<baselines::ILocalizer>> replicas_;

  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;
};

}  // namespace cal::serve
