// Serving-lane primitives, and the single-tenant compatibility shim.
//
// This header defines the vocabulary every layer of the serving stack
// shares: ServeResult (what a request resolves to), ReplicaFactory (how a
// trained model is deployed), ServiceConfig (per-tenant lane tuning:
// batching, cache, screening thresholds, drift policy, admission quota),
// and the DriftMonitor that watches a tenant's screening-distance trend.
//
// Execution lives in ServeEngine (engine.hpp): ONE shared worker pool
// runs micro-batches for every registered tenant, with per-tenant bounded
// sub-queues and token-bucket admission. LocalizationService below is the
// PR 2-era single-tenant front door, kept for one more PR as a thin
// DEPRECATED shim: it registers exactly one tenant on a private engine
// and emulates the old blocking submit() by retrying non-blocking
// admission. New code should build a ModelRegistry, publish() a
// DeploymentSnapshot, and talk to ServeEngine directly.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "baselines/localizer.hpp"
#include "serve/lru_cache.hpp"
#include "serve/screening.hpp"
#include "serve/stats.hpp"

namespace cal::serve {

class ServeEngine;  // engine.hpp — execution layer behind the shim

/// Outcome of one localization request.
struct ServeResult {
  std::size_t rp = 0;       ///< predicted RP; meaningful iff `localized`
  bool localized = false;   ///< false when the screen rejected the request
  Verdict verdict = Verdict::Accept;
  double anchor_distance = 0.0;  ///< screening score (0 if screening off)
  bool from_cache = false;
  /// Admission (post-quota enqueue) -> fulfillment on the monotonic
  /// clock: queueing and inference, but never time the client spent
  /// stalled at the quota/backpressure door before being admitted.
  double latency_ms = 0.0;
};

/// Builds one independent, already-trained model replica per call.
using ReplicaFactory =
    std::function<std::unique_ptr<baselines::ILocalizer>()>;

/// When to flush a shard's LRU because the radio map drifted away from
/// the cached answers. The monitor windows screening distances
/// (non-rejected traffic only): the first completed window pins the
/// baseline; each later window's mean is compared against that baseline
/// (slope) and against an absolute level. Crossing either flushes the
/// cache and the drifted window becomes the new baseline, so a
/// persistent shift flushes once and then serves normally from the new
/// radio map — while the baseline stays pinned between flushes, so
/// gradual drift that creeps below slope_factor per window still
/// accumulates and eventually flushes.
struct DriftPolicy {
  /// Samples per window; 0 disables drift tracking.
  std::size_t window = 0;
  /// Flush when mean(current) > slope_factor * mean(baseline).
  double slope_factor = 1.5;
  /// Flush when mean(current) > level (absolute, RMS-per-AP scale).
  double level = std::numeric_limits<double>::infinity();
};

/// Operator-facing view of a DriftMonitor: the windowed trend itself, not
/// just the flush count, so drift is visible while it is still building
/// (the ROADMAP follow-on to drift-triggered invalidation). Exported per
/// tenant through TenantStats (engine.hpp).
struct DriftTrend {
  bool enabled = false;
  std::size_t window = 0;            ///< samples per window
  /// Pinned baseline window mean; < 0 until the first window completes.
  double baseline_mean = -1.0;
  /// Most recent completed window's mean; < 0 until one completes.
  double last_window_mean = -1.0;
  double partial_mean = 0.0;         ///< mean of the in-progress window
  std::size_t partial_n = 0;         ///< samples in the in-progress window
  std::size_t windows_completed = 0;
};

/// Thread-safe windowed trend detector over screening distances.
class DriftMonitor {
 public:
  DriftMonitor() = default;
  explicit DriftMonitor(DriftPolicy policy);

  bool enabled() const { return policy_.window > 0; }

  /// Record one screening distance. Returns true when the windowed trend
  /// crossed the policy — the caller should flush its cache. The drifted
  /// window then becomes the new baseline.
  bool record(double distance);

  /// Forget the baseline and the in-progress window — the engine calls
  /// this when a tenant is hot-reloaded: the new radio map's distance
  /// distribution must pin a fresh baseline, not be judged against the
  /// retired deployment's.
  void reset();

  /// Point-in-time copy of the trend for telemetry.
  DriftTrend snapshot() const;

 private:
  DriftPolicy policy_;
  mutable std::mutex mu_;
  double baseline_mean_ = -1.0;  ///< < 0 until the first window completes
  double last_window_mean_ = -1.0;
  std::size_t windows_completed_ = 0;
  double current_sum_ = 0.0;
  std::size_t current_n_ = 0;
};

/// Per-tenant token-bucket admission quota. A tenant's submissions drain
/// tokens; the bucket refills at `rate_per_s` up to `burst`. Once empty,
/// submit() returns Admission::OverQuota instead of enqueueing — one
/// venue's traffic burst is shed at the door rather than starving the
/// shared worker pool (Sec5GLoc's per-tenant isolation under attack
/// traffic). rate_per_s == 0 disables the quota.
struct QuotaPolicy {
  double rate_per_s = 0.0;  ///< sustained admitted requests/second; 0 = off
  /// Bucket capacity (instantaneous burst allowance); 0 means rate_per_s.
  double burst = 0.0;
};

struct ServiceConfig {
  /// Engine: replica slots for this tenant — the max number of pool
  /// workers that can run this tenant's batches concurrently (the
  /// factory builds one replica per slot). Legacy shim: also the size of
  /// the private worker pool.
  std::size_t num_workers = 2;
  /// Micro-batch coalescing cap B: a worker drains up to this many queued
  /// requests and runs them through one batched predict() call.
  std::size_t max_batch = 16;
  /// Bounded per-tenant sub-queue capacity; the engine's submit() returns
  /// Admission::QueueFull when reached (the legacy shim retries instead,
  /// emulating the old blocking backpressure).
  std::size_t queue_capacity = 256;
  /// LRU entries; 0 disables caching.
  std::size_t cache_capacity = 0;
  /// Cache key grid on the normalised [0,1] RSS scale (0.005 ⇔ 0.5 dB).
  float cache_quant_step = 0.005F;
  /// Probability that a cache hit is re-inferred and compared against the
  /// cached value (guards against quantization collisions). 0 = off.
  double cache_audit_rate = 0.0;
  /// Accept/flag/reject cutoffs; defaults accept everything.
  ScreeningThresholds screening;
  /// Drift-triggered cache invalidation; disabled by default.
  DriftPolicy drift;
  /// Token-bucket admission quota; unlimited by default.
  QuotaPolicy quota;
  /// Base seed for the per-worker Rng streams.
  std::uint64_t seed = 2026;
};

/// DEPRECATED single-tenant shim over ServeEngine — kept for one PR so
/// downstream code migrates gradually. It registers one tenant
/// ("default/0:*") on a private engine whose pool has num_workers
/// threads, and emulates the historical blocking submit() by retrying
/// OverQuota / QueueFull admissions with a short sleep. Semantics match
/// the old lane: bit-identical batched predictions, shard-local screen /
/// cache / drift / stats.
class LocalizationService {
 public:
  /// Replica mode. `anchors` is the normalised anchor database used for
  /// screening (pass an empty Tensor to disable screening regardless of
  /// thresholds). The factory is invoked num_workers times, up front.
  LocalizationService(ReplicaFactory factory, std::size_t num_aps,
                      Tensor anchors, ServiceConfig cfg);

  /// Shared mode: borrows `model` (caller keeps it alive); the engine
  /// serializes access by giving the tenant a single replica slot.
  LocalizationService(baselines::ILocalizer& model, std::size_t num_aps,
                      Tensor anchors, ServiceConfig cfg);

  LocalizationService(const LocalizationService&) = delete;
  LocalizationService& operator=(const LocalizationService&) = delete;
  ~LocalizationService();

  /// Enqueue one normalised fingerprint (size == num_aps). Blocks
  /// (retrying admission) while the sub-queue is at capacity or the
  /// quota is exhausted. Throws PreconditionError after shutdown().
  std::future<ServeResult> submit(std::vector<float> fingerprint_normalized);

  /// Stop accepting requests, drain the queue, join the workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  ServiceStats stats() const;

  /// Restart this lane's telemetry wall clock (see
  /// StatsCollector::reset_clock). Counters are untouched.
  void reset_telemetry_clock();

  std::size_t num_aps() const { return num_aps_; }
  std::size_t num_workers() const { return cfg_.num_workers; }
  const FingerprintCache& cache() const;
  const AnchorScreen& screen() const;
  DriftTrend drift_trend() const;

  /// The engine behind the shim — the migration escape hatch.
  ServeEngine& engine() { return *engine_; }
  const ServeEngine& engine() const { return *engine_; }

 private:
  LocalizationService(ReplicaFactory factory,
                      baselines::ILocalizer* shared_model,
                      std::size_t num_aps, Tensor anchors, ServiceConfig cfg);

  ServiceConfig cfg_;
  std::size_t num_aps_;
  std::unique_ptr<ServeEngine> engine_;
};

}  // namespace cal::serve
