// Serving-lane primitives.
//
// This header defines the vocabulary every layer of the serving stack
// shares: ServeResult (what a request resolves to), ReplicaFactory (how a
// trained model is deployed), ServiceConfig (per-tenant lane tuning:
// batching, cache, screening thresholds, drift policy, admission quota),
// and the DriftMonitor that watches a tenant's screening-distance trend.
//
// Execution lives in ServeEngine (engine.hpp): ONE shared worker pool
// runs micro-batches for every registered tenant, with per-tenant bounded
// sub-queues and token-bucket admission. Build a ModelRegistry,
// publish() a DeploymentSnapshot, and talk to ServeEngine directly. (The
// PR 2-era LocalizationService / MultiTenantService shims reached the
// end of their declared one-PR lifetime and are gone.)
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "baselines/localizer.hpp"
#include "common/thread_annotations.hpp"
#include "serve/screening.hpp"
#include "serve/stats.hpp"

namespace cal::serve {

/// Typed terminal status of one request: WHY the future resolved. The
/// serving pipeline ran only for Served (localized or screen-rejected);
/// every other value is the fault-containment layer resolving the future
/// deterministically instead of serving it.
enum class ServeStatus : std::uint8_t {
  Served = 0,  ///< ran the pipeline; `localized`/`verdict` are meaningful
  Denied,      ///< never enqueued — the Admission enum says why
  Expired,     ///< deadline passed before inference; shed at dequeue
  Faulted,     ///< replica predict threw; failed by fault containment
  Dropped,     ///< tenant removed / width-changed under a queued request
  ShutDown,    ///< engine shut down with the request still queued
};

const char* to_string(ServeStatus s);

/// Outcome of one localization request.
struct ServeResult {
  std::size_t rp = 0;       ///< predicted RP; meaningful iff `localized`
  bool localized = false;   ///< false when the screen rejected the request
  ServeStatus status = ServeStatus::Served;
  Verdict verdict = Verdict::Accept;
  double anchor_distance = 0.0;  ///< screening score (0 if screening off)
  bool from_cache = false;
  /// Admission (post-quota enqueue) -> fulfillment on the monotonic
  /// clock: queueing and inference, but never time the client spent
  /// stalled at the quota/backpressure door before being admitted.
  double latency_ms = 0.0;
};

/// Builds one independent, already-trained model replica per call.
using ReplicaFactory =
    std::function<std::unique_ptr<baselines::ILocalizer>()>;

/// When to flush a shard's LRU because the radio map drifted away from
/// the cached answers. The monitor windows screening distances
/// (non-rejected traffic only): the first completed window pins the
/// baseline; each later window's mean is compared against that baseline
/// (slope) and against an absolute level. Crossing either flushes the
/// cache and the drifted window becomes the new baseline, so a
/// persistent shift flushes once and then serves normally from the new
/// radio map — while the baseline stays pinned between flushes, so
/// gradual drift that creeps below slope_factor per window still
/// accumulates and eventually flushes.
struct DriftPolicy {
  /// Samples per window; 0 disables drift tracking.
  std::size_t window = 0;
  /// Flush when mean(current) > slope_factor * mean(baseline).
  double slope_factor = 1.5;
  /// Flush when mean(current) > level (absolute, RMS-per-AP scale).
  double level = std::numeric_limits<double>::infinity();
};

/// Operator-facing view of a DriftMonitor: the windowed trend itself, not
/// just the flush count, so drift is visible while it is still building
/// (the ROADMAP follow-on to drift-triggered invalidation). Exported per
/// tenant through TenantStats (engine.hpp).
struct DriftTrend {
  bool enabled = false;
  std::size_t window = 0;            ///< samples per window
  /// Pinned baseline window mean; < 0 until the first window completes.
  double baseline_mean = -1.0;
  /// Most recent completed window's mean; < 0 until one completes.
  double last_window_mean = -1.0;
  double partial_mean = 0.0;         ///< mean of the in-progress window
  std::size_t partial_n = 0;         ///< samples in the in-progress window
  std::size_t windows_completed = 0;
};

/// Thread-safe windowed trend detector over screening distances.
class DriftMonitor {
 public:
  DriftMonitor() = default;
  explicit DriftMonitor(DriftPolicy policy);

  bool enabled() const { return policy_.window > 0; }

  /// Record one screening distance. Returns true when the windowed trend
  /// crossed the policy — the caller should flush its cache. The drifted
  /// window then becomes the new baseline.
  bool record(double distance) CAL_EXCLUDES(mu_);

  /// Forget the baseline and the in-progress window — the engine calls
  /// this when a tenant is hot-reloaded: the new radio map's distance
  /// distribution must pin a fresh baseline, not be judged against the
  /// retired deployment's.
  void reset() CAL_EXCLUDES(mu_);

  /// Point-in-time copy of the trend for telemetry.
  DriftTrend snapshot() const CAL_EXCLUDES(mu_);

 private:
  DriftPolicy policy_;  ///< immutable after construction
  mutable Mutex mu_;
  /// < 0 until the first window completes.
  double baseline_mean_ CAL_GUARDED_BY(mu_) = -1.0;
  double last_window_mean_ CAL_GUARDED_BY(mu_) = -1.0;
  std::size_t windows_completed_ CAL_GUARDED_BY(mu_) = 0;
  double current_sum_ CAL_GUARDED_BY(mu_) = 0.0;
  std::size_t current_n_ CAL_GUARDED_BY(mu_) = 0;
};

/// Per-tenant token-bucket admission quota. A tenant's submissions drain
/// tokens; the bucket refills at `rate_per_s` up to `burst`. Once empty,
/// submit() returns Admission::OverQuota instead of enqueueing — one
/// venue's traffic burst is shed at the door rather than starving the
/// shared worker pool (Sec5GLoc's per-tenant isolation under attack
/// traffic). rate_per_s == 0 disables the quota.
struct QuotaPolicy {
  double rate_per_s = 0.0;  ///< sustained admitted requests/second; 0 = off
  /// Bucket capacity (instantaneous burst allowance); 0 means rate_per_s.
  double burst = 0.0;
};

/// Per-tenant circuit breaker over replica faults. `fault_threshold`
/// consecutive faulted requests (a batch with any served request resets
/// the streak) open the breaker: submits fast-fail with ready futures
/// (Admission::BreakerOpen) so a broken tenant costs the shared pool
/// nothing. After `open_for_s` the breaker goes half-open and admits up
/// to `half_open_probes` probe requests; a faulted probe reopens with the
/// interval multiplied by `backoff_factor` (capped at `max_open_s`), a
/// served probe closes the breaker. fault_threshold == 0 disables it.
struct BreakerPolicy {
  std::size_t fault_threshold = 0;  ///< consecutive faults to open; 0 = off
  double open_for_s = 0.5;          ///< initial open interval, seconds
  double backoff_factor = 2.0;      ///< interval growth per failed probe
  double max_open_s = 30.0;         ///< open-interval ceiling, seconds
  std::size_t half_open_probes = 1; ///< probes admitted while half-open
};

struct ServiceConfig {
  /// Engine: replica slots for this tenant — the max number of pool
  /// workers that can run this tenant's batches concurrently (the
  /// factory builds one replica per slot).
  std::size_t num_workers = 2;
  /// Micro-batch coalescing cap B: a worker drains up to this many queued
  /// requests and runs them through one batched predict() call.
  std::size_t max_batch = 16;
  /// Bounded per-tenant sub-queue capacity; the engine's submit() returns
  /// Admission::QueueFull when reached (submit_blocking retries instead,
  /// for producers that want the old blocking backpressure).
  std::size_t queue_capacity = 256;
  /// LRU entries; 0 disables caching.
  std::size_t cache_capacity = 0;
  /// Cache key grid on the normalised [0,1] RSS scale (0.005 ⇔ 0.5 dB).
  float cache_quant_step = 0.005F;
  /// Probability that a cache hit is re-inferred and compared against the
  /// cached value (guards against quantization collisions). 0 = off.
  double cache_audit_rate = 0.0;
  /// Accept/flag/reject cutoffs; defaults accept everything.
  ScreeningThresholds screening;
  /// Drift-triggered cache invalidation; disabled by default.
  DriftPolicy drift;
  /// Token-bucket admission quota; unlimited by default.
  QuotaPolicy quota;
  /// Fault circuit breaker; disabled by default.
  BreakerPolicy breaker;
  /// Base seed for the per-worker Rng streams.
  std::uint64_t seed = 2026;
};

}  // namespace cal::serve
