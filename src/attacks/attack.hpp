// White-box adversarial attacks on RSS fingerprints (paper §III).
//
// All attacks operate on the normalised [0,1] RSS scale (so ϵ matches the
// paper's 0.1–0.5 range), perturb only a chosen subset of ø% of the APs
// (the attacker's targeted-AP budget), and clip results to the valid RSS
// box [0,1].
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "attacks/gradient_source.hpp"
#include "tensor/tensor.hpp"

namespace cal::attacks {

/// How the attacker picks the ø% targeted APs.
enum class TargetSelection {
  Strongest,  ///< highest mean RSS — the white-box prior (most informative)
  Random,     ///< uniform subset (seeded)
  Saliency,   ///< largest mean |∇ₓJ| — pure gradient-driven choice
};

/// Which attack algorithm to run.
enum class AttackKind { None, Fgsm, Pgd, Mim };

/// Name strings for reports ("FGSM", "PGD", "MIM", "None").
std::string to_string(AttackKind kind);
std::string to_string(TargetSelection sel);

/// Attack hyper-parameters.
struct AttackConfig {
  double epsilon = 0.1;       ///< L∞ budget on normalised RSS
  double phi_percent = 100.0; ///< ø: percentage of APs targeted (0..100]
  std::size_t num_steps = 10; ///< PGD/MIM iterations
  double alpha = 0.0;         ///< step size; 0 ⇒ 2.5·ϵ/num_steps
  double momentum_decay = 1.0;///< MIM µ
  TargetSelection selection = TargetSelection::Strongest;
  std::uint64_t seed = 7;     ///< randomised selection / PGD start
  bool random_start = false;  ///< PGD random initialisation inside ϵ-ball
};

/// Resolve the attacked AP column set for a batch (shared across rows —
/// the MITM attacker compromises physical APs, not per-packet columns).
std::vector<std::size_t> select_target_aps(const Tensor& x,
                                           std::span<const std::size_t> y,
                                           const AttackConfig& cfg,
                                           GradientSource& grads);

/// Fast Gradient Sign Method (eq. 1): X_adv = X + ϵ·sign(∇ₓJ) on the
/// targeted columns, clipped to [0,1].
Tensor fgsm_attack(GradientSource& grads, const Tensor& x,
                   std::span<const std::size_t> y, const AttackConfig& cfg);

/// Projected Gradient Descent (eq. 2): iterative ϵ-ball ascent with
/// per-step clip.
Tensor pgd_attack(GradientSource& grads, const Tensor& x,
                  std::span<const std::size_t> y, const AttackConfig& cfg);

/// Momentum Iterative Method: PGD with accumulated normalised gradient
/// momentum (Dong et al., CVPR'18).
Tensor mim_attack(GradientSource& grads, const Tensor& x,
                  std::span<const std::size_t> y, const AttackConfig& cfg);

/// Dispatch on kind (None returns x unchanged).
Tensor run_attack(AttackKind kind, GradientSource& grads, const Tensor& x,
                  std::span<const std::size_t> y, const AttackConfig& cfg);

}  // namespace cal::attacks
