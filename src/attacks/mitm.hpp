// Man-in-the-middle channel attack wrapper (paper §III.A).
//
// The gradient attacks in attack.hpp compute *what* perturbation misleads
// the model; this wrapper models *where* the adversary injects it:
//
//  * SignalManipulation — the adversary tampers with genuine frames in
//    flight, so it can only perturb APs the victim device actually
//    detected (a not-detected AP has no frames to tamper with);
//  * SignalSpoofing — the adversary fabricates counterfeit frames that
//    mimic a target AP (cloned MAC/channel), so it can also conjure
//    readings for APs the device did not hear, and its counterfeit power
//    budget allows larger effective swings.
//
// Both modes take the gradient-crafted adversarial example and restrict it
// to what their channel position can physically realise.
#pragma once

#include "attacks/attack.hpp"

namespace cal::attacks {

/// Channel-side injection mode.
enum class MitmMode {
  SignalManipulation,
  SignalSpoofing,
};

std::string to_string(MitmMode mode);

/// Apply a MITM attack: craft X_adv with `kind` under `cfg`, then restrict
/// the perturbation to what `mode` can realise given the clean capture
/// (normalised features; a clean value of 0.0 means "not detected").
///
/// Returns the fingerprint batch the victim device would actually report.
Tensor mitm_attack(MitmMode mode, AttackKind kind, GradientSource& grads,
                   const Tensor& x_clean, std::span<const std::size_t> y,
                   const AttackConfig& cfg);

}  // namespace cal::attacks
