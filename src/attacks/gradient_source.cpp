#include "attacks/gradient_source.hpp"

#include "autograd/ops.hpp"
#include "common/ensure.hpp"

namespace cal::attacks {

ModuleGradientSource::ModuleGradientSource(nn::Module& model)
    : model_(&model) {}

Tensor ModuleGradientSource::input_gradient(const Tensor& x,
                                            std::span<const std::size_t> y) {
  CAL_ENSURE(x.rank() == 2, "input_gradient expects rank-2 inputs");
  CAL_ENSURE(y.size() == x.rows(), "labels/batch mismatch");
  const bool was_training = model_->training();
  model_->set_training(false);
  auto input = autograd::make_leaf(x, /*requires_grad=*/true);
  auto logits = model_->forward(input);
  auto loss = autograd::cross_entropy(logits, y);
  autograd::backward(loss);
  model_->set_training(was_training);
  return input->grad();
}

}  // namespace cal::attacks
