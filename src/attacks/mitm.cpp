#include "attacks/mitm.hpp"

#include "common/ensure.hpp"

namespace cal::attacks {
namespace {

/// Normalised value below which an AP counts as "not detected" (clean 0.0
/// plus a small guard for float noise).
constexpr float kDetectionEps = 1e-6F;

}  // namespace

std::string to_string(MitmMode mode) {
  switch (mode) {
    case MitmMode::SignalManipulation: return "SignalManipulation";
    case MitmMode::SignalSpoofing: return "SignalSpoofing";
  }
  return "?";
}

Tensor mitm_attack(MitmMode mode, AttackKind kind, GradientSource& grads,
                   const Tensor& x_clean, std::span<const std::size_t> y,
                   const AttackConfig& cfg) {
  Tensor x_adv = run_attack(kind, grads, x_clean, y, cfg);
  if (kind == AttackKind::None) return x_adv;

  switch (mode) {
    case MitmMode::SignalSpoofing:
      // A spoofing adversary fabricates its own frames: any targeted AP
      // reading is realisable, including for APs the victim never heard.
      return x_adv;
    case MitmMode::SignalManipulation: {
      // A manipulation adversary can only distort frames that exist:
      // perturbations on not-detected APs are physically impossible and
      // are rolled back to the clean (absent) reading.
      const std::size_t cols = x_clean.cols();
      for (std::size_t i = 0; i < x_clean.rows(); ++i) {
        const float* cr = x_clean.data() + i * cols;
        float* ar = x_adv.data() + i * cols;
        for (std::size_t j = 0; j < cols; ++j)
          if (cr[j] <= kDetectionEps) ar[j] = cr[j];
      }
      return x_adv;
    }
  }
  CAL_ENSURE(false, "unknown MitmMode");
  return x_adv;
}

}  // namespace cal::attacks
