#include "attacks/attack.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace cal::attacks {
namespace {

void validate(const Tensor& x, std::span<const std::size_t> y,
              const AttackConfig& cfg) {
  CAL_ENSURE(x.rank() == 2, "attack expects rank-2 input");
  CAL_ENSURE(y.size() == x.rows(), "attack labels/batch mismatch");
  CAL_ENSURE(cfg.epsilon >= 0.0 && cfg.epsilon <= 1.0,
             "epsilon out of [0,1]: " << cfg.epsilon);
  CAL_ENSURE(cfg.num_steps >= 1, "attacks need at least one step");
}

/// Build a 0/1 column mask over the targeted APs.
std::vector<char> column_mask(std::size_t num_aps,
                              std::span<const std::size_t> targets) {
  std::vector<char> mask(num_aps, 0);
  for (std::size_t j : targets) {
    CAL_ENSURE(j < num_aps, "target AP " << j << " out of " << num_aps);
    mask[j] = 1;
  }
  return mask;
}

/// Clip x_adv to the intersection of the ϵ-ball around x and [0,1].
void project(Tensor& x_adv, const Tensor& x, double epsilon,
             const std::vector<char>& mask) {
  const std::size_t cols = x.cols();
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* xr = x.data() + i * cols;
    float* ar = x_adv.data() + i * cols;
    for (std::size_t j = 0; j < cols; ++j) {
      if (!mask[j]) {
        ar[j] = xr[j];  // untargeted APs are untouched, exactly
        continue;
      }
      const float lo =
          std::max(0.0F, xr[j] - static_cast<float>(epsilon));
      const float hi =
          std::min(1.0F, xr[j] + static_cast<float>(epsilon));
      ar[j] = std::clamp(ar[j], lo, hi);
    }
  }
}

double effective_alpha(const AttackConfig& cfg) {
  if (cfg.alpha > 0.0) return cfg.alpha;
  // Standard heuristic: cover the ϵ-ball with margin in num_steps steps.
  return 2.5 * cfg.epsilon / static_cast<double>(cfg.num_steps);
}

}  // namespace

Tensor fgsm_attack(GradientSource& grads, const Tensor& x,
                   std::span<const std::size_t> y, const AttackConfig& cfg) {
  validate(x, y, cfg);
  const auto targets = select_target_aps(x, y, cfg, grads);
  const auto mask = column_mask(x.cols(), targets);

  const Tensor g = grads.input_gradient(x, y);
  Tensor x_adv = x;
  const auto eps = static_cast<float>(cfg.epsilon);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* gr = g.data() + i * x.cols();
    float* ar = x_adv.data() + i * x.cols();
    for (std::size_t j = 0; j < x.cols(); ++j) {
      if (!mask[j] || gr[j] == 0.0F) continue;
      ar[j] += (gr[j] > 0.0F ? eps : -eps);
    }
  }
  project(x_adv, x, cfg.epsilon, mask);
  return x_adv;
}

Tensor pgd_attack(GradientSource& grads, const Tensor& x,
                  std::span<const std::size_t> y, const AttackConfig& cfg) {
  validate(x, y, cfg);
  const auto targets = select_target_aps(x, y, cfg, grads);
  const auto mask = column_mask(x.cols(), targets);
  const auto alpha = static_cast<float>(effective_alpha(cfg));

  Tensor x_adv = x;
  if (cfg.random_start && cfg.epsilon > 0.0) {
    Rng rng(cfg.seed ^ 0xA77AC4ULL);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      float* ar = x_adv.data() + i * x.cols();
      for (std::size_t j = 0; j < x.cols(); ++j)
        if (mask[j])
          ar[j] += static_cast<float>(
              rng.uniform(-cfg.epsilon, cfg.epsilon));
    }
    project(x_adv, x, cfg.epsilon, mask);
  }

  for (std::size_t step = 0; step < cfg.num_steps; ++step) {
    const Tensor g = grads.input_gradient(x_adv, y);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const float* gr = g.data() + i * x.cols();
      float* ar = x_adv.data() + i * x.cols();
      for (std::size_t j = 0; j < x.cols(); ++j) {
        if (!mask[j] || gr[j] == 0.0F) continue;
        ar[j] += (gr[j] > 0.0F ? alpha : -alpha);
      }
    }
    project(x_adv, x, cfg.epsilon, mask);
  }
  return x_adv;
}

Tensor mim_attack(GradientSource& grads, const Tensor& x,
                  std::span<const std::size_t> y, const AttackConfig& cfg) {
  validate(x, y, cfg);
  const auto targets = select_target_aps(x, y, cfg, grads);
  const auto mask = column_mask(x.cols(), targets);
  const auto alpha = static_cast<float>(effective_alpha(cfg));
  const auto mu = static_cast<float>(cfg.momentum_decay);

  Tensor x_adv = x;
  Tensor velocity(x.shape());
  for (std::size_t step = 0; step < cfg.num_steps; ++step) {
    const Tensor g = grads.input_gradient(x_adv, y);
    // Normalise the gradient by its L1 norm per sample (Dong et al. eq. 6),
    // then accumulate momentum and step along its sign.
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const float* gr = g.data() + i * x.cols();
      float* vr = velocity.data() + i * x.cols();
      float* ar = x_adv.data() + i * x.cols();
      double l1 = 0.0;
      for (std::size_t j = 0; j < x.cols(); ++j)
        if (mask[j]) l1 += std::fabs(gr[j]);
      const float inv_l1 = l1 > 0.0 ? static_cast<float>(1.0 / l1) : 0.0F;
      for (std::size_t j = 0; j < x.cols(); ++j) {
        if (!mask[j]) continue;
        vr[j] = mu * vr[j] + gr[j] * inv_l1;
        if (vr[j] != 0.0F) ar[j] += (vr[j] > 0.0F ? alpha : -alpha);
      }
    }
    project(x_adv, x, cfg.epsilon, mask);
  }
  return x_adv;
}

Tensor run_attack(AttackKind kind, GradientSource& grads, const Tensor& x,
                  std::span<const std::size_t> y, const AttackConfig& cfg) {
  switch (kind) {
    case AttackKind::None: return x;
    case AttackKind::Fgsm: return fgsm_attack(grads, x, y, cfg);
    case AttackKind::Pgd: return pgd_attack(grads, x, y, cfg);
    case AttackKind::Mim: return mim_attack(grads, x, y, cfg);
  }
  CAL_ENSURE(false, "unknown AttackKind");
  return x;
}

}  // namespace cal::attacks
