#include <algorithm>
#include <cmath>
#include <numeric>

#include "attacks/attack.hpp"
#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace cal::attacks {

std::string to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::None: return "None";
    case AttackKind::Fgsm: return "FGSM";
    case AttackKind::Pgd: return "PGD";
    case AttackKind::Mim: return "MIM";
  }
  return "?";
}

std::string to_string(TargetSelection sel) {
  switch (sel) {
    case TargetSelection::Strongest: return "Strongest";
    case TargetSelection::Random: return "Random";
    case TargetSelection::Saliency: return "Saliency";
  }
  return "?";
}

std::vector<std::size_t> select_target_aps(const Tensor& x,
                                           std::span<const std::size_t> y,
                                           const AttackConfig& cfg,
                                           GradientSource& grads) {
  CAL_ENSURE(x.rank() == 2, "select_target_aps expects rank-2 input");
  CAL_ENSURE(cfg.phi_percent > 0.0 && cfg.phi_percent <= 100.0,
             "phi_percent out of (0,100]: " << cfg.phi_percent);
  const std::size_t num_aps = x.cols();
  // ø% of APs, at least one.
  const auto count = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::round(static_cast<double>(num_aps) * cfg.phi_percent /
                        100.0)));

  std::vector<std::size_t> all(num_aps);
  std::iota(all.begin(), all.end(), 0);

  switch (cfg.selection) {
    case TargetSelection::Random: {
      Rng rng(cfg.seed);
      auto chosen = rng.sample_without_replacement(num_aps, count);
      std::sort(chosen.begin(), chosen.end());
      return chosen;
    }
    case TargetSelection::Strongest: {
      // Column mean RSS; strongest APs carry the most location signal.
      std::vector<double> score(num_aps, 0.0);
      for (std::size_t i = 0; i < x.rows(); ++i) {
        const float* row = x.data() + i * num_aps;
        for (std::size_t j = 0; j < num_aps; ++j) score[j] += row[j];
      }
      std::partial_sort(all.begin(), all.begin() + static_cast<long>(count),
                        all.end(), [&](std::size_t a, std::size_t b) {
                          return score[a] > score[b];
                        });
      all.resize(count);
      std::sort(all.begin(), all.end());
      return all;
    }
    case TargetSelection::Saliency: {
      const Tensor g = grads.input_gradient(x, y);
      std::vector<double> score(num_aps, 0.0);
      for (std::size_t i = 0; i < g.rows(); ++i) {
        const float* row = g.data() + i * num_aps;
        for (std::size_t j = 0; j < num_aps; ++j)
          score[j] += std::fabs(row[j]);
      }
      std::partial_sort(all.begin(), all.begin() + static_cast<long>(count),
                        all.end(), [&](std::size_t a, std::size_t b) {
                          return score[a] > score[b];
                        });
      all.resize(count);
      std::sort(all.begin(), all.end());
      return all;
    }
  }
  CAL_ENSURE(false, "unknown TargetSelection");
  return {};
}

}  // namespace cal::attacks
