// Gradient access for white-box attack crafting.
//
// The attack algorithms (FGSM/PGD/MIM) are generic in how ∇ₓJ(X, Y) is
// obtained:
//  * differentiable victims (every NN model here) expose their own exact
//    input gradient through the autograd tape;
//  * non-differentiable victims (KNN, GPC, GBDT stages) are attacked by
//    transfer: gradients come from a differentiable surrogate trained on
//    the same data — the standard white-box treatment in the adversarial
//    ML literature, and the only sensible reading of the paper's Fig. 1
//    (FGSM "against" KNN/GPC).
#pragma once

#include <memory>
#include <span>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace cal::attacks {

/// Produces ∇ₓ loss(model(x), y) on the normalised [0,1] feature scale.
class GradientSource {
 public:
  virtual ~GradientSource() = default;

  /// Gradient of the classification loss w.r.t. each input entry.
  /// x: (B, num_aps) normalised features; y: true RP labels (size B).
  virtual Tensor input_gradient(const Tensor& x,
                                std::span<const std::size_t> y) = 0;
};

/// Exact input gradients through any Module classifier (logits output).
/// The module is run in eval mode so dropout/noise do not randomise the
/// attack direction.
class ModuleGradientSource : public GradientSource {
 public:
  /// Borrows `model`; the caller keeps it alive.
  explicit ModuleGradientSource(nn::Module& model);

  Tensor input_gradient(const Tensor& x,
                        std::span<const std::size_t> y) override;

 private:
  nn::Module* model_;
};

}  // namespace cal::attacks
