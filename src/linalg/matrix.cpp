#include "linalg/matrix.hpp"

#include <cmath>

#include "common/ensure.hpp"

namespace cal::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    CAL_ENSURE(row.size() == cols_, "ragged initializer list for Matrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  CAL_ENSURE(r < rows_ && c < cols_,
             "Matrix index (" << r << "," << c << ") out of " << rows_ << "x"
                              << cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  CAL_ENSURE(r < rows_ && c < cols_,
             "Matrix index (" << r << "," << c << ") out of " << rows_ << "x"
                              << cols_);
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  CAL_ENSURE(r < rows_, "Matrix row " << r << " out of " << rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  CAL_ENSURE(r < rows_, "Matrix row " << r << " out of " << rows_);
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::matmul(const Matrix& rhs) const {
  CAL_ENSURE(cols_ == rhs.rows_, "matmul shape mismatch: " << rows_ << "x"
                                                           << cols_ << " * "
                                                           << rhs.rows_ << "x"
                                                           << rhs.cols_);
  Matrix out(rows_, rhs.cols_);
  // i-k-j loop order keeps the inner loop contiguous in both operands.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      const double* rrow = &rhs.data_[k * rhs.cols_];
      double* orow = &out.data_[i * rhs.cols_];
      for (std::size_t j = 0; j < rhs.cols_; ++j) orow[j] += a * rrow[j];
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = data_[i * cols_ + j];
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  CAL_ENSURE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch in +");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  CAL_ENSURE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch in -");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  for (auto& x : out.data_) x *= s;
  return out;
}

void Matrix::add_diagonal(double s) {
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t i = 0; i < n; ++i) data_[i * cols_ + i] += s;
}

std::vector<double> Matrix::matvec(std::span<const double> v) const {
  CAL_ENSURE(v.size() == cols_, "matvec length mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

}  // namespace cal::linalg
