#include "linalg/cholesky.hpp"

#include <cmath>

#include "common/ensure.hpp"

namespace cal::linalg {

Cholesky::Cholesky(const Matrix& a) {
  CAL_ENSURE(a.rows() == a.cols(), "Cholesky needs a square matrix, got "
                                       << a.rows() << "x" << a.cols());
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    CAL_ENSURE(diag > 0.0,
               "matrix not positive definite at pivot " << j << " (d=" << diag
                                                        << ")");
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc / ljj;
    }
  }
}

std::vector<double> Cholesky::solve_lower(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  CAL_ENSURE(b.size() == n, "solve_lower dimension mismatch");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
    y[i] = acc / l_(i, i);
  }
  return y;
}

std::vector<double> Cholesky::solve_upper(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  CAL_ENSURE(b.size() == n, "solve_upper dimension mismatch");
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  const auto y = solve_lower(b);
  return solve_upper(y);
}

Matrix Cholesky::solve(const Matrix& b) const {
  CAL_ENSURE(b.rows() == l_.rows(), "solve(Matrix) dimension mismatch");
  Matrix x(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    const auto sol = solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

double Cholesky::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

Cholesky cholesky_with_jitter(Matrix a, double initial_jitter,
                              double max_jitter, double* used_jitter) {
  CAL_ENSURE(initial_jitter >= 0.0 && max_jitter >= initial_jitter,
             "invalid jitter range");
  double jitter = initial_jitter;
  Matrix trial = a;
  for (;;) {
    trial = a;
    if (jitter > 0.0) trial.add_diagonal(jitter);
    try {
      Cholesky chol(trial);
      if (used_jitter != nullptr) *used_jitter = jitter;
      return chol;
    } catch (const PreconditionError&) {
      if (jitter >= max_jitter) throw;
      jitter = (jitter == 0.0) ? 1e-10 : jitter * 10.0;
      if (jitter > max_jitter) jitter = max_jitter;
    }
  }
}

}  // namespace cal::linalg
