// Dense double-precision matrix for the classical-ML substrates
// (Gaussian-process classifier kernels, Newton systems). Deliberately
// separate from cal::Tensor: the GP path needs double precision and
// factorisations, while the NN path needs float throughput — mixing the two
// in one type would pessimise both.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace cal::linalg {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill);

  /// Build from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Matrix product; inner dimensions must agree.
  Matrix matmul(const Matrix& rhs) const;

  /// Transpose copy.
  Matrix transposed() const;

  /// Elementwise sum; shapes must match.
  Matrix operator+(const Matrix& rhs) const;

  /// Elementwise difference; shapes must match.
  Matrix operator-(const Matrix& rhs) const;

  /// Scalar product.
  Matrix operator*(double s) const;

  /// Add `s` to every diagonal entry (jitter / ridge).
  void add_diagonal(double s);

  /// Matrix–vector product (v.size() == cols()).
  std::vector<double> matvec(std::span<const double> v) const;

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace cal::linalg
