// Cholesky factorisation and SPD solves.
//
// The Gaussian-process classifier (WiDeep's GPC stage and the standalone
// GPC baseline) requires repeated solves against kernel matrices
// K + sigma^2 I. Cholesky is the numerically appropriate tool for symmetric
// positive-definite systems (GPML, Rasmussen & Williams, Alg. 3.1/3.2).
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace cal::linalg {

/// Lower-triangular Cholesky factor L with A = L L^T.
class Cholesky {
 public:
  /// Factor an SPD matrix. Throws PreconditionError if `a` is not square
  /// or not (numerically) positive definite.
  explicit Cholesky(const Matrix& a);

  /// The lower-triangular factor.
  const Matrix& lower() const { return l_; }

  /// Solve L y = b (forward substitution).
  std::vector<double> solve_lower(std::span<const double> b) const;

  /// Solve L^T x = b (back substitution).
  std::vector<double> solve_upper(std::span<const double> b) const;

  /// Solve A x = b via the two triangular solves.
  std::vector<double> solve(std::span<const double> b) const;

  /// Solve A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// log det(A) = 2 * sum log L_ii.
  double log_det() const;

 private:
  Matrix l_;
};

/// Try to factor A + jitter*I, escalating jitter up to `max_jitter`
/// (multiplying by 10 each attempt). Returns the factor and writes the
/// jitter actually used. Throws if even max_jitter fails.
Cholesky cholesky_with_jitter(Matrix a, double initial_jitter,
                              double max_jitter, double* used_jitter);

}  // namespace cal::linalg
