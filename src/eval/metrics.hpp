// Localisation error metrics.
//
// Classifier predictions (RP indices) become metric errors through the RP
// coordinate map: error = Euclidean distance between the predicted RP and
// the true RP, in metres — the unit of every figure in the paper. "Mean
// error" and "worst-case (max) error" are the paper's two headline
// statistics (Fig. 6).
#pragma once

#include <span>
#include <vector>

#include "common/stats.hpp"
#include "data/dataset.hpp"

namespace cal::eval {

/// Per-sample localisation error (metres) of predicted RP labels against
/// the test set's ground truth.
std::vector<double> localization_errors(
    const data::FingerprintDataset& test,
    std::span<const std::size_t> predicted);

/// Error statistics bundle.
struct ErrorStats {
  Summary error_m;    ///< distribution of per-sample errors (metres)
  double accuracy = 0.0;  ///< exact-RP classification rate
};

/// Summarise predictions against the test set.
ErrorStats error_stats(const data::FingerprintDataset& test,
                       std::span<const std::size_t> predicted);

}  // namespace cal::eval
