#include "eval/metrics.hpp"

#include "common/ensure.hpp"

namespace cal::eval {

std::vector<double> localization_errors(
    const data::FingerprintDataset& test,
    std::span<const std::size_t> predicted) {
  CAL_ENSURE(predicted.size() == test.num_samples(),
             "predictions (" << predicted.size() << ") != test samples ("
                             << test.num_samples() << ")");
  const auto& rps = test.rp_positions();
  const auto labels = test.labels();
  std::vector<double> errors(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    CAL_ENSURE(predicted[i] < rps.size(),
               "predicted RP " << predicted[i] << " out of " << rps.size());
    errors[i] = data::distance_m(rps[labels[i]], rps[predicted[i]]);
  }
  return errors;
}

ErrorStats error_stats(const data::FingerprintDataset& test,
                       std::span<const std::size_t> predicted) {
  const auto errors = localization_errors(test, predicted);
  ErrorStats stats;
  stats.error_m = summarize(errors);
  std::size_t correct = 0;
  const auto labels = test.labels();
  for (std::size_t i = 0; i < predicted.size(); ++i)
    if (predicted[i] == labels[i]) ++correct;
  stats.accuracy =
      static_cast<double>(correct) / static_cast<double>(predicted.size());
  return stats;
}

}  // namespace cal::eval
