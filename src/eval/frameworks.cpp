#include "eval/frameworks.hpp"

#include "baselines/advloc.hpp"
#include "baselines/anvil.hpp"
#include "baselines/cnn.hpp"
#include "baselines/dnn.hpp"
#include "baselines/gpc.hpp"
#include "baselines/knn.hpp"
#include "baselines/naive_bayes.hpp"
#include "baselines/sangria.hpp"
#include "baselines/wideep.hpp"
#include "common/ensure.hpp"
#include "core/calloc.hpp"

namespace cal::eval {

std::vector<std::string> framework_names() {
  return {"CALLOC", "CALLOC-NC", "AdvLoc", "SANGRIA", "ANVIL",
          "WiDeep", "KNN",       "GPC",    "DNN",     "CNN",
          "NaiveBayes"};
}

std::unique_ptr<baselines::ILocalizer> make_framework(const std::string& name,
                                                      std::uint64_t seed,
                                                      bool fast) {
  using namespace baselines;
  const std::size_t nn_epochs = fast ? 15 : 45;

  if (name == "CALLOC" || name == "CALLOC-NC") {
    core::CallocConfig cfg;
    cfg.seed = seed;
    cfg.use_curriculum = (name == "CALLOC");
    cfg.train.max_epochs_per_lesson = fast ? 10 : 14;
    return std::make_unique<core::Calloc>(cfg);
  }
  if (name == "AdvLoc") {
    AdvLocConfig cfg;
    cfg.dnn.seed = seed;
    cfg.dnn.train.epochs = nn_epochs;
    cfg.warmup_epochs = fast ? 8 : 20;
    return std::make_unique<AdvLoc>(cfg);
  }
  if (name == "SANGRIA") {
    SangriaConfig cfg;
    cfg.seed = seed;
    cfg.dae.train.epochs = fast ? 12 : 30;
    cfg.gbdt.rounds = fast ? 8 : 20;
    return std::make_unique<Sangria>(cfg);
  }
  if (name == "ANVIL") {
    AnvilConfig cfg;
    cfg.seed = seed;
    cfg.train.epochs = nn_epochs;
    return std::make_unique<Anvil>(cfg);
  }
  if (name == "WiDeep") {
    WiDeepConfig cfg;
    cfg.seed = seed;
    cfg.dae.train.epochs = fast ? 12 : 30;
    return std::make_unique<WiDeep>(cfg);
  }
  if (name == "KNN") return std::make_unique<Knn>(5);
  if (name == "GPC") {
    GpcConfig cfg;
    cfg.seed = seed;
    return std::make_unique<Gpc>(cfg);
  }
  if (name == "DNN") {
    DnnConfig cfg;
    cfg.seed = seed;
    cfg.train.epochs = nn_epochs;
    return std::make_unique<Dnn>(cfg);
  }
  if (name == "CNN") {
    CnnConfig cfg;
    cfg.seed = seed;
    cfg.train.epochs = nn_epochs;
    return std::make_unique<Cnn>(cfg);
  }
  if (name == "NaiveBayes") return std::make_unique<NaiveBayes>();

  CAL_ENSURE(false, "unknown framework name: " << name);
  return nullptr;
}

}  // namespace cal::eval
