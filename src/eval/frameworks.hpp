// Framework factory shared by the bench harness.
//
// Builds every localizer compared in the paper by name, with bench-scale
// training budgets so the full Fig. 6/7 sweeps finish in reasonable time.
// A "fast" flag further shrinks epochs for smoke tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/localizer.hpp"

namespace cal::eval {

/// Names accepted by make_framework (paper order): "CALLOC", "CALLOC-NC",
/// "AdvLoc", "SANGRIA", "ANVIL", "WiDeep", "KNN", "GPC", "DNN", "CNN",
/// "NaiveBayes".
std::vector<std::string> framework_names();

/// Instantiate an untrained framework by name (throws on unknown names).
std::unique_ptr<baselines::ILocalizer> make_framework(const std::string& name,
                                                      std::uint64_t seed,
                                                      bool fast = false);

}  // namespace cal::eval
