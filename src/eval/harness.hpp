// Attack-evaluation harness: the online phase under adversarial pressure.
//
// Ties together a trained localizer, a test capture, an attack algorithm
// and a gradient provider, reproducing the paper's evaluation loop: craft
// X_adv from the victim's (or surrogate's) gradients, then measure the
// localisation error of the victim on the perturbed fingerprints.
#pragma once

#include "attacks/attack.hpp"
#include "attacks/mitm.hpp"
#include "baselines/localizer.hpp"
#include "eval/metrics.hpp"

namespace cal::eval {

/// Clean (no-attack) evaluation.
ErrorStats evaluate_clean(baselines::ILocalizer& model,
                          const data::FingerprintDataset& test);

/// Evaluate under one attack. `grads` supplies ∇ₓJ (the victim's own
/// gradients for differentiable models, a surrogate's otherwise).
ErrorStats evaluate_under_attack(baselines::ILocalizer& model,
                                 const data::FingerprintDataset& test,
                                 attacks::AttackKind kind,
                                 const attacks::AttackConfig& cfg,
                                 attacks::GradientSource& grads);

/// Same, but routed through a MITM channel model (manipulation/spoofing).
ErrorStats evaluate_under_mitm(baselines::ILocalizer& model,
                               const data::FingerprintDataset& test,
                               attacks::MitmMode mode,
                               attacks::AttackKind kind,
                               const attacks::AttackConfig& cfg,
                               attacks::GradientSource& grads);

}  // namespace cal::eval
