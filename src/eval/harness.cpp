#include "eval/harness.hpp"

namespace cal::eval {

ErrorStats evaluate_clean(baselines::ILocalizer& model,
                          const data::FingerprintDataset& test) {
  const auto pred = model.predict(test.normalized());
  return error_stats(test, pred);
}

ErrorStats evaluate_under_attack(baselines::ILocalizer& model,
                                 const data::FingerprintDataset& test,
                                 attacks::AttackKind kind,
                                 const attacks::AttackConfig& cfg,
                                 attacks::GradientSource& grads) {
  const Tensor x = test.normalized();
  const Tensor x_adv = attacks::run_attack(kind, grads, x, test.labels(), cfg);
  const auto pred = model.predict(x_adv);
  return error_stats(test, pred);
}

ErrorStats evaluate_under_mitm(baselines::ILocalizer& model,
                               const data::FingerprintDataset& test,
                               attacks::MitmMode mode,
                               attacks::AttackKind kind,
                               const attacks::AttackConfig& cfg,
                               attacks::GradientSource& grads) {
  const Tensor x = test.normalized();
  const Tensor x_adv =
      attacks::mitm_attack(mode, kind, grads, x, test.labels(), cfg);
  const auto pred = model.predict(x_adv);
  return error_stats(test, pred);
}

}  // namespace cal::eval
