// Differentiable operations over autograd Vars.
//
// Every op returns a fresh node wired to its parents with a backward
// closure; gradient correctness for each op is verified against central
// finite differences in tests/test_autograd.cpp. The set is exactly what
// the CALLOC model, the NN baselines, and the white-box attacks require.
#pragma once

#include <span>
#include <vector>

#include "autograd/variable.hpp"
#include "common/rng.hpp"

namespace cal::autograd {

// --- arithmetic ----------------------------------------------------------

/// Matrix product of rank-2 vars: (MxK) * (KxN) -> (MxN).
Var matmul(const Var& a, const Var& b);

/// Fused a · bᵀ of rank-2 vars: (MxD) * (NxD)ᵀ -> (MxN). Equivalent to
/// matmul(a, transpose(b)) but skips the transpose node and its copy in
/// both the forward and backward pass (the attention score kernel).
Var matmul_nt(const Var& a, const Var& b);

/// Elementwise sum; shapes must match.
Var add(const Var& a, const Var& b);

/// Broadcast a rank-1 bias (length N) across the rows of a (MxN).
Var add_rowwise(const Var& a, const Var& bias);

/// Broadcast-subtract a rank-1 vector (length N) from the rows of a (MxN).
Var sub_rowwise(const Var& a, const Var& v);

/// Column means of a rank-2 var -> rank-1 (length N).
Var mean_over_rows(const Var& a);

/// Elementwise difference; shapes must match.
Var sub(const Var& a, const Var& b);

/// Hadamard product; shapes must match.
Var mul(const Var& a, const Var& b);

/// Multiply by a compile-time-known scalar.
Var scale(const Var& a, float s);

/// Transpose a rank-2 var.
Var transpose(const Var& a);

/// Column-wise concatenation of two rank-2 vars with equal row counts.
Var concat_cols(const Var& a, const Var& b);

/// Reshape preserving element order (gradient reshapes back).
Var reshape(const Var& a, std::vector<std::size_t> new_shape);

// --- nonlinearities ------------------------------------------------------

Var relu(const Var& a);
Var tanh_op(const Var& a);
Var sigmoid(const Var& a);

/// Row-wise softmax of a rank-2 var (numerically stabilised).
Var softmax_rows(const Var& a);

/// Row-wise L2 normalisation: each row divided by max(‖row‖₂, eps).
Var l2_normalize_rows(const Var& a, float eps = 1e-8F);

/// Multiply every element by a learnable scalar (s has shape {1}).
Var scale_by(const Var& a, const Var& s);

// --- stochastic regularisers (identity in eval mode) ---------------------

/// Inverted dropout: at train time zeroes entries with prob `rate` and
/// rescales survivors by 1/(1-rate); identity at eval time.
Var dropout(const Var& a, float rate, Rng& rng, bool training);

/// Additive Gaussian noise N(0, sigma^2) at train time; identity at eval.
/// The noise is treated as a constant in the backward pass.
Var gaussian_noise(const Var& a, float sigma, Rng& rng, bool training);

// --- reductions & losses -------------------------------------------------

/// Mean of all elements -> scalar (shape {1}).
Var mean_all(const Var& a);

/// Sum of all elements -> scalar (shape {1}).
Var sum_all(const Var& a);

/// Mean-squared-error against a constant target -> scalar.
Var mse_loss(const Var& pred, const Tensor& target);

/// Mean cross-entropy of row logits against integer class labels -> scalar.
/// Uses the fused log-softmax form for numerical stability.
Var cross_entropy(const Var& logits, std::span<const std::size_t> labels);

// --- attention -----------------------------------------------------------

/// Scaled dot-product attention, eq. (3) of the paper:
///   Attention(Q,K,V) = softmax(Q K^T / sqrt(d_k)) V
/// Q: (MxD), K: (NxD), V: (NxP). Composite of the primitives above, so its
/// gradient correctness follows from theirs (and is still tested end-to-end).
Var scaled_dot_product_attention(const Var& q, const Var& k, const Var& v);

// --- head-batched attention primitives ------------------------------------
//
// Multi-head attention without per-head slicing: queries stay fused as the
// column blocks of one (B x H·D) activation and the per-head prototype
// matrices stack as row blocks of one (H·M x D) leaf. Each op lowers to a
// single strided batched GEMM (gemm_batched_*) over all H head views, so
// one kernel invocation replaces H small GEMMs — and each head's view is
// multiplied with exactly the per-head reduction order, so results are
// bit-identical to the per-head loop.

/// Per-head scores: a (B x H·D) against b (H·M x D) -> (B x H·M), where
/// column block h of the output is a[:, hD:(h+1)D] · b[hM:(h+1)M, :]ᵀ.
Var matmul_nt_heads(const Var& a, const Var& b, std::size_t heads);

/// Per-head attended values: a (B x H·M) against b (H·M x D) -> (B x H·D),
/// where column block h of the output is a[:, hM:(h+1)M] · b[hM:(h+1)M, :].
/// The output IS the concat of per-head results — no concat_cols node.
Var matmul_heads(const Var& a, const Var& b, std::size_t heads);

/// Softmax over each contiguous column block of width cols/blocks,
/// independently per row: the per-head softmax of fused attention scores.
/// Equivalent to splitting into `blocks` column slices, softmax_rows on
/// each, and re-concatenating.
Var softmax_blocks(const Var& a, std::size_t blocks);

// --- non-differentiable helpers -------------------------------------------

/// Row-wise argmax of a rank-2 tensor (predicted class per sample).
std::vector<std::size_t> argmax_rows(const Tensor& t);

/// Row-wise softmax of a plain tensor (for probability outputs).
Tensor softmax_rows_tensor(const Tensor& t);

}  // namespace cal::autograd
