#include "autograd/ops.hpp"

#include <cmath>

#include "common/ensure.hpp"
#include "kernels/gemm.hpp"

namespace cal::autograd {
namespace {

/// Create an op node wired to its parents; requires_grad is inherited.
Var make_op(Tensor value, std::string name, std::initializer_list<Var> parents) {
  bool req = false;
  for (const auto& p : parents) {
    CAL_ENSURE(p != nullptr, "null parent passed to op " << name);
    req = req || p->requires_grad();
  }
  auto node = std::make_shared<Node>(std::move(value), req, std::move(name));
  for (const auto& p : parents) node->add_parent(p);
  return node;
}

}  // namespace

Var matmul(const Var& a, const Var& b) {
  const Tensor out = a->value().matmul(b->value());
  Var node = make_op(out, "matmul", {a, b});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    Node* pb = b.get();
    node->set_backward([self, pa, pb] {
      // dA = g·Bᵀ and dB = Aᵀ·g via the fused-transpose kernels,
      // accumulated straight into the grad buffers: no transposed() copy
      // and no temporary product per backward step.
      const Tensor& g = self->grad();
      const Tensor& av = pa->value();
      const Tensor& bv = pb->value();
      const std::size_t m = av.rows();
      const std::size_t k = av.cols();
      const std::size_t n = bv.cols();
      if (pa->requires_grad())
        kernels::gemm_nt(g.flat(), bv.flat(), pa->grad_buffer().flat(), m, n,
                         k, /*accumulate=*/true);
      if (pb->requires_grad())
        kernels::gemm_tn(av.flat(), g.flat(), pb->grad_buffer().flat(), k, m,
                         n, /*accumulate=*/true);
    });
  }
  return node;
}

Var matmul_nt(const Var& a, const Var& b) {
  const Tensor out = a->value().matmul_nt(b->value());
  Var node = make_op(out, "matmul_nt", {a, b});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    Node* pb = b.get();
    node->set_backward([self, pa, pb] {
      // y = A·Bᵀ with A: MxD, B: NxD, g: MxN. dA = g·B, dB = gᵀ·A.
      const Tensor& g = self->grad();
      const Tensor& av = pa->value();
      const Tensor& bv = pb->value();
      const std::size_t m = av.rows();
      const std::size_t d = av.cols();
      const std::size_t n = bv.rows();
      if (pa->requires_grad())
        kernels::gemm_nn(g.flat(), bv.flat(), pa->grad_buffer().flat(), m, n,
                         d, /*accumulate=*/true);
      if (pb->requires_grad())
        kernels::gemm_tn(g.flat(), av.flat(), pb->grad_buffer().flat(), n, m,
                         d, /*accumulate=*/true);
    });
  }
  return node;
}

Var add(const Var& a, const Var& b) {
  Var node = make_op(a->value() + b->value(), "add", {a, b});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    Node* pb = b.get();
    node->set_backward([self, pa, pb] {
      const Tensor& g = self->grad();
      if (pa->requires_grad()) pa->grad_buffer() += g;
      if (pb->requires_grad()) pb->grad_buffer() += g;
    });
  }
  return node;
}

Var add_rowwise(const Var& a, const Var& bias) {
  const Tensor& av = a->value();
  const Tensor& bv = bias->value();
  CAL_ENSURE(av.rank() == 2, "add_rowwise expects rank-2 lhs");
  CAL_ENSURE(bv.rank() == 1 && bv.size() == av.cols(),
             "bias must be rank-1 of length cols: " << bv.shape_str()
                                                    << " vs " << av.shape_str());
  Tensor out = av;
  for (std::size_t i = 0; i < av.rows(); ++i) {
    float* row = out.data() + i * av.cols();
    for (std::size_t j = 0; j < av.cols(); ++j) row[j] += bv[j];
  }
  Var node = make_op(std::move(out), "add_rowwise", {a, bias});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    Node* pbias = bias.get();
    node->set_backward([self, pa, pbias] {
      const Tensor& g = self->grad();
      if (pa->requires_grad()) pa->grad_buffer() += g;
      if (pbias->requires_grad()) {
        Tensor& bg = pbias->grad_buffer();
        for (std::size_t i = 0; i < g.rows(); ++i) {
          const float* row = g.data() + i * g.cols();
          for (std::size_t j = 0; j < g.cols(); ++j) bg[j] += row[j];
        }
      }
    });
  }
  return node;
}

Var sub_rowwise(const Var& a, const Var& v) {
  const Tensor& av = a->value();
  const Tensor& vv = v->value();
  CAL_ENSURE(av.rank() == 2, "sub_rowwise expects rank-2 lhs");
  CAL_ENSURE(vv.rank() == 1 && vv.size() == av.cols(),
             "vector must be rank-1 of length cols");
  Tensor out = av;
  for (std::size_t i = 0; i < av.rows(); ++i) {
    float* row = out.data() + i * av.cols();
    for (std::size_t j = 0; j < av.cols(); ++j) row[j] -= vv[j];
  }
  Var node = make_op(std::move(out), "sub_rowwise", {a, v});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    Node* pv = v.get();
    node->set_backward([self, pa, pv] {
      const Tensor& g = self->grad();
      if (pa->requires_grad()) pa->grad_buffer() += g;
      if (pv->requires_grad()) {
        Tensor& gv = pv->grad_buffer();
        for (std::size_t i = 0; i < g.rows(); ++i) {
          const float* row = g.data() + i * g.cols();
          for (std::size_t j = 0; j < g.cols(); ++j) gv[j] -= row[j];
        }
      }
    });
  }
  return node;
}

Var mean_over_rows(const Var& a) {
  const Tensor& av = a->value();
  CAL_ENSURE(av.rank() == 2, "mean_over_rows expects rank-2");
  const std::size_t rows = av.rows();
  const std::size_t cols = av.cols();
  Tensor out({cols});
  for (std::size_t i = 0; i < rows; ++i) {
    const float* row = av.data() + i * cols;
    for (std::size_t j = 0; j < cols; ++j) out[j] += row[j];
  }
  const float inv = 1.0F / static_cast<float>(rows);
  for (std::size_t j = 0; j < cols; ++j) out[j] *= inv;
  Var node = make_op(std::move(out), "mean_over_rows", {a});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    node->set_backward([self, pa, rows, cols] {
      if (!pa->requires_grad()) return;
      const Tensor& g = self->grad();
      Tensor& ga = pa->grad_buffer();
      const float inv = 1.0F / static_cast<float>(rows);
      for (std::size_t i = 0; i < rows; ++i) {
        float* row = ga.data() + i * cols;
        for (std::size_t j = 0; j < cols; ++j) row[j] += g[j] * inv;
      }
    });
  }
  return node;
}

Var sub(const Var& a, const Var& b) {
  Var node = make_op(a->value() - b->value(), "sub", {a, b});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    Node* pb = b.get();
    node->set_backward([self, pa, pb] {
      const Tensor& g = self->grad();
      if (pa->requires_grad()) pa->grad_buffer() += g;
      if (pb->requires_grad()) pb->grad_buffer() -= g;
    });
  }
  return node;
}

Var mul(const Var& a, const Var& b) {
  Var node = make_op(a->value() * b->value(), "mul", {a, b});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    Node* pb = b.get();
    node->set_backward([self, pa, pb] {
      const Tensor& g = self->grad();
      if (pa->requires_grad()) pa->grad_buffer() += g * pb->value();
      if (pb->requires_grad()) pb->grad_buffer() += g * pa->value();
    });
  }
  return node;
}

Var scale(const Var& a, float s) {
  Var node = make_op(a->value() * s, "scale", {a});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    node->set_backward([self, pa, s] {
      if (pa->requires_grad()) pa->grad_buffer() += self->grad() * s;
    });
  }
  return node;
}

Var transpose(const Var& a) {
  Var node = make_op(a->value().transposed(), "transpose", {a});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    node->set_backward([self, pa] {
      if (pa->requires_grad()) pa->grad_buffer() += self->grad().transposed();
    });
  }
  return node;
}

Var concat_cols(const Var& a, const Var& b) {
  const Tensor& av = a->value();
  const Tensor& bv = b->value();
  CAL_ENSURE(av.rank() == 2 && bv.rank() == 2, "concat_cols expects rank-2");
  CAL_ENSURE(av.rows() == bv.rows(), "concat_cols row mismatch: "
                                         << av.shape_str() << " vs "
                                         << bv.shape_str());
  const std::size_t rows = av.rows();
  const std::size_t ca = av.cols();
  const std::size_t cb = bv.cols();
  Tensor out({rows, ca + cb});
  for (std::size_t i = 0; i < rows; ++i) {
    float* orow = out.data() + i * (ca + cb);
    const float* arow = av.data() + i * ca;
    const float* brow = bv.data() + i * cb;
    for (std::size_t j = 0; j < ca; ++j) orow[j] = arow[j];
    for (std::size_t j = 0; j < cb; ++j) orow[ca + j] = brow[j];
  }
  Var node = make_op(std::move(out), "concat_cols", {a, b});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    Node* pb = b.get();
    node->set_backward([self, pa, pb, rows, ca, cb] {
      const Tensor& g = self->grad();
      if (pa->requires_grad()) {
        Tensor& ga = pa->grad_buffer();
        for (std::size_t i = 0; i < rows; ++i)
          for (std::size_t j = 0; j < ca; ++j)
            ga.data()[i * ca + j] += g.data()[i * (ca + cb) + j];
      }
      if (pb->requires_grad()) {
        Tensor& gb = pb->grad_buffer();
        for (std::size_t i = 0; i < rows; ++i)
          for (std::size_t j = 0; j < cb; ++j)
            gb.data()[i * cb + j] += g.data()[i * (ca + cb) + ca + j];
      }
    });
  }
  return node;
}

Var reshape(const Var& a, std::vector<std::size_t> new_shape) {
  Tensor out = a->value();
  out.reshape(new_shape);
  Var node = make_op(std::move(out), "reshape", {a});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    node->set_backward([self, pa] {
      if (!pa->requires_grad()) return;
      Tensor g = self->grad();
      g.reshape(pa->value().shape());
      pa->grad_buffer() += g;
    });
  }
  return node;
}

Var relu(const Var& a) {
  Tensor out = a->value();
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i] < 0.0F) out[i] = 0.0F;
  Var node = make_op(std::move(out), "relu", {a});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    node->set_backward([self, pa] {
      if (!pa->requires_grad()) return;
      const Tensor& g = self->grad();
      const Tensor& x = pa->value();
      Tensor& ga = pa->grad_buffer();
      for (std::size_t i = 0; i < g.size(); ++i)
        if (x[i] > 0.0F) ga[i] += g[i];
    });
  }
  return node;
}

Var tanh_op(const Var& a) {
  Tensor out = a->value();
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  Var node = make_op(std::move(out), "tanh", {a});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    node->set_backward([self, pa] {
      if (!pa->requires_grad()) return;
      const Tensor& g = self->grad();
      const Tensor& y = self->value();
      Tensor& ga = pa->grad_buffer();
      for (std::size_t i = 0; i < g.size(); ++i)
        ga[i] += g[i] * (1.0F - y[i] * y[i]);
    });
  }
  return node;
}

Var sigmoid(const Var& a) {
  Tensor out = a->value();
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = 1.0F / (1.0F + std::exp(-out[i]));
  Var node = make_op(std::move(out), "sigmoid", {a});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    node->set_backward([self, pa] {
      if (!pa->requires_grad()) return;
      const Tensor& g = self->grad();
      const Tensor& y = self->value();
      Tensor& ga = pa->grad_buffer();
      for (std::size_t i = 0; i < g.size(); ++i)
        ga[i] += g[i] * y[i] * (1.0F - y[i]);
    });
  }
  return node;
}

Var softmax_rows(const Var& a) {
  Tensor out = softmax_rows_tensor(a->value());
  Var node = make_op(std::move(out), "softmax_rows", {a});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    node->set_backward([self, pa] {
      if (!pa->requires_grad()) return;
      const Tensor& g = self->grad();
      const Tensor& y = self->value();
      Tensor& ga = pa->grad_buffer();
      const std::size_t rows = y.rows();
      const std::size_t cols = y.cols();
      for (std::size_t i = 0; i < rows; ++i) {
        const float* yr = y.data() + i * cols;
        const float* gr = g.data() + i * cols;
        float dot = 0.0F;
        for (std::size_t j = 0; j < cols; ++j) dot += yr[j] * gr[j];
        float* gar = ga.data() + i * cols;
        for (std::size_t j = 0; j < cols; ++j)
          gar[j] += yr[j] * (gr[j] - dot);
      }
    });
  }
  return node;
}

Var l2_normalize_rows(const Var& a, float eps) {
  const Tensor& x = a->value();
  CAL_ENSURE(x.rank() == 2, "l2_normalize_rows expects rank-2");
  const std::size_t rows = x.rows();
  const std::size_t cols = x.cols();
  Tensor out = x;
  std::vector<float> norms(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const float* xr = x.data() + i * cols;
    float sq = 0.0F;
    for (std::size_t j = 0; j < cols; ++j) sq += xr[j] * xr[j];
    norms[i] = std::max(std::sqrt(sq), eps);
    float* orow = out.data() + i * cols;
    const float inv = 1.0F / norms[i];
    for (std::size_t j = 0; j < cols; ++j) orow[j] *= inv;
  }
  Var node = make_op(std::move(out), "l2_normalize_rows", {a});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    auto shared_norms = std::make_shared<std::vector<float>>(std::move(norms));
    node->set_backward([self, pa, shared_norms, rows, cols] {
      if (!pa->requires_grad()) return;
      const Tensor& g = self->grad();
      const Tensor& y = self->value();
      Tensor& ga = pa->grad_buffer();
      for (std::size_t i = 0; i < rows; ++i) {
        const float* gr = g.data() + i * cols;
        const float* yr = y.data() + i * cols;
        float* gar = ga.data() + i * cols;
        float dot = 0.0F;
        for (std::size_t j = 0; j < cols; ++j) dot += gr[j] * yr[j];
        const float inv = 1.0F / (*shared_norms)[i];
        for (std::size_t j = 0; j < cols; ++j)
          gar[j] += (gr[j] - yr[j] * dot) * inv;
      }
    });
  }
  return node;
}

Var scale_by(const Var& a, const Var& s) {
  CAL_ENSURE(s->value().size() == 1, "scale_by expects a scalar Var");
  const float sv = s->value()[0];
  Var node = make_op(a->value() * sv, "scale_by", {a, s});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    Node* ps = s.get();
    node->set_backward([self, pa, ps, sv] {
      const Tensor& g = self->grad();
      if (pa->requires_grad()) pa->grad_buffer() += g * sv;
      if (ps->requires_grad()) {
        const Tensor& x = pa->value();
        double acc = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i)
          acc += static_cast<double>(g[i]) * x[i];
        ps->grad_buffer()[0] += static_cast<float>(acc);
      }
    });
  }
  return node;
}

Var dropout(const Var& a, float rate, Rng& rng, bool training) {
  CAL_ENSURE(rate >= 0.0F && rate < 1.0F, "dropout rate must be in [0,1): "
                                              << rate);
  if (!training || rate == 0.0F) {
    // Identity pass-through node (keeps graph structure uniform).
    Var node = make_op(a->value(), "dropout(eval)", {a});
    if (node->requires_grad()) {
      Node* self = node.get();
      Node* pa = a.get();
      node->set_backward([self, pa] {
        if (pa->requires_grad()) pa->grad_buffer() += self->grad();
      });
    }
    return node;
  }
  const float keep = 1.0F - rate;
  const float inv_keep = 1.0F / keep;
  Tensor mask(a->value().shape());
  Tensor out = a->value();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const bool keep_it = rng.bernoulli(keep);
    mask[i] = keep_it ? inv_keep : 0.0F;
    out[i] *= mask[i];
  }
  Var node = make_op(std::move(out), "dropout", {a});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    auto shared_mask = std::make_shared<Tensor>(std::move(mask));
    node->set_backward([self, pa, shared_mask] {
      if (pa->requires_grad()) pa->grad_buffer() += self->grad() * *shared_mask;
    });
  }
  return node;
}

Var gaussian_noise(const Var& a, float sigma, Rng& rng, bool training) {
  CAL_ENSURE(sigma >= 0.0F, "gaussian_noise sigma must be >= 0: " << sigma);
  Tensor out = a->value();
  if (training && sigma > 0.0F) {
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] += static_cast<float>(rng.normal(0.0, sigma));
  }
  Var node = make_op(std::move(out), "gaussian_noise", {a});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    node->set_backward([self, pa] {
      if (pa->requires_grad()) pa->grad_buffer() += self->grad();
    });
  }
  return node;
}

Var mean_all(const Var& a) {
  const double s = a->value().sum();
  const std::size_t n = a->value().size();
  Tensor out({1});
  out[0] = static_cast<float>(s / static_cast<double>(n));
  Var node = make_op(std::move(out), "mean_all", {a});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    node->set_backward([self, pa, n] {
      if (!pa->requires_grad()) return;
      const float g = self->grad()[0] / static_cast<float>(n);
      Tensor& ga = pa->grad_buffer();
      for (std::size_t i = 0; i < ga.size(); ++i) ga[i] += g;
    });
  }
  return node;
}

Var sum_all(const Var& a) {
  Tensor out({1});
  out[0] = static_cast<float>(a->value().sum());
  Var node = make_op(std::move(out), "sum_all", {a});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    node->set_backward([self, pa] {
      if (!pa->requires_grad()) return;
      const float g = self->grad()[0];
      Tensor& ga = pa->grad_buffer();
      for (std::size_t i = 0; i < ga.size(); ++i) ga[i] += g;
    });
  }
  return node;
}

Var mse_loss(const Var& pred, const Tensor& target) {
  const Tensor& p = pred->value();
  CAL_ENSURE(p.same_shape(target), "mse_loss shape mismatch: "
                                       << p.shape_str() << " vs "
                                       << target.shape_str());
  const std::size_t n = p.size();
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(p[i]) - target[i];
    acc += d * d;
  }
  Tensor out({1});
  out[0] = static_cast<float>(acc / static_cast<double>(n));
  Var node = make_op(std::move(out), "mse_loss", {pred});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pp = pred.get();
    auto tgt = std::make_shared<Tensor>(target);
    node->set_backward([self, pp, tgt, n] {
      if (!pp->requires_grad()) return;
      const float g = self->grad()[0] * 2.0F / static_cast<float>(n);
      const Tensor& p = pp->value();
      Tensor& gp = pp->grad_buffer();
      for (std::size_t i = 0; i < n; ++i) gp[i] += g * (p[i] - (*tgt)[i]);
    });
  }
  return node;
}

Var cross_entropy(const Var& logits, std::span<const std::size_t> labels) {
  const Tensor& z = logits->value();
  CAL_ENSURE(z.rank() == 2, "cross_entropy expects rank-2 logits");
  CAL_ENSURE(labels.size() == z.rows(),
             "cross_entropy labels size " << labels.size() << " != batch "
                                          << z.rows());
  const std::size_t rows = z.rows();
  const std::size_t cols = z.cols();
  Tensor probs = softmax_rows_tensor(z);
  double loss = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    CAL_ENSURE(labels[i] < cols, "label " << labels[i] << " out of " << cols
                                          << " classes");
    const float p = std::max(probs.at(i, labels[i]), 1e-12F);
    loss -= std::log(static_cast<double>(p));
  }
  Tensor out({1});
  out[0] = static_cast<float>(loss / static_cast<double>(rows));
  Var node = make_op(std::move(out), "cross_entropy", {logits});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pl = logits.get();
    auto shared_probs = std::make_shared<Tensor>(std::move(probs));
    std::vector<std::size_t> lbl(labels.begin(), labels.end());
    node->set_backward([self, pl, shared_probs, lbl, rows, cols] {
      if (!pl->requires_grad()) return;
      const float g = self->grad()[0] / static_cast<float>(rows);
      Tensor& gl = pl->grad_buffer();
      for (std::size_t i = 0; i < rows; ++i) {
        const float* pr = shared_probs->data() + i * cols;
        float* gr = gl.data() + i * cols;
        for (std::size_t j = 0; j < cols; ++j) gr[j] += g * pr[j];
        gr[lbl[i]] -= g;
      }
    });
  }
  return node;
}

Var scaled_dot_product_attention(const Var& q, const Var& k, const Var& v) {
  const Tensor& qv = q->value();
  const Tensor& kv = k->value();
  const Tensor& vv = v->value();
  CAL_ENSURE(qv.rank() == 2 && kv.rank() == 2 && vv.rank() == 2,
             "attention expects rank-2 Q/K/V");
  CAL_ENSURE(qv.cols() == kv.cols(),
             "Q and K feature dims differ: " << qv.shape_str() << " vs "
                                             << kv.shape_str());
  CAL_ENSURE(kv.rows() == vv.rows(),
             "K and V row counts differ: " << kv.shape_str() << " vs "
                                           << vv.shape_str());
  const float inv_sqrt_dk =
      1.0F / std::sqrt(static_cast<float>(qv.cols()));
  // Fused QKᵀ: no transpose node, no K copy.
  Var scores = scale(matmul_nt(q, k), inv_sqrt_dk);
  Var weights = softmax_rows(scores);
  return matmul(weights, v);
}

Var matmul_nt_heads(const Var& a, const Var& b, std::size_t heads) {
  const Tensor& av = a->value();
  const Tensor& bv = b->value();
  CAL_ENSURE(heads > 0, "matmul_nt_heads needs heads > 0");
  CAL_ENSURE(av.rank() == 2 && bv.rank() == 2,
             "matmul_nt_heads expects rank-2 operands");
  CAL_ENSURE(av.cols() % heads == 0, "lhs cols " << av.cols()
                                                 << " not divisible by "
                                                 << heads << " heads");
  CAL_ENSURE(bv.rows() % heads == 0, "rhs rows " << bv.rows()
                                                 << " not divisible by "
                                                 << heads << " heads");
  const std::size_t rows = av.rows();        // B
  const std::size_t d = av.cols() / heads;   // head dim
  const std::size_t m = bv.rows() / heads;   // prototypes per head
  CAL_ENSURE(bv.cols() == d, "rhs head dim " << bv.cols() << " != lhs "
                                             << d);
  Tensor out = Tensor::uninitialized({rows, heads * m});
  // Head h: out[:, hM..] = a[:, hD..] · b[hM.., :]ᵀ — one strided batched
  // GEMM over all H column/row-block views.
  kernels::BatchStrides fwd;
  fwd.stride_a = d;
  fwd.lda = heads * d;
  fwd.stride_b = m * d;
  fwd.stride_c = m;
  fwd.ldc = heads * m;
  kernels::gemm_batched_nt(av.flat(), bv.flat(), out.flat(), heads, rows, d,
                           m, fwd);
  Var node = make_op(std::move(out), "matmul_nt_heads", {a, b});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    Node* pb = b.get();
    node->set_backward([self, pa, pb, heads, rows, d, m] {
      // Per head: y_h = A_h·B_hᵀ, so dA_h = g_h·B_h and dB_h = g_hᵀ·A_h —
      // the same strided views, accumulated straight into the fused grad
      // buffers.
      const Tensor& g = self->grad();
      const Tensor& av = pa->value();
      const Tensor& bv = pb->value();
      if (pa->requires_grad()) {
        kernels::BatchStrides s;
        s.stride_a = m;
        s.lda = heads * m;
        s.stride_b = m * d;
        s.stride_c = d;
        s.ldc = heads * d;
        kernels::gemm_batched_nn(g.flat(), bv.flat(),
                                 pa->grad_buffer().flat(), heads, rows, m, d,
                                 s, /*accumulate=*/true);
      }
      if (pb->requires_grad()) {
        kernels::BatchStrides s;
        s.stride_a = m;
        s.lda = heads * m;
        s.stride_b = d;
        s.ldb = heads * d;
        s.stride_c = m * d;
        kernels::gemm_batched_tn(g.flat(), av.flat(),
                                 pb->grad_buffer().flat(), heads, m, rows, d,
                                 s, /*accumulate=*/true);
      }
    });
  }
  return node;
}

Var matmul_heads(const Var& a, const Var& b, std::size_t heads) {
  const Tensor& av = a->value();
  const Tensor& bv = b->value();
  CAL_ENSURE(heads > 0, "matmul_heads needs heads > 0");
  CAL_ENSURE(av.rank() == 2 && bv.rank() == 2,
             "matmul_heads expects rank-2 operands");
  CAL_ENSURE(av.cols() % heads == 0, "lhs cols " << av.cols()
                                                 << " not divisible by "
                                                 << heads << " heads");
  CAL_ENSURE(bv.rows() % heads == 0, "rhs rows " << bv.rows()
                                                 << " not divisible by "
                                                 << heads << " heads");
  const std::size_t rows = av.rows();        // B
  const std::size_t m = av.cols() / heads;   // prototypes per head
  const std::size_t d = bv.cols();           // head dim
  CAL_ENSURE(bv.rows() / heads == m, "rhs rows/head " << bv.rows() / heads
                                                      << " != lhs " << m);
  Tensor out = Tensor::uninitialized({rows, heads * d});
  // Head h: out[:, hD..] = a[:, hM..] · b[hM.., :] — the output columns
  // are already the concatenation of per-head results.
  kernels::BatchStrides fwd;
  fwd.stride_a = m;
  fwd.lda = heads * m;
  fwd.stride_b = m * d;
  fwd.stride_c = d;
  fwd.ldc = heads * d;
  kernels::gemm_batched_nn(av.flat(), bv.flat(), out.flat(), heads, rows, m,
                           d, fwd);
  Var node = make_op(std::move(out), "matmul_heads", {a, b});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    Node* pb = b.get();
    node->set_backward([self, pa, pb, heads, rows, d, m] {
      // Per head: y_h = A_h·B_h, so dA_h = g_h·B_hᵀ and dB_h = A_hᵀ·g_h.
      const Tensor& g = self->grad();
      const Tensor& av = pa->value();
      const Tensor& bv = pb->value();
      if (pa->requires_grad()) {
        kernels::BatchStrides s;
        s.stride_a = d;
        s.lda = heads * d;
        s.stride_b = m * d;
        s.stride_c = m;
        s.ldc = heads * m;
        kernels::gemm_batched_nt(g.flat(), bv.flat(),
                                 pa->grad_buffer().flat(), heads, rows, d, m,
                                 s, /*accumulate=*/true);
      }
      if (pb->requires_grad()) {
        kernels::BatchStrides s;
        s.stride_a = m;
        s.lda = heads * m;
        s.stride_b = d;
        s.ldb = heads * d;
        s.stride_c = m * d;
        kernels::gemm_batched_tn(av.flat(), g.flat(),
                                 pb->grad_buffer().flat(), heads, m, rows, d,
                                 s, /*accumulate=*/true);
      }
    });
  }
  return node;
}

Var softmax_blocks(const Var& a, std::size_t blocks) {
  const Tensor& x = a->value();
  CAL_ENSURE(blocks > 0, "softmax_blocks needs blocks > 0");
  CAL_ENSURE(x.rank() == 2, "softmax_blocks expects rank-2");
  CAL_ENSURE(x.cols() % blocks == 0, "cols " << x.cols()
                                             << " not divisible by "
                                             << blocks << " blocks");
  const std::size_t rows = x.rows();
  const std::size_t cols = x.cols();
  const std::size_t width = cols / blocks;
  Tensor out = x;
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t h = 0; h < blocks; ++h) {
      float* row = out.data() + i * cols + h * width;
      float mx = row[0];
      for (std::size_t j = 1; j < width; ++j) mx = std::max(mx, row[j]);
      float denom = 0.0F;
      for (std::size_t j = 0; j < width; ++j) {
        row[j] = std::exp(row[j] - mx);
        denom += row[j];
      }
      const float inv = 1.0F / denom;
      for (std::size_t j = 0; j < width; ++j) row[j] *= inv;
    }
  Var node = make_op(std::move(out), "softmax_blocks", {a});
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* pa = a.get();
    node->set_backward([self, pa, rows, cols, width, blocks] {
      if (!pa->requires_grad()) return;
      const Tensor& g = self->grad();
      const Tensor& y = self->value();
      Tensor& ga = pa->grad_buffer();
      for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t h = 0; h < blocks; ++h) {
          const std::size_t off = i * cols + h * width;
          const float* yr = y.data() + off;
          const float* gr = g.data() + off;
          float dot = 0.0F;
          for (std::size_t j = 0; j < width; ++j) dot += yr[j] * gr[j];
          float* gar = ga.data() + off;
          for (std::size_t j = 0; j < width; ++j)
            gar[j] += yr[j] * (gr[j] - dot);
        }
    });
  }
  return node;
}

std::vector<std::size_t> argmax_rows(const Tensor& t) {
  CAL_ENSURE(t.rank() == 2, "argmax_rows expects rank-2");
  std::vector<std::size_t> out(t.rows());
  for (std::size_t i = 0; i < t.rows(); ++i) {
    const float* row = t.data() + i * t.cols();
    std::size_t best = 0;
    for (std::size_t j = 1; j < t.cols(); ++j)
      if (row[j] > row[best]) best = j;
    out[i] = best;
  }
  return out;
}

Tensor softmax_rows_tensor(const Tensor& t) {
  CAL_ENSURE(t.rank() == 2, "softmax expects rank-2");
  Tensor out = t;
  const std::size_t rows = t.rows();
  const std::size_t cols = t.cols();
  for (std::size_t i = 0; i < rows; ++i) {
    float* row = out.data() + i * cols;
    float mx = row[0];
    for (std::size_t j = 1; j < cols; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0F;
    for (std::size_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    const float inv = 1.0F / denom;
    for (std::size_t j = 0; j < cols; ++j) row[j] *= inv;
  }
  return out;
}

}  // namespace cal::autograd
