#include "autograd/variable.hpp"

#include <unordered_set>

#include "common/ensure.hpp"

namespace cal::autograd {

Node::Node(Tensor value, bool requires_grad, std::string op_name)
    : value_(std::move(value)),
      requires_grad_(requires_grad),
      op_name_(std::move(op_name)) {}

const Tensor& Node::grad() const {
  if (grad_.empty()) grad_ = Tensor(value_.shape());
  return grad_;
}

void Node::zero_grad() {
  if (!grad_.empty()) grad_.fill(0.0F);
}

Tensor& Node::grad_buffer() {
  if (grad_.empty()) grad_ = Tensor(value_.shape());
  return grad_;
}

Var make_leaf(Tensor value, bool requires_grad) {
  return std::make_shared<Node>(std::move(value), requires_grad, "leaf");
}

Var constant(Tensor value) {
  return std::make_shared<Node>(std::move(value), false, "const");
}

std::vector<Node*> topo_order(const Var& root) {
  CAL_ENSURE(root != nullptr, "topo_order on null Var");
  std::vector<Node*> order;
  std::unordered_set<const Node*> visited;
  // Iterative DFS to avoid stack overflow on deep graphs.
  struct Frame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root.get(), 0});
  visited.insert(root.get());
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents().size()) {
      Node* parent = top.node->parents()[top.next_parent].get();
      ++top.next_parent;
      if (visited.insert(parent).second) stack.push_back({parent, 0});
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
  return order;  // parents before children
}

void backward(const Var& root) {
  CAL_ENSURE(root != nullptr, "backward on null Var");
  CAL_ENSURE(root->value().size() == 1,
             "backward requires a scalar root, got shape "
                 << root->value().shape_str());
  auto order = topo_order(root);
  root->grad_buffer()[0] += 1.0F;
  // Children appear after parents in `order`; run closures child-first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->requires_grad()) (*it)->run_backward();
  }
}

}  // namespace cal::autograd
