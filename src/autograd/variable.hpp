// Tape-based reverse-mode automatic differentiation.
//
// Why an autograd instead of per-layer manual backprop: the white-box
// attacks (FGSM eq. 1, PGD eq. 2, MIM) need gradients of the loss with
// respect to the *input* RSS vector for arbitrary composed models —
// including CALLOC's dual-input attention model where the curriculum batch
// flows through one embedding and the original batch through another. A
// tape gives d(loss)/d(anything) for free and is pinned down by
// finite-difference tests.
//
// Graph model: each forward op creates a Node holding its output value, the
// parent edges, and a backward closure that scatters the node's gradient
// into the parents' gradients. Parameters and inputs are leaf nodes;
// leaves with requires_grad accumulate into their `grad` tensor across
// backward() calls until zero_grad().
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace cal::autograd {

class Node;

/// Shared handle to a graph node. Cheap to copy; the graph is freed when
/// the last handle to its root goes away (parents are owned by children).
using Var = std::shared_ptr<Node>;

/// One vertex of the computation graph.
class Node {
 public:
  Node(Tensor value, bool requires_grad, std::string op_name);

  /// Forward value of this node.
  const Tensor& value() const { return value_; }
  Tensor& mutable_value() { return value_; }

  /// Accumulated gradient (zeros until backward reaches this node).
  const Tensor& grad() const;

  /// True when this node (or any ancestor) wants gradients.
  bool requires_grad() const { return requires_grad_; }

  /// Leaf = created by make_leaf/constant rather than an op.
  bool is_leaf() const { return parents_.empty(); }

  /// Human-readable op name for diagnostics ("matmul", "relu", ...).
  const std::string& op_name() const { return op_name_; }

  /// Reset accumulated gradient to zeros (no-op if grad never allocated).
  void zero_grad();

  /// Allocate (if needed) and return the gradient buffer for accumulation.
  Tensor& grad_buffer();

  // Wiring used by op constructors (not for end users).
  void add_parent(Var p) { parents_.push_back(std::move(p)); }
  void set_backward(std::function<void()> fn) { backward_fn_ = std::move(fn); }
  const std::vector<Var>& parents() const { return parents_; }
  void run_backward() const {
    if (backward_fn_) backward_fn_();
  }

 private:
  Tensor value_;
  mutable Tensor grad_;  // lazily sized to value_'s shape
  bool requires_grad_ = false;
  std::string op_name_;
  std::vector<Var> parents_;
  std::function<void()> backward_fn_;
};

/// Create a leaf variable (parameter or attackable input).
Var make_leaf(Tensor value, bool requires_grad);

/// Create a constant (no gradient ever flows into it).
Var constant(Tensor value);

/// Run reverse-mode accumulation from a scalar root (shape {1}).
/// Gradients accumulate into every reachable node with requires_grad.
void backward(const Var& root);

/// Topological order (parents before children) of the graph under `root`.
std::vector<Node*> topo_order(const Var& root);

}  // namespace cal::autograd
