#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/ensure.hpp"
#include "kernels/gemm.hpp"

namespace cal {
namespace {

std::size_t shape_product(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape) : shape_(std::move(shape)) {
  CAL_ENSURE(!shape_.empty(), "tensor rank must be >= 1");
  for (std::size_t d : shape_)
    CAL_ENSURE(d > 0, "tensor dims must be positive (" << shape_str() << ")");
  data_.assign(shape_product(shape_), 0.0F);
}

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : Tensor(std::move(shape)) {
  this->fill(fill);
}

Tensor Tensor::uninitialized(std::vector<std::size_t> shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  CAL_ENSURE(!t.shape_.empty(), "tensor rank must be >= 1");
  for (std::size_t d : t.shape_)
    CAL_ENSURE(d > 0,
               "tensor dims must be positive (" << t.shape_str() << ")");
  // resize() with the default-init allocator leaves the floats
  // unconstructed — no zero-fill pass over memory the caller overwrites.
  t.data_.resize(shape_product(t.shape_));
  return t;
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) {
  return Tensor({rows, cols});
}

Tensor Tensor::zeros(std::size_t n) { return Tensor({n}); }

Tensor Tensor::from_rows(
    std::initializer_list<std::initializer_list<float>> rows) {
  CAL_ENSURE(rows.size() > 0, "from_rows needs at least one row");
  const std::size_t cols = rows.begin()->size();
  Tensor t({rows.size(), cols});
  std::size_t i = 0;
  for (const auto& row : rows) {
    CAL_ENSURE(row.size() == cols, "ragged rows in from_rows");
    for (float v : row) t.data_[i++] = v;
  }
  return t;
}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, float sigma) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, sigma));
  return t;
}

Tensor Tensor::rand_uniform(std::vector<std::size_t> shape, Rng& rng, float lo,
                            float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

std::size_t Tensor::rows() const {
  CAL_ENSURE(rank() == 2, "rows() requires rank-2, got " << shape_str());
  return shape_[0];
}

std::size_t Tensor::cols() const {
  CAL_ENSURE(rank() == 2, "cols() requires rank-2, got " << shape_str());
  return shape_[1];
}

float& Tensor::operator[](std::size_t i) {
  CAL_ENSURE(i < data_.size(), "flat index " << i << " out of " << data_.size());
  return data_[i];
}

float Tensor::operator[](std::size_t i) const {
  CAL_ENSURE(i < data_.size(), "flat index " << i << " out of " << data_.size());
  return data_[i];
}

float& Tensor::at(std::size_t r, std::size_t c) {
  CAL_ENSURE(rank() == 2, "at(r,c) requires rank-2, got " << shape_str());
  CAL_ENSURE(r < shape_[0] && c < shape_[1],
             "index (" << r << "," << c << ") out of " << shape_str());
  return data_[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

std::span<float> Tensor::row(std::size_t r) {
  CAL_ENSURE(rank() == 2, "row() requires rank-2, got " << shape_str());
  CAL_ENSURE(r < shape_[0], "row " << r << " out of " << shape_[0]);
  return {data_.data() + r * shape_[1], shape_[1]};
}

std::span<const float> Tensor::row(std::size_t r) const {
  CAL_ENSURE(rank() == 2, "row() requires rank-2, got " << shape_str());
  CAL_ENSURE(r < shape_[0], "row " << r << " out of " << shape_[0]);
  return {data_.data() + r * shape_[1], shape_[1]};
}

void Tensor::reshape(std::vector<std::size_t> new_shape) {
  CAL_ENSURE(shape_product(new_shape) == data_.size(),
             "reshape must preserve element count");
  shape_ = std::move(new_shape);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

std::string Tensor::shape_str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < shape_.size(); ++i)
    os << (i ? "x" : "") << shape_[i];
  return os.str();
}

// Elementwise loops below run over local sized pointers rather than the
// member vector so the compiler can prove the buffers distinct and emit
// packed SIMD for the whole loop body.
Tensor Tensor::operator+(const Tensor& rhs) const {
  CAL_ENSURE(same_shape(rhs), "shape mismatch in +: " << shape_str() << " vs "
                                                      << rhs.shape_str());
  Tensor out = *this;
  const std::size_t n = data_.size();
  float* o = out.data_.data();
  const float* r = rhs.data_.data();
  for (std::size_t i = 0; i < n; ++i) o[i] += r[i];
  return out;
}

Tensor Tensor::operator-(const Tensor& rhs) const {
  CAL_ENSURE(same_shape(rhs), "shape mismatch in -: " << shape_str() << " vs "
                                                      << rhs.shape_str());
  Tensor out = *this;
  const std::size_t n = data_.size();
  float* o = out.data_.data();
  const float* r = rhs.data_.data();
  for (std::size_t i = 0; i < n; ++i) o[i] -= r[i];
  return out;
}

Tensor Tensor::operator*(const Tensor& rhs) const {
  CAL_ENSURE(same_shape(rhs), "shape mismatch in *: " << shape_str() << " vs "
                                                      << rhs.shape_str());
  Tensor out = *this;
  const std::size_t n = data_.size();
  float* o = out.data_.data();
  const float* r = rhs.data_.data();
  for (std::size_t i = 0; i < n; ++i) o[i] *= r[i];
  return out;
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  CAL_ENSURE(same_shape(rhs), "shape mismatch in +=");
  const std::size_t n = data_.size();
  float* o = data_.data();
  const float* r = rhs.data_.data();
  for (std::size_t i = 0; i < n; ++i) o[i] += r[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  CAL_ENSURE(same_shape(rhs), "shape mismatch in -=");
  const std::size_t n = data_.size();
  float* o = data_.data();
  const float* r = rhs.data_.data();
  for (std::size_t i = 0; i < n; ++i) o[i] -= r[i];
  return *this;
}

Tensor Tensor::operator*(float s) const {
  Tensor out = *this;
  for (auto& x : out.data_) x *= s;
  return out;
}

double Tensor::sum() const {
  double acc = 0.0;
  for (float x : data_) acc += x;
  return acc;
}

float Tensor::abs_max() const {
  float m = 0.0F;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

Tensor Tensor::matmul(const Tensor& rhs) const {
  CAL_ENSURE(rank() == 2 && rhs.rank() == 2,
             "matmul requires rank-2 operands");
  CAL_ENSURE(shape_[1] == rhs.shape_[0],
             "matmul shape mismatch: " << shape_str() << " * "
                                       << rhs.shape_str());
  const std::size_t m = shape_[0];
  const std::size_t k = shape_[1];
  const std::size_t n = rhs.shape_[1];
  // The blocked kernel keeps the naive loop's IEEE contract: no zero-skip,
  // so 0·NaN and 0·Inf propagate (an adversarial perturbation that
  // overflows has to surface, not be masked), and the ascending-k
  // summation order per output element is preserved.
  Tensor out = Tensor::uninitialized({m, n});
  kernels::gemm_nn(flat(), rhs.flat(), out.flat(), m, k, n);
  return out;
}

Tensor Tensor::matmul_nt(const Tensor& rhs) const {
  CAL_ENSURE(rank() == 2 && rhs.rank() == 2,
             "matmul_nt requires rank-2 operands");
  CAL_ENSURE(shape_[1] == rhs.shape_[1],
             "matmul_nt shape mismatch: " << shape_str() << " * "
                                          << rhs.shape_str() << "^T");
  const std::size_t m = shape_[0];
  const std::size_t k = shape_[1];
  const std::size_t n = rhs.shape_[0];
  Tensor out = Tensor::uninitialized({m, n});
  kernels::gemm_nt(flat(), rhs.flat(), out.flat(), m, k, n);
  return out;
}

Tensor Tensor::matmul_tn(const Tensor& rhs) const {
  CAL_ENSURE(rank() == 2 && rhs.rank() == 2,
             "matmul_tn requires rank-2 operands");
  CAL_ENSURE(shape_[0] == rhs.shape_[0],
             "matmul_tn shape mismatch: " << shape_str() << "^T * "
                                          << rhs.shape_str());
  const std::size_t m = shape_[1];
  const std::size_t k = shape_[0];
  const std::size_t n = rhs.shape_[1];
  Tensor out = Tensor::uninitialized({m, n});
  kernels::gemm_tn(flat(), rhs.flat(), out.flat(), m, k, n);
  return out;
}

Tensor Tensor::transposed() const {
  CAL_ENSURE(rank() == 2, "transposed requires rank-2, got " << shape_str());
  Tensor out({shape_[1], shape_[0]});
  for (std::size_t i = 0; i < shape_[0]; ++i)
    for (std::size_t j = 0; j < shape_[1]; ++j)
      out.data_[j * shape_[0] + i] = data_[i * shape_[1] + j];
  return out;
}

Tensor Tensor::select_columns(std::span<const std::size_t> cols_idx) const {
  CAL_ENSURE(rank() == 2, "select_columns requires rank-2");
  CAL_ENSURE(!cols_idx.empty(), "select_columns with empty index set");
  Tensor out({shape_[0], cols_idx.size()});
  for (std::size_t i = 0; i < shape_[0]; ++i) {
    for (std::size_t j = 0; j < cols_idx.size(); ++j) {
      CAL_ENSURE(cols_idx[j] < shape_[1],
                 "column index " << cols_idx[j] << " out of " << shape_[1]);
      out.data_[i * cols_idx.size() + j] = data_[i * shape_[1] + cols_idx[j]];
    }
  }
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (!a.same_shape(b)) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float x = a[i];
    const float y = b[i];
    // NaN never satisfies a </> comparison, so the tolerance test below
    // would silently pass NaN against anything; treat NaN as equal only
    // to NaN (the kernels' NaN-propagation tests depend on this).
    if (std::isnan(x) || std::isnan(y)) {
      if (std::isnan(x) && std::isnan(y)) continue;
      return false;
    }
    // An infinite y would blow the rtol term up to infinity and accept
    // anything; infinities are close only to the identical infinity.
    if (std::isinf(x) || std::isinf(y)) {
      if (x == y) continue;
      return false;
    }
    if (std::fabs(x - y) > atol + rtol * std::fabs(y)) return false;
  }
  return true;
}

}  // namespace cal
