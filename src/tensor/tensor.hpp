// Float tensor used by the neural-network stack.
//
// Shape bookkeeping and elementwise ops live here; the matmul family
// dispatches to the cache-blocked, register-tiled GEMM kernels in
// src/kernels (gemm_nn/nt/tn), which also provide the fused-transpose
// variants matmul_nt / matmul_tn so hot callers never materialise a
// transposed copy.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace cal {

namespace detail {

/// std::allocator variant whose value-less construct() default-initializes
/// instead of value-initializing: resize() on a vector of floats then leaves
/// the new elements uninitialized. This is what lets Tensor::uninitialized
/// skip the zero-fill for outputs a kernel fully overwrites.
template <typename T>
struct DefaultInitAllocator : std::allocator<T> {
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0)
      ::new (static_cast<void*>(p)) U;
    else
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

}  // namespace detail

/// Dense row-major float tensor (rank 1 or 2 in practice; rank-N storage).
class Tensor {
 public:
  Tensor() = default;

  /// Zero tensor of the given shape. Empty dims are not allowed.
  explicit Tensor(std::vector<std::size_t> shape);

  /// Constant-filled tensor.
  Tensor(std::vector<std::size_t> shape, float fill);

  /// Tensor whose storage is allocated but NOT zero-filled. Only for
  /// outputs the caller overwrites in full before any read (the GEMM
  /// kernels with accumulate == false do); reading an element before
  /// writing it is undefined.
  static Tensor uninitialized(std::vector<std::size_t> shape);

  /// 2-D convenience factory.
  static Tensor zeros(std::size_t rows, std::size_t cols);

  /// 1-D convenience factory.
  static Tensor zeros(std::size_t n);

  /// Build a 2-D tensor from nested lists (rows must be equal length).
  static Tensor from_rows(
      std::initializer_list<std::initializer_list<float>> rows);

  /// i.i.d. N(0, sigma^2) entries.
  static Tensor randn(std::vector<std::size_t> shape, Rng& rng,
                      float sigma = 1.0F);

  /// i.i.d. U(lo, hi) entries.
  static Tensor rand_uniform(std::vector<std::size_t> shape, Rng& rng,
                             float lo, float hi);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Number of rows / cols for rank-2 tensors (throws otherwise).
  std::size_t rows() const;
  std::size_t cols() const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  float& operator[](std::size_t i);
  float operator[](std::size_t i) const;

  /// Rank-2 element access.
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  /// Contiguous row view of a rank-2 tensor.
  std::span<float> row(std::size_t r);
  std::span<const float> row(std::size_t r) const;

  /// True when shapes are identical.
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Reshape in place; total element count must be preserved.
  void reshape(std::vector<std::size_t> new_shape);

  void fill(float v);

  /// "2x3" style shape string for diagnostics.
  std::string shape_str() const;

  // --- elementwise (shape-checked) -------------------------------------
  Tensor operator+(const Tensor& rhs) const;
  Tensor operator-(const Tensor& rhs) const;
  Tensor operator*(const Tensor& rhs) const;  ///< Hadamard product
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor operator*(float s) const;

  /// Sum of all elements.
  double sum() const;

  /// Max |x| over all elements.
  float abs_max() const;

  // --- rank-2 linear algebra --------------------------------------------
  /// Matrix product (this: MxK, rhs: KxN -> MxN).
  Tensor matmul(const Tensor& rhs) const;

  /// Fused this · rhsᵀ (this: MxK, rhs: NxK -> MxN); no transposed copy.
  Tensor matmul_nt(const Tensor& rhs) const;

  /// Fused thisᵀ · rhs (this: KxM, rhs: KxN -> MxN); no transposed copy.
  Tensor matmul_tn(const Tensor& rhs) const;

  /// Transpose copy of a rank-2 tensor.
  Tensor transposed() const;

  /// Extract a copy of selected columns (used by per-AP attack masking).
  Tensor select_columns(std::span<const std::size_t> cols_idx) const;

 private:
  std::vector<std::size_t> shape_;
  /// Default-init allocator so uninitialized() can resize without the
  /// zero-fill; every other factory still fills explicitly.
  std::vector<float, detail::DefaultInitAllocator<float>> data_;
};

/// Strict elementwise closeness check for tests. NaN matches only NaN;
/// mismatched infinities (or Inf vs finite) are never close.
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5F,
              float rtol = 1e-4F);

}  // namespace cal
