// Multi-head prototype (inducing-point) attention.
//
// Used by the ANVIL baseline [17]: each head projects the input batch to a
// query space and attends over a set of learned prototype key/value tokens,
// so attention stays a rank-2 computation that batches efficiently. This is
// the inducing-point formulation of multi-head attention (as in the Set
// Transformer); for per-sample feature attention over a handful of learned
// tokens it is equivalent in expressiveness to the ANVIL encoder layer.
//
// MultiHeadPrototypeAttention runs all heads FUSED: one query projection
// whose column blocks are the per-head W_q, prototype keys/values stacked
// row-wise, and the head-batched autograd ops (matmul_nt_heads /
// softmax_blocks / matmul_heads) lowering to single strided batched GEMM
// invocations instead of one GEMM per head. Initialisation draws per-head
// parameters in the same RNG order as the per-head formulation, and the
// batched kernels preserve each head's reduction order, so the fused
// module is bit-identical to a loop over PrototypeAttentionHead (tests
// assert this).
#pragma once

#include <memory>

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace cal::nn {

/// One attention head: Q = x W_q attends over M learned prototypes. The
/// fused module below supersedes looping over these; kept as the reference
/// formulation (and for single-head users).
class PrototypeAttentionHead : public Module {
 public:
  PrototypeAttentionHead(std::size_t in_features, std::size_t head_dim,
                         std::size_t num_prototypes, Rng& rng,
                         std::string name = "head");

  autograd::Var forward(const autograd::Var& x) override;
  std::vector<Parameter> parameters() override;

  std::size_t head_dim() const { return head_dim_; }

 private:
  std::size_t head_dim_;
  std::string name_;
  std::unique_ptr<Linear> w_q_;
  autograd::Var proto_k_;  // (M, head_dim)
  autograd::Var proto_v_;  // (M, head_dim)
};

/// Multi-head wrapper: all heads fused into head-batched GEMMs, head
/// outputs (already concatenated by layout) mixed with W_o.
class MultiHeadPrototypeAttention : public Module {
 public:
  MultiHeadPrototypeAttention(std::size_t in_features, std::size_t head_dim,
                              std::size_t num_heads,
                              std::size_t num_prototypes, Rng& rng,
                              std::string name = "mha");

  autograd::Var forward(const autograd::Var& x) override;
  std::vector<Parameter> parameters() override;
  void set_training(bool training) override;

  std::size_t out_features() const { return out_features_; }

 private:
  std::size_t out_features_;
  std::size_t num_heads_;
  std::size_t head_dim_;
  std::string name_;
  std::unique_ptr<Linear> w_q_;  // (in, H·head_dim): column block per head
  autograd::Var proto_k_;        // (H·M, head_dim): row block per head
  autograd::Var proto_v_;        // (H·M, head_dim)
  std::unique_ptr<Linear> w_o_;
};

}  // namespace cal::nn
