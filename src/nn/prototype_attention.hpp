// Multi-head prototype (inducing-point) attention.
//
// Used by the ANVIL baseline [17]: each head projects the input batch to a
// query space and attends over a set of learned prototype key/value tokens,
// so attention stays a rank-2 computation that batches efficiently. This is
// the inducing-point formulation of multi-head attention (as in the Set
// Transformer); for per-sample feature attention over a handful of learned
// tokens it is equivalent in expressiveness to the ANVIL encoder layer.
#pragma once

#include <memory>

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace cal::nn {

/// One attention head: Q = x W_q attends over M learned prototypes.
class PrototypeAttentionHead : public Module {
 public:
  PrototypeAttentionHead(std::size_t in_features, std::size_t head_dim,
                         std::size_t num_prototypes, Rng& rng,
                         std::string name = "head");

  autograd::Var forward(const autograd::Var& x) override;
  std::vector<Parameter> parameters() override;

  std::size_t head_dim() const { return head_dim_; }

 private:
  std::size_t head_dim_;
  std::string name_;
  std::unique_ptr<Linear> w_q_;
  autograd::Var proto_k_;  // (M, head_dim)
  autograd::Var proto_v_;  // (M, head_dim)
};

/// Multi-head wrapper: concatenates head outputs and mixes with W_o.
class MultiHeadPrototypeAttention : public Module {
 public:
  MultiHeadPrototypeAttention(std::size_t in_features, std::size_t head_dim,
                              std::size_t num_heads,
                              std::size_t num_prototypes, Rng& rng,
                              std::string name = "mha");

  autograd::Var forward(const autograd::Var& x) override;
  std::vector<Parameter> parameters() override;
  void set_training(bool training) override;

  std::size_t out_features() const { return out_features_; }

 private:
  std::size_t out_features_;
  std::vector<std::unique_ptr<PrototypeAttentionHead>> heads_;
  std::unique_ptr<Linear> w_o_;
};

}  // namespace cal::nn
