#include "nn/optimizer.hpp"

#include <cmath>

#include "common/ensure.hpp"

namespace cal::nn {

Optimizer::Optimizer(std::vector<Parameter> params)
    : params_(std::move(params)) {
  CAL_ENSURE(!params_.empty(), "optimizer bound to zero parameters");
  for (const auto& p : params_)
    CAL_ENSURE(p.var != nullptr && p.var->requires_grad(),
               "optimizer parameter " << p.name << " does not require grad");
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.var->zero_grad();
}

Sgd::Sgd(std::vector<Parameter> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  CAL_ENSURE(lr > 0.0F, "learning rate must be positive");
  CAL_ENSURE(momentum >= 0.0F && momentum < 1.0F, "momentum out of [0,1)");
  for (const auto& p : params_) velocity_.emplace_back(p.var->value().shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& w = params_[i].var->mutable_value();
    const Tensor& g = params_[i].var->grad();
    Tensor& v = velocity_[i];
    for (std::size_t j = 0; j < w.size(); ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      v[j] = momentum_ * v[j] - lr_ * grad;
      w[j] += v[j];
    }
  }
}

Adam::Adam(std::vector<Parameter> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  CAL_ENSURE(lr > 0.0F, "learning rate must be positive");
  CAL_ENSURE(beta1 >= 0.0F && beta1 < 1.0F, "beta1 out of [0,1)");
  CAL_ENSURE(beta2 >= 0.0F && beta2 < 1.0F, "beta2 out of [0,1)");
  for (const auto& p : params_) {
    m_.emplace_back(p.var->value().shape());
    v_.emplace_back(p.var->value().shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& w = params_[i].var->mutable_value();
    const Tensor& g = params_[i].var->grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < w.size(); ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0F - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0F - beta2_) * grad * grad;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace cal::nn
