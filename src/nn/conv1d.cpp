#include "nn/conv1d.hpp"

#include "common/ensure.hpp"
#include "nn/init.hpp"

namespace cal::nn {
namespace {

using autograd::Node;
using autograd::Var;

/// Gather sliding windows: x (B, L) -> (B*out_len, kernel).
Var im2col1d(const Var& x, std::size_t kernel, std::size_t stride,
             std::size_t out_len) {
  const Tensor& xv = x->value();
  const std::size_t batch = xv.rows();
  const std::size_t len = xv.cols();
  Tensor out({batch * out_len, kernel});
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = xv.data() + b * len;
    for (std::size_t t = 0; t < out_len; ++t) {
      float* orow = out.data() + (b * out_len + t) * kernel;
      const std::size_t start = t * stride;
      for (std::size_t k = 0; k < kernel; ++k) orow[k] = row[start + k];
    }
  }
  auto node = std::make_shared<Node>(std::move(out), x->requires_grad(),
                                     "im2col1d");
  node->add_parent(x);
  if (node->requires_grad()) {
    Node* self = node.get();
    Node* px = x.get();
    node->set_backward([self, px, kernel, stride, out_len, batch, len] {
      if (!px->requires_grad()) return;
      const Tensor& g = self->grad();
      Tensor& gx = px->grad_buffer();
      for (std::size_t b = 0; b < batch; ++b) {
        float* grow = gx.data() + b * len;
        for (std::size_t t = 0; t < out_len; ++t) {
          const float* orow = g.data() + (b * out_len + t) * kernel;
          const std::size_t start = t * stride;
          for (std::size_t k = 0; k < kernel; ++k) grow[start + k] += orow[k];
        }
      }
    });
  }
  return node;
}

}  // namespace

Conv1d::Conv1d(std::size_t input_len, std::size_t kernel_size,
               std::size_t filters, std::size_t stride, Rng& rng,
               std::string name)
    : input_len_(input_len),
      kernel_(kernel_size),
      filters_(filters),
      stride_(stride),
      name_(std::move(name)) {
  CAL_ENSURE(stride_ >= 1, "conv stride must be >= 1");
  CAL_ENSURE(kernel_ >= 1 && kernel_ <= input_len_,
             "conv kernel " << kernel_ << " incompatible with input length "
                            << input_len_);
  CAL_ENSURE(filters_ >= 1, "conv needs at least one filter");
  out_len_ = (input_len_ - kernel_) / stride_ + 1;
  w_ = autograd::make_leaf(xavier_uniform(kernel_, filters_, rng), true);
  b_ = autograd::make_leaf(Tensor({filters_}), true);
}

autograd::Var Conv1d::forward(const autograd::Var& x) {
  const Tensor& xv = x->value();
  CAL_ENSURE(xv.rank() == 2 && xv.cols() == input_len_,
             name_ << ": expected input (*, " << input_len_ << "), got "
                   << xv.shape_str());
  const std::size_t batch = xv.rows();
  Var cols = im2col1d(x, kernel_, stride_, out_len_);
  // (B*out_len, kernel) x (kernel, filters): the im2col lowering rides the
  // same blocked GEMM (and fused-transpose backward) as every dense layer.
  Var act = autograd::add_rowwise(autograd::matmul(cols, w_), b_);
  // (B*out_len, filters) rows are laid out b-major, so a flat reshape
  // yields the (B, out_len*filters) feature map without copying semantics.
  return autograd::reshape(act, {batch, out_len_ * filters_});
}

std::vector<Parameter> Conv1d::parameters() {
  return {{name_ + ".weight", w_}, {name_ + ".bias", b_}};
}

}  // namespace cal::nn
