#include "nn/regularizers.hpp"

#include "common/ensure.hpp"

namespace cal::nn {

Dropout::Dropout(float rate, Rng rng) : rate_(rate), rng_(rng) {
  CAL_ENSURE(rate >= 0.0F && rate < 1.0F, "dropout rate out of [0,1): " << rate);
}

autograd::Var Dropout::forward(const autograd::Var& x) {
  return autograd::dropout(x, rate_, rng_, training());
}

GaussianNoise::GaussianNoise(float sigma, Rng rng) : sigma_(sigma), rng_(rng) {
  CAL_ENSURE(sigma >= 0.0F, "noise sigma must be >= 0: " << sigma);
}

autograd::Var GaussianNoise::forward(const autograd::Var& x) {
  return autograd::gaussian_noise(x, sigma_, rng_, training());
}

}  // namespace cal::nn
