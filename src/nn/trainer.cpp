#include "nn/trainer.hpp"

#include <algorithm>
#include <limits>

#include "common/ensure.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace cal::nn {
namespace {

/// Internal loss adapter so classification and regression share one loop.
struct LossSpec {
  // When labels is non-null the loss is cross-entropy; otherwise MSE
  // against the matching rows of `targets`.
  const std::vector<std::size_t>* labels = nullptr;
  const Tensor* targets = nullptr;
};

autograd::Var batch_loss(Module& model, const Tensor& xb,
                         std::span<const std::size_t> idx,
                         const LossSpec& spec) {
  auto input = autograd::constant(xb);
  auto out = model.forward(input);
  if (spec.labels != nullptr) {
    std::vector<std::size_t> yb(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) yb[i] = (*spec.labels)[idx[i]];
    return autograd::cross_entropy(out, yb);
  }
  Tensor tb = gather_rows(*spec.targets, idx);
  return autograd::mse_loss(out, tb);
}

TrainHistory fit_impl(Module& model, const Tensor& x, const LossSpec& spec,
                      const TrainConfig& cfg) {
  CAL_ENSURE(x.rank() == 2, "training data must be rank-2");
  const std::size_t n = x.rows();
  CAL_ENSURE(n >= 2, "need at least 2 training samples");
  CAL_ENSURE(cfg.batch_size >= 1, "batch_size must be >= 1");
  CAL_ENSURE(cfg.validation_fraction >= 0.0 && cfg.validation_fraction < 1.0,
             "validation_fraction out of [0,1)");

  Rng rng(cfg.seed);
  auto perm = rng.permutation(n);
  const auto n_val = static_cast<std::size_t>(
      static_cast<double>(n) * cfg.validation_fraction);
  std::vector<std::size_t> val_idx(perm.begin(),
                                   perm.begin() + static_cast<long>(n_val));
  std::vector<std::size_t> train_idx(perm.begin() + static_cast<long>(n_val),
                                     perm.end());
  CAL_ENSURE(!train_idx.empty(), "validation split consumed all data");

  Adam opt(model.parameters(), cfg.learning_rate, 0.9F, 0.999F, 1e-8F,
           cfg.weight_decay);

  TrainHistory history;
  history.best_val_loss = std::numeric_limits<double>::infinity();
  std::vector<Tensor> best_weights = model.snapshot_weights();
  std::size_t since_best = 0;

  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    model.set_training(true);
    rng.shuffle(train_idx);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < train_idx.size();
         start += cfg.batch_size) {
      const std::size_t end =
          std::min(start + cfg.batch_size, train_idx.size());
      std::span<const std::size_t> idx(train_idx.data() + start, end - start);
      Tensor xb = gather_rows(x, idx);
      auto loss = batch_loss(model, xb, idx, spec);
      opt.zero_grad();
      autograd::backward(loss);
      opt.step();
      epoch_loss += loss->value()[0];
      ++batches;
    }
    epoch_loss /= static_cast<double>(std::max<std::size_t>(batches, 1));
    history.train_loss.push_back(epoch_loss);

    // Validation (falls back to train loss when no split requested).
    double val_loss = epoch_loss;
    if (!val_idx.empty()) {
      model.set_training(false);
      Tensor xv = gather_rows(x, val_idx);
      auto loss = batch_loss(model, xv, val_idx, spec);
      val_loss = loss->value()[0];
    }
    history.val_loss.push_back(val_loss);
    if (cfg.verbose)
      CAL_INFO("epoch " << epoch << " train=" << epoch_loss
                        << " val=" << val_loss);

    if (val_loss < history.best_val_loss) {
      history.best_val_loss = val_loss;
      history.best_epoch = epoch;
      since_best = 0;
      if (cfg.restore_best_weights) best_weights = model.snapshot_weights();
    } else {
      ++since_best;
      if (cfg.early_stop_patience > 0 &&
          since_best >= cfg.early_stop_patience) {
        history.early_stopped = true;
        break;
      }
    }
  }

  if (cfg.restore_best_weights) model.restore_weights(best_weights);
  model.set_training(false);
  return history;
}

}  // namespace

Tensor gather_rows(const Tensor& x, std::span<const std::size_t> idx) {
  CAL_ENSURE(x.rank() == 2, "gather_rows expects rank-2");
  CAL_ENSURE(!idx.empty(), "gather_rows with empty index set");
  Tensor out({idx.size(), x.cols()});
  for (std::size_t i = 0; i < idx.size(); ++i) {
    CAL_ENSURE(idx[i] < x.rows(), "row index " << idx[i] << " out of "
                                               << x.rows());
    const float* src = x.data() + idx[i] * x.cols();
    float* dst = out.data() + i * x.cols();
    std::copy(src, src + x.cols(), dst);
  }
  return out;
}

TrainHistory fit_classifier(Module& model, const Tensor& x,
                            std::span<const std::size_t> y,
                            const TrainConfig& cfg) {
  CAL_ENSURE(y.size() == x.rows(), "labels/rows mismatch: " << y.size()
                                                            << " vs "
                                                            << x.rows());
  std::vector<std::size_t> labels(y.begin(), y.end());
  LossSpec spec;
  spec.labels = &labels;
  return fit_impl(model, x, spec, cfg);
}

TrainHistory fit_regression(Module& model, const Tensor& x,
                            const Tensor& targets, const TrainConfig& cfg) {
  CAL_ENSURE(targets.rank() == 2 && targets.rows() == x.rows(),
             "targets/rows mismatch");
  LossSpec spec;
  spec.targets = &targets;
  return fit_impl(model, x, spec, cfg);
}

double evaluate_classifier_loss(Module& model, const Tensor& x,
                                std::span<const std::size_t> y) {
  CAL_ENSURE(y.size() == x.rows(), "labels/rows mismatch");
  const bool was_training = model.training();
  model.set_training(false);
  auto out = model.forward(autograd::constant(x));
  auto loss = autograd::cross_entropy(out, y);
  model.set_training(was_training);
  return loss->value()[0];
}

double evaluate_accuracy(Module& model, const Tensor& x,
                         std::span<const std::size_t> y) {
  CAL_ENSURE(y.size() == x.rows(), "labels/rows mismatch");
  Tensor logits = predict_tensor(model, x);
  auto pred = autograd::argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == y[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(y.size());
}

}  // namespace cal::nn
