// First-order optimisers over Module parameters.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace cal::nn {

/// Abstract optimiser; bound to a fixed parameter list at construction.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter> params);
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients.
  virtual void step() = 0;

  /// Zero all bound parameter gradients.
  void zero_grad();

 protected:
  std::vector<Parameter> params_;
};

/// SGD with classical momentum and decoupled weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter> params, float lr, float momentum = 0.0F,
      float weight_decay = 0.0F);

  void step() override;

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction and decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter> params, float lr, float beta1 = 0.9F,
       float beta2 = 0.999F, float eps = 1e-8F, float weight_decay = 0.0F);

  void step() override;

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace cal::nn
