#include "nn/activations.hpp"

// Activations are header-only; this TU anchors the library target.
