// 1-D convolution over the AP axis (used by the CNN baseline [16]).
//
// The RSS fingerprint is a 1-D signal indexed by AP; a Conv1d layer slides
// `filters` kernels of width `kernel_size` along it. Implemented as an
// im2col gather (a custom autograd node with scatter-add backward) followed
// by a matmul, the standard lowering.
#pragma once

#include "nn/module.hpp"

namespace cal::nn {

/// Single-input-channel 1-D convolution producing a flattened
/// (batch, out_len * filters) activation map.
class Conv1d : public Module {
 public:
  /// input_len: AP count; stride >= 1; kernel_size <= input_len.
  Conv1d(std::size_t input_len, std::size_t kernel_size, std::size_t filters,
         std::size_t stride, Rng& rng, std::string name = "conv1d");

  autograd::Var forward(const autograd::Var& x) override;
  std::vector<Parameter> parameters() override;

  std::size_t output_len() const { return out_len_; }
  std::size_t output_features() const { return out_len_ * filters_; }

 private:
  std::size_t input_len_;
  std::size_t kernel_;
  std::size_t filters_;
  std::size_t stride_;
  std::size_t out_len_;
  std::string name_;
  autograd::Var w_;  // (kernel, filters)
  autograd::Var b_;  // (filters)
};

}  // namespace cal::nn
