// Generic mini-batch training loops with early stopping.
//
// Used by every NN baseline (DNN, CNN, AdvLoc, ANVIL, autoencoders).
// CALLOC's curriculum training has its own adaptive controller in
// src/core/adaptive_trainer.*, which layers lesson logic on top of the
// same epoch mechanics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/module.hpp"
#include "nn/optimizer.hpp"

namespace cal::nn {

/// Hyper-parameters for one fit() call.
struct TrainConfig {
  std::size_t epochs = 60;
  std::size_t batch_size = 32;
  float learning_rate = 1e-3F;
  float weight_decay = 0.0F;
  /// Fraction of the data held out for validation (0 disables).
  double validation_fraction = 0.15;
  /// Stop after this many epochs without val-loss improvement (0 disables).
  std::size_t early_stop_patience = 10;
  /// Restore the best-validation weights after training.
  bool restore_best_weights = true;
  std::uint64_t seed = 1;
  bool verbose = false;
};

/// Loss trajectory and stopping information from a fit() call.
struct TrainHistory {
  std::vector<double> train_loss;
  std::vector<double> val_loss;
  std::size_t best_epoch = 0;
  double best_val_loss = 0.0;
  bool early_stopped = false;
};

/// Train a classifier (logits output) with cross-entropy + Adam.
TrainHistory fit_classifier(Module& model, const Tensor& x,
                            std::span<const std::size_t> y,
                            const TrainConfig& cfg);

/// Train a regression/reconstruction model (MSE) — e.g. autoencoders.
TrainHistory fit_regression(Module& model, const Tensor& x,
                            const Tensor& targets, const TrainConfig& cfg);

/// Mean cross-entropy of model logits on (x, y) in eval mode.
double evaluate_classifier_loss(Module& model, const Tensor& x,
                                std::span<const std::size_t> y);

/// Classification accuracy in eval mode.
double evaluate_accuracy(Module& model, const Tensor& x,
                         std::span<const std::size_t> y);

/// Copy selected rows of x (and labels) into a fresh batch tensor.
Tensor gather_rows(const Tensor& x, std::span<const std::size_t> idx);

}  // namespace cal::nn
