#include "nn/linear.hpp"

#include "common/ensure.hpp"
#include "nn/init.hpp"

namespace cal::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               std::string name)
    : in_(in_features), out_(out_features), name_(std::move(name)) {
  CAL_ENSURE(in_ > 0 && out_ > 0, "Linear dims must be positive");
  w_ = autograd::make_leaf(xavier_uniform(in_, out_, rng), true);
  b_ = autograd::make_leaf(Tensor({out_}), true);
}

Linear::Linear(Tensor weight, Tensor bias, std::string name)
    : in_(weight.rank() == 2 ? weight.rows() : 0),
      out_(weight.rank() == 2 ? weight.cols() : 0),
      name_(std::move(name)) {
  CAL_ENSURE(weight.rank() == 2 && in_ > 0 && out_ > 0,
             name_ << ": weight must be a non-empty rank-2 matrix, got "
                   << weight.shape_str());
  CAL_ENSURE(bias.rank() == 1 && bias.size() == out_,
             name_ << ": bias must have " << out_ << " entries, got "
                   << bias.shape_str());
  w_ = autograd::make_leaf(std::move(weight), true);
  b_ = autograd::make_leaf(std::move(bias), true);
}

autograd::Var Linear::forward(const autograd::Var& x) {
  CAL_ENSURE(x->value().rank() == 2 && x->value().cols() == in_,
             name_ << ": expected input (*, " << in_ << "), got "
                   << x->value().shape_str());
  return autograd::add_rowwise(autograd::matmul(x, w_), b_);
}

std::vector<Parameter> Linear::parameters() {
  return {{name_ + ".weight", w_}, {name_ + ".bias", b_}};
}

}  // namespace cal::nn
