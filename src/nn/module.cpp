#include "nn/module.hpp"

#include <cstdint>
#include <istream>
#include <ostream>

#include "common/ensure.hpp"

namespace cal::nn {

std::size_t Module::parameter_count() {
  std::size_t n = 0;
  for (const auto& p : parameters()) n += p.var->value().size();
  return n;
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.var->zero_grad();
}

std::vector<Tensor> Module::snapshot_weights() {
  std::vector<Tensor> snap;
  for (const auto& p : parameters()) snap.push_back(p.var->value());
  return snap;
}

void Module::restore_weights(const std::vector<Tensor>& snapshot) {
  auto params = parameters();
  CAL_ENSURE(snapshot.size() == params.size(),
             "snapshot has " << snapshot.size() << " tensors, module has "
                             << params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    CAL_ENSURE(snapshot[i].same_shape(params[i].var->value()),
               "snapshot shape mismatch at parameter " << params[i].name);
    params[i].var->mutable_value() = snapshot[i];
  }
}

void Module::save_weights(std::ostream& out) {
  auto params = parameters();
  const std::uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const Tensor& t = p.var->value();
    const std::uint64_t n = t.size();
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(n * sizeof(float)));
  }
  CAL_ENSURE(out.good(), "failed writing module weights");
}

void Module::load_weights(std::istream& in) {
  auto params = parameters();
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  CAL_ENSURE(in.good() && count == params.size(),
             "weight blob has " << count << " tensors, module has "
                                << params.size());
  for (auto& p : params) {
    std::uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    Tensor& t = p.var->mutable_value();
    CAL_ENSURE(in.good() && n == t.size(),
               "weight blob tensor size mismatch at " << p.name);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    CAL_ENSURE(in.good(), "truncated weight blob at " << p.name);
  }
}

std::size_t Module::weight_bytes() {
  // Header + per-tensor length prefix + float payload (mirrors save_weights).
  std::size_t bytes = sizeof(std::uint64_t);
  for (const auto& p : parameters())
    bytes += sizeof(std::uint64_t) + p.var->value().size() * sizeof(float);
  return bytes;
}

Tensor predict_tensor(Module& m, const Tensor& x) {
  // Toggle the mode only when needed, so this call is write-free (and
  // therefore safe to run concurrently) on a module already in eval mode.
  const bool was_training = m.training();
  if (was_training) m.set_training(false);
  auto out = m.forward(autograd::constant(x));
  if (was_training) m.set_training(true);
  return out->value();
}

}  // namespace cal::nn
