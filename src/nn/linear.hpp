// Fully-connected layer.
#pragma once

#include "nn/module.hpp"

namespace cal::nn {

/// y = x W + b with W: (in x out), b: (out).
class Linear : public Module {
 public:
  /// Xavier-uniform initialised weights; zero bias.
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
         std::string name = "linear");

  /// Wrap pre-assembled weights W (in x out) and bias b (out) — for fused
  /// layers that stitch independently initialised blocks into one matrix
  /// (e.g. per-head query projections fused column-wise).
  Linear(Tensor weight, Tensor bias, std::string name = "linear");

  autograd::Var forward(const autograd::Var& x) override;
  std::vector<Parameter> parameters() override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  autograd::Var weight() { return w_; }
  autograd::Var bias() { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  std::string name_;
  autograd::Var w_;
  autograd::Var b_;
};

}  // namespace cal::nn
