// Weight initialisation schemes.
#pragma once

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace cal::nn {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Tensor xavier_uniform(std::size_t fan_in, std::size_t fan_out, Rng& rng);

/// He normal: N(0, 2 / fan_in), preferred for ReLU stacks.
Tensor he_normal(std::size_t fan_in, std::size_t fan_out, Rng& rng);

}  // namespace cal::nn
