#include "nn/sequential.hpp"

#include "common/ensure.hpp"

namespace cal::nn {

Sequential& Sequential::add(std::unique_ptr<Module> child) {
  CAL_ENSURE(child != nullptr, "Sequential::add(nullptr)");
  children_.push_back(std::move(child));
  return *this;
}

autograd::Var Sequential::forward(const autograd::Var& x) {
  CAL_ENSURE(!children_.empty(), "forward on empty Sequential");
  autograd::Var h = x;
  for (auto& child : children_) h = child->forward(h);
  return h;
}

std::vector<Parameter> Sequential::parameters() {
  std::vector<Parameter> all;
  for (auto& child : children_)
    for (auto& p : child->parameters()) all.push_back(p);
  return all;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& child : children_) child->set_training(training);
}

}  // namespace cal::nn
