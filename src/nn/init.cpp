#include "nn/init.hpp"

#include <cmath>

namespace cal::nn {

Tensor xavier_uniform(std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  const float a =
      std::sqrt(6.0F / static_cast<float>(fan_in + fan_out));
  return Tensor::rand_uniform({fan_in, fan_out}, rng, -a, a);
}

Tensor he_normal(std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  const float sigma = std::sqrt(2.0F / static_cast<float>(fan_in));
  return Tensor::randn({fan_in, fan_out}, rng, sigma);
}

}  // namespace cal::nn
