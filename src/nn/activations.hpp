// Parameter-free activation modules.
#pragma once

#include "nn/module.hpp"

namespace cal::nn {

class ReLU : public Module {
 public:
  autograd::Var forward(const autograd::Var& x) override {
    return autograd::relu(x);
  }
  std::vector<Parameter> parameters() override { return {}; }
};

class Tanh : public Module {
 public:
  autograd::Var forward(const autograd::Var& x) override {
    return autograd::tanh_op(x);
  }
  std::vector<Parameter> parameters() override { return {}; }
};

class Sigmoid : public Module {
 public:
  autograd::Var forward(const autograd::Var& x) override {
    return autograd::sigmoid(x);
  }
  std::vector<Parameter> parameters() override { return {}; }
};

}  // namespace cal::nn
