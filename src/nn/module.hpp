// Module abstraction for trainable components.
//
// A Module owns persistent parameter leaves (autograd Vars); each forward
// pass builds a fresh graph referencing those leaves, so gradients
// accumulate into the same buffers across the batch and are consumed by an
// Optimizer. Follows the Core Guidelines class-hierarchy rules: abstract
// interface, virtual destructor, no slicing (modules are non-copyable).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.hpp"
#include "autograd/variable.hpp"

namespace cal::nn {

/// A named trainable parameter.
struct Parameter {
  std::string name;
  autograd::Var var;
};

/// Base class for neural-network building blocks.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  /// Build the forward graph for one input batch.
  virtual autograd::Var forward(const autograd::Var& x) = 0;

  /// All trainable parameters (leaves), in a stable order.
  virtual std::vector<Parameter> parameters() = 0;

  /// Toggle training-time behaviour (dropout, noise).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Total number of trainable scalar parameters.
  std::size_t parameter_count();

  /// Zero every parameter gradient.
  void zero_grad();

  /// Deep-copy current parameter values (for best-weight snapshots).
  std::vector<Tensor> snapshot_weights();

  /// Restore from a snapshot taken on this module.
  void restore_weights(const std::vector<Tensor>& snapshot);

  /// Serialize weights as a portable binary blob.
  void save_weights(std::ostream& out);

  /// Load weights previously saved from an identically-shaped module.
  void load_weights(std::istream& in);

  /// Serialized weight size in bytes (the paper reports 254.84 kB).
  std::size_t weight_bytes();

 protected:
  bool training_ = true;
};

/// Convenience: run a module in eval mode on a plain tensor batch,
/// returning the output tensor (no gradients kept).
///
/// Threading contract: a Module already in eval mode is not written to by
/// this call (the training flag is only toggled when it was set), and a
/// forward pass only reads the parameter leaves, so concurrent
/// predict_tensor calls on one eval-mode module are safe as long as
/// nothing mutates the weights concurrently. A module in *training* mode
/// must not be shared across threads: the flag toggle and the stochastic
/// layers' Rng streams race. The serving layer (src/serve) sidesteps the
/// question entirely by giving each worker its own replica.
Tensor predict_tensor(Module& m, const Tensor& x);

}  // namespace cal::nn
