// Stochastic regularisation modules (active only in training mode).
//
// CALLOC's original-data embedding uses Dropout(0.2) + GaussianNoise(0.32)
// to simulate environmental and device variation during training (§IV.B).
#pragma once

#include "nn/module.hpp"

namespace cal::nn {

/// Inverted dropout module with its own deterministic RNG stream.
class Dropout : public Module {
 public:
  Dropout(float rate, Rng rng);

  autograd::Var forward(const autograd::Var& x) override;
  std::vector<Parameter> parameters() override { return {}; }

  float rate() const { return rate_; }

 private:
  float rate_;
  Rng rng_;
};

/// Additive zero-mean Gaussian noise module.
class GaussianNoise : public Module {
 public:
  GaussianNoise(float sigma, Rng rng);

  autograd::Var forward(const autograd::Var& x) override;
  std::vector<Parameter> parameters() override { return {}; }

  float sigma() const { return sigma_; }

 private:
  float sigma_;
  Rng rng_;
};

}  // namespace cal::nn
