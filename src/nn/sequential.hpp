// Ordered container of modules.
#pragma once

#include <memory>

#include "nn/module.hpp"

namespace cal::nn {

/// Chains child modules; forward applies them in insertion order.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Append a child (takes ownership); returns *this for chaining.
  Sequential& add(std::unique_ptr<Module> child);

  /// Emplace a child of type M constructed from args.
  template <typename M, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<M>(std::forward<Args>(args)...));
  }

  autograd::Var forward(const autograd::Var& x) override;
  std::vector<Parameter> parameters() override;
  void set_training(bool training) override;

  std::size_t num_children() const { return children_.size(); }

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

}  // namespace cal::nn
