#include "nn/prototype_attention.hpp"

#include "common/ensure.hpp"

namespace cal::nn {

PrototypeAttentionHead::PrototypeAttentionHead(std::size_t in_features,
                                               std::size_t head_dim,
                                               std::size_t num_prototypes,
                                               Rng& rng, std::string name)
    : head_dim_(head_dim), name_(std::move(name)) {
  CAL_ENSURE(head_dim_ > 0 && num_prototypes > 0,
             "attention head dims must be positive");
  w_q_ = std::make_unique<Linear>(in_features, head_dim_, rng, name_ + ".wq");
  proto_k_ = autograd::make_leaf(
      Tensor::randn({num_prototypes, head_dim_}, rng, 0.5F), true);
  proto_v_ = autograd::make_leaf(
      Tensor::randn({num_prototypes, head_dim_}, rng, 0.5F), true);
}

autograd::Var PrototypeAttentionHead::forward(const autograd::Var& x) {
  auto q = w_q_->forward(x);
  return autograd::scaled_dot_product_attention(q, proto_k_, proto_v_);
}

std::vector<Parameter> PrototypeAttentionHead::parameters() {
  auto params = w_q_->parameters();
  params.push_back({name_ + ".proto_k", proto_k_});
  params.push_back({name_ + ".proto_v", proto_v_});
  return params;
}

MultiHeadPrototypeAttention::MultiHeadPrototypeAttention(
    std::size_t in_features, std::size_t head_dim, std::size_t num_heads,
    std::size_t num_prototypes, Rng& rng, std::string name) {
  CAL_ENSURE(num_heads > 0, "need at least one attention head");
  for (std::size_t h = 0; h < num_heads; ++h) {
    heads_.push_back(std::make_unique<PrototypeAttentionHead>(
        in_features, head_dim, num_prototypes, rng,
        name + ".head" + std::to_string(h)));
  }
  out_features_ = head_dim * num_heads;
  w_o_ = std::make_unique<Linear>(out_features_, out_features_, rng,
                                  name + ".wo");
}

autograd::Var MultiHeadPrototypeAttention::forward(const autograd::Var& x) {
  autograd::Var cat = heads_[0]->forward(x);
  for (std::size_t h = 1; h < heads_.size(); ++h)
    cat = autograd::concat_cols(cat, heads_[h]->forward(x));
  return w_o_->forward(cat);
}

std::vector<Parameter> MultiHeadPrototypeAttention::parameters() {
  std::vector<Parameter> all;
  for (auto& h : heads_)
    for (auto& p : h->parameters()) all.push_back(p);
  for (auto& p : w_o_->parameters()) all.push_back(p);
  return all;
}

void MultiHeadPrototypeAttention::set_training(bool training) {
  Module::set_training(training);
  for (auto& h : heads_) h->set_training(training);
  w_o_->set_training(training);
}

}  // namespace cal::nn
