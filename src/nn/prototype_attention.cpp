#include "nn/prototype_attention.hpp"

#include <cmath>
#include <cstring>

#include "autograd/ops.hpp"
#include "common/ensure.hpp"

namespace cal::nn {

PrototypeAttentionHead::PrototypeAttentionHead(std::size_t in_features,
                                               std::size_t head_dim,
                                               std::size_t num_prototypes,
                                               Rng& rng, std::string name)
    : head_dim_(head_dim), name_(std::move(name)) {
  CAL_ENSURE(head_dim_ > 0 && num_prototypes > 0,
             "attention head dims must be positive");
  w_q_ = std::make_unique<Linear>(in_features, head_dim_, rng, name_ + ".wq");
  proto_k_ = autograd::make_leaf(
      Tensor::randn({num_prototypes, head_dim_}, rng, 0.5F), true);
  proto_v_ = autograd::make_leaf(
      Tensor::randn({num_prototypes, head_dim_}, rng, 0.5F), true);
}

autograd::Var PrototypeAttentionHead::forward(const autograd::Var& x) {
  auto q = w_q_->forward(x);
  return autograd::scaled_dot_product_attention(q, proto_k_, proto_v_);
}

std::vector<Parameter> PrototypeAttentionHead::parameters() {
  auto params = w_q_->parameters();
  params.push_back({name_ + ".proto_k", proto_k_});
  params.push_back({name_ + ".proto_v", proto_v_});
  return params;
}

MultiHeadPrototypeAttention::MultiHeadPrototypeAttention(
    std::size_t in_features, std::size_t head_dim, std::size_t num_heads,
    std::size_t num_prototypes, Rng& rng, std::string name)
    : num_heads_(num_heads), head_dim_(head_dim), name_(std::move(name)) {
  CAL_ENSURE(num_heads > 0, "need at least one attention head");
  CAL_ENSURE(head_dim > 0 && num_prototypes > 0,
             "attention head dims must be positive");
  out_features_ = head_dim * num_heads;
  // Draw each head's parameters in exactly the order the per-head
  // formulation does (same RNG stream, same per-head Xavier bounds), then
  // stitch them into the fused layout: W_q column block h and prototype
  // row block h belong to head h.
  Tensor wq({in_features, out_features_});
  Tensor bq({out_features_});
  Tensor kfused({num_heads * num_prototypes, head_dim});
  Tensor vfused({num_heads * num_prototypes, head_dim});
  for (std::size_t h = 0; h < num_heads; ++h) {
    Linear head_wq(in_features, head_dim, rng, "tmp");
    const Tensor& w = head_wq.weight()->value();  // (in, head_dim)
    for (std::size_t i = 0; i < in_features; ++i)
      std::memcpy(wq.data() + i * out_features_ + h * head_dim,
                  w.data() + i * head_dim, head_dim * sizeof(float));
    // head bias starts zero, as does the fused bias
    const Tensor kh = Tensor::randn({num_prototypes, head_dim}, rng, 0.5F);
    const Tensor vh = Tensor::randn({num_prototypes, head_dim}, rng, 0.5F);
    std::memcpy(kfused.data() + h * num_prototypes * head_dim, kh.data(),
                num_prototypes * head_dim * sizeof(float));
    std::memcpy(vfused.data() + h * num_prototypes * head_dim, vh.data(),
                num_prototypes * head_dim * sizeof(float));
  }
  w_q_ = std::make_unique<Linear>(std::move(wq), std::move(bq),
                                  name_ + ".wq");
  proto_k_ = autograd::make_leaf(std::move(kfused), true);
  proto_v_ = autograd::make_leaf(std::move(vfused), true);
  w_o_ = std::make_unique<Linear>(out_features_, out_features_, rng,
                                  name_ + ".wo");
}

autograd::Var MultiHeadPrototypeAttention::forward(const autograd::Var& x) {
  // The per-head pipeline (scores -> softmax -> attended values) on fused
  // operands: each step is ONE head-batched kernel invocation, and the
  // matmul_heads output is already the column-wise concat of head results.
  const float inv_sqrt_dk =
      1.0F / std::sqrt(static_cast<float>(head_dim_));
  auto q = w_q_->forward(x);
  auto scores = autograd::scale(
      autograd::matmul_nt_heads(q, proto_k_, num_heads_), inv_sqrt_dk);
  auto weights = autograd::softmax_blocks(scores, num_heads_);
  auto cat = autograd::matmul_heads(weights, proto_v_, num_heads_);
  return w_o_->forward(cat);
}

std::vector<Parameter> MultiHeadPrototypeAttention::parameters() {
  auto all = w_q_->parameters();
  all.push_back({name_ + ".proto_k", proto_k_});
  all.push_back({name_ + ".proto_v", proto_v_});
  for (auto& p : w_o_->parameters()) all.push_back(p);
  return all;
}

void MultiHeadPrototypeAttention::set_training(bool training) {
  Module::set_training(training);
  w_o_->set_training(training);
}

}  // namespace cal::nn
