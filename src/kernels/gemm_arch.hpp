// Internal: per-ISA instantiations of the blocked GEMM driver.
//
// gemm_kernel_body.inc is compiled once per target ISA (arch_base at the
// toolchain default, arch_v3 at -march=x86-64-v3 when the build adds it);
// gemm.cpp picks an instantiation at runtime via __builtin_cpu_supports.
// Not part of the public cal_kernels API — include kernels/gemm.hpp.
#pragma once

#include <cstddef>

namespace cal::kernels {

// Computes rows [i_begin, i_end) of C (+)= op(A)·op(B) where op transposes
// when ta/tb is set; all matrices row-major with logical dims m x k x n.
#define CAL_GEMM_ROWS_ARGS                                                  \
  const float *a, const float *b, float *c, std::size_t m, std::size_t k,   \
      std::size_t n, bool ta, bool tb, bool accumulate,                     \
      std::size_t i_begin, std::size_t i_end

namespace arch_base {
void gemm_rows(CAL_GEMM_ROWS_ARGS);
}
namespace arch_v3 {
void gemm_rows(CAL_GEMM_ROWS_ARGS);  // defined only when CMake adds the TU
}

}  // namespace cal::kernels
