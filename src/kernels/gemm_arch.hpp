// Internal: per-ISA instantiations of the blocked GEMM drivers.
//
// gemm_kernel_body.inc (fp32) and gemm_s8_kernel_body.inc (int8) are
// compiled once per target ISA (arch_base at the toolchain default,
// arch_v3 at -march=x86-64-v3 and arch_v512 at -march=x86-64-v4 when the
// build adds those TUs); gemm.cpp picks an instantiation at runtime via
// __builtin_cpu_supports. Not part of the public cal_kernels API —
// include kernels/gemm.hpp.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cal::kernels {

// Computes rows [i_begin, i_end) of C (+)= op(A)·op(B) where op transposes
// when ta/tb is set; row-major with logical dims m x k x n and explicit
// leading dimensions (row strides) so batched callers can point into a
// larger buffer. lda strides the STORED A (m x k, or k x m when ta); same
// for ldb/ldc.
#define CAL_GEMM_ROWS_ARGS                                                  \
  const float *a, const float *b, float *c, std::size_t m, std::size_t k,   \
      std::size_t n, std::size_t lda, std::size_t ldb, std::size_t ldc,     \
      bool ta, bool tb, bool accumulate, std::size_t i_begin,               \
      std::size_t i_end

// Packs the (p0, kc) x (j0, nc) block of op(B) into the panel layout the
// micro-kernel consumes. `out` must hold GemmF32Ops::packed_b_floats.
#define CAL_GEMM_PACK_B_ARGS                                                \
  const float *b, std::size_t k, std::size_t n, std::size_t ldb, bool tb,   \
      std::size_t p0, std::size_t kc, std::size_t j0, std::size_t nc,       \
      float *out

// Row-slice driver over ONE (j0, nc) x (p0, kc) block whose B panel was
// already packed (shared across row-split tasks). `acc_block` is the
// effective accumulate flag for this k block (accumulate || p0 > 0).
#define CAL_GEMM_PREPACKED_ARGS                                             \
  const float *a, const float *bpack, float *c, std::size_t m,              \
      std::size_t k, std::size_t n, std::size_t lda, std::size_t ldc,       \
      bool ta, bool acc_block, std::size_t p0, std::size_t kc,              \
      std::size_t j0, std::size_t nc, std::size_t i_begin, std::size_t i_end

// Rows [i_begin, i_end) of the int8 GEMM: C[i,j] (+)= scale_a[i] *
// scale_b[j] * sum_p A[i,p]·B[p,j] with an exact int32 inner product.
// B arrives pre-packed (pack_b_s8 below) so row-split tasks share one
// packed image; scale_b runs along the output channels (columns of C).
#define CAL_GEMM_S8_ROWS_ARGS                                               \
  const std::int8_t *a, const std::int8_t *bpack, float *c, std::size_t m,  \
      std::size_t k, std::size_t n, const float *scale_a,                   \
      const float *scale_b, bool accumulate, std::size_t i_begin,           \
      std::size_t i_end

// Packs all of op(B) (k x n, or n x k when tb) into the int8 panel layout.
#define CAL_GEMM_S8_PACK_ARGS                                               \
  const std::int8_t *b, std::size_t k, std::size_t n, bool tb,              \
      std::int8_t *out

/// Per-ISA fp32 entry points plus the blocking constants the shared-pack
/// driver in gemm.cpp needs to size pool-owned scratch and iterate blocks.
struct GemmF32Ops {
  void (*gemm_rows)(CAL_GEMM_ROWS_ARGS);  ///< self-packing row driver
  void (*pack_b_block)(CAL_GEMM_PACK_B_ARGS);
  void (*gemm_rows_prepacked)(CAL_GEMM_PREPACKED_ARGS);
  std::size_t block_kc;         ///< k-block size (kKC)
  std::size_t block_nc;         ///< n-block size (kNC)
  std::size_t packed_b_floats;  ///< capacity of one packed B block
};

/// Per-ISA int8 entry points. packed_b_bytes sizes the packed image of the
/// WHOLE B operand (the int8 path packs once per GEMM, no cache blocking:
/// every shape this repo serves fits the packed panel in L2).
/// quantize_rows is the activation quantizer (per-row symmetric, round
/// half away from zero) — it lives here because it runs ahead of every
/// int8 GEMM on the serving hot path and needs the widest available ISA;
/// all paths use the identical operation sequence, so output is
/// bit-identical across ISAs. isa names the selected tier ("avx512",
/// "avx2", "scalar") so benches can gate speedup floors per tier.
struct GemmS8Ops {
  std::size_t (*packed_b_bytes)(std::size_t k, std::size_t n);
  void (*pack_b)(CAL_GEMM_S8_PACK_ARGS);
  void (*rows)(CAL_GEMM_S8_ROWS_ARGS);
  void (*quantize_rows)(const float* x, std::size_t rows, std::size_t cols,
                        std::int8_t* out, float* scales);
  const char* isa;
};

namespace arch_base {
const GemmF32Ops& f32_ops();
const GemmS8Ops& s8_ops();
}  // namespace arch_base
namespace arch_v3 {  // defined only when CMake adds the TU
const GemmF32Ops& f32_ops();
const GemmS8Ops& s8_ops();
}  // namespace arch_v3
namespace arch_v512 {  // defined only when CMake adds the TU
const GemmS8Ops& s8_ops();
}  // namespace arch_v512

namespace detail {
/// The runtime-selected int8 ops table (internal; quant.cpp rides the
/// dispatched quantize_rows so activations quantize at the host's ISA).
const GemmS8Ops& s8_dispatch();
}  // namespace detail

}  // namespace cal::kernels
