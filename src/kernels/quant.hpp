// Int8 quantization for the inference path.
//
// Symmetric linear quantization: q = round(x / s) clamped to [-127, 127],
// with one scale per output channel for weights (so each column of a
// Linear keeps its own dynamic range — the per-channel scheme the
// compact-transformer localization line of work shows is loss-free enough
// for this workload) and one dynamic scale per row for activations
// (computed from each row's amax at predict time — fingerprint batches
// are tiny, so this costs one pass over the row). -128 is excluded so
// negation stays exact and the madd-pair kernels never overflow int16.
//
// These helpers feed gemm_s8_nn/nt: quantize weights once at publish
// time (quantize_per_output_channel), activations per batch
// (quantize_rows), and the kernel applies scale_a[i]*scale_b[j] to the
// exact int32 inner product.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/hot_path_annotations.hpp"

namespace cal::kernels {

/// An int8 matrix plus its per-channel scales. `per_row == false` means
/// scales[j] covers column j (weights for gemm_s8_nn, one scale per
/// output channel); `per_row == true` means scales[i] covers row i
/// (activations, or nt-layout weights whose stored rows are the output
/// channels).
struct QuantizedMatrix {
  std::vector<std::int8_t> data;
  std::vector<float> scales;
  std::size_t rows = 0;
  std::size_t cols = 0;
  bool per_row = false;

  /// Resident bytes of the quantized representation (data + scales).
  std::size_t bytes() const {
    return data.size() * sizeof(std::int8_t) + scales.size() * sizeof(float);
  }
};

/// Quantize a rows x cols fp32 matrix with one symmetric scale per COLUMN
/// (output channel of a y = xW layer). An all-zero column gets scale 1 so
/// dequantization stays well-defined.
QuantizedMatrix quantize_per_output_channel(std::span<const float> w,
                                            std::size_t rows,
                                            std::size_t cols);

/// Quantize a rows x cols fp32 matrix with one symmetric scale per ROW —
/// the activation side of gemm_s8, or an n x k weight destined for
/// gemm_s8_nt (whose stored rows are the output channels). Writes into
/// caller-provided storage so the serving hot path can reuse buffers;
/// `out` must hold rows*cols int8 and `scales` rows floats.
CAL_HOT_PATH CAL_NONBLOCKING
void quantize_rows(std::span<const float> x, std::size_t rows,
                   std::size_t cols, std::span<std::int8_t> out,
                   std::span<float> scales);

/// Convenience allocating form of quantize_rows (per_row = true).
QuantizedMatrix quantize_rows(std::span<const float> x, std::size_t rows,
                              std::size_t cols);

/// Reconstruct fp32 values from a quantized matrix: x̂ = q * scale. The
/// round-trip error per element is bounded by scale/2, i.e. amax/254 of
/// the channel it belongs to (tests assert this bound).
std::vector<float> dequantize(const QuantizedMatrix& q);

}  // namespace cal::kernels
