// x86-64-v3 (AVX2+FMA) instantiation of the blocked GEMM drivers. Added to
// the build only on x86-64 GCC/Clang (see CMakeLists.txt, which compiles
// this TU with -march=x86-64-v3); gemm.cpp dispatches to it at runtime
// when the CPU qualifies, so the portable default build still reaches FMA
// throughput on modern hardware.
#define CAL_GEMM_ARCH_NS arch_v3
#include "gemm_kernel_body.inc"
#include "gemm_s8_kernel_body.inc"
