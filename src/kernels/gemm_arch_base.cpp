// Baseline-ISA instantiation of the blocked GEMM driver (whatever -march
// the toolchain defaults to, or -march=native under CALLOC_ENABLE_NATIVE).
#define CAL_GEMM_ARCH_NS arch_base
#include "gemm_kernel_body.inc"
