// Baseline-ISA instantiation of the blocked GEMM drivers (whatever -march
// the toolchain defaults to, or -march=native under CALLOC_ENABLE_NATIVE).
#define CAL_GEMM_ARCH_NS arch_base
#include "gemm_kernel_body.inc"
#include "gemm_s8_kernel_body.inc"
