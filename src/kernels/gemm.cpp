#include "kernels/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/ensure.hpp"
#include "common/thread_annotations.hpp"
#include "kernels/gemm_arch.hpp"

namespace cal::kernels {
namespace {

constexpr std::size_t kMR = 6;  // row granule; must match the kernel body

// Minimum 2·m·k·n before the thread pool is worth its synchronisation.
constexpr double kParallelMinFlops = 4.0e6;

// --- ISA dispatch ---------------------------------------------------------

using GemmRowsFn = void (*)(CAL_GEMM_ROWS_ARGS);

GemmRowsFn select_rows_fn() {
#if defined(CALLOC_GEMM_HAVE_V3)
  // Haswell-era x86-64-v3: everything the v3 TU may emit is implied by
  // these three on real silicon.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
      __builtin_cpu_supports("bmi2"))
    return &arch_v3::gemm_rows;
#endif
  return &arch_base::gemm_rows;
}

GemmRowsFn rows_fn() {
  static const GemmRowsFn fn = select_rows_fn();
  return fn;
}

// --- persistent thread pool (row-block fork/join) -------------------------

class Pool {
 public:
  explicit Pool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      threads_.emplace_back(&Pool::loop, this);
  }

  ~Pool() {
    {
      MutexLock lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : threads_) t.join();
  }

  std::size_t workers() const { return threads_.size(); }

  /// Run fn(0..tasks-1) across the pool; the caller participates too.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn)
      CAL_EXCLUDES(mu_) {
    // Local copy of the task bound: the caller's claim loop below runs
    // outside the lock, and end_ is guarded state owned by the job the
    // workers see.
    const std::size_t end = tasks;
    {
      MutexLock lk(mu_);
      job_ = &fn;
      next_.store(0, std::memory_order_relaxed);
      end_ = tasks;
      pending_ = threads_.size();
      ++generation_;
    }
    cv_work_.notify_all();
    for (std::size_t t;
         (t = next_.fetch_add(1, std::memory_order_relaxed)) < end;)
      fn(t);
    MutexLock lk(mu_);
    while (pending_ != 0) cv_done_.wait(mu_);
    job_ = nullptr;
  }

 private:
  void loop() CAL_EXCLUDES(mu_) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* job = nullptr;
      std::size_t end = 0;
      {
        MutexLock lk(mu_);
        while (!stop_ && generation_ == seen) cv_work_.wait(mu_);
        if (stop_) return;
        seen = generation_;
        job = job_;
        end = end_;
      }
      for (std::size_t t;
           (t = next_.fetch_add(1, std::memory_order_relaxed)) < end;)
        (*job)(t);
      {
        MutexLock lk(mu_);
        if (--pending_ == 0) cv_done_.notify_one();
      }
    }
  }

  Mutex mu_;
  CondVar cv_work_;
  CondVar cv_done_;
  std::vector<std::thread> threads_;
  const std::function<void(std::size_t)>* job_ CAL_GUARDED_BY(mu_) = nullptr;
  std::atomic<std::size_t> next_{0};
  std::size_t end_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t pending_ CAL_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ CAL_GUARDED_BY(mu_) = 0;
  bool stop_ CAL_GUARDED_BY(mu_) = false;
};

Pool& pool() {
  static Pool p(std::min<std::size_t>(
      15, std::max<std::size_t>(1, std::thread::hardware_concurrency()) - 1));
  return p;
}

std::atomic<std::size_t> g_max_threads{1};

// --- pool telemetry -------------------------------------------------------

// One mutexed accumulator for the whole pool. Only the parallel path
// touches it (a handful of lock hops per >=4 MFlop GEMM); the serial path
// — including every small serving matmul — records nothing.
struct PoolMetricsState {
  mutable Mutex mu;
  std::size_t parallel_gemms CAL_GUARDED_BY(mu) = 0;
  std::size_t serial_fallbacks CAL_GUARDED_BY(mu) = 0;
  std::size_t tasks CAL_GUARDED_BY(mu) = 0;
  obs::Histogram task_ms CAL_GUARDED_BY(mu);
};

PoolMetricsState& pool_metrics_state() {
  static PoolMetricsState s;
  return s;
}

// --- dispatch -------------------------------------------------------------

void gemm_impl(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n, bool ta, bool tb,
               bool accumulate) {
  const GemmRowsFn rows = rows_fn();
  const std::size_t mt = max_threads();
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
  if (mt > 1 && flops >= kParallelMinFlops && m > kMR) {
    // The fork/join pool state (job_/next_/end_/pending_) supports one
    // running job; a second concurrent GEMM must not join it. try_lock
    // keeps whichever caller loses the race on the serial path instead of
    // blocking — results are bit-identical either way, and callers like
    // multi-worker serving already parallelise above the kernel.
    //
    // Deliberately a plain std::mutex, outside the thread-safety
    // analysis: the gate guards no data (Pool's own cal::Mutex does
    // that), only which caller gets to run a pool job, and a
    // conditionally-held RAII try-lock is a shape the analysis cannot
    // express without NO_THREAD_SAFETY_ANALYSIS escapes.
    static std::mutex pool_gate;
    std::unique_lock gate(pool_gate, std::try_to_lock);
    if (!gate.owns_lock()) {
      {
        PoolMetricsState& pm = pool_metrics_state();
        MutexLock lk(pm.mu);
        ++pm.serial_fallbacks;
      }
      rows(a, b, c, m, k, n, ta, tb, accumulate, 0, m);
      return;
    }
    const std::size_t want = std::min(mt, pool().workers() + 1);
    // Split rows of C into at most `want` kMR-aligned chunks: one task per
    // permitted thread, so set_max_threads(n) really caps concurrency (a
    // finer split would let idle pool workers steal extra tasks). Each
    // chunk is an independent sub-GEMM: the k reduction order per output
    // element is untouched, so any split is bit-identical to serial.
    const std::size_t blocks = (m + kMR - 1) / kMR;
    const std::size_t chunk_blocks = (blocks + want - 1) / want;
    const std::size_t chunk = chunk_blocks * kMR;
    const std::size_t tasks = (m + chunk - 1) / chunk;
    {
      PoolMetricsState& pm = pool_metrics_state();
      MutexLock lk(pm.mu);
      ++pm.parallel_gemms;
    }
    pool().run(tasks, [&](std::size_t t) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::size_t i_begin = t * chunk;
      const std::size_t i_end = std::min(m, i_begin + chunk);
      rows(a, b, c, m, k, n, ta, tb, accumulate, i_begin, i_end);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      PoolMetricsState& pm = pool_metrics_state();
      MutexLock lk(pm.mu);
      ++pm.tasks;
      pm.task_ms.record(ms);
    });
    return;
  }
  rows(a, b, c, m, k, n, ta, tb, accumulate, 0, m);
}

void check_args(std::span<const float> a, std::span<const float> b,
                std::span<float> c, std::size_t m, std::size_t k,
                std::size_t n) {
  CAL_ENSURE(m > 0 && k > 0 && n > 0,
             "gemm dims must be positive: " << m << "x" << k << "x" << n);
  CAL_ENSURE(a.size() == m * k, "gemm lhs span has " << a.size()
                                                     << " floats, expected "
                                                     << m * k);
  CAL_ENSURE(b.size() == k * n, "gemm rhs span has " << b.size()
                                                     << " floats, expected "
                                                     << k * n);
  CAL_ENSURE(c.size() == m * n, "gemm out span has " << c.size()
                                                     << " floats, expected "
                                                     << m * n);
}

}  // namespace

void gemm_nn(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
             bool accumulate) {
  check_args(a, b, c, m, k, n);
  gemm_impl(a.data(), b.data(), c.data(), m, k, n, false, false, accumulate);
}

void gemm_nt(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
             bool accumulate) {
  check_args(a, b, c, m, k, n);
  gemm_impl(a.data(), b.data(), c.data(), m, k, n, false, true, accumulate);
}

void gemm_tn(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
             bool accumulate) {
  check_args(a, b, c, m, k, n);
  gemm_impl(a.data(), b.data(), c.data(), m, k, n, true, false, accumulate);
}

void gemm_naive(std::span<const float> a, std::span<const float> b,
                std::span<float> c, std::size_t m, std::size_t k,
                std::size_t n, bool accumulate) {
  check_args(a, b, c, m, k, n);
  if (!accumulate) std::fill(c.begin(), c.end(), 0.0F);
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* orow = c.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      // No zero-skip: 0·NaN and 0·Inf must propagate per IEEE 754.
      const float av = arow[kk];
      const float* brow = b.data() + kk * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void set_max_threads(std::size_t n) {
  g_max_threads.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

std::size_t max_threads() {
  return g_max_threads.load(std::memory_order_relaxed);
}

PoolMetrics pool_metrics() {
  const PoolMetricsState& s = pool_metrics_state();
  MutexLock lk(s.mu);
  PoolMetrics out;
  out.parallel_gemms = s.parallel_gemms;
  out.serial_fallbacks = s.serial_fallbacks;
  out.tasks = s.tasks;
  out.task_ms = s.task_ms;
  return out;
}

}  // namespace cal::kernels
