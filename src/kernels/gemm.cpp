#include "kernels/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/ensure.hpp"
#include "common/hot_path_annotations.hpp"
#include "common/thread_annotations.hpp"
#include "kernels/gemm_arch.hpp"

namespace cal::kernels {
namespace {

constexpr std::size_t kMR = 6;    // fp32 row granule; must match kernel body
constexpr std::size_t kMRs8 = 4;  // int8 row granule; must match kernel body

// Minimum 2·m·k·n before the thread pool is worth its synchronisation.
constexpr double kParallelMinFlops = 4.0e6;

// --- ISA dispatch ---------------------------------------------------------

#if defined(CALLOC_GEMM_HAVE_V3) || defined(CALLOC_GEMM_HAVE_V512)
bool cpu_is_v3() {
  // Haswell-era x86-64-v3: everything the v3 TU may emit is implied by
  // these three on real silicon.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("bmi2");
}
#endif

const GemmF32Ops& f32() {
  static const GemmF32Ops& ops = *[]() -> const GemmF32Ops* {
#if defined(CALLOC_GEMM_HAVE_V3)
    if (cpu_is_v3()) return &arch_v3::f32_ops();
#endif
    return &arch_base::f32_ops();
  }();
  return ops;
}

const GemmS8Ops& s8() {
  static const GemmS8Ops& ops = *[]() -> const GemmS8Ops* {
#if defined(CALLOC_GEMM_HAVE_V512)
    // x86-64-v4 = the full 512-bit quintet; the v512 TU may emit any of it.
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512cd"))
      return &arch_v512::s8_ops();
#endif
#if defined(CALLOC_GEMM_HAVE_V3)
    if (cpu_is_v3()) return &arch_v3::s8_ops();
#endif
    return &arch_base::s8_ops();
  }();
  return ops;
}

// --- persistent thread pool (row-block fork/join) -------------------------

class Pool {
 public:
  explicit Pool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      threads_.emplace_back(&Pool::loop, this);
  }

  ~Pool() {
    {
      MutexLock lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : threads_) t.join();
  }

  std::size_t workers() const { return threads_.size(); }

  /// Run fn(0..tasks-1) across the pool; the caller participates too.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn)
      CAL_EXCLUDES(mu_) {
    // Local copy of the task bound: the caller's claim loop below runs
    // outside the lock, and end_ is guarded state owned by the job the
    // workers see.
    const std::size_t end = tasks;
    {
      MutexLock lk(mu_);
      job_ = &fn;
      next_.store(0, std::memory_order_relaxed);
      end_ = tasks;
      pending_ = threads_.size();
      ++generation_;
    }
    cv_work_.notify_all();
    for (std::size_t t;
         (t = next_.fetch_add(1, std::memory_order_relaxed)) < end;)
      fn(t);
    MutexLock lk(mu_);
    while (pending_ != 0) cv_done_.wait(mu_);
    job_ = nullptr;
  }

 private:
  void loop() CAL_EXCLUDES(mu_) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* job = nullptr;
      std::size_t end = 0;
      {
        MutexLock lk(mu_);
        while (!stop_ && generation_ == seen) cv_work_.wait(mu_);
        if (stop_) return;
        seen = generation_;
        job = job_;
        end = end_;
      }
      for (std::size_t t;
           (t = next_.fetch_add(1, std::memory_order_relaxed)) < end;)
        (*job)(t);
      {
        MutexLock lk(mu_);
        if (--pending_ == 0) cv_done_.notify_one();
      }
    }
  }

  Mutex mu_;
  CondVar cv_work_;
  CondVar cv_done_;
  std::vector<std::thread> threads_;
  const std::function<void(std::size_t)>* job_ CAL_GUARDED_BY(mu_) = nullptr;
  std::atomic<std::size_t> next_{0};
  std::size_t end_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t pending_ CAL_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ CAL_GUARDED_BY(mu_) = 0;
  bool stop_ CAL_GUARDED_BY(mu_) = false;
};

Pool& pool() {
  static Pool p(std::min<std::size_t>(
      15, std::max<std::size_t>(1, std::thread::hardware_concurrency()) - 1));
  return p;
}

// The fork/join pool state (job_/next_/end_/pending_) supports one running
// job; a second concurrent GEMM must not join it. try_lock keeps whichever
// caller loses the race on the serial path instead of blocking — results
// are bit-identical either way, and callers like multi-worker serving
// already parallelise above the kernel.
//
// Deliberately a plain std::mutex, outside the thread-safety analysis: the
// gate guards no data beyond the pool-owned packing scratch below (whose
// lifetime is exactly a pool job), only which caller gets to run one, and
// a conditionally-held RAII try-lock is a shape the analysis cannot
// express without NO_THREAD_SAFETY_ANALYSIS escapes.
std::mutex& pool_gate() {
  static std::mutex gate;
  return gate;
}

// Pool-owned packed-B scratch, reused across parallel GEMMs (guarded by
// pool_gate: only the gate holder packs into and reads from it). Packing
// once here and letting every row-split task read the shared image removes
// the per-thread re-pack tax the self-packing serial driver pays.
std::vector<float>& shared_bpack_f32() {
  static std::vector<float> buf;
  return buf;
}

// Annotation-audit note (PR 9 int8 panel, reviewed with the PR 6 code):
// like the fp32 buffer above, this is a function-local static guarded by
// the pool_gate() *protocol*, not by a CAL_GUARDED_BY annotation — Clang
// TSA attributes attach to member/global declarations and cannot name a
// block-scope static behind an accessor, and the guarding acquisition is
// the deliberately-unannotated try-lock gate. The row-split tasks that
// share the packed image only ever read it while their spawning caller
// holds the gate across pool().run() (the tasks are joined before the
// gate is released), so the TSan CI job exercises exactly this sharing.
std::vector<std::int8_t>& shared_bpack_s8() {
  static std::vector<std::int8_t> buf;
  return buf;
}

std::atomic<std::size_t> g_max_threads{1};

// --- pool telemetry -------------------------------------------------------

// One mutexed accumulator for the whole pool. Only the parallel path
// touches it (a handful of lock hops per >=4 MFlop GEMM); the serial path
// — including every small serving matmul — records nothing.
struct PoolMetricsState {
  mutable Mutex mu;
  std::size_t parallel_gemms CAL_GUARDED_BY(mu) = 0;
  std::size_t serial_fallbacks CAL_GUARDED_BY(mu) = 0;
  std::size_t tasks CAL_GUARDED_BY(mu) = 0;
  std::size_t shared_b_packs CAL_GUARDED_BY(mu) = 0;
  obs::Histogram task_ms CAL_GUARDED_BY(mu);
};

PoolMetricsState& pool_metrics_state() {
  static PoolMetricsState s;
  return s;
}

void note_serial_fallback() {
  PoolMetricsState& pm = pool_metrics_state();
  MutexLock lk(pm.mu);
  ++pm.serial_fallbacks;
}

void note_parallel_gemm(std::size_t shared_packs) {
  PoolMetricsState& pm = pool_metrics_state();
  MutexLock lk(pm.mu);
  ++pm.parallel_gemms;
  pm.shared_b_packs += shared_packs;
}

// Wrap a pool task with wall-time telemetry. This is the GEMM pool task
// body: everything a worker runs per task goes through here, so the
// hot-path contract is anchored on it (the metrics mutex is a bounded
// critical section, which CAL_HOT_PATH permits).
template <typename Fn>
CAL_HOT_PATH
void timed_task(const Fn& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  PoolMetricsState& pm = pool_metrics_state();
  MutexLock lk(pm.mu);
  ++pm.tasks;
  pm.task_ms.record(ms);
}

// Split `m` rows into at most `want` granule-aligned chunks: one task per
// permitted thread, so set_max_threads(n) really caps concurrency (a finer
// split would let idle pool workers steal extra tasks). Each chunk is an
// independent sub-GEMM: the k reduction order per output element is
// untouched, so any split is bit-identical to serial.
std::size_t row_chunk(std::size_t m, std::size_t granule, std::size_t want) {
  const std::size_t blocks = (m + granule - 1) / granule;
  const std::size_t chunk_blocks = (blocks + want - 1) / want;
  return chunk_blocks * granule;
}

// --- fp32 dispatch --------------------------------------------------------

// Audited: pool().run() parks the caller on cv_done_ until the row tasks
// finish — a *bounded* synchronous fan-out/join over pure compute, by
// design since PR 3 (serial fallback exists; bench_kernels gates the
// speedup). The try_to_lock pool gate itself never blocks.
CAL_LINT_SUPPRESS(block, "pool fan-out joins bounded compute tasks; synchronous by design")
void gemm_impl(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n, bool ta, bool tb,
               bool accumulate) {
  const GemmF32Ops& ops = f32();
  // Dense leading dimensions: the stored row widths of each operand.
  const std::size_t lda = ta ? m : k;
  const std::size_t ldb = tb ? k : n;
  const std::size_t ldc = n;
  const std::size_t mt = max_threads();
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
  if (mt > 1 && flops >= kParallelMinFlops && m > kMR) {
    std::unique_lock gate(pool_gate(), std::try_to_lock);
    if (!gate.owns_lock()) {
      note_serial_fallback();
      ops.gemm_rows(a, b, c, m, k, n, lda, ldb, ldc, ta, tb, accumulate, 0, m);
      return;
    }
    const std::size_t want = std::min(mt, pool().workers() + 1);
    const std::size_t chunk = row_chunk(m, kMR, want);
    const std::size_t tasks = (m + chunk - 1) / chunk;
    std::vector<float>& bpack = shared_bpack_f32();
    if (bpack.size() < ops.packed_b_floats) bpack.resize(ops.packed_b_floats);
    // Drive the cache-block loops here so B is packed ONCE per (j0, p0)
    // block and every row task reads the shared panel. Same block order
    // and same per-element reduction order as the serial driver, so the
    // result is bit-identical to gemm_rows over [0, m).
    std::size_t packs = 0;
    for (std::size_t j0 = 0; j0 < n; j0 += ops.block_nc) {
      const std::size_t nc = std::min(ops.block_nc, n - j0);
      for (std::size_t p0 = 0; p0 < k; p0 += ops.block_kc) {
        const std::size_t kc = std::min(ops.block_kc, k - p0);
        const bool acc_block = accumulate || p0 > 0;
        ops.pack_b_block(b, k, n, ldb, tb, p0, kc, j0, nc, bpack.data());
        ++packs;
        pool().run(tasks, [&](std::size_t t) {
          timed_task([&] {
            const std::size_t i_begin = t * chunk;
            const std::size_t i_end = std::min(m, i_begin + chunk);
            ops.gemm_rows_prepacked(a, bpack.data(), c, m, k, n, lda, ldc, ta,
                                    acc_block, p0, kc, j0, nc, i_begin, i_end);
          });
        });
      }
    }
    note_parallel_gemm(packs);
    return;
  }
  ops.gemm_rows(a, b, c, m, k, n, lda, ldb, ldc, ta, tb, accumulate, 0, m);
}

void check_args(std::span<const float> a, std::span<const float> b,
                std::span<float> c, std::size_t m, std::size_t k,
                std::size_t n) {
  CAL_ENSURE(m > 0 && k > 0 && n > 0,
             "gemm dims must be positive: " << m << "x" << k << "x" << n);
  CAL_ENSURE(a.size() == m * k, "gemm lhs span has " << a.size()
                                                     << " floats, expected "
                                                     << m * k);
  CAL_ENSURE(b.size() == k * n, "gemm rhs span has " << b.size()
                                                     << " floats, expected "
                                                     << k * n);
  CAL_ENSURE(c.size() == m * n, "gemm out span has " << c.size()
                                                     << " floats, expected "
                                                     << m * n);
}

// --- batched dispatch -----------------------------------------------------

struct ResolvedStrides {
  std::size_t stride_a, stride_b, stride_c, lda, ldb, ldc;
};

ResolvedStrides resolve_strides(const BatchStrides& s, std::size_t m,
                                std::size_t k, std::size_t n, bool ta,
                                bool tb) {
  ResolvedStrides r{};
  r.lda = s.lda != 0 ? s.lda : (ta ? m : k);
  r.ldb = s.ldb != 0 ? s.ldb : (tb ? k : n);
  r.ldc = s.ldc != 0 ? s.ldc : n;
  r.stride_a = s.stride_a != 0 ? s.stride_a : (ta ? k : m) * r.lda;
  r.stride_b = s.stride_b != 0 ? s.stride_b : (tb ? n : k) * r.ldb;
  r.stride_c = s.stride_c != 0 ? s.stride_c : m * r.ldc;
  return r;
}

// Greatest element offset touched in a batch of stored rows x cols views,
// plus one: the minimum span size.
std::size_t batched_extent(std::size_t batch, std::size_t stride,
                           std::size_t rows, std::size_t cols,
                           std::size_t ld) {
  return (batch - 1) * stride + (rows - 1) * ld + cols;
}

void check_batched(std::span<const float> a, std::span<const float> b,
                   std::span<float> c, std::size_t batch, std::size_t m,
                   std::size_t k, std::size_t n, const ResolvedStrides& r,
                   bool ta, bool tb) {
  CAL_ENSURE(batch > 0 && m > 0 && n > 0, "batched gemm dims must be positive: "
                                              << batch << " of " << m << "x"
                                              << k << "x" << n);
  CAL_ENSURE(r.ldc >= n, "batched gemm ldc " << r.ldc << " < n " << n);
  if (k > 0) {
    const std::size_t rows_a = ta ? k : m;
    const std::size_t cols_a = ta ? m : k;
    const std::size_t rows_b = tb ? n : k;
    const std::size_t cols_b = tb ? k : n;
    CAL_ENSURE(r.lda >= cols_a,
               "batched gemm lda " << r.lda << " < row width " << cols_a);
    CAL_ENSURE(r.ldb >= cols_b,
               "batched gemm ldb " << r.ldb << " < row width " << cols_b);
    const std::size_t need_a =
        batched_extent(batch, r.stride_a, rows_a, cols_a, r.lda);
    const std::size_t need_b =
        batched_extent(batch, r.stride_b, rows_b, cols_b, r.ldb);
    CAL_ENSURE(a.size() >= need_a, "batched gemm lhs span has "
                                       << a.size() << " floats, needs >= "
                                       << need_a);
    CAL_ENSURE(b.size() >= need_b, "batched gemm rhs span has "
                                       << b.size() << " floats, needs >= "
                                       << need_b);
  }
  const std::size_t need_c = batched_extent(batch, r.stride_c, m, n, r.ldc);
  CAL_ENSURE(c.size() >= need_c, "batched gemm out span has "
                                     << c.size() << " floats, needs >= "
                                     << need_c);
}

CAL_LINT_SUPPRESS(block, "pool fan-out joins bounded compute tasks; synchronous by design")
void gemm_batched_impl(const float* a, const float* b, float* c,
                       std::size_t batch, std::size_t m, std::size_t k,
                       std::size_t n, const ResolvedStrides& r, bool ta,
                       bool tb, bool accumulate) {
  if (k == 0) {
    // Empty reduction: the product is the zero matrix.
    if (!accumulate)
      for (std::size_t e = 0; e < batch; ++e)
        for (std::size_t i = 0; i < m; ++i)
          std::fill_n(c + e * r.stride_c + i * r.ldc, n, 0.0F);
    return;
  }
  const GemmF32Ops& ops = f32();
  const auto item = [&](std::size_t e, std::size_t i_begin,
                        std::size_t i_end) {
    ops.gemm_rows(a + e * r.stride_a, b + e * r.stride_b, c + e * r.stride_c,
                  m, k, n, r.lda, r.ldb, r.ldc, ta, tb, accumulate, i_begin,
                  i_end);
  };
  const std::size_t mt = max_threads();
  const double flops = 2.0 * static_cast<double>(batch) *
                       static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
  if (mt > 1 && flops >= kParallelMinFlops && batch * m > kMR) {
    std::unique_lock gate(pool_gate(), std::try_to_lock);
    if (gate.owns_lock()) {
      // Parallelise across batch x row-chunks: each task is one row slice
      // of one batch item, self-packing its own B view (items have
      // distinct B matrices, so there is no shared panel to exploit).
      const std::size_t want = std::min(mt, pool().workers() + 1);
      const std::size_t per_item = (want + batch - 1) / batch;
      const std::size_t chunk = row_chunk(m, kMR, per_item);
      const std::size_t chunks = (m + chunk - 1) / chunk;
      note_parallel_gemm(0);
      pool().run(batch * chunks, [&](std::size_t t) {
        timed_task([&] {
          const std::size_t e = t / chunks;
          const std::size_t i_begin = (t % chunks) * chunk;
          item(e, i_begin, std::min(m, i_begin + chunk));
        });
      });
      return;
    }
    note_serial_fallback();
  }
  for (std::size_t e = 0; e < batch; ++e) item(e, 0, m);
}

// --- int8 dispatch --------------------------------------------------------

void check_args_s8(std::span<const std::int8_t> a,
                   std::span<const std::int8_t> b, std::span<float> c,
                   std::size_t m, std::size_t k, std::size_t n,
                   std::span<const float> scale_a,
                   std::span<const float> scale_b) {
  CAL_ENSURE(m > 0 && n > 0,
             "gemm_s8 dims must be positive: " << m << "x" << k << "x" << n);
  CAL_ENSURE(a.size() == m * k, "gemm_s8 lhs span has " << a.size()
                                                        << " bytes, expected "
                                                        << m * k);
  CAL_ENSURE(b.size() == k * n, "gemm_s8 rhs span has " << b.size()
                                                        << " bytes, expected "
                                                        << k * n);
  CAL_ENSURE(c.size() == m * n, "gemm_s8 out span has " << c.size()
                                                        << " floats, expected "
                                                        << m * n);
  CAL_ENSURE(scale_a.size() == m, "gemm_s8 scale_a has " << scale_a.size()
                                                         << ", expected m = "
                                                         << m);
  CAL_ENSURE(scale_b.size() == n, "gemm_s8 scale_b has " << scale_b.size()
                                                         << ", expected n = "
                                                         << n);
}

CAL_LINT_SUPPRESS(block, "pool fan-out joins bounded compute tasks; synchronous by design")
void gemm_s8_impl(const std::int8_t* a, const std::int8_t* b, float* c,
                  std::size_t m, std::size_t k, std::size_t n,
                  const float* scale_a, const float* scale_b, bool tb,
                  bool accumulate) {
  if (k == 0) {
    if (!accumulate) std::fill_n(c, m * n, 0.0F);
    return;
  }
  const GemmS8Ops& ops = s8();
  const std::size_t packed = ops.packed_b_bytes(k, n);
  const std::size_t mt = max_threads();
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
  if (mt > 1 && flops >= kParallelMinFlops && m > kMRs8) {
    std::unique_lock gate(pool_gate(), std::try_to_lock);
    if (gate.owns_lock()) {
      std::vector<std::int8_t>& bpack = shared_bpack_s8();
      if (bpack.size() < packed) bpack.resize(packed);
      ops.pack_b(b, k, n, tb, bpack.data());
      const std::size_t want = std::min(mt, pool().workers() + 1);
      const std::size_t chunk = row_chunk(m, kMRs8, want);
      const std::size_t tasks = (m + chunk - 1) / chunk;
      note_parallel_gemm(1);
      pool().run(tasks, [&](std::size_t t) {
        timed_task([&] {
          const std::size_t i_begin = t * chunk;
          const std::size_t i_end = std::min(m, i_begin + chunk);
          ops.rows(a, bpack.data(), c, m, k, n, scale_a, scale_b, accumulate,
                   i_begin, i_end);
        });
      });
      return;
    }
    note_serial_fallback();
  }
  thread_local std::vector<std::int8_t> t_bpack;
  if (t_bpack.size() < packed) t_bpack.resize(packed);
  ops.pack_b(b, k, n, tb, t_bpack.data());
  ops.rows(a, t_bpack.data(), c, m, k, n, scale_a, scale_b, accumulate, 0, m);
}

}  // namespace

void gemm_nn(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
             bool accumulate) {
  check_args(a, b, c, m, k, n);
  gemm_impl(a.data(), b.data(), c.data(), m, k, n, false, false, accumulate);
}

void gemm_nt(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
             bool accumulate) {
  check_args(a, b, c, m, k, n);
  gemm_impl(a.data(), b.data(), c.data(), m, k, n, false, true, accumulate);
}

void gemm_tn(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
             bool accumulate) {
  check_args(a, b, c, m, k, n);
  gemm_impl(a.data(), b.data(), c.data(), m, k, n, true, false, accumulate);
}

void gemm_naive(std::span<const float> a, std::span<const float> b,
                std::span<float> c, std::size_t m, std::size_t k,
                std::size_t n, bool accumulate) {
  check_args(a, b, c, m, k, n);
  if (!accumulate) std::fill(c.begin(), c.end(), 0.0F);
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* orow = c.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      // No zero-skip: 0·NaN and 0·Inf must propagate per IEEE 754.
      const float av = arow[kk];
      const float* brow = b.data() + kk * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void gemm_batched_nn(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, std::size_t batch, std::size_t m,
                     std::size_t k, std::size_t n, const BatchStrides& strides,
                     bool accumulate) {
  const ResolvedStrides r = resolve_strides(strides, m, k, n, false, false);
  check_batched(a, b, c, batch, m, k, n, r, false, false);
  gemm_batched_impl(a.data(), b.data(), c.data(), batch, m, k, n, r, false,
                    false, accumulate);
}

void gemm_batched_nt(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, std::size_t batch, std::size_t m,
                     std::size_t k, std::size_t n, const BatchStrides& strides,
                     bool accumulate) {
  const ResolvedStrides r = resolve_strides(strides, m, k, n, false, true);
  check_batched(a, b, c, batch, m, k, n, r, false, true);
  gemm_batched_impl(a.data(), b.data(), c.data(), batch, m, k, n, r, false,
                    true, accumulate);
}

void gemm_batched_tn(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, std::size_t batch, std::size_t m,
                     std::size_t k, std::size_t n, const BatchStrides& strides,
                     bool accumulate) {
  const ResolvedStrides r = resolve_strides(strides, m, k, n, true, false);
  check_batched(a, b, c, batch, m, k, n, r, true, false);
  gemm_batched_impl(a.data(), b.data(), c.data(), batch, m, k, n, r, true,
                    false, accumulate);
}

void gemm_s8_nn(std::span<const std::int8_t> a, std::span<const std::int8_t> b,
                std::span<float> c, std::size_t m, std::size_t k,
                std::size_t n, std::span<const float> scale_a,
                std::span<const float> scale_b, bool accumulate) {
  check_args_s8(a, b, c, m, k, n, scale_a, scale_b);
  gemm_s8_impl(a.data(), b.data(), c.data(), m, k, n, scale_a.data(),
               scale_b.data(), false, accumulate);
}

void gemm_s8_nt(std::span<const std::int8_t> a, std::span<const std::int8_t> b,
                std::span<float> c, std::size_t m, std::size_t k,
                std::size_t n, std::span<const float> scale_a,
                std::span<const float> scale_b, bool accumulate) {
  check_args_s8(a, b, c, m, k, n, scale_a, scale_b);
  gemm_s8_impl(a.data(), b.data(), c.data(), m, k, n, scale_a.data(),
               scale_b.data(), true, accumulate);
}

const char* gemm_s8_isa() { return s8().isa; }

namespace detail {
const GemmS8Ops& s8_dispatch() { return s8(); }
}  // namespace detail

void set_max_threads(std::size_t n) {
  g_max_threads.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

std::size_t max_threads() {
  return g_max_threads.load(std::memory_order_relaxed);
}

PoolMetrics pool_metrics() {
  const PoolMetricsState& s = pool_metrics_state();
  MutexLock lk(s.mu);
  PoolMetrics out;
  out.parallel_gemms = s.parallel_gemms;
  out.serial_fallbacks = s.serial_fallbacks;
  out.tasks = s.tasks;
  out.shared_b_packs = s.shared_b_packs;
  out.task_ms = s.task_ms;
  return out;
}

}  // namespace cal::kernels
