#include "kernels/quant.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"
#include "kernels/gemm_arch.hpp"

namespace cal::kernels {
namespace {

constexpr float kQmax = 127.0F;

// Round half away from zero via copysign+truncate instead of
// std::nearbyint: the libm call defeats auto-vectorization and dominates
// the quantize pass, which sits on the serving hot path ahead of every
// int8 GEMM. Clamping first keeps the +-0.5 bias in range.
inline std::int8_t quantize_one(float x, float inv_scale) {
  float q = x * inv_scale;
  q = std::min(std::max(q, -kQmax), kQmax);
  q += std::copysign(0.5F, q);
  return static_cast<std::int8_t>(static_cast<std::int32_t>(q));
}

}  // namespace

QuantizedMatrix quantize_per_output_channel(std::span<const float> w,
                                            std::size_t rows,
                                            std::size_t cols) {
  CAL_ENSURE(w.size() == rows * cols, "quantize: span has "
                                          << w.size() << " floats, expected "
                                          << rows * cols);
  QuantizedMatrix q;
  q.rows = rows;
  q.cols = cols;
  q.per_row = false;
  q.data.resize(rows * cols);
  q.scales.assign(cols, 1.0F);
  std::vector<float> inv(cols, 1.0F);
  for (std::size_t j = 0; j < cols; ++j) {
    float amax = 0.0F;
    for (std::size_t i = 0; i < rows; ++i)
      amax = std::max(amax, std::fabs(w[i * cols + j]));
    if (amax > 0.0F) {
      q.scales[j] = amax / kQmax;
      inv[j] = kQmax / amax;
    }
  }
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      q.data[i * cols + j] = quantize_one(w[i * cols + j], inv[j]);
  return q;
}

void quantize_rows(std::span<const float> x, std::size_t rows,
                   std::size_t cols, std::span<std::int8_t> out,
                   std::span<float> scales) {
  CAL_ENSURE(x.size() == rows * cols, "quantize_rows: span has "
                                          << x.size() << " floats, expected "
                                          << rows * cols);
  CAL_ENSURE(out.size() == rows * cols,
             "quantize_rows: out has " << out.size() << " bytes, expected "
                                       << rows * cols);
  CAL_ENSURE(scales.size() == rows, "quantize_rows: scales has "
                                        << scales.size() << ", expected "
                                        << rows);
  // Ride the runtime-dispatched per-ISA quantizer: this pass fronts every
  // int8 GEMM at serve time and the portable TU would run it scalar.
  detail::s8_dispatch().quantize_rows(x.data(), rows, cols, out.data(),
                                      scales.data());
}

QuantizedMatrix quantize_rows(std::span<const float> x, std::size_t rows,
                              std::size_t cols) {
  QuantizedMatrix q;
  q.rows = rows;
  q.cols = cols;
  q.per_row = true;
  q.data.resize(rows * cols);
  q.scales.resize(rows);
  quantize_rows(x, rows, cols, std::span<std::int8_t>(q.data),
                std::span<float>(q.scales));
  return q;
}

std::vector<float> dequantize(const QuantizedMatrix& q) {
  std::vector<float> out(q.rows * q.cols);
  for (std::size_t i = 0; i < q.rows; ++i)
    for (std::size_t j = 0; j < q.cols; ++j) {
      const float s = q.per_row ? q.scales[i] : q.scales[j];
      out[i * q.cols + j] = static_cast<float>(q.data[i * q.cols + j]) * s;
    }
  return out;
}

}  // namespace cal::kernels
