// cal_kernels: cache-blocked, register-tiled GEMM — fp32, batched/strided
// fp32, and int8-quantized variants.
//
// Three transpose-fusion variants cover every matmul in the training and
// serving hot paths without materialising a transposed copy first:
//
//   gemm_nn : C (+)= A · B     A is MxK,            B is KxN
//   gemm_nt : C (+)= A · Bᵀ    A is MxK,            B is NxK (row-major)
//   gemm_tn : C (+)= Aᵀ · B    A is KxM (row-major), B is KxN
//
// All matrices are dense row-major; the caller provides the output span,
// so a kernel call never allocates (packing scratch lives in reusable
// thread-local buffers). With `accumulate == true` the product is added
// into C (the autograd backward accumulates straight into gradient
// buffers); otherwise C is overwritten.
//
// Numerical contract, relied on by tests and by the adversarial-training
// stack: each fp32 output element is an ascending-k sum of products with
// no zero-skip branches, so 0·NaN and 0·Inf propagate per IEEE 754
// exactly as in the naive triple loop. k is processed in 256-wide cache
// blocks whose partial sums combine in ascending order — the only
// reassociation relative to the naive loop, bounded by k/256 extra
// roundings. Results are bit-identical for any thread count (threads
// split rows of C, never the k reduction) and deterministic on a given
// machine. The int8 variants are stronger still: the inner product is
// exact in int32, so they are bit-identical across ISAs too.
//
// The inner micro-kernel is a kMR x kNR register tile whose accumulators
// are 8-wide vector lanes held across the whole k sweep (see
// gemm_kernel_body.inc). The portable build compiles it twice — baseline
// ISA plus x86-64-v3 (AVX2+FMA), plus an int8-only x86-64-v4 (AVX-512)
// instantiation under CALLOC_ENABLE_AVX512 — and picks per CPU at
// runtime; -DCALLOC_ENABLE_NATIVE=ON instead compiles a single host-tuned
// (-march=native) instantiation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "obs/histogram.hpp"

namespace cal::kernels {

/// C (+)= A·B. A: m x k, B: k x n, C: m x n (all row-major, exact sizes).
void gemm_nn(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
             bool accumulate = false);

/// C (+)= A·Bᵀ. A: m x k, B: n x k, C: m x n. Fuses the transpose of B:
/// reads B row-major directly, no temporary.
void gemm_nt(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
             bool accumulate = false);

/// C (+)= Aᵀ·B. A: k x m, B: k x n, C: m x n. Fuses the transpose of A.
void gemm_tn(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
             bool accumulate = false);

/// Reference i-k-j triple loop (the pre-kernel `Tensor::matmul` body).
/// Used by tests and bench_kernels to validate and time the blocked path.
void gemm_naive(std::span<const float> a, std::span<const float> b,
                std::span<float> c, std::size_t m, std::size_t k,
                std::size_t n, bool accumulate = false);

// --- batched / strided ----------------------------------------------------

/// Strides for the batched entry points. Every field defaults to 0 =
/// "dense": leading dimensions fall back to the stored row width of the
/// operand (k for a non-transposed m x k A, and so on) and batch strides
/// to rows x ld of the resolved layout. Non-zero values let one kernel
/// invocation sweep views into a larger buffer — the multi-head attention
/// case: head h of a fused B x (H·D) activation is the submatrix at
/// column offset h·D, i.e. stride_a = D with lda = H·D.
struct BatchStrides {
  std::size_t stride_a = 0;  ///< elements between consecutive A matrices
  std::size_t stride_b = 0;  ///< elements between consecutive B matrices
  std::size_t stride_c = 0;  ///< elements between consecutive C matrices
  std::size_t lda = 0;       ///< row stride of stored A (>= its row width)
  std::size_t ldb = 0;       ///< row stride of stored B
  std::size_t ldc = 0;       ///< row stride of stored C (>= n)
};

/// `batch` independent GEMMs C_e (+)= A_e·B_e in one invocation, each the
/// same m x k x n shape, operands located by `strides`. Equivalent to (and
/// bit-identical with) a loop of gemm_nn calls over the same views, but
/// the pool parallelises across batch x row-chunks, so many small GEMMs
/// (one per attention head) clear the parallelism threshold together
/// instead of each staying serial. Unlike the non-batched entry points,
/// k == 0 is legal: C is zero-filled (or untouched when accumulating).
void gemm_batched_nn(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, std::size_t batch, std::size_t m,
                     std::size_t k, std::size_t n,
                     const BatchStrides& strides = {},
                     bool accumulate = false);

/// Batched C_e (+)= A_e·B_eᵀ; B_e stored n x k. See gemm_batched_nn.
void gemm_batched_nt(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, std::size_t batch, std::size_t m,
                     std::size_t k, std::size_t n,
                     const BatchStrides& strides = {},
                     bool accumulate = false);

/// Batched C_e (+)= A_eᵀ·B_e; A_e stored k x m. See gemm_batched_nn.
void gemm_batched_tn(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, std::size_t batch, std::size_t m,
                     std::size_t k, std::size_t n,
                     const BatchStrides& strides = {},
                     bool accumulate = false);

// --- int8 quantized -------------------------------------------------------

/// C (+)= diag(scale_a) · (A·B) · diag(scale_b) with int8 A (m x k) and
/// B (k x n), fp32 C. The inner product is EXACT in int32 — one float
/// rounding per output element — so results are bit-identical across
/// thread counts and ISAs. scale_a holds one scale per row of A (per
/// activation row, from quantize_rows); scale_b one per column of B (per
/// output channel, from quantize_per_output_channel). k == 0 is legal and
/// zero-fills C (or leaves it untouched when accumulating).
void gemm_s8_nn(std::span<const std::int8_t> a, std::span<const std::int8_t> b,
                std::span<float> c, std::size_t m, std::size_t k,
                std::size_t n, std::span<const float> scale_a,
                std::span<const float> scale_b, bool accumulate = false);

/// As gemm_s8_nn with B stored n x k (transpose fused): C (+)=
/// diag(scale_a)·(A·Bᵀ)·diag(scale_b). scale_b still runs along the n
/// output channels — the rows of the stored B.
void gemm_s8_nt(std::span<const std::int8_t> a, std::span<const std::int8_t> b,
                std::span<float> c, std::size_t m, std::size_t k,
                std::size_t n, std::span<const float> scale_a,
                std::span<const float> scale_b, bool accumulate = false);

/// Name of the int8 kernel tier the runtime dispatcher selected on this
/// host: "avx512", "avx2" or "scalar". Results are bit-identical across
/// tiers; throughput is not — benches use this to pick the speedup floor
/// they enforce (int8 only clears ~1.7x over fp32 with 512-bit madd).
const char* gemm_s8_isa();

// --- threading ------------------------------------------------------------

/// Upper bound on kernel threads (1 = serial, the default). Large GEMMs
/// split their row blocks over a lazily started persistent pool; small
/// ones stay on the calling thread regardless. The pool serves one GEMM at
/// a time — concurrent callers (e.g. serving workers) transparently run
/// serial instead of queueing. Results are bit-identical for every
/// setting.
void set_max_threads(std::size_t n);
std::size_t max_threads();

/// Lifetime telemetry of the kernel thread pool (process-wide, like the
/// pool itself). Task timing covers only pool-dispatched GEMMs — the
/// serial path stays uninstrumented, so small matmuls pay nothing.
struct PoolMetrics {
  std::size_t parallel_gemms = 0;   ///< GEMMs run through the pool
  std::size_t serial_fallbacks = 0; ///< pool busy: ran serial instead
  std::size_t tasks = 0;            ///< row-block tasks executed
  std::size_t shared_b_packs = 0;   ///< B panels packed once, shared by tasks
  obs::Histogram task_ms;           ///< per-task wall time, milliseconds
};

/// Snapshot of the pool counters above (ServeEngine::metrics() exports
/// them as cal_gemm_* families).
PoolMetrics pool_metrics();

}  // namespace cal::kernels
