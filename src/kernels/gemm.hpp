// cal_kernels: cache-blocked, register-tiled single-precision GEMM.
//
// Three transpose-fusion variants cover every matmul in the training and
// serving hot paths without materialising a transposed copy first:
//
//   gemm_nn : C (+)= A · B     A is MxK,            B is KxN
//   gemm_nt : C (+)= A · Bᵀ    A is MxK,            B is NxK (row-major)
//   gemm_tn : C (+)= Aᵀ · B    A is KxM (row-major), B is KxN
//
// All matrices are dense row-major; the caller provides the output span,
// so a kernel call never allocates (packing scratch lives in reusable
// thread-local buffers). With `accumulate == true` the product is added
// into C (the autograd backward accumulates straight into gradient
// buffers); otherwise C is overwritten.
//
// Numerical contract, relied on by tests and by the adversarial-training
// stack: each output element is an ascending-k sum of products with no
// zero-skip branches, so 0·NaN and 0·Inf propagate per IEEE 754 exactly
// as in the naive triple loop. k is processed in 256-wide cache blocks
// whose partial sums combine in ascending order — the only reassociation
// relative to the naive loop, bounded by k/256 extra roundings. Results
// are bit-identical for any thread count (threads split rows of C, never
// the k reduction) and deterministic on a given machine.
//
// The inner micro-kernel is a kMR x kNR register tile whose accumulators
// are 8-wide vector lanes held across the whole k sweep (see
// gemm_kernel_body.inc). The portable build compiles it twice — baseline
// ISA plus x86-64-v3 (AVX2+FMA) — and picks per CPU at runtime;
// -DCALLOC_ENABLE_NATIVE=ON instead compiles a single host-tuned
// (-march=native) instantiation.
#pragma once

#include <cstddef>
#include <span>

#include "obs/histogram.hpp"

namespace cal::kernels {

/// C (+)= A·B. A: m x k, B: k x n, C: m x n (all row-major, exact sizes).
void gemm_nn(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
             bool accumulate = false);

/// C (+)= A·Bᵀ. A: m x k, B: n x k, C: m x n. Fuses the transpose of B:
/// reads B row-major directly, no temporary.
void gemm_nt(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
             bool accumulate = false);

/// C (+)= Aᵀ·B. A: k x m, B: k x n, C: m x n. Fuses the transpose of A.
void gemm_tn(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
             bool accumulate = false);

/// Reference i-k-j triple loop (the pre-kernel `Tensor::matmul` body).
/// Used by tests and bench_kernels to validate and time the blocked path.
void gemm_naive(std::span<const float> a, std::span<const float> b,
                std::span<float> c, std::size_t m, std::size_t k,
                std::size_t n, bool accumulate = false);

/// Upper bound on kernel threads (1 = serial, the default). Large GEMMs
/// split their row blocks over a lazily started persistent pool; small
/// ones stay on the calling thread regardless. The pool serves one GEMM at
/// a time — concurrent callers (e.g. serving workers) transparently run
/// serial instead of queueing. Results are bit-identical for every
/// setting.
void set_max_threads(std::size_t n);
std::size_t max_threads();

/// Lifetime telemetry of the kernel thread pool (process-wide, like the
/// pool itself). Task timing covers only pool-dispatched GEMMs — the
/// serial path stays uninstrumented, so small matmuls pay nothing.
struct PoolMetrics {
  std::size_t parallel_gemms = 0;   ///< GEMMs run through the pool
  std::size_t serial_fallbacks = 0; ///< pool busy: ran serial instead
  std::size_t tasks = 0;            ///< row-block tasks executed
  obs::Histogram task_ms;           ///< per-task wall time, milliseconds
};

/// Snapshot of the pool counters above (ServeEngine::metrics() exports
/// them as cal_gemm_* families).
PoolMetrics pool_metrics();

}  // namespace cal::kernels
