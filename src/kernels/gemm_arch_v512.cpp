// x86-64-v4 (AVX-512BW) instantiation of the INT8 GEMM driver only.
// Compiled with -march=x86-64-v4 when CALLOC_ENABLE_AVX512 is on (see
// CMakeLists.txt); gemm.cpp dispatches to it at runtime only when the CPU
// reports the full avx512 f/bw/dq/vl/cd set. The fp32 body is deliberately
// NOT instantiated here: fp32 serving promises bit-identical results
// across thread splits and deploys, and a wider fp32 micro-kernel would
// change the reduction shape. The int8 path has no such hazard — its
// int32 inner product is exact on every ISA.
#define CAL_GEMM_ARCH_NS arch_v512
#include "gemm_s8_kernel_body.inc"
