// Deterministic fault injection: named CAL_FAULT_POINT sites that a test
// or chaos bench arms at runtime to throw typed InjectedFault exceptions
// on seeded, reproducible schedules.
//
// Production code marks the places where the outside world can fail —
// replica inference, queue pushes, snapshot deploys, screen calibration —
// with CAL_FAULT_POINT("site.name"). By default every site is a no-op
// costing one relaxed atomic load; a harness then arms individual sites:
//
//   FaultRegistry::instance().arm("serve.replica_predict", 0.25, seed);
//   FaultRegistry::instance().arm_one_shot("serve.deploy", /*nth=*/2);
//
// Probabilistic sites draw from a per-site seeded Rng, so a chaos run's
// fault schedule is a pure function of (seed, passage order) — rerunning
// the same single-threaded driver reproduces the same faults. One-shot
// sites fire on exactly the nth passage, for point failures in tests.
//
// Kill switch: mirrors CALLOC_TRACING. Compiled with
// CALLOC_FAULT_INJECTION_DISABLED (CMake -DCALLOC_FAULT_INJECTION=OFF,
// the default) CAL_FAULT_POINT expands to nothing — its argument is never
// evaluated, proven by a dual negative-compile CI check — so release
// builds carry zero fault-injection surface. The FaultRegistry class
// itself always compiles (tests drive it directly in either mode).
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "common/hot_path_annotations.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"

namespace cal {

/// Thrown by an armed fault site. Deliberately a distinct type: tests
/// and containment layers can tell an injected fault from a real one.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}

  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

#if defined(CALLOC_FAULT_INJECTION_DISABLED)
inline constexpr bool kFaultInjectionCompiledIn = false;
#else
inline constexpr bool kFaultInjectionCompiledIn = true;
#endif

/// Process-wide registry of armed fault sites. One instance: fault sites
/// are compiled into library code that knows nothing about which harness
/// (test, chaos bench) is driving it.
class FaultRegistry {
 public:
  static FaultRegistry& instance();

  /// Arm `site` to throw with `probability` per passage, drawn from an
  /// Rng seeded with `seed` — the fire/pass schedule is deterministic in
  /// (seed, passage order). Re-arming resets the site's Rng and counters.
  void arm(const std::string& site, double probability,
           std::uint64_t seed = 2026) CAL_EXCLUDES(mu_);

  /// Arm `site` to throw on exactly the nth passage (1-based), once.
  /// Later passages pass; hits keep counting.
  void arm_one_shot(const std::string& site, std::uint64_t nth = 1)
      CAL_EXCLUDES(mu_);

  void disarm(const std::string& site) CAL_EXCLUDES(mu_);
  void disarm_all() CAL_EXCLUDES(mu_);

  /// The CAL_FAULT_POINT entry: throws InjectedFault when `site` is armed
  /// and its trigger fires. With no armed sites anywhere this is one
  /// relaxed atomic load — the macro is safe on hot paths (bounded mutex
  /// on the armed path only; calloc-lint resolves CAL_FAULT_POINT to an
  /// edge onto this function).
  CAL_HOT_PATH
  void passage(const char* site) CAL_EXCLUDES(mu_);

  struct SiteStats {
    std::uint64_t hits = 0;   ///< passages through the site while armed
    std::uint64_t fires = 0;  ///< passages that threw
  };
  /// Counters for an armed site; zeros for unknown/disarmed sites.
  SiteStats site_stats(const std::string& site) const CAL_EXCLUDES(mu_);

 private:
  struct Site {
    double probability = 0.0;
    std::uint64_t one_shot_nth = 0;  ///< 0 = probabilistic site
    Rng rng{0};
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  FaultRegistry() = default;

  /// Armed-site count mirrored outside the mutex: the disarmed-everywhere
  /// fast path in passage() must not take a lock per site visit.
  std::atomic<std::size_t> armed_{0};
  mutable Mutex mu_;
  std::unordered_map<std::string, Site> sites_ CAL_GUARDED_BY(mu_);
};

}  // namespace cal

// The sanctioned fault-site marker: compiles to NOTHING (the argument is
// not evaluated) under CALLOC_FAULT_INJECTION_DISABLED, and to one
// registry passage — a relaxed load when nothing is armed — otherwise.
#if defined(CALLOC_FAULT_INJECTION_DISABLED)
#define CAL_FAULT_POINT(site) \
  do {                        \
  } while (false)
#else
#define CAL_FAULT_POINT(site)                          \
  do {                                                 \
    ::cal::FaultRegistry::instance().passage((site));  \
  } while (false)
#endif
