#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"

namespace cal {

double mean(std::span<const double> xs) {
  CAL_ENSURE(!xs.empty(), "mean of empty range");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  CAL_ENSURE(!xs.empty(), "stddev of empty range");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double min_value(std::span<const double> xs) {
  CAL_ENSURE(!xs.empty(), "min of empty range");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  CAL_ENSURE(!xs.empty(), "max of empty range");
  return *std::max_element(xs.begin(), xs.end());
}

namespace {

double percentile_sorted(const std::vector<double>& sorted, double p) {
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double rank = (p / 100.0) * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  CAL_ENSURE(!xs.empty(), "percentile of empty range");
  CAL_ENSURE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]: " << p);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

Summary summarize(std::span<const double> xs) {
  CAL_ENSURE(!xs.empty(), "summarize of empty range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  Summary s;
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = percentile_sorted(sorted, 50.0);
  s.p95 = percentile_sorted(sorted, 95.0);
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  return s;
}

}  // namespace cal
