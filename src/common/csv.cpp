#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/ensure.hpp"

namespace cal {

CsvRow parse_csv_line(const std::string& line) {
  CsvRow out;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      out.push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // ignore CR from CRLF files
    } else {
      field.push_back(c);
    }
  }
  out.push_back(std::move(field));
  return out;
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string format_csv_row(const CsvRow& row) {
  std::ostringstream os;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) os << ',';
    os << csv_escape(row[i]);
  }
  return os.str();
}

CsvDocument read_csv(const std::string& path, bool has_header) {
  std::ifstream in(path);
  CAL_ENSURE(in.good(), "cannot open CSV file for reading: " << path);
  CsvDocument doc;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto row = parse_csv_line(line);
    if (first && has_header) {
      doc.header = std::move(row);
    } else {
      doc.rows.push_back(std::move(row));
    }
    first = false;
  }
  return doc;
}

void write_csv(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path);
  CAL_ENSURE(out.good(), "cannot open CSV file for writing: " << path);
  if (!doc.header.empty()) out << format_csv_row(doc.header) << '\n';
  for (const auto& row : doc.rows) out << format_csv_row(row) << '\n';
}

}  // namespace cal
