#include "common/rng.hpp"

#include <cmath>

#include "common/ensure.hpp"

namespace cal {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CAL_ENSURE(lo <= hi, "uniform range inverted: [" << lo << ", " << hi << ")");
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
  CAL_ENSURE(n > 0, "uniform_index requires a non-empty range");
  // Modulo bias is negligible for n << 2^64 (all our uses).
  return static_cast<std::size_t>(next_u64() % n);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
  CAL_ENSURE(sigma >= 0.0, "normal() sigma must be non-negative, got " << sigma);
  return mean + sigma * normal();
}

bool Rng::bernoulli(double p) {
  CAL_ENSURE(p >= 0.0 && p <= 1.0, "bernoulli p out of [0,1]: " << p);
  return uniform() < p;
}

Rng Rng::fork(std::uint64_t salt) {
  return Rng(next_u64() ^ (salt * 0xD2B74407B1CE6E93ULL + 0x8CB92BA72F3D8DD7ULL));
}

void Rng::shuffle(std::vector<std::size_t>& v) {
  if (v.size() < 2) return;
  for (std::size_t i = v.size() - 1; i > 0; --i) {
    const std::size_t j = uniform_index(i + 1);
    std::swap(v[i], v[j]);
  }
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  shuffle(v);
  return v;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  CAL_ENSURE(k <= n, "cannot sample " << k << " distinct items from " << n);
  auto perm = permutation(n);
  perm.resize(k);
  return perm;
}

}  // namespace cal
