#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/ensure.hpp"

namespace cal {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CAL_ENSURE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  CAL_ENSURE(row.size() == header_.size(),
             "row has " << row.size() << " cells, header has "
                        << header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    row.push_back(os.str());
  }
  add_row(std::move(row));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string render_heatmap(const std::string& title,
                           const std::vector<std::string>& row_labels,
                           const std::vector<std::string>& col_labels,
                           const std::vector<std::vector<double>>& values,
                           int precision) {
  CAL_ENSURE(values.size() == row_labels.size(),
             "heatmap rows/labels mismatch");
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (const auto& row : values) {
    CAL_ENSURE(row.size() == col_labels.size(),
               "heatmap cols/labels mismatch");
    for (double v : row) {
      if (first) { lo = hi = v; first = false; }
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  // Five shade buckets from light to dark, matching a printed heatmap.
  static const char* kShades[] = {" ", ".", ":", "*", "#"};
  const double span = (hi > lo) ? (hi - lo) : 1.0;

  std::ostringstream os;
  os << title << "  (min=" << std::fixed << std::setprecision(precision) << lo
     << ", max=" << hi << ", shade: ' '<'.'<':'<'*'<'#')\n";
  TextTable table([&] {
    std::vector<std::string> h;
    h.push_back("");
    for (const auto& c : col_labels) h.push_back(c);
    return h;
  }());
  for (std::size_t r = 0; r < values.size(); ++r) {
    std::vector<std::string> row;
    row.push_back(row_labels[r]);
    for (double v : values[r]) {
      const int bucket = std::min(
          4, static_cast<int>(std::floor((v - lo) / span * 5.0)));
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(precision) << v << ' '
           << kShades[std::max(0, bucket)];
      row.push_back(cell.str());
    }
    table.add_row(std::move(row));
  }
  os << table.str();
  return os.str();
}

std::string render_bar_chart(const std::string& title,
                             const std::vector<std::string>& labels,
                             const std::vector<double>& values, int width,
                             const std::string& unit) {
  CAL_ENSURE(labels.size() == values.size(), "bar chart labels/values mismatch");
  CAL_ENSURE(width > 0, "bar chart width must be positive");
  double hi = 0.0;
  for (double v : values) hi = std::max(hi, v);
  std::size_t label_w = 0;
  for (const auto& l : labels) label_w = std::max(label_w, l.size());

  std::ostringstream os;
  os << title << '\n';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int n = hi > 0.0
                      ? static_cast<int>(std::round(values[i] / hi * width))
                      : 0;
    os << "  " << std::left << std::setw(static_cast<int>(label_w))
       << labels[i] << " | " << std::string(static_cast<std::size_t>(n), '#')
       << ' ' << std::fixed << std::setprecision(2) << values[i];
    if (!unit.empty()) os << ' ' << unit;
    os << '\n';
  }
  return os.str();
}

}  // namespace cal
