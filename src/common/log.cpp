#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <iostream>

#include "common/thread_annotations.hpp"

namespace cal {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
/// Serializes std::cerr line assembly across threads (the stream
/// itself is data-race-free per [iostream.objects], but interleaved
/// partial lines are not a readable log).
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  MutexLock lock(g_mutex);
  std::cerr << "[cal:" << level_name(level) << "] " << msg << '\n';
}

LogField::LogField(std::string k, double v) : key(std::move(k)) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  value = buf;
}

namespace {

bool needs_quoting(std::string_view v) {
  if (v.empty()) return true;
  for (const char c : v)
    if (c == ' ' || c == '"' || c == '=' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x20)
      return true;
  return false;
}

void append_value(std::string& out, std::string_view v) {
  if (!needs_quoting(v)) {
    out += v;
    return;
  }
  out += '"';
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string format_log_fields(std::span<const LogField> fields) {
  std::string out;
  for (const LogField& f : fields) {
    if (!out.empty()) out += ' ';
    out += f.key;
    out += '=';
    append_value(out, f.value);
  }
  return out;
}

void log_structured(LogLevel level, std::string_view event,
                    std::span<const LogField> fields) {
  if (static_cast<int>(level) < g_level.load()) return;
  std::string line = "event=";
  append_value(line, event);
  if (!fields.empty()) {
    line += ' ';
    line += format_log_fields(fields);
  }
  log_message(level, line);
}

void log_structured(LogLevel level, std::string_view event,
                    std::initializer_list<LogField> fields) {
  log_structured(level, event,
                 std::span<const LogField>(fields.begin(), fields.size()));
}

}  // namespace cal
