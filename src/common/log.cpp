#include "common/log.hpp"

#include <atomic>
#include <iostream>

#include "common/thread_annotations.hpp"

namespace cal {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
/// Serializes std::cerr line assembly across threads (the stream
/// itself is data-race-free per [iostream.objects], but interleaved
/// partial lines are not a readable log).
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  MutexLock lock(g_mutex);
  std::cerr << "[cal:" << level_name(level) << "] " << msg << '\n';
}

}  // namespace cal
