// Minimal CSV reading/writing for experiment artefacts and dataset
// round-trips. Handles quoting of fields containing commas/quotes/newlines;
// this is deliberately not a full RFC 4180 parser (no embedded newlines on
// read), which is sufficient for the numeric tables this library produces.
#pragma once

#include <string>
#include <vector>

namespace cal {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// In-memory CSV document: optional header plus data rows.
struct CsvDocument {
  CsvRow header;
  std::vector<CsvRow> rows;
};

/// Split a single CSV line honouring double-quote escaping.
CsvRow parse_csv_line(const std::string& line);

/// Quote a field if it contains a comma, quote, or newline.
std::string csv_escape(const std::string& field);

/// Serialize one row.
std::string format_csv_row(const CsvRow& row);

/// Read a CSV file; if `has_header`, first line becomes doc.header.
/// Throws PreconditionError when the file cannot be opened.
CsvDocument read_csv(const std::string& path, bool has_header);

/// Write a CSV file (header emitted when non-empty).
/// Throws PreconditionError when the file cannot be created.
void write_csv(const std::string& path, const CsvDocument& doc);

}  // namespace cal
