// Shared non-cryptographic hashing primitives.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cal {

/// Incremental FNV-1a over raw bytes. Seed one state, mix every field,
/// take the final value — the one implementation behind every keyed map
/// in the repo (fingerprint cache keys, tenant keys, ...).
struct Fnv1a {
  std::uint64_t state = 0xCBF29CE484222325ULL;

  void mix_bytes(const void* data, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state ^= bytes[i];
      state *= 0x100000001B3ULL;
    }
  }

  /// Mix a trivially-copyable value by its object representation.
  template <typename T>
  void mix(const T& value) {
    mix_bytes(&value, sizeof(T));
  }

  std::size_t value() const { return static_cast<std::size_t>(state); }
};

}  // namespace cal
