// Hot-path contract annotations, sibling of thread_annotations.hpp.
//
// These macros attach machine-checkable serving invariants to functions.
// They expand to NOTHING under every compiler — they exist for
// `calloc-lint` (tools/lint/), which reads the raw, un-preprocessed
// source, builds a call graph, and enforces the contracts transitively.
// Because the tool sees source text (not the preprocessed TU), the
// macros are zero-cost by construction: no attribute, no code, no ABI
// or codegen change in any build mode.
//
// Vocabulary (three tiers, from permissive to strict):
//
//   CAL_HOT_PATH
//     Marks a function on the serving data plane. Transitively forbids
//     *unbounded* waits: condition_variable wait/wait_for/wait_until,
//     future::get/wait, thread::join, sleep_for/sleep_until, and
//     blocking I/O (stdio / iostream sinks). Short bounded mutex
//     critical sections are ALLOWED — the PR 6 lock discipline already
//     polices those — as are heap allocations.
//
//   CAL_NONBLOCKING
//     The strict tier: everything CAL_HOT_PATH forbids, plus ANY lock
//     acquisition — std::mutex::lock, MutexLock / ReaderMutexLock /
//     WriterMutexLock, lock_guard / scoped_lock / unique_lock /
//     shared_lock construction. try_to_lock / defer_lock acquisitions
//     are allowed (they cannot block). Reserve this for genuinely
//     lock-free leaves: ShardIndex::nearest, Tracer::record, the
//     per-ISA GEMM kernel bodies.
//
//   CAL_NOALLOC
//     Transitively forbids heap allocation: operator new, the malloc
//     family, make_unique/make_shared, growing-container calls
//     (push_back, emplace*, insert, resize, reserve), string /
//     stringstream construction and to_string. Combine with the tiers
//     above; it is orthogonal to blocking.
//
// Placement: put the macro(s) on the line(s) immediately before the
// function's declaration or definition (either works; calloc-lint
// merges by name across TUs). Annotating a function makes it a *root*:
// the whole call tree underneath it must honor the contract.
//
//   CAL_HOT_PATH CAL_NOALLOC
//   const Pos* lookup(const Key& key);
//
// Escape hatch: CAL_LINT_SUPPRESS(rule, "reason") placed on a function
// stops calloc-lint from descending into it for that rule. The rule is
// one of: alloc, block, promise, sites. The reason string is MANDATORY
// and non-empty — an empty reason is itself a lint finding. Every
// suppression is an audited, deliberate exception (e.g. the
// FlightRecorder anomaly dump is synchronous by design); new
// suppressions belong in code review, not in bulk.
//
// Checked by: tools/lint (calloc-lint), built with -DCALLOC_BUILD_LINT=ON
// and run in CI over src/ plus the seeded-violation corpus in
// tests/static/lint_*.cpp. See README "Correctness tooling".
#pragma once

#define CAL_HOT_PATH
#define CAL_NONBLOCKING
#define CAL_NOALLOC
#define CAL_LINT_SUPPRESS(rule, reason)
