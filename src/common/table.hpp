// ASCII table and heatmap rendering for the benchmark harness.
//
// The paper's evaluation is communicated through tables (Table I/II),
// grouped bar charts (Fig. 1, 5, 6) and heatmaps (Fig. 4). The benches
// regenerate each artefact as aligned monospace output so the "rows/series"
// the paper reports can be read directly from the terminal.
#pragma once

#include <string>
#include <vector>

namespace cal {

/// Aligned-column text table builder.
class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision into a row.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  /// Render with column alignment and a header rule.
  std::string str() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a numeric matrix as a labelled ASCII heatmap (Fig. 4 style):
/// each cell prints the value plus a shade glyph bucketed over [min,max].
std::string render_heatmap(const std::string& title,
                           const std::vector<std::string>& row_labels,
                           const std::vector<std::string>& col_labels,
                           const std::vector<std::vector<double>>& values,
                           int precision = 2);

/// Render a horizontal ASCII bar chart (Fig. 1/5/6 style): one bar per
/// (label, value), scaled to `width` characters at the maximum value.
std::string render_bar_chart(const std::string& title,
                             const std::vector<std::string>& labels,
                             const std::vector<double>& values,
                             int width = 48, const std::string& unit = "m");

}  // namespace cal
