// Tiny leveled logger for training/experiment progress.
//
// Benches and examples print their artefacts on stdout; diagnostic progress
// goes through this logger on stderr so artefact output stays clean and
// parseable. Verbosity is a process-wide setting (default: Info).
//
// Two emission shapes:
//   - CAL_INFO(...) et al.: free-text ostream lines for humans.
//   - log_structured(level, event, {fields}): one `event=<name> k=v ...`
//     logfmt line per call, so anomaly reports and flight-recorder dumps
//     are machine-parseable (values are quoted/escaped only when needed,
//     keys are emitted in argument order).
#pragma once

#include <concepts>
#include <initializer_list>
#include <span>
#include <sstream>
#include <string>
#include <string_view>

namespace cal {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the process-wide minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Current minimum level.
LogLevel log_level();

/// Emit one line at `level` (no-op if below the configured level).
void log_message(LogLevel level, const std::string& msg);

/// One key=value pair of a structured log line. Values are stored
/// pre-rendered; the constructors cover the types telemetry code emits.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, std::string_view v)
      : key(std::move(k)), value(v) {}
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {}
  LogField(std::string k, double v);
  LogField(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false") {}
  template <std::integral T>
    requires(!std::same_as<T, bool>)
  LogField(std::string k, T v)
      : key(std::move(k)), value(std::to_string(v)) {}
};

/// Render fields as logfmt: `k=v k2="two words"`. Values containing
/// spaces, quotes, '=', or control characters are double-quoted with
/// backslash escapes; everything else is emitted bare. Exposed separately
/// so tests (and dump writers) can round-trip the encoding.
std::string format_log_fields(std::span<const LogField> fields);

/// Emit one structured line: `event=<event> <fields>` at `level`.
void log_structured(LogLevel level, std::string_view event,
                    std::span<const LogField> fields);
void log_structured(LogLevel level, std::string_view event,
                    std::initializer_list<LogField> fields);

}  // namespace cal

#define CAL_LOG_AT(level, expr)                                   \
  do {                                                            \
    if (static_cast<int>(level) >= static_cast<int>(::cal::log_level())) { \
      std::ostringstream cal_log_os;                              \
      cal_log_os << expr;                                         \
      ::cal::log_message(level, cal_log_os.str());                \
    }                                                             \
  } while (false)

#define CAL_DEBUG(expr) CAL_LOG_AT(::cal::LogLevel::Debug, expr)
#define CAL_INFO(expr) CAL_LOG_AT(::cal::LogLevel::Info, expr)
#define CAL_WARN(expr) CAL_LOG_AT(::cal::LogLevel::Warn, expr)
#define CAL_ERROR(expr) CAL_LOG_AT(::cal::LogLevel::Error, expr)
