// Tiny leveled logger for training/experiment progress.
//
// Benches and examples print their artefacts on stdout; diagnostic progress
// goes through this logger on stderr so artefact output stays clean and
// parseable. Verbosity is a process-wide setting (default: Info).
#pragma once

#include <sstream>
#include <string>

namespace cal {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the process-wide minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Current minimum level.
LogLevel log_level();

/// Emit one line at `level` (no-op if below the configured level).
void log_message(LogLevel level, const std::string& msg);

}  // namespace cal

#define CAL_LOG_AT(level, expr)                                   \
  do {                                                            \
    if (static_cast<int>(level) >= static_cast<int>(::cal::log_level())) { \
      std::ostringstream cal_log_os;                              \
      cal_log_os << expr;                                         \
      ::cal::log_message(level, cal_log_os.str());                \
    }                                                             \
  } while (false)

#define CAL_DEBUG(expr) CAL_LOG_AT(::cal::LogLevel::Debug, expr)
#define CAL_INFO(expr) CAL_LOG_AT(::cal::LogLevel::Info, expr)
#define CAL_WARN(expr) CAL_LOG_AT(::cal::LogLevel::Warn, expr)
#define CAL_ERROR(expr) CAL_LOG_AT(::cal::LogLevel::Error, expr)
