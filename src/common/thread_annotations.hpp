#pragma once

// Clang Thread Safety Analysis surface for CALLOC.
//
// Locking discipline in this codebase is machine-checked: every
// mutex-protected field carries CAL_GUARDED_BY, every function that
// expects a lock to be held carries CAL_REQUIRES, and the Clang-only
// CALLOC_THREAD_SAFETY build turns violations into compile errors
// (-Wthread-safety -Wthread-safety-beta -Werror; see CMakeLists.txt and
// the thread-safety CI job). On other compilers every macro expands to
// nothing and the wrappers below behave exactly like the std types they
// wrap.
//
// Conventions for new code:
//  - Use cal::Mutex / cal::SharedMutex, never bare std::mutex, for any
//    lock the analysis should track (std types carry no attributes).
//  - Take locks through the scoped guards (MutexLock, ReaderMutexLock,
//    WriterMutexLock) rather than std::lock_guard/std::unique_lock —
//    the analysis only understands annotated RAII types.
//  - Condition waits go through cal::CondVar::wait(mu) inside an
//    explicit `while (!predicate)` loop in the function that holds the
//    lock. Predicate-lambda overloads are deliberately not provided:
//    Clang analyzes a lambda body as a separate function that does not
//    inherit the caller's lock set, so a guarded read inside the
//    predicate would be (falsely) diagnosed.
//  - Private helpers that assume a held lock are suffixed _locked() and
//    annotated CAL_REQUIRES(mu_).

#if defined(__clang__)
#define CAL_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define CAL_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define CAL_CAPABILITY(x) CAL_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define CAL_SCOPED_CAPABILITY \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define CAL_GUARDED_BY(x) CAL_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define CAL_PT_GUARDED_BY(x) \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define CAL_REQUIRES(...) \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define CAL_REQUIRES_SHARED(...) \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define CAL_ACQUIRE(...) \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define CAL_ACQUIRE_SHARED(...) \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define CAL_RELEASE(...) \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define CAL_RELEASE_SHARED(...) \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define CAL_RELEASE_GENERIC(...) \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

#define CAL_TRY_ACQUIRE(...) \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define CAL_TRY_ACQUIRE_SHARED(...) \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

#define CAL_EXCLUDES(...) \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define CAL_ASSERT_CAPABILITY(x) \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define CAL_RETURN_CAPABILITY(x) \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define CAL_NO_THREAD_SAFETY_ANALYSIS \
  CAL_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace cal {

/// std::mutex with capability attributes so the analysis can track it.
/// Zero overhead: all members forward directly.
class CAL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CAL_ACQUIRE() { mu_.lock(); }
  void unlock() CAL_RELEASE() { mu_.unlock(); }
  bool try_lock() CAL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Escape hatch for interop (e.g. CondVar); callers own the
  /// responsibility of keeping the analysis informed.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with capability attributes (reader/writer lock).
class CAL_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() CAL_ACQUIRE() { mu_.lock(); }
  void unlock() CAL_RELEASE() { mu_.unlock(); }
  bool try_lock() CAL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() CAL_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() CAL_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() CAL_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over cal::Mutex (std::lock_guard equivalent).
class CAL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CAL_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CAL_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over cal::SharedMutex.
class CAL_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) CAL_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() CAL_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over cal::SharedMutex.
class CAL_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) CAL_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() CAL_RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with cal::Mutex. Wraps the plain
/// std::condition_variable (not _any): wait() temporarily adopts the
/// caller's held lock into a std::unique_lock and releases it back on
/// wake, so the fast futex path is preserved and the analysis sees the
/// lock held across the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold mu; the lock is released while blocked and
  /// re-acquired before returning (standard condvar contract).
  void wait(Mutex& mu) CAL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership returns to the caller's guard
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cal
