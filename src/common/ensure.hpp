// Precondition / invariant checking helpers.
//
// Per the C++ Core Guidelines (I.6, E.12), interface preconditions are
// expressed as checks that throw informative exceptions rather than
// asserting in release builds: a localisation library embedded in a larger
// application must not abort the host process on bad input.
#pragma once

// This library requires C++20 (std::span in tensor.hpp, matrix.hpp,
// stats.hpp, gbdt.hpp, trainer.hpp, cholesky.hpp). Fail loudly here —
// this header is at the bottom of every include chain — instead of
// emitting a dozen cryptic std::span errors under -std=c++17.
#if defined(_MSVC_LANG)
#if _MSVC_LANG < 202002L
#error "CALLOC requires C++20 or newer: compile with /std:c++20"
#endif
#elif __cplusplus < 202002L
#error "CALLOC requires C++20 or newer: compile with -std=c++20 (std::span is used throughout)"
#endif

#include <sstream>
#include <stdexcept>
#include <string>

namespace cal {

/// Error thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Error thrown when an internal invariant is broken (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace cal

/// Check a caller-facing precondition; throws cal::PreconditionError.
#define CAL_ENSURE(expr, msg)                                          \
  do {                                                                 \
    if (!(expr))                                                       \
      ::cal::detail::throw_precondition(#expr, __FILE__, __LINE__,     \
                                        (std::ostringstream{} << msg)  \
                                            .str());                   \
  } while (false)

/// Check an internal invariant; throws cal::InvariantError.
#define CAL_INVARIANT(expr, msg)                                      \
  do {                                                                \
    if (!(expr))                                                      \
      ::cal::detail::throw_invariant(#expr, __FILE__, __LINE__,       \
                                     (std::ostringstream{} << msg)    \
                                         .str());                     \
  } while (false)
