#include "common/fault_inject.hpp"

#include "common/ensure.hpp"

namespace cal {

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry registry;
  return registry;
}

void FaultRegistry::arm(const std::string& site, double probability,
                        std::uint64_t seed) {
  CAL_ENSURE(probability >= 0.0 && probability <= 1.0,
             "fault probability out of [0,1]: " << probability);
  MutexLock lock(mu_);
  Site& s = sites_[site];
  s.probability = probability;
  s.one_shot_nth = 0;
  s.rng = Rng(seed);
  s.hits = 0;
  s.fires = 0;
  armed_.store(sites_.size(), std::memory_order_release);
}

void FaultRegistry::arm_one_shot(const std::string& site, std::uint64_t nth) {
  CAL_ENSURE(nth >= 1, "one-shot fault fires on a 1-based passage, got 0");
  MutexLock lock(mu_);
  Site& s = sites_[site];
  s.probability = 0.0;
  s.one_shot_nth = nth;
  s.hits = 0;
  s.fires = 0;
  armed_.store(sites_.size(), std::memory_order_release);
}

void FaultRegistry::disarm(const std::string& site) {
  MutexLock lock(mu_);
  sites_.erase(site);
  armed_.store(sites_.size(), std::memory_order_release);
}

void FaultRegistry::disarm_all() {
  MutexLock lock(mu_);
  sites_.clear();
  armed_.store(0, std::memory_order_release);
}

void FaultRegistry::passage(const char* site) {
  // Disarmed-everywhere fast path: no lock, no lookup, no allocation.
  if (armed_.load(std::memory_order_acquire) == 0) return;
  bool fire = false;
  {
    MutexLock lock(mu_);
    const auto it = sites_.find(site);
    if (it == sites_.end()) return;
    Site& s = it->second;
    ++s.hits;
    if (s.one_shot_nth > 0) {
      if (s.hits == s.one_shot_nth) {
        fire = true;
        s.one_shot_nth = 0;  // spent; the site keeps counting hits
      }
    } else if (s.probability > 0.0 && s.rng.bernoulli(s.probability)) {
      fire = true;
    }
    if (fire) ++s.fires;
  }
  // Thrown outside the lock: unwinding through an armed site must never
  // hold the registry mutex.
  if (fire) throw InjectedFault(site);
}

FaultRegistry::SiteStats FaultRegistry::site_stats(
    const std::string& site) const {
  MutexLock lock(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return {};
  return {it->second.hits, it->second.fires};
}

}  // namespace cal
