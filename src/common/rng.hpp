// Deterministic random number generation.
//
// Every stochastic component in the library (simulator, attacks, training,
// data augmentation) draws from an explicitly seeded Rng so that every
// experiment is reproducible run-to-run. There is no global RNG state.
//
// Threading contract: an Rng instance is mutable state (the xoshiro words
// plus the Box–Muller spare) with no internal synchronisation. It must
// NOT be shared across threads without external locking — concurrent
// next_u64() calls are a data race, and even if benign-looking they
// destroy run-to-run determinism. The supported pattern is one stream per
// thread: construct a parent Rng from the experiment seed and hand each
// thread its own `fork(salt)` child (deterministic in (state, salt), and
// statistically independent). This is what the serving worker pool and
// the traffic-simulation clients in src/serve do.
#pragma once

#include <cstdint>
#include <vector>

namespace cal {

/// Seedable pseudo-random generator wrapping a SplitMix64-seeded
/// xoshiro256++ core. Cheap to copy; fork() derives independent streams.
class Rng {
 public:
  /// Construct from a 64-bit seed. Identical seeds yield identical streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  /// Standard normal sample (Box–Muller, cached spare).
  double normal();

  /// Normal sample with given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Derive an independent child stream; deterministic in (state, salt).
  Rng fork(std::uint64_t salt);

  /// Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& v);

  /// A random permutation of 0..n-1.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Sample k distinct indices from 0..n-1 (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace cal
