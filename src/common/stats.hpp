// Small descriptive-statistics helpers used by metrics and reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cal {

/// Arithmetic mean. Requires a non-empty range.
double mean(std::span<const double> xs);

/// Population standard deviation. Requires a non-empty range.
double stddev(std::span<const double> xs);

/// Minimum value. Requires a non-empty range.
double min_value(std::span<const double> xs);

/// Maximum value. Requires a non-empty range.
double max_value(std::span<const double> xs);

/// Median (linear-interpolated). Requires a non-empty range.
double median(std::span<const double> xs);

/// p-th percentile, p in [0, 100], linear interpolation between order
/// statistics (the NIST "R-7" definition used by numpy.percentile).
double percentile(std::span<const double> xs, double p);

/// Summary bundle of the statistics reported throughout the paper's
/// evaluation (mean and worst-case error, plus distribution shape).
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double max = 0.0;  ///< the paper's "worst-case" error
  std::size_t count = 0;
};

/// Compute all Summary fields in one pass over a copy of the data.
Summary summarize(std::span<const double> xs);

}  // namespace cal
