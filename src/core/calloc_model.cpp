#include "core/calloc_model.hpp"

#include <algorithm>

#include "autograd/ops.hpp"
#include "common/ensure.hpp"

namespace cal::core {

CallocModel::CallocModel(CallocModelConfig cfg) : cfg_(cfg) {
  CAL_ENSURE(cfg_.num_aps > 0, "CallocModel needs num_aps > 0");
  CAL_ENSURE(cfg_.num_rps > 0, "CallocModel needs num_rps > 0");
  CAL_ENSURE(cfg_.embed_dim > 0 && cfg_.attention_dim > 0,
             "CallocModel dims must be positive");
  Rng rng(cfg_.seed);
  embed_c_ = std::make_unique<nn::Linear>(cfg_.num_aps, cfg_.embed_dim, rng,
                                          "embed_c");
  embed_o_ = std::make_unique<nn::Linear>(cfg_.num_aps, cfg_.embed_dim, rng,
                                          "embed_o");
  dropout_o_ = std::make_unique<nn::Dropout>(cfg_.dropout_rate, rng.fork(2));
  noise_o_ = std::make_unique<nn::GaussianNoise>(cfg_.noise_sigma,
                                                 rng.fork(3));
  w_q_ = std::make_unique<nn::Linear>(cfg_.embed_dim, cfg_.attention_dim, rng,
                                      "attn_wq");
  w_k_ = std::make_unique<nn::Linear>(cfg_.embed_dim, cfg_.attention_dim, rng,
                                      "attn_wk");
  // Siamese initialisation: both hyperspace branches (and both attention
  // projections) start from identical weights, so a query and its matching
  // anchor land on the same embedding at epoch 0 and the anchor softmax is
  // informative from the first step. Without this the two branches are
  // independent random bases and the attention gradient is too weak to
  // align them (see DESIGN.md §6). The branches diverge freely during
  // training.
  embed_o_->weight()->mutable_value() = embed_c_->weight()->value();
  embed_o_->bias()->mutable_value() = embed_c_->bias()->value();
  w_k_->weight()->mutable_value() = w_q_->weight()->value();
  w_k_->bias()->mutable_value() = w_q_->bias()->value();
  Tensor temp({1});
  temp[0] = cfg_.initial_temperature;
  temperature_ = autograd::make_leaf(std::move(temp), true);
  head_ = std::make_unique<nn::Linear>(cfg_.num_rps, cfg_.num_rps, rng,
                                       "head");
  Tensor& head_w = head_->weight()->mutable_value();
  for (std::size_t i = 0; i < cfg_.num_rps; ++i)
    head_w.at(i, i) += cfg_.head_identity_gain;
}

void CallocModel::set_anchors(const Tensor& anchor_x,
                              std::span<const std::size_t> anchor_labels) {
  CAL_ENSURE(anchor_x.rank() == 2 && anchor_x.cols() == cfg_.num_aps,
             "anchor matrix must be (M, " << cfg_.num_aps << "), got "
                                          << anchor_x.shape_str());
  CAL_ENSURE(anchor_labels.size() == anchor_x.rows(),
             "anchor labels/rows mismatch");
  Tensor onehot({anchor_x.rows(), cfg_.num_rps});
  for (std::size_t i = 0; i < anchor_labels.size(); ++i) {
    CAL_ENSURE(anchor_labels[i] < cfg_.num_rps,
               "anchor label " << anchor_labels[i] << " out of "
                               << cfg_.num_rps);
    onehot.at(i, anchor_labels[i]) = 1.0F;
  }
  anchors_ = autograd::constant(anchor_x);
  anchor_onehot_ = autograd::constant(std::move(onehot));
  anchor_labels_.assign(anchor_labels.begin(), anchor_labels.end());
}

autograd::Var CallocModel::hyperspace_curriculum(const autograd::Var& x) {
  return autograd::relu(embed_c_->forward(x));
}

autograd::Var CallocModel::hyperspace_original(const autograd::Var& x) {
  // Input-space augmentation: dropped APs and RSS jitter (training only).
  // Applied when H_O embeds the original-data *batch* (the alignment-loss
  // branch of Fig. 3); the anchor/key path below uses the clean embedding
  // — randomising the entire fingerprint database every step would
  // destroy the attention signal the curriculum trains against.
  auto noisy = noise_o_->forward(dropout_o_->forward(x));
  return autograd::relu(embed_o_->forward(noisy));
}

autograd::Var CallocModel::embed_original_clean(const autograd::Var& x) {
  return autograd::relu(embed_o_->forward(x));
}

autograd::Var CallocModel::attention_distribution(const autograd::Var& x) {
  CAL_ENSURE(anchors_ != nullptr, "attention before set_anchors()");
  auto k_raw = w_k_->forward(embed_original_clean(anchors_));
  auto center = autograd::mean_over_rows(k_raw);
  auto q = autograd::l2_normalize_rows(autograd::sub_rowwise(
      w_q_->forward(hyperspace_curriculum(x)), center));
  auto k = autograd::l2_normalize_rows(autograd::sub_rowwise(k_raw, center));
  // Fused q·kᵀ keeps the M-anchor score matmul (the serving hot path) free
  // of the per-call K-transpose copy.
  auto scores =
      autograd::scale_by(autograd::matmul_nt(q, k), temperature_);
  return autograd::softmax_rows(scores);
}

Tensor CallocModel::attention_weights(const Tensor& x) {
  return attention_distribution(autograd::constant(x))->value();
}

autograd::Var CallocModel::forward(const autograd::Var& x) {
  CAL_ENSURE(anchors_ != nullptr,
             "CallocModel::forward before set_anchors()");
  // Q from the query batch through the curriculum hyperspace; K from the
  // anchor database through the original hyperspace; V = RP indicators.
  //
  // Scores are *centered cosine* similarities sharpened by a learnable
  // temperature (which folds in eq. 3's 1/sqrt(d_k)). RSS fingerprints
  // share a dominant common-mode component (the overall decay pattern):
  // raw query/anchor cosines measure 0.995-0.999 for every pair, so a
  // plain scaled dot product gives a near-uniform softmax whose gradient
  // vanishes. Subtracting the mean anchor embedding from both sides
  // removes the common mode and leaves the location-discriminative
  // directions. See DESIGN.md §6.
  auto weights = attention_distribution(x);
  auto attended = autograd::matmul(weights, anchor_onehot_);
  return head_->forward(attended);
}

std::vector<nn::Parameter> CallocModel::parameters() {
  std::vector<nn::Parameter> all;
  for (auto* m : {embed_c_.get(), embed_o_.get(), w_q_.get(), w_k_.get(),
                  head_.get()})
    for (auto& p : m->parameters()) all.push_back(p);
  all.push_back({"attn.temperature", temperature_});
  return all;
}

void CallocModel::set_training(bool training) {
  nn::Module::set_training(training);
  dropout_o_->set_training(training);
  noise_o_->set_training(training);
}

std::size_t CallocModel::num_anchors() const {
  CAL_ENSURE(anchors_ != nullptr, "no anchors installed");
  return anchors_->value().rows();
}

const Tensor& CallocModel::anchor_matrix() const {
  CAL_ENSURE(anchors_ != nullptr, "no anchors installed");
  return anchors_->value();
}

std::span<const std::size_t> CallocModel::anchor_labels() const {
  CAL_ENSURE(anchors_ != nullptr, "no anchors installed");
  return anchor_labels_;
}

Tensor CallocModel::anchor_rows(std::span<const std::size_t> rows) const {
  CAL_ENSURE(anchors_ != nullptr, "no anchors installed");
  CAL_ENSURE(!rows.empty(), "anchor_rows needs at least one row");
  const Tensor& all = anchors_->value();
  Tensor out = Tensor::uninitialized({rows.size(), all.cols()});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    CAL_ENSURE(rows[i] < all.rows(),
               "anchor row " << rows[i] << " out of " << all.rows());
    const auto src = all.row(rows[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

namespace {

std::size_t count_params(nn::Module& m) {
  std::size_t n = 0;
  for (const auto& p : m.parameters()) n += p.var->value().size();
  return n;
}

}  // namespace

std::size_t CallocModel::embedding_parameter_count() {
  return count_params(*embed_c_) + count_params(*embed_o_);
}

std::size_t CallocModel::attention_parameter_count() {
  return count_params(*w_q_) + count_params(*w_k_) +
         temperature_->value().size();
}

std::size_t CallocModel::classifier_parameter_count() {
  return count_params(*head_);
}

}  // namespace cal::core
