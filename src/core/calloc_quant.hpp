// Int8-quantized inference copy of a trained CALLOC model.
//
// Built from a fitted CallocModel at ModelRegistry::publish() time (via
// Calloc::quantize_int8): every weight matrix is snapshotted to int8 with
// per-output-channel symmetric scales, biases/temperature/anchor geometry
// stay fp32, and the anchor KEY matrix is precomputed — the centered,
// L2-normalised k rows are constant after training, so the whole anchor
// branch collapses to one stored M x attention_dim int8 matrix. The
// forward pass then rides gemm_s8_nn/nt end to end with dynamic per-row
// activation quantization between layers, and the attention·onehot product
// reduces to a per-label accumulation (V is an indicator matrix).
//
// ~4x smaller resident weights than the fp32 replica and roughly double
// the GEMM throughput on AVX2-class hardware; accuracy tracks fp32 within
// the CI-enforced localization-error delta (bench_kernels gates it).
// Inference-only: fit() refuses, gradient_source() is nullptr (white-box
// attackers transfer from the fp32 surrogate).
#pragma once

#include <cstddef>
#include <vector>

#include "baselines/localizer.hpp"
#include "kernels/quant.hpp"

namespace cal::core {

class CallocModel;

/// Quantized CALLOC forward path as an ILocalizer, deployable wherever the
/// fp32 model is (TenantSpec precision = Precision::Int8).
class QuantizedCalloc : public baselines::ILocalizer {
 public:
  /// Snapshot a trained model (anchors installed) into int8 form.
  explicit QuantizedCalloc(CallocModel& model);

  /// Refuses: quantized models are inference-only; retrain the fp32 model
  /// and re-quantize instead.
  void fit(const data::FingerprintDataset& train) override;

  std::vector<std::size_t> predict(const Tensor& x_normalized) override;
  std::string name() const override;
  std::size_t weight_bytes() const override;

  /// RP probabilities (post-head softmax is skipped — argmax over logits
  /// equals argmax over probabilities); exposed for accuracy tests.
  std::vector<float> logits(const Tensor& x_normalized);

 private:
  std::size_t num_aps_ = 0;
  std::size_t embed_dim_ = 0;
  std::size_t attn_dim_ = 0;
  std::size_t num_rps_ = 0;

  kernels::QuantizedMatrix w_embed_c_;  // (num_aps x embed_dim), per-col
  std::vector<float> b_embed_c_;
  kernels::QuantizedMatrix w_q_;        // (embed_dim x attn_dim), per-col
  std::vector<float> b_q_;
  kernels::QuantizedMatrix k_norm_;     // (M x attn_dim), per-row
  std::vector<float> center_;           // (attn_dim)
  float temperature_ = 1.0F;
  std::vector<std::size_t> anchor_labels_;  // (M)
  kernels::QuantizedMatrix w_head_;     // (num_rps x num_rps), per-col
  std::vector<float> b_head_;
};

}  // namespace cal::core
