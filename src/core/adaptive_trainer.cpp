#include "core/adaptive_trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "attacks/attack.hpp"
#include "attacks/gradient_source.hpp"
#include "autograd/ops.hpp"
#include "common/ensure.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"

namespace cal::core {
namespace {

/// Lesson data: the (partially adversarial) curriculum view of the clean
/// training matrix, row-aligned with it.
Tensor make_lesson_data(CallocModel& model, const Tensor& x_clean,
                        std::span<const std::size_t> y, const Lesson& lesson,
                        double phi_override, Rng& rng) {
  const double phi = phi_override;
  if (lesson.adversarial_fraction <= 0.0 || lesson.epsilon <= 0.0 ||
      phi <= 0.0)
    return x_clean;

  // Pick the adversarial subset for this lesson round.
  const auto n_adv = static_cast<std::size_t>(
      static_cast<double>(x_clean.rows()) * lesson.adversarial_fraction);
  if (n_adv == 0) return x_clean;
  auto idx = rng.sample_without_replacement(x_clean.rows(), n_adv);
  std::sort(idx.begin(), idx.end());

  Tensor x_sub = nn::gather_rows(x_clean, idx);
  std::vector<std::size_t> y_sub(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) y_sub[i] = y[idx[i]];

  attacks::AttackConfig atk;
  atk.epsilon = lesson.epsilon;
  atk.phi_percent = phi;
  atk.selection = attacks::TargetSelection::Strongest;
  atk.seed = rng.next_u64();
  attacks::ModuleGradientSource grads(model);
  const Tensor x_adv = attacks::fgsm_attack(grads, x_sub, y_sub, atk);

  Tensor lesson_x = x_clean;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const float* src = x_adv.data() + i * x_clean.cols();
    float* dst = lesson_x.data() + idx[i] * x_clean.cols();
    std::copy(src, src + x_clean.cols(), dst);
  }
  return lesson_x;
}

}  // namespace

AdaptiveCurriculumTrainer::AdaptiveCurriculumTrainer(AdaptiveTrainConfig cfg)
    : cfg_(cfg) {
  CAL_ENSURE(cfg_.max_epochs_per_lesson >= 1, "need >= 1 epoch per lesson");
  CAL_ENSURE(cfg_.batch_size >= 1, "batch_size must be >= 1");
  CAL_ENSURE(cfg_.learning_rate > 0.0F, "learning rate must be positive");
  CAL_ENSURE(cfg_.validation_fraction >= 0.0 &&
                 cfg_.validation_fraction < 1.0,
             "validation_fraction out of [0,1)");
  CAL_ENSURE(cfg_.phi_reduction_step > 0.0,
             "phi_reduction_step must be positive");
  CAL_ENSURE(cfg_.hyperspace_loss_weight >= 0.0F,
             "hyperspace loss weight must be >= 0");
}

CurriculumReport AdaptiveCurriculumTrainer::train(
    CallocModel& model, const Tensor& x, std::span<const std::size_t> y,
    const CurriculumSchedule& schedule) {
  CAL_ENSURE(x.rank() == 2 && x.rows() >= 4, "need >= 4 training samples");
  CAL_ENSURE(y.size() == x.rows(), "labels/rows mismatch");
  CAL_ENSURE(model.has_anchors(), "install anchors before training");

  Rng rng(cfg_.seed);

  // Fixed train/validation split shared by every lesson so losses are
  // comparable across the curriculum.
  auto perm = rng.permutation(x.rows());
  const auto n_val = static_cast<std::size_t>(
      static_cast<double>(x.rows()) * cfg_.validation_fraction);
  std::vector<std::size_t> val_idx(perm.begin(),
                                   perm.begin() + static_cast<long>(n_val));
  std::vector<std::size_t> train_idx(perm.begin() + static_cast<long>(n_val),
                                     perm.end());
  CAL_ENSURE(!train_idx.empty(), "validation split consumed all data");

  nn::Adam opt(model.parameters(), cfg_.learning_rate);
  CurriculumReport report;

  std::size_t lesson_ordinal = 0;
  for (const Lesson& lesson : schedule.lessons()) {
    opt.set_learning_rate(cfg_.learning_rate *
                          std::pow(cfg_.lr_decay_per_lesson,
                                   static_cast<float>(lesson_ordinal)));
    ++lesson_ordinal;
    LessonReport lr;
    lr.lesson_index = lesson.index;
    lr.phi_requested = lesson.phi_percent;
    double phi = lesson.phi_percent;

    // Best-weight tracking is per lesson: lesson losses are not comparable
    // across lessons (harder lessons have intrinsically higher loss), so a
    // global best would always point back at lesson 1.
    std::vector<Tensor> lesson_best_weights = model.snapshot_weights();
    double lesson_best = std::numeric_limits<double>::infinity();
    std::size_t rising_streak = 0;
    std::size_t since_best = 0;
    double prev_val = std::numeric_limits<double>::infinity();

    for (std::size_t epoch = 0; epoch < cfg_.max_epochs_per_lesson;
         ++epoch) {
      // ---- one training epoch over the lesson data -------------------
      // Lesson perturbations are re-crafted against the *current* model
      // every epoch: training on stale perturbations from an earlier
      // model state defends against the wrong attack (the online-phase
      // adversary always attacks the deployed weights).
      Tensor lesson_x = make_lesson_data(model, x, y, lesson, phi, rng);
      model.set_training(true);
      rng.shuffle(train_idx);
      for (std::size_t start = 0; start < train_idx.size();
           start += cfg_.batch_size) {
        const std::size_t end =
            std::min(start + cfg_.batch_size, train_idx.size());
        std::span<const std::size_t> bidx(train_idx.data() + start,
                                          end - start);
        Tensor xb_lesson = nn::gather_rows(lesson_x, bidx);
        Tensor xb_clean = nn::gather_rows(x, bidx);
        std::vector<std::size_t> yb(bidx.size());
        for (std::size_t i = 0; i < bidx.size(); ++i) yb[i] = y[bidx[i]];

        auto in_lesson = autograd::constant(xb_lesson);
        auto in_clean = autograd::constant(xb_clean);
        auto logits = model.forward(in_lesson);
        auto loss = autograd::cross_entropy(logits, yb);
        if (cfg_.hyperspace_loss_weight > 0.0F) {
          // Hyperspace alignment: the curriculum embedding of the
          // (perturbed) sample should match the original embedding of its
          // clean counterpart.
          auto h_c = model.hyperspace_curriculum(in_lesson);
          auto h_o = model.hyperspace_original(in_clean);
          auto align = autograd::mse_loss(h_c, h_o->value());
          loss = autograd::add(
              loss, autograd::scale(align, cfg_.hyperspace_loss_weight));
        }
        opt.zero_grad();
        autograd::backward(loss);
        opt.step();
      }
      ++lr.epochs_run;
      ++report.total_epochs;

      // ---- validation loss of the final FC layer ---------------------
      model.set_training(false);
      double val_loss = 0.0;
      {
        const auto& eval_idx = val_idx.empty() ? train_idx : val_idx;
        Tensor xv = nn::gather_rows(lesson_x, eval_idx);
        std::vector<std::size_t> yv(eval_idx.size());
        for (std::size_t i = 0; i < eval_idx.size(); ++i)
          yv[i] = y[eval_idx[i]];
        auto logits = model.forward(autograd::constant(xv));
        val_loss = autograd::cross_entropy(logits, yv)->value()[0];
      }
      if (cfg_.verbose)
        CAL_INFO("lesson " << lesson.index << " phi=" << phi << " epoch "
                           << epoch << " val=" << val_loss);

      if (val_loss < lesson_best) {
        lesson_best = val_loss;
        lesson_best_weights = model.snapshot_weights();
        since_best = 0;
      } else {
        ++since_best;
      }

      rising_streak = (val_loss > prev_val) ? rising_streak + 1 : 0;
      prev_val = val_loss;

      // ---- adaptive response to divergence (§IV.D) --------------------
      const bool divergence = cfg_.divergence_patience > 0 &&
                              rising_streak >= cfg_.divergence_patience &&
                              val_loss > lesson_best;
      if (divergence && lr.adaptations < cfg_.max_adaptations_per_lesson &&
          phi > 0.0) {
        model.restore_weights(lesson_best_weights);
        phi = std::max(0.0, phi - cfg_.phi_reduction_step);
        ++lr.adaptations;
        rising_streak = 0;
        since_best = 0;
        prev_val = std::numeric_limits<double>::infinity();
        if (cfg_.verbose)
          CAL_INFO("  divergence -> revert, phi reduced to " << phi);
        continue;
      }
      if (cfg_.early_stop_patience > 0 &&
          since_best >= cfg_.early_stop_patience)
        break;  // lesson converged; advance
    }

    // Advance to the next lesson from this lesson's best state.
    model.restore_weights(lesson_best_weights);
    lr.phi_trained = phi;
    lr.best_val_loss = lesson_best;
    report.lessons.push_back(lr);
    report.final_val_loss = lesson_best;
  }

  model.set_training(false);
  return report;
}

}  // namespace cal::core
