// Curriculum schedule (paper §IV.A).
//
// Ten lessons of increasing adversarial difficulty: lesson 1 is 100%
// original data (ø = 0); subsequent lessons raise the fraction of
// FGSM-perturbed samples and the percentage ø of attacked APs, ending at
// ø = 100. ϵ stays fixed and small (0.1) throughout — the paper's key
// observation is that training against subtle perturbation *patterns*
// generalises to unseen magnitudes and unseen attacks (PGD/MIM).
#pragma once

#include <cstddef>
#include <vector>

namespace cal::core {

/// One curriculum lesson.
struct Lesson {
  std::size_t index = 0;            ///< 1-based lesson number
  double phi_percent = 0.0;         ///< ø: % of APs attacked in lesson data
  double epsilon = 0.1;             ///< FGSM magnitude (fixed, small)
  double adversarial_fraction = 0.0;///< share of lesson samples perturbed
};

/// Ordered set of lessons.
class CurriculumSchedule {
 public:
  /// Build a custom schedule (must be non-empty; lessons must be in
  /// non-decreasing ø order — the premise of curriculum learning).
  explicit CurriculumSchedule(std::vector<Lesson> lessons);

  /// The paper's schedule: `num_lessons` lessons, lesson 1 at ø = 0 with
  /// 100% original data, then ø and the adversarial fraction rising
  /// linearly to ø = 100 / `max_adversarial_fraction` at the final lesson.
  static CurriculumSchedule standard(std::size_t num_lessons = 10,
                                     double epsilon = 0.1,
                                     double max_adversarial_fraction = 0.9);

  /// A single-lesson schedule carrying the hardest mixture immediately —
  /// the "NC" (no-curriculum) ablation of Fig. 5.
  static CurriculumSchedule no_curriculum(double epsilon = 0.1,
                                          double max_adversarial_fraction =
                                              0.9);

  const std::vector<Lesson>& lessons() const { return lessons_; }
  std::size_t size() const { return lessons_.size(); }

 private:
  std::vector<Lesson> lessons_;
};

}  // namespace cal::core
