#include "core/calloc_quant.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"
#include "core/calloc_model.hpp"
#include "kernels/gemm.hpp"

namespace cal::core {
namespace {

// Mirrors the fp32 path's l2_normalize_rows epsilon.
constexpr float kNormEps = 1e-8F;

std::vector<float> copy_bias(nn::Linear& layer) {
  const Tensor& b = layer.bias()->value();
  return {b.data(), b.data() + b.size()};
}

// y = x·W + b for fp32 build-time precomputation (anchor key branch).
std::vector<float> linear_fp32(std::span<const float> x, std::size_t rows,
                               nn::Linear& layer) {
  const Tensor& w = layer.weight()->value();
  const Tensor& b = layer.bias()->value();
  std::vector<float> y(rows * w.cols());
  kernels::gemm_nn(x, w.flat(), y, rows, w.rows(), w.cols());
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < w.cols(); ++j) y[i * w.cols() + j] += b[j];
  return y;
}

void softmax_rows_inplace(std::vector<float>& x, std::size_t rows,
                          std::size_t cols) {
  for (std::size_t i = 0; i < rows; ++i) {
    float* row = x.data() + i * cols;
    float mx = row[0];
    for (std::size_t j = 1; j < cols; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0F;
    for (std::size_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    const float inv = 1.0F / denom;
    for (std::size_t j = 0; j < cols; ++j) row[j] *= inv;
  }
}

}  // namespace

QuantizedCalloc::QuantizedCalloc(CallocModel& model) {
  CAL_ENSURE(model.has_anchors(),
             "QuantizedCalloc needs a fitted model with anchors installed");
  const CallocModelConfig& cfg = model.config();
  num_aps_ = cfg.num_aps;
  embed_dim_ = cfg.embed_dim;
  attn_dim_ = cfg.attention_dim;
  num_rps_ = cfg.num_rps;
  temperature_ = model.temperature();
  const auto labels = model.anchor_labels();
  anchor_labels_.assign(labels.begin(), labels.end());

  // Query-side weights: int8 with one scale per output channel.
  {
    const Tensor& w = model.embed_c_layer().weight()->value();
    w_embed_c_ = kernels::quantize_per_output_channel(w.flat(), w.rows(),
                                                      w.cols());
    b_embed_c_ = copy_bias(model.embed_c_layer());
  }
  {
    const Tensor& w = model.attn_wq_layer().weight()->value();
    w_q_ = kernels::quantize_per_output_channel(w.flat(), w.rows(), w.cols());
    b_q_ = copy_bias(model.attn_wq_layer());
  }
  {
    const Tensor& w = model.head_layer().weight()->value();
    w_head_ =
        kernels::quantize_per_output_channel(w.flat(), w.rows(), w.cols());
    b_head_ = copy_bias(model.head_layer());
  }

  // Anchor key branch, fully precomputed in fp32 then quantized per row
  // (rows are the gemm_s8_nt output channels): k_raw = W_k·relu(W_eo·A),
  // centered by the mean key and L2-normalised — constant after training.
  const Tensor& anchors = model.anchor_matrix();
  const std::size_t m = anchors.rows();
  std::vector<float> h =
      linear_fp32(anchors.flat(), m, model.embed_o_layer());
  for (float& v : h) v = std::max(v, 0.0F);
  std::vector<float> k_raw = linear_fp32(h, m, model.attn_wk_layer());
  center_.assign(attn_dim_, 0.0F);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < attn_dim_; ++j)
      center_[j] += k_raw[i * attn_dim_ + j];
  const float inv_m = 1.0F / static_cast<float>(m);
  for (float& v : center_) v *= inv_m;
  for (std::size_t i = 0; i < m; ++i) {
    float* row = k_raw.data() + i * attn_dim_;
    float sq = 0.0F;
    for (std::size_t j = 0; j < attn_dim_; ++j) {
      row[j] -= center_[j];
      sq += row[j] * row[j];
    }
    const float inv = 1.0F / std::max(std::sqrt(sq), kNormEps);
    for (std::size_t j = 0; j < attn_dim_; ++j) row[j] *= inv;
  }
  k_norm_ = kernels::quantize_rows(k_raw, m, attn_dim_);
}

void QuantizedCalloc::fit(const data::FingerprintDataset& /*train*/) {
  CAL_ENSURE(false,
             "QuantizedCalloc is inference-only: retrain the fp32 CALLOC "
             "model and re-quantize");
}

std::vector<float> QuantizedCalloc::logits(const Tensor& x) {
  CAL_ENSURE(x.rank() == 2 && x.cols() == num_aps_,
             "QuantizedCalloc expects input (*, " << num_aps_ << "), got "
                                                  << x.shape_str());
  const std::size_t rows = x.rows();
  const std::size_t m = anchor_labels_.size();
  std::vector<std::int8_t> a8(rows * std::max({num_aps_, embed_dim_,
                                               attn_dim_, num_rps_}));
  std::vector<float> a_scales(rows);

  // relu(x·W_ec + b) — int8 GEMM, fp32 bias/activation.
  std::vector<float> h(rows * embed_dim_);
  kernels::quantize_rows(x.flat(), rows, num_aps_,
                std::span<std::int8_t>(a8.data(), rows * num_aps_), a_scales);
  kernels::gemm_s8_nn({a8.data(), rows * num_aps_}, w_embed_c_.data, h, rows,
                      num_aps_, embed_dim_, a_scales, w_embed_c_.scales);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < embed_dim_; ++j) {
      float& v = h[i * embed_dim_ + j];
      v = std::max(v + b_embed_c_[j], 0.0F);
    }

  // q = l2norm(h·W_q + b − center)
  std::vector<float> q(rows * attn_dim_);
  kernels::quantize_rows(h, rows, embed_dim_,
                std::span<std::int8_t>(a8.data(), rows * embed_dim_),
                a_scales);
  kernels::gemm_s8_nn({a8.data(), rows * embed_dim_}, w_q_.data, q, rows,
                      embed_dim_, attn_dim_, a_scales, w_q_.scales);
  for (std::size_t i = 0; i < rows; ++i) {
    float* row = q.data() + i * attn_dim_;
    float sq = 0.0F;
    for (std::size_t j = 0; j < attn_dim_; ++j) {
      row[j] += b_q_[j] - center_[j];
      sq += row[j] * row[j];
    }
    const float inv = 1.0F / std::max(std::sqrt(sq), kNormEps);
    for (std::size_t j = 0; j < attn_dim_; ++j) row[j] *= inv;
  }

  // Attention over anchors: temperature-sharpened centered cosines.
  std::vector<float> scores(rows * m);
  kernels::quantize_rows(q, rows, attn_dim_,
                std::span<std::int8_t>(a8.data(), rows * attn_dim_),
                a_scales);
  kernels::gemm_s8_nt({a8.data(), rows * attn_dim_}, k_norm_.data, scores,
                      rows, attn_dim_, m, a_scales, k_norm_.scales);
  for (float& v : scores) v *= temperature_;
  softmax_rows_inplace(scores, rows, m);

  // weights·onehot = per-RP-label sum of attention mass (V is an
  // indicator matrix — no GEMM needed).
  std::vector<float> attended(rows * num_rps_, 0.0F);
  for (std::size_t i = 0; i < rows; ++i) {
    const float* srow = scores.data() + i * m;
    float* arow = attended.data() + i * num_rps_;
    for (std::size_t a = 0; a < m; ++a) arow[anchor_labels_[a]] += srow[a];
  }

  // Head logits.
  std::vector<float> out(rows * num_rps_);
  kernels::quantize_rows(attended, rows, num_rps_,
                std::span<std::int8_t>(a8.data(), rows * num_rps_), a_scales);
  kernels::gemm_s8_nn({a8.data(), rows * num_rps_}, w_head_.data, out, rows,
                      num_rps_, num_rps_, a_scales, w_head_.scales);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < num_rps_; ++j)
      out[i * num_rps_ + j] += b_head_[j];
  return out;
}

std::vector<std::size_t> QuantizedCalloc::predict(const Tensor& x) {
  const std::vector<float> out = logits(x);
  const std::size_t rows = x.rows();
  std::vector<std::size_t> pred(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const float* row = out.data() + i * num_rps_;
    std::size_t best = 0;
    for (std::size_t j = 1; j < num_rps_; ++j)
      if (row[j] > row[best]) best = j;
    pred[i] = best;
  }
  return pred;
}

std::string QuantizedCalloc::name() const { return "CALLOC-int8"; }

std::size_t QuantizedCalloc::weight_bytes() const {
  return w_embed_c_.bytes() + w_q_.bytes() + k_norm_.bytes() +
         w_head_.bytes() +
         (b_embed_c_.size() + b_q_.size() + center_.size() + b_head_.size() +
          1 /*temperature*/) *
             sizeof(float) +
         anchor_labels_.size() * sizeof(std::size_t);
}

}  // namespace cal::core
