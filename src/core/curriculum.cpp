#include "core/curriculum.hpp"

#include "common/ensure.hpp"

namespace cal::core {

CurriculumSchedule::CurriculumSchedule(std::vector<Lesson> lessons)
    : lessons_(std::move(lessons)) {
  CAL_ENSURE(!lessons_.empty(), "curriculum needs at least one lesson");
  for (std::size_t i = 0; i < lessons_.size(); ++i) {
    const Lesson& l = lessons_[i];
    CAL_ENSURE(l.phi_percent >= 0.0 && l.phi_percent <= 100.0,
               "lesson ø out of [0,100]: " << l.phi_percent);
    CAL_ENSURE(l.epsilon >= 0.0 && l.epsilon <= 1.0,
               "lesson ϵ out of [0,1]: " << l.epsilon);
    CAL_ENSURE(l.adversarial_fraction >= 0.0 &&
                   l.adversarial_fraction <= 1.0,
               "lesson adversarial fraction out of [0,1]");
    if (i > 0)
      CAL_ENSURE(l.phi_percent >= lessons_[i - 1].phi_percent,
                 "curriculum ø must be non-decreasing (lesson " << i + 1
                                                                << ")");
  }
}

CurriculumSchedule CurriculumSchedule::standard(
    std::size_t num_lessons, double epsilon,
    double max_adversarial_fraction) {
  CAL_ENSURE(num_lessons >= 2, "standard curriculum needs >= 2 lessons");
  std::vector<Lesson> lessons;
  lessons.reserve(num_lessons);
  for (std::size_t i = 0; i < num_lessons; ++i) {
    Lesson l;
    l.index = i + 1;
    const double t =
        static_cast<double>(i) / static_cast<double>(num_lessons - 1);
    l.phi_percent = 100.0 * t;           // lesson 1: 0, final lesson: 100
    l.epsilon = (i == 0) ? 0.0 : epsilon;
    l.adversarial_fraction = max_adversarial_fraction * t;
    lessons.push_back(l);
  }
  return CurriculumSchedule(std::move(lessons));
}

CurriculumSchedule CurriculumSchedule::no_curriculum(
    double epsilon, double max_adversarial_fraction) {
  Lesson l;
  l.index = 1;
  l.phi_percent = 100.0;
  l.epsilon = epsilon;
  l.adversarial_fraction = max_adversarial_fraction;
  return CurriculumSchedule({l});
}

}  // namespace cal::core
