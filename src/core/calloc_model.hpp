// The CALLOC neural architecture (paper §IV.B/§IV.C, Fig. 3).
//
// Two embedding networks map RSS fingerprints into 128-dimensional
// "hyperspaces":
//   * H_C — the curriculum branch, applied to the (possibly adversarial)
//     lesson batch; feeds the attention Query.
//   * H_O — the original-data branch, with Dropout(0.2) and
//     GaussianNoise(0.32) to emulate environmental/device variation;
//     feeds the attention Key.
// The attention Value carries RP locations. Concretely: the model keeps an
// *anchor set* — one clean fingerprint per RP (the offline database) — so
// at inference the unknown fingerprint attends over the anchor RPs and the
// attention output is a location-aware mixture of RP indicators, which the
// final fully-connected layer classifies. This is the only reading of
// eq. (3) that is well-defined in the online phase, where just one
// fingerprint is available: Q comes from the query, K/V from the stored
// database.
//
// Learned Q/K projections (128 -> attention_dim) give the attention layer
// its trainable parameters (the paper reports 18,961 of them; see
// EXPERIMENTS.md for the parameter audit of this configuration).
#pragma once

#include <memory>

#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "nn/regularizers.hpp"

namespace cal::core {

struct CallocModelConfig {
  std::size_t num_aps = 0;       ///< input width (set from the dataset)
  std::size_t num_rps = 0;       ///< classes (set from the dataset)
  std::size_t embed_dim = 128;   ///< hyperspace width (paper: 128)
  std::size_t attention_dim = 64;///< Q/K projection width
  /// H_O augmentation, applied to the *original-data batch input*
  /// (normalised RSS) in the hyperspace-alignment branch: dropout
  /// emulates APs vanishing from a scan, Gaussian noise emulates dBm
  /// jitter from environment/device variation — the phenomena §IV.B says
  /// these layers simulate. The paper's 0.2/0.32 values target its
  /// (unreported) activation scale; on the [0,1] RSS scale the noise
  /// equivalent is ~0.05 (≈5 dB). See DESIGN.md §6.
  float dropout_rate = 0.2F;
  float noise_sigma = 0.05F;
  /// Initial attention temperature. Q/K rows are centered and
  /// L2-normalised, so raw scores are cosines in [-1,1]; a learnable
  /// temperature (which absorbs the paper's 1/sqrt(d_k) scaling) sharpens
  /// the anchor softmax enough for gradients to flow from the first
  /// epoch. See DESIGN.md §6.
  float initial_temperature = 12.0F;
  /// The attention output is already a distribution over RP classes, so
  /// the final FC layer starts at gain·I + Xavier noise: it passes the
  /// attention verdict through at full logit scale from epoch 0 and only
  /// has to learn corrections. A plain Xavier head would need thousands
  /// of optimiser steps just to grow its diagonal.
  float head_identity_gain = 8.0F;
  std::uint64_t seed = 51;
};

/// Dual-hyperspace scaled-dot-product-attention classifier.
class CallocModel : public nn::Module {
 public:
  explicit CallocModel(CallocModelConfig cfg);

  /// Install the anchor set: one (or more) clean fingerprints per RP with
  /// their labels. Must be called before forward().
  void set_anchors(const Tensor& anchor_x_normalized,
                   std::span<const std::size_t> anchor_labels);

  /// Logits over RP classes for a normalised fingerprint batch.
  autograd::Var forward(const autograd::Var& x) override;

  /// Curriculum hyperspace H_C of a batch (B x embed_dim).
  autograd::Var hyperspace_curriculum(const autograd::Var& x);

  /// Original-data hyperspace H_O of a batch (B x embed_dim); applies
  /// dropout + Gaussian noise in training mode.
  autograd::Var hyperspace_original(const autograd::Var& x);

  /// Anchor attention distribution for a batch (B x num_anchors), in the
  /// current training/eval mode. Interpretability hook: row i shows which
  /// database fingerprints the model consulted for sample i.
  Tensor attention_weights(const Tensor& x_normalized);

  std::vector<nn::Parameter> parameters() override;
  void set_training(bool training) override;

  const CallocModelConfig& config() const { return cfg_; }
  bool has_anchors() const { return anchors_ != nullptr; }
  std::size_t num_anchors() const;

  /// The installed anchor database (M x num_aps, normalised) — the clean
  /// fingerprint manifold the serving layer screens requests against.
  const Tensor& anchor_matrix() const;

  /// RP label of each anchor row (size == num_anchors()).
  std::span<const std::size_t> anchor_labels() const;

  /// Shard-scoped copy of selected anchor rows — the per-shard anchor
  /// database a multi-tenant deployment hands to each serving lane (e.g.
  /// one floor's anchors out of a building-wide model), so screening
  /// scans only that shard's manifold.
  Tensor anchor_rows(std::span<const std::size_t> rows) const;

  /// Parameter-count breakdown mirroring the paper's §V.A audit.
  std::size_t embedding_parameter_count();
  std::size_t attention_parameter_count();
  std::size_t classifier_parameter_count();

  /// Layer access for the int8 quantizer (core/calloc_quant.cpp), which
  /// snapshots trained weights into a quantized inference copy.
  nn::Linear& embed_c_layer() { return *embed_c_; }
  nn::Linear& embed_o_layer() { return *embed_o_; }
  nn::Linear& attn_wq_layer() { return *w_q_; }
  nn::Linear& attn_wk_layer() { return *w_k_; }
  nn::Linear& head_layer() { return *head_; }
  float temperature() const { return temperature_->value()[0]; }

 private:
  autograd::Var attention_distribution(const autograd::Var& x);
  autograd::Var embed_original_clean(const autograd::Var& x);

  CallocModelConfig cfg_;
  std::unique_ptr<nn::Linear> embed_c_;
  std::unique_ptr<nn::Linear> embed_o_;
  std::unique_ptr<nn::Dropout> dropout_o_;
  std::unique_ptr<nn::GaussianNoise> noise_o_;
  std::unique_ptr<nn::Linear> w_q_;
  std::unique_ptr<nn::Linear> w_k_;
  autograd::Var temperature_;  // learnable scalar attention sharpness
  std::unique_ptr<nn::Linear> head_;
  autograd::Var anchors_;        // constant (M x num_aps)
  autograd::Var anchor_onehot_;  // constant (M x num_rps) — the V input
  std::vector<std::size_t> anchor_labels_;  // RP label per anchor row
};

}  // namespace cal::core
