#include "core/calloc.hpp"

#include <fstream>
#include <numeric>

#include "autograd/ops.hpp"
#include "common/ensure.hpp"
#include "core/calloc_quant.hpp"
#include "nn/trainer.hpp"

namespace cal::core {

Tensor build_anchor_database(const data::FingerprintDataset& train) {
  Tensor anchors = train.mean_fingerprint_per_rp();
  for (std::size_t i = 0; i < anchors.size(); ++i)
    anchors[i] = data::normalize_rss(anchors[i]);
  return anchors;
}

namespace {

/// Shared by fit() and load_weights(): size the model to the dataset and
/// install the per-RP mean-fingerprint anchor database.
std::unique_ptr<CallocModel> build_model_for(
    const data::FingerprintDataset& train, CallocModelConfig mc,
    std::uint64_t seed) {
  mc.num_aps = train.num_aps();
  mc.num_rps = train.num_rps();
  mc.seed = seed;
  auto model = std::make_unique<CallocModel>(mc);
  Tensor anchors = build_anchor_database(train);
  std::vector<std::size_t> anchor_labels(train.num_rps());
  std::iota(anchor_labels.begin(), anchor_labels.end(), 0);
  model->set_anchors(anchors, anchor_labels);
  return model;
}

}  // namespace

Calloc::Calloc(CallocConfig cfg) : cfg_(cfg) {
  CAL_ENSURE(cfg_.num_lessons >= 2, "CALLOC needs >= 2 lessons");
  CAL_ENSURE(cfg_.train_epsilon >= 0.0 && cfg_.train_epsilon <= 1.0,
             "train epsilon out of [0,1]");
}

void Calloc::fit(const data::FingerprintDataset& train) {
  CAL_ENSURE(train.num_samples() >= 4, "CALLOC fit needs >= 4 samples");
  model_ = build_model_for(train, cfg_.model, cfg_.seed);
  grads_ = std::make_unique<attacks::ModuleGradientSource>(*model_);

  const CurriculumSchedule schedule =
      cfg_.use_curriculum
          ? CurriculumSchedule::standard(cfg_.num_lessons, cfg_.train_epsilon,
                                         cfg_.max_adversarial_fraction)
          : CurriculumSchedule::no_curriculum(cfg_.train_epsilon,
                                              cfg_.max_adversarial_fraction);

  AdaptiveTrainConfig tc = cfg_.train;
  tc.seed = cfg_.seed ^ 0xCA110CULL;
  if (!cfg_.adaptive) tc.divergence_patience = 0;
  if (!cfg_.use_curriculum) {
    // Match the curriculum's total epoch budget so NC is a fair ablation
    // of ordering, not of compute.
    tc.max_epochs_per_lesson =
        cfg_.train.max_epochs_per_lesson * cfg_.num_lessons;
  }

  AdaptiveCurriculumTrainer trainer(tc);
  report_ = trainer.train(*model_, train.normalized(), train.labels(),
                          schedule);
}

std::vector<std::size_t> Calloc::predict(const Tensor& x) {
  CAL_ENSURE(model_ != nullptr, "CALLOC predict before fit");
  return autograd::argmax_rows(nn::predict_tensor(*model_, x));
}

std::string Calloc::name() const {
  return cfg_.use_curriculum ? "CALLOC" : "CALLOC-NC";
}

attacks::GradientSource* Calloc::gradient_source() {
  return grads_ ? grads_.get() : nullptr;
}

std::size_t Calloc::weight_bytes() const {
  if (!model_) return 0;
  std::size_t floats = 0;
  for (const auto& p : model_->parameters()) floats += p.var->value().size();
  // Anchor database + onehot V are part of the resident inference state.
  floats += model_->anchor_matrix().size();
  floats += model_->num_anchors() * model_->config().num_rps;
  return floats * sizeof(float);
}

std::unique_ptr<baselines::ILocalizer> Calloc::quantize_int8() {
  CAL_ENSURE(model_ != nullptr, "quantize_int8 before fit/load_weights");
  return std::make_unique<QuantizedCalloc>(*model_);
}

CallocModel& Calloc::model() {
  CAL_ENSURE(model_ != nullptr, "CALLOC model() before fit");
  return *model_;
}

void Calloc::save_weights(const std::string& path) {
  CAL_ENSURE(model_ != nullptr, "save_weights before fit");
  std::ofstream out(path, std::ios::binary);
  CAL_ENSURE(out.good(), "cannot open " << path << " for writing");
  model_->save_weights(out);
}

void Calloc::load_weights(const std::string& path,
                          const data::FingerprintDataset& train) {
  std::ifstream in(path, std::ios::binary);
  CAL_ENSURE(in.good(), "cannot open " << path << " for reading");
  model_ = build_model_for(train, cfg_.model, cfg_.seed);
  model_->load_weights(in);
  model_->set_training(false);
  grads_ = std::make_unique<attacks::ModuleGradientSource>(*model_);
}

const CurriculumReport& Calloc::report() const {
  CAL_ENSURE(report_.has_value(), "CALLOC report() before fit");
  return *report_;
}

}  // namespace cal::core
