// Public entry point of the CALLOC framework.
//
// Quickstart:
//   cal::core::Calloc model;                       // default configuration
//   model.fit(train_dataset);                      // offline phase
//   auto rps = model.predict(test.normalized());   // online phase
//
// fit() builds the anchor database (one mean clean fingerprint per RP),
// instantiates the hyperspace-attention model sized to the dataset, and
// runs the adaptive curriculum. Configuration switches expose the paper's
// ablations: use_curriculum=false gives the "NC" variant of Fig. 5 and
// adaptive=false freezes the ø schedule (static curriculum).
#pragma once

#include <memory>
#include <optional>

#include "baselines/localizer.hpp"
#include "core/adaptive_trainer.hpp"
#include "core/calloc_model.hpp"
#include "core/curriculum.hpp"

namespace cal::core {

/// The anchor database fit() installs: one per-RP mean clean fingerprint,
/// on the normalised [0,1] scale. Shared with the serving layer's
/// screening calibration so both always describe the same manifold.
Tensor build_anchor_database(const data::FingerprintDataset& train);

struct CallocConfig {
  /// Model shape; num_aps/num_rps are filled in by fit() from the data.
  CallocModelConfig model;
  /// Curriculum shape (paper defaults: 10 lessons, ϵ = 0.1).
  std::size_t num_lessons = 10;
  double train_epsilon = 0.1;
  double max_adversarial_fraction = 0.9;
  /// Training controller.
  AdaptiveTrainConfig train;
  /// Fig. 5 "NC" ablation: single hardest-mix lesson, no progression.
  bool use_curriculum = true;
  /// §IV.D ablation: disable divergence-driven ø reduction.
  bool adaptive = true;
  std::uint64_t seed = 71;
};

/// CALLOC as an ILocalizer, interchangeable with every baseline.
class Calloc : public baselines::ILocalizer {
 public:
  explicit Calloc(CallocConfig cfg = CallocConfig{});

  void fit(const data::FingerprintDataset& train) override;
  std::vector<std::size_t> predict(const Tensor& x_normalized) override;
  std::string name() const override;
  attacks::GradientSource* gradient_source() override;
  std::size_t weight_bytes() const override;

  /// Snapshot the trained model into an int8 inference copy
  /// (core/calloc_quant.hpp) — what ModelRegistry::publish() calls for
  /// tenants deployed at Precision::Int8.
  std::unique_ptr<baselines::ILocalizer> quantize_int8() override;

  /// Trained model access (for footprint audits and weight IO).
  CallocModel& model();

  /// Persist the trained weights (deployment artefact, ~250 kB at paper
  /// scale). The dataset geometry (num_aps/num_rps) and anchors must be
  /// re-established via fit() or load_weights() on a matching dataset.
  void save_weights(const std::string& path);

  /// Restore weights saved by save_weights(). `train` must be the same
  /// (or an identically-shaped) dataset used for the original fit: it
  /// rebuilds the model geometry and the anchor database without
  /// re-running the curriculum.
  void load_weights(const std::string& path,
                    const data::FingerprintDataset& train);

  /// Curriculum outcome of the last fit().
  const CurriculumReport& report() const;

 private:
  CallocConfig cfg_;
  std::unique_ptr<CallocModel> model_;
  std::unique_ptr<attacks::ModuleGradientSource> grads_;
  std::optional<CurriculumReport> report_;
};

}  // namespace cal::core
