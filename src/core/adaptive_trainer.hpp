// Adaptive curriculum training controller (paper §IV.A + §IV.D).
//
// Per lesson:
//   1. Generate lesson data: an ø%-AP FGSM perturbation (crafted against
//      the *current* model, ϵ fixed at the lesson value) of a growing
//      fraction of the training set; the rest stays original.
//   2. Train, monitoring the validation loss of the final FC layer.
//      The batch loss is CE(logits(lesson batch), y) + λ·MSE(H_C(lesson
//      batch), H_O(clean batch)) — the hyperspace-alignment term the paper
//      attaches to both embedding networks.
//   3. Divergence (validation loss rising for `divergence_patience`
//      consecutive epochs): revert to the best weights, reduce ø by
//      `phi_reduction_step` (= 2, per §IV.D), regenerate lesson data and
//      continue. Recovery advances to the next lesson.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/calloc_model.hpp"
#include "core/curriculum.hpp"
#include "tensor/tensor.hpp"

namespace cal::core {

struct AdaptiveTrainConfig {
  std::size_t max_epochs_per_lesson = 18;
  std::size_t batch_size = 32;
  float learning_rate = 2e-3F;
  /// Multiplicative learning-rate decay applied at each lesson boundary:
  /// late lessons fine-tune on the hardest adversarial mixtures, where a
  /// full-rate Adam step oscillates between successive re-crafted attacks.
  float lr_decay_per_lesson = 0.85F;
  double validation_fraction = 0.15;
  /// Consecutive epochs of rising validation loss that count as
  /// divergence. 0 disables adaptation (static curriculum ablation).
  std::size_t divergence_patience = 2;
  /// ø reduction applied on divergence (paper: steps of two).
  double phi_reduction_step = 2.0;
  std::size_t max_adaptations_per_lesson = 4;
  /// λ weight of the hyperspace-alignment MSE term. The MSE acts on
  /// ReLU activations of ~0.1 scale, so a weight well above 1 is needed
  /// for the alignment to register against the cross-entropy term
  /// (ablated in bench_ablation_design).
  float hyperspace_loss_weight = 2.0F;
  /// Early-stop a lesson after this many epochs without improvement.
  std::size_t early_stop_patience = 6;
  std::uint64_t seed = 61;
  bool verbose = false;
};

/// Outcome of one lesson.
struct LessonReport {
  std::size_t lesson_index = 0;
  double phi_requested = 0.0;
  double phi_trained = 0.0;  ///< after any adaptive reductions
  std::size_t epochs_run = 0;
  std::size_t adaptations = 0;
  double best_val_loss = 0.0;
};

/// Outcome of the full curriculum.
struct CurriculumReport {
  std::vector<LessonReport> lessons;
  std::size_t total_epochs = 0;
  double final_val_loss = 0.0;
};

/// Drives a CallocModel through a CurriculumSchedule.
class AdaptiveCurriculumTrainer {
 public:
  explicit AdaptiveCurriculumTrainer(AdaptiveTrainConfig cfg);

  /// Train on normalised fingerprints `x` with RP labels `y`.
  /// The model must already have its anchor set installed.
  CurriculumReport train(CallocModel& model, const Tensor& x,
                         std::span<const std::size_t> y,
                         const CurriculumSchedule& schedule);

 private:
  AdaptiveTrainConfig cfg_;
};

}  // namespace cal::core
