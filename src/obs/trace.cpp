#include "obs/trace.hpp"

#include <bit>

namespace cal::obs {
namespace {

constexpr std::uint64_t kTsMask = (std::uint64_t{1} << 56) - 1;

thread_local std::shared_ptr<void> tl_ring;  // keeps this thread's Ring alive

}  // namespace

const char* to_string(EventType t) {
  switch (t) {
    case EventType::Admit: return "admit";
    case EventType::Deny: return "deny";
    case EventType::Enqueue: return "enqueue";
    case EventType::BatchClaim: return "batch_claim";
    case EventType::ReplicaCheckout: return "replica_checkout";
    case EventType::Screen: return "screen";
    case EventType::CacheHit: return "cache_hit";
    case EventType::Predict: return "predict";
    case EventType::Complete: return "complete";
    case EventType::DriftFlush: return "drift_flush";
    case EventType::Deploy: return "deploy";
    case EventType::Anomaly: return "anomaly";
    case EventType::Expire: return "expire";
    case EventType::Fault: return "fault";
    case EventType::Quarantine: return "quarantine";
    case EventType::Breaker: return "breaker";
  }
  return "?";
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

Tracer::Ring& Tracer::ring_for_this_thread() {
  if (tl_ring == nullptr) {
    MutexLock lock(reg_mu_);
    auto ring = std::make_shared<Ring>(next_thread_id_++);
    rings_.push_back(ring);
    tl_ring = std::move(ring);
  }
  return *static_cast<Ring*>(tl_ring.get());
}

void Tracer::record(EventType type, std::uint64_t tenant,
                    std::uint64_t epoch, std::uint64_t batch, double value) {
  Ring& ring = ring_for_this_thread();
  const std::uint64_t ts =
      (now_ns() & kTsMask) |
      (static_cast<std::uint64_t>(type) << 56);
  const std::uint64_t idx = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[idx % kRingCapacity];
  // Per-slot seqlock, single writer (this thread). The odd store is
  // release-fenced BEFORE the payload so a reader can never pair a stale
  // even sequence with fresh payload words; the even store releases the
  // payload. Every access is an atomic — no UB, TSan-clean.
  slot.seq.store(idx * 2 + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.word[0].store(ts, std::memory_order_relaxed);
  slot.word[1].store(tenant, std::memory_order_relaxed);
  slot.word[2].store(epoch, std::memory_order_relaxed);
  slot.word[3].store(batch, std::memory_order_relaxed);
  slot.word[4].store(std::bit_cast<std::uint64_t>(value),
                     std::memory_order_relaxed);
  slot.seq.store(idx * 2 + 2, std::memory_order_release);
  ring.head.store(idx + 1, std::memory_order_release);
}

void Tracer::read_ring(const Ring& ring, std::size_t last_n,
                       ThreadTrace& out) {
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  out.thread_id = ring.thread_id;
  out.recorded = head;
  out.dropped = head > kRingCapacity ? head - kRingCapacity : 0;
  std::uint64_t lo = out.dropped;  // oldest event index still in the ring
  if (last_n > 0 && head - lo > last_n) lo = head - last_n;
  out.events.reserve(static_cast<std::size_t>(head - lo));
  for (std::uint64_t idx = lo; idx < head; ++idx) {
    const Slot& slot = ring.slots[idx % kRingCapacity];
    const std::uint64_t want = idx * 2 + 2;
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    // A concurrent writer lapped this slot (or is inside it): the event
    // is gone — count it dropped rather than retrying into a spin.
    if (s1 != want) {
      ++out.dropped;
      continue;
    }
    std::array<std::uint64_t, 5> w{};
    for (std::size_t i = 0; i < w.size(); ++i)
      w[i] = slot.word[i].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) {
      ++out.dropped;
      continue;
    }
    TraceEvent ev;
    ev.ts_ns = w[0] & kTsMask;
    ev.type = static_cast<EventType>(w[0] >> 56);
    ev.tenant = w[1];
    ev.epoch = w[2];
    ev.batch = w[3];
    ev.value = std::bit_cast<double>(w[4]);
    out.events.push_back(ev);
  }
}

std::vector<ThreadTrace> Tracer::snapshot(std::size_t last_n) const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    MutexLock lock(reg_mu_);
    rings = rings_;
  }
  std::vector<ThreadTrace> out;
  out.reserve(rings.size());
  for (const auto& ring : rings) {
    ThreadTrace t;
    read_ring(*ring, last_n, t);
    out.push_back(std::move(t));
  }
  return out;
}

Tracer::Totals Tracer::totals() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    MutexLock lock(reg_mu_);
    rings = rings_;
  }
  Totals t;
  t.threads = rings.size();
  for (const auto& ring : rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    t.recorded += head;
    t.dropped += head > kRingCapacity ? head - kRingCapacity : 0;
  }
  return t;
}

}  // namespace cal::obs
