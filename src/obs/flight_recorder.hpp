// Flight recorder: freeze-and-dump of the tracer's recent history when an
// anomaly trips.
//
// The tracer's rings are always running; the recorder is the policy layer
// that decides when their contents are worth keeping. trip() takes an
// immutable copy of the newest last_n events of every thread (the
// "freeze" — rings keep recording, the dump can't be overwritten), stores
// it for programmatic retrieval, and emits a machine-parseable structured
// log line (plus optional per-event lines) so an operator tailing stderr
// sees WHAT tripped and the timeline that led up to it.
//
// Engine wiring (serve/engine.cpp) trips on: per-tenant p99 breach,
// queue-full bursts, drift-triggered cache flushes, and (optionally)
// deploys — see ObsConfig. Trips are rate-limited: a p99 breach that
// stays breached must not turn the log into a firehose.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/hot_path_annotations.hpp"
#include "common/log.hpp"
#include "common/thread_annotations.hpp"
#include "obs/trace.hpp"

namespace cal::obs {

struct FlightRecorderConfig {
  /// Newest events per thread captured by a dump (0 = the whole ring).
  std::size_t last_n = 256;
  /// Minimum nanoseconds between dumps; trips inside the window are
  /// counted but do not dump. 0 = every trip dumps.
  std::uint64_t min_interval_ns = 0;
  /// Also emit one Debug-level structured line per captured event (the
  /// header line is always emitted at Warn). Off by default: a dump can
  /// hold thousands of events.
  bool log_events = false;
};

/// One frozen capture.
struct FlightDump {
  std::string reason;
  std::uint64_t trip_ns = 0;  ///< tracer clock at trip time
  std::vector<ThreadTrace> threads;

  std::size_t total_events() const;
};

/// Thread-safe. One per engine; trips snapshot the process-wide tracer.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig cfg = {});

  /// Record an anomaly. Returns true when a dump was taken (false while
  /// rate-limited). `fields` are appended to the structured header line —
  /// pass the numbers that justify the trip (observed p99, threshold...).
  // Audited: trip() is called from hot-path roots (submit, process) but
  // is rate-limited by min_interval and deliberately synchronous — the
  // whole point of an anomaly dump is that it is on disk before the
  // process degrades further. The snapshot allocation and stderr write
  // are bounded by the rate limit; bench_serve_chaos gates the cost.
  CAL_LINT_SUPPRESS(block, "rate-limited anomaly dump is synchronous by design")
  bool trip(std::string_view reason, std::span<const LogField> fields = {})
      CAL_EXCLUDES(mu_);
  CAL_LINT_SUPPRESS(block, "rate-limited anomaly dump is synchronous by design")
  bool trip(std::string_view reason, std::initializer_list<LogField> fields)
      CAL_EXCLUDES(mu_) {
    return trip(reason,
                std::span<const LogField>(fields.begin(), fields.size()));
  }

  std::size_t trips() const CAL_EXCLUDES(mu_);
  std::size_t dumps() const CAL_EXCLUDES(mu_);
  /// The most recent frozen capture, if any trip has dumped.
  std::optional<FlightDump> last_dump() const CAL_EXCLUDES(mu_);

 private:
  const FlightRecorderConfig cfg_;
  mutable Mutex mu_;
  std::size_t trips_ CAL_GUARDED_BY(mu_) = 0;
  std::size_t dumps_ CAL_GUARDED_BY(mu_) = 0;
  std::uint64_t last_dump_ns_ CAL_GUARDED_BY(mu_) = 0;
  std::optional<FlightDump> dump_ CAL_GUARDED_BY(mu_);
};

}  // namespace cal::obs
