#include "obs/metrics.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace cal::obs {
namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (std::isalpha(static_cast<unsigned char>(c)) != 0) ||
                       c == '_' || c == ':';
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (i == 0 ? !alpha : !(alpha || digit)) return false;
  }
  return true;
}

bool valid_label_key(const std::string& key) {
  if (key.empty()) return false;
  for (std::size_t i = 0; i < key.size(); ++i) {
    const char c = key[i];
    const bool alpha =
        (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_';
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (i == 0 ? !alpha : !(alpha || digit)) return false;
  }
  return true;
}

void validate_labels(const std::string& name,
                     const std::vector<MetricLabel>& labels) {
  for (const MetricLabel& l : labels) {
    if (!valid_label_key(l.key))
      throw std::invalid_argument("metric " + name + ": bad label key '" +
                                  l.key + "'");
  }
}

/// Prometheus number formatting: shortest round-trip-ish decimal, +Inf
/// spelled the way scrapers expect.
std::string format_number(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Escaping for label values (text format): \\ -> \\\\, " -> \\", newline
/// -> \\n.
void append_escaped_label(std::string& out, const std::string& v) {
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// Escaping for HELP text: only backslash and newline.
void append_escaped_help(std::string& out, const std::string& v) {
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_json_string(std::string& out, const std::string& v) {
  out += '"';
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string json_number(double v) {
  // JSON has no Inf/NaN; exports clamp them to null.
  if (!std::isfinite(v)) return "null";
  return format_number(v);
}

/// `name{k1="v1",k2="v2"}` with optional extra label (used for `le`).
void append_sample_name(std::string& out, const std::string& name,
                        const std::vector<MetricLabel>& labels,
                        const MetricLabel* extra = nullptr) {
  out += name;
  if (labels.empty() && extra == nullptr) return;
  out += '{';
  bool first = true;
  for (const MetricLabel& l : labels) {
    if (!first) out += ',';
    first = false;
    out += l.key;
    out += "=\"";
    append_escaped_label(out, l.value);
    out += '"';
  }
  if (extra != nullptr) {
    if (!first) out += ',';
    out += extra->key;
    out += "=\"";
    append_escaped_label(out, extra->value);
    out += '"';
  }
  out += '}';
}

}  // namespace

const char* to_string(MetricType t) {
  switch (t) {
    case MetricType::Counter: return "counter";
    case MetricType::Gauge: return "gauge";
    case MetricType::Histogram: return "histogram";
  }
  return "?";
}

MetricFamily& MetricsRegistry::family(const std::string& name,
                                      const std::string& help,
                                      MetricType type) {
  if (!valid_metric_name(name))
    throw std::invalid_argument("bad metric name '" + name + "'");
  for (MetricFamily& f : families_) {
    if (f.name != name) continue;
    if (f.type != type)
      throw std::invalid_argument("metric " + name +
                                  " re-registered with a different type");
    if (f.help != help)
      throw std::invalid_argument("metric " + name +
                                  " re-registered with different help text");
    return f;
  }
  MetricFamily f;
  f.name = name;
  f.help = help;
  f.type = type;
  families_.push_back(std::move(f));
  return families_.back();
}

void MetricsRegistry::add_counter(const std::string& name,
                                  const std::string& help,
                                  std::vector<MetricLabel> labels,
                                  double value) {
  validate_labels(name, labels);
  MetricFamily& f = family(name, help, MetricType::Counter);
  MetricSample s;
  s.labels = std::move(labels);
  s.value = value;
  f.samples.push_back(std::move(s));
}

void MetricsRegistry::add_gauge(const std::string& name,
                                const std::string& help,
                                std::vector<MetricLabel> labels,
                                double value) {
  validate_labels(name, labels);
  MetricFamily& f = family(name, help, MetricType::Gauge);
  MetricSample s;
  s.labels = std::move(labels);
  s.value = value;
  f.samples.push_back(std::move(s));
}

void MetricsRegistry::add_histogram(const std::string& name,
                                    const std::string& help,
                                    std::vector<MetricLabel> labels,
                                    const Histogram& hist) {
  validate_labels(name, labels);
  MetricFamily& f = family(name, help, MetricType::Histogram);
  MetricSample s;
  s.labels = std::move(labels);
  s.hist = hist;
  f.samples.push_back(std::move(s));
}

const MetricSample* MetricsRegistry::find(
    const std::string& name, const std::vector<MetricLabel>& labels) const {
  for (const MetricFamily& f : families_) {
    if (f.name != name) continue;
    for (const MetricSample& s : f.samples) {
      bool all = true;
      for (const MetricLabel& want : labels) {
        bool found = false;
        for (const MetricLabel& have : s.labels)
          if (have.key == want.key && have.value == want.value) {
            found = true;
            break;
          }
        if (!found) {
          all = false;
          break;
        }
      }
      if (all) return &s;
    }
  }
  return nullptr;
}

std::string MetricsRegistry::prometheus_text() const {
  std::string out;
  out.reserve(4096);
  for (const MetricFamily& f : families_) {
    out += "# HELP ";
    out += f.name;
    out += ' ';
    append_escaped_help(out, f.help);
    out += '\n';
    out += "# TYPE ";
    out += f.name;
    out += ' ';
    out += to_string(f.type);
    out += '\n';
    for (const MetricSample& s : f.samples) {
      if (f.type != MetricType::Histogram) {
        append_sample_name(out, f.name, s.labels);
        out += ' ';
        out += format_number(s.value);
        out += '\n';
        continue;
      }
      // Cumulative le-buckets from the histogram's populated buckets,
      // then the mandatory +Inf bucket, _sum and _count.
      std::uint64_t cumulative = 0;
      for (const Histogram::Bucket& b : s.hist.nonzero_buckets()) {
        cumulative += b.count;
        MetricLabel le{"le", format_number(b.upper)};
        append_sample_name(out, f.name + "_bucket", s.labels, &le);
        out += ' ';
        out += format_number(static_cast<double>(cumulative));
        out += '\n';
      }
      MetricLabel inf{"le", "+Inf"};
      append_sample_name(out, f.name + "_bucket", s.labels, &inf);
      out += ' ';
      out += format_number(static_cast<double>(s.hist.count()));
      out += '\n';
      append_sample_name(out, f.name + "_sum", s.labels);
      out += ' ';
      out += format_number(s.hist.sum());
      out += '\n';
      append_sample_name(out, f.name + "_count", s.labels);
      out += ' ';
      out += format_number(static_cast<double>(s.hist.count()));
      out += '\n';
    }
  }
  return out;
}

std::string MetricsRegistry::json() const {
  std::string out;
  out.reserve(4096);
  out += "{\"families\":[";
  bool first_family = true;
  for (const MetricFamily& f : families_) {
    if (!first_family) out += ',';
    first_family = false;
    out += "{\"name\":";
    append_json_string(out, f.name);
    out += ",\"type\":";
    append_json_string(out, to_string(f.type));
    out += ",\"help\":";
    append_json_string(out, f.help);
    out += ",\"samples\":[";
    bool first_sample = true;
    for (const MetricSample& s : f.samples) {
      if (!first_sample) out += ',';
      first_sample = false;
      out += "{\"labels\":{";
      bool first_label = true;
      for (const MetricLabel& l : s.labels) {
        if (!first_label) out += ',';
        first_label = false;
        append_json_string(out, l.key);
        out += ':';
        append_json_string(out, l.value);
      }
      out += '}';
      if (f.type != MetricType::Histogram) {
        out += ",\"value\":";
        out += json_number(s.value);
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(s.hist.count()));
        out += ",\"count\":";
        out += buf;
        out += ",\"sum\":";
        out += json_number(s.hist.sum());
        out += ",\"p50\":";
        out += json_number(s.hist.quantile(0.50));
        out += ",\"p95\":";
        out += json_number(s.hist.quantile(0.95));
        out += ",\"p99\":";
        out += json_number(s.hist.quantile(0.99));
        out += ",\"buckets\":[";
        bool first_bucket = true;
        for (const Histogram::Bucket& b : s.hist.nonzero_buckets()) {
          if (!first_bucket) out += ',';
          first_bucket = false;
          out += "{\"le\":";
          out += json_number(b.upper);
          out += ",\"count\":";
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(b.count));
          out += buf;
          out += '}';
        }
        out += ']';
      }
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace cal::obs
