// Flight-recorder tracing: lock-free per-thread ring buffers of typed
// span events across the request lifecycle.
//
//   submit ──▶ Admit / Deny ──▶ Enqueue ──▶ BatchClaim ──▶
//   ReplicaCheckout ──▶ Screen / CacheHit ──▶ Predict ──▶ Complete
//
// Every event is stamped with monotonic time (ns since tracer start), the
// tenant key hash, the deployment epoch it executed under, and the
// micro-batch id, so a dump reconstructs per-request timelines across
// threads and across a mid-stream deploy().
//
// Concurrency model: each thread records into its OWN fixed-size ring —
// recording takes no lock and allocates nothing after the thread's first
// event (one registry insertion). A ring slot is a per-slot seqlock over
// relaxed-atomic words: the writer brackets its payload stores between an
// odd and an even sequence store (release-fenced), and a snapshotting
// reader accepts a slot only when the sequence reads identically even on
// both sides of its payload loads — torn events are impossible to
// observe, and every access is an atomic, so the scheme is exactly as
// clean under ThreadSanitizer as it is in the C++ memory model. Rings
// overwrite oldest-first; dropped counts are reported, never hidden.
//
// Kill switch: the CAL_TRACE_EVENT macro is the ONLY sanctioned record
// entry point in instrumented code. Compiled with CALLOC_TRACING_DISABLED
// (CMake -DCALLOC_TRACING=OFF) it expands to nothing — its arguments are
// never evaluated, proven by a negative-compile CI check — and with
// tracing compiled in, a false Tracer::set_enabled() reduces each site to
// one relaxed atomic load.
#pragma once

#include <atomic>
#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/hot_path_annotations.hpp"
#include "common/thread_annotations.hpp"

namespace cal::obs {

/// Typed span events of the request lifecycle, plus the control-plane
/// events (deploy, drift, anomaly) a flight recorder needs for context.
enum class EventType : std::uint8_t {
  Admit = 0,        ///< submit() accepted; value = route status
  Deny,             ///< submit() denied; value = admission outcome code
  Enqueue,          ///< pushed to the tenant sub-queue; value = unused
  BatchClaim,       ///< worker claimed a micro-batch; value = batch size
  ReplicaCheckout,  ///< replica slot checked out; value = slot index
  Screen,           ///< anchor screen ran; value = anchor distance
  CacheHit,         ///< served from the LRU; value = 1 audit, 0 plain
  Predict,          ///< batched forward pass; value = rows inferred
  Complete,         ///< promise fulfilled; value = latency_ms
  DriftFlush,       ///< drift trend tripped a cache flush; value = unused
  Deploy,           ///< snapshot swap; value = requests dropped by it
  Anomaly,          ///< flight-recorder trip marker; value = unused
  Expire,           ///< deadline shed at dequeue; value = requests shed
  Fault,            ///< replica predict threw; value = rows faulted
  Quarantine,       ///< replica slot retired; value = slot index
  Breaker,          ///< circuit-breaker transition; value = transition code
};

const char* to_string(EventType t);

/// One decoded ring entry.
struct TraceEvent {
  std::uint64_t ts_ns = 0;   ///< monotonic, since Tracer construction
  EventType type = EventType::Admit;
  std::uint64_t tenant = 0;  ///< TenantKeyHash of the resolved tenant
  std::uint64_t epoch = 0;   ///< deployment epoch the event ran under
  std::uint64_t batch = 0;   ///< micro-batch id; 0 = not in a batch
  double value = 0.0;        ///< type-specific payload (see EventType)
};

/// One thread's ring contents at snapshot time.
struct ThreadTrace {
  std::uint64_t thread_id = 0;  ///< tracer-assigned, stable per thread
  std::uint64_t recorded = 0;   ///< events this thread ever recorded
  std::uint64_t dropped = 0;    ///< overwritten before this snapshot
  std::vector<TraceEvent> events;  ///< oldest -> newest, never torn
};

#if defined(CALLOC_TRACING_DISABLED)
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

/// Process-wide tracer. One instance: per-thread rings are thread_local
/// and a ring must outlive both its thread (so the flight recorder can
/// dump a finished worker's last events) and any engine instance.
class Tracer {
 public:
  /// Events retained per thread (power of two). ~48 KB per ring.
  static constexpr std::size_t kRingCapacity = 1024;

  static Tracer& instance();

  /// Runtime kill switch (default on). When off, CAL_TRACE_EVENT costs
  /// one relaxed atomic load per site.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Record one event into the calling thread's ring. Lock-free and
  /// allocation-free after the thread's first call. Prefer the
  /// CAL_TRACE_EVENT macro, which compiles out entirely.
  CAL_HOT_PATH CAL_NONBLOCKING CAL_NOALLOC
  void record(EventType type, std::uint64_t tenant, std::uint64_t epoch,
              std::uint64_t batch, double value);

  /// Copy every registered thread's ring: at most the newest `last_n`
  /// events per thread (0 = the whole ring). Safe to call concurrently
  /// with writers; slots mid-overwrite are skipped, not torn.
  std::vector<ThreadTrace> snapshot(std::size_t last_n = 0) const
      CAL_EXCLUDES(reg_mu_);

  struct Totals {
    std::uint64_t threads = 0;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
  };
  Totals totals() const CAL_EXCLUDES(reg_mu_);

  /// Monotonic nanoseconds on the tracer clock (event timestamp domain).
  std::uint64_t now_ns() const;

 private:
  struct Slot {
    /// Stable value for the slot last written by event #i is 2i+2 (0 =
    /// never written); odd while the writer is inside. Payload words:
    /// [ts | type<<56, tenant, epoch, batch, bit_cast(value)].
    std::atomic<std::uint64_t> seq{0};
    std::array<std::atomic<std::uint64_t>, 5> word{};
  };

  struct Ring {
    explicit Ring(std::uint64_t id) : thread_id(id) {}
    std::uint64_t thread_id;
    std::atomic<std::uint64_t> head{0};  ///< events ever recorded
    std::array<Slot, kRingCapacity> slots{};
  };

  Tracer() : t0_(std::chrono::steady_clock::now()) {}

  // Audited: the FIRST record() on a thread allocates its ring and takes
  // reg_mu_ to register it; every later call is one thread_local read.
  // The steady-state record() path stays lock- and allocation-free.
  CAL_LINT_SUPPRESS(alloc, "one-time per-thread ring registration")
  CAL_LINT_SUPPRESS(block, "registry mutex only on a thread's first event")
  Ring& ring_for_this_thread() CAL_EXCLUDES(reg_mu_);
  static void read_ring(const Ring& ring, std::size_t last_n,
                        ThreadTrace& out);

  const std::chrono::steady_clock::time_point t0_;
  std::atomic<bool> enabled_{true};
  mutable Mutex reg_mu_;
  /// Rings of every thread that ever recorded; shared_ptrs keep rings of
  /// finished threads alive for dumping.
  std::vector<std::shared_ptr<Ring>> rings_ CAL_GUARDED_BY(reg_mu_);
  std::uint64_t next_thread_id_ CAL_GUARDED_BY(reg_mu_) = 0;
};

}  // namespace cal::obs

// The sanctioned instrumentation entry point: compiles to NOTHING (the
// arguments are not evaluated) under CALLOC_TRACING_DISABLED, and to a
// single relaxed load when tracing is compiled in but runtime-disabled.
#if defined(CALLOC_TRACING_DISABLED)
#define CAL_TRACE_EVENT(type, tenant, epoch, batch, value) \
  do {                                                     \
  } while (false)
#else
#define CAL_TRACE_EVENT(type, tenant, epoch, batch, value)             \
  do {                                                                 \
    ::cal::obs::Tracer& cal_trace_tracer =                             \
        ::cal::obs::Tracer::instance();                                \
    if (cal_trace_tracer.enabled())                                    \
      cal_trace_tracer.record((type), (tenant), (epoch), (batch),      \
                              (value));                                \
  } while (false)
#endif
