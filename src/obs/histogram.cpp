#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"

namespace cal::obs {
namespace {

// Tracked octaves: frexp exponents in [kMinExp, kMaxExp] cover values in
// [2^(kMinExp-1), 2^kMaxExp). For latencies in milliseconds that is
// ~0.5 µs to ~9.3 hours; anything outside clamps to an edge bucket.
constexpr int kMinExp = -10;
constexpr int kMaxExp = 25;
constexpr std::size_t kOctaves =
    static_cast<std::size_t>(kMaxExp - kMinExp + 1);
constexpr std::size_t kBuckets = kOctaves * Histogram::kSubBuckets;

}  // namespace

double Histogram::min_tracked() { return std::ldexp(1.0, kMinExp - 1); }

double Histogram::max_tracked() { return std::ldexp(1.0, kMaxExp); }

std::size_t Histogram::bucket_index(double v) {
  if (v < min_tracked()) return 0;
  if (v >= max_tracked()) return kBuckets - 1;
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  const auto sub = static_cast<std::size_t>(
      (m - 0.5) * 2.0 * static_cast<double>(kSubBuckets));
  const auto octave = static_cast<std::size_t>(e - kMinExp);
  return octave * kSubBuckets + std::min(sub, kSubBuckets - 1);
}

double Histogram::bucket_lower(std::size_t idx) {
  const std::size_t octave = idx / kSubBuckets;
  const std::size_t sub = idx % kSubBuckets;
  const double base =
      std::ldexp(1.0, kMinExp + static_cast<int>(octave) - 1);
  return base * (1.0 + static_cast<double>(sub) /
                           static_cast<double>(kSubBuckets));
}

double Histogram::bucket_upper(std::size_t idx) {
  const std::size_t octave = idx / kSubBuckets;
  const std::size_t sub = idx % kSubBuckets;
  const double base =
      std::ldexp(1.0, kMinExp + static_cast<int>(octave) - 1);
  return base * (1.0 + static_cast<double>(sub + 1) /
                           static_cast<double>(kSubBuckets));
}

void Histogram::record(double v) {
  if (std::isnan(v)) {
    ++nan_count_;
    return;
  }
  if (buckets_.empty()) buckets_.assign(kBuckets, 0);
  ++buckets_[bucket_index(v)];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ > 0) {
    if (buckets_.empty()) buckets_.assign(kBuckets, 0);
    for (std::size_t i = 0; i < kBuckets; ++i)
      buckets_[i] += other.buckets_[i];
    min_ = count_ > 0 ? std::min(min_, other.min_) : other.min_;
    max_ = count_ > 0 ? std::max(max_, other.max_) : other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
  }
  nan_count_ += other.nan_count_;
}

double Histogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::quantile(double q) const {
  CAL_ENSURE(q >= 0.0 && q <= 1.0, "quantile wants q in [0,1], got " << q);
  if (count_ == 0) return 0.0;
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * n), with q = 0 mapped to the first order statistic.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  // The first and last order statistics are tracked exactly; returning
  // them beats any bucket midpoint, and keeps quantile(0)/quantile(1)
  // honest even for values clamped into the edge buckets.
  if (rank == 1) return min_;
  if (rank == count_) return max_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const double mid = 0.5 * (bucket_lower(i) + bucket_upper(i));
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;  // unreachable while counters are consistent
}

std::vector<Histogram::Bucket> Histogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    if (buckets_[i] > 0) out.push_back({bucket_upper(i), buckets_[i]});
  return out;
}

}  // namespace cal::obs
