#include "obs/flight_recorder.hpp"

#include <utility>

namespace cal::obs {

std::size_t FlightDump::total_events() const {
  std::size_t n = 0;
  for (const ThreadTrace& t : threads) n += t.events.size();
  return n;
}

FlightRecorder::FlightRecorder(FlightRecorderConfig cfg) : cfg_(cfg) {}

bool FlightRecorder::trip(std::string_view reason,
                          std::span<const LogField> fields) {
  Tracer& tracer = Tracer::instance();
  const std::uint64_t now = tracer.now_ns();
  {
    MutexLock lock(mu_);
    ++trips_;
    if (dumps_ > 0 && now - last_dump_ns_ < cfg_.min_interval_ns)
      return false;
    ++dumps_;
    last_dump_ns_ = now;
  }
  // Mark the trip in the timeline itself, then freeze. The snapshot (and
  // the logging below) run outside mu_ so a slow stderr cannot stall a
  // worker thread that trips concurrently — it will just rate-limit.
  CAL_TRACE_EVENT(EventType::Anomaly, 0, 0, 0, 0.0);
  FlightDump dump;
  dump.reason = std::string(reason);
  dump.trip_ns = now;
  dump.threads = tracer.snapshot(cfg_.last_n);

  std::vector<LogField> header;
  header.emplace_back("reason", dump.reason);
  header.emplace_back("trip_ns", dump.trip_ns);
  header.emplace_back("threads", dump.threads.size());
  header.emplace_back("events", dump.total_events());
  for (const LogField& f : fields) header.push_back(f);
  log_structured(LogLevel::Warn, "flight_recorder_dump",
                 std::span<const LogField>(header));
  if (cfg_.log_events) {
    for (const ThreadTrace& t : dump.threads)
      for (const TraceEvent& ev : t.events)
        log_structured(LogLevel::Debug, "flight_event",
                       {{"thread", t.thread_id},
                        {"ts_ns", ev.ts_ns},
                        {"type", to_string(ev.type)},
                        {"tenant", ev.tenant},
                        {"epoch", ev.epoch},
                        {"batch", ev.batch},
                        {"value", ev.value}});
  }
  MutexLock lock(mu_);
  dump_ = std::move(dump);
  return true;
}

std::size_t FlightRecorder::trips() const {
  MutexLock lock(mu_);
  return trips_;
}

std::size_t FlightRecorder::dumps() const {
  MutexLock lock(mu_);
  return dumps_;
}

std::optional<FlightDump> FlightRecorder::last_dump() const {
  MutexLock lock(mu_);
  return dump_;
}

}  // namespace cal::obs
