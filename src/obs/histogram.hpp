// Log-bucketed mergeable histogram with bounded relative error.
//
// HDR-style layout: the positive axis is split into octaves [2^e, 2^(e+1))
// and each octave into kSubBuckets linear sub-buckets, so a bucket's width
// over its lower bound never exceeds 1/kSubBuckets. Quantiles return the
// midpoint of the bucket holding the requested order statistic (clamped to
// the exact observed min/max), which bounds the relative error of any
// quantile by kRelativeError — independent of how many values were
// recorded or how they are distributed.
//
// This replaces the sorted-sample percentile window that ServiceStats used
// through PR 6. The trade: percentiles are now LIFETIME (not
// recent-window) figures with bounded relative error instead of exact
// order statistics over the last 64k requests — in exchange, memory is a
// fixed ~9 KB per histogram regardless of traffic volume, recording is
// O(1) with no per-sample allocation, and two histograms MERGE exactly
// (bucket-wise add), so per-tenant tails combine into fleet tails without
// the completed-weighted-average approximation aggregate_stats() used to
// make. Merge is associative and commutative: snapshots taken anywhere can
// be combined in any order and agree bucket-for-bucket.
//
// The class is a plain value type with no internal locking — hold it
// under the owning collector's mutex (StatsCollector does) or confine it
// to one thread. Copies are cheap-ish (one vector of counters) and
// independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cal::obs {

class Histogram {
 public:
  /// Linear sub-buckets per octave. 32 bounds every quantile's relative
  /// error by 1/32 (the midpoint representative actually achieves 1/64).
  static constexpr std::size_t kSubBuckets = 32;
  /// Documented worst-case |quantile(q) - exact order statistic| /
  /// exact, for exact values inside the tracked range.
  static constexpr double kRelativeError = 1.0 / kSubBuckets;

  Histogram() = default;

  /// Record one value. Values below kMinTracked collapse into the first
  /// bucket and values above kMaxTracked into the last (their exact
  /// magnitude is preserved only through min()/max()/sum()); NaN is
  /// counted in nan_count() and otherwise ignored.
  void record(double v);

  /// Bucket-wise sum — exact, associative, commutative.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t nan_count() const { return nan_count_; }
  double sum() const { return sum_; }
  /// Lifetime-exact mean (sum over count); 0 when empty.
  double mean() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Value at quantile q in [0, 1] by the nearest-rank rule: the
  /// representative of the bucket containing order statistic
  /// ceil(q * count) (1-based), clamped to [min(), max()]; the first and
  /// last order statistics (q = 0 / q = 1) are returned exactly. Returns
  /// 0 on an empty histogram. Relative error vs the exact order statistic
  /// is bounded by kRelativeError for values inside the tracked range.
  double quantile(double q) const;

  /// Non-empty buckets in ascending order, for metric export. `upper` is
  /// the bucket's exclusive upper bound; `count` is this bucket alone
  /// (not cumulative — Prometheus encoding accumulates at export).
  struct Bucket {
    double upper = 0.0;
    std::uint64_t count = 0;
  };
  std::vector<Bucket> nonzero_buckets() const;

  /// Smallest / largest values that land in a dedicated bucket; outside
  /// values clamp to the edge buckets.
  static double min_tracked();
  static double max_tracked();

 private:
  static std::size_t bucket_index(double v);
  static double bucket_lower(std::size_t idx);
  static double bucket_upper(std::size_t idx);

  /// Allocated on first record; empty vector == all-zero counts.
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t nan_count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace cal::obs
