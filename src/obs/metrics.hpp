// MetricsRegistry: the export surface between internal telemetry and the
// outside world (Prometheus scrapes, bench JSON artifacts, dashboards).
//
// The registry is a point-in-time value, not a live store: a producer
// (ServeEngine::metrics(), the benches) builds one per scrape from its
// own consistent counters, then encodes it as Prometheus text exposition
// (format 0.0.4: # HELP / # TYPE / samples, histograms as cumulative
// le-buckets + _sum + _count) or as JSON (same families, with convenience
// p50/p95/p99 added to histogram samples). Building per scrape keeps the
// hot path free of registry bookkeeping and makes every export internally
// consistent — all samples in one registry were read under the producer's
// own locking.
//
// Families are keyed by metric name; re-adding a name appends a sample
// (different label sets) and must agree on type and help text.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace cal::obs {

enum class MetricType { Counter, Gauge, Histogram };

const char* to_string(MetricType t);

struct MetricLabel {
  std::string key;
  std::string value;
};

struct MetricSample {
  std::vector<MetricLabel> labels;
  /// Counter / gauge value (unused for histogram samples).
  double value = 0.0;
  /// Histogram payload (empty for counter/gauge samples).
  class Histogram hist;
};

struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::Counter;
  std::vector<MetricSample> samples;
};

class MetricsRegistry {
 public:
  /// Append one sample; creates the family on first use. Metric names
  /// must match [a-zA-Z_:][a-zA-Z0-9_:]* and label keys
  /// [a-zA-Z_][a-zA-Z0-9_]*; a name reused with a different type or help
  /// throws.
  void add_counter(const std::string& name, const std::string& help,
                   std::vector<MetricLabel> labels, double value);
  void add_gauge(const std::string& name, const std::string& help,
                 std::vector<MetricLabel> labels, double value);
  void add_histogram(const std::string& name, const std::string& help,
                     std::vector<MetricLabel> labels,
                     const Histogram& hist);

  const std::vector<MetricFamily>& families() const { return families_; }

  /// Lookup for tests and assertions: the sample of `name` whose labels
  /// contain every pair in `labels` (subset match). nullptr when absent.
  const MetricSample* find(const std::string& name,
                           const std::vector<MetricLabel>& labels = {}) const;

  /// Prometheus text exposition format 0.0.4.
  std::string prometheus_text() const;

  /// The same families as one JSON object:
  /// {"families":[{name,type,help,samples:[{labels:{...},value}|
  ///   {labels, count, sum, p50, p95, p99, buckets:[{le,count}]}]}]}.
  std::string json() const;

 private:
  MetricFamily& family(const std::string& name, const std::string& help,
                       MetricType type);

  std::vector<MetricFamily> families_;
};

}  // namespace cal::obs
