// Asset tracking — the paper's motivating application (§I): follow an
// asset tag moving through a building, localising each scan with CALLOC
// while an adversary intermittently spoofs APs along the way.
//
// Run: ./build/examples/asset_tracking
#include <cstdio>
#include <vector>

#include "attacks/mitm.hpp"
#include "core/calloc.hpp"
#include "eval/metrics.hpp"
#include "sim/collector.hpp"

int main() {
  using namespace cal;

  const auto spec = sim::table2_buildings()[3];  // Building 4
  sim::Building building(spec);
  sim::RadioEnvironment env(building);
  const auto op3 = sim::device_by_name("OP3");
  const auto tag = sim::device_by_name("BLU");  // cheap asset tag radio

  // Offline phase.
  const auto train = sim::collect_fingerprints(env, op3, 5, 10);
  core::CallocConfig cfg;
  cfg.train.max_epochs_per_lesson = 10;
  core::Calloc model(cfg);
  model.fit(train);
  std::printf("%s: CALLOC trained on %zu fingerprints (%zu RPs)\n\n",
              spec.name.c_str(), train.num_samples(), train.num_rps());

  // Online phase: the asset moves along the corridor, scanning every 4 m.
  // The adversary attacks only in the middle third of the route.
  Rng rng(77);
  const auto drift = env.draw_session_drift(rng);
  attacks::AttackConfig atk;
  atk.epsilon = 0.3;
  atk.phi_percent = 50.0;

  std::printf("step | true RP | est RP | err(m) | channel\n");
  std::printf("-----+---------+--------+--------+--------------------\n");
  std::vector<double> errors;
  for (std::size_t rp = 0; rp < building.num_rps(); rp += 4) {
    const auto fp = env.fingerprint(building.rp_positions()[rp], tag, rng,
                                    drift);
    data::FingerprintDataset scan(building.num_aps(), building.rp_map());
    scan.add_sample(fp, rp);

    const bool under_attack = rp > building.num_rps() / 3 &&
                              rp < 2 * building.num_rps() / 3;
    Tensor x = scan.normalized();
    if (under_attack) {
      const std::vector<std::size_t> label{rp};
      x = attacks::mitm_attack(attacks::MitmMode::SignalSpoofing,
                               attacks::AttackKind::Fgsm,
                               *model.gradient_source(), x, label, atk);
    }
    const auto est = model.predict(x)[0];
    const double err = data::distance_m(building.rp_map()[rp],
                                        building.rp_map()[est]);
    errors.push_back(err);
    std::printf("%4zu | %7zu | %6zu | %6.2f | %s\n", rp / 4, rp, est, err,
                under_attack ? "SPOOFED (FGSM MITM)" : "clean");
  }

  const auto s = summarize(errors);
  std::printf("\ntrack summary: mean %.2f m, median %.2f m, worst %.2f m over "
              "%zu scans\n",
              s.mean, s.median, s.max, s.count);
  std::printf("CALLOC keeps the asset on the map even through the spoofed "
              "segment.\n");
  return 0;
}
