// Attack anatomy demo: craft FGSM, PGD and MIM perturbations against an
// undefended DNN and against CALLOC, through both MITM channel modes
// (signal manipulation vs signal spoofing), and compare the damage.
//
// Run: ./build/examples/attack_demo
#include <cstdio>

#include "attacks/mitm.hpp"
#include "common/table.hpp"
#include "core/calloc.hpp"
#include "eval/frameworks.hpp"
#include "eval/harness.hpp"
#include "sim/collector.hpp"

int main() {
  using namespace cal;

  const auto spec = sim::table2_buildings()[1];  // Building 2 (metallic)
  const sim::Scenario sc = sim::make_scenario(spec, 7);
  std::printf("Scenario: %s — attacker on the wireless channel (MITM)\n\n",
              spec.name.c_str());

  auto dnn = eval::make_framework("DNN", 11);
  dnn->fit(sc.train);
  core::CallocConfig ccfg;
  ccfg.train.max_epochs_per_lesson = 10;
  core::Calloc calloc_model(ccfg);
  calloc_model.fit(sc.train);

  attacks::AttackConfig atk;
  atk.epsilon = 0.3;
  atk.phi_percent = 60.0;
  atk.num_steps = 8;

  const std::vector<attacks::AttackKind> kinds = {
      attacks::AttackKind::None, attacks::AttackKind::Fgsm,
      attacks::AttackKind::Pgd, attacks::AttackKind::Mim};

  // Average over the six Table I devices — the paper's protocol; single
  // devices vary (CALLOC pays a small clean tax on homogeneous devices
  // and wins it back across the heterogeneous fleet and under attack).
  TextTable results({"attack", "mode", "DNN mean(m)", "CALLOC mean(m)"});
  for (const auto kind : kinds) {
    for (const auto mode : {attacks::MitmMode::SignalManipulation,
                            attacks::MitmMode::SignalSpoofing}) {
      double dnn_mean = 0.0;
      double cal_mean = 0.0;
      for (const auto& test : sc.device_tests) {
        dnn_mean += eval::evaluate_under_mitm(*dnn, test, mode, kind, atk,
                                              *dnn->gradient_source())
                        .error_m.mean;
        cal_mean += eval::evaluate_under_mitm(calloc_model, test, mode, kind,
                                              atk,
                                              *calloc_model.gradient_source())
                        .error_m.mean;
      }
      dnn_mean /= static_cast<double>(sc.device_tests.size());
      cal_mean /= static_cast<double>(sc.device_tests.size());
      std::vector<std::string> row = {
          to_string(kind), to_string(mode),
          std::to_string(dnn_mean).substr(0, 5),
          std::to_string(cal_mean).substr(0, 5)};
      results.add_row(std::move(row));
      if (kind == attacks::AttackKind::None) break;  // clean: one row
    }
  }
  std::printf("averaged over all Table I devices, eps=%.1f, phi=%.0f%%\n%s\n",
              atk.epsilon, atk.phi_percent, results.str().c_str());

  // Peek inside: which anchors does CALLOC consult for a clean vs an
  // attacked fingerprint?
  const auto& test = sc.device_tests[2];  // Galaxy S7
  const Tensor x = test.normalized();
  Tensor first({1, x.cols()});
  std::copy(x.row(0).begin(), x.row(0).end(), first.data());
  const Tensor w_clean = calloc_model.model().attention_weights(first);
  const Tensor x_adv = attacks::fgsm_attack(
      *calloc_model.gradient_source(), first,
      std::vector<std::size_t>{test.labels()[0]}, atk);
  const Tensor w_adv = calloc_model.model().attention_weights(x_adv);
  auto top = [](const Tensor& w) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < w.cols(); ++j)
      if (w.at(0, j) > w.at(0, best)) best = j;
    return best;
  };
  std::printf("attention introspection for RP %zu: clean top-anchor RP %zu "
              "(w=%.2f), FGSM top-anchor RP %zu (w=%.2f)\n",
              test.labels()[0], top(w_clean), w_clean.at(0, top(w_clean)),
              top(w_adv), w_adv.at(0, top(w_adv)));
  return 0;
}
