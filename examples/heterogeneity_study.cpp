// Device-heterogeneity study: train on the OP3 reference phone, test on
// all six Table I devices, comparing CALLOC with classical baselines.
// Reproduces the cross-device robustness story of paper §V.B.
#include <cstdio>
#include <memory>

#include "common/table.hpp"
#include "eval/frameworks.hpp"
#include "eval/harness.hpp"
#include "sim/collector.hpp"

int main() {
  using namespace cal;

  const auto spec = sim::table2_buildings()[0];  // Building 1
  const sim::Scenario sc = sim::make_scenario(spec, /*seed=*/3);
  std::printf("%s: %zu RPs, train on OP3 (%zu samples)\n\n",
              spec.name.c_str(), sc.train.num_rps(), sc.train.num_samples());

  const std::vector<std::string> models = {"KNN", "DNN", "CALLOC"};
  TextTable table([&] {
    std::vector<std::string> h = {"model"};
    for (const auto& d : sc.device_names) h.push_back(d + " mean(m)");
    return h;
  }());

  for (const auto& name : models) {
    auto model = eval::make_framework(name, /*seed=*/9);
    model->fit(sc.train);
    std::vector<double> row;
    for (const auto& test : sc.device_tests)
      row.push_back(eval::evaluate_clean(*model, test).error_m.mean);
    table.add_row(name, row);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Reading: a flat row = device-heterogeneity resilience;\n"
              "the OP3 column is the homogeneous (train device) reference.\n");
  return 0;
}
