// Multi-venue online-serving demo: one MultiTenantService process guards
// several buildings at once. An office runs a trained CALLOC model; a lab
// runs a KNN tenant (the registry is model-agnostic). Fleet clients send
// their real device name as their tenant profile — only the OP3 reference
// model is registered per venue, so the profile fallback chain resolves
// them — while two compromised office devices push PGD traffic through a
// MITM channel, and a misconfigured client probes an unknown building.
//
// Shows: registry + fallback routing, per-shard screening thresholds,
// shard-local caches and stats, drift-aware cache policy, deterministic
// rejects, and the aggregate fleet view.
//
// Run: ./build/examples/serve_demo
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>

#include "attacks/attack.hpp"
#include "baselines/knn.hpp"
#include "common/table.hpp"
#include "core/calloc.hpp"
#include "serve/router.hpp"
#include "sim/fleet.hpp"

int main() {
  using namespace cal;

  // -- Offline phase: survey two venues -----------------------------------
  std::vector<sim::BuildingSpec> specs(2);
  specs[0].name = "office";
  specs[0].num_aps = 28;
  specs[0].path_length_m = 20;
  specs[0].seed = 424;
  specs[1].name = "lab";
  specs[1].num_aps = 20;
  specs[1].path_length_m = 14;
  specs[1].seed = 527;
  const auto fleet = sim::make_fleet(specs, 21);
  const sim::Scenario& office = fleet[0];
  const sim::Scenario& lab = fleet[1];

  // Train CALLOC for the office (the venue under attack).
  core::CallocConfig ccfg;
  ccfg.train.max_epochs_per_lesson = 8;
  core::Calloc office_model(ccfg);
  std::printf("training CALLOC on %s: %zu fingerprints (%zu RPs, %zu APs)...\n",
              office.building_spec.name.c_str(), office.train.num_samples(),
              office.train.num_rps(), office.train.num_aps());
  office_model.fit(office.train);
  const auto weights =
      (std::filesystem::temp_directory_path() / "serve_demo_weights.bin")
          .string();
  office_model.save_weights(weights);

  // -- Deployment: registry of tenants, one shard lane each ---------------
  // Screens calibrate on each venue's clean fleet capture (the online
  // distribution — survey-only calibration would flag legitimate drift).
  serve::ModelRegistry registry;
  {
    serve::TenantSpec spec;
    spec.factory = [&] {
      auto replica = std::make_unique<core::Calloc>(ccfg);
      replica->load_weights(weights, office.train);
      return replica;
    };
    spec.num_aps = office.train.num_aps();
    spec.anchors = office_model.model().anchor_matrix();
    spec.service.num_workers = 3;
    spec.service.max_batch = 16;
    spec.service.queue_capacity = 256;
    spec.service.cache_capacity = 128;
    spec.service.cache_audit_rate = 0.05;
    spec.service.screening = serve::calibrate_thresholds(
        spec.anchors, sim::merged_device_capture(office).normalized(), 95.0, 3.0);
    // Sustained screening-distance drift flushes this shard's cache.
    spec.service.drift.window = 256;
    spec.service.drift.slope_factor = 2.0;
    std::printf("office screen: flag > %.4f, reject > %.4f (RMS/AP)\n",
                spec.service.screening.flag_distance,
                spec.service.screening.reject_distance);
    registry.register_tenant({"office", 0, "OP3"}, std::move(spec));
  }
  {
    serve::TenantSpec spec;
    spec.factory = [&] {
      auto model = std::make_unique<baselines::Knn>(3);
      model->fit(lab.train);
      return model;
    };
    spec.num_aps = lab.train.num_aps();
    spec.anchors = serve::anchor_database_from(lab.train);
    spec.service.num_workers = 1;
    spec.service.cache_capacity = 64;
    spec.service.screening = serve::calibrate_thresholds(
        spec.anchors, sim::merged_device_capture(lab).normalized(), 95.0, 3.0);
    registry.register_tenant({"lab", 0, "OP3"}, std::move(spec));
  }
  registry.set_profile_fallbacks({"OP3"});

  // -- Pre-craft the adversarial share of office traffic ------------------
  attacks::AttackConfig atk;
  atk.epsilon = 0.3;
  atk.phi_percent = 80.0;
  atk.num_steps = 8;
  std::vector<Tensor> office_clean;
  std::vector<Tensor> office_attacked;
  for (const auto& test : office.device_tests) {
    office_clean.push_back(test.normalized());
    office_attacked.push_back(
        attacks::pgd_attack(*office_model.gradient_source(),
                            office_clean.back(), test.labels(), atk));
  }

  // -- Online phase: the engine starts now (post-training, post-attack-
  // crafting, so idle time does not dilute the telemetry clock).
  serve::MultiTenantService service(std::move(registry));

  constexpr std::size_t kRequestsPerDevice = 120;
  struct Sent {
    std::size_t true_rp;
    bool attacked;
    serve::RoutedSubmission sub;
  };

  // One client thread per (venue, device). Clients identify themselves by
  // their actual device acronym; only OP3 tenants exist, so every
  // non-OP3 profile resolves through the fallback chain.
  struct Client {
    const sim::Scenario* venue;
    std::size_t device;
    bool compromised;
  };
  std::vector<Client> clients;
  for (std::size_t d = 0; d < office.device_tests.size(); ++d)
    clients.push_back(
        {&office, d, d >= office.device_tests.size() - 2});  // last two
  for (std::size_t d = 0; d < lab.device_tests.size(); ++d)
    clients.push_back({&lab, d, false});
  // Pre-normalised request pools per client (clean, and PGD for the
  // compromised office devices).
  std::vector<const Tensor*> clean_pool(clients.size());
  std::vector<const Tensor*> attack_pool(clients.size(), nullptr);
  std::vector<Tensor> lab_clean;
  for (const auto& test : lab.device_tests)
    lab_clean.push_back(test.normalized());
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const Client& cl = clients[c];
    if (cl.venue == &office) {
      clean_pool[c] = &office_clean[cl.device];
      attack_pool[c] = &office_attacked[cl.device];
    } else {
      clean_pool[c] = &lab_clean[cl.device];
    }
  }

  std::vector<std::vector<Sent>> logs(clients.size());
  std::vector<std::thread> threads;
  // Distinct base seed from ServiceConfig::seed (2026): client streams
  // must not collide with the workers' audit streams (rng.hpp contract).
  Rng fleet_rng(909);
  for (std::size_t c = 0; c < clients.size(); ++c) {
    Rng rng = fleet_rng.fork(c + 1);  // private per-thread stream
    threads.emplace_back([&, c, rng]() mutable {
      const Client& cl = clients[c];
      const auto labels = cl.venue->device_tests[cl.device].labels();
      const serve::TenantKey tenant{cl.venue->building_spec.name, 0,
                                    cl.venue->device_names[cl.device]};
      std::size_t row = rng.uniform_index(labels.size());
      for (std::size_t i = 0; i < kRequestsPerDevice; ++i) {
        // A stationary device re-scans its spot more often than it moves.
        if (rng.uniform() < 0.4) row = rng.uniform_index(labels.size());
        const bool attack = cl.compromised && rng.bernoulli(0.4);
        const Tensor& pool = attack ? *attack_pool[c] : *clean_pool[c];
        const auto fp = pool.row(row);
        logs[c].push_back({labels[row], attack,
                           service.submit(tenant, {fp.begin(), fp.end()})});
      }
    });
  }
  for (auto& t : threads) t.join();

  // A misconfigured client: unknown building, deterministic reject.
  const auto fp0 = office_clean[0].row(0);
  auto stray = service.submit({"warehouse", 0, "OP3"},
                              {fp0.begin(), fp0.end()});
  std::printf("\nstray request to unknown venue 'warehouse': route=%s, "
              "localized=%s\n",
              serve::to_string(stray.decision.status).c_str(),
              stray.result.get().localized ? "yes" : "no");

  // -- Per-client report ---------------------------------------------------
  TextTable table({"venue", "device", "route", "traffic", "flagged",
                   "rejected", "cache", "clean err(m)", "p@clean"});
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const Client& cl = clients[c];
    std::size_t flagged = 0;
    std::size_t rejected = 0;
    std::size_t cached = 0;
    std::size_t clean_n = 0;
    std::size_t clean_correct = 0;
    double clean_err = 0.0;
    std::string route;
    const auto& rps = cl.venue->device_tests[cl.device].rp_positions();
    for (auto& s : logs[c]) {
      route = serve::to_string(s.sub.decision.status);
      const auto r = s.sub.result.get();
      if (r.verdict == serve::Verdict::Flag) ++flagged;
      if (r.verdict == serve::Verdict::Reject) ++rejected;
      if (r.from_cache) ++cached;
      if (!s.attacked && r.localized) {
        ++clean_n;
        clean_err += data::distance_m(rps[r.rp], rps[s.true_rp]);
        if (r.rp == s.true_rp) ++clean_correct;
      }
    }
    char err[32];
    char acc[32];
    std::snprintf(err, sizeof(err), "%.2f",
                  clean_n > 0 ? clean_err / static_cast<double>(clean_n)
                              : 0.0);
    std::snprintf(acc, sizeof(acc), "%.0f%%",
                  clean_n > 0 ? 100.0 * static_cast<double>(clean_correct) /
                                    static_cast<double>(clean_n)
                              : 0.0);
    table.add_row({cl.venue->building_spec.name,
                   cl.venue->device_names[cl.device], route,
                   cl.compromised ? "40% PGD" : "clean",
                   std::to_string(flagged), std::to_string(rejected),
                   std::to_string(cached), err, acc});
  }
  service.shutdown();
  std::printf("\n%zu clients x %zu requests across %zu venues (eps=%.1f, "
              "phi=%.0f%%)\n%s\n",
              clients.size(), kRequestsPerDevice, fleet.size(), atk.epsilon,
              atk.phi_percent, table.str().c_str());
  std::printf("\nfleet telemetry\n---------------\n%s\n",
              service.stats().str().c_str());
  std::remove(weights.c_str());
  return 0;
}
