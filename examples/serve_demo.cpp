// Multi-venue online-serving demo: one ServeEngine process guards several
// buildings on ONE shared worker pool. An office runs a trained CALLOC
// model; a lab runs a KNN tenant (the registry is model-agnostic). Fleet
// clients send their real device name as their tenant profile — only the
// OP3 reference model is registered per venue, so the profile fallback
// chain resolves them — while two compromised office devices push PGD
// traffic through a MITM channel, a misconfigured client probes an
// unknown building, and the office model is HOT-RELOADED mid-demo
// (publish + RCU deploy) without dropping a request.
//
// Shows: registry + fallback routing, typed admission (quota shedding),
// per-shard screening thresholds and ShardIndex probe counters, tenant-
// local caches, drift trend telemetry, deterministic rejects, hot reload
// that flushes only the reloaded tenant, and the aggregate fleet view.
//
// Run: ./build/examples/serve_demo
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>

#include "attacks/attack.hpp"
#include "baselines/knn.hpp"
#include "common/table.hpp"
#include "core/calloc.hpp"
#include "serve/engine.hpp"
#include "sim/fleet.hpp"

namespace {

using namespace cal;

/// Blocking submit via the engine's wrapper; the per-client denial count
/// makes the quota's shedding visible in the report.
serve::EngineSubmission submit_blocking(serve::ServeEngine& engine,
                                        const serve::TenantKey& key,
                                        const std::vector<float>& fp,
                                        std::size_t* denials) {
  return engine.submit_blocking(key, fp, denials);
}

}  // namespace

int main() {
  using namespace cal;

  // -- Offline phase: survey two venues -----------------------------------
  std::vector<sim::BuildingSpec> specs(2);
  specs[0].name = "office";
  specs[0].num_aps = 28;
  specs[0].path_length_m = 20;
  specs[0].seed = 424;
  specs[1].name = "lab";
  specs[1].num_aps = 20;
  specs[1].path_length_m = 14;
  specs[1].seed = 527;
  const auto fleet = sim::make_fleet(specs, 21);
  const sim::Scenario& office = fleet[0];
  const sim::Scenario& lab = fleet[1];

  // Train CALLOC for the office (the venue under attack).
  core::CallocConfig ccfg;
  ccfg.train.max_epochs_per_lesson = 8;
  core::Calloc office_model(ccfg);
  std::printf("training CALLOC on %s: %zu fingerprints (%zu RPs, %zu APs)...\n",
              office.building_spec.name.c_str(), office.train.num_samples(),
              office.train.num_rps(), office.train.num_aps());
  office_model.fit(office.train);
  const auto weights =
      (std::filesystem::temp_directory_path() / "serve_demo_weights.bin")
          .string();
  office_model.save_weights(weights);

  // -- Deployment: registry of tenants, published onto ONE shared pool ----
  // Screens calibrate on each venue's clean fleet capture (the online
  // distribution — survey-only calibration would flag legitimate drift).
  const serve::TenantKey office_key{"office", 0, "OP3"};
  const serve::TenantKey lab_key{"lab", 0, "OP3"};
  serve::ModelRegistry registry;
  auto office_spec = [&] {
    serve::TenantSpec spec;
    spec.factory = [&] {
      auto replica = std::make_unique<core::Calloc>(ccfg);
      replica->load_weights(weights, office.train);
      return replica;
    };
    spec.num_aps = office.train.num_aps();
    spec.anchors = office_model.model().anchor_matrix();
    spec.service.num_workers = 3;  // replica slots on the shared pool
    spec.service.max_batch = 16;
    spec.service.queue_capacity = 256;
    spec.service.cache_capacity = 128;
    spec.service.cache_audit_rate = 0.05;
    spec.service.screening = serve::calibrate_thresholds(
        spec.anchors, sim::merged_device_capture(office).normalized(), 95.0,
        3.0);
    // Sustained screening-distance drift flushes this shard's cache.
    spec.service.drift.window = 256;
    spec.service.drift.slope_factor = 2.0;
    // Admission quota: a compromised burst is shed at the door instead of
    // starving the lab's share of the pool.
    spec.service.quota.rate_per_s = 5000.0;
    spec.service.quota.burst = 512.0;
    return spec;
  };
  {
    serve::TenantSpec spec = office_spec();
    std::printf("office screen: flag > %.4f, reject > %.4f (RMS/AP); "
                "quota %.0f req/s (burst %.0f)\n",
                spec.service.screening.flag_distance,
                spec.service.screening.reject_distance,
                spec.service.quota.rate_per_s, spec.service.quota.burst);
    registry.register_tenant(office_key, std::move(spec));
  }
  {
    serve::TenantSpec spec;
    spec.factory = [&] {
      auto model = std::make_unique<baselines::Knn>(3);
      model->fit(lab.train);
      return model;
    };
    spec.num_aps = lab.train.num_aps();
    spec.anchors = serve::anchor_database_from(lab.train);
    spec.service.num_workers = 1;
    spec.service.cache_capacity = 64;
    spec.service.screening = serve::calibrate_thresholds(
        spec.anchors, sim::merged_device_capture(lab).normalized(), 95.0, 3.0);
    registry.register_tenant(lab_key, std::move(spec));
  }
  registry.set_profile_fallbacks({"OP3"});

  // -- Pre-craft the adversarial share of office traffic ------------------
  attacks::AttackConfig atk;
  atk.epsilon = 0.3;
  atk.phi_percent = 80.0;
  atk.num_steps = 8;
  std::vector<Tensor> office_clean;
  std::vector<Tensor> office_attacked;
  for (const auto& test : office.device_tests) {
    office_clean.push_back(test.normalized());
    office_attacked.push_back(
        attacks::pgd_attack(*office_model.gradient_source(),
                            office_clean.back(), test.labels(), atk));
  }

  // -- Online phase: the engine starts now (post-training, post-attack-
  // crafting, so idle time does not dilute the telemetry clock).
  serve::EngineConfig engine_cfg;
  engine_cfg.pool_size = 4;  // for the WHOLE fleet, not per tenant
  serve::ServeEngine engine(registry.publish(), engine_cfg);
  engine.reset_telemetry_clocks();
  std::printf("engine up: %zu tenants share a pool of %zu threads "
              "(epoch %llu)\n",
              engine.num_tenants(), engine.pool_size(),
              static_cast<unsigned long long>(engine.snapshot()->epoch()));

  constexpr std::size_t kRequestsPerDevice = 120;
  struct Sent {
    std::size_t true_rp;
    bool attacked;
    serve::EngineSubmission sub;
  };

  // One client thread per (venue, device). Clients identify themselves by
  // their actual device acronym; only OP3 tenants exist, so every
  // non-OP3 profile resolves through the fallback chain.
  struct Client {
    const sim::Scenario* venue;
    std::size_t device;
    bool compromised;
  };
  std::vector<Client> clients;
  for (std::size_t d = 0; d < office.device_tests.size(); ++d)
    clients.push_back(
        {&office, d, d >= office.device_tests.size() - 2});  // last two
  for (std::size_t d = 0; d < lab.device_tests.size(); ++d)
    clients.push_back({&lab, d, false});
  // Pre-normalised request pools per client (clean, and PGD for the
  // compromised office devices).
  std::vector<const Tensor*> clean_pool(clients.size());
  std::vector<const Tensor*> attack_pool(clients.size(), nullptr);
  std::vector<Tensor> lab_clean;
  for (const auto& test : lab.device_tests)
    lab_clean.push_back(test.normalized());
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const Client& cl = clients[c];
    if (cl.venue == &office) {
      clean_pool[c] = &office_clean[cl.device];
      attack_pool[c] = &office_attacked[cl.device];
    } else {
      clean_pool[c] = &lab_clean[cl.device];
    }
  }

  std::vector<std::vector<Sent>> logs(clients.size());
  std::vector<std::size_t> denials(clients.size(), 0);
  std::vector<std::thread> threads;
  // Distinct base seed from EngineConfig::seed (2026): client streams
  // must not collide with the workers' audit streams (rng.hpp contract).
  Rng fleet_rng(909);
  for (std::size_t c = 0; c < clients.size(); ++c) {
    Rng rng = fleet_rng.fork(c + 1);  // private per-thread stream
    threads.emplace_back([&, c, rng]() mutable {
      const Client& cl = clients[c];
      const auto labels = cl.venue->device_tests[cl.device].labels();
      const serve::TenantKey tenant{cl.venue->building_spec.name, 0,
                                    cl.venue->device_names[cl.device]};
      std::size_t row = rng.uniform_index(labels.size());
      for (std::size_t i = 0; i < kRequestsPerDevice; ++i) {
        // A stationary device re-scans its spot more often than it moves.
        if (rng.uniform() < 0.4) row = rng.uniform_index(labels.size());
        const bool attack = cl.compromised && rng.bernoulli(0.4);
        const Tensor& pool = attack ? *attack_pool[c] : *clean_pool[c];
        const auto fp = pool.row(row);
        logs[c].push_back(
            {labels[row], attack,
             submit_blocking(engine, tenant, {fp.begin(), fp.end()},
                             &denials[c])});
      }
    });
  }
  for (auto& t : threads) t.join();

  // A misconfigured client: unknown building, deterministic typed reject.
  const auto fp0 = office_clean[0].row(0);
  auto stray = engine.submit({"warehouse", 0, "OP3"},
                             {fp0.begin(), fp0.end()});
  std::printf("\nstray request to unknown venue 'warehouse': admission=%s, "
              "route=%s, localized=%s\n",
              serve::to_string(stray.admission).c_str(),
              serve::to_string(stray.decision.status).c_str(),
              stray.result.get().localized ? "yes" : "no");

  // -- Hot reload mid-traffic ---------------------------------------------
  // The office model is "retrained" (same weights artefact here) and goes
  // live with a publish + RCU deploy: no drain, no dropped requests, and
  // ONLY the office cache/drift baseline is flushed — the lab keeps
  // serving from its warm cache.
  const std::size_t lab_cache_before = engine.tenant_cache(lab_key).size();
  registry.reload_tenant(office_key, office_spec());
  engine.deploy(registry.publish());
  std::printf("\nhot reload: office model redeployed mid-traffic (epoch "
              "%llu); office cache flushed to %zu entries, lab cache kept "
              "%zu/%zu\n",
              static_cast<unsigned long long>(engine.snapshot()->epoch()),
              engine.tenant_cache(office_key).size(),
              engine.tenant_cache(lab_key).size(), lab_cache_before);
  // A short post-reload wave: the fresh deployment serves immediately.
  std::size_t post_reload_ok = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    const auto fp = office_clean[0].row(i % office_clean[0].rows());
    auto sub = submit_blocking(engine, office_key,
                               {fp.begin(), fp.end()}, nullptr);
    if (sub.result.get().localized) ++post_reload_ok;
  }
  std::printf("post-reload wave: %zu/32 office requests localized on the "
              "new deployment\n",
              post_reload_ok);

  // -- Per-client report ---------------------------------------------------
  TextTable table({"venue", "device", "route", "traffic", "flagged",
                   "rejected", "cache", "denied", "clean err(m)", "p@clean"});
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const Client& cl = clients[c];
    std::size_t flagged = 0;
    std::size_t rejected = 0;
    std::size_t cached = 0;
    std::size_t clean_n = 0;
    std::size_t clean_correct = 0;
    double clean_err = 0.0;
    std::string route;
    const auto& rps = cl.venue->device_tests[cl.device].rp_positions();
    for (auto& s : logs[c]) {
      route = serve::to_string(s.sub.decision.status);
      const auto r = s.sub.result.get();
      if (r.verdict == serve::Verdict::Flag) ++flagged;
      if (r.verdict == serve::Verdict::Reject) ++rejected;
      if (r.from_cache) ++cached;
      if (!s.attacked && r.localized) {
        ++clean_n;
        clean_err += data::distance_m(rps[r.rp], rps[s.true_rp]);
        if (r.rp == s.true_rp) ++clean_correct;
      }
    }
    char err[32];
    char acc[32];
    std::snprintf(err, sizeof(err), "%.2f",
                  clean_n > 0 ? clean_err / static_cast<double>(clean_n)
                              : 0.0);
    std::snprintf(acc, sizeof(acc), "%.0f%%",
                  clean_n > 0 ? 100.0 * static_cast<double>(clean_correct) /
                                    static_cast<double>(clean_n)
                              : 0.0);
    table.add_row({cl.venue->building_spec.name,
                   cl.venue->device_names[cl.device], route,
                   cl.compromised ? "40% PGD" : "clean",
                   std::to_string(flagged), std::to_string(rejected),
                   std::to_string(cached), std::to_string(denials[c]), err,
                   acc});
  }
  const auto stats = engine.stats();
  engine.shutdown();
  std::printf("\n%zu clients x %zu requests across %zu venues (eps=%.1f, "
              "phi=%.0f%%)\n%s\n",
              clients.size(), kRequestsPerDevice, fleet.size(), atk.epsilon,
              atk.phi_percent, table.str().c_str());

  // -- Per-tenant screening-work telemetry (ShardIndex probe counters) ----
  TextTable probes({"tenant", "anchors", "screened", "scanned", "pruned",
                    "mean scanned", "pruned %"});
  for (const auto& t : stats.per_tenant) {
    const std::size_t total = t.stats.anchors_scanned + t.stats.anchors_pruned;
    char mean[32];
    char pct[32];
    std::snprintf(mean, sizeof(mean), "%.1f", t.stats.mean_anchors_scanned);
    std::snprintf(pct, sizeof(pct), "%.1f%%",
                  total > 0 ? 100.0 *
                                  static_cast<double>(t.stats.anchors_pruned) /
                                  static_cast<double>(total)
                            : 0.0);
    probes.add_row(
        {t.tenant.str(),
         std::to_string(engine.tenant_screen(t.tenant).num_anchors()),
         std::to_string(t.stats.screened),
         std::to_string(t.stats.anchors_scanned),
         std::to_string(t.stats.anchors_pruned), mean, pct});
  }
  std::printf("per-tenant shard-index probes (screening work stays on the "
              "routed shard)\n%s\n",
              probes.str().c_str());

  std::printf("\nfleet telemetry\n---------------\n%s\n",
              stats.str().c_str());
  std::remove(weights.c_str());
  return 0;
}
