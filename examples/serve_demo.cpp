// Online-serving demo: a fleet of heterogeneous devices (the paper's
// Table I protocol) sends localization traffic — some of it PGD-attacked
// through a MITM channel — to a LocalizationService running a trained
// CALLOC model. Shows micro-batching, the fingerprint cache, and the
// anchor-distance screen in one end-to-end run.
//
// Run: ./build/examples/serve_demo
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>

#include "attacks/attack.hpp"
#include "common/table.hpp"
#include "core/calloc.hpp"
#include "serve/screening.hpp"
#include "serve/service.hpp"
#include "sim/collector.hpp"

int main() {
  using namespace cal;

  // -- Offline phase: survey the building and train CALLOC ----------------
  sim::BuildingSpec spec;
  spec.name = "serve-demo-office";
  spec.num_aps = 28;
  spec.path_length_m = 20;
  spec.seed = 424;
  const sim::Scenario sc = sim::make_scenario(spec, 77);

  core::CallocConfig ccfg;
  ccfg.train.max_epochs_per_lesson = 8;
  core::Calloc model(ccfg);
  std::printf("training CALLOC on %zu fingerprints (%zu RPs, %zu APs)...\n",
              sc.train.num_samples(), sc.train.num_rps(), sc.train.num_aps());
  model.fit(sc.train);

  const auto weights =
      (std::filesystem::temp_directory_path() / "serve_demo_weights.bin")
          .string();
  model.save_weights(weights);

  // -- Deployment: screen calibrated on a clean fleet capture (the online
  // distribution — survey-only calibration would flag legitimate drift),
  // one model replica per worker.
  const Tensor anchors = model.model().anchor_matrix();
  data::FingerprintDataset fleet_capture = sc.device_tests.front();
  for (std::size_t d = 1; d < sc.device_tests.size(); ++d)
    fleet_capture.merge(sc.device_tests[d]);
  serve::ServiceConfig cfg;
  cfg.num_workers = 4;
  cfg.max_batch = 16;
  cfg.queue_capacity = 256;
  cfg.cache_capacity = 128;
  cfg.cache_audit_rate = 0.05;
  cfg.screening = serve::calibrate_thresholds(
      anchors, fleet_capture.normalized(), 95.0, 3.0);
  std::printf("screen thresholds: flag > %.4f, reject > %.4f (RMS/AP)\n",
              cfg.screening.flag_distance, cfg.screening.reject_distance);

  // -- Pre-craft the adversarial share of each device's traffic -----------
  attacks::AttackConfig atk;
  atk.epsilon = 0.3;
  atk.phi_percent = 80.0;
  atk.num_steps = 8;
  std::vector<Tensor> clean_traffic;
  std::vector<Tensor> attacked_traffic;
  for (const auto& test : sc.device_tests) {
    clean_traffic.push_back(test.normalized());
    attacked_traffic.push_back(attacks::pgd_attack(
        *model.gradient_source(), clean_traffic.back(), test.labels(), atk));
  }

  // -- Online phase: one client thread per device --------------------------
  // The service starts only now, after attack crafting: its telemetry
  // clock runs from construction, and idle pre-traffic time would dilute
  // the reported throughput.
  serve::LocalizationService service(
      [&] {
        auto replica = std::make_unique<core::Calloc>(ccfg);
        replica->load_weights(weights, sc.train);
        return replica;
      },
      sc.train.num_aps(), anchors, cfg);

  constexpr std::size_t kRequestsPerDevice = 150;
  struct Sent {
    std::size_t true_rp;
    bool attacked;
    std::future<serve::ServeResult> fut;
  };
  std::vector<std::vector<Sent>> logs(sc.device_tests.size());
  std::vector<std::thread> clients;
  // Distinct base seed from ServiceConfig::seed (2026): the client streams
  // must not collide with the workers' fork(worker_index + 1) audit
  // streams (see the Rng threading contract in common/rng.hpp).
  Rng fleet_rng(909);
  for (std::size_t d = 0; d < sc.device_tests.size(); ++d) {
    // Each client owns a private stream (Rng must not cross threads).
    Rng rng = fleet_rng.fork(d + 1);
    const bool compromised = d >= sc.device_tests.size() - 2;  // last two
    clients.emplace_back([&, d, rng, compromised]() mutable {
      const auto labels = sc.device_tests[d].labels();
      std::size_t row = rng.uniform_index(labels.size());
      for (std::size_t i = 0; i < kRequestsPerDevice; ++i) {
        // A stationary device re-scans its spot more often than it moves.
        if (rng.uniform() < 0.4) row = rng.uniform_index(labels.size());
        const bool attack = compromised && rng.bernoulli(0.4);
        const Tensor& pool =
            attack ? attacked_traffic[d] : clean_traffic[d];
        const auto fp = pool.row(row);
        logs[d].push_back({labels[row], attack,
                           service.submit({fp.begin(), fp.end()})});
      }
    });
  }
  for (auto& c : clients) c.join();

  // -- Per-device report ----------------------------------------------------
  TextTable table({"device", "traffic", "flagged", "rejected", "cache",
                   "clean err(m)", "p@clean"});
  for (std::size_t d = 0; d < sc.device_tests.size(); ++d) {
    std::size_t flagged = 0;
    std::size_t rejected = 0;
    std::size_t cached = 0;
    std::size_t clean_n = 0;
    std::size_t clean_correct = 0;
    double clean_err = 0.0;
    const auto& rps = sc.device_tests[d].rp_positions();
    for (auto& s : logs[d]) {
      const auto r = s.fut.get();
      if (r.verdict == serve::Verdict::Flag) ++flagged;
      if (r.verdict == serve::Verdict::Reject) ++rejected;
      if (r.from_cache) ++cached;
      if (!s.attacked && r.localized) {
        ++clean_n;
        clean_err += data::distance_m(rps[r.rp], rps[s.true_rp]);
        if (r.rp == s.true_rp) ++clean_correct;
      }
    }
    char err[32];
    char acc[32];
    std::snprintf(err, sizeof(err), "%.2f",
                  clean_n > 0 ? clean_err / static_cast<double>(clean_n)
                              : 0.0);
    std::snprintf(acc, sizeof(acc), "%.0f%%",
                  clean_n > 0 ? 100.0 * static_cast<double>(clean_correct) /
                                    static_cast<double>(clean_n)
                              : 0.0);
    table.add_row({sc.device_names[d],
                   d >= sc.device_tests.size() - 2 ? "40% PGD" : "clean",
                   std::to_string(flagged), std::to_string(rejected),
                   std::to_string(cached), err, acc});
  }
  service.shutdown();
  std::printf("\nfleet of %zu devices x %zu requests (eps=%.1f, phi=%.0f%%)\n%s\n",
              sc.device_tests.size(), kRequestsPerDevice, atk.epsilon,
              atk.phi_percent, table.str().c_str());
  std::printf("\nservice telemetry\n-----------------\n%s\n",
              service.stats().str().c_str());
  std::remove(weights.c_str());
  return 0;
}
