// Quickstart: train CALLOC on a synthetic building, localise a phone,
// and survive an FGSM attack.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "attacks/attack.hpp"
#include "common/log.hpp"
#include "core/calloc.hpp"
#include "eval/harness.hpp"
#include "sim/collector.hpp"

int main() {
  using namespace cal;

  // 1. A building from the paper's Table II and its radio environment.
  const auto buildings = sim::table2_buildings();
  const auto& spec = buildings[2];  // Building 3: 78 APs, 88 m path
  std::printf("Scenario: %s (%zu APs, %zu m path, %s)\n", spec.name.c_str(),
              spec.num_aps, spec.path_length_m, spec.characteristics.c_str());

  // 2. Offline phase: collect 5 fingerprints/RP with the OP3 reference
  //    device; online phase: 1 fingerprint/RP for every Table I device.
  const sim::Scenario sc = sim::make_scenario(spec, /*seed=*/1);
  std::printf("Offline dataset: %zu samples x %zu APs, %zu RPs\n",
              sc.train.num_samples(), sc.train.num_aps(),
              sc.train.num_rps());

  // 3. Train CALLOC (adaptive curriculum, 10 lessons, FGSM ϵ=0.1).
  core::CallocConfig cfg;
  cfg.train.max_epochs_per_lesson = 10;
  core::Calloc calloc_model(cfg);
  calloc_model.fit(sc.train);
  std::printf("Curriculum finished: %zu lessons, %zu epochs total\n",
              calloc_model.report().lessons.size(),
              calloc_model.report().total_epochs);

  // 4. Localise the held-out HTC capture, clean and under FGSM attack.
  const auto& test = sc.device_tests[1];  // HTC
  const auto clean = eval::evaluate_clean(calloc_model, test);
  std::printf("HTC clean:   mean %.2f m, worst %.2f m, acc %.0f%%\n",
              clean.error_m.mean, clean.error_m.max, 100 * clean.accuracy);

  attacks::AttackConfig atk;
  atk.epsilon = 0.3;
  atk.phi_percent = 50.0;
  const auto attacked = eval::evaluate_under_attack(
      calloc_model, test, attacks::AttackKind::Fgsm, atk,
      *calloc_model.gradient_source());
  std::printf("HTC FGSM(ϵ=0.3, ø=50): mean %.2f m, worst %.2f m\n",
              attacked.error_m.mean, attacked.error_m.max);
  return 0;
}
