// Extending the library: define your own floorplan, your own device, and
// run the full offline/online CALLOC pipeline on it — everything a
// downstream user needs to evaluate a new deployment site.
//
// Run: ./build/examples/custom_building
#include <cstdio>

#include "core/calloc.hpp"
#include "eval/harness.hpp"
#include "sim/collector.hpp"

int main() {
  using namespace cal;

  // 1. A custom warehouse: long aisles, heavy racking (metal-like
  //    attenuation), 40 APs over a 120 m pick path.
  sim::BuildingSpec warehouse;
  warehouse.name = "Warehouse 42";
  warehouse.num_aps = 40;
  warehouse.path_length_m = 120;
  warehouse.characteristics = "Steel racking, forklifts";
  warehouse.material.path_loss_exponent = 3.1;
  warehouse.material.wall_attenuation_db = 6.0;
  warehouse.material.wall_spacing_m = 9.0;
  warehouse.material.shadow_sigma_db = 4.5;
  warehouse.material.fading_sigma_db = 2.0;
  warehouse.material.session_drift_sigma_db = 2.5;
  warehouse.seed = 20240611;

  // 2. A custom handheld scanner with a cheap Wi-Fi chipset.
  sim::DeviceProfile scanner;
  scanner.name = "SCAN";
  scanner.model = "RuggedScan X1";
  scanner.gain_offset_db = -5.0;
  scanner.gain_slope = 0.9;
  scanner.noise_sigma_db = 3.0;
  scanner.sensitivity_dbm = -89.0;
  scanner.quantization_db = 2.0;

  // 3. Offline survey with the reference phone, online phase with the
  //    scanner (fresh session drift).
  sim::Building building(warehouse);
  sim::RadioEnvironment env(building);
  const auto op3 = sim::device_by_name("OP3");
  const auto train = sim::collect_fingerprints(env, op3, 5, 1);
  const auto online =
      sim::collect_fingerprints(env, scanner, 1, 2, /*with_session_drift=*/true);
  std::printf("%s: %zu RPs, %zu APs — offline %zu fp (OP3), online %zu fp "
              "(%s)\n",
              warehouse.name.c_str(), building.num_rps(), building.num_aps(),
              train.num_samples(), online.num_samples(),
              scanner.model.c_str());

  // 4. Train CALLOC and localise the scanner, clean and under attack.
  core::CallocConfig cfg;
  cfg.train.max_epochs_per_lesson = 10;
  core::Calloc model(cfg);
  model.fit(train);

  const auto clean = eval::evaluate_clean(model, online);
  std::printf("scanner clean:  mean %.2f m, median %.2f m, worst %.2f m\n",
              clean.error_m.mean, clean.error_m.median, clean.error_m.max);

  attacks::AttackConfig atk;
  atk.epsilon = 0.25;
  atk.phi_percent = 40.0;
  const auto attacked = eval::evaluate_under_attack(
      model, online, attacks::AttackKind::Pgd, atk,
      *model.gradient_source());
  std::printf("scanner PGD(eps=0.25, phi=40): mean %.2f m, worst %.2f m\n",
              attacked.error_m.mean, attacked.error_m.max);

  // 5. Persist the survey for later re-training (CSV artefact).
  train.save_csv("/tmp/warehouse42_survey.csv");
  std::printf("survey saved to /tmp/warehouse42_survey.csv (reloadable via "
              "FingerprintDataset::load_csv)\n");
  return 0;
}
