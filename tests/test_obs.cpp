// Observability tests: histogram quantile error bounds and merge algebra,
// tracer concurrency (no torn events under concurrent snapshots — the
// CI sanitizer matrix runs this whole suite under TSan), flight-recorder
// trip/dump/rate-limit behaviour, structured logfmt encoding, and the
// metrics registry's Prometheus/JSON exposition.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace cal;
using namespace cal::obs;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Exact nearest-rank order statistic, the estimator the histogram's
/// quantile() documents itself against.
double exact_quantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  const auto rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(q * static_cast<double>(n))));
  return sorted[rank - 1];
}

void expect_quantiles_within_bound(const std::vector<double>& values,
                                   const std::string& what) {
  Histogram h;
  for (const double v : values) h.record(v);
  ASSERT_EQ(h.count(), values.size());
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double exact = exact_quantile(values, q);
    const double approx = h.quantile(q);
    EXPECT_LE(std::abs(approx - exact),
              Histogram::kRelativeError * std::abs(exact) + 1e-12)
        << what << ": q=" << q << " exact=" << exact
        << " approx=" << approx;
  }
}

TEST(Histogram, QuantileBoundUniform) {
  std::mt19937_64 gen(11);
  std::uniform_real_distribution<double> dist(0.01, 500.0);
  std::vector<double> values(20000);
  for (double& v : values) v = dist(gen);
  expect_quantiles_within_bound(values, "uniform");
}

TEST(Histogram, QuantileBoundLognormalTail) {
  // Heavy-tailed — the distribution latencies actually follow; exercises
  // many octaves at once.
  std::mt19937_64 gen(12);
  std::lognormal_distribution<double> dist(1.0, 2.0);
  std::vector<double> values(20000);
  for (double& v : values) v = dist(gen);
  expect_quantiles_within_bound(values, "lognormal");
}

TEST(Histogram, QuantileBoundAdversarial) {
  // All-identical values: every quantile must be exactly that value
  // (midpoint clamped to [min,max] == the value).
  expect_quantiles_within_bound(std::vector<double>(1000, 3.7),
                                "constant");
  // Exact powers of two sit on bucket boundaries.
  std::vector<double> powers;
  for (int e = -8; e <= 20; ++e) powers.push_back(std::ldexp(1.0, e));
  expect_quantiles_within_bound(powers, "powers-of-two");
  // Two-point mass at opposite ends of the range.
  std::vector<double> bimodal;
  for (int i = 0; i < 500; ++i) bimodal.push_back(0.004);
  for (int i = 0; i < 500; ++i) bimodal.push_back(40000.0);
  expect_quantiles_within_bound(bimodal, "bimodal");
  // Dense cluster plus a single extreme outlier: p100 must clamp to the
  // exact max, p50 must stay in the cluster.
  std::vector<double> outlier(999, 1.0);
  outlier.push_back(1.0e6);
  expect_quantiles_within_bound(outlier, "outlier");
}

TEST(Histogram, OutOfRangeValuesClampToEdgeBuckets) {
  Histogram h;
  const double tiny = Histogram::min_tracked() / 1000.0;
  const double huge = Histogram::max_tracked() * 1000.0;
  h.record(tiny);
  h.record(huge);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), tiny);
  EXPECT_EQ(h.max(), huge);
  // Quantiles clamp to the observed extremes, so even clamped-bucket
  // values report honestly.
  EXPECT_EQ(h.quantile(0.0), tiny);
  EXPECT_EQ(h.quantile(1.0), huge);
}

TEST(Histogram, NanRecordedSeparately) {
  Histogram h;
  h.record(1.0);
  h.record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.nan_count(), 1u);
  EXPECT_EQ(h.quantile(0.5), 1.0);
}

TEST(Histogram, EmptyIsZeroes) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

std::vector<double> random_values(std::uint64_t seed, std::size_t n) {
  std::mt19937_64 gen(seed);
  std::lognormal_distribution<double> dist(0.0, 1.5);
  std::vector<double> out(n);
  for (double& v : out) v = dist(gen);
  return out;
}

Histogram hist_of(const std::vector<double>& values) {
  Histogram h;
  for (const double v : values) h.record(v);
  return h;
}

void expect_same_histogram(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.count(), b.count());
  // Bucket counts merge exactly; the running sums are doubles, so
  // different addition orders differ by a few ULPs.
  EXPECT_NEAR(a.sum(), b.sum(), 1e-12 * std::abs(a.sum()) + 1e-12);
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  const auto ba = a.nonzero_buckets();
  const auto bb = b.nonzero_buckets();
  ASSERT_EQ(ba.size(), bb.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].upper, bb[i].upper);
    EXPECT_EQ(ba[i].count, bb[i].count) << "bucket " << i;
  }
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  const auto va = random_values(1, 700);
  const auto vb = random_values(2, 1300);
  const auto vc = random_values(3, 250);

  // (a + b) + c
  Histogram left = hist_of(va);
  left.merge(hist_of(vb));
  left.merge(hist_of(vc));
  // a + (b + c)
  Histogram bc = hist_of(vb);
  bc.merge(hist_of(vc));
  Histogram right = hist_of(va);
  right.merge(bc);
  expect_same_histogram(left, right);

  // c + b + a (commuted)
  Histogram commuted = hist_of(vc);
  commuted.merge(hist_of(vb));
  commuted.merge(hist_of(va));
  expect_same_histogram(left, commuted);
}

TEST(Histogram, MergedShardsEqualOneStream) {
  // The property aggregate_stats() relies on: per-shard histograms merged
  // together are bucket-identical to one histogram of the whole stream.
  const auto all = random_values(4, 3000);
  Histogram whole = hist_of(all);
  Histogram shard_a;
  Histogram shard_b;
  for (std::size_t i = 0; i < all.size(); ++i)
    (i % 3 == 0 ? shard_a : shard_b).record(all[i]);
  shard_a.merge(shard_b);
  expect_same_histogram(whole, shard_a);
  // And the merged tails are quantiles of the union.
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact = exact_quantile(all, q);
    EXPECT_LE(std::abs(shard_a.quantile(q) - exact),
              Histogram::kRelativeError * exact + 1e-12);
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  const auto values = random_values(5, 400);
  Histogram h = hist_of(values);
  h.merge(Histogram{});
  expect_same_histogram(h, hist_of(values));
  Histogram onto_empty;
  onto_empty.merge(h);
  expect_same_histogram(onto_empty, h);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(Tracer, ConcurrentProducersAndSnapshotsNeverTear) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer& tracer = Tracer::instance();
  tracer.set_enabled(true);

  // Each producer writes events whose words satisfy an invariant
  // (value == batch * 3.0, epoch == tenant + 1). A torn read — payload
  // words from two different events — breaks it. The tag marks this
  // test's events so concurrent suites can't confuse the check.
  constexpr std::uint64_t kTag = 0xFEEDFACEULL;
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kEvents = 20000;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const ThreadTrace& t : tracer.snapshot()) {
        for (const TraceEvent& ev : t.events) {
          if (ev.tenant != kTag) continue;
          EXPECT_EQ(ev.epoch, ev.batch + 1) << "torn event";
          EXPECT_EQ(ev.value, static_cast<double>(ev.batch) * 3.0)
              << "torn event";
        }
      }
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kEvents; ++i)
        tracer.record(EventType::Complete, kTag, i + 1, i,
                      static_cast<double>(i) * 3.0);
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Post-join accounting: every producer's events are either readable or
  // counted dropped — nothing silently vanishes.
  std::uint64_t visible = 0;
  std::uint64_t recorded = 0;
  for (const ThreadTrace& t : tracer.snapshot()) {
    bool ours = false;
    for (const TraceEvent& ev : t.events) ours = ours || ev.tenant == kTag;
    if (!ours) continue;
    visible += t.events.size();
    recorded += t.recorded;
    EXPECT_EQ(t.events.size() + t.dropped, t.recorded);
    // Within one thread the ring is ordered oldest -> newest.
    for (std::size_t i = 1; i < t.events.size(); ++i)
      EXPECT_LE(t.events[i - 1].ts_ns, t.events[i].ts_ns);
  }
  EXPECT_GE(recorded, kProducers * kEvents);
  EXPECT_GT(visible, 0u);
}

TEST(Tracer, RuntimeDisableStopsRecording) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer& tracer = Tracer::instance();
  const std::uint64_t before = tracer.totals().recorded;
  tracer.set_enabled(false);
  CAL_TRACE_EVENT(EventType::Admit, 1, 1, 0, 0.0);
  EXPECT_EQ(tracer.totals().recorded, before);
  tracer.set_enabled(true);
  CAL_TRACE_EVENT(EventType::Admit, 1, 1, 0, 0.0);
  EXPECT_EQ(tracer.totals().recorded, before + 1);
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

TEST(FlightRecorder, TripDumpsAndRateLimits) {
  FlightRecorderConfig cfg;
  cfg.last_n = 16;
  cfg.min_interval_ns = std::numeric_limits<std::uint64_t>::max();
  FlightRecorder rec(cfg);
  EXPECT_EQ(rec.trips(), 0u);
  EXPECT_FALSE(rec.last_dump().has_value());

  EXPECT_TRUE(rec.trip("first", {{"why", "test"}}));
  ASSERT_TRUE(rec.last_dump().has_value());
  EXPECT_EQ(rec.last_dump()->reason, "first");
  // Inside the (infinite) rate-limit window: counted, not dumped.
  EXPECT_FALSE(rec.trip("second"));
  EXPECT_EQ(rec.trips(), 2u);
  EXPECT_EQ(rec.dumps(), 1u);
  EXPECT_EQ(rec.last_dump()->reason, "first");
}

TEST(FlightRecorder, DumpFreezesRecentEvents) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer::instance().set_enabled(true);
  constexpr std::uint64_t kTag = 0xBEEFBEEFULL;
  for (int i = 0; i < 5; ++i)
    CAL_TRACE_EVENT(EventType::Predict, kTag, 7, 1, 2.0);
  FlightRecorder rec;
  ASSERT_TRUE(rec.trip("freeze"));
  const FlightDump dump = *rec.last_dump();
  EXPECT_GT(dump.total_events(), 0u);
  std::size_t tagged = 0;
  bool anomaly_marker = false;
  for (const ThreadTrace& t : dump.threads)
    for (const TraceEvent& ev : t.events) {
      if (ev.tenant == kTag && ev.type == EventType::Predict) ++tagged;
      anomaly_marker = anomaly_marker || ev.type == EventType::Anomaly;
    }
  EXPECT_GE(tagged, 5u) << "the tripped dump must hold the lead-up events";
  EXPECT_TRUE(anomaly_marker) << "trip marks the timeline";
}

// ---------------------------------------------------------------------------
// Structured logging
// ---------------------------------------------------------------------------

TEST(StructuredLog, LogfmtQuotingAndEscaping) {
  const std::vector<LogField> fields{
      {"plain", "bare"},
      {"count", 42},
      {"ratio", 0.5},
      {"flag", true},
      {"spaced", "two words"},
      {"quoted", "say \"hi\""},
      {"eq", "k=v"},
      {"empty", ""},
  };
  const std::string line = format_log_fields(fields);
  EXPECT_EQ(line,
            "plain=bare count=42 ratio=0.5 flag=true "
            "spaced=\"two words\" quoted=\"say \\\"hi\\\"\" "
            "eq=\"k=v\" empty=\"\"");
}

TEST(StructuredLog, NewlinesCannotBreakTheLine) {
  const std::vector<LogField> fields{{"msg", "line1\nline2"}};
  const std::string line = format_log_fields(fields);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line, "msg=\"line1\\nline2\"");
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(Metrics, PrometheusTextExposition) {
  MetricsRegistry reg;
  reg.add_counter("cal_test_requests_total", "Requests",
                  {{"tenant", "a/0:*"}, {"outcome", "ok"}}, 5);
  reg.add_counter("cal_test_requests_total", "Requests",
                  {{"tenant", "a/0:*"}, {"outcome", "shed"}}, 2);
  reg.add_gauge("cal_test_depth", "Queue depth", {}, 3);
  Histogram h;
  for (const double v : {1.0, 2.0, 4.0, 8.0, 100.0}) h.record(v);
  reg.add_histogram("cal_test_latency_ms", "Latency", {}, h);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP cal_test_requests_total Requests\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cal_test_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "cal_test_requests_total{tenant=\"a/0:*\",outcome=\"ok\"} 5\n"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE cal_test_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("cal_test_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cal_test_latency_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("cal_test_latency_ms_bucket{le=\"+Inf\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("cal_test_latency_ms_count 5\n"), std::string::npos);
  EXPECT_NE(text.find("cal_test_latency_ms_sum 115\n"), std::string::npos);

  // Scrape round-trip: walk the bucket lines; cumulative counts must be
  // non-decreasing and end at _count.
  std::istringstream is(text);
  std::string line;
  long long prev = -1;
  long long last = -1;
  std::size_t bucket_lines = 0;
  while (std::getline(is, line)) {
    if (line.rfind("cal_test_latency_ms_bucket", 0) != 0) continue;
    ++bucket_lines;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    const long long cum = std::stoll(line.substr(space + 1));
    EXPECT_GE(cum, prev) << "cumulative le-buckets must be monotone";
    prev = cum;
    last = cum;
  }
  EXPECT_GE(bucket_lines, 2u);
  EXPECT_EQ(last, 5);
}

TEST(Metrics, LabelValueEscaping) {
  MetricsRegistry reg;
  reg.add_gauge("cal_test_g", "g", {{"path", "a\\b\"c\nd"}}, 1);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("cal_test_g{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(Metrics, JsonExport) {
  MetricsRegistry reg;
  reg.add_counter("cal_test_total", "Total", {{"tenant", "x"}}, 7);
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  reg.add_histogram("cal_test_ms", "ms", {}, h);
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"name\":\"cal_test_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"x\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos);
}

TEST(Metrics, FindMatchesLabelSubset) {
  MetricsRegistry reg;
  reg.add_counter("cal_test_total", "Total",
                  {{"tenant", "x"}, {"outcome", "ok"}}, 3);
  reg.add_counter("cal_test_total", "Total",
                  {{"tenant", "y"}, {"outcome", "ok"}}, 4);
  const MetricSample* x = reg.find("cal_test_total", {{"tenant", "x"}});
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->value, 3.0);
  EXPECT_EQ(reg.find("cal_test_total", {{"tenant", "z"}}), nullptr);
  EXPECT_EQ(reg.find("cal_missing"), nullptr);
}

TEST(Metrics, RejectsBadNamesAndTypeConflicts) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.add_counter("0bad", "h", {}, 1), std::invalid_argument);
  EXPECT_THROW(reg.add_counter("has space", "h", {}, 1),
               std::invalid_argument);
  EXPECT_THROW(reg.add_counter("ok_name", "h", {{"0bad", "v"}}, 1),
               std::invalid_argument);
  reg.add_counter("cal_dual", "h", {}, 1);
  EXPECT_THROW(reg.add_gauge("cal_dual", "h", {}, 1),
               std::invalid_argument);
  EXPECT_THROW(reg.add_counter("cal_dual", "different help", {}, 1),
               std::invalid_argument);
}

}  // namespace
