// Unit tests: dense matrix and Cholesky factorisation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/ensure.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace {

using namespace cal;
using linalg::Cholesky;
using linalg::Matrix;

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_THROW(m(2, 0), PreconditionError);
}

TEST(Matrix, InitializerListAndRaggedRejected) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_THROW((Matrix{{1.0}, {2.0, 3.0}}), PreconditionError);
}

TEST(Matrix, MatmulMatchesHandComputation) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.matmul(b), PreconditionError);
}

TEST(Matrix, TransposeIdentityInvolution) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
  const Matrix aa = at.transposed();
  EXPECT_DOUBLE_EQ(aa(1, 2), 6.0);
}

TEST(Matrix, MatvecAndDiagonal) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  const auto v = a.matvec(std::vector<double>{1.0, 2.0});
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  EXPECT_DOUBLE_EQ(v[1], 6.0);
  a.add_diagonal(1.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 4.0);
}

Matrix spd_example() {
  // A = B B^T + I is SPD for any B.
  Matrix b{{1.0, 2.0, 0.5}, {0.0, 1.0, -1.0}, {2.0, 0.0, 1.0}};
  Matrix a = b.matmul(b.transposed());
  a.add_diagonal(1.0);
  return a;
}

TEST(Cholesky, ReconstructsMatrix) {
  const Matrix a = spd_example();
  Cholesky chol(a);
  const Matrix l = chol.lower();
  const Matrix rec = l.matmul(l.transposed());
  EXPECT_LT((rec - a).frobenius_norm(), 1e-10);
}

TEST(Cholesky, SolvesLinearSystem) {
  const Matrix a = spd_example();
  Cholesky chol(a);
  const std::vector<double> b{1.0, 2.0, 3.0};
  const auto x = chol.solve(b);
  const auto ax = a.matvec(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(Cholesky, SolveMatrixRhs) {
  const Matrix a = spd_example();
  Cholesky chol(a);
  Matrix b(3, 2);
  b(0, 0) = 1.0;
  b(1, 1) = 1.0;
  const Matrix x = chol.solve(b);
  const Matrix ax = a.matmul(x);
  EXPECT_LT((ax - b).frobenius_norm(), 1e-10);
}

TEST(Cholesky, LogDetMatchesDirectComputation) {
  Matrix a{{4.0, 0.0}, {0.0, 9.0}};
  Cholesky chol(a);
  EXPECT_NEAR(chol.log_det(), std::log(36.0), 1e-12);
}

TEST(Cholesky, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_THROW(Cholesky{a}, PreconditionError);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(Cholesky{a}, PreconditionError);
}

TEST(Cholesky, JitterRecoversNearSingular) {
  // Rank-deficient Gram matrix: plain Cholesky fails, jitter succeeds.
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  double used = -1.0;
  EXPECT_NO_THROW(linalg::cholesky_with_jitter(a, 0.0, 1e-2, &used));
  EXPECT_GT(used, 0.0);
}

}  // namespace
