// Negative-compile seed for the tracing kill switch. NOT part of any
// CMake target: CI compiles this TU directly TWICE:
//
//   clang++ -std=c++20 -Isrc -fsyntax-only -DCALLOC_TRACING_DISABLED \
//           tests/static/tracing_killswitch.cpp      # must SUCCEED
//   clang++ -std=c++20 -Isrc -fsyntax-only \
//           tests/static/tracing_killswitch.cpp      # must FAIL
//
// The CAL_TRACE_EVENT arguments below name identifiers that are never
// declared anywhere. With tracing compiled OUT the macro drops its
// arguments before name lookup, so this TU builds — proving the kill
// switch strips trace sites entirely (no argument evaluation, no code).
// With tracing compiled IN the undeclared names reach the compiler and
// the TU cannot build — proving the probe actually exercises the macro.
// If the first compile ever fails, someone "simplified" the disabled
// branch into something that still evaluates its arguments (e.g.
// (void)sizeof(...)), silently re-introducing per-site cost.
#include "obs/trace.hpp"

void probe() {
  CAL_TRACE_EVENT(cal::obs::EventType::Admit, undeclared_tenant_hash,
                  undeclared_epoch, undeclared_batch, undeclared_value());
}

int main() {
  probe();
  return 0;
}
