// Seeded violation for the calloc-lint `sites` rule. NOT compiled into
// any target — analyzer input only (ctest runs `calloc-lint --expect
// sites` on it, with the real site table). Violations seeded:
//   - "serve.queue_push" appears at two passage points (a site literal
//     must map to exactly one location, or armed-fault schedules and
//     per-site hit counters silently aggregate two code paths), and
//   - "serve.totally_undocumented" is absent from site_table.txt.
#include "common/fault_inject.hpp"

namespace lint_corpus_sites {

inline void push_fast(int) { CAL_FAULT_POINT("serve.queue_push"); }

inline void push_slow(int) {
  CAL_FAULT_POINT("serve.queue_push");  // duplicate of the site above
}

inline void drain() { CAL_FAULT_POINT("serve.totally_undocumented"); }

}  // namespace lint_corpus_sites
