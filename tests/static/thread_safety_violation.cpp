// Negative-compile seed for the thread-safety gate. NOT part of any
// CMake target: CI compiles this TU directly with
//
//   clang++ -std=c++20 -Isrc -Wthread-safety -Wthread-safety-beta \
//           -Werror -fsyntax-only tests/static/thread_safety_violation.cpp
//
// and requires the compile to FAIL. If it ever succeeds, the analysis
// has been wired out (macros expanding to nothing under Clang, the
// warning flag dropped, -Werror lost) and the gate is dead — each
// violation below is exactly the bug class the annotations exist to
// reject at compile time.
#include "common/thread_annotations.hpp"

namespace {

class Account {
 public:
  // VIOLATION 1: reads a guarded field without holding its mutex.
  int unguarded_read() const { return balance_; }

  // VIOLATION 2: writes a guarded field under no lock.
  void unguarded_write(int amount) { balance_ += amount; }

  // VIOLATION 3: declares the requirement but releases before the write.
  void late_write(int amount) {
    mu_.lock();
    mu_.unlock();
    balance_ = amount;
  }

 private:
  mutable cal::Mutex mu_;
  int balance_ CAL_GUARDED_BY(mu_) = 0;
};

// Force the member functions to be instantiated and analyzed.
int touch() {
  Account a;
  a.unguarded_write(1);
  a.late_write(2);
  return a.unguarded_read();
}

}  // namespace

int main() { return touch(); }
