// Negative-compile seed for the fault-injection kill switch. NOT part of
// any CMake target: CI compiles this TU directly TWICE:
//
//   clang++ -std=c++20 -Isrc -fsyntax-only -DCALLOC_FAULT_INJECTION_DISABLED \
//           tests/static/fault_killswitch.cpp      # must SUCCEED
//   clang++ -std=c++20 -Isrc -fsyntax-only \
//           tests/static/fault_killswitch.cpp      # must FAIL
//
// The CAL_FAULT_POINT argument below calls a function that is never
// declared anywhere. With fault injection compiled OUT (the default
// build) the macro drops its argument before name lookup, so this TU
// builds — proving the kill switch strips fault sites entirely from
// release binaries (no argument evaluation, no registry passage, no
// code). With fault injection compiled IN the undeclared name reaches
// the compiler and the TU cannot build — proving the probe actually
// exercises the macro. If the first compile ever fails, someone
// "simplified" the disabled branch into something that still evaluates
// its argument (e.g. (void)sizeof(...)), silently re-introducing
// per-site cost on production hot paths.
#include "common/fault_inject.hpp"

void probe() {
  CAL_FAULT_POINT(undeclared_fault_site_name());
}

int main() {
  probe();
  return 0;
}
