// Seeded violation for the calloc-lint `promise` rule. NOT compiled into
// any target — analyzer input only (ctest runs `calloc-lint --expect
// promise` on it). The early-denial branch returns the future but never
// resolves the promise: exactly the bug class PR 8's "every future
// resolves" guarantee exists to prevent, and the shape (denial branch
// added later, forgot set_value) is the realistic regression.
#include <future>

namespace lint_corpus_promise {

struct Result {
  int code = 0;
};

inline std::future<Result> admit(bool over_quota, int payload) {
  std::promise<Result> p;
  std::future<Result> fut = p.get_future();
  if (over_quota) {
    return fut;  // BUG: promise destroyed unresolved on this path
  }
  p.set_value(Result{payload});
  return fut;
}

}  // namespace lint_corpus_promise
