// Seeded violation for the calloc-lint `block` rule. NOT compiled into
// any target — analyzer input only (ctest runs `calloc-lint --expect
// block` on it). Two violations, one per tier:
//   - a CAL_NONBLOCKING root that constructs a blocking mutex guard
//     (any lock acquisition is banned at that tier; a try_to_lock
//     acquisition would be allowed), and
//   - a CAL_HOT_PATH root that reaches a condition-variable wait through
//     a helper (unbounded waits are banned transitively at every tier).
#include <condition_variable>
#include <mutex>

#include "common/hot_path_annotations.hpp"

namespace lint_corpus_block {

struct Shared {
  std::mutex mu;
  std::condition_variable cv;
  int ready = 0;
};

inline void wait_for_ready(Shared& sh) {
  std::unique_lock<std::mutex> lk(sh.mu);
  while (sh.ready == 0) sh.cv.wait(lk);
}

CAL_NONBLOCKING
int probe_counter(Shared& sh, int delta) {
  std::lock_guard<std::mutex> lk(sh.mu);  // lock on a NONBLOCKING path
  sh.ready += delta;
  return sh.ready;
}

CAL_HOT_PATH
int serve_one(Shared& sh) {
  wait_for_ready(sh);  // condvar wait reached from a HOT_PATH root
  return sh.ready;
}

}  // namespace lint_corpus_block
