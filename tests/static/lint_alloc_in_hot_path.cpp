// Seeded violation for the calloc-lint `alloc` rule. NOT compiled into
// any target — this file is an analyzer input (see tests/CMakeLists.txt:
// ctest runs `calloc-lint --expect alloc` on it and FAILS unless exactly
// this rule fires). The violation is transitive on purpose: the
// CAL_NOALLOC root itself is allocation-free; the helper it calls grows
// a vector. A detector that only scans annotated bodies misses it.
#include <cstddef>
#include <vector>

#include "common/hot_path_annotations.hpp"

namespace lint_corpus_alloc {

struct Buffer {
  std::vector<float> values;

  void grow_tail(float v) {
    values.push_back(v);  // allocation: reachable from the root below
  }
};

CAL_NOALLOC
float hot_accumulate(Buffer& buf, const float* xs, std::size_t n) {
  float acc = 0.0F;
  for (std::size_t i = 0; i < n; ++i) acc += xs[i];
  buf.grow_tail(acc);
  return acc;
}

}  // namespace lint_corpus_alloc
