// Unit + property tests: floorplan geometry, propagation physics, device
// heterogeneity, fingerprint collection.
#include <gtest/gtest.h>

#include <cmath>

#include "common/ensure.hpp"
#include "sim/collector.hpp"
#include "sim/fleet.hpp"

namespace {

using namespace cal;
using namespace cal::sim;

BuildingSpec tiny_spec() {
  BuildingSpec spec;
  spec.name = "tiny";
  spec.num_aps = 12;
  spec.path_length_m = 10;
  spec.material = MaterialProfile{};
  spec.seed = 77;
  return spec;
}

TEST(Building, RpCountAndSpacing) {
  Building b(tiny_spec());
  ASSERT_EQ(b.num_rps(), 11u);  // path_length + 1 at 1 m granularity
  for (std::size_t i = 1; i < b.num_rps(); ++i) {
    const auto& a = b.rp_positions()[i - 1];
    const auto& c = b.rp_positions()[i];
    EXPECT_NEAR(std::hypot(c.x - a.x, c.y - a.y), 1.0, 1e-6);
  }
}

TEST(Building, ApsInsideFootprint) {
  Building b(tiny_spec());
  EXPECT_EQ(b.num_aps(), 12u);
  for (const auto& ap : b.ap_positions()) {
    EXPECT_GE(ap.x, 0.0);
    EXPECT_LE(ap.x, b.width());
    EXPECT_GE(ap.y, 0.0);
    EXPECT_LE(ap.y, b.height());
  }
}

TEST(Building, DeterministicInSeed) {
  Building a(tiny_spec());
  Building b(tiny_spec());
  for (std::size_t i = 0; i < a.num_aps(); ++i) {
    EXPECT_DOUBLE_EQ(a.ap_positions()[i].x, b.ap_positions()[i].x);
    EXPECT_DOUBLE_EQ(a.ap_positions()[i].y, b.ap_positions()[i].y);
  }
}

TEST(Building, RejectsDegenerateSpecs) {
  auto spec = tiny_spec();
  spec.num_aps = 0;
  EXPECT_THROW(Building{spec}, PreconditionError);
  spec = tiny_spec();
  spec.path_length_m = 2;
  EXPECT_THROW(Building{spec}, PreconditionError);
}

TEST(Table2, MatchesPaperRows) {
  const auto buildings = table2_buildings();
  ASSERT_EQ(buildings.size(), 5u);
  EXPECT_EQ(buildings[0].num_aps, 156u);
  EXPECT_EQ(buildings[0].path_length_m, 64u);
  EXPECT_EQ(buildings[2].num_aps, 78u);
  EXPECT_EQ(buildings[2].path_length_m, 88u);
  EXPECT_EQ(buildings[4].num_aps, 218u);
  EXPECT_EQ(buildings[4].characteristics, "Wide Spaces, Wood, Metal");
}

TEST(Propagation, RssDecaysWithDistanceOnAverage) {
  Building b(tiny_spec());
  RadioEnvironment env(b);
  // Compare channel RSS near AP 0 vs far from it, averaged over several
  // sample points to smooth the shadowing field.
  const Point ap = b.ap_positions()[0];
  double near_sum = 0.0;
  double far_sum = 0.0;
  int count = 0;
  for (double dx : {1.0, 1.5, 2.0}) {
    for (double dy : {0.0, 1.0}) {
      near_sum += env.channel_rss_dbm(0, {ap.x + dx, ap.y + dy});
      far_sum += env.channel_rss_dbm(0, {ap.x + dx * 8, ap.y + dy * 8});
      ++count;
    }
  }
  EXPECT_GT(near_sum / count, far_sum / count + 5.0);
}

TEST(Propagation, ShadowingIsStaticPerEnvironment) {
  Building b(tiny_spec());
  RadioEnvironment e1(b);
  RadioEnvironment e2(b);
  const Point p{3.0, 4.0};
  for (std::size_t ap = 0; ap < b.num_aps(); ++ap)
    EXPECT_DOUBLE_EQ(e1.channel_rss_dbm(ap, p), e2.channel_rss_dbm(ap, p));
}

TEST(Propagation, MeasurementRespectsSensitivityFloor) {
  Building b(tiny_spec());
  RadioEnvironment env(b);
  DeviceProfile deaf = table1_devices()[0];
  deaf.sensitivity_dbm = 10.0;  // cannot hear anything
  Rng rng(1);
  const auto fp = env.fingerprint(b.rp_positions()[0], deaf, rng);
  for (float v : fp) EXPECT_FLOAT_EQ(v, data::kNotDetectedDbm);
}

TEST(Propagation, QuantizationAppliesToDetections) {
  Building b(tiny_spec());
  RadioEnvironment env(b);
  DeviceProfile dev = table1_devices().back();  // OP3, 1 dB quantisation
  Rng rng(2);
  const auto fp = env.fingerprint(b.rp_positions()[5], dev, rng);
  for (float v : fp) {
    if (v == data::kNotDetectedDbm) continue;
    EXPECT_NEAR(v, std::round(v), 1e-4);
  }
}

TEST(Propagation, SessionDriftShiftsChannel) {
  Building b(tiny_spec());
  RadioEnvironment env(b);
  Rng rng(3);
  const auto drift = env.draw_session_drift(rng);
  ASSERT_EQ(drift.size(), b.num_aps());
  double spread = 0.0;
  for (double d : drift) spread += std::fabs(d);
  EXPECT_GT(spread, 0.0);
}

TEST(Device, GainTransformOrdering) {
  // Devices with positive offset report stronger RSS around the pivot.
  const auto devices = table1_devices();
  const auto& op3 = devices.back();
  for (const auto& dev : devices) {
    const double at_pivot = apply_device_gain(dev, kDevicePivotDbm);
    EXPECT_NEAR(at_pivot - kDevicePivotDbm, dev.gain_offset_db, 1e-9);
  }
  EXPECT_DOUBLE_EQ(apply_device_gain(op3, -75.0), -75.0);  // neutral ref
}

TEST(Device, Table1Roster) {
  const auto devices = table1_devices();
  ASSERT_EQ(devices.size(), 6u);
  EXPECT_EQ(devices.back().name, "OP3");
  EXPECT_NO_THROW(device_by_name("MOTO"));
  EXPECT_THROW(device_by_name("PIXEL"), PreconditionError);
}

TEST(Collector, ShapesAndLabels) {
  Building b(tiny_spec());
  RadioEnvironment env(b);
  const auto ds =
      collect_fingerprints(env, table1_devices().back(), 3, 42);
  EXPECT_EQ(ds.num_samples(), 3 * b.num_rps());
  EXPECT_EQ(ds.num_aps(), b.num_aps());
  EXPECT_EQ(ds.num_rps(), b.num_rps());
  // Labels appear in groups of samples_per_rp.
  EXPECT_EQ(ds.labels()[0], 0u);
  EXPECT_EQ(ds.labels()[3], 1u);
}

TEST(Collector, DeterministicInSeed) {
  Building b(tiny_spec());
  RadioEnvironment env(b);
  const auto d1 = collect_fingerprints(env, table1_devices()[0], 2, 9);
  const auto d2 = collect_fingerprints(env, table1_devices()[0], 2, 9);
  EXPECT_TRUE(allclose(d1.raw(), d2.raw()));
  const auto d3 = collect_fingerprints(env, table1_devices()[0], 2, 10);
  EXPECT_FALSE(allclose(d1.raw(), d3.raw()));
}

TEST(Collector, DevicesProduceDifferentFingerprints) {
  Building b(tiny_spec());
  RadioEnvironment env(b);
  const auto devices = table1_devices();
  const auto op3 = collect_fingerprints(env, devices.back(), 1, 5);
  const auto moto = collect_fingerprints(env, devices[4], 1, 5);
  EXPECT_FALSE(allclose(op3.raw(), moto.raw()));
}

TEST(Scenario, PaperProtocolShapes) {
  auto spec = tiny_spec();
  const auto sc = make_scenario(spec, 11);
  EXPECT_EQ(sc.train.num_samples(), 5 * 11u);
  ASSERT_EQ(sc.device_tests.size(), 6u);
  for (const auto& test : sc.device_tests)
    EXPECT_EQ(test.num_samples(), 11u);
  EXPECT_EQ(sc.device_names.back(), "OP3");
}

class MaterialSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MaterialSweep, EveryTable2BuildingProducesLearnableData) {
  auto spec = table2_buildings()[GetParam()];
  // Shrink for speed: keep material, cut geometry.
  spec.num_aps = 20;
  spec.path_length_m = 12;
  const auto sc = make_scenario(spec, 21);
  EXPECT_EQ(sc.train.num_rps(), 13u);
  // Sanity: normalised features span a nontrivial range.
  const auto x = sc.train.normalized();
  float lo = 1.0F, hi = 0.0F;
  for (std::size_t i = 0; i < x.size(); ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  EXPECT_GT(hi - lo, 0.15F);
  EXPECT_GT(hi, 0.3F);
}

INSTANTIATE_TEST_SUITE_P(AllBuildings, MaterialSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------------
// Multi-building fleet campaigns
// ---------------------------------------------------------------------------

std::vector<BuildingSpec> two_tiny_specs() {
  BuildingSpec a = tiny_spec();
  a.name = "fleet-a";
  BuildingSpec b = tiny_spec();
  b.name = "fleet-b";
  b.num_aps = 16;
  b.path_length_m = 13;
  b.seed = 88;
  return {a, b};
}

TEST(Fleet, SurveysEveryVenueIndependently) {
  const auto specs = two_tiny_specs();
  const auto fleet = make_fleet(specs, 7, 2, 1);
  ASSERT_EQ(fleet.size(), 2u);
  EXPECT_EQ(fleet[0].building_spec.name, "fleet-a");
  EXPECT_EQ(fleet[1].building_spec.name, "fleet-b");
  EXPECT_EQ(fleet[0].train.num_aps(), 12u);
  EXPECT_EQ(fleet[1].train.num_aps(), 16u);
  EXPECT_EQ(fleet[1].train.num_rps(), 14u);
  // Determinism: the same seed replays the same campaign.
  const auto again = make_fleet(specs, 7, 2, 1);
  EXPECT_EQ(fleet[0].train.normalized().flat()[0],
            again[0].train.normalized().flat()[0]);
  EXPECT_THROW(make_fleet({}, 7), PreconditionError);
}

TEST(Fleet, Table2FleetSelectsByIndex) {
  // Shrunk survey (1 sample/RP) keeps this fast while still touching the
  // real Table II specs.
  const std::vector<std::size_t> idx{2, 0};
  const auto fleet = make_table2_fleet(idx, 5, 1, 1);
  ASSERT_EQ(fleet.size(), 2u);
  EXPECT_EQ(fleet[0].building_spec.name, "Building 3");
  EXPECT_EQ(fleet[1].building_spec.name, "Building 1");
  EXPECT_EQ(fleet[0].train.num_aps(), 78u);
  const std::vector<std::size_t> bad{9};
  EXPECT_THROW(make_table2_fleet(bad, 5), PreconditionError);
}

TEST(Fleet, RequestStreamIsDeterministicAndInBounds) {
  const auto fleet = make_fleet(two_tiny_specs(), 7, 2, 1);
  const auto stream = fleet_request_stream(fleet, 200, 11, 0.3);
  ASSERT_EQ(stream.size(), 200u);
  for (const auto& req : stream) {
    ASSERT_LT(req.venue, fleet.size());
    ASSERT_LT(req.device, fleet[req.venue].device_tests.size());
    ASSERT_LT(req.row,
              fleet[req.venue].device_tests[req.device].num_samples());
  }
  const auto replay = fleet_request_stream(fleet, 200, 11, 0.3);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].venue, replay[i].venue);
    EXPECT_EQ(stream[i].device, replay[i].device);
    EXPECT_EQ(stream[i].row, replay[i].row);
  }
  EXPECT_THROW(fleet_request_stream(fleet, 10, 11, 1.5), PreconditionError);
}

TEST(Fleet, FullRepeatProbPinsEachVenueToOneSpot) {
  const auto fleet = make_fleet(two_tiny_specs(), 7, 2, 1);
  const auto stream = fleet_request_stream(fleet, 100, 13, 1.0);
  // With repeat_prob == 1 every venue re-issues its first request forever.
  std::vector<const FleetRequest*> first(fleet.size(), nullptr);
  for (const auto& req : stream) {
    if (first[req.venue] == nullptr) {
      first[req.venue] = &req;
      continue;
    }
    EXPECT_EQ(req.device, first[req.venue]->device);
    EXPECT_EQ(req.row, first[req.venue]->row);
  }
}

}  // namespace
