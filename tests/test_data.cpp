// Unit tests: fingerprint dataset container and RSS normalisation.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/ensure.hpp"
#include "data/dataset.hpp"

namespace {

using namespace cal;
using namespace cal::data;

FingerprintDataset tiny_dataset() {
  FingerprintDataset ds(3, {{0.0, 0.0}, {1.0, 0.0}, {0.0, 2.0}});
  const std::vector<float> fp0{-40.0F, -70.0F, -100.0F};
  const std::vector<float> fp1{-80.0F, -45.0F, -90.0F};
  const std::vector<float> fp2{-100.0F, -60.0F, -50.0F};
  ds.add_sample(fp0, 0);
  ds.add_sample(fp1, 1);
  ds.add_sample(fp2, 2);
  ds.add_sample(fp0, 0);
  return ds;
}

TEST(Normalize, MapsRangeAndClamps) {
  EXPECT_FLOAT_EQ(normalize_rss(-100.0F), 0.0F);
  EXPECT_FLOAT_EQ(normalize_rss(0.0F), 1.0F);
  EXPECT_FLOAT_EQ(normalize_rss(-50.0F), 0.5F);
  EXPECT_FLOAT_EQ(normalize_rss(-150.0F), 0.0F);  // clamped
  EXPECT_FLOAT_EQ(denormalize_rss(0.5F), -50.0F);
  EXPECT_FLOAT_EQ(denormalize_rss(normalize_rss(-73.0F)), -73.0F);
}

TEST(Distance, Euclidean) {
  EXPECT_DOUBLE_EQ(distance_m({0.0, 0.0}, {3.0, 4.0}), 5.0);
}

TEST(Dataset, ConstructionValidation) {
  EXPECT_THROW(FingerprintDataset(0, {{0, 0}}), PreconditionError);
  EXPECT_THROW(FingerprintDataset(3, {}), PreconditionError);
}

TEST(Dataset, AddSampleValidation) {
  auto ds = tiny_dataset();
  const std::vector<float> wrong_len{-50.0F};
  EXPECT_THROW(ds.add_sample(wrong_len, 0), PreconditionError);
  const std::vector<float> ok{-50.0F, -50.0F, -50.0F};
  EXPECT_THROW(ds.add_sample(ok, 99), PreconditionError);
}

TEST(Dataset, RawAndNormalizedShapes) {
  const auto ds = tiny_dataset();
  EXPECT_EQ(ds.num_samples(), 4u);
  EXPECT_EQ(ds.raw().rows(), 4u);
  EXPECT_EQ(ds.raw().cols(), 3u);
  const auto norm = ds.normalized();
  for (std::size_t i = 0; i < norm.size(); ++i) {
    EXPECT_GE(norm[i], 0.0F);
    EXPECT_LE(norm[i], 1.0F);
  }
  EXPECT_FLOAT_EQ(norm.at(0, 0), 0.6F);  // -40 dBm
}

TEST(Dataset, PositionOfSample) {
  const auto ds = tiny_dataset();
  EXPECT_DOUBLE_EQ(ds.position_of_sample(1).x, 1.0);
  EXPECT_THROW(ds.position_of_sample(10), PreconditionError);
}

TEST(Dataset, ShuffleKeepsPairing) {
  auto ds = tiny_dataset();
  const auto raw_before = ds.raw();
  const std::vector<std::size_t> labels_before(ds.labels().begin(),
                                               ds.labels().end());
  Rng rng(5);
  ds.shuffle(rng);
  // Every (row, label) pair must still exist.
  for (std::size_t i = 0; i < ds.num_samples(); ++i) {
    bool found = false;
    for (std::size_t j = 0; j < ds.num_samples() && !found; ++j) {
      if (ds.labels()[i] != labels_before[j]) continue;
      bool same = true;
      for (std::size_t c = 0; c < 3; ++c)
        same = same && ds.raw().at(i, c) == raw_before.at(j, c);
      found = same;
    }
    EXPECT_TRUE(found) << "sample " << i << " lost its label pairing";
  }
}

TEST(Dataset, MergeRequiresCompatibleShapes) {
  auto a = tiny_dataset();
  auto b = tiny_dataset();
  const auto n = a.num_samples();
  a.merge(b);
  EXPECT_EQ(a.num_samples(), 2 * n);
  FingerprintDataset other(2, {{0, 0}});
  EXPECT_THROW(a.merge(other), PreconditionError);
}

TEST(Dataset, SubsetCopies) {
  const auto ds = tiny_dataset();
  const std::vector<std::size_t> idx{3, 1};
  const auto sub = ds.subset(idx);
  EXPECT_EQ(sub.num_samples(), 2u);
  EXPECT_EQ(sub.labels()[0], 0u);
  EXPECT_EQ(sub.labels()[1], 1u);
  const std::vector<std::size_t> bad{9};
  EXPECT_THROW(ds.subset(bad), PreconditionError);
}

TEST(Dataset, MeanFingerprintPerRp) {
  const auto ds = tiny_dataset();
  const auto means = ds.mean_fingerprint_per_rp();
  EXPECT_EQ(means.rows(), 3u);
  // RP0 has two identical samples; mean equals them.
  EXPECT_FLOAT_EQ(means.at(0, 0), -40.0F);
  EXPECT_FLOAT_EQ(means.at(1, 1), -45.0F);
}

TEST(Dataset, MeanFingerprintRequiresCoverage) {
  FingerprintDataset ds(2, {{0, 0}, {1, 1}});
  const std::vector<float> fp{-50.0F, -60.0F};
  ds.add_sample(fp, 0);  // RP 1 uncovered
  EXPECT_THROW(ds.mean_fingerprint_per_rp(), PreconditionError);
}

TEST(Dataset, CsvRoundTrip) {
  const auto ds = tiny_dataset();
  const auto path =
      (std::filesystem::temp_directory_path() / "cal_ds.csv").string();
  ds.save_csv(path);
  const auto loaded = FingerprintDataset::load_csv(path);
  EXPECT_EQ(loaded.num_samples(), ds.num_samples());
  EXPECT_EQ(loaded.num_aps(), ds.num_aps());
  EXPECT_EQ(loaded.num_rps(), ds.num_rps());
  EXPECT_TRUE(allclose(loaded.raw(), ds.raw()));
  for (std::size_t i = 0; i < ds.num_samples(); ++i)
    EXPECT_EQ(loaded.labels()[i], ds.labels()[i]);
  std::filesystem::remove(path);
}

// load_csv consumes untrusted files; every malformation must be a clear
// PreconditionError, never UB or silently garbled samples.
class MalformedCsv : public ::testing::Test {
 protected:
  std::string write(const std::string& contents) {
    path_ = (std::filesystem::temp_directory_path() / "cal_bad_ds.csv")
                .string();
    std::ofstream out(path_);
    out << contents;
    return path_;
  }
  void TearDown() override {
    if (!path_.empty()) std::filesystem::remove(path_);
  }
  std::string path_;
};

TEST_F(MalformedCsv, HeaderTooNarrow) {
  EXPECT_THROW(FingerprintDataset::load_csv(write("rp,x,y\n")),
               PreconditionError);
}

TEST_F(MalformedCsv, WrongColumnCount) {
  EXPECT_THROW(FingerprintDataset::load_csv(write(
                   "rp,x,y,ap0,ap1\n"
                   "#rp0,0,0,0,0\n"
                   "0,0,0,-50\n")),  // sample row missing one AP cell
               PreconditionError);
}

TEST_F(MalformedCsv, NonNumericRssCell) {
  EXPECT_THROW(FingerprintDataset::load_csv(write(
                   "rp,x,y,ap0,ap1\n"
                   "#rp0,0,0,0,0\n"
                   "0,0,0,-50,banana\n")),
               PreconditionError);
}

TEST_F(MalformedCsv, PartiallyNumericCellIsRejected) {
  EXPECT_THROW(FingerprintDataset::load_csv(write(
                   "rp,x,y,ap0,ap1\n"
                   "#rp0,0,0,0,0\n"
                   "0,0,0,-50.1.2,-60\n")),  // prefix parses, suffix must not
               PreconditionError);
}

TEST_F(MalformedCsv, NonFiniteRssCell) {
  // from_chars parses "nan"/"inf" successfully; the loader must still
  // reject them — a NaN RSS silently poisons every downstream loss.
  EXPECT_THROW(FingerprintDataset::load_csv(write(
                   "rp,x,y,ap0,ap1\n"
                   "#rp0,0,0,0,0\n"
                   "0,0,0,nan,-60\n")),
               PreconditionError);
  EXPECT_THROW(FingerprintDataset::load_csv(write(
                   "rp,x,y,ap0,ap1\n"
                   "#rp0,0,0,0,0\n"
                   "0,0,0,-50,-inf\n")),
               PreconditionError);
}

TEST_F(MalformedCsv, NonNumericLabel) {
  EXPECT_THROW(FingerprintDataset::load_csv(write(
                   "rp,x,y,ap0,ap1\n"
                   "#rp0,0,0,0,0\n"
                   "seven,0,0,-50,-60\n")),
               PreconditionError);
}

TEST_F(MalformedCsv, LabelOutOfRpRange) {
  EXPECT_THROW(FingerprintDataset::load_csv(write(
                   "rp,x,y,ap0,ap1\n"
                   "#rp0,0,0,0,0\n"
                   "3,0,0,-50,-60\n")),
               PreconditionError);
}

TEST_F(MalformedCsv, NonNumericRpCoordinate) {
  EXPECT_THROW(FingerprintDataset::load_csv(write(
                   "rp,x,y,ap0,ap1\n"
                   "#rp0,north,0,0,0\n"
                   "0,0,0,-50,-60\n")),
               PreconditionError);
}

TEST(Dataset, EmptyRawThrows) {
  FingerprintDataset ds(2, {{0, 0}});
  EXPECT_THROW(ds.raw(), PreconditionError);
}

}  // namespace
