// Unit tests: float tensor.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/ensure.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace cal;

TEST(Tensor, ZeroConstruction) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(Tensor, RejectsZeroDims) {
  EXPECT_THROW(Tensor({0, 3}), PreconditionError);
  EXPECT_THROW(Tensor(std::vector<std::size_t>{}), PreconditionError);
}

TEST(Tensor, FromRowsAndAccess) {
  auto t = Tensor::from_rows({{1.0F, 2.0F}, {3.0F, 4.0F}});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.at(1, 0), 3.0F);
  EXPECT_THROW(t.at(2, 0), PreconditionError);
  EXPECT_THROW(Tensor::from_rows({{1.0F}, {1.0F, 2.0F}}), PreconditionError);
}

TEST(Tensor, ElementwiseOpsCheckShapes) {
  auto a = Tensor::from_rows({{1.0F, 2.0F}});
  auto b = Tensor::from_rows({{3.0F, 4.0F}});
  auto sum = a + b;
  EXPECT_EQ(sum.at(0, 1), 6.0F);
  auto prod = a * b;
  EXPECT_EQ(prod.at(0, 0), 3.0F);
  Tensor c({2, 2});
  EXPECT_THROW(a + c, PreconditionError);
  EXPECT_THROW(a - c, PreconditionError);
  EXPECT_THROW(a * c, PreconditionError);
}

TEST(Tensor, MatmulMatchesHandComputation) {
  auto a = Tensor::from_rows({{1.0F, 2.0F}, {3.0F, 4.0F}});
  auto b = Tensor::from_rows({{5.0F, 6.0F}, {7.0F, 8.0F}});
  auto c = a.matmul(b);
  EXPECT_EQ(c.at(0, 0), 19.0F);
  EXPECT_EQ(c.at(1, 1), 50.0F);
}

// Regression: matmul once skipped zero lhs entries, so 0·NaN/0·Inf produced
// 0 instead of NaN and overflowing adversarial perturbations were silently
// masked. IEEE 754 requires NaN to propagate through the product.
TEST(Tensor, MatmulPropagatesNanThroughZeroOperand) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  auto a = Tensor::from_rows({{0.0F, 1.0F}});
  auto b = Tensor::from_rows({{nan, inf}, {2.0F, 3.0F}});
  auto c = a.matmul(b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));  // 0*NaN + 1*2
  EXPECT_TRUE(std::isnan(c.at(0, 1)));  // 0*Inf + 1*3
  auto zeros = Tensor::from_rows({{0.0F, 0.0F}});
  auto d = zeros.matmul(b);
  EXPECT_TRUE(std::isnan(d.at(0, 0)));
  EXPECT_TRUE(std::isnan(d.at(0, 1)));
}

TEST(Tensor, MatmulRejectsMismatch) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_THROW(a.matmul(b), PreconditionError);
}

TEST(Tensor, MatmulNtMatchesExplicitTranspose) {
  Rng rng(71);
  auto a = Tensor::randn({5, 7}, rng);
  auto b = Tensor::randn({9, 7}, rng);  // N x K: rhs of a · bᵀ
  auto fused = a.matmul_nt(b);
  auto copied = a.matmul(b.transposed());
  EXPECT_TRUE(allclose(fused, copied, 1e-6F, 1e-6F));
  Tensor wrong({9, 8});
  EXPECT_THROW(a.matmul_nt(wrong), PreconditionError);
}

TEST(Tensor, MatmulTnMatchesExplicitTranspose) {
  Rng rng(72);
  auto a = Tensor::randn({7, 5}, rng);  // K x M: lhs of aᵀ · b
  auto b = Tensor::randn({7, 9}, rng);
  auto fused = a.matmul_tn(b);
  auto copied = a.transposed().matmul(b);
  EXPECT_TRUE(allclose(fused, copied, 1e-6F, 1e-6F));
  Tensor wrong({8, 9});
  EXPECT_THROW(a.matmul_tn(wrong), PreconditionError);
}

TEST(Tensor, TransposedSwapsIndices) {
  auto a = Tensor::from_rows({{1.0F, 2.0F, 3.0F}, {4.0F, 5.0F, 6.0F}});
  auto t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.at(2, 1), 6.0F);
}

TEST(Tensor, ReshapePreservesCount) {
  Tensor t({2, 6});
  t.reshape({3, 4});
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_THROW(t.reshape({5, 5}), PreconditionError);
}

TEST(Tensor, SelectColumnsCopiesRequested) {
  auto a = Tensor::from_rows({{1.0F, 2.0F, 3.0F}, {4.0F, 5.0F, 6.0F}});
  const std::vector<std::size_t> idx{2, 0};
  auto sel = a.select_columns(idx);
  EXPECT_EQ(sel.cols(), 2u);
  EXPECT_EQ(sel.at(0, 0), 3.0F);
  EXPECT_EQ(sel.at(1, 1), 4.0F);
  const std::vector<std::size_t> bad{7};
  EXPECT_THROW(a.select_columns(bad), PreconditionError);
}

TEST(Tensor, SumAndAbsMax) {
  auto a = Tensor::from_rows({{-3.0F, 1.0F}, {2.0F, 0.5F}});
  EXPECT_DOUBLE_EQ(a.sum(), 0.5);
  EXPECT_EQ(a.abs_max(), 3.0F);
}

TEST(Tensor, RandomFactoriesDeterministic) {
  Rng r1(3);
  Rng r2(3);
  auto a = Tensor::randn({4, 4}, r1);
  auto b = Tensor::randn({4, 4}, r2);
  EXPECT_TRUE(allclose(a, b));
}

TEST(Tensor, RandUniformWithinBounds) {
  Rng rng(4);
  auto t = Tensor::rand_uniform({100}, rng, -2.0F, 3.0F);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -2.0F);
    EXPECT_LT(t[i], 3.0F);
  }
}

TEST(Tensor, AllcloseDetectsDifference) {
  auto a = Tensor::from_rows({{1.0F}});
  auto b = Tensor::from_rows({{1.0001F}});
  auto c = Tensor::from_rows({{1.5F}});
  EXPECT_TRUE(allclose(a, b, 1e-3F, 1e-3F));
  EXPECT_FALSE(allclose(a, c));
  Tensor d({2});
  EXPECT_FALSE(allclose(a, d));
}

// Regression: `fabs(NaN - y) > tol` is false for every y, so allclose once
// reported NaN as "close" to anything — which would have let a broken GEMM
// kernel full of NaNs pass its validation against the naive reference.
TEST(Tensor, AllcloseTreatsNanAsMismatch) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  auto num = Tensor::from_rows({{1.0F, 2.0F}});
  auto with_nan = Tensor::from_rows({{1.0F, nan}});
  EXPECT_FALSE(allclose(num, with_nan));
  EXPECT_FALSE(allclose(with_nan, num));
  // Both-NaN positions agree (the propagation tests compare NaN patterns).
  auto also_nan = Tensor::from_rows({{1.0F, nan}});
  EXPECT_TRUE(allclose(with_nan, also_nan));
  // Infinities: equal infinities match, anything else does not.
  auto pos_inf = Tensor::from_rows({{inf, 2.0F}});
  auto neg_inf = Tensor::from_rows({{-inf, 2.0F}});
  EXPECT_TRUE(allclose(pos_inf, pos_inf));
  EXPECT_FALSE(allclose(pos_inf, neg_inf));
  EXPECT_FALSE(allclose(pos_inf, num));
}

TEST(Tensor, RowSpanViews) {
  auto a = Tensor::from_rows({{1.0F, 2.0F}, {3.0F, 4.0F}});
  auto row = a.row(1);
  EXPECT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], 3.0F);
  row[0] = 9.0F;
  EXPECT_EQ(a.at(1, 0), 9.0F);
}

TEST(Tensor, UninitializedFactoryShapeAndWriteRead) {
  // Storage is allocated but deliberately not zero-filled (the GEMM
  // output-buffer fast path); only written elements may be read.
  Tensor t = Tensor::uninitialized({3, 4});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
  EXPECT_EQ(t.at(2, 3), 11.0F);
  t.fill(0.5F);
  EXPECT_EQ(t.at(0, 0), 0.5F);
  EXPECT_THROW(Tensor::uninitialized({}), PreconditionError);
  EXPECT_THROW(Tensor::uninitialized({2, 0}), PreconditionError);
}

TEST(Tensor, MatmulIntoUninitializedOutputMatchesNaive) {
  // The matmul family writes into uninitialized storage; every element
  // must still come out exactly as the naive reference computes it.
  Rng rng(5);
  const Tensor a = Tensor::rand_uniform({7, 9}, rng, -2.0F, 2.0F);
  const Tensor b = Tensor::rand_uniform({9, 5}, rng, -2.0F, 2.0F);
  const Tensor got = a.matmul(b);
  for (std::size_t i = 0; i < got.rows(); ++i)
    for (std::size_t j = 0; j < got.cols(); ++j) {
      float want = 0.0F;
      for (std::size_t k = 0; k < a.cols(); ++k)
        want += a.at(i, k) * b.at(k, j);
      EXPECT_NEAR(got.at(i, j), want, 1e-4F);
    }
}

}  // namespace
