// Unit tests: layers, optimisers, trainer, weight IO.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/ensure.hpp"
#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "nn/prototype_attention.hpp"
#include "nn/regularizers.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"

namespace {

using namespace cal;
using namespace cal::nn;

TEST(Linear, ShapesAndParameterCount) {
  Rng rng(1);
  Linear fc(5, 3, rng);
  EXPECT_EQ(fc.parameter_count(), 5u * 3u + 3u);
  auto out = fc.forward(autograd::constant(Tensor({2, 5})));
  EXPECT_EQ(out->value().rows(), 2u);
  EXPECT_EQ(out->value().cols(), 3u);
  EXPECT_THROW(fc.forward(autograd::constant(Tensor({2, 4}))),
               PreconditionError);
}

TEST(Init, XavierBoundsAndHeVariance) {
  Rng rng(2);
  auto w = xavier_uniform(100, 50, rng);
  const float bound = std::sqrt(6.0F / 150.0F);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -bound);
    EXPECT_LE(w[i], bound);
  }
  auto h = he_normal(200, 50, rng);
  double sq = 0.0;
  for (std::size_t i = 0; i < h.size(); ++i) sq += h[i] * h[i];
  EXPECT_NEAR(sq / static_cast<double>(h.size()), 2.0 / 200.0, 0.002);
}

TEST(Conv1d, OutputGeometry) {
  Rng rng(3);
  Conv1d conv(10, 3, 4, 2, rng);
  EXPECT_EQ(conv.output_len(), 4u);  // (10-3)/2+1
  EXPECT_EQ(conv.output_features(), 16u);
  auto out = conv.forward(autograd::constant(Tensor({5, 10})));
  EXPECT_EQ(out->value().rows(), 5u);
  EXPECT_EQ(out->value().cols(), 16u);
}

TEST(Conv1d, MatchesHandComputedConvolution) {
  Rng rng(4);
  Conv1d conv(4, 2, 1, 1, rng);
  // Overwrite weights for a deterministic check: kernel [1, -1], bias 0.5.
  auto params = conv.parameters();
  params[0].var->mutable_value()[0] = 1.0F;
  params[0].var->mutable_value()[1] = -1.0F;
  params[1].var->mutable_value()[0] = 0.5F;
  auto out = conv.forward(
      autograd::constant(Tensor::from_rows({{1.0F, 3.0F, 2.0F, 2.0F}})));
  // windows: (1-3)+0.5, (3-2)+0.5, (2-2)+0.5
  EXPECT_FLOAT_EQ(out->value().at(0, 0), -1.5F);
  EXPECT_FLOAT_EQ(out->value().at(0, 1), 1.5F);
  EXPECT_FLOAT_EQ(out->value().at(0, 2), 0.5F);
}

TEST(Conv1d, GradientFlowsToInput) {
  Rng rng(5);
  Conv1d conv(6, 3, 2, 1, rng);
  auto leaf = autograd::make_leaf(Tensor({2, 6}, 0.5F), true);
  auto loss = autograd::mean_all(conv.forward(leaf));
  autograd::backward(loss);
  float grad_norm = 0.0F;
  for (std::size_t i = 0; i < leaf->grad().size(); ++i)
    grad_norm += std::fabs(leaf->grad()[i]);
  EXPECT_GT(grad_norm, 0.0F);
}

TEST(Regularizers, EvalModeIsIdentity) {
  Dropout drop(0.5F, Rng(6));
  GaussianNoise noise(0.3F, Rng(7));
  drop.set_training(false);
  noise.set_training(false);
  Tensor x({3, 3}, 1.0F);
  EXPECT_TRUE(allclose(drop.forward(autograd::constant(x))->value(), x));
  EXPECT_TRUE(allclose(noise.forward(autograd::constant(x))->value(), x));
}

TEST(Regularizers, TrainModePerturbs) {
  Dropout drop(0.5F, Rng(8));
  GaussianNoise noise(0.3F, Rng(9));
  Tensor x({10, 10}, 1.0F);
  const auto dropped = drop.forward(autograd::constant(x))->value();
  const auto noisy = noise.forward(autograd::constant(x))->value();
  EXPECT_FALSE(allclose(dropped, x));
  EXPECT_FALSE(allclose(noisy, x));
}

TEST(Sequential, ChainsAndPropagatesTraining) {
  Rng rng(10);
  Sequential net;
  net.emplace<Linear>(4, 8, rng);
  net.emplace<ReLU>();
  net.emplace<Dropout>(0.3F, rng.fork(1));
  net.emplace<Linear>(8, 2, rng);
  EXPECT_EQ(net.num_children(), 4u);
  EXPECT_EQ(net.parameter_count(), 4u * 8 + 8 + 8 * 2 + 2);
  net.set_training(false);
  auto out = net.forward(autograd::constant(Tensor({3, 4})));
  EXPECT_EQ(out->value().cols(), 2u);
}

TEST(PrototypeAttention, ShapesAndParams) {
  Rng rng(11);
  MultiHeadPrototypeAttention mha(12, 8, 2, 4, rng);
  EXPECT_EQ(mha.out_features(), 16u);
  auto out = mha.forward(autograd::constant(Tensor({5, 12})));
  EXPECT_EQ(out->value().rows(), 5u);
  EXPECT_EQ(out->value().cols(), 16u);
  // per head: wq (12*8+8) + protoK (4*8) + protoV (4*8); wo: 16*16+16.
  EXPECT_EQ(mha.parameter_count(), 2u * (12 * 8 + 8 + 64) + 16 * 16 + 16);
}

TEST(PrototypeAttention, FusedHeadsBitIdenticalToPerHeadLoop) {
  // The fused multi-head path (one strided batched GEMM per step) must be
  // bit-identical — forward AND gradients — to the per-head reference:
  // each PrototypeAttentionHead run separately, outputs concatenated,
  // then the same w_o. Same seed ⇒ same RNG draw order by construction.
  const std::size_t in = 11, hd = 6, heads = 3, protos = 5, rows = 7;
  Rng rng_fused(77);
  MultiHeadPrototypeAttention fused(in, hd, heads, protos, rng_fused);

  Rng rng_ref(77);
  std::vector<std::unique_ptr<PrototypeAttentionHead>> ref_heads;
  for (std::size_t h = 0; h < heads; ++h)
    ref_heads.push_back(std::make_unique<PrototypeAttentionHead>(
        in, hd, protos, rng_ref, "h" + std::to_string(h)));
  Linear ref_wo(hd * heads, hd * heads, rng_ref, "wo");

  Rng data_rng(5005);
  const Tensor x = Tensor::randn({rows, in}, data_rng, 1.0F);

  auto xin_f = autograd::make_leaf(x, true);
  auto out_f = fused.forward(xin_f);
  auto xin_r = autograd::make_leaf(x, true);
  auto cat = ref_heads[0]->forward(xin_r);
  for (std::size_t h = 1; h < heads; ++h)
    cat = autograd::concat_cols(cat, ref_heads[h]->forward(xin_r));
  auto out_r = ref_wo.forward(cat);

  ASSERT_EQ(out_f->value().size(), out_r->value().size());
  for (std::size_t i = 0; i < out_f->value().size(); ++i)
    ASSERT_EQ(out_f->value()[i], out_r->value()[i])
        << "fused forward diverged at " << i;

  // Gradients agree to the ulp level: the head-batched attention ops
  // lower to the same reductions, but dX through the fused w_q is one
  // (H·hd)-wide sum where the reference rounds at each head boundary —
  // a reassociation of the same terms, not a different computation.
  autograd::backward(autograd::sum_all(out_f));
  autograd::backward(autograd::sum_all(out_r));
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_NEAR(xin_f->grad()[i], xin_r->grad()[i],
                1e-6F * std::max(1.0F, std::fabs(xin_r->grad()[i])))
        << "fused input gradient diverged at " << i;
}

TEST(Optimizer, SgdConvergesOnQuadratic) {
  // Minimise ||x - t||^2 by gradient descent on a leaf "parameter".
  auto param = autograd::make_leaf(Tensor({1, 4}, 5.0F), true);
  const Tensor target({1, 4}, 1.5F);
  Sgd opt({{"x", param}}, 0.1F, 0.9F);
  for (int i = 0; i < 300; ++i) {
    auto loss = autograd::mse_loss(param, target);
    opt.zero_grad();
    autograd::backward(loss);
    opt.step();
  }
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(param->value()[i], 1.5F, 1e-3F);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  auto param = autograd::make_leaf(Tensor({1, 4}, -3.0F), true);
  const Tensor target({1, 4}, 2.0F);
  Adam opt({{"x", param}}, 0.2F);
  for (int i = 0; i < 200; ++i) {
    auto loss = autograd::mse_loss(param, target);
    opt.zero_grad();
    autograd::backward(loss);
    opt.step();
  }
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(param->value()[i], 2.0F, 1e-2F);
}

TEST(Optimizer, RejectsGradlessParameters) {
  auto c = autograd::constant(Tensor({1}));
  EXPECT_THROW(Sgd({{"c", c}}, 0.1F), PreconditionError);
}

/// Build a small two-blob classification problem.
struct Blobs {
  Tensor x;
  std::vector<std::size_t> y;
};

Blobs make_blobs(std::size_t n_per_class, std::uint64_t seed) {
  Rng rng(seed);
  Blobs b;
  b.x = Tensor({2 * n_per_class, 3});
  for (std::size_t i = 0; i < 2 * n_per_class; ++i) {
    const std::size_t cls = i < n_per_class ? 0 : 1;
    const float center = cls == 0 ? -1.0F : 1.0F;
    for (std::size_t j = 0; j < 3; ++j)
      b.x.at(i, j) = center + static_cast<float>(rng.normal(0.0, 0.3));
    b.y.push_back(cls);
  }
  return b;
}

TEST(Trainer, LearnsSeparableBlobs) {
  Rng rng(12);
  Sequential net;
  net.emplace<Linear>(3, 16, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(16, 2, rng);
  const auto blobs = make_blobs(40, 13);
  TrainConfig cfg;
  cfg.epochs = 40;
  cfg.seed = 14;
  const auto hist = fit_classifier(net, blobs.x, blobs.y, cfg);
  EXPECT_FALSE(hist.train_loss.empty());
  EXPECT_LT(hist.train_loss.back(), hist.train_loss.front());
  EXPECT_GT(evaluate_accuracy(net, blobs.x, blobs.y), 0.95);
}

TEST(Trainer, EarlyStoppingTriggersAndRestoresBest) {
  Rng rng(15);
  Sequential net;
  net.emplace<Linear>(3, 4, rng);
  net.emplace<Linear>(4, 2, rng);
  // Unlearnable random labels: validation loss can only fluctuate, so the
  // patience counter must fire long before the epoch budget.
  auto blobs = make_blobs(20, 16);
  Rng label_rng(99);
  for (auto& y : blobs.y) y = label_rng.uniform_index(2);
  TrainConfig cfg;
  cfg.epochs = 200;
  cfg.early_stop_patience = 3;
  cfg.validation_fraction = 0.3;
  cfg.seed = 17;
  const auto hist = fit_classifier(net, blobs.x, blobs.y, cfg);
  EXPECT_TRUE(hist.early_stopped);
  EXPECT_LT(hist.train_loss.size(), 200u);
  EXPECT_LE(hist.best_epoch, hist.train_loss.size());
}

TEST(Trainer, RegressionReducesMse) {
  Rng rng(18);
  Sequential net;
  net.emplace<Linear>(4, 8, rng);
  net.emplace<Tanh>();
  net.emplace<Linear>(8, 4, rng);
  Tensor x = Tensor::randn({60, 4}, rng, 1.0F);
  TrainConfig cfg;
  cfg.epochs = 30;
  cfg.seed = 19;
  const auto hist = fit_regression(net, x, x, cfg);  // autoencode identity
  EXPECT_LT(hist.train_loss.back(), hist.train_loss.front());
}

TEST(Trainer, LabelMismatchThrows) {
  Rng rng(20);
  Sequential net;
  net.emplace<Linear>(3, 2, rng);
  Tensor x({10, 3});
  const std::vector<std::size_t> y{0, 1};  // wrong size
  EXPECT_THROW(fit_classifier(net, x, y, TrainConfig{}), PreconditionError);
}

TEST(Module, SnapshotRestoreRoundTrip) {
  Rng rng(21);
  Linear fc(3, 3, rng);
  const auto snap = fc.snapshot_weights();
  fc.weight()->mutable_value().fill(0.0F);
  fc.restore_weights(snap);
  EXPECT_TRUE(allclose(fc.weight()->value(), snap[0]));
}

TEST(Module, SaveLoadWeightsRoundTrip) {
  Rng rng(22);
  Sequential a;
  a.emplace<Linear>(4, 5, rng);
  a.emplace<Linear>(5, 2, rng);
  Rng rng2(23);
  Sequential b;
  b.emplace<Linear>(4, 5, rng2);
  b.emplace<Linear>(5, 2, rng2);

  std::stringstream blob;
  a.save_weights(blob);
  b.load_weights(blob);
  // The serving layer deploys one trained artefact into per-worker
  // replicas and promises bit-identical predictions, so the round trip
  // must be float-exact, not merely close.
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const Tensor& ta = pa[i].var->value();
    const Tensor& tb = pb[i].var->value();
    ASSERT_TRUE(ta.same_shape(tb));
    for (std::size_t j = 0; j < ta.size(); ++j)
      EXPECT_EQ(ta[j], tb[j]) << pa[i].name << "[" << j << "]";
  }
  const Tensor x = Tensor::randn({3, 4}, rng, 1.0F);
  EXPECT_TRUE(allclose(predict_tensor(a, x), predict_tensor(b, x)));
  EXPECT_EQ(a.weight_bytes(),
            sizeof(std::uint64_t) * 5 + a.parameter_count() * sizeof(float));
}

TEST(Module, LoadRejectsTruncatedBlob) {
  Rng rng(25);
  Linear a(3, 4, rng);
  Linear b(3, 4, rng);
  std::stringstream blob;
  a.save_weights(blob);
  const std::string full = blob.str();
  // Cutting the payload anywhere must throw, never load garbage.
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(b.load_weights(truncated), PreconditionError);
  std::stringstream empty;
  EXPECT_THROW(b.load_weights(empty), PreconditionError);
}

TEST(Module, LoadRejectsWrongShape) {
  Rng rng(24);
  Linear small(2, 2, rng);
  Linear big(4, 4, rng);
  std::stringstream blob;
  small.save_weights(blob);
  EXPECT_THROW(big.load_weights(blob), PreconditionError);
}

TEST(GatherRows, SelectsAndValidates) {
  auto x = Tensor::from_rows({{1.0F, 2.0F}, {3.0F, 4.0F}, {5.0F, 6.0F}});
  const std::vector<std::size_t> idx{2, 0};
  auto g = gather_rows(x, idx);
  EXPECT_EQ(g.at(0, 0), 5.0F);
  EXPECT_EQ(g.at(1, 1), 2.0F);
  const std::vector<std::size_t> bad{9};
  EXPECT_THROW(gather_rows(x, bad), PreconditionError);
}

}  // namespace
