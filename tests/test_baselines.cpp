// Baseline localizers: each must learn a small simulated building well
// enough to beat chance by a wide margin, and expose the right interface
// (gradient sources for differentiable models, surrogate otherwise).
#include <gtest/gtest.h>

#include <memory>

#include "baselines/advloc.hpp"
#include "baselines/anvil.hpp"
#include "baselines/autoencoder.hpp"
#include "baselines/cnn.hpp"
#include "baselines/dnn.hpp"
#include "baselines/gpc.hpp"
#include "baselines/knn.hpp"
#include "baselines/naive_bayes.hpp"
#include "baselines/sangria.hpp"
#include "baselines/surrogate.hpp"
#include "baselines/wideep.hpp"
#include "common/ensure.hpp"
#include "eval/harness.hpp"
#include "sim/collector.hpp"

namespace {

using namespace cal;
using namespace cal::baselines;

/// Shared small scenario (built once; fitting every model on it keeps the
/// whole suite fast).
const sim::Scenario& scenario() {
  static const sim::Scenario sc = [] {
    sim::BuildingSpec spec;
    spec.name = "test-building";
    spec.num_aps = 24;
    spec.path_length_m = 14;
    spec.material = sim::MaterialProfile{};
    spec.seed = 99;
    return sim::make_scenario(spec, 123);
  }();
  return sc;
}

nn::TrainConfig fast_train() {
  nn::TrainConfig cfg;
  cfg.epochs = 25;
  return cfg;
}

/// Every localizer must land within `max_mean_err` metres on the OP3
/// (same-device) test capture.
void expect_learns(ILocalizer& model, double max_mean_err) {
  model.fit(scenario().train);
  const auto& op3_test = scenario().device_tests.back();
  const auto stats = eval::evaluate_clean(model, op3_test);
  EXPECT_LT(stats.error_m.mean, max_mean_err)
      << model.name() << " mean error too high";
}

TEST(Knn, LearnsAndValidates) {
  Knn knn(5);
  expect_learns(knn, 2.0);
  EXPECT_EQ(knn.name(), "KNN");
  EXPECT_EQ(knn.gradient_source(), nullptr);
  EXPECT_THROW(Knn(0), PreconditionError);
  Knn unfitted;
  EXPECT_THROW(unfitted.predict(Tensor({1, 24})), PreconditionError);
}

TEST(Knn, FeatureMismatchThrows) {
  Knn knn;
  knn.fit(scenario().train);
  EXPECT_THROW(knn.predict(Tensor({1, 5})), PreconditionError);
}

TEST(NaiveBayes, Learns) {
  NaiveBayes nb;
  expect_learns(nb, 3.5);
  EXPECT_THROW(NaiveBayes(-1.0), PreconditionError);
}

TEST(Gpc, LearnsAndExposesScores) {
  Gpc gpc;
  expect_learns(gpc, 2.5);
  const auto scores =
      gpc.decision_scores(scenario().device_tests.back().normalized());
  EXPECT_EQ(scores.rows(), scenario().device_tests.back().num_samples());
  EXPECT_EQ(scores.cols(), scenario().train.num_rps());
  EXPECT_GT(gpc.length_scale(), 0.0);
}

TEST(Gpc, SubsamplingCapRespected) {
  GpcConfig cfg;
  cfg.max_train_samples = 20;
  Gpc gpc(cfg);
  gpc.fit(scenario().train);
  // Still better than chance even on 20 anchors.
  const auto stats =
      eval::evaluate_clean(gpc, scenario().device_tests.back());
  EXPECT_LT(stats.error_m.mean, 5.0);
}

TEST(Gpc, ConfigValidation) {
  EXPECT_THROW(Gpc(GpcConfig{.signal_variance = 0.0}), PreconditionError);
  EXPECT_THROW(Gpc(GpcConfig{.noise_variance = 0.0}), PreconditionError);
}

TEST(Dnn, LearnsAndHasGradients) {
  DnnConfig cfg;
  cfg.train = fast_train();
  Dnn dnn(cfg);
  expect_learns(dnn, 2.0);
  ASSERT_NE(dnn.gradient_source(), nullptr);
  const auto& test = scenario().device_tests.back();
  const Tensor g = dnn.gradient_source()->input_gradient(
      test.normalized(), test.labels());
  EXPECT_GT(g.abs_max(), 0.0F);
  EXPECT_FALSE(dnn.history().train_loss.empty());
}

TEST(Cnn, Learns) {
  CnnConfig cfg;
  cfg.train = fast_train();
  Cnn cnn(cfg);
  expect_learns(cnn, 2.5);
  EXPECT_NE(cnn.gradient_source(), nullptr);
}

TEST(AdvLoc, LearnsWithAdversarialAugmentation) {
  AdvLocConfig cfg;
  cfg.dnn.train = fast_train();
  cfg.warmup_epochs = 10;
  AdvLoc advloc(cfg);
  expect_learns(advloc, 2.5);
  EXPECT_EQ(advloc.name(), "AdvLoc");
}

TEST(AdvLoc, ConfigValidation) {
  AdvLocConfig cfg;
  cfg.adversarial_fraction = 1.5;
  EXPECT_THROW(AdvLoc{cfg}, PreconditionError);
}

TEST(Anvil, Learns) {
  AnvilConfig cfg;
  cfg.train.epochs = 45;  // keep the config's hotter attention lr
  Anvil anvil(cfg);
  expect_learns(anvil, 3.0);
  EXPECT_NE(anvil.gradient_source(), nullptr);
}

TEST(Autoencoder, ReconstructsAndEncodes) {
  DaeConfig cfg;
  cfg.hidden = 16;
  cfg.train.epochs = 30;
  DenoisingAutoencoder dae(24, cfg);
  const Tensor x = scenario().train.normalized();
  const auto hist = dae.fit(x);
  EXPECT_LT(hist.train_loss.back(), hist.train_loss.front());
  const Tensor codes = dae.encode(x);
  EXPECT_EQ(codes.rows(), x.rows());
  EXPECT_EQ(codes.cols(), 16u);
}

TEST(Autoencoder, StackedLayerwise) {
  DaeConfig cfg;
  cfg.train.epochs = 15;
  StackedAutoencoder stack(24, {20, 8}, cfg);
  const Tensor x = scenario().train.normalized();
  stack.fit(x);
  EXPECT_EQ(stack.code_dim(), 8u);
  EXPECT_EQ(stack.encode(x).cols(), 8u);
}

TEST(Autoencoder, EncodeBeforeFitThrows) {
  DaeConfig cfg;
  StackedAutoencoder stack(24, {8}, cfg);
  EXPECT_THROW(stack.encode(Tensor({1, 24})), PreconditionError);
}

TEST(Sangria, Learns) {
  SangriaConfig cfg;
  cfg.hidden_dims = {32, 16};
  cfg.dae.train.epochs = 15;
  cfg.gbdt.rounds = 10;
  Sangria sangria(cfg);
  expect_learns(sangria, 3.0);
  EXPECT_EQ(sangria.name(), "SANGRIA");
  EXPECT_EQ(sangria.gradient_source(), nullptr);
}

TEST(WiDeep, Learns) {
  WiDeepConfig cfg;
  cfg.dae.hidden = 24;
  cfg.dae.train.epochs = 15;
  WiDeep wideep(cfg);
  expect_learns(wideep, 3.0);
  EXPECT_EQ(wideep.name(), "WiDeep");
}

TEST(Surrogate, ProvidesGradientsForNonDifferentiableVictims) {
  SurrogateGradients surrogate(scenario().train, 777);
  Knn knn;
  knn.fit(scenario().train);
  // KNN has no own gradients; gradients_for must fall back to surrogate.
  auto& src = gradients_for(knn, surrogate);
  const auto& test = scenario().device_tests.back();
  const Tensor g = src.input_gradient(test.normalized(), test.labels());
  EXPECT_TRUE(g.same_shape(test.normalized()));
  EXPECT_GT(g.abs_max(), 0.0F);

  // A DNN prefers its own gradients.
  DnnConfig dc;
  dc.train = fast_train();
  Dnn dnn(dc);
  dnn.fit(scenario().train);
  EXPECT_EQ(&gradients_for(dnn, surrogate), dnn.gradient_source());
}

TEST(PredictionAccuracy, HelperAgreesWithManualCount) {
  Knn knn;
  knn.fit(scenario().train);
  const auto& test = scenario().device_tests.back();
  const double acc =
      prediction_accuracy(knn, test.normalized(), test.labels());
  const auto pred = knn.predict(test.normalized());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == test.labels()[i]) ++correct;
  EXPECT_DOUBLE_EQ(acc, static_cast<double>(correct) / pred.size());
}

}  // namespace
