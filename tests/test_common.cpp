// Unit tests: RNG, statistics, CSV, tables, error helpers, fault sites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/ensure.hpp"
#include "common/fault_inject.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

using namespace cal;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

// Golden values for the SplitMix64-seeded xoshiro256++ core, computed with
// an independent implementation of the published reference algorithms
// (Blackman & Vigna, https://prng.di.unimi.it/). Pins the generator
// bit-for-bit so every stochastic experiment stays reproducible across
// refactors, platforms, and compilers.
TEST(Rng, GoldenXoshiro256PlusPlusSeedZero) {
  const std::uint64_t expected[8] = {
      0x53175D61490B23DFULL, 0x61DA6F3DC380D507ULL, 0x5C0FDF91EC9A7BFCULL,
      0x02EEBF8C3BBE5E1AULL, 0x7ECA04EBAF4A5EEAULL, 0x0543C37757F08D9AULL,
      0xDB7490C75AB5026EULL, 0xD87343E6464BC959ULL};
  Rng rng(0);
  for (std::uint64_t e : expected) EXPECT_EQ(rng.next_u64(), e);
}

TEST(Rng, GoldenXoshiro256PlusPlusSeed42) {
  const std::uint64_t expected[8] = {
      0xD0764D4F4476689FULL, 0x519E4174576F3791ULL, 0xFBE07CFB0C24ED8CULL,
      0xB37D9F600CD835B8ULL, 0xCB231C3874846A73ULL, 0x968D9F004E50DE7DULL,
      0x201718FF221A3556ULL, 0x9AE94E070ED8CB46ULL};
  Rng rng(42);
  for (std::uint64_t e : expected) EXPECT_EQ(rng.next_u64(), e);
}

TEST(Rng, GoldenXoshiro256PlusPlusDefaultSeed) {
  const std::uint64_t expected[8] = {
      0x58F24F57E97E3F07ULL, 0x5F9A9D6F9A653406ULL, 0x6534EE33D1FD29D7ULL,
      0x2E89656C364E9184ULL, 0xF3F9CB7E6C53EBBBULL, 0x69E9C62BD0CFF7BCULL,
      0xC1FB792C96D6D61CULL, 0x9A03CA445C7289C7ULL};
  Rng rng;  // default seed 0x9E3779B97F4A7C15
  for (std::uint64_t e : expected) EXPECT_EQ(rng.next_u64(), e);
}

TEST(Rng, DistributionHelpersDeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.normal(), b.normal());
    EXPECT_EQ(a.uniform_index(1000), b.uniform_index(1000));
    EXPECT_EQ(a.bernoulli(0.3), b.bernoulli(0.3));
  }
  EXPECT_EQ(a.permutation(100), b.permutation(100));
  auto fa = a.fork(5);
  auto fb = b.fork(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(9);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(10);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng rng(11);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(12);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng fork = a.fork(1);
  // Fork is deterministic given parent state and salt.
  Rng a2(5);
  Rng fork2 = a2.fork(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fork.next_u64(), fork2.next_u64());
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(13);
  auto perm = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (auto i : perm) {
    ASSERT_LT(i, 100u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(14);
  auto s = rng.sample_without_replacement(50, 20);
  ASSERT_EQ(s.size(), 20u);
  std::sort(s.begin(), s.end());
  EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(15);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), PreconditionError);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(1.25), 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, SummarizeMatchesPieces) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  const auto s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_EQ(s.count, 5u);
}

TEST(Stats, EmptyRangeThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(mean(xs), PreconditionError);
  EXPECT_THROW(summarize(xs), PreconditionError);
  EXPECT_THROW(percentile(xs, 50.0), PreconditionError);
}

TEST(Stats, PercentileRejectsBadP) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, -1.0), PreconditionError);
  EXPECT_THROW(percentile(xs, 101.0), PreconditionError);
}

TEST(Csv, EscapeAndParseRoundTrip) {
  const CsvRow row{"plain", "with,comma", "with\"quote", "multi word"};
  const auto line = format_csv_row(row);
  const auto parsed = parse_csv_line(line);
  EXPECT_EQ(parsed, row);
}

TEST(Csv, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "cal_test_csv.csv").string();
  CsvDocument doc;
  doc.header = {"a", "b"};
  doc.rows = {{"1", "2"}, {"x,y", "z"}};
  write_csv(path, doc);
  const auto loaded = read_csv(path, true);
  EXPECT_EQ(loaded.header, doc.header);
  EXPECT_EQ(loaded.rows, doc.rows);
  std::filesystem::remove(path);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/definitely/not.csv", false),
               PreconditionError);
}

TEST(Table, AlignsAndCounts) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row("beta", {2.5}, 1);
  EXPECT_EQ(t.num_rows(), 2u);
  const auto s = t.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, HeatmapRendersAllCells) {
  const auto s = render_heatmap("hm", {"r1", "r2"}, {"c1", "c2"},
                                {{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_NE(s.find("r1"), std::string::npos);
  EXPECT_NE(s.find("4.00"), std::string::npos);
}

TEST(Table, HeatmapShapeMismatchThrows) {
  EXPECT_THROW(
      render_heatmap("hm", {"r1"}, {"c1", "c2"}, {{1.0}}),
      PreconditionError);
}

TEST(Table, BarChartScalesToWidth) {
  const auto s = render_bar_chart("bars", {"a", "b"}, {1.0, 2.0}, 10);
  EXPECT_NE(s.find("##########"), std::string::npos);
}

TEST(Ensure, MacrosThrowTypedErrors) {
  EXPECT_THROW(CAL_ENSURE(false, "msg " << 42), PreconditionError);
  EXPECT_THROW(CAL_INVARIANT(false, "bug"), InvariantError);
  EXPECT_NO_THROW(CAL_ENSURE(true, "fine"));
}

// ---------------------------------------------------------------------------
// Fault injection registry (driven via passage() directly, so these run
// identically whether CAL_FAULT_POINT is compiled in or stripped).
// ---------------------------------------------------------------------------

/// Record the fire/pass pattern of `n` passages through `site`.
std::vector<bool> fire_pattern(const std::string& site, int n) {
  std::vector<bool> fired;
  fired.reserve(static_cast<std::size_t>(n));
  auto& reg = FaultRegistry::instance();
  for (int i = 0; i < n; ++i) {
    try {
      reg.passage(site.c_str());
      fired.push_back(false);
    } catch (const InjectedFault& f) {
      EXPECT_EQ(f.site(), site);
      fired.push_back(true);
    }
  }
  return fired;
}

TEST(FaultInject, UnarmedSitesNeverThrow) {
  auto& reg = FaultRegistry::instance();
  reg.disarm_all();
  for (int i = 0; i < 100; ++i)
    EXPECT_NO_THROW(reg.passage("fault-test.unarmed"));
  // Unknown sites report zero counters, not an error.
  EXPECT_EQ(reg.site_stats("fault-test.unarmed").hits, 0u);
  EXPECT_EQ(reg.site_stats("fault-test.never-mentioned").fires, 0u);
}

TEST(FaultInject, SeededScheduleIsDeterministic) {
  auto& reg = FaultRegistry::instance();
  reg.arm("fault-test.seeded", 0.3, 99);
  const auto first = fire_pattern("fault-test.seeded", 100);
  // Re-arming with the same seed resets the site's Rng: the fault
  // schedule replays bit-for-bit.
  reg.arm("fault-test.seeded", 0.3, 99);
  const auto replay = fire_pattern("fault-test.seeded", 100);
  EXPECT_EQ(first, replay);
  const std::size_t fires = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 100u);
  // A different seed gives a different (still deterministic) schedule.
  reg.arm("fault-test.seeded", 0.3, 100);
  EXPECT_NE(fire_pattern("fault-test.seeded", 100), first);
  reg.disarm_all();
}

TEST(FaultInject, ProbabilityExtremesAndValidation) {
  auto& reg = FaultRegistry::instance();
  reg.arm("fault-test.always", 1.0);
  for (int i = 0; i < 5; ++i)
    EXPECT_THROW(reg.passage("fault-test.always"), InjectedFault);
  reg.arm("fault-test.never", 0.0);
  for (int i = 0; i < 5; ++i)
    EXPECT_NO_THROW(reg.passage("fault-test.never"));
  EXPECT_THROW(reg.arm("fault-test.bad", -0.1), PreconditionError);
  EXPECT_THROW(reg.arm("fault-test.bad", 1.5), PreconditionError);
  reg.disarm_all();
}

TEST(FaultInject, OneShotFiresExactlyOnTheNthPassage) {
  auto& reg = FaultRegistry::instance();
  reg.arm_one_shot("fault-test.nth", 3);
  const auto fired = fire_pattern("fault-test.nth", 6);
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}))
      << "a one-shot site fires on the nth passage only, then is spent";
  const auto st = reg.site_stats("fault-test.nth");
  EXPECT_EQ(st.hits, 6u) << "passages keep counting after the shot";
  EXPECT_EQ(st.fires, 1u);
  reg.disarm_all();
}

TEST(FaultInject, DisarmStopsFiringAndClearsCounters) {
  auto& reg = FaultRegistry::instance();
  reg.arm("fault-test.a", 1.0);
  reg.arm("fault-test.b", 1.0);
  EXPECT_THROW(reg.passage("fault-test.a"), InjectedFault);
  reg.disarm("fault-test.a");
  EXPECT_NO_THROW(reg.passage("fault-test.a"));
  EXPECT_EQ(reg.site_stats("fault-test.a").hits, 0u)
      << "a disarmed site reads as unknown";
  EXPECT_THROW(reg.passage("fault-test.b"), InjectedFault);
  reg.disarm_all();
  EXPECT_NO_THROW(reg.passage("fault-test.b"));
}

TEST(FaultInject, SiteStatsCountHitsAndFires) {
  auto& reg = FaultRegistry::instance();
  reg.arm("fault-test.stats", 0.5, 7);
  const auto fired = fire_pattern("fault-test.stats", 40);
  const auto st = reg.site_stats("fault-test.stats");
  EXPECT_EQ(st.hits, 40u);
  EXPECT_EQ(st.fires, static_cast<std::uint64_t>(std::count(
                          fired.begin(), fired.end(), true)));
  reg.disarm_all();
}

TEST(FaultInject, MacroMatchesCompileTimeSwitch) {
  auto& reg = FaultRegistry::instance();
  reg.arm("fault-test.macro", 1.0);
  if (kFaultInjectionCompiledIn) {
    EXPECT_THROW(CAL_FAULT_POINT("fault-test.macro"), InjectedFault);
  } else {
    // Compiled out: the macro is a no-op and its argument is never
    // evaluated (the negative-compile CI check proves the latter).
    EXPECT_NO_THROW(CAL_FAULT_POINT("fault-test.macro"));
    EXPECT_EQ(reg.site_stats("fault-test.macro").hits, 0u);
  }
  reg.disarm_all();
}

}  // namespace
