// cal_kernels correctness: the blocked/register-tiled gemm_nn/nt/tn must
// match the naive triple-loop reference over odd and ragged shapes, honour
// the accumulate flag, propagate NaN/Inf per IEEE 754 (no zero-skip), and
// be bit-identical for every thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "kernels/gemm.hpp"
#include "kernels/quant.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace cal;

struct Shape {
  std::size_t m, k, n;
};

// Odd/ragged sweep: unit, primes, tall-skinny, wide-short, micro-tile
// multiples and off-by-one around the kMR=6 / kNR=8|16 register tile.
const std::vector<Shape> kShapes = {
    {1, 1, 1},    {1, 7, 1},     {2, 3, 5},      {5, 3, 2},
    {7, 11, 13},  {6, 16, 12},   {7, 17, 17},    {97, 3, 5},
    {5, 3, 97},   {3, 128, 3},   {64, 64, 64},   {33, 37, 41},
    {61, 1, 61},  {128, 130, 120}, {13, 256, 9}, {12, 300, 24},
};

Tensor random_mat(std::uint64_t seed, std::size_t r, std::size_t c) {
  Rng rng(seed);
  return Tensor::randn({r, c}, rng, 1.0F);
}

/// 1e-5 relative tolerance per the kernel-validation contract. The atol
/// term is scaled to the result's magnitude: for k > 256 the blocked path
/// combines 256-wide partial sums, so elements with heavy cancellation
/// carry an absolute error proportional to the summand scale, not to the
/// (tiny) final value.
void expect_close(const Tensor& got, const Tensor& want, const Shape& s,
                  const char* variant) {
  const float atol = 1e-5F * std::max(1.0F, want.abs_max());
  EXPECT_TRUE(allclose(got, want, atol, 1e-5F))
      << variant << " mismatch at " << s.m << "x" << s.k << "x" << s.n;
}

TEST(Kernels, GemmNnMatchesNaiveAcrossShapes) {
  for (const auto& s : kShapes) {
    const Tensor a = random_mat(s.m * 1000 + s.k, s.m, s.k);
    const Tensor b = random_mat(s.k * 1000 + s.n, s.k, s.n);
    Tensor want({s.m, s.n});
    kernels::gemm_naive(a.flat(), b.flat(), want.flat(), s.m, s.k, s.n);
    Tensor got({s.m, s.n});
    kernels::gemm_nn(a.flat(), b.flat(), got.flat(), s.m, s.k, s.n);
    expect_close(got, want, s, "gemm_nn");
  }
}

TEST(Kernels, GemmNtMatchesNaiveAcrossShapes) {
  for (const auto& s : kShapes) {
    const Tensor a = random_mat(s.m * 77 + s.k, s.m, s.k);
    const Tensor b = random_mat(s.n * 77 + s.k, s.n, s.k);  // stored NxK
    Tensor want({s.m, s.n});
    const Tensor bt = b.transposed();
    kernels::gemm_naive(a.flat(), bt.flat(), want.flat(), s.m, s.k, s.n);
    Tensor got({s.m, s.n});
    kernels::gemm_nt(a.flat(), b.flat(), got.flat(), s.m, s.k, s.n);
    expect_close(got, want, s, "gemm_nt");
  }
}

TEST(Kernels, GemmTnMatchesNaiveAcrossShapes) {
  for (const auto& s : kShapes) {
    const Tensor a = random_mat(s.k * 55 + s.m, s.k, s.m);  // stored KxM
    const Tensor b = random_mat(s.k * 55 + s.n, s.k, s.n);
    Tensor want({s.m, s.n});
    const Tensor at = a.transposed();
    kernels::gemm_naive(at.flat(), b.flat(), want.flat(), s.m, s.k, s.n);
    Tensor got({s.m, s.n});
    kernels::gemm_tn(a.flat(), b.flat(), got.flat(), s.m, s.k, s.n);
    expect_close(got, want, s, "gemm_tn");
  }
}

TEST(Kernels, AccumulateAddsOntoExistingOutput) {
  const Shape s{13, 29, 21};
  const Tensor a = random_mat(1, s.m, s.k);
  const Tensor b = random_mat(2, s.k, s.n);
  Tensor base = random_mat(3, s.m, s.n);

  Tensor want = base;
  kernels::gemm_naive(a.flat(), b.flat(), want.flat(), s.m, s.k, s.n,
                      /*accumulate=*/true);
  Tensor got = base;
  kernels::gemm_nn(a.flat(), b.flat(), got.flat(), s.m, s.k, s.n,
                   /*accumulate=*/true);
  expect_close(got, want, s, "gemm_nn(accumulate)");
  // And without the flag the prior contents must be overwritten.
  Tensor fresh({s.m, s.n});
  kernels::gemm_naive(a.flat(), b.flat(), fresh.flat(), s.m, s.k, s.n);
  Tensor over = base;
  kernels::gemm_nn(a.flat(), b.flat(), over.flat(), s.m, s.k, s.n);
  expect_close(over, fresh, s, "gemm_nn(overwrite)");
}

// The contract carried over from Tensor::matmul: no zero-skip branch, so a
// NaN (or Inf·0) anywhere in the k reduction poisons exactly the outputs it
// feeds — an adversarial perturbation that overflowed must surface.
TEST(Kernels, BlockedPathPropagatesNanAndInf) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const std::size_t m = 9, k = 20, n = 17;
  Tensor a({m, k}, 1.0F);
  Tensor b({k, n}, 0.0F);  // all-zero B: products are 1·0 except poisoned k
  a.at(4, 7) = nan;
  Tensor c({m, n});
  kernels::gemm_nn(a.flat(), b.flat(), c.flat(), m, k, n);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_TRUE(std::isnan(c.at(4, j))) << "NaN row lost at col " << j;
    EXPECT_EQ(c.at(3, j), 0.0F);
  }

  // Inf in A against an all-zero B row: Inf·0 must yield NaN, not 0.
  Tensor a2({m, k}, 1.0F);
  a2.at(2, 5) = inf;
  Tensor c2({m, n});
  kernels::gemm_nn(a2.flat(), b.flat(), c2.flat(), m, k, n);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_TRUE(std::isnan(c2.at(2, j))) << "Inf·0 masked at col " << j;

  // Inf against positive B propagates Inf through the row sums.
  Tensor b3({k, n}, 1.0F);
  Tensor c3({m, n});
  kernels::gemm_nn(a2.flat(), b3.flat(), c3.flat(), m, k, n);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_TRUE(std::isinf(c3.at(2, j))) << "Inf lost at col " << j;
  EXPECT_FLOAT_EQ(c3.at(0, 0), static_cast<float>(k));

  // Same propagation on the fused-transpose paths.
  Tensor bt({n, k}, 0.0F);
  Tensor cnt({m, n});
  kernels::gemm_nt(a.flat(), bt.flat(), cnt.flat(), m, k, n);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_TRUE(std::isnan(cnt.at(4, j)));
  Tensor atn({k, m}, 1.0F);
  atn.at(7, 4) = nan;
  Tensor ctn({m, n});
  kernels::gemm_tn(atn.flat(), b.flat(), ctn.flat(), m, k, n);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_TRUE(std::isnan(ctn.at(4, j)));
}

TEST(Kernels, ThreadedSplitIsBitIdenticalToSerial) {
  // Big enough to clear the parallel-dispatch FLOP threshold.
  const Shape s{256, 320, 192};
  const Tensor a = random_mat(11, s.m, s.k);
  const Tensor b = random_mat(12, s.k, s.n);
  Tensor serial({s.m, s.n});
  ASSERT_EQ(kernels::max_threads(), 1u);
  kernels::gemm_nn(a.flat(), b.flat(), serial.flat(), s.m, s.k, s.n);
  kernels::set_max_threads(4);
  Tensor threaded({s.m, s.n});
  kernels::gemm_nn(a.flat(), b.flat(), threaded.flat(), s.m, s.k, s.n);
  kernels::set_max_threads(1);
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], threaded[i]) << "thread split changed bits at " << i;
}

TEST(Kernels, ConcurrentCallersWithThreadsEnabledStayCorrect) {
  // Several threads issue pool-sized GEMMs at once: whoever does not win
  // the pool gate must fall back to the (bit-identical) serial path, never
  // join a foreign job or deadlock.
  const Shape s{192, 256, 160};
  const Tensor a = random_mat(21, s.m, s.k);
  const Tensor b = random_mat(22, s.k, s.n);
  Tensor want({s.m, s.n});
  kernels::gemm_nn(a.flat(), b.flat(), want.flat(), s.m, s.k, s.n);
  kernels::set_max_threads(4);
  constexpr std::size_t kCallers = 4;
  std::vector<Tensor> outs(kCallers, Tensor({s.m, s.n}));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t t = 0; t < kCallers; ++t)
    callers.emplace_back([&, t] {
      for (int rep = 0; rep < 10; ++rep)
        kernels::gemm_nn(a.flat(), b.flat(), outs[t].flat(), s.m, s.k, s.n);
    });
  for (auto& c : callers) c.join();
  kernels::set_max_threads(1);
  for (std::size_t t = 0; t < kCallers; ++t)
    for (std::size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(outs[t][i], want[i])
          << "concurrent caller " << t << " diverged at " << i;
}

TEST(Kernels, RejectsMissizedSpans) {
  Tensor a({4, 3});
  Tensor b({3, 5});
  Tensor c({4, 5});
  EXPECT_THROW(
      kernels::gemm_nn(a.flat(), b.flat(), c.flat(), 4, 3, 6),
      PreconditionError);
  EXPECT_THROW(
      kernels::gemm_nn(a.flat(), b.flat(), c.flat(), 5, 3, 5),
      PreconditionError);
  EXPECT_THROW(kernels::gemm_nn(a.flat(), b.flat(), c.flat(), 0, 3, 5),
               PreconditionError);
}

// --- batched / strided -----------------------------------------------------

TEST(Kernels, BatchedNnIsBitIdenticalToLoopedGemm) {
  // Dense contiguous batches across ragged shapes, including edge tiles.
  const std::vector<Shape> shapes = {
      {1, 3, 1}, {5, 7, 9}, {6, 16, 16}, {13, 31, 17}};
  for (const auto& s : shapes) {
    const std::size_t batch = 5;
    const Tensor a = random_mat(s.m * 31 + s.k, batch * s.m, s.k);
    const Tensor b = random_mat(s.k * 31 + s.n, batch * s.k, s.n);
    std::vector<float> want(batch * s.m * s.n);
    for (std::size_t e = 0; e < batch; ++e)
      kernels::gemm_nn(a.flat().subspan(e * s.m * s.k, s.m * s.k),
                       b.flat().subspan(e * s.k * s.n, s.k * s.n),
                       std::span<float>(want).subspan(e * s.m * s.n,
                                                      s.m * s.n),
                       s.m, s.k, s.n);
    std::vector<float> got(batch * s.m * s.n);
    kernels::gemm_batched_nn(a.flat(), b.flat(), got, batch, s.m, s.k, s.n);
    for (std::size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(got[i], want[i])
          << "batched diverged from looped at " << i << " (shape " << s.m
          << "x" << s.k << "x" << s.n << ")";
  }
}

TEST(Kernels, BatchedStridedHeadViewsMatchPerHeadLoop) {
  // The fused-attention layout: Q is B x (H·D) with head h at column
  // offset h·D, prototypes are (H·M) x D with head h at row offset h·M,
  // scores land in B x (H·M) at column offset h·M. One strided batched-nt
  // call must equal H separate gemm_nt calls over copied-out views.
  const std::size_t rows = 9, heads = 3, d = 5, m = 7;
  const Tensor q = random_mat(101, rows, heads * d);
  const Tensor proto = random_mat(102, heads * m, d);
  std::vector<float> want(rows * heads * m);
  for (std::size_t h = 0; h < heads; ++h) {
    Tensor qh({rows, d});
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < d; ++j)
        qh.at(i, j) = q.at(i, h * d + j);
    Tensor sh({rows, m});
    kernels::gemm_nt(qh.flat(),
                     proto.flat().subspan(h * m * d, m * d), sh.flat(),
                     rows, d, m);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < m; ++j)
        want[i * heads * m + h * m + j] = sh.at(i, j);
  }
  std::vector<float> got(rows * heads * m);
  kernels::BatchStrides st;
  st.stride_a = d;
  st.lda = heads * d;
  st.stride_b = m * d;
  st.stride_c = m;
  st.ldc = heads * m;
  kernels::gemm_batched_nt(q.flat(), proto.flat(), got, heads, rows, d, m,
                           st);
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << "strided head view diverged at " << i;
}

TEST(Kernels, BatchedKZeroZeroFillsUnlessAccumulating) {
  const std::size_t batch = 2, m = 3, n = 4;
  std::vector<float> c(batch * m * n, 7.0F);
  kernels::gemm_batched_nn({}, {}, c, batch, m, 0, n);
  for (float v : c) EXPECT_EQ(v, 0.0F);
  std::vector<float> kept(batch * m * n, 7.0F);
  kernels::gemm_batched_nn({}, {}, kept, batch, m, 0, n, {},
                           /*accumulate=*/true);
  for (float v : kept) EXPECT_EQ(v, 7.0F);
}

TEST(Kernels, BatchedThreadedSplitIsBitIdenticalToSerial) {
  const std::size_t batch = 8, m = 96, k = 128, n = 80;
  const Tensor a = random_mat(51, batch * m, k);
  const Tensor b = random_mat(52, batch * k, n);
  std::vector<float> serial(batch * m * n);
  ASSERT_EQ(kernels::max_threads(), 1u);
  kernels::gemm_batched_nn(a.flat(), b.flat(), serial, batch, m, k, n);
  kernels::set_max_threads(4);
  std::vector<float> threaded(batch * m * n);
  kernels::gemm_batched_nn(a.flat(), b.flat(), threaded, batch, m, k, n);
  kernels::set_max_threads(1);
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], threaded[i])
        << "batched thread split changed bits at " << i;
}

// --- int8 quantized --------------------------------------------------------

std::vector<std::int8_t> random_s8(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<std::int8_t> out(count);
  for (auto& v : out)
    v = static_cast<std::int8_t>(
        static_cast<int>(std::floor(rng.uniform() * 255.0)) - 127);
  return out;
}

std::vector<float> random_scales(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<float> out(count);
  for (auto& v : out)
    v = 0.001F + 0.05F * static_cast<float>(rng.uniform());
  return out;
}

/// Reference int8 GEMM: exact int32 inner product, then the same
/// scale-application expression the kernel uses — so comparisons can
/// demand bit-identity, not tolerance.
void s8_reference(std::span<const std::int8_t> a,
                  std::span<const std::int8_t> b, std::span<float> c,
                  std::size_t m, std::size_t k, std::size_t n,
                  std::span<const float> scale_a,
                  std::span<const float> scale_b, bool transpose_b,
                  bool accumulate) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      std::int32_t sum = 0;
      for (std::size_t p = 0; p < k; ++p) {
        const std::int32_t bv = transpose_b ? b[j * k + p] : b[p * n + j];
        sum += static_cast<std::int32_t>(a[i * k + p]) * bv;
      }
      const float v = scale_a[i] * scale_b[j] * static_cast<float>(sum);
      c[i * n + j] = accumulate ? c[i * n + j] + v : v;
    }
}

TEST(Kernels, GemmS8NnMatchesExactReferenceAcrossEdgeShapes) {
  // Edge shapes from the issue: M=1, N=1, K=0, plus non-multiples of the
  // int8 tile (MR=4, NR up to 32, k packed in pairs ⇒ odd k is the edge).
  const std::vector<Shape> shapes = {
      {1, 8, 8},  {8, 8, 1},   {1, 1, 1},  {3, 0, 5},   {4, 2, 32},
      {5, 7, 33}, {4, 17, 32}, {7, 33, 9}, {12, 64, 48}, {31, 101, 67}};
  for (const auto& s : shapes) {
    const auto a = random_s8(s.m * 7 + s.k, s.m * s.k);
    const auto b = random_s8(s.k * 7 + s.n + 1, s.k * s.n);
    const auto sa = random_scales(3 * s.m + 1, s.m);
    const auto sb = random_scales(5 * s.n + 2, s.n);
    std::vector<float> want(s.m * s.n, -9.0F);
    s8_reference(a, b, want, s.m, s.k, s.n, sa, sb, /*transpose_b=*/false,
                 /*accumulate=*/false);
    std::vector<float> got(s.m * s.n, -9.0F);
    kernels::gemm_s8_nn(a, b, got, s.m, s.k, s.n, sa, sb);
    for (std::size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(got[i], want[i]) << "s8_nn diverged at " << i << " (shape "
                                 << s.m << "x" << s.k << "x" << s.n << ")";
  }
}

TEST(Kernels, GemmS8NtMatchesExactReferenceAcrossEdgeShapes) {
  const std::vector<Shape> shapes = {
      {1, 5, 1}, {1, 8, 9}, {6, 0, 3}, {4, 9, 31}, {9, 33, 33}, {17, 40, 21}};
  for (const auto& s : shapes) {
    const auto a = random_s8(s.m * 13 + s.k, s.m * s.k);
    const auto b = random_s8(s.n * 13 + s.k + 1, s.n * s.k);  // stored NxK
    const auto sa = random_scales(7 * s.m + 1, s.m);
    const auto sb = random_scales(9 * s.n + 2, s.n);
    std::vector<float> want(s.m * s.n);
    s8_reference(a, b, want, s.m, s.k, s.n, sa, sb, /*transpose_b=*/true,
                 /*accumulate=*/false);
    std::vector<float> got(s.m * s.n);
    kernels::gemm_s8_nt(a, b, got, s.m, s.k, s.n, sa, sb);
    for (std::size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(got[i], want[i]) << "s8_nt diverged at " << i << " (shape "
                                 << s.m << "x" << s.k << "x" << s.n << ")";
  }
}

TEST(Kernels, GemmS8AccumulateAndSaturatedInputsStayExact) {
  // All-extreme operands (±127) maximise the int16-pair products; k large
  // enough to cross several packed k-pair panels. The int32 sum must not
  // saturate or wrap, and accumulate must add onto prior contents.
  const std::size_t m = 5, k = 203, n = 35;
  std::vector<std::int8_t> a(m * k, 127);
  std::vector<std::int8_t> b(k * n, -127);
  for (std::size_t i = 0; i < a.size(); i += 3) a[i] = -127;
  const std::vector<float> sa(m, 0.5F);
  const std::vector<float> sb(n, 0.25F);
  std::vector<float> want(m * n, 2.0F);
  s8_reference(a, b, want, m, k, n, sa, sb, false, /*accumulate=*/true);
  std::vector<float> got(m * n, 2.0F);
  kernels::gemm_s8_nn(a, b, got, m, k, n, sa, sb, /*accumulate=*/true);
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << "saturated accumulate diverged at " << i;
}

TEST(Kernels, GemmS8ThreadedSplitIsBitIdenticalToSerial) {
  const std::size_t m = 256, k = 320, n = 192;
  const auto a = random_s8(91, m * k);
  const auto b = random_s8(92, k * n);
  const auto sa = random_scales(93, m);
  const auto sb = random_scales(94, n);
  std::vector<float> serial(m * n);
  ASSERT_EQ(kernels::max_threads(), 1u);
  kernels::gemm_s8_nn(a, b, serial, m, k, n, sa, sb);
  kernels::set_max_threads(4);
  std::vector<float> threaded(m * n);
  kernels::gemm_s8_nn(a, b, threaded, m, k, n, sa, sb);
  kernels::set_max_threads(1);
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], threaded[i])
        << "s8 thread split changed bits at " << i;
}

TEST(Kernels, GemmS8RejectsMissizedSpansAndScales) {
  const auto a = random_s8(1, 4 * 3);
  const auto b = random_s8(2, 3 * 5);
  std::vector<float> c(4 * 5);
  const std::vector<float> sa(4, 1.0F);
  const std::vector<float> sb(5, 1.0F);
  EXPECT_THROW(kernels::gemm_s8_nn(a, b, c, 4, 3, 6, sa, sb),
               PreconditionError);
  EXPECT_THROW(kernels::gemm_s8_nn(a, b, c, 0, 3, 5, sa, sb),
               PreconditionError);
  const std::vector<float> sa_short(3, 1.0F);
  EXPECT_THROW(kernels::gemm_s8_nn(a, b, c, 4, 3, 5, sa_short, sb),
               PreconditionError);
}

// --- quantization ----------------------------------------------------------

TEST(Kernels, QuantizeRoundTripErrorIsBoundedByHalfScale) {
  // Property: |x − dequant(quant(x))| ≤ scale/2 = amax/254 per element,
  // for both the per-column (weight) and per-row (activation) schemes.
  Rng rng(404);
  const std::size_t rows = 37, cols = 23;
  const Tensor w = Tensor::randn({rows, cols}, rng, 2.5F);

  const kernels::QuantizedMatrix qc =
      kernels::quantize_per_output_channel(w.flat(), rows, cols);
  EXPECT_FALSE(qc.per_row);
  ASSERT_EQ(qc.scales.size(), cols);
  const std::vector<float> backc = kernels::dequantize(qc);
  for (std::size_t j = 0; j < cols; ++j) {
    float amax = 0.0F;
    for (std::size_t i = 0; i < rows; ++i)
      amax = std::max(amax, std::abs(w.at(i, j)));
    const float bound = amax / 254.0F + 1e-12F;
    EXPECT_NEAR(qc.scales[j], amax / 127.0F, 1e-6F * std::max(1.0F, amax));
    for (std::size_t i = 0; i < rows; ++i)
      ASSERT_LE(std::abs(w.at(i, j) - backc[i * cols + j]), bound)
          << "per-column round trip out of bound at (" << i << "," << j
          << ")";
  }

  const kernels::QuantizedMatrix qr =
      kernels::quantize_rows(w.flat(), rows, cols);
  EXPECT_TRUE(qr.per_row);
  ASSERT_EQ(qr.scales.size(), rows);
  const std::vector<float> backr = kernels::dequantize(qr);
  for (std::size_t i = 0; i < rows; ++i) {
    float amax = 0.0F;
    for (std::size_t j = 0; j < cols; ++j)
      amax = std::max(amax, std::abs(w.at(i, j)));
    const float bound = amax / 254.0F + 1e-12F;
    for (std::size_t j = 0; j < cols; ++j)
      ASSERT_LE(std::abs(w.at(i, j) - backr[i * cols + j]), bound)
          << "per-row round trip out of bound at (" << i << "," << j << ")";
  }
}

TEST(Kernels, QuantizeHandlesZeroChannelsAndExcludesMinus128) {
  // An all-zero column must get a well-defined scale (1) and all-zero
  // codes; the most negative value must map to -127, never -128.
  const std::size_t rows = 4, cols = 3;
  std::vector<float> w(rows * cols, 0.0F);
  for (std::size_t i = 0; i < rows; ++i) w[i * cols + 1] = -3.0F;
  const kernels::QuantizedMatrix q =
      kernels::quantize_per_output_channel(w, rows, cols);
  EXPECT_EQ(q.scales[0], 1.0F);
  for (std::size_t i = 0; i < rows; ++i) {
    EXPECT_EQ(q.data[i * cols + 0], 0);
    EXPECT_EQ(q.data[i * cols + 1], -127);
  }
  for (const std::int8_t v : q.data) EXPECT_GE(v, -127);
}

}  // namespace
